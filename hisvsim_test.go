package hisvsim

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"hisvsim/internal/gate"
)

func TestFacadeQuickstart(t *testing.T) {
	c := MustCircuit("qft", 10)
	res, err := Simulate(c, Options{Strategy: "dagp", Lm: 6})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if f := res.State.Fidelity(want); math.Abs(f-1) > 1e-8 {
		t.Fatalf("fidelity = %v", f)
	}
	if res.Plan.NumParts() < 2 {
		t.Fatalf("parts = %d", res.Plan.NumParts())
	}
}

func TestFacadePartitionAndValidate(t *testing.T) {
	c := MustCircuit("bv", 10)
	for _, s := range Strategies() {
		if s == "exact" && c.NumQubits > 12 {
			continue
		}
		pl, err := Partition(c, 5, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if err := ValidatePlan(pl); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if _, err := Partition(c, 5, "nope"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestFacadeDistributedVsBaseline(t *testing.T) {
	c := MustCircuit("ising", 9)
	want, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(c, Options{Strategy: "dagp", Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if f := res.State.Fidelity(want); math.Abs(f-1) > 1e-8 {
		t.Fatalf("distributed fidelity = %v", f)
	}
	base, err := RunBaseline(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f := base.State.Fidelity(want); math.Abs(f-1) > 1e-8 {
		t.Fatalf("baseline fidelity = %v", f)
	}
	if res.Dist.BytesComm >= base.BytesComm {
		t.Fatalf("HiSVSIM comm %d >= baseline %d", res.Dist.BytesComm, base.BytesComm)
	}
}

func TestFacadeQASMRoundTrip(t *testing.T) {
	c := MustCircuit("grover", 9)
	src := WriteQASM(c)
	back, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(back)
	if err != nil {
		t.Fatal(err)
	}
	if f := a.Fidelity(b); math.Abs(f-1) > 1e-8 {
		t.Fatalf("round-trip fidelity = %v", f)
	}
}

func TestFacadeOptimizeAndMetrics(t *testing.T) {
	c := MustCircuit("ising", 8)
	// Inject a redundant pair through the public API surface.
	c.Gates = append(c.Gates, c.Gates[0], c.Gates[0]) // two extra H's on q0? (ising starts with H)
	opt := Optimize(c)
	if opt.NumGates() >= c.NumGates() {
		t.Fatalf("optimize: %d -> %d", c.NumGates(), opt.NumGates())
	}
	pl, err := Partition(opt, 5, "dagp")
	if err != nil {
		t.Fatal(err)
	}
	m := MeasurePlan(pl)
	if m.Parts != pl.NumParts() || m.Gates != opt.NumGates() {
		t.Fatalf("metrics %+v", m)
	}
	dot := DotDAG(opt, pl)
	if !strings.Contains(dot, "digraph") {
		t.Fatal("dot output missing")
	}
}

func TestFacadeNonPowerOfTwoRanks(t *testing.T) {
	c := MustCircuit("qft", 9)
	want, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(c, Options{Strategy: "dagp", Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if f := res.State.Fidelity(want); math.Abs(f-1) > 1e-8 {
		t.Fatalf("fidelity = %v", f)
	}
	if res.Dist.VirtualRanks != 4 {
		t.Fatalf("virtual ranks = %d", res.Dist.VirtualRanks)
	}
}

func TestFacadeFamiliesAndModels(t *testing.T) {
	if len(Families()) < 10 {
		t.Fatal("families missing")
	}
	if HDR100().Bandwidth <= 0 {
		t.Fatal("bad model")
	}
	if !strings.Contains(strings.Join(Strategies(), ","), "dagp") {
		t.Fatal("dagp missing")
	}
	if _, err := BuildCircuit("nope", 8); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestFacadeService(t *testing.T) {
	svc := NewService(ServiceConfig{Workers: 2})
	defer svc.Close()
	c := MustCircuit("qft", 8)
	res, err := svc.Do(context.Background(), ServiceRequest{
		Circuit: c, Kind: KindSample, Shots: 64, Seed: 3,
		Options: Options{Strategy: "dagp", Lm: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 64 || res.CacheHit {
		t.Fatalf("cold request: %d samples, hit=%v", len(res.Samples), res.CacheHit)
	}
	// Second request on a freshly built but identical circuit hits the
	// cache via the content fingerprint.
	warm, err := svc.Do(context.Background(), ServiceRequest{
		Circuit: MustCircuit("qft", 8), Kind: KindSample, Shots: 64, Seed: 3,
		Options: Options{Strategy: "dagp", Lm: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("identical circuit missed the cache")
	}
	for i := range res.Samples {
		if warm.Samples[i] != res.Samples[i] {
			t.Fatalf("seeded shots diverged at %d", i)
		}
	}
	if st := svc.Stats(); st.Simulations != 1 {
		t.Fatalf("simulations = %d", st.Simulations)
	}
}

func TestFacadeFingerprintAndContext(t *testing.T) {
	a := MustCircuit("ising", 8)
	b := MustCircuit("ising", 8)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("identical circuits fingerprint differently")
	}
	if Fingerprint(a) == Fingerprint(MustCircuit("qft", 8)) {
		t.Fatal("different circuits collide")
	}
	// A qelib1-basis circuit round-trips through QASM with its fingerprint
	// intact (the name is excluded; gates/params/qubits are preserved).
	plain := NewCircuit("plain", 3)
	plain.Append(gate.H(0), gate.CX(0, 1), gate.RZ(0.25, 2))
	back, err := ParseQASM(WriteQASM(plain))
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(back) != Fingerprint(plain) {
		t.Fatal("QASM round-trip changed the fingerprint")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimulateContext(ctx, a, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFacadeSimulateNoisy(t *testing.T) {
	c := MustCircuit("ising", 8)
	model := GlobalNoise(Depolarizing(0.01)).WithReadout(0.01, 0.01)
	ens, err := SimulateNoisy(c, Options{Noise: model}, NoisyRun{
		Trajectories: 50, Seed: 2, Shots: 500, Qubits: []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ens.Trajectories != 50 || ens.NoiseFree {
		t.Fatalf("ensemble: %+v", ens)
	}
	total := 0
	for _, n := range ens.Counts {
		total += n
	}
	if total != 500 {
		t.Fatalf("counts sum to %d", total)
	}
	if !ens.HasExpectation || math.Abs(ens.Expectation) > 1 {
		t.Fatalf("expectation %v (has=%v)", ens.Expectation, ens.HasExpectation)
	}

	// Ideal Simulate refuses the model; SimulateNoisy without noise takes
	// the one-simulation fast path.
	if _, err := Simulate(c, Options{Noise: model}); err == nil {
		t.Fatal("Simulate accepted a noise model")
	}
	free, err := SimulateNoisy(c, Options{}, NoisyRun{Trajectories: 8, Shots: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !free.NoiseFree {
		t.Fatal("ideal ensemble missed the noise-free fast path")
	}

	// The service speaks the noisy kinds too.
	svc := NewService(ServiceConfig{Workers: 2})
	defer svc.Close()
	res, err := svc.Do(context.Background(), ServiceRequest{
		Circuit: c, Kind: KindNoisySample, Shots: 200, Trajectories: 10,
		Noise: model,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trajectories != 10 || len(res.Counts) == 0 {
		t.Fatalf("service noisy result: %+v", res)
	}
}

func TestFacadeParameterizedSweepOptimize(t *testing.T) {
	// Params through the construction surface: Lit/Sym/Affine on a gate.
	tmpl := NewCircuit("tiny", 2)
	tmpl.Append(gate.H(0), gate.RZ(0, 1).WithArgs(Affine(2, "theta", 0)))
	if got := tmpl.Symbols(); len(got) != 1 || got[0] != "theta" {
		t.Fatalf("symbols = %v", got)
	}
	if Lit(0.5).Symbolic() || !Sym("x").Symbolic() {
		t.Fatal("Param constructors broken")
	}
	// Symbolic circuits survive the QASM round trip.
	back, err := ParseQASM(WriteQASM(tmpl))
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(back) != Fingerprint(tmpl) {
		t.Fatal("symbolic QASM round-trip changed the template fingerprint")
	}

	c := QAOAAnsatz(5, 1)
	if got := c.Symbols(); len(got) != 2 {
		t.Fatalf("QAOAAnsatz symbols = %v", got)
	}
	spec := ReadoutSpec{Observables: []Observable{
		{Name: "zz", Coeff: 1, Paulis: "ZZ", Qubits: []int{0, 1}},
	}}
	bindings := []map[string]float64{
		{"gamma0": 0.2, "beta0": 0.5},
		{"gamma0": 0.4, "beta0": 0.3},
		{"gamma0": 0.6, "beta0": 0.1},
	}
	rep, err := Sweep(c, Options{}, spec, bindings)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compiles != 1 || len(rep.Points) != 3 {
		t.Fatalf("sweep: %d compiles, %d points", rep.Compiles, len(rep.Points))
	}
	// Each point matches an independent concrete evaluation.
	for i, p := range rep.Points {
		bound, err := c.Bind(bindings[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := Evaluate(bound, Options{Backend: "flat"}, spec)
		if err != nil {
			t.Fatal(err)
		}
		if d := p.Readouts.Observables[0].Value - want.Observables[0].Value; math.Abs(d) > 1e-9 {
			t.Fatalf("point %d: sweep %v vs concrete %v", i, p.Readouts.Observables[0].Value, want.Observables[0].Value)
		}
	}

	opt, err := OptimizeParams(c, Options{}, OptimizeSpec{
		Observables: spec.Observables, Method: MethodSPSA,
		MaxIters: 15, Seed: 7, A: 0.4, C: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Trace) == 0 || opt.Compiles != 1 {
		t.Fatalf("optimize: %d trace entries, %d compiles", len(opt.Trace), opt.Compiles)
	}
	if err := c.CheckBinding(opt.Best); err != nil {
		t.Fatal(err)
	}

	// The service speaks the v3 kinds: sweep grid + optimize + run params.
	svc := NewService(ServiceConfig{Workers: 2})
	defer svc.Close()
	res, err := svc.Do(context.Background(), ServiceRequest{
		Circuit: c, Kind: KindSweep, Readouts: spec,
		Sweep: &SweepSpec{Grid: map[string][]float64{
			"gamma0": {0.1, 0.2, 0.3}, "beta0": {0.4, 0.5},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweep == nil || len(res.Sweep.Points) != 6 || res.Sweep.Compiles != 1 {
		t.Fatalf("service sweep: %+v", res.Sweep)
	}
	run, err := svc.Do(context.Background(), ServiceRequest{
		Circuit: c, Kind: KindRun, Readouts: spec, Params: bindings[0],
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := run.Observables[0].Value - rep.Points[0].Readouts.Observables[0].Value; math.Abs(d) > 1e-9 {
		t.Fatalf("KindRun+Params %v vs sweep point %v", run.Observables[0].Value, rep.Points[0].Readouts.Observables[0].Value)
	}
	if st := svc.Stats(); st.TemplateCompiles != 1 {
		t.Fatalf("template compiles = %d, want 1 across sweep+run", st.TemplateCompiles)
	}
	ores, err := svc.Do(context.Background(), ServiceRequest{
		Circuit: c, Kind: KindOptimize,
		Optimize: &OptimizeSpec{Observables: spec.Observables, MaxIters: 8, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ores.Optimize == nil || len(ores.Optimize.Trace) == 0 {
		t.Fatalf("service optimize: %+v", ores.Optimize)
	}
	// Binding mistakes fail at submit, naming the symbol.
	if _, err := svc.Do(context.Background(), ServiceRequest{
		Circuit: c, Kind: KindRun, Readouts: spec,
		Params: map[string]float64{"gamma0": 0.1},
	}); err == nil || !strings.Contains(err.Error(), "beta0") {
		t.Fatalf("unbound symbol not named: %v", err)
	}
}

func TestFacadeBackendsAndEvaluate(t *testing.T) {
	names := BackendNames()
	if len(names) < 4 {
		t.Fatalf("BackendNames() = %v, want the four built-ins", names)
	}
	for _, info := range Backends() {
		if info.Name == "" || info.Capabilities.Description == "" {
			t.Fatalf("bad backend info %+v", info)
		}
	}

	c := MustCircuit("ising", 7)
	spec := ReadoutSpec{
		Shots: 200, Seed: 3,
		Marginals: [][]int{{0, 1}},
		Observables: []Observable{
			{Name: "zz", Coeff: -1, Paulis: "ZZ", Qubits: []int{0, 1}},
			{Name: "x", Paulis: "X", Qubits: []int{2}},
		},
	}
	rep, err := Evaluate(c, Options{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sim == nil || rep.Sim.Backend != "hier" {
		t.Fatalf("default backend: %+v", rep.Sim)
	}
	// An explicit backend must agree with the default within tolerance.
	flat, err := Evaluate(c, Options{Backend: "flat"}, spec)
	if err != nil {
		t.Fatal(err)
	}
	for k := range rep.Observables {
		if d := rep.Observables[k].Value - flat.Observables[k].Value; d > 1e-9 || d < -1e-9 {
			t.Fatalf("observable %d: hier %v vs flat %v", k, rep.Observables[k].Value, flat.Observables[k].Value)
		}
	}

	// KindRun through the service: one simulation, all read-outs.
	svc := NewService(ServiceConfig{Workers: 2})
	defer svc.Close()
	res, err := svc.Do(context.Background(), ServiceRequest{Circuit: c, Kind: KindRun, Readouts: spec})
	if err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Simulations != 1 {
		t.Fatalf("service multi-readout ran %d simulations", st.Simulations)
	}
	if res.Observables[0].Value != rep.Observables[0].Value {
		t.Fatalf("service %v != library %v", res.Observables[0].Value, rep.Observables[0].Value)
	}
	if res.Backend != "hier" {
		t.Fatalf("service backend %q", res.Backend)
	}
}
