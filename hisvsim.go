// Package hisvsim is the public API of the HiSVSIM reproduction: a
// hierarchical, distributed state-vector quantum-circuit simulator driven by
// acyclic graph partitioning (Fang, Özkaya, Li, Çatalyürek, Krishnamoorthy —
// IEEE CLUSTER 2022).
//
// Quick start:
//
//	c := hisvsim.MustCircuit("qft", 16)
//	res, err := hisvsim.Simulate(c, hisvsim.Options{Strategy: "dagp", Lm: 12})
//	fmt.Println(res.Plan.NumParts(), res.State.Probability(0))
//
// The heavy lifting lives in the internal packages; this façade re-exports
// the stable surface: circuit construction (generators + OpenQASM 2.0),
// partitioning plans, single-node hierarchical execution, and the simulated
// multi-rank distributed executor with its IQS-style baseline.
//
// For serving many requests, NewService starts the asynchronous simulation
// service (job queue, worker pool, content-addressed plan/state cache,
// seeded shot sampling); cmd/hisvsimd exposes the same engine over
// HTTP/JSON.
package hisvsim

import (
	"context"
	"fmt"
	"net/http"

	"hisvsim/internal/backend"
	"hisvsim/internal/baseline"
	"hisvsim/internal/circuit"
	"hisvsim/internal/core"
	"hisvsim/internal/dag"
	"hisvsim/internal/dm"
	"hisvsim/internal/gate"
	"hisvsim/internal/mpi"
	"hisvsim/internal/noise"
	"hisvsim/internal/partition"
	"hisvsim/internal/qasm"
	"hisvsim/internal/service"
	"hisvsim/internal/sv"
)

// Circuit is an ordered gate list over n qubits. Construct with NewCircuit,
// a generator (Circuit / MustCircuit), or ParseQASM.
type Circuit = circuit.Circuit

// Gate is one (possibly controlled) unitary applied to specific qubits.
type Gate = gate.Gate

// Plan is an acyclic partitioning of a circuit into working-set-bounded
// parts.
type Plan = partition.Plan

// State is a dense 2^n-amplitude state vector.
type State = sv.State

// Options configures Simulate. See core.Options for field documentation.
type Options = core.Options

// FusePolicy selects gate fusion for Simulate (Options.Fuse). Fusion is on
// by default (FuseAuto, the zero value): runs of adjacent gates whose
// combined support stays within Options.MaxFuseQubits (default 5) execute
// as single fused kernels between communication points.
type FusePolicy = core.FusePolicy

// Fusion policies for Options.Fuse.
const (
	FuseAuto = core.FuseAuto // fusion on with default caps (zero value)
	FuseOn   = core.FuseOn   // fusion forced on
	FuseOff  = core.FuseOff  // per-gate execution
)

// Result bundles the plan, final state and execution metrics.
type Result = core.Result

// CostModel is the α–β communication model used by distributed runs.
type CostModel = mpi.CostModel

// NewCircuit returns an empty named circuit on n qubits.
func NewCircuit(name string, n int) *Circuit { return circuit.New(name, n) }

// BuildCircuit builds one of the benchmark families ("cat_state", "bv",
// "qaoa", "cc", "ising", "qft", "qnn", "grover", "qpe", "adder", "random")
// at approximately n qubits.
func BuildCircuit(family string, n int) (*Circuit, error) { return circuit.Named(family, n) }

// MustCircuit is BuildCircuit, panicking on error (for examples and tests).
func MustCircuit(family string, n int) *Circuit {
	c, err := BuildCircuit(family, n)
	if err != nil {
		panic(err)
	}
	return c
}

// Families lists the circuit generator families BuildCircuit accepts.
func Families() []string { return circuit.Families() }

// ParseQASM reads OpenQASM 2.0 source into a circuit.
func ParseQASM(src string) (*Circuit, error) { return qasm.ParseToCircuit(src) }

// WriteQASM renders a circuit as OpenQASM 2.0 (lowering non-qelib1 gates).
func WriteQASM(c *Circuit) string { return qasm.Write(c) }

// Strategies lists the partitioner names Simulate and Partition accept.
func Strategies() []string { return core.StrategyNames() }

// BackendInfo pairs a registered execution backend's name with its
// capabilities.
type BackendInfo = backend.Info

// BackendCapabilities describes which execution specs a backend accepts.
type BackendCapabilities = backend.Capabilities

// Noise capability values for BackendCapabilities.Noise: how an engine
// serves requests that carry an effective noise model.
const (
	// NoiseCapabilityNone marks engines with no noisy path: noisy requests
	// naming them are rejected at submit.
	NoiseCapabilityNone = backend.NoiseNone
	// NoiseCapabilityTrajectory marks engines whose noisy requests run as
	// stochastic trajectory ensembles.
	NoiseCapabilityTrajectory = backend.NoiseTrajectory
	// NoiseCapabilityExact marks engines that evolve the exact density
	// matrix: one deterministic superoperator evolution, no ensemble.
	NoiseCapabilityExact = backend.NoiseExact
)

// Backends lists every registered execution backend ("flat", "hier",
// "dist", "baseline", "dm") with its capabilities. Options.Backend selects
// one by name; an empty name picks by rank count ("hier" single-node,
// "dist" beyond), exactly the pre-registry behavior.
func Backends() []BackendInfo { return core.Backends() }

// BackendNames lists just the registered backend names, sorted.
func BackendNames() []string { return core.BackendNames() }

// Partition builds an acyclic plan for the circuit with working-set limit
// lm using the named strategy ("nat", "dfs", "dagp", or "exact").
func Partition(c *Circuit, lm int, strategy string) (*Plan, error) {
	s, err := core.NewStrategy(strategy, 0)
	if err != nil {
		return nil, err
	}
	pl, err := s.Partition(dag.FromCircuit(c), lm)
	if err != nil {
		return nil, err
	}
	if err := partition.Validate(pl); err != nil {
		return nil, fmt.Errorf("hisvsim: internal: %w", err)
	}
	return pl, nil
}

// ValidatePlan re-checks every plan invariant (disjoint-exhaustive parts,
// working-set bound, acyclic quotient graph).
func ValidatePlan(pl *Plan) error { return partition.Validate(pl) }

// PlanMetrics summarizes a plan's structural quality (part sizes, working
// sets, qubit churn between parts, cut edges).
type PlanMetrics = partition.PlanMetrics

// MeasurePlan computes PlanMetrics for a plan.
func MeasurePlan(pl *Plan) PlanMetrics { return partition.ComputeMetrics(pl) }

// Optimize applies the gate-level passes that are orthogonal to
// partitioning (§II-C): inverse-pair cancellation and rotation fusion, to a
// fixed point. The returned circuit has the identical unitary.
func Optimize(c *Circuit) *Circuit { return circuit.Optimize(c) }

// DotDAG renders the circuit's dependency DAG in Graphviz format, colored
// by the plan's parts when pl is non-nil (the paper's Fig. 2b/4 rendering).
func DotDAG(c *Circuit, pl *Plan) string {
	opts := dag.DotOptions{Name: c.Name}
	if pl != nil {
		partOf := make([]int, c.NumGates())
		for pi, part := range pl.Parts {
			for _, gi := range part.GateIndices {
				partOf[gi] = pi
			}
		}
		opts.PartOf = partOf
	}
	return dag.FromCircuit(c).Dot(opts)
}

// Simulate partitions and executes a circuit from |0…0⟩. With Ranks > 1 it
// runs the distributed executor over simulated MPI ranks; otherwise the
// single-node hierarchical executor.
func Simulate(c *Circuit, opts Options) (*Result, error) { return core.Simulate(c, opts) }

// SimulateContext is Simulate under a context: cancellation or deadline
// expiry aborts the run at the next part/step boundary with the context's
// error.
func SimulateContext(ctx context.Context, c *Circuit, opts Options) (*Result, error) {
	return core.SimulateContext(ctx, c, opts)
}

// NoiseModel describes how a circuit decoheres: channel-insertion rules
// (which single-qubit channel fires after which gates on which qubits) plus
// an optional classical readout error. Build with NewNoiseModel /
// GlobalNoise / NoiseOnGates and the channel constructors, then pass it via
// Options.Noise to SimulateNoisy.
type NoiseModel = noise.Model

// NoiseRule attaches one channel to a class of gate applications.
type NoiseRule = noise.Rule

// NoiseChannel is a k-qubit quantum channel in Kraus form (with a
// Pauli-mixture fast path where one exists). The classic constructors are
// single-qubit; CorrelatedDepolarizing2 is the two-qubit correlated form
// for entangler-gate noise.
type NoiseChannel = noise.Channel

// Readout is the classical measurement-error model (per-bit flip
// probabilities applied to sampled bitstrings).
type Readout = noise.Readout

// NoisyRun configures a trajectory ensemble: size, seed, parallelism, and
// the requested read-outs (Shots for counts, Qubits for a Z-string
// expectation).
type NoisyRun = noise.RunConfig

// NoisyEnsemble is the aggregated result of a trajectory run: counts,
// expectation ± standard error, and stochastic-work statistics.
type NoisyEnsemble = noise.Ensemble

// PauliString is a weighted Pauli operator in the state-kernel form
// (NoisyRun.Observables and State.ExpectationPauliString). Observable is
// the same concept on the request surface; prefer it with Evaluate /
// KindRun.
type PauliString = sv.PauliString

// NewNoiseModel builds a noise model from rules.
func NewNoiseModel(rules ...NoiseRule) *NoiseModel { return noise.NewModel(rules...) }

// GlobalNoise applies one channel after every gate on every touched qubit.
func GlobalNoise(ch NoiseChannel) *NoiseModel { return noise.Global(ch) }

// NoiseOnGates restricts a channel to the named gate classes (e.g. only
// two-qubit entanglers: NoiseOnGates(Depolarizing(0.01), "cx", "cz")).
func NoiseOnGates(ch NoiseChannel, gates ...string) *NoiseModel {
	return noise.OnGates(ch, gates...)
}

// Depolarizing returns the depolarizing channel with total error
// probability p (X, Y, Z each with p/3).
func Depolarizing(p float64) NoiseChannel { return noise.Depolarizing(p) }

// BitFlip returns the bit-flip channel (X with probability p).
func BitFlip(p float64) NoiseChannel { return noise.BitFlip(p) }

// PhaseFlip returns the phase-flip channel (Z with probability p).
func PhaseFlip(p float64) NoiseChannel { return noise.PhaseFlip(p) }

// AmplitudeDamping returns the T1 relaxation channel with rate gamma
// (non-unital: trajectories use exact norm-weighted Kraus selection).
func AmplitudeDamping(gamma float64) NoiseChannel { return noise.AmplitudeDamping(gamma) }

// PhaseDamping returns the pure-dephasing (T2) channel with rate gamma.
func PhaseDamping(gamma float64) NoiseChannel { return noise.PhaseDamping(gamma) }

// CorrelatedDepolarizing2 returns the two-qubit correlated depolarizing
// channel with total error probability p: each of the 15 non-identity
// two-qubit Pauli products with probability p/15, applied to the pair as a
// whole — the standard NISQ model for entangler-gate noise. Attach it to
// two-qubit gate classes (NoiseOnGates(…, "cx")); the compiler rejects
// rules that match gates of any other arity.
func CorrelatedDepolarizing2(p float64) NoiseChannel { return noise.CorrelatedDepolarizing2(p) }

// SimulateNoisy runs a stochastic trajectory ensemble of the circuit under
// opts.Noise: the circuit plus noise model compiles once into a fused
// trajectory plan, run.Trajectories seeded trajectories replay it in
// parallel, and the ensemble aggregates sampled counts (run.Shots) and/or a
// Z-string expectation with standard error (run.Qubits). A zero-effect
// model reduces to ONE ideal simulation (strategy/ranks honored,
// bit-for-bit identical to Simulate) plus sampling.
//
//	model := hisvsim.GlobalNoise(hisvsim.Depolarizing(0.01)).WithReadout(0.02, 0.02)
//	ens, err := hisvsim.SimulateNoisy(c,
//		hisvsim.Options{Noise: model},
//		hisvsim.NoisyRun{Trajectories: 500, Seed: 7, Shots: 4096})
func SimulateNoisy(c *Circuit, opts Options, run NoisyRun) (*NoisyEnsemble, error) {
	return core.SimulateNoisy(c, opts, run)
}

// SimulateNoisyContext is SimulateNoisy under a context: cancellation
// aborts the ensemble at the next trajectory boundary.
func SimulateNoisyContext(ctx context.Context, c *Circuit, opts Options, run NoisyRun) (*NoisyEnsemble, error) {
	return core.SimulateNoisyContext(ctx, c, opts, run)
}

// ReadoutSpec is the unified multi-readout request of the v2 surface: any
// mix of statevector, seeded shots, marginal distributions and weighted
// Pauli-string observables, all answered by ONE simulation (or one
// trajectory ensemble under a noise model). Evaluate, ServiceRequest
// (KindRun) and the hisvsimd "readouts" JSON body all speak it.
type ReadoutSpec = core.ReadoutSpec

// Observable is one weighted Pauli string Coeff·⟨∏ σ⟩ with σ ∈ {I,X,Y,Z}
// (a Hamiltonian term; zero Coeff means 1). A Hamiltonian H = Σ c_k P_k is
// a list of Observables and its energy the sum of the returned values.
type Observable = core.Observable

// ObservableValue is one evaluated observable (trajectory mean ± standard
// error under noise; exact with StdErr 0 otherwise).
type ObservableValue = core.ObservableValue

// Readouts bundles every read-out a ReadoutSpec produced.
type Readouts = core.Readouts

// DensityMatrix is an exact n-qubit density matrix ρ — the "dm" backend's
// execution artifact (RunReport.Density). Probabilities, marginals,
// Tr(ρP) observables, purity and seeded sampling read directly from it.
type DensityMatrix = dm.Density

// RunReport is Evaluate's result: the read-outs plus the execution
// artifact that produced them (ideal Result or noisy Ensemble).
type RunReport = core.RunReport

// Evaluate runs ONE simulation of the circuit under opts and derives every
// read-out the spec asks for — the v2 request surface:
//
//	rep, err := hisvsim.Evaluate(c, hisvsim.Options{Backend: "hier"}, hisvsim.ReadoutSpec{
//		Shots: 1024, Seed: 7,
//		Marginals:   [][]int{{0, 1}},
//		Observables: []hisvsim.Observable{
//			{Name: "zz01", Coeff: -1, Paulis: "ZZ", Qubits: []int{0, 1}},
//			{Name: "x2", Paulis: "X", Qubits: []int{2}},
//		},
//	})
//
// With an effective Options.Noise model the read-outs aggregate over a
// trajectory ensemble of spec.Trajectories runs instead (statevector is
// then rejected) — except on Options.Backend "dm", where the exact density
// matrix evolves once and every read-out is deterministic (StdErr 0,
// seed-independent observables; see the Backends listing for the engine's
// qubit cap).
func Evaluate(c *Circuit, opts Options, spec ReadoutSpec) (*RunReport, error) {
	return core.Evaluate(c, opts, spec)
}

// EvaluateContext is Evaluate under a context.
func EvaluateContext(ctx context.Context, c *Circuit, opts Options, spec ReadoutSpec) (*RunReport, error) {
	return core.EvaluateContext(ctx, c, opts, spec)
}

// Fingerprint returns the circuit's stable content hash (SHA-256 over the
// qubit count and ordered gate list; the name is excluded). Circuits with
// the same gate list — rebuilt or cloned — share a fingerprint, which is
// what the service cache keys on. Note that WriteQASM lowers non-qelib1
// gates (mcx, rzz, …), so a QASM round-trip preserves the fingerprint only
// for circuits already in the qelib1 basis.
func Fingerprint(c *Circuit) string { return c.Fingerprint() }

// Run simulates a circuit flat (no partitioning) — the reference result.
func Run(c *Circuit) (*State, error) { return sv.Run(c) }

// BaselineResult reports the IQS-style baseline run.
type BaselineResult = baseline.Result

// RunBaseline simulates the circuit with the IQS/qHiPSTER-style distributed
// scheme (fixed layout, pairwise exchange per global-qubit gate) for
// comparison against Simulate with the same rank count. Runs of fully-local
// gates between exchanges are fused, matching Simulate's default.
func RunBaseline(c *Circuit, ranks int) (*BaselineResult, error) {
	return baseline.Run(c, baseline.Config{Ranks: ranks, GatherResult: true, Fuse: true})
}

// HDR100 returns the InfiniBand HDR-100-class communication model used in
// the paper's evaluation.
func HDR100() CostModel { return mpi.HDR100() }

// Service is the asynchronous simulation service: a bounded worker pool
// draining a job queue, with a content-addressed plan/state cache so repeat
// circuits cost one simulation plus sampling. See internal/service for the
// full API (Submit/Wait/Do/Job/Cancel/Stats/Close) and cmd/hisvsimd for the
// HTTP daemon serving the same engine.
type Service = service.Service

// ServiceConfig tunes a Service (worker count, queue depth, cache budget,
// job retention, qubit limit). The zero value selects sensible defaults.
type ServiceConfig = service.Config

// ServiceRequest describes one job: the circuit, the read-out kind, and
// kind-specific fields (shots + seed, qubits) plus simulation Options.
type ServiceRequest = service.Request

// ServiceResult is a completed job's payload.
type ServiceResult = service.Result

// ServiceStats snapshots the service counters (jobs, simulations, cache
// hits/misses, queue length).
type ServiceStats = service.Stats

// JobInfo is a point-in-time snapshot of a submitted job.
type JobInfo = service.JobInfo

// RequestKind selects what a service job computes.
type RequestKind = service.Kind

// Request kinds for ServiceRequest.Kind.
const (
	// KindRun is the v2 unified kind: ServiceRequest.Readouts holds a
	// ReadoutSpec and one cached simulation answers every listed read-out.
	KindRun = service.KindRun

	// Deprecated single-readout kinds (thin shims over KindRun's path;
	// responses stay byte-compatible with the v1 surface).
	KindStatevector   = service.KindStatevector   // full amplitude vector
	KindSample        = service.KindSample        // seeded shot sampling
	KindExpectation   = service.KindExpectation   // ⟨∏ Z_q⟩ Pauli-Z string
	KindProbabilities = service.KindProbabilities // marginal distribution

	KindNoisySample      = service.KindNoisySample      // trajectory-ensemble counts
	KindNoisyExpectation = service.KindNoisyExpectation // trajectory-mean ⟨∏ Z_q⟩ ± stderr
)

// NewService starts the asynchronous simulation service with its worker
// pool running. Close it when done:
//
//	svc := hisvsim.NewService(hisvsim.ServiceConfig{Workers: 4})
//	defer svc.Close()
//	res, err := svc.Do(ctx, hisvsim.ServiceRequest{
//		Circuit: hisvsim.MustCircuit("qft", 18),
//		Kind:    hisvsim.KindSample,
//		Shots:   1000, Seed: 7,
//	})
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// NewServiceHandler exposes a Service over HTTP/JSON (the cmd/hisvsimd
// surface: submit, poll, long-poll result, cancel, stats, health).
func NewServiceHandler(s *Service) http.Handler { return service.NewHandler(s) }

// Param is one gate angle: either a literal value or an affine form
// Scale·θ+Offset over a named symbol θ. Circuits whose gates carry symbolic
// Params are templates — compile once, bind many times. Build with Lit /
// Sym / Affine and attach via Gate.WithArgs; OpenQASM 2.0 round-trips them
// (rz(2*gamma0 + 0.5) q[0];).
type Param = gate.Param

// Lit returns a concrete (non-symbolic) parameter value.
func Lit(v float64) Param { return gate.Lit(v) }

// Sym returns the parameter that evaluates to the named symbol's binding.
func Sym(name string) Param { return gate.Sym(name) }

// Affine returns the parameter scale·θ+offset over the named symbol.
func Affine(scale float64, name string, offset float64) Param {
	return gate.Affine(scale, name, offset)
}

// QAOAAnsatz builds the parameterized QAOA ring ansatz on n qubits: an H
// wall, then per layer l the cost unitary (CX·RZ(2·gamma_l)·CX per ring
// bond) and the mixer RX(2·beta_l) on every qubit. Its symbols are
// "gamma0", "beta0", "gamma1", … — bind them with Circuit.Bind, sweep them
// with Sweep / KindSweep, or optimize them with OptimizeParams /
// KindOptimize.
func QAOAAnsatz(n, layers int) *Circuit { return circuit.QAOAAnsatz(n, layers) }

// SweepPoint is one grid point of a parameter sweep: the binding plus its
// read-outs.
type SweepPoint = core.SweepPoint

// SweepReport aggregates a sweep: per-point read-outs plus the evidence
// that the template amortized (Compiles == 1 regardless of point count,
// symbol-touched vs shared fused blocks).
type SweepReport = core.SweepReport

// OptimizeSpec configures a server-side variational optimization: the
// weighted Pauli objective, the method (MethodSPSA or MethodNelderMead),
// the starting point, and iteration/tolerance/trajectory knobs. The zero
// value of every knob selects a sensible default.
type OptimizeSpec = core.OptimizeSpec

// OptimizeReport is the outcome of OptimizeParams / KindOptimize: best
// binding and objective value, per-iteration trace, and work counters.
type OptimizeReport = core.OptimizeReport

// OptimizeIteration is one entry of OptimizeReport.Trace.
type OptimizeIteration = core.OptimizeIteration

// Optimization methods for OptimizeSpec.Method.
const (
	MethodSPSA       = core.MethodSPSA       // simultaneous-perturbation gradient descent (default)
	MethodNelderMead = core.MethodNelderMead // derivative-free simplex
)

// Sweep evaluates a parameterized circuit at every binding: the template
// compiles ONCE (fused blocks untouched by any symbol are shared
// read-only; symbol-touched blocks re-specialize per point) and each point
// reports the full ReadoutSpec. Under Options.Noise each point runs a
// trajectory ensemble from the same re-bound plan.
//
//	c := hisvsim.QAOAAnsatz(6, 1)
//	rep, err := hisvsim.Sweep(c, hisvsim.Options{}, spec, []map[string]float64{
//		{"gamma0": 0.1, "beta0": 0.4},
//		{"gamma0": 0.2, "beta0": 0.3},
//	})
func Sweep(c *Circuit, opts Options, spec ReadoutSpec, bindings []map[string]float64) (*SweepReport, error) {
	return core.Sweep(c, opts, spec, bindings)
}

// SweepContext is Sweep under a context: cancellation aborts at the next
// grid point.
func SweepContext(ctx context.Context, c *Circuit, opts Options, spec ReadoutSpec, bindings []map[string]float64) (*SweepReport, error) {
	return core.SweepContext(ctx, c, opts, spec, bindings)
}

// OptimizeParams minimizes Σ c_k⟨P_k⟩ over a parameterized circuit's
// symbols server-side (SPSA or Nelder-Mead), evaluating every candidate
// binding against the once-compiled template. (Optimize, by contrast, is
// the gate-level circuit rewriter.)
func OptimizeParams(c *Circuit, opts Options, spec OptimizeSpec) (*OptimizeReport, error) {
	return core.Optimize(c, opts, spec)
}

// OptimizeParamsContext is OptimizeParams under a context: cancellation
// aborts at the next objective evaluation.
func OptimizeParamsContext(ctx context.Context, c *Circuit, opts Options, spec OptimizeSpec) (*OptimizeReport, error) {
	return core.OptimizeContext(ctx, c, opts, spec)
}

// SweepSpec is the binding set of a KindSweep service request: either an
// explicit Bindings list or a Grid of per-symbol value lists (cartesian by
// default, position-wise with Zip).
type SweepSpec = service.SweepSpec

// Parameterized v3 request kinds for ServiceRequest.Kind.
const (
	// KindSweep evaluates ServiceRequest.Sweep's binding set against the
	// once-compiled template; Readouts applies per point.
	KindSweep = service.KindSweep
	// KindOptimize runs ServiceRequest.Optimize server-side and reports
	// the best binding with its iteration trace.
	KindOptimize = service.KindOptimize
)
