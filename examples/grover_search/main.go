// Grover search: run Grover's algorithm through the hierarchical simulator
// and watch the marked state's probability grow with each iteration — the
// workload class the paper's Table I includes as `grover`.
package main

import (
	"fmt"
	"log"

	"hisvsim"
	"hisvsim/internal/circuit"
)

func main() {
	const dataQubits = 8 // search space of 256 items; 6 V-chain ancillas

	for iters := 1; iters <= 4; iters++ {
		c := circuit.Grover(dataQubits, iters)
		res, err := hisvsim.Simulate(c, hisvsim.Options{Strategy: "dagp", Lm: c.NumQubits - 4})
		if err != nil {
			log.Fatal(err)
		}
		// The oracle marks the all-ones data pattern; ancillas return to 0.
		marked := (1 << dataQubits) - 1
		p := 0.0
		for i := 0; i < res.State.Dim(); i++ {
			if i&marked == marked && i>>dataQubits == 0 {
				p += res.State.BasisProbability(i)
			}
		}
		fmt.Printf("iterations=%d  parts=%2d  P(marked)=%.4f  (uniform would be %.4f)\n",
			iters, res.Plan.NumParts(), p, 1.0/float64(int(1)<<dataQubits))
	}
	fmt.Println("\nGrover amplifies the marked item; the partitioned simulation")
	fmt.Println("computes the exact same amplitudes as a flat state vector.")
}
