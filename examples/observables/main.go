// Example observables: evaluate a small transverse-field Ising Hamiltonian
//
//	H = −J Σ Z_i Z_{i+1} − h Σ X_i
//
// on a circuit's final state in ONE request. Every term is a weighted
// Pauli-string observable in a single ReadoutSpec, so the whole energy —
// plus bonus shot counts and a marginal — costs exactly one simulation.
// The same request then runs through the service (KindRun) to show the
// `simulations` stat staying at 1, and once more under a depolarizing
// noise model, where the terms become trajectory means ± standard errors.
package main

import (
	"context"
	"fmt"
	"log"

	"hisvsim"
)

func main() {
	const (
		n = 8
		J = 1.0
		h = 0.6
	)
	c := hisvsim.MustCircuit("ising", n)

	// Build the Hamiltonian term list: n−1 ZZ bonds + n X fields.
	var obs []hisvsim.Observable
	for i := 0; i < n-1; i++ {
		obs = append(obs, hisvsim.Observable{
			Name: fmt.Sprintf("zz%d%d", i, i+1), Coeff: -J,
			Paulis: "ZZ", Qubits: []int{i, i + 1},
		})
	}
	for i := 0; i < n; i++ {
		obs = append(obs, hisvsim.Observable{
			Name: fmt.Sprintf("x%d", i), Coeff: -h,
			Paulis: "X", Qubits: []int{i},
		})
	}
	spec := hisvsim.ReadoutSpec{
		Shots: 1000, Seed: 7,
		Marginals:   [][]int{{0, 1}},
		Observables: obs,
	}

	// Library form: one Evaluate call, every read-out from one simulation.
	rep, err := hisvsim.Evaluate(c, hisvsim.Options{Strategy: "dagp"}, spec)
	if err != nil {
		log.Fatal(err)
	}
	energy := 0.0
	for _, ov := range rep.Observables {
		energy += ov.Value
	}
	fmt.Printf("⟨H⟩ over %d terms (backend %s): %.6f\n", len(rep.Observables), rep.Sim.Backend, energy)
	fmt.Printf("p(q1q0): %v\n", rep.Marginals[0])

	// Service form: same spec as a KindRun job. The stats prove the
	// multi-readout request cost one simulation.
	svc := hisvsim.NewService(hisvsim.ServiceConfig{Workers: 2})
	defer svc.Close()
	res, err := svc.Do(context.Background(), hisvsim.ServiceRequest{
		Circuit: c, Kind: hisvsim.KindRun, Readouts: spec,
	})
	if err != nil {
		log.Fatal(err)
	}
	senergy := 0.0
	for _, ov := range res.Observables {
		senergy += ov.Value
	}
	st := svc.Stats()
	fmt.Printf("service ⟨H⟩ = %.6f from %d simulation(s), %d shots, backend %s\n",
		senergy, st.Simulations, len(res.Samples), res.Backend)

	// Noisy form: the same Hamiltonian under 1% depolarizing noise; each
	// term is now a trajectory mean with a standard error.
	noisy, err := hisvsim.Evaluate(c,
		hisvsim.Options{Noise: hisvsim.GlobalNoise(hisvsim.Depolarizing(0.01))},
		hisvsim.ReadoutSpec{Observables: obs, Trajectories: 200, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	// Note: per-term standard errors are NOT independent — every term is
	// measured on the same trajectories — so they cannot be summed in
	// quadrature into an energy error bar; report them per term instead.
	nenergy, maxSE := 0.0, 0.0
	for _, ov := range noisy.Observables {
		nenergy += ov.Value
		maxSE = max(maxSE, ov.StdErr)
	}
	fmt.Printf("noisy ⟨H⟩ over %d trajectories: %.6f (largest per-term stderr %.6f)\n",
		noisy.Trajectories, nenergy, maxSE)
}
