// Example service: drive the asynchronous simulation service
// programmatically — submit a burst of differently-seeded shot requests
// against one circuit and watch the cache amortize the simulation, then
// read out expectation values and marginals from the same cached state.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hisvsim"
)

func main() {
	svc := hisvsim.NewService(hisvsim.ServiceConfig{Workers: 4})
	defer svc.Close()

	c := hisvsim.MustCircuit("qft", 16)
	opts := hisvsim.Options{Strategy: "dagp"}
	ctx := context.Background()

	// Async submit → poll → wait.
	id, err := svc.Submit(hisvsim.ServiceRequest{
		Circuit: c, Kind: hisvsim.KindSample, Shots: 1000, Seed: 1, Options: opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	info, _ := svc.Job(id)
	fmt.Printf("submitted %s: %s\n", id, info.Status)
	cold, err := svc.Wait(ctx, id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold run: %d parts, %v (cache hit: %v)\n", cold.Parts, cold.Elapsed.Round(time.Microsecond), cold.CacheHit)

	// A burst of repeat requests: one simulation total, the rest sample the
	// cached state through a shared CDF.
	start := time.Now()
	for seed := int64(2); seed <= 9; seed++ {
		res, err := svc.Do(ctx, hisvsim.ServiceRequest{
			Circuit: c, Kind: hisvsim.KindSample, Shots: 1000, Seed: seed, Options: opts,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.CacheHit {
			log.Fatal("expected a cache hit")
		}
	}
	fmt.Printf("8 warm sample requests in %v\n", time.Since(start).Round(time.Microsecond))

	// Other read-outs reuse the same entry.
	exp, err := svc.Do(ctx, hisvsim.ServiceRequest{
		Circuit: c, Kind: hisvsim.KindExpectation, Qubits: []int{0, 1}, Options: opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	probs, err := svc.Do(ctx, hisvsim.ServiceRequest{
		Circuit: c, Kind: hisvsim.KindProbabilities, Qubits: []int{0, 1, 2}, Options: opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("⟨Z0Z1⟩ = %.6f, marginal(q0..q2) has %d bins\n", exp.Expectation, len(probs.Probabilities))

	st := svc.Stats()
	fmt.Printf("stats: %d jobs, %d simulations, %d cache hits\n", st.Completed, st.Simulations, st.CacheHits)
}
