// Example noise: simulate a GHZ state under a NISQ-style noise model and
// watch decoherence appear in the counts — then measure the analytic
// depolarizing ⟨Z⟩ decay and fan trajectory ensembles through the service.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"hisvsim"
)

func main() {
	// A 10-qubit GHZ state: ideally only |00…0⟩ and |11…1⟩ appear.
	const n = 10
	ghz := hisvsim.NewCircuit("ghz", n)
	ghz.Append(hisvsim.Gate{Name: "h", Qubits: []int{0}})
	for q := 1; q < n; q++ {
		ghz.Append(hisvsim.Gate{Name: "cx", Qubits: []int{q - 1, q}, Ctrl: 1})
	}

	// Depolarizing noise after every gate, heavier on the entanglers, plus
	// a biased readout error.
	model := hisvsim.GlobalNoise(hisvsim.Depolarizing(0.002))
	model.AddRule(hisvsim.NoiseRule{Channel: hisvsim.Depolarizing(0.01), Gates: []string{"cx"}})
	model.WithReadout(0.01, 0.02)

	ens, err := hisvsim.SimulateNoisy(ghz,
		hisvsim.Options{Noise: model},
		hisvsim.NoisyRun{Trajectories: 400, Seed: 7, Shots: 8192})
	if err != nil {
		log.Fatal(err)
	}
	ideal := 0
	for basis, count := range ens.Counts {
		if basis == 0 || basis == (1<<n)-1 {
			ideal += count
		}
	}
	fmt.Printf("noisy GHZ: %s\n", ens)
	fmt.Printf("  GHZ outcomes |0…0⟩+|1…1⟩: %.1f%% of shots (ideal: 100%%)\n",
		100*float64(ideal)/float64(ens.Shots))
	fmt.Printf("  stochastic work: %d channel draws, %d Pauli insertions, %d Kraus applications\n",
		ens.Stats.Locations, ens.Stats.PauliApplied, ens.Stats.KrausApplied)

	// Analytic check: k depolarizing hits on one qubit decay ⟨Z⟩ by
	// (1 − 4p/3)^k. Trajectory estimate vs. closed form:
	const p, k = 0.05, 8
	chain := hisvsim.NewCircuit("chain", 1)
	for i := 0; i < k; i++ {
		chain.Append(hisvsim.Gate{Name: "id", Qubits: []int{0}})
	}
	dec, err := hisvsim.SimulateNoisy(chain,
		hisvsim.Options{Noise: hisvsim.GlobalNoise(hisvsim.Depolarizing(p))},
		hisvsim.NoisyRun{Trajectories: 4000, Seed: 1, Qubits: []int{0}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("depolarizing decay: ⟨Z⟩ = %.4f ± %.4f, analytic (1-4p/3)^%d = %.4f\n",
		dec.Expectation, dec.StdErr, k, math.Pow(1-4*p/3, k))

	// The same ensembles run as service jobs: the compiled circuit+noise
	// plan is cached, so repeat requests skip compilation and replay it.
	svc := hisvsim.NewService(hisvsim.ServiceConfig{Workers: 4})
	defer svc.Close()
	for i, seed := range []int64{1, 2} {
		res, err := svc.Do(context.Background(), hisvsim.ServiceRequest{
			Circuit: ghz, Kind: hisvsim.KindNoisySample,
			Shots: 2048, Seed: seed, Trajectories: 100, Noise: model,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("service job %d: %d trajectories, %d outcomes, plan cache hit: %v\n",
			i+1, res.Trajectories, len(res.Counts), res.CacheHit)
	}
}
