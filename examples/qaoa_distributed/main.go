// Distributed QAOA: simulate a QAOA MaxCut ansatz over simulated MPI ranks
// with HiSVSIM's per-part relayout, and compare its communication against
// the IQS-style per-gate exchange baseline — the paper's Fig. 5/7 setup in
// miniature.
package main

import (
	"fmt"
	"log"

	"hisvsim"
)

func main() {
	c := hisvsim.MustCircuit("qaoa", 14)
	fmt.Println("circuit:", c)

	const ranks = 4
	res, err := hisvsim.Simulate(c, hisvsim.Options{Strategy: "dagp", Ranks: ranks})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHiSVSIM (dagP) on %d ranks: %d parts, %d global relayouts, %.2f MB over the network\n",
		ranks, res.Plan.NumParts(), res.Dist.Relayouts, float64(res.Dist.BytesComm)/(1<<20))
	for _, s := range res.Dist.Stats {
		fmt.Printf("  rank %d: %4d msgs, %.2f MB sent, modeled comm %.4g s\n",
			s.Rank, s.MsgsSent, float64(s.BytesSent)/(1<<20), s.CommSeconds)
	}

	base, err := hisvsim.RunBaseline(c, ranks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIQS-style baseline: %d pairwise exchanges, %.2f MB over the network\n",
		base.Exchanges, float64(base.BytesComm)/(1<<20))

	fmt.Printf("\ncommunication volume ratio (baseline / HiSVSIM): %.2fx\n",
		float64(base.BytesComm)/float64(res.Dist.BytesComm))

	// Both must agree with each other exactly.
	fmt.Printf("fidelity(HiSVSIM, baseline) = %.12f\n", res.State.Fidelity(base.State))
}
