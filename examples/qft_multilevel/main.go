// Multi-level execution: run the QFT once with single-level partitioning
// and once with a second (cache-level) partition inside each part — the
// paper's Fig. 10 experiment — and report the execution metrics.
package main

import (
	"fmt"
	"log"

	"hisvsim"
)

func main() {
	c := hisvsim.MustCircuit("qft", 16)
	fmt.Println("circuit:", c)

	flat, err := hisvsim.Run(c)
	if err != nil {
		log.Fatal(err)
	}

	single, err := hisvsim.Simulate(c, hisvsim.Options{Strategy: "dagp", Lm: 12})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsingle-level: %d parts, executed in %v, fidelity %.12f\n",
		single.Plan.NumParts(), single.Elapsed, single.State.Fidelity(flat))

	multi, err := hisvsim.Simulate(c, hisvsim.Options{Strategy: "dagp", Lm: 12, SecondLevelLm: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-level:  %d parts, executed in %v, fidelity %.12f\n",
		multi.Plan.NumParts(), multi.Elapsed, multi.State.Fidelity(flat))
	for _, ps := range multi.Hier.PerPart {
		fmt.Printf("  part %d: %3d gates, %2d qubits, %d second-level sub-parts\n",
			ps.Index, ps.Gates, ps.Qubits, ps.SubParts)
	}
	fmt.Println("\nThe second level keeps inner vectors cache-resident: on real")
	fmt.Println("hardware (paper Fig. 10) this is worth ~1.5x over single-level.")
}
