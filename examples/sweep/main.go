// Example sweep: scan a 1-layer QAOA ansatz over a (γ, β) angle grid with
// ONE template compilation, then let the service optimize the angles.
//
// The ansatz carries symbolic gate angles (rz(2*gamma0), rx(2*beta0)), so
// the fused execution plan compiles once: blocks no symbol touches are
// shared read-only across every grid point, and only the symbol-touched
// blocks re-specialize per binding. The sweep report carries the evidence
// (Compiles == 1 for the whole grid).
//
// The same template then goes through the service as a KindSweep job — a
// 12×12 grid is still exactly one compile, visible in the service stats —
// and finally as a KindOptimize job running server-side SPSA against the
// MaxCut-style ZZ objective.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"hisvsim"
)

func main() {
	const n = 8
	c := hisvsim.QAOAAnsatz(n, 1) // symbols: gamma0, beta0

	// MaxCut-style ring objective: H = Σ Z_i Z_{i+1} (minimize).
	var obs []hisvsim.Observable
	for i := 0; i < n; i++ {
		obs = append(obs, hisvsim.Observable{
			Name: fmt.Sprintf("zz%d", i), Coeff: 1,
			Paulis: "ZZ", Qubits: []int{i, (i + 1) % n},
		})
	}
	spec := hisvsim.ReadoutSpec{Observables: obs}

	// Library form: a 12×12 cartesian grid, one Sweep call.
	const steps = 12
	var bindings []map[string]float64
	for i := 0; i < steps; i++ {
		for j := 0; j < steps; j++ {
			bindings = append(bindings, map[string]float64{
				"gamma0": math.Pi * float64(i) / steps,
				"beta0":  math.Pi * float64(j) / steps,
			})
		}
	}
	rep, err := hisvsim.Sweep(c, hisvsim.Options{}, spec, bindings)
	if err != nil {
		log.Fatal(err)
	}
	best, bestE := 0, math.Inf(1)
	for i, pt := range rep.Points {
		e := 0.0
		for _, ov := range pt.Readouts.Observables {
			e += ov.Value
		}
		if e < bestE {
			best, bestE = i, e
		}
	}
	fmt.Printf("swept %d points with %d template compile(s): %d symbol-touched / %d shared blocks\n",
		len(rep.Points), rep.Compiles, rep.TouchedBlocks, rep.SharedBlocks)
	fmt.Printf("grid minimum: γ=%.3f β=%.3f with ⟨H⟩ = %.6f\n",
		rep.Points[best].Binding["gamma0"], rep.Points[best].Binding["beta0"], bestE)

	// Service form: the same grid as one KindSweep job. The stats show the
	// whole grid cost one template compile.
	svc := hisvsim.NewService(hisvsim.ServiceConfig{Workers: 4})
	defer svc.Close()
	res, err := svc.Do(context.Background(), hisvsim.ServiceRequest{
		Circuit: c, Kind: hisvsim.KindSweep, Readouts: spec,
		Sweep: &hisvsim.SweepSpec{Grid: map[string][]float64{
			"gamma0": linspace(0, math.Pi, steps),
			"beta0":  linspace(0, math.Pi, steps),
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	st := svc.Stats()
	fmt.Printf("service sweep: %d points, stats report %d template compile(s)\n",
		len(res.Sweep.Points), st.TemplateCompiles)

	// Server-side optimization: SPSA refines the angles from the grid's
	// best cell, reporting the per-iteration trace.
	ores, err := svc.Do(context.Background(), hisvsim.ServiceRequest{
		Circuit: c, Kind: hisvsim.KindOptimize,
		Optimize: &hisvsim.OptimizeSpec{
			Observables: obs,
			Method:      hisvsim.MethodSPSA,
			Init:        rep.Points[best].Binding,
			MaxIters:    60, Seed: 7, A: 0.3, C: 0.1,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	o := ores.Optimize
	fmt.Printf("optimize (%s): %d iterations, %d evaluations\n", o.Method, len(o.Trace), o.Evaluations)
	fmt.Printf("best ⟨H⟩ = %.6f at γ=%.4f β=%.4f (grid gave %.6f)\n",
		o.BestValue, o.Best["gamma0"], o.Best["beta0"], bestE)
}

// linspace returns the half-open grid lo + i·(hi−lo)/count, matching the
// library sweep above point for point.
func linspace(lo, hi float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(count)
	}
	return out
}
