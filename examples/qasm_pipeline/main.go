// QASM pipeline: parse an OpenQASM 2.0 program (embedded here, as exported
// by any standard toolchain), optimize it, partition it with dagP, simulate
// it hierarchically, and print the measurement distribution — the full
// HiSVSIM toolchain end to end.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hisvsim"
	"hisvsim/internal/circuit"
)

// A small variational-style program in plain OpenQASM 2.0 with a user gate.
const program = `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
creg c[6];

gate entangle a,b { cx a,b; rz(pi/3) b; cx a,b; }

h q;
entangle q[0],q[1];
entangle q[2],q[3];
entangle q[4],q[5];
rx(pi/4) q;
entangle q[1],q[2];
entangle q[3],q[4];
// redundant pair an optimizer should remove:
h q[0];
h q[0];
measure q -> c;
`

func main() {
	c, err := hisvsim.ParseQASM(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed:   ", c)

	opt := circuit.Optimize(c)
	fmt.Println("optimized:", opt, "(inverse pairs cancelled)")

	res, err := hisvsim.Simulate(opt, hisvsim.Options{Strategy: "dagp", Lm: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan:      %d parts with working sets:", res.Plan.NumParts())
	for _, p := range res.Plan.Parts {
		fmt.Printf(" %v", p.Qubits)
	}
	fmt.Println()

	rng := rand.New(rand.NewSource(7))
	counts := res.State.Counts(2000, rng)
	fmt.Println("top outcomes of 2000 shots:")
	shown := 0
	for i := 0; i < res.State.Dim() && shown < 5; i++ {
		best, bestN := -1, 0
		for idx, n := range counts {
			if n > bestN {
				best, bestN = idx, n
			}
		}
		if best < 0 {
			break
		}
		fmt.Printf("  |%06b⟩: %4d shots (p=%.3f)\n", best, bestN, res.State.BasisProbability(best))
		delete(counts, best)
		shown++
	}

	// Round-trip back out to QASM.
	fmt.Println("\nre-exported OpenQASM (first lines):")
	out := hisvsim.WriteQASM(opt)
	for i, line := 0, 0; i < len(out) && line < 6; i++ {
		if out[i] == '\n' {
			line++
		}
	}
	fmt.Println(out[:120] + "...")
}
