// Quickstart: build a circuit, partition it with the dagP acyclic
// partitioner, execute it hierarchically, and verify against flat
// simulation.
package main

import (
	"fmt"
	"log"

	"hisvsim"
)

func main() {
	// A 16-qubit quantum Fourier transform: 152 gates, 1 MB state vector.
	c := hisvsim.MustCircuit("qft", 16)
	fmt.Println("circuit:", c)

	// Partition into parts of at most 10 qubits and execute each part
	// through the Gather-Execute-Scatter model (cache-resident inner
	// vectors).
	res, err := hisvsim.Simulate(c, hisvsim.Options{
		Strategy: "dagp",
		Lm:       10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d parts (strategy %s, partitioned in %s)\n",
		res.Plan.NumParts(), res.Plan.Strategy, res.Plan.Elapsed)
	for _, p := range res.Plan.Parts {
		fmt.Printf("  part %d: %3d gates over qubits %v\n", p.Index, len(p.GateIndices), p.Qubits)
	}
	fmt.Printf("executed in %s, %.1f MB moved between outer and inner vectors\n",
		res.Elapsed, float64(res.Hier.BytesMoved)/(1<<20))

	// Verify against a flat (unpartitioned) simulation.
	want, err := hisvsim.Run(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fidelity vs flat simulation: %.12f\n", res.State.Fidelity(want))
}
