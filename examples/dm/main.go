// Example dm: the same amplitude-damping experiment answered two ways —
// a stochastic trajectory ensemble (statistical error shrinking as 1/√T)
// and the exact density-matrix backend (one deterministic evolution, no
// error bars) — showing where each engine wins and that they agree.
package main

import (
	"fmt"
	"log"
	"math"

	"hisvsim"
)

func main() {
	// An 8-qubit Ising-evolution circuit under T1 relaxation (amplitude
	// damping, a NON-unital channel: trajectories must use exact
	// norm-weighted Kraus selection — the expensive unraveling) plus
	// correlated two-qubit depolarizing on the entanglers.
	const n, gamma = 8, 0.02
	c := hisvsim.MustCircuit("ising", n)
	model := hisvsim.GlobalNoise(hisvsim.AmplitudeDamping(gamma))
	model.AddRule(hisvsim.NoiseRule{
		Channel: hisvsim.CorrelatedDepolarizing2(0.01), Gates: []string{"rzz"},
	})

	obs := hisvsim.ReadoutSpec{
		Shots: 4096, Seed: 7,
		Observables: []hisvsim.Observable{
			{Name: "z0", Paulis: "Z", Qubits: []int{0}},
			{Name: "zz01", Paulis: "ZZ", Qubits: []int{0, 1}},
			{Name: "x3", Paulis: "X", Qubits: []int{3}},
		},
	}

	// Trajectory ensemble on the default engine: every observable is a
	// mean ± standard error over T stochastic runs.
	ensSpec := obs
	ensSpec.Trajectories = 600
	ens, err := hisvsim.Evaluate(c, hisvsim.Options{Noise: model, Backend: "flat"}, ensSpec)
	if err != nil {
		log.Fatal(err)
	}

	// Exact density matrix: ρ evolves once through UρU† and ΣKρK† — the
	// values the ensemble converges to, with StdErr identically 0.
	exact, err := hisvsim.Evaluate(c, hisvsim.Options{Noise: model, Backend: "dm"}, obs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("amplitude damping γ=%g on %s\n", gamma, c)
	fmt.Printf("%-6s %24s %16s %10s\n", "obs", "ensemble (600 traj)", "exact (dm)", "Δ/σ")
	for k, ov := range ens.Observables {
		ex := exact.Observables[k].Value
		sigmas := math.Abs(ov.Value-ex) / math.Max(ov.StdErr, 1e-12)
		fmt.Printf("%-6s %16.6f ± %.4f %16.6f %9.2fσ\n",
			ov.Name, ov.Value, ov.StdErr, ex, sigmas)
	}
	fmt.Printf("purity Tr(ρ²) = %.6f (1 = pure; %g = maximally mixed)\n",
		exact.Density.Purity(), 1/float64(int(1)<<n))

	// The engines trade off differently: a trajectory costs O(2^n) per run,
	// ρ costs O(4^n) once. See BENCH_dm.json for the measured crossover —
	// at n=8 an exact evolution buys ~1.5k trajectories; at n=12, ~50k.
	fmt.Println("\nrule of thumb: small register + tight error bars → backend \"dm\";")
	fmt.Println("wide register or few shots → trajectories (the dm engine caps at 13 qubits).")
}
