// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Tables I–IV, Figs. 5–10, the §V-A ILP-optimality and thread
// scaling studies), plus kernel microbenchmarks and dagP ablations.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark prints its paper-style table once and reports
// domain metrics (improvement factors, part counts, bytes) through
// b.ReportMetric. cmd/benchtables prints the same tables standalone.
package hisvsim

import (
	"fmt"
	"sync"
	"testing"

	"hisvsim/internal/bench"
	"hisvsim/internal/circuit"
	"hisvsim/internal/core"
	"hisvsim/internal/dag"
	"hisvsim/internal/experiments"
	"hisvsim/internal/gate"
	"hisvsim/internal/hier"
	"hisvsim/internal/partition"
	"hisvsim/internal/partition/dagp"
	"hisvsim/internal/sv"
)

// benchCfg is the shared repro-scale configuration for the experiment
// benchmarks; raise Base for a closer (slower) match to the paper's scale.
func benchCfg() experiments.Config {
	return experiments.Config{
		Base:     12,
		Ranks:    []int{2, 4, 8},
		BigRanks: []int{8, 16},
		Seed:     1,
	}.WithDefaults()
}

var (
	gridOnce sync.Once
	gridVal  *experiments.Grid
	gridErr  error
)

func sharedGrid(b *testing.B) *experiments.Grid {
	b.Helper()
	gridOnce.Do(func() { gridVal, gridErr = experiments.RunGrid(benchCfg()) })
	if gridErr != nil {
		b.Fatal(gridErr)
	}
	return gridVal
}

var printOnce sync.Map

func printTable(name, s string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Println(s)
	}
}

// BenchmarkTableI regenerates the benchmark inventory (paper Table I).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TableI(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		printTable("table1", t.String())
	}
}

// BenchmarkTableII regenerates the memory-access breakdown (paper Table II)
// via the trace-driven cache simulator.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, rows, err := experiments.TableII(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		printTable("table2", t.String())
		var dagpDRAM float64
		for _, r := range rows {
			if r.Strategy == "dagp" && r.Circuit == "bv" {
				dagpDRAM = r.Stats.DRAMPercent()
			}
		}
		b.ReportMetric(dagpDRAM, "bv-dagp-DRAM%")
	}
}

// BenchmarkFig5 regenerates the improvement factors over IQS (paper Fig. 5).
func BenchmarkFig5(b *testing.B) {
	g := sharedGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, factors := experiments.Fig5(g)
		printTable("fig5", t.String())
		var fs []float64
		for _, row := range factors {
			fs = append(fs, row["dagp"])
		}
		b.ReportMetric(geomean(fs), "dagp-geomean-improvement")
	}
}

// BenchmarkFig6 regenerates the strong-scaling runtimes (paper Fig. 6).
func BenchmarkFig6(b *testing.B) {
	g := sharedGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		printTable("fig6", experiments.Fig6(g).String())
	}
}

// BenchmarkFig7 regenerates the average communication times (paper Fig. 7).
func BenchmarkFig7(b *testing.B) {
	g := sharedGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		printTable("fig7", experiments.Fig7(g).String())
	}
}

// BenchmarkFig8 regenerates the geomean communication ratios (paper Fig. 8).
func BenchmarkFig8(b *testing.B) {
	g := sharedGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, ratios := experiments.Fig8(g)
		printTable("fig8", t.String())
		maxRanks := 0
		for r := range ratios {
			if r > maxRanks {
				maxRanks = r
			}
		}
		b.ReportMetric(ratios[maxRanks]["dagp"], "dagp-comm-ratio%")
	}
}

// BenchmarkFig9 regenerates the Dolan–Moré performance profiles (paper
// Fig. 9a/9b).
func BenchmarkFig9(b *testing.B) {
	g := sharedGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, pTotal, _, err := experiments.Fig9(g)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig9", t.String())
		b.ReportMetric(pTotal["dagp"][0], "dagp-best-share")
	}
}

// BenchmarkFig10 regenerates the single- vs multi-level comparison (paper
// Fig. 10).
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, rows, err := experiments.Fig10(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig10", t.String())
		var sp []float64
		for _, r := range rows {
			sp = append(sp, r.SingleLevel/r.MultiLevel)
		}
		b.ReportMetric(geomean(sp), "multilevel-geomean-speedup")
	}
}

// BenchmarkTableIII regenerates the QAOA GPU partitioning breakdown (paper
// Table III).
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, _, err := experiments.TableIII(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		printTable("table3", t.String())
	}
}

// BenchmarkTableIV regenerates the hybrid HiSVSIM+HyQuas estimate (paper
// Table IV).
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, ests, err := experiments.TableIV(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		printTable("table4", t.String())
		for _, e := range ests {
			if e.Strategy == "dagp" {
				b.ReportMetric(e.Total(), "dagp-total-s")
			}
		}
	}
}

// BenchmarkOptimality regenerates the §V-A dagP-vs-ILP-optimum study.
func BenchmarkOptimality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, matched, total, err := experiments.Optimality(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		printTable("optimality", t.String()+
			fmt.Sprintf("dagP optimal in %d/%d instances (paper: 48/52)\n", matched, total))
		b.ReportMetric(float64(matched)/float64(total), "optimal-share")
	}
}

// BenchmarkThreadScaling regenerates the §V-A single-node strong-scaling
// observation.
func BenchmarkThreadScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.ThreadScaling(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		printTable("threads", t.String())
	}
}

// BenchmarkAblationDagP measures each dagP pipeline phase's contribution
// (DESIGN.md ablation index).
func BenchmarkAblationDagP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, out, err := experiments.Ablation(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		printTable("ablation", t.String())
		full, bisect := 0, 0
		for _, row := range out {
			full += row["full"]
			bisect += row["bisect-only"]
		}
		b.ReportMetric(float64(bisect)/float64(full), "bisect-only-vs-full-parts")
	}
}

// --- partitioner microbenchmarks ---

func benchPartitioner(b *testing.B, s partition.Strategy) {
	c := circuit.QFT(16)
	g := dag.FromCircuit(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := s.Partition(g, 10)
		if err != nil {
			b.Fatal(err)
		}
		if pl.NumParts() == 0 {
			b.Fatal("no parts")
		}
	}
}

func BenchmarkPartitionNat(b *testing.B)  { benchPartitioner(b, partition.Nat{}) }
func BenchmarkPartitionDFS(b *testing.B)  { benchPartitioner(b, partition.DFS{Trials: 10, Seed: 1}) }
func BenchmarkPartitionDagP(b *testing.B) { benchPartitioner(b, dagp.Partitioner{}) }

// --- kernel microbenchmarks ---

func benchGate(b *testing.B, n int, g gate.Gate) {
	st := sv.NewState(n)
	b.SetBytes(int64(32) << uint(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.ApplyGate(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelH(b *testing.B)    { benchGate(b, 18, gate.H(7)) }
func BenchmarkKernelCX(b *testing.B)   { benchGate(b, 18, gate.CX(3, 12)) }
func BenchmarkKernelRZ(b *testing.B)   { benchGate(b, 18, gate.RZ(0.3, 9)) } // diagonal fast path
func BenchmarkKernelCCX(b *testing.B)  { benchGate(b, 18, gate.CCX(2, 9, 15)) }
func BenchmarkKernelSWAP(b *testing.B) { benchGate(b, 18, gate.SWAP(1, 16)) }

// BenchmarkGatherExecuteScatter measures one full hierarchical pass.
func BenchmarkGatherExecuteScatter(b *testing.B) {
	c := circuit.QFT(16)
	pl, err := dagp.Partitioner{}.Partition(dag.FromCircuit(c), 10)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(pl.NumParts()) * (32 << 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := sv.NewState(c.NumQubits)
		if _, err := hier.ExecutePlan(pl, st, hier.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlatSimulation is the unpartitioned reference for the same
// circuit as BenchmarkGatherExecuteScatter.
func BenchmarkFlatSimulation(b *testing.B) {
	c := circuit.QFT(16)
	b.SetBytes(int64(c.NumGates()) * (32 << 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

// --- gate fusion ---

func benchFusion(b *testing.B, fam string, fp core.FusePolicy) {
	c, err := circuit.Named(fam, 16)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Strategy: "dagp", Seed: 1, Fuse: fp}
	b.SetBytes(int64(c.NumGates()) * (32 << 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Simulate(c, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFusedQFT(b *testing.B)     { benchFusion(b, "qft", core.FuseOn) }
func BenchmarkUnfusedQFT(b *testing.B)   { benchFusion(b, "qft", core.FuseOff) }
func BenchmarkFusedIsing(b *testing.B)   { benchFusion(b, "ising", core.FuseOn) }
func BenchmarkUnfusedIsing(b *testing.B) { benchFusion(b, "ising", core.FuseOff) }

func geomean(xs []float64) float64 { return bench.Geomean(xs) }
