#!/usr/bin/env sh
# serve_smoke.sh — boot hisvsimd, exercise submit → poll → sample over HTTP
# (including a v2 multi-readout "run" job and a deprecated-kind shim),
# verify the plan/state cache actually amortizes, and shut down gracefully.
# Also smokes the hisvsim CLI backend listing. Used by `make serve-smoke`
# and the CI workflow. Needs curl + jq.
set -eu

ADDR="${HISVSIMD_ADDR:-127.0.0.1:8791}"
BASE="http://$ADDR"
BINDIR="$(mktemp -d)"
BIN="$BINDIR/hisvsimd"
CLI="$BINDIR/hisvsim"
LOG="$(mktemp)"

go build -o "$BIN" ./cmd/hisvsimd
go build -o "$CLI" ./cmd/hisvsim

# CLI smoke: the backend registry listing must name all five engines.
BACKENDS="$("$CLI" -backends)"
for want in flat hier dist baseline dm; do
    if ! printf '%s\n' "$BACKENDS" | grep -q "^$want"; then
        echo "serve-smoke: hisvsim -backends is missing $want:" >&2
        printf '%s\n' "$BACKENDS" >&2
        exit 1
    fi
done

"$BIN" -addr "$ADDR" -workers 2 >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for liveness.
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 60 ]; then
        echo "serve-smoke: daemon never became healthy" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.5
done

# Readiness: before any drain, /readyz must be 200 next to /healthz.
RCODE="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")"
if [ "$RCODE" != 200 ]; then
    echo "serve-smoke: /readyz returned $RCODE before drain, want 200" >&2
    exit 1
fi

submit() {
    curl -fsS "$BASE/v1/jobs" -d '{
        "circuit": {"family": "qft", "qubits": 12},
        "kind": "sample", "shots": 100, "seed": 7,
        "options": {"strategy": "dagp"}
    }' | jq -r .id
}

# Submit, then plain-poll until the snapshot goes terminal.
ID="$(submit)"
echo "serve-smoke: submitted $ID"
i=0
while :; do
    STATUS="$(curl -fsS "$BASE/v1/jobs/$ID" | jq -r .status)"
    [ "$STATUS" = done ] && break
    if [ "$STATUS" = failed ] || [ "$STATUS" = canceled ]; then
        echo "serve-smoke: job $ID ended $STATUS" >&2
        exit 1
    fi
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "serve-smoke: poll timeout" >&2; exit 1; }
    sleep 0.2
done

# The long-poll result endpoint agrees and the shots add up.
TOTAL="$(curl -fsS "$BASE/v1/jobs/$ID/result?wait=30s" | jq '[.result.counts[]] | add')"
if [ "$TOTAL" != 100 ]; then
    echo "serve-smoke: counts sum to $TOTAL, want 100" >&2
    exit 1
fi

# A repeat submission must be a cache hit with identical counts.
ID2="$(submit)"
HIT="$(curl -fsS "$BASE/v1/jobs/$ID2/result?wait=30s" | jq .result.cache_hit)"
if [ "$HIT" != true ]; then
    echo "serve-smoke: repeat submission missed the cache" >&2
    exit 1
fi
SIMS="$(curl -fsS "$BASE/v1/stats" | jq .simulations)"
if [ "$SIMS" != 1 ]; then
    echo "serve-smoke: $SIMS simulations for 2 identical jobs, want 1" >&2
    exit 1
fi

# The registry is visible over HTTP too.
NB="$(curl -fsS "$BASE/v1/backends" | jq -r '.[].name' | tr '\n' ' ')"
case "$NB" in
*flat*hier*) ;;
*)
    echo "serve-smoke: /v1/backends returned '$NB'" >&2
    exit 1
    ;;
esac

# A v2 multi-readout "run" job: shots + two Pauli observables + a marginal,
# answered by EXACTLY one additional simulation (the cached qft-12 state
# belongs to a different circuit, so this adds one).
SIMS_BEFORE="$(curl -fsS "$BASE/v1/stats" | jq .simulations)"
RID="$(curl -fsS "$BASE/v1/jobs" -d '{
    "circuit": {"family": "ising", "qubits": 10},
    "kind": "run",
    "readouts": {
        "shots": 250, "seed": 7,
        "marginals": [[0, 1]],
        "observables": [{"name": "zz01", "coeff": -1, "paulis": "ZZ", "qubits": [0, 1]},
                        {"name": "x2", "paulis": "X", "qubits": [2]}]
    },
    "options": {"strategy": "dagp"}
}' | jq -r .id)"
RRES="$(curl -fsS "$BASE/v1/jobs/$RID/result?wait=30s")"
RTOTAL="$(printf '%s' "$RRES" | jq '[.result.counts[]] | add')"
ROBS="$(printf '%s' "$RRES" | jq '.result.observables | length')"
RMARG="$(printf '%s' "$RRES" | jq '.result.marginals[0] | length')"
RBACKEND="$(printf '%s' "$RRES" | jq -r .result.backend)"
if [ "$RTOTAL" != 250 ] || [ "$ROBS" != 2 ] || [ "$RMARG" != 4 ]; then
    echo "serve-smoke: run job readouts wrong (shots=$RTOTAL obs=$ROBS marg=$RMARG)" >&2
    exit 1
fi
if [ "$RBACKEND" != hier ]; then
    echo "serve-smoke: run job backend '$RBACKEND', want hier" >&2
    exit 1
fi
SIMS_AFTER="$(curl -fsS "$BASE/v1/stats" | jq .simulations)"
if [ "$((SIMS_AFTER - SIMS_BEFORE))" != 1 ]; then
    echo "serve-smoke: multi-readout run cost $((SIMS_AFTER - SIMS_BEFORE)) simulations, want 1" >&2
    exit 1
fi

# A deprecated-kind request over the same circuit: the shim must keep the
# old JSON shape — expectation present, none of the v2-only fields leaking
# in — and reuse the run job's cached simulation.
ERES="$(curl -fsS "$BASE/v1/jobs" -d '{
    "circuit": {"family": "ising", "qubits": 10},
    "kind": "expectation", "qubits": [0, 1],
    "options": {"strategy": "dagp"}
}' | jq -r .id)"
EJOB="$(curl -fsS "$BASE/v1/jobs/$ERES/result?wait=30s")"
EVAL="$(printf '%s' "$EJOB" | jq .result.expectation)"
ELEAK="$(printf '%s' "$EJOB" | jq '[.result.backend, .result.observables, .result.marginals] | map(select(. != null)) | length')"
EHIT="$(printf '%s' "$EJOB" | jq .result.cache_hit)"
if [ "$EVAL" = null ] || [ "$ELEAK" != 0 ] || [ "$EHIT" != true ]; then
    echo "serve-smoke: deprecated expectation shim broke (value=$EVAL leaks=$ELEAK hit=$EHIT)" >&2
    printf '%s\n' "$EJOB" >&2
    exit 1
fi

# A noisy trajectory-ensemble job: counts add up and the shot total holds.
NID="$(curl -fsS "$BASE/v1/jobs" -d '{
    "circuit": {"family": "ising", "qubits": 8},
    "kind": "noisy_sample", "shots": 200, "seed": 7, "trajectories": 20,
    "noise": {"rules": [{"channel": "depolarizing", "p": 0.01}],
              "readout": {"p01": 0.01, "p10": 0.01}}
}' | jq -r .id)"
NTOTAL="$(curl -fsS "$BASE/v1/jobs/$NID/result?wait=30s" | jq '[.result.counts[]] | add')"
if [ "$NTOTAL" != 200 ]; then
    echo "serve-smoke: noisy counts sum to $NTOTAL, want 200" >&2
    exit 1
fi

# The dm backend advertises exact noise support over HTTP.
DMNOISE="$(curl -fsS "$BASE/v1/backends" | jq -r '.[] | select(.name == "dm") | .capabilities.noise')"
if [ "$DMNOISE" != exact ]; then
    echo "serve-smoke: /v1/backends dm noise capability '$DMNOISE', want exact" >&2
    exit 1
fi

# A noisy "run" job on the exact density-matrix backend: ONE simulation,
# ZERO trajectories, exact observables (no stderr on the values).
SIMS_BEFORE="$(curl -fsS "$BASE/v1/stats" | jq .simulations)"
TRAJ_BEFORE="$(curl -fsS "$BASE/v1/stats" | jq .trajectories)"
DID="$(curl -fsS "$BASE/v1/jobs" -d '{
    "circuit": {"family": "ising", "qubits": 6},
    "kind": "run",
    "readouts": {"shots": 200, "seed": 7,
                 "observables": [{"name": "zz01", "paulis": "ZZ", "qubits": [0, 1]}]},
    "noise": {"rules": [{"channel": "amplitude_damping", "p": 0.02},
                        {"channel": "depolarizing2", "p": 0.01, "gates": ["rzz"]}]},
    "options": {"backend": "dm"}
}' | jq -r .id)"
DRES="$(curl -fsS "$BASE/v1/jobs/$DID/result?wait=30s")"
DSTATUS="$(printf '%s' "$DRES" | jq -r .status)"
DBACKEND="$(printf '%s' "$DRES" | jq -r .result.backend)"
DTRAJ="$(printf '%s' "$DRES" | jq '.result.trajectories // 0')"
DTOTAL="$(printf '%s' "$DRES" | jq '[.result.counts[]] | add')"
if [ "$DSTATUS" != done ] || [ "$DBACKEND" != dm ] || [ "$DTRAJ" != 0 ] || [ "$DTOTAL" != 200 ]; then
    echo "serve-smoke: dm run job wrong (status=$DSTATUS backend=$DBACKEND traj=$DTRAJ shots=$DTOTAL)" >&2
    printf '%s\n' "$DRES" >&2
    exit 1
fi
SIMS_AFTER="$(curl -fsS "$BASE/v1/stats" | jq .simulations)"
TRAJ_AFTER="$(curl -fsS "$BASE/v1/stats" | jq .trajectories)"
if [ "$((SIMS_AFTER - SIMS_BEFORE))" != 1 ] || [ "$((TRAJ_AFTER - TRAJ_BEFORE))" != 0 ]; then
    echo "serve-smoke: dm noisy job cost $((SIMS_AFTER - SIMS_BEFORE)) simulations and $((TRAJ_AFTER - TRAJ_BEFORE)) trajectories, want 1 and 0" >&2
    exit 1
fi

# Capability mismatches are 400s at submit: a noisy job on a backend with
# no noisy path, and a dm register over the qubit cap.
CCODE="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/jobs" -d '{
    "circuit": {"family": "ising", "qubits": 8},
    "kind": "noisy_sample", "shots": 10,
    "noise": {"rules": [{"channel": "depolarizing", "p": 0.01}]},
    "options": {"backend": "baseline"}
}')"
WCODE="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/jobs" -d '{
    "circuit": {"family": "cat_state", "qubits": 14},
    "kind": "run", "readouts": {"shots": 10},
    "options": {"backend": "dm"}
}')"
if [ "$CCODE" != 400 ] || [ "$WCODE" != 400 ]; then
    echo "serve-smoke: capability mismatches returned $CCODE/$WCODE, want 400/400" >&2
    exit 1
fi

# Out-of-bounds noise probabilities are 400s.
NCODE="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/jobs" -d '{
    "circuit": {"family": "ising", "qubits": 8},
    "kind": "noisy_sample",
    "noise": {"rules": [{"channel": "depolarizing", "p": 1.5}]}
}')"
if [ "$NCODE" != 400 ]; then
    echo "serve-smoke: bad noise probability returned $NCODE, want 400" >&2
    exit 1
fi

# A v3 parameterized sweep job: a symbolic QASM template swept over a
# 3×2 binding grid must cost EXACTLY one template compile (visible in
# /v1/stats) and return per-point observable readouts.
TC_BEFORE="$(curl -fsS "$BASE/v1/stats" | jq .template_compiles)"
SWID="$(curl -fsS "$BASE/v1/jobs" -d '{
    "circuit": {"qasm": "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\nrz(gamma) q[0];\nrx(beta) q[1];\n"},
    "kind": "sweep",
    "readouts": {"observables": [{"name": "zz01", "paulis": "ZZ", "qubits": [0, 1]}]},
    "sweep": {"grid": {"gamma": [0.1, 0.2, 0.3], "beta": [0.4, 0.5]}}
}' | jq -r .id)"
SWRES="$(curl -fsS "$BASE/v1/jobs/$SWID/result?wait=30s")"
SWSTATUS="$(printf '%s' "$SWRES" | jq -r .status)"
SWPTS="$(printf '%s' "$SWRES" | jq '.result.sweep.points | length')"
SWCOMP="$(printf '%s' "$SWRES" | jq '.result.sweep.compiles')"
SWOBS="$(printf '%s' "$SWRES" | jq '[.result.sweep.points[].observables | length] | min')"
if [ "$SWSTATUS" != done ] || [ "$SWPTS" != 6 ] || [ "$SWCOMP" != 1 ] || [ "$SWOBS" != 1 ]; then
    echo "serve-smoke: sweep job wrong (status=$SWSTATUS points=$SWPTS compiles=$SWCOMP min-obs=$SWOBS)" >&2
    printf '%s\n' "$SWRES" >&2
    exit 1
fi
TC_AFTER="$(curl -fsS "$BASE/v1/stats" | jq .template_compiles)"
if [ "$((TC_AFTER - TC_BEFORE))" != 1 ]; then
    echo "serve-smoke: 6-point sweep cost $((TC_AFTER - TC_BEFORE)) template compiles, want 1" >&2
    exit 1
fi

# Binding validation is a 400 at submit: running the same template with
# only gamma bound must be rejected naming the unbound symbol.
UBODY="$(mktemp)"
UCODE="$(curl -s -o "$UBODY" -w '%{http_code}' "$BASE/v1/jobs" -d '{
    "circuit": {"qasm": "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\nrz(gamma) q[0];\nrx(beta) q[1];\n"},
    "kind": "run",
    "readouts": {"observables": [{"name": "zz01", "paulis": "ZZ", "qubits": [0, 1]}]},
    "params": {"gamma": 0.1}
}')"
if [ "$UCODE" != 400 ] || ! grep -q beta "$UBODY"; then
    echo "serve-smoke: unbound-symbol run returned $UCODE (want 400 naming beta):" >&2
    cat "$UBODY" >&2
    exit 1
fi
rm -f "$UBODY"

# The Prometheus exposition reflects everything this script just did:
# submits by kind, state-cache hits, stage-latency observations, and the
# queue/worker/HTTP series.
METRICS="$(mktemp)"
curl -fsS "$BASE/metrics" >"$METRICS"
msum() {
    # Sum the values of every sample whose name (incl. labels) matches $1.
    grep "^$1" "$METRICS" | awk '{s += $NF} END {printf "%d\n", s}'
}
SUBMITTED_SAMPLE="$(msum 'hisvsim_jobs_submitted_total{kind="sample"}')"
STATE_HITS="$(msum 'hisvsim_cache_hits_total{cache="state"}')"
STAGE_OBS="$(msum 'hisvsim_stage_duration_seconds_count')"
if [ "$SUBMITTED_SAMPLE" -lt 2 ] || [ "$STATE_HITS" -lt 1 ] || [ "$STAGE_OBS" -lt 1 ]; then
    echo "serve-smoke: /metrics counters wrong (sample submits=$SUBMITTED_SAMPLE state hits=$STATE_HITS stage obs=$STAGE_OBS)" >&2
    grep ^hisvsim_ "$METRICS" >&2
    exit 1
fi
for series in hisvsim_queue_depth hisvsim_workers hisvsim_workers_busy \
    hisvsim_cache_resident_bytes hisvsim_http_requests_total hisvsim_http_in_flight; do
    if ! grep -q "^$series" "$METRICS"; then
        echo "serve-smoke: /metrics is missing the $series series" >&2
        exit 1
    fi
done
rm -f "$METRICS"

# The per-job stage trace: non-empty, starts in queue_wait, and the stage
# durations tile the job's wall time (within 5%).
TRACE="$(curl -fsS "$BASE/v1/jobs/$ID/trace")"
TOK="$(printf '%s' "$TRACE" | jq '
    .wall_ms as $wall
    | (.stages | length > 0)
      and .stages[0].stage == "queue_wait"
      and ((([.stages[].duration_ms] | add) - $wall
            | if . < 0 then -. else . end) <= $wall * 0.05 + 0.05)')"
if [ "$TOK" != true ]; then
    echo "serve-smoke: stage trace failed validation:" >&2
    printf '%s\n' "$TRACE" >&2
    exit 1
fi

# The kernel-level execution profile: kernel rows present for the simulated
# job, consistent with the engine window (kernel time fits inside it; the
# strict 5%-tiling criterion is pinned by TestKernelProfileTilesSimulate on
# a large job — this millisecond-scale smoke circuit is dominated by fixed
# setup costs, which is exactly what unattributed_ms is for).
PROFILE="$(curl -fsS "$BASE/v1/jobs/$ID/profile")"
POK="$(printf '%s' "$PROFILE" | jq '
    (.kernels | length > 0)
    and (.window_ms > 0)
    and (.kernel_ms > 0)
    and (.kernel_ms <= .window_ms * 1.05 + 0.5)
    and ((.window_ms - .kernel_ms - .unattributed_ms | if . < 0 then -. else . end) < 0.001)')"
if [ "$POK" != true ]; then
    echo "serve-smoke: kernel profile failed validation:" >&2
    printf '%s\n' "$PROFILE" >&2
    exit 1
fi

# The aggregate kernel series made it into the exposition.
KMETRICS="$(curl -fsS "$BASE/metrics")"
for series in hisvsim_kernel_seconds_total hisvsim_kernel_bytes_total hisvsim_build_info \
    hisvsim_go_heap_alloc_bytes hisvsim_go_goroutines; do
    if ! printf '%s\n' "$KMETRICS" | grep -q "^$series"; then
        echo "serve-smoke: /metrics is missing the $series series" >&2
        exit 1
    fi
done

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$PID"
if ! wait "$PID"; then
    echo "serve-smoke: daemon exited non-zero on SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
fi
trap - EXIT
echo "serve-smoke: OK (backends listing, readyz, submit, poll, sample, cache hit, multi-readout run, deprecated shim, noisy ensemble, exact dm run, capability 400s, parameterized sweep, unbound-symbol 400, /metrics scrape, stage trace, kernel profile, graceful shutdown)"
