#!/usr/bin/env sh
# cluster_smoke.sh — boot a coordinator + two hisvsimd workers, verify
# fingerprint routing and deterministic ensemble fan-out over real HTTP,
# then kill -9 one worker mid-ensemble and require the job to complete
# anyway via sub-job retry on the survivor. Used by `make cluster-smoke`
# and the CI workflow. Needs curl + jq.
set -eu

W1_ADDR="${HISVSIM_W1_ADDR:-127.0.0.1:8795}"
W2_ADDR="${HISVSIM_W2_ADDR:-127.0.0.1:8796}"
CO_ADDR="${HISVSIM_CO_ADDR:-127.0.0.1:8797}"
BASE="http://$CO_ADDR"
BINDIR="$(mktemp -d)"
BIN="$BINDIR/hisvsimd"
LOG1="$(mktemp)"
LOG2="$(mktemp)"
LOGC="$(mktemp)"

go build -o "$BIN" ./cmd/hisvsimd

"$BIN" -addr "$W1_ADDR" -workers 2 >"$LOG1" 2>&1 &
W1_PID=$!
"$BIN" -addr "$W2_ADDR" -workers 2 >"$LOG2" 2>&1 &
W2_PID=$!
trap 'kill "$W1_PID" "$W2_PID" "$CO_PID" 2>/dev/null || true' EXIT

wait_healthy() {
    i=0
    until curl -fsS "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 60 ]; then
            echo "cluster-smoke: $2 never became healthy" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.5
    done
}
wait_healthy "$W1_ADDR" worker1 "$LOG1"
wait_healthy "$W2_ADDR" worker2 "$LOG2"

"$BIN" -coordinator -addr "$CO_ADDR" \
    -workers "http://$W1_ADDR,http://$W2_ADDR" \
    -split-trajectories 64 -health-every 500ms >"$LOGC" 2>&1 &
CO_PID=$!
wait_healthy "$CO_ADDR" coordinator "$LOGC"

# Both workers joined the ring ready.
READY="$(curl -fsS "$BASE/v1/cluster" | jq '[.workers[] | select(.state == "ready")] | length')"
if [ "$READY" != 2 ]; then
    echo "cluster-smoke: $READY ready workers, want 2" >&2
    curl -fsS "$BASE/v1/cluster" >&2
    exit 1
fi

# Happy path: a 512-trajectory noisy ensemble splits across the fleet and
# the merged counts still sum to the shot budget.
SPLIT_BODY='{
    "circuit": {"family": "ising", "qubits": 10},
    "kind": "run",
    "noise": {"rules": [{"channel": "depolarizing", "p": 0.01}]},
    "readouts": {"shots": 1000, "seed": 7, "trajectories": 512,
                 "observables": [{"name": "zz01", "paulis": "ZZ", "qubits": [0, 1]}]}
}'
ID="$(curl -fsS "$BASE/v1/jobs" -d "$SPLIT_BODY" | jq -r .id)"
RES="$(curl -fsS "$BASE/v1/jobs/$ID/result?wait=60s")"
STATUS="$(printf '%s' "$RES" | jq -r .status)"
TOTAL="$(printf '%s' "$RES" | jq '[.result.counts[]] | add')"
TRAJ="$(printf '%s' "$RES" | jq .result.trajectories)"
if [ "$STATUS" != done ] || [ "$TOTAL" != 1000 ] || [ "$TRAJ" != 512 ]; then
    echo "cluster-smoke: split ensemble wrong (status=$STATUS shots=$TOTAL traj=$TRAJ)" >&2
    printf '%s\n' "$RES" >&2
    exit 1
fi
SUBS="$(curl -fsS "$BASE/v1/jobs/$ID/trace" | jq '.subjobs | length')"
MODE="$(curl -fsS "$BASE/v1/jobs/$ID/trace" | jq -r .mode)"
if [ "$MODE" != split_ensemble ] || [ "$SUBS" -lt 2 ]; then
    echo "cluster-smoke: expected a fanned-out ensemble, got mode=$MODE subjobs=$SUBS" >&2
    exit 1
fi
echo "cluster-smoke: split ensemble OK ($SUBS sub-jobs)"

# The stitched trace is one tree: job → plan/fanout/merge → sub-jobs →
# attempts → nested worker stages. A real fan-out must reach depth ≥ 3
# (it reaches 5 when every worker trace stitched; ≥ 3 tolerates a lost
# best-effort fetch).
DEPTH="$(curl -fsS "$BASE/v1/jobs/$ID/trace" |
    jq 'def depth: 1 + ([.children[]? | depth] | max // 0); .tree | depth')"
if [ "$DEPTH" -lt 3 ]; then
    echo "cluster-smoke: stitched trace depth $DEPTH, want ≥ 3" >&2
    curl -fsS "$BASE/v1/jobs/$ID/trace" >&2
    exit 1
fi
echo "cluster-smoke: stitched trace OK (depth $DEPTH)"

# Routing affinity: a repeat of the same small circuit must be answered
# from a warm worker cache — sticky fingerprint routing.
ROUTED_BODY='{
    "circuit": {"family": "qft", "qubits": 12},
    "kind": "run",
    "readouts": {"shots": 100, "seed": 7}
}'
RID1="$(curl -fsS "$BASE/v1/jobs" -d "$ROUTED_BODY" | jq -r .id)"
curl -fsS "$BASE/v1/jobs/$RID1/result?wait=60s" >/dev/null
RID2="$(curl -fsS "$BASE/v1/jobs" -d "$ROUTED_BODY" | jq -r .id)"
HIT="$(curl -fsS "$BASE/v1/jobs/$RID2/result?wait=60s" | jq .result.cache_hit)"
if [ "$HIT" != true ]; then
    echo "cluster-smoke: repeat submission missed the cache — routing is not sticky" >&2
    exit 1
fi
echo "cluster-smoke: routing affinity OK"

# Metrics federation: one coordinator scrape re-exposes every worker's
# series stamped with a worker label (the warm cache above guarantees a
# live hisvsim_cache_hits_total series) plus the cluster rollups.
FED="$(curl -fsS "$BASE/metrics/federate")"
if ! printf '%s\n' "$FED" | grep -q 'hisvsim_cache_hits_total{.*worker="http://'; then
    echo "cluster-smoke: federation exposes no worker-labeled cache-hit series" >&2
    printf '%s\n' "$FED" | grep hisvsim_cache >&2 || true
    exit 1
fi
for W in "$W1_ADDR" "$W2_ADDR"; do
    if ! printf '%s\n' "$FED" | grep -q "hisvsim_cluster_worker_up{worker=\"http://$W\"} 1"; then
        echo "cluster-smoke: federation says worker $W is not up" >&2
        printf '%s\n' "$FED" | grep hisvsim_cluster_worker >&2 || true
        exit 1
    fi
done
if ! printf '%s\n' "$FED" | grep -q '^hisvsim_cluster_cache_hit_rate'; then
    echo "cluster-smoke: federation is missing the cache-hit-rate rollup" >&2
    exit 1
fi
echo "cluster-smoke: metrics federation OK"

# Fault injection: submit a long ensemble, kill -9 one worker while its
# sub-job is in flight, and require the coordinator to finish the job by
# retrying the lost range on the survivor.
FAULT_BODY='{
    "circuit": {"family": "ising", "qubits": 12},
    "kind": "run",
    "noise": {"rules": [{"channel": "depolarizing", "p": 0.01}]},
    "readouts": {"shots": 1000, "seed": 9, "trajectories": 2048,
                 "observables": [{"name": "zz01", "paulis": "ZZ", "qubits": [0, 1]}]}
}'
FID="$(curl -fsS "$BASE/v1/jobs" -d "$FAULT_BODY" | jq -r .id)"
sleep 0.5
kill -9 "$W2_PID" 2>/dev/null || true
echo "cluster-smoke: killed worker2 mid-ensemble"

FRES="$(curl -fsS --max-time 300 "$BASE/v1/jobs/$FID/result?wait=240s")"
FSTATUS="$(printf '%s' "$FRES" | jq -r .status)"
FTOTAL="$(printf '%s' "$FRES" | jq '[.result.counts[]] | add')"
FTRAJ="$(printf '%s' "$FRES" | jq .result.trajectories)"
if [ "$FSTATUS" != done ] || [ "$FTOTAL" != 1000 ] || [ "$FTRAJ" != 2048 ]; then
    echo "cluster-smoke: job did not survive the worker kill (status=$FSTATUS shots=$FTOTAL traj=$FTRAJ)" >&2
    printf '%s\n' "$FRES" >&2
    cat "$LOGC" >&2
    exit 1
fi

# The recovery is visible: retries counted, the dead worker left the ring.
METRICS="$(curl -fsS "$BASE/metrics")"
RETRIES="$(printf '%s\n' "$METRICS" | awk '/^hisvsim_cluster_retries_total/ {print $NF}')"
if [ "${RETRIES:-0}" -lt 1 ]; then
    echo "cluster-smoke: job survived but hisvsim_cluster_retries_total=$RETRIES, want ≥ 1" >&2
    printf '%s\n' "$METRICS" | grep ^hisvsim_cluster >&2
    exit 1
fi
i=0
until [ "$(curl -fsS "$BASE/v1/cluster" | jq '[.workers[] | select(.state == "ready")] | length')" = 1 ]; do
    i=$((i + 1))
    if [ "$i" -gt 20 ]; then
        echo "cluster-smoke: dead worker never left the ring" >&2
        curl -fsS "$BASE/v1/cluster" >&2
        exit 1
    fi
    sleep 0.5
done
RETRY_SPANS="$(curl -fsS "$BASE/v1/jobs/$FID/trace" | jq '[.subjobs[].attempts[]? | select(.outcome == "retry")] | length')"
if [ "$RETRY_SPANS" -lt 1 ]; then
    echo "cluster-smoke: trace shows no retry attempt spans" >&2
    curl -fsS "$BASE/v1/jobs/$FID/trace" >&2
    exit 1
fi
echo "cluster-smoke: fault recovery OK ($RETRIES retries)"

# Graceful shutdown: SIGTERM must drain the coordinator and exit 0.
kill -TERM "$CO_PID"
if ! wait "$CO_PID"; then
    echo "cluster-smoke: coordinator exited non-zero on SIGTERM" >&2
    cat "$LOGC" >&2
    exit 1
fi
kill -TERM "$W1_PID" 2>/dev/null || true
wait "$W1_PID" 2>/dev/null || true
trap - EXIT
echo "cluster-smoke: OK (2-worker ring, split ensemble, stitched trace, sticky routing, metrics federation, mid-ensemble worker kill survived via retry, dead worker evicted, graceful drain)"
