module hisvsim

go 1.24
