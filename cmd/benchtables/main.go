// Command benchtables regenerates every table and figure of the paper's
// evaluation section at reproduction scale and prints them as ASCII tables.
//
// Usage:
//
//	benchtables              # everything (a few minutes at -base 14)
//	benchtables -only fig5,table2
//	benchtables -base 12 -ranks 2,4,8
//
// See EXPERIMENTS.md for the mapping from paper tables/figures to outputs
// and the expected qualitative shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hisvsim/internal/bench"
	"hisvsim/internal/experiments"
)

func main() {
	var (
		base       = flag.Int("base", 12, "base qubit count for the benchmark suite (paper: 30)")
		ranks      = flag.String("ranks", "2,4,8", "rank counts for standard circuits")
		bigR       = flag.String("big-ranks", "8,16", "rank counts for the large circuits")
		seed       = flag.Int64("seed", 1, "partitioner seed")
		lm2        = flag.Int("second-lm", 8, "second-level limit for the multi-level experiment")
		only       = flag.String("only", "", "comma-separated subset: table1,table2,table3,table4,fig5,fig6,fig7,fig8,fig9,fig10,optimality,threads,ablation,fusion,service,noise,dm,sweep,cluster,obs")
		fusionOut  = flag.String("fusion-out", "", "also write the fusion benchmark as JSON to this path (e.g. BENCH_fusion.json)")
		fusionN    = flag.String("fusion-qubits", "16,18,20", "register sizes for the fusion benchmark")
		fusionRep  = flag.Int("fusion-reps", 3, "repetitions per fusion benchmark point (fastest kept)")
		serviceOut = flag.String("service-out", "", "also write the service benchmark as JSON to this path (e.g. BENCH_service.json)")
		serviceN   = flag.Int("service-qubits", 18, "register size for the service benchmark circuit")
		noiseOut   = flag.String("noise-out", "", "also write the noise benchmark as JSON to this path (e.g. BENCH_noise.json)")
		noiseN     = flag.Int("noise-qubits", 12, "register size for the noise benchmark circuit")
		noiseTraj  = flag.Int("noise-traj", 200, "trajectories per noise benchmark point")
		noiseP     = flag.Float64("noise-p", 0.01, "depolarizing probability for the noise benchmark")
		dmOut      = flag.String("dm-out", "", "also write the density-matrix crossover benchmark as JSON to this path (e.g. BENCH_dm.json)")
		dmN        = flag.String("dm-qubits", "6,8,10,12", "register sizes for the density-matrix benchmark")
		dmTraj     = flag.Int("dm-traj", 50, "trajectories per density-matrix timing point")
		dmP        = flag.Float64("dm-p", 0.01, "depolarizing probability for the density-matrix benchmark")
		sweepOut   = flag.String("sweep-out", "", "also write the parameter-sweep benchmark as JSON to this path (e.g. BENCH_sweep.json)")
		sweepN     = flag.Int("sweep-qubits", 12, "register size for the sweep benchmark ansatz")
		sweepPts   = flag.Int("sweep-points", 50, "binding-grid size for the sweep benchmark")
		clusterOut = flag.String("cluster-out", "", "also write the cluster scale-out benchmark as JSON to this path (e.g. BENCH_cluster.json)")
		clusterN   = flag.Int("cluster-qubits", 10, "register size for the cluster benchmark ensemble")
		clusterT   = flag.Int("cluster-traj", 512, "trajectories in the cluster benchmark ensemble")
		clusterFl  = flag.String("cluster-fleets", "1,2,3", "worker fleet sizes for the cluster benchmark")
		obsIn      = flag.String("obs-in", "BENCH_obs.txt", "go test -bench text output to normalize for the obs section")
		obsOut     = flag.String("obs-out", "", "write the normalized observability benchmark as JSON to this path (e.g. BENCH_obs.json)")
	)
	flag.Parse()

	cfg := experiments.Config{
		Base: *base, Ranks: parseInts(*ranks), BigRanks: parseInts(*bigR),
		Seed: *seed, SecondLevelLm: *lm2,
	}.WithDefaults()

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	if sel("table1") {
		t, err := experiments.TableI(cfg)
		check(err)
		fmt.Println(t)
	}
	if sel("table2") {
		t, _, err := experiments.TableII(cfg)
		check(err)
		fmt.Println(t)
	}

	needGrid := sel("fig5") || sel("fig6") || sel("fig7") || sel("fig8") || sel("fig9")
	if needGrid {
		fmt.Printf("running evaluation grid (base=%d, ranks=%v/%v)...\n\n", cfg.Base, cfg.Ranks, cfg.BigRanks)
		g, err := experiments.RunGrid(cfg)
		check(err)
		if sel("fig5") {
			t, _ := experiments.Fig5(g)
			fmt.Println(t)
		}
		if sel("fig6") {
			fmt.Println(experiments.Fig6(g))
		}
		if sel("fig7") {
			fmt.Println(experiments.Fig7(g))
		}
		if sel("fig8") {
			t, _ := experiments.Fig8(g)
			fmt.Println(t)
		}
		if sel("fig9") {
			t, _, _, err := experiments.Fig9(g)
			check(err)
			fmt.Println(t)
		}
	}
	if sel("fig10") {
		t, _, err := experiments.Fig10(cfg)
		check(err)
		fmt.Println(t)
	}
	if sel("table3") {
		t, _, err := experiments.TableIII(cfg)
		check(err)
		fmt.Println(t)
	}
	if sel("table4") {
		t, _, err := experiments.TableIV(cfg)
		check(err)
		fmt.Println(t)
	}
	if sel("optimality") {
		t, matched, total, err := experiments.Optimality(cfg)
		check(err)
		fmt.Println(t)
		fmt.Printf("dagP found the optimal part count in %d/%d instances (paper: 48/52)\n\n", matched, total)
	}
	if sel("threads") {
		t, err := experiments.ThreadScaling(cfg)
		check(err)
		fmt.Println(t)
	}
	if sel("ablation") {
		t, _, err := experiments.Ablation(cfg)
		check(err)
		fmt.Println(t)
	}
	if sel("fusion") || *fusionOut != "" {
		rep, err := experiments.FusionBench(experiments.FusionConfig{
			Qubits: parseInts(*fusionN), Reps: *fusionRep, Seed: *seed,
		})
		check(err)
		fmt.Println(rep.Table())
		if *fusionOut != "" {
			b, err := rep.JSON()
			check(err)
			check(os.WriteFile(*fusionOut, b, 0o644))
			fmt.Printf("wrote %s\n", *fusionOut)
		}
	}
	if sel("service") || *serviceOut != "" {
		rep, err := experiments.ServiceBench(experiments.ServiceConfig{
			Qubits: *serviceN, Seed: *seed,
		})
		check(err)
		fmt.Println(rep.Table())
		if *serviceOut != "" {
			b, err := rep.JSON()
			check(err)
			check(os.WriteFile(*serviceOut, b, 0o644))
			fmt.Printf("wrote %s\n", *serviceOut)
		}
	}
	if sel("noise") || *noiseOut != "" {
		rep, err := experiments.NoiseBench(experiments.NoiseConfig{
			Qubits: *noiseN, Trajectories: *noiseTraj, P: *noiseP, Seed: *seed,
		})
		check(err)
		fmt.Println(rep.Table())
		if cav := rep.Caveat(); cav != "" {
			fmt.Println(cav)
		}
		if *noiseOut != "" {
			b, err := rep.JSON()
			check(err)
			check(os.WriteFile(*noiseOut, b, 0o644))
			fmt.Printf("wrote %s\n", *noiseOut)
		}
	}
	if sel("sweep") || *sweepOut != "" {
		rep, err := experiments.SweepBench(experiments.SweepConfig{
			Qubits: *sweepN, Points: *sweepPts,
		})
		check(err)
		fmt.Println(rep.Table())
		if *sweepOut != "" {
			b, err := rep.JSON()
			check(err)
			check(os.WriteFile(*sweepOut, b, 0o644))
			fmt.Printf("wrote %s\n", *sweepOut)
		}
	}
	if sel("cluster") || *clusterOut != "" {
		rep, err := experiments.ClusterBench(experiments.ClusterConfig{
			Qubits: *clusterN, Trajectories: *clusterT, Fleets: parseInts(*clusterFl),
		})
		check(err)
		fmt.Println(rep.Table())
		if cav := rep.Caveat(); cav != "" {
			fmt.Println(cav)
		}
		if *clusterOut != "" {
			b, err := rep.JSON()
			check(err)
			check(os.WriteFile(*clusterOut, b, 0o644))
			fmt.Printf("wrote %s\n", *clusterOut)
		}
	}
	if sel("obs") || *obsOut != "" {
		// The observability benchmarks are testing.B microbenchmarks, not
		// an experiments harness: this section normalizes their committed
		// text output (make obs-bench) into the gated artifact schema.
		f, err := os.Open(*obsIn)
		check(err)
		rep, err := bench.NormalizeGoBench("obs", f)
		f.Close()
		check(err)
		for _, row := range rep.Rows {
			if row.Better == "" {
				continue // informational rows stay out of the summary
			}
			fmt.Printf("%-44s %14.4g %s\n", row.Metric, row.Value, row.Unit)
		}
		fmt.Println()
		if *obsOut != "" {
			b, err := rep.JSON()
			check(err)
			check(os.WriteFile(*obsOut, b, 0o644))
			fmt.Printf("wrote %s\n", *obsOut)
		}
	}
	if sel("dm") || *dmOut != "" {
		rep, err := experiments.DMBench(experiments.DMConfig{
			Qubits: parseInts(*dmN), Trajectories: *dmTraj, P: *dmP, Seed: *seed,
		})
		check(err)
		fmt.Println(rep.Table())
		if *dmOut != "" {
			b, err := rep.JSON()
			check(err)
			check(os.WriteFile(*dmOut, b, 0o644))
			fmt.Printf("wrote %s\n", *dmOut)
		}
	}
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		check(err)
		out = append(out, v)
	}
	return out
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}
