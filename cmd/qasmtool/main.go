// Command qasmtool inspects and transforms OpenQASM 2.0 circuits with the
// HiSVSIM toolchain.
//
// Usage:
//
//	qasmtool -in file.qasm -stats                 # circuit statistics
//	qasmtool -in file.qasm -optimize -out o.qasm  # fuse/cancel, rewrite
//	qasmtool -in file.qasm -decompose -out o.qasm # lower to {1q, cx}
//	qasmtool -in file.qasm -dot -strategy dagp -lm 8  # part-colored DAG
//	qasmtool -gen qft -n 12 -out qft12.qasm       # generate a benchmark
//	qasmtool -gen qft -n 12 | qasmtool -in - -optimize -stats  # stdin pipe
//
// "-in -" reads OpenQASM from standard input, so the tool composes in
// shell pipelines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"hisvsim"
	"hisvsim/internal/circuit"
	"hisvsim/internal/dag"
	"hisvsim/internal/partition"
)

func main() {
	var (
		in        = flag.String("in", "", "input OpenQASM 2.0 file (\"-\" = stdin)")
		gen       = flag.String("gen", "", "generate a benchmark family instead of reading a file")
		n         = flag.Int("n", 12, "qubit count for -gen")
		out       = flag.String("out", "", "output file (default stdout for rewrites)")
		stats     = flag.Bool("stats", false, "print circuit statistics")
		optimize  = flag.Bool("optimize", false, "cancel inverse pairs and fuse rotations")
		decompose = flag.Bool("decompose", false, "lower every gate to the {1q, cx} basis")
		dot       = flag.Bool("dot", false, "emit the circuit DAG in Graphviz format")
		strategy  = flag.String("strategy", "", "color the -dot output by this partitioner's parts")
		lm        = flag.Int("lm", 0, "working-set limit for -strategy")
	)
	flag.Parse()

	c, err := load(*in, *gen, *n)
	if err != nil {
		fatal(err)
	}

	if *optimize {
		before := c.NumGates()
		c = circuit.Optimize(c)
		fmt.Fprintf(os.Stderr, "optimize: %d -> %d gates\n", before, c.NumGates())
	}
	if *decompose {
		before := c.NumGates()
		c = c.Decomposed()
		fmt.Fprintf(os.Stderr, "decompose: %d -> %d gates\n", before, c.NumGates())
	}

	switch {
	case *stats:
		printStats(c)
	case *dot:
		g := dag.FromCircuit(c)
		opts := dag.DotOptions{Name: c.Name}
		if *strategy != "" {
			limit := *lm
			if limit <= 0 {
				limit = c.NumQubits
			}
			pl, err := hisvsim.Partition(c, limit, *strategy)
			if err != nil {
				fatal(err)
			}
			partOf := make([]int, c.NumGates())
			for pi, part := range pl.Parts {
				for _, gi := range part.GateIndices {
					partOf[gi] = pi
				}
			}
			opts.PartOf = partOf
			fmt.Fprintf(os.Stderr, "%s: %d parts\n", *strategy, pl.NumParts())
		}
		emit(*out, g.Dot(opts))
	default:
		emit(*out, hisvsim.WriteQASM(c))
	}
}

func load(in, gen string, n int) (*hisvsim.Circuit, error) {
	switch {
	case in == "-":
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, fmt.Errorf("reading stdin: %w", err)
		}
		return hisvsim.ParseQASM(string(src))
	case in != "":
		src, err := os.ReadFile(in)
		if err != nil {
			return nil, err
		}
		return hisvsim.ParseQASM(string(src))
	case gen != "":
		return hisvsim.BuildCircuit(gen, n)
	default:
		return nil, fmt.Errorf("specify -in <file> (\"-\" for stdin) or -gen <family>")
	}
}

func printStats(c *hisvsim.Circuit) {
	fmt.Printf("name:        %s\n", c.Name)
	fmt.Printf("qubits:      %d\n", c.NumQubits)
	fmt.Printf("gates:       %d\n", c.NumGates())
	fmt.Printf("depth:       %d\n", c.Depth())
	fmt.Printf("2q+ gates:   %d\n", c.MultiQubitGates())
	fmt.Printf("state size:  %d bytes\n", c.MemoryBytes())
	fmt.Printf("fingerprint: %s\n", c.Fingerprint())
	counts := c.GateCounts()
	names := make([]string, 0, len(counts))
	for k := range counts {
		names = append(names, k)
	}
	sort.Strings(names)
	fmt.Println("gate histogram:")
	for _, k := range names {
		fmt.Printf("  %-6s %d\n", k, counts[k])
	}
	// Plan quality preview at a few limits.
	fmt.Println("partitioning preview (dagp):")
	for _, lm := range []int{c.NumQubits - 2, c.NumQubits - 4, c.NumQubits / 2} {
		if lm < 2 {
			continue
		}
		pl, err := hisvsim.Partition(c, lm, "dagp")
		if err != nil {
			fmt.Printf("  Lm=%-3d (infeasible: %v)\n", lm, err)
			continue
		}
		m := partition.ComputeMetrics(pl)
		fmt.Printf("  Lm=%-3d %s\n", lm, m)
	}
}

func emit(out, text string) {
	if out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(out, []byte(text), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qasmtool:", err)
	os.Exit(1)
}
