// Command benchdiff compares a fresh benchmark run against the repo's
// committed BENCH_*.json baselines and exits nonzero on any
// out-of-tolerance regression. Each baseline row carries its own
// direction and tolerance (see internal/bench: schema.go for the format,
// diff.go for the rules), so one invocation gates every artifact:
//
//	make bench-all BENCH_DIR=/tmp/bench   # regenerate into a scratch dir
//	benchdiff -baseline . -fresh /tmp/bench
//
// Baseline metrics the fresh run did not measure are skipped — narrow CI
// configs (fewer widths, fewer reps) gate only the intersection they
// actually measured. Baseline files with no fresh counterpart are
// reported and skipped.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hisvsim/internal/bench"
)

func main() {
	var (
		baseDir  = flag.String("baseline", ".", "directory holding the committed BENCH_*.json baselines")
		freshDir = flag.String("fresh", "", "directory holding the freshly generated BENCH_*.json artifacts")
	)
	flag.Parse()
	if *freshDir == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -fresh is required")
		os.Exit(2)
	}
	d, err := bench.DiffDirs(*baseDir, *freshDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var sb strings.Builder
	d.Render(&sb)
	fmt.Print(sb.String())
	if d.Regressions() > 0 {
		os.Exit(1)
	}
}
