// Command hisvsimd serves the HiSVSIM simulation service over HTTP/JSON:
// an async job queue with a bounded worker pool in front of the fused
// hierarchical/distributed executors, plus a content-addressed plan/state
// cache so repeat circuits cost sampling, not simulation.
//
// Usage:
//
//	hisvsimd -addr :8080 -workers 4 -cache-mb 256
//
// Endpoints (see internal/service.NewHandler):
//
//	POST   /v1/jobs              submit  → {"id": "j000001", ...}
//	GET    /v1/jobs/{id}         poll
//	GET    /v1/jobs/{id}/result  long-poll result (?wait=30s)
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/backends          registered execution backends
//	GET    /v1/stats             counters
//	GET    /healthz              liveness
//
// The v2 surface is kind "run": one "readouts" spec asks for any mix of
// statevector, seeded shots, marginal distributions and weighted
// Pauli-string observables, and one cached simulation answers all of them;
// "options.backend" picks the execution engine. Example:
//
//	curl -s localhost:8080/v1/jobs -d '{
//	  "circuit": {"family": "qft", "qubits": 18},
//	  "kind": "run",
//	  "readouts": {
//	    "shots": 1000, "seed": 7,
//	    "marginals": [[0, 1]],
//	    "observables": [{"paulis": "ZZ", "qubits": [0, 1]},
//	                    {"coeff": 0.5, "paulis": "X", "qubits": [2]}]
//	  },
//	  "options": {"strategy": "dagp"}
//	}'
//
// The v1 kinds (statevector/sample/expectation/probabilities and the noisy
// pair) remain as deprecated shims with byte-compatible responses.
//
// Noisy trajectory ensembles ride the same queue (kind "run" plus a
// "noise" spec, or the legacy noisy kinds); channel probabilities, readout
// rates and trajectory counts are bounds-checked at submit and rejected
// with 400s. Compiled trajectory plans cache in their own small LRU
// (-plan-cache-mb) so statevector entries cannot evict them.
//
// SIGINT/SIGTERM drain gracefully: the listener stops, in-flight HTTP
// requests get -grace seconds to finish, then the service cancels
// outstanding jobs and the worker pool exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hisvsim/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 256, "max queued jobs before 429s")
		cacheMB = flag.Int64("cache-mb", 256, "plan/state cache budget in MiB (0 or negative disables)")
		planMB  = flag.Int64("plan-cache-mb", 16, "compiled trajectory-plan cache budget in MiB (0 or negative disables)")
		maxQ    = flag.Int("max-qubits", 26, "largest accepted register")
		maxS    = flag.Int("max-shots", 1_000_000, "largest accepted shot count")
		maxT    = flag.Int("max-trajectories", 4096, "largest accepted noisy-ensemble size")
		retain  = flag.Int("retain", 4096, "terminal jobs kept pollable")
		grace   = flag.Duration("grace", 10*time.Second, "shutdown grace period")
	)
	flag.Parse()

	cacheBytes := *cacheMB << 20
	if *cacheMB <= 0 {
		cacheBytes = -1 // 0 would select the service default; the flag promises "disables"
	}
	planBytes := *planMB << 20
	if *planMB <= 0 {
		planBytes = -1
	}
	svc := service.New(service.Config{
		Workers: *workers, QueueDepth: *queue,
		CacheBytes: cacheBytes, PlanCacheBytes: planBytes,
		MaxQubits: *maxQ, MaxShots: *maxS, MaxTrajectories: *maxT,
		RetainJobs: *retain,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(service.NewHandler(svc)),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("hisvsimd listening on %s (workers=%d, cache=%dMiB)", *addr, svc.Stats().Workers, *cacheMB)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%v: draining (grace %v)", sig, *grace)
	case err := <-errc:
		svc.Close()
		log.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
	svc.Close()
	st := svc.Stats()
	log.Printf("bye: %d jobs done, %d simulations, %d cache hits",
		st.Completed, st.Simulations, st.CacheHits)
}

// logRequests is a one-line access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
