// Command hisvsimd serves the HiSVSIM simulation service over HTTP/JSON:
// an async job queue with a bounded worker pool in front of the fused
// hierarchical/distributed executors, plus a content-addressed plan/state
// cache so repeat circuits cost sampling, not simulation.
//
// Usage:
//
//	hisvsimd -addr :8080 -workers 4 -cache-mb 256
//
// Endpoints (see internal/service.NewHandler):
//
//	POST   /v1/jobs              submit  → {"id": "j000001", ...}
//	GET    /v1/jobs/{id}         poll
//	GET    /v1/jobs/{id}/result  long-poll result (?wait=30s)
//	GET    /v1/jobs/{id}/trace   per-stage timing trace
//	GET    /v1/jobs/{id}/profile kernel-level execution profile
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/backends          registered execution backends
//	GET    /v1/stats             counters
//	GET    /metrics              Prometheus text exposition
//	GET    /healthz              liveness
//	GET    /readyz               readiness (503 once drain begins)
//
// The v2 surface is kind "run": one "readouts" spec asks for any mix of
// statevector, seeded shots, marginal distributions and weighted
// Pauli-string observables, and one cached simulation answers all of them;
// "options.backend" picks the execution engine. Example:
//
//	curl -s localhost:8080/v1/jobs -d '{
//	  "circuit": {"family": "qft", "qubits": 18},
//	  "kind": "run",
//	  "readouts": {
//	    "shots": 1000, "seed": 7,
//	    "marginals": [[0, 1]],
//	    "observables": [{"paulis": "ZZ", "qubits": [0, 1]},
//	                    {"coeff": 0.5, "paulis": "X", "qubits": [2]}]
//	  },
//	  "options": {"strategy": "dagp"}
//	}'
//
// The v1 kinds (statevector/sample/expectation/probabilities and the noisy
// pair) remain as deprecated shims with byte-compatible responses.
//
// Noisy trajectory ensembles ride the same queue (kind "run" plus a
// "noise" spec, or the legacy noisy kinds); channel probabilities, readout
// rates and trajectory counts are bounds-checked at submit and rejected
// with 400s. Compiled trajectory plans cache in their own small LRU
// (-plan-cache-mb) so statevector entries cannot evict them.
//
// Observability: GET /metrics exposes the service and HTTP metric series
// in Prometheus text format; every request gets an X-Request-ID (incoming
// ones are honored) that also tags the job's structured log lines
// (-log-level, -log-json); an incoming X-Parent-Span (set by a cluster
// coordinator on fan-out sub-jobs) lands on the job record, its log lines
// and its trace/profile bodies; -debug-addr serves net/http/pprof on a
// separate, opt-in listener so profiling is never exposed on the API port.
//
// SIGINT/SIGTERM drain gracefully: /readyz flips to 503 first (so load
// balancers stop routing), the listener stops, in-flight HTTP requests get
// -grace seconds to finish, then the service cancels outstanding jobs and
// the worker pool exits. /healthz stays 200 throughout the drain.
//
// Cluster mode: -coordinator turns the process into a multi-node
// coordinator instead of a single-node service. -workers then takes a
// comma-separated URL list (or -workers-file a JSON file reloaded
// periodically), and the same /v1/jobs surface routes whole jobs to the
// consistent-hash ring owner of the circuit fingerprint, splits large
// ensembles/sweeps into sub-jobs across the fleet, merges results
// bit-identically, and retries sub-jobs lost to dead workers:
//
//	hisvsimd -coordinator -addr :8080 \
//	    -workers http://n1:8081,http://n2:8081,http://n3:8081
//
// Cluster observability spans the fleet: every sub-job dispatch forwards
// the job's X-Request-ID and a per-attempt X-Parent-Span, the
// coordinator's GET /v1/jobs/{id}/trace nests each worker's stage trace
// under the attempt that ran it (one tree from client submit down to
// queue_wait/compile/execute on each worker), GET /v1/jobs/{id}/profile
// merges the workers' kernel profiles into one cluster-wide attribution,
// and GET /metrics/federate scrapes every live worker's /metrics on
// demand, re-exposing all series with a worker label plus cluster rollup
// gauges (cache hit rate, total queue depth, per-worker probe health).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hisvsim/internal/cluster"
	"hisvsim/internal/obs"
	"hisvsim/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.String("workers", "0", "worker pool size, 0 = GOMAXPROCS; with -coordinator, a comma-separated list of worker URLs")
		queue     = flag.Int("queue", 256, "max queued jobs before 429s")
		cacheMB   = flag.Int64("cache-mb", 256, "plan/state cache budget in MiB (0 or negative disables)")
		planMB    = flag.Int64("plan-cache-mb", 16, "compiled trajectory-plan cache budget in MiB (0 or negative disables)")
		maxQ      = flag.Int("max-qubits", 26, "largest accepted register")
		maxS      = flag.Int("max-shots", 1_000_000, "largest accepted shot count")
		maxT      = flag.Int("max-trajectories", 4096, "largest accepted noisy-ensemble size")
		retain    = flag.Int("retain", 4096, "terminal jobs kept pollable")
		grace     = flag.Duration("grace", 10*time.Second, "shutdown grace period")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		debugAddr = flag.String("debug-addr", "", "optional listen address serving /debug/pprof/ (empty = disabled)")

		coordinator = flag.Bool("coordinator", false, "run as a cluster coordinator fronting -workers / -workers-file")
		workersFile = flag.String("workers-file", "", "JSON file {\"workers\": [\"url\", ...]} reloaded periodically (coordinator mode)")
		splitTraj   = flag.Int("split-trajectories", 128, "minimum ensemble size the coordinator fans out (coordinator mode)")
		splitSweep  = flag.Int("split-sweep-points", 8, "minimum sweep grid the coordinator fans out (coordinator mode)")
		maxSubJobs  = flag.Int("max-subjobs", 8, "fan-out width cap per job (coordinator mode)")
		healthEvery = flag.Duration("health-every", 2*time.Second, "worker /readyz probe interval (coordinator mode)")
	)
	flag.Parse()

	logger, err := obs.NewLoggerFromFlags(*logLevel, *logJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *coordinator {
		runCoordinator(logger, coordConfig{
			addr: *addr, workers: *workers, workersFile: *workersFile,
			splitTraj: *splitTraj, splitSweep: *splitSweep,
			maxSubJobs: *maxSubJobs, healthEvery: *healthEvery,
			grace: *grace,
		})
		return
	}

	poolSize, err := strconv.Atoi(*workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-workers %q: need an integer pool size (URL lists require -coordinator)\n", *workers)
		os.Exit(2)
	}

	cacheBytes := *cacheMB << 20
	if *cacheMB <= 0 {
		cacheBytes = -1 // 0 would select the service default; the flag promises "disables"
	}
	planBytes := *planMB << 20
	if *planMB <= 0 {
		planBytes = -1
	}
	svc := service.New(service.Config{
		Workers: poolSize, QueueDepth: *queue,
		CacheBytes: cacheBytes, PlanCacheBytes: planBytes,
		MaxQubits: *maxQ, MaxShots: *maxS, MaxTrajectories: *maxT,
		RetainJobs: *retain,
		Logger:     logger,
	})
	// The HTTP wrapper reports into the service's registry, so one
	// GET /metrics scrape covers jobs, caches, queue and HTTP alike.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           obs.InstrumentHTTP(svc.Metrics(), "hisvsim_", logger, service.NewHandler(svc)),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		// pprof mounts on its own mux and listener — never the API port —
		// so exposing profiling is an explicit deployment decision.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("debug server listening", "addr", *debugAddr)
			if derr := dsrv.ListenAndServe(); derr != nil && !errors.Is(derr, http.ErrServerClosed) {
				logger.Error("debug serve", "err", derr)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("hisvsimd listening", "addr", *addr,
		"workers", svc.Stats().Workers, "cache_mb", *cacheMB)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		// Flip readiness before touching the listener: a load balancer
		// polling /readyz sees the 503 while the API still answers, instead
		// of discovering the drain through connection errors.
		svc.BeginDrain()
		logger.Info("draining", "signal", sig.String(), "grace", grace.String())
	case err := <-errc:
		svc.Close()
		logger.Error("serve", "err", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("shutdown", "err", err)
	}
	svc.Close()
	st := svc.Stats()
	logger.Info("bye", "jobs_done", st.Completed,
		"simulations", st.Simulations, "cache_hits", st.CacheHits)
}

// coordConfig is the flag subset coordinator mode consumes.
type coordConfig struct {
	addr        string
	workers     string
	workersFile string
	splitTraj   int
	splitSweep  int
	maxSubJobs  int
	healthEvery time.Duration
	grace       time.Duration
}

// runCoordinator serves the cluster coordinator: same listen/drain
// lifecycle as the single-node service, but jobs fan out to the worker
// fleet instead of a local pool.
func runCoordinator(logger *slog.Logger, cfg coordConfig) {
	var urls []string
	for _, u := range strings.Split(cfg.workers, ",") {
		u = strings.TrimSpace(u)
		// "0" is the -workers default (a pool size, meaningless here).
		if u != "" && u != "0" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	coord, err := cluster.New(cluster.Config{
		Workers: urls, WorkersFile: cfg.workersFile,
		SplitTrajectories: cfg.splitTraj, SplitSweepPoints: cfg.splitSweep,
		MaxSubJobs: cfg.maxSubJobs, HealthEvery: cfg.healthEvery,
		Logger: logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           obs.InstrumentHTTP(coord.Metrics(), "hisvsim_", logger, cluster.NewHandler(coord)),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("hisvsimd coordinator listening", "addr", cfg.addr,
		"workers", len(urls), "workers_file", cfg.workersFile)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		coord.BeginDrain()
		logger.Info("coordinator draining", "signal", sig.String(), "grace", cfg.grace.String())
	case err := <-errc:
		coord.Close()
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("shutdown", "err", err)
	}
	coord.Close()
	logger.Info("bye")
}
