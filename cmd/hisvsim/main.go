// Command hisvsim simulates a quantum circuit with the hierarchical,
// partition-based state-vector simulator.
//
// Usage:
//
//	hisvsim -circuit qft -n 16 -strategy dagp -lm 12
//	hisvsim -qasm file.qasm -strategy dagp -ranks 4 -verify
//	hisvsim -circuit grover -n 15 -plan-only
//
// It prints the plan summary (parts and working sets), execution metrics,
// and optionally verifies the result against flat simulation.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"hisvsim"
)

func main() {
	var (
		family    = flag.String("circuit", "", "benchmark family to generate: "+strings.Join(hisvsim.Families(), ", "))
		n         = flag.Int("n", 16, "qubit count for -circuit")
		qasmFile  = flag.String("qasm", "", "OpenQASM 2.0 file to simulate instead of -circuit")
		strategy  = flag.String("strategy", "dagp", "partitioner: "+strings.Join(hisvsim.Strategies(), ", "))
		lm        = flag.Int("lm", 0, "working-set limit per part (0 = local qubit count)")
		ranks     = flag.Int("ranks", 1, "simulated MPI ranks (power of two; 1 = single node)")
		lm2       = flag.Int("second-lm", 0, "second-level (cache) working-set limit (0 = single level)")
		seed      = flag.Int64("seed", 1, "seed for randomized partitioners")
		fuse      = flag.String("fuse", "auto", "gate fusion: auto, on, off")
		fuseMax   = flag.Int("fuse-max", 0, "max fused-block support in qubits (0 = default 5)")
		verify    = flag.Bool("verify", false, "cross-check against flat simulation (doubles memory)")
		planOnly  = flag.Bool("plan-only", false, "partition only; skip execution")
		showParts = flag.Bool("parts", false, "print every part's gates and working set")
	)
	flag.Parse()

	c, err := loadCircuit(*family, *qasmFile, *n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("circuit: %s\n", c.String())

	if *planOnly {
		pl, err := hisvsim.Partition(c, lmOrDefault(*lm, c.NumQubits, *ranks), *strategy)
		if err != nil {
			fatal(err)
		}
		printPlan(pl, *showParts)
		return
	}

	fp, err := fusePolicy(*fuse)
	if err != nil {
		fatal(err)
	}
	res, err := hisvsim.Simulate(c, hisvsim.Options{
		Strategy: *strategy, Lm: *lm, Ranks: *ranks,
		SecondLevelLm: *lm2, Seed: *seed,
		Fuse: fp, MaxFuseQubits: *fuseMax,
	})
	if err != nil {
		fatal(err)
	}
	printPlan(res.Plan, *showParts)
	fmt.Printf("execution: %s\n", res.Elapsed)
	if res.Hier != nil {
		fmt.Printf("single-node: %d parts, %d gather/scatter sweeps, %.1f MB moved, %d inner kernel ops\n",
			res.Hier.Parts, res.Hier.Sweeps, float64(res.Hier.BytesMoved)/(1<<20), res.Hier.InnerOps)
	}
	if res.Dist != nil {
		fmt.Printf("distributed: %d ranks, %d relayouts, %.1f MB over network\n",
			*ranks, res.Dist.Relayouts, float64(res.Dist.BytesComm)/(1<<20))
		for _, s := range res.Dist.Stats {
			fmt.Printf("  rank %d: sent %d msgs / %.1f MB, modeled comm %.3g s, compute %.3g s\n",
				s.Rank, s.MsgsSent, float64(s.BytesSent)/(1<<20), s.CommSeconds, s.ComputeSeconds)
		}
	}
	if res.State != nil {
		top := res.State.MostLikely()
		fmt.Printf("most likely outcome: |%0*b⟩ with probability %.4f\n",
			c.NumQubits, top, res.State.BasisProbability(top))
	}
	if *verify {
		want, err := hisvsim.Run(c)
		if err != nil {
			fatal(err)
		}
		f := res.State.Fidelity(want)
		fmt.Printf("verification fidelity vs flat simulation: %.12f\n", f)
		if math.Abs(f-1) > 1e-8 {
			fatal(fmt.Errorf("verification FAILED"))
		}
		fmt.Println("verification PASSED")
	}
}

func loadCircuit(family, qasmFile string, n int) (*hisvsim.Circuit, error) {
	switch {
	case qasmFile != "":
		src, err := os.ReadFile(qasmFile)
		if err != nil {
			return nil, err
		}
		return hisvsim.ParseQASM(string(src))
	case family != "":
		return hisvsim.BuildCircuit(family, n)
	default:
		return nil, fmt.Errorf("specify -circuit <family> or -qasm <file>")
	}
}

func fusePolicy(s string) (hisvsim.FusePolicy, error) {
	switch s {
	case "auto", "":
		return hisvsim.FuseAuto, nil
	case "on":
		return hisvsim.FuseOn, nil
	case "off":
		return hisvsim.FuseOff, nil
	default:
		return 0, fmt.Errorf("unknown -fuse value %q (want auto, on, or off)", s)
	}
}

func lmOrDefault(lm, n, ranks int) int {
	if lm > 0 {
		return lm
	}
	p := 0
	for 1<<uint(p) < ranks {
		p++
	}
	return n - p
}

func printPlan(pl *hisvsim.Plan, detail bool) {
	fmt.Printf("plan: %s (partitioned in %s)\n", pl.String(), pl.Elapsed)
	if !detail {
		return
	}
	for _, part := range pl.Parts {
		fmt.Printf("  part %d: %d gates, working set %v\n",
			part.Index, len(part.GateIndices), part.Qubits)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hisvsim:", err)
	os.Exit(1)
}
