// Command hisvsim simulates a quantum circuit with the hierarchical,
// partition-based state-vector simulator.
//
// Usage:
//
//	hisvsim -circuit qft -n 16 -strategy dagp -lm 12
//	hisvsim -qasm file.qasm -strategy dagp -ranks 4 -verify
//	hisvsim -circuit grover -n 15 -plan-only
//	hisvsim -circuit ising -n 12 -depolarizing 0.01 -trajectories 500 -shots 4096
//	hisvsim -circuit ising -n 8 -observables '-1*ZZ@0,1; 0.5*X@2'
//	hisvsim -circuit ising -n 8 -backend dm -depolarizing2 0.01 -shots 4096
//	hisvsim -circuit qaoa_ansatz -n 8 -layers 2 -params 'gamma0=0.4,beta0=0.2,gamma1=0.3,beta1=0.1'
//	hisvsim -circuit qaoa_ansatz -n 8 -observables 'ZZ@0,1; ZZ@1,2' -sweep 'gamma0=0:1.2:7; beta0=0.1,0.3,0.5'
//	hisvsim -backends
//
// It prints the plan summary (parts and working sets), execution metrics,
// and optionally verifies the result against flat simulation. -backend
// picks the execution engine from the registry (-backends lists them);
// -observables evaluates weighted Pauli strings (X/Y/Z Hamiltonian terms)
// on the final state — or as trajectory means under noise. Any of the
// noise flags (-depolarizing, -depolarizing2, -bit-flip, -phase-flip,
// -amp-damp, -phase-damp, -readout01/-readout10) switches to
// trajectory-ensemble simulation: counts and a Z-string expectation
// aggregated over -trajectories stochastic runs — except with -backend dm,
// which instead evolves the exact density matrix once (small registers
// only; see -backends for the cap) and reports deterministic values.
//
// Parameterized circuits (gate angles like rz(2*gamma) in QASM, or the
// built-in "qaoa_ansatz" template): -params binds the symbols for a single
// run under any mode above, while -sweep evaluates -observables on a whole
// binding grid from ONE template compilation, printing the energy per grid
// point and the minimum found.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"hisvsim"
)

func main() {
	var (
		family    = flag.String("circuit", "", "benchmark family to generate: "+strings.Join(hisvsim.Families(), ", ")+", qaoa_ansatz (parameterized)")
		n         = flag.Int("n", 16, "qubit count for -circuit")
		layers    = flag.Int("layers", 1, "ansatz depth for -circuit qaoa_ansatz")
		paramsF   = flag.String("params", "", "bind a parameterized circuit's symbols for one run: \"gamma0=0.4,beta0=0.2\"")
		sweepF    = flag.String("sweep", "", "evaluate -observables over a binding grid (one template compile): per-symbol comma list or lo:hi:count linspace, semicolons between symbols, cartesian product — \"gamma0=0:1.2:7; beta0=0.1,0.3,0.5\"")
		qasmFile  = flag.String("qasm", "", "OpenQASM 2.0 file to simulate instead of -circuit")
		backendN  = flag.String("backend", "", "execution backend: "+strings.Join(hisvsim.BackendNames(), ", ")+" (default: by rank count)")
		backends  = flag.Bool("backends", false, "list the registered execution backends and exit")
		observes  = flag.String("observables", "", "semicolon-separated Pauli observables to evaluate, e.g. '-1*ZZ@0,1; 0.5*X@2'")
		strategy  = flag.String("strategy", "dagp", "partitioner: "+strings.Join(hisvsim.Strategies(), ", "))
		lm        = flag.Int("lm", 0, "working-set limit per part (0 = local qubit count)")
		ranks     = flag.Int("ranks", 1, "simulated MPI ranks (power of two; 1 = single node)")
		lm2       = flag.Int("second-lm", 0, "second-level (cache) working-set limit (0 = single level)")
		seed      = flag.Int64("seed", 1, "seed for randomized partitioners")
		fuse      = flag.String("fuse", "auto", "gate fusion: auto, on, off")
		fuseMax   = flag.Int("fuse-max", 0, "max fused-block support in qubits (0 = default 5)")
		verify    = flag.Bool("verify", false, "cross-check against flat simulation (doubles memory)")
		planOnly  = flag.Bool("plan-only", false, "partition only; skip execution")
		showParts = flag.Bool("parts", false, "print every part's gates and working set")

		depol      = flag.Float64("depolarizing", 0, "depolarizing probability per gate application (enables noisy mode)")
		depol2     = flag.Float64("depolarizing2", 0, "correlated two-qubit depolarizing probability per entangler application (restricted to the circuit's two-qubit gate classes unless -noise-gates narrows them)")
		bitFlip    = flag.Float64("bit-flip", 0, "bit-flip probability per gate application")
		phaseFlip  = flag.Float64("phase-flip", 0, "phase-flip probability per gate application")
		ampDamp    = flag.Float64("amp-damp", 0, "amplitude-damping rate per gate application")
		phaseDamp  = flag.Float64("phase-damp", 0, "phase-damping rate per gate application")
		noiseGates = flag.String("noise-gates", "", "restrict noise channels to these comma-separated gate names (default: all gates)")
		readout01  = flag.Float64("readout01", 0, "readout flip probability P(read 1 | true 0)")
		readout10  = flag.Float64("readout10", 0, "readout flip probability P(read 0 | true 1)")
		traj       = flag.Int("trajectories", 256, "trajectory count for noisy mode")
		shots      = flag.Int("shots", 4096, "total sampled shots for noisy mode (0 = none)")
		zString    = flag.String("expect-z", "0", "comma-separated qubits for the noisy ⟨∏ Z_q⟩ estimate (empty = skip)")
		noiseSeed  = flag.Int64("noise-seed", 1, "trajectory RNG seed")
	)
	flag.Parse()

	if *backends {
		for _, b := range hisvsim.Backends() {
			caps := b.Capabilities
			ranksDoc := "single-node"
			switch {
			case caps.SingleRank && caps.MultiRank:
				ranksDoc = "1..N ranks"
			case caps.MultiRank:
				ranksDoc = "multi-rank"
			}
			if caps.Partitioned {
				ranksDoc += ", partitioned"
			}
			noiseDoc := "noise: none"
			if caps.Noise != hisvsim.NoiseCapabilityNone {
				noiseDoc = "noise: " + caps.Noise
			}
			if caps.MaxQubits > 0 {
				// ASCII only: %-*s pads by bytes, so a multi-byte rune
				// would shift every column after it.
				noiseDoc += fmt.Sprintf(", <=%d qubits", caps.MaxQubits)
			}
			fmt.Printf("%-10s %-27s %-28s %s\n", b.Name, "("+ranksDoc+")", "("+noiseDoc+")", caps.Description)
		}
		return
	}

	obs, err := parseObservables(*observes)
	if err != nil {
		fatal(err)
	}

	c, err := loadCircuit(*family, *qasmFile, *n, *layers)
	if err != nil {
		fatal(err)
	}
	for _, ob := range obs {
		if err := ob.Validate(c.NumQubits); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("circuit: %s\n", c.String())

	env, err := parseParams(*paramsF)
	if err != nil {
		fatal(err)
	}
	if env != nil {
		if *sweepF != "" {
			fatal(fmt.Errorf("-params binds one point and -sweep a whole grid; use one"))
		}
		bound, err := c.Bind(env)
		if err != nil {
			fatal(err)
		}
		c = bound
	}
	if c.Parametric() && *sweepF == "" && !*planOnly {
		fatal(fmt.Errorf("circuit has unbound symbols %v (bind them with -params or sweep them with -sweep)", c.Symbols()))
	}

	if *planOnly {
		pl, err := hisvsim.Partition(c, lmOrDefault(*lm, c.NumQubits, *ranks), *strategy)
		if err != nil {
			fatal(err)
		}
		printPlan(pl, *showParts)
		return
	}

	fp, err := fusePolicy(*fuse)
	if err != nil {
		fatal(err)
	}

	model, err := buildNoiseModel(c, *depol, *depol2, *bitFlip, *phaseFlip, *ampDamp, *phaseDamp,
		*noiseGates, *readout01, *readout10)
	if err != nil {
		fatal(err)
	}
	if *sweepF != "" {
		if *verify || *showParts {
			fatal(fmt.Errorf("-sweep reports per-point observables; drop -verify/-parts"))
		}
		if len(obs) == 0 {
			fatal(fmt.Errorf("-sweep needs -observables to evaluate per grid point"))
		}
		bindings, err := parseSweepGrid(*sweepF)
		if err != nil {
			fatal(err)
		}
		runSweep(c, hisvsim.Options{
			Noise: model, Fuse: fp, MaxFuseQubits: *fuseMax,
		}, obs, bindings, *traj, *noiseSeed)
		return
	}

	if model != nil {
		if *verify {
			fatal(fmt.Errorf("-verify compares against flat ideal simulation and cannot check a stochastic ensemble; drop the noise flags or -verify"))
		}
		if *showParts {
			fatal(fmt.Errorf("-parts is a partition-plan report; noisy trajectories execute unpartitioned (drop -parts or the noise flags)"))
		}
		opts := hisvsim.Options{
			Backend:  *backendN,
			Strategy: *strategy, Lm: *lm, Ranks: *ranks,
			SecondLevelLm: *lm2, Seed: *seed,
			Fuse: fp, MaxFuseQubits: *fuseMax, Noise: model,
		}
		if isExactBackend(*backendN) {
			runExact(c, opts, *shots, *zString, *noiseSeed, obs)
		} else {
			runNoisy(c, opts, *traj, *shots, *zString, *noiseSeed, obs)
		}
		return
	}

	res, err := hisvsim.Simulate(c, hisvsim.Options{
		Backend:  *backendN,
		Strategy: *strategy, Lm: *lm, Ranks: *ranks,
		SecondLevelLm: *lm2, Seed: *seed,
		Fuse: fp, MaxFuseQubits: *fuseMax,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("backend: %s\n", res.Backend)
	if res.Plan != nil {
		printPlan(res.Plan, *showParts)
	}
	fmt.Printf("execution: %s\n", res.Elapsed)
	if res.Hier != nil {
		fmt.Printf("single-node: %d parts, %d gather/scatter sweeps, %.1f MB moved, %d inner kernel ops\n",
			res.Hier.Parts, res.Hier.Sweeps, float64(res.Hier.BytesMoved)/(1<<20), res.Hier.InnerOps)
	}
	if res.Dist != nil {
		fmt.Printf("distributed: %d ranks, %d relayouts, %.1f MB over network\n",
			*ranks, res.Dist.Relayouts, float64(res.Dist.BytesComm)/(1<<20))
		for _, s := range res.Dist.Stats {
			fmt.Printf("  rank %d: sent %d msgs / %.1f MB, modeled comm %.3g s, compute %.3g s\n",
				s.Rank, s.MsgsSent, float64(s.BytesSent)/(1<<20), s.CommSeconds, s.ComputeSeconds)
		}
	}
	if res.Baseline != nil {
		fmt.Printf("baseline: %d ranks, %d pair exchanges, %.1f MB over network\n",
			*ranks, res.Baseline.Exchanges, float64(res.Baseline.BytesComm)/(1<<20))
	}
	if res.State != nil {
		top := res.State.MostLikely()
		fmt.Printf("most likely outcome: |%0*b⟩ with probability %.4f\n",
			c.NumQubits, top, res.State.BasisProbability(top))
		for _, ob := range obs {
			fmt.Printf("observable %s = %.9f\n", ob, res.State.ExpectationPauliString(ob))
		}
	} else if res.DM != nil {
		probs := res.DM.Probabilities()
		top := 0
		for i, p := range probs {
			if p > probs[top] {
				top = i
			}
		}
		fmt.Printf("most likely outcome: |%0*b⟩ with probability %.4f\n", c.NumQubits, top, probs[top])
		for _, ob := range obs {
			fmt.Printf("observable %s = %.9f\n", ob, res.DM.ExpectationPauliString(ob))
		}
	}
	if *verify {
		want, err := hisvsim.Run(c)
		if err != nil {
			fatal(err)
		}
		var f float64
		switch {
		case res.State != nil:
			f = res.State.Fidelity(want)
		case res.DM != nil:
			f = res.DM.FidelityWithState(want) // ⟨ψ|ρ|ψ⟩: 1 iff ρ = |ψ⟩⟨ψ|
		default:
			fatal(fmt.Errorf("backend %s returned no verifiable state", res.Backend))
		}
		fmt.Printf("verification fidelity vs flat simulation: %.12f\n", f)
		if math.Abs(f-1) > 1e-8 {
			fatal(fmt.Errorf("verification FAILED"))
		}
		fmt.Println("verification PASSED")
	}
}

// buildNoiseModel assembles the flag-driven model; nil when every noise
// flag is zero (ideal mode). Negative probabilities are rejected here so a
// sign typo cannot silently degrade to an ideal run (values > 1 fail later
// in Model.Validate).
func buildNoiseModel(c *hisvsim.Circuit, depol, depol2, bitFlip, phaseFlip, ampDamp, phaseDamp float64,
	gates string, r01, r10 float64) (*hisvsim.NoiseModel, error) {

	for _, p := range []float64{depol, depol2, bitFlip, phaseFlip, ampDamp, phaseDamp, r01, r10} {
		if p < 0 {
			return nil, fmt.Errorf("noise probabilities must be ≥ 0 (got %g)", p)
		}
	}
	var names []string
	if gates != "" {
		for _, g := range strings.Split(gates, ",") {
			names = append(names, strings.TrimSpace(g))
		}
	}
	model := hisvsim.NewNoiseModel()
	add := func(p float64, ch hisvsim.NoiseChannel) {
		if p > 0 {
			model.AddRule(hisvsim.NoiseRule{Channel: ch, Gates: names})
		}
	}
	add(depol, hisvsim.Depolarizing(depol))
	add(bitFlip, hisvsim.BitFlip(bitFlip))
	add(phaseFlip, hisvsim.PhaseFlip(phaseFlip))
	add(ampDamp, hisvsim.AmplitudeDamping(ampDamp))
	add(phaseDamp, hisvsim.PhaseDamping(phaseDamp))
	if depol2 > 0 {
		// The correlated channel must match two-qubit sites only: default
		// its rule to the circuit's two-qubit gate classes so a bare
		// -depolarizing2 never hits a single-qubit gate (a compile error).
		twoQ := names
		if len(twoQ) == 0 {
			if twoQ = twoQubitGateNames(c); len(twoQ) == 0 {
				return nil, fmt.Errorf("-depolarizing2 set but the circuit has no two-qubit gates")
			}
		}
		model.AddRule(hisvsim.NoiseRule{Channel: hisvsim.CorrelatedDepolarizing2(depol2), Gates: twoQ})
	}
	if r01 > 0 || r10 > 0 {
		model.WithReadout(r01, r10)
	}
	if len(model.Rules) == 0 && model.Readout == nil {
		return nil, nil
	}
	return model, nil
}

// twoQubitGateNames lists the distinct two-qubit gate names the circuit
// uses, sorted (the default scope of -depolarizing2).
func twoQubitGateNames(c *hisvsim.Circuit) []string {
	seen := map[string]bool{}
	for _, g := range c.Gates {
		if len(g.Qubits) == 2 && !seen[g.Name] {
			seen[g.Name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// isExactBackend reports whether the named backend serves noisy requests
// exactly (one density-matrix evolution) instead of as trajectory
// ensembles. The empty default never resolves to an exact engine.
func isExactBackend(name string) bool {
	for _, b := range hisvsim.Backends() {
		if b.Name == name {
			return b.Capabilities.Noise == hisvsim.NoiseCapabilityExact
		}
	}
	return false
}

// parseObservables parses the -observables flag: semicolon-separated
// weighted Pauli strings of the form "[coeff*]OPS@q0,q1,…", e.g.
// "-1*ZZ@0,1; 0.5*X@2; Y@3".
func parseObservables(s string) ([]hisvsim.PauliString, error) {
	var out []hisvsim.PauliString
	for _, raw := range strings.Split(s, ";") {
		term := strings.TrimSpace(raw)
		if term == "" {
			continue
		}
		p := hisvsim.PauliString{}
		if i := strings.Index(term, "*"); i >= 0 {
			c, err := strconv.ParseFloat(strings.TrimSpace(term[:i]), 64)
			if err != nil {
				return nil, fmt.Errorf("bad observable coefficient in %q: %w", term, err)
			}
			if c == 0 {
				return nil, fmt.Errorf("observable %q has coefficient 0, which always contributes nothing — drop the term", term)
			}
			p.Coeff = c
			term = strings.TrimSpace(term[i+1:])
		}
		ops, qs, ok := strings.Cut(term, "@")
		if !ok {
			return nil, fmt.Errorf("bad observable %q (want [coeff*]OPS@q0,q1,…)", term)
		}
		p.Ops = strings.TrimSpace(ops)
		for _, f := range strings.Split(qs, ",") {
			q, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("bad observable qubit in %q: %w", term, err)
			}
			p.Qubits = append(p.Qubits, q)
		}
		out = append(out, p)
	}
	return out, nil
}

// runExact executes a noisy run on an exact-noise backend ("dm"): one
// deterministic density-matrix evolution answers counts and observables —
// no trajectory count, no standard errors, observable values independent
// of the sampling seed.
func runExact(c *hisvsim.Circuit, opts hisvsim.Options, shots int, zString string, seed int64, obs []hisvsim.PauliString) {
	spec := hisvsim.ReadoutSpec{Shots: shots, Seed: seed}
	if zString != "" {
		p := hisvsim.PauliString{}
		for _, f := range strings.Split(zString, ",") {
			var q int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &q); err != nil {
				fatal(fmt.Errorf("bad -expect-z qubit %q", f))
			}
			p.Ops += "Z"
			p.Qubits = append(p.Qubits, q)
		}
		obs = append([]hisvsim.PauliString{p}, obs...)
	}
	for _, p := range obs {
		spec.Observables = append(spec.Observables, hisvsim.Observable{
			Coeff: p.Coeff, Paulis: p.Ops, Qubits: p.Qubits,
		})
	}
	rep, err := hisvsim.Evaluate(c, opts, spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("exact density-matrix evolution (backend %s): purity %.6f\n",
		opts.Backend, rep.Density.Purity())
	for k, ov := range rep.Observables {
		fmt.Printf("  observable %s = %.9f (exact)\n", obs[k], ov.Value)
	}
	printTopCounts(c, rep.Counts, shots)
}

// runNoisy executes and reports a trajectory ensemble.
func runNoisy(c *hisvsim.Circuit, opts hisvsim.Options, traj, shots int, zString string, seed int64, obs []hisvsim.PauliString) {
	run := hisvsim.NoisyRun{Trajectories: traj, Seed: seed, Shots: shots, Observables: obs}
	if zString != "" {
		for _, f := range strings.Split(zString, ",") {
			var q int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &q); err != nil {
				fatal(fmt.Errorf("bad -expect-z qubit %q", f))
			}
			run.Qubits = append(run.Qubits, q)
		}
	}
	ens, err := hisvsim.SimulateNoisy(c, opts, run)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("noisy ensemble: %s in %s\n", ens, ens.Elapsed)
	fmt.Printf("  channel draws: %d (pauli insertions %d, kraus applications %d)\n",
		ens.Stats.Locations, ens.Stats.PauliApplied, ens.Stats.KrausApplied)
	if ens.HasExpectation {
		fmt.Printf("  ⟨∏ Z_%v⟩ = %.6f ± %.6f\n", run.Qubits, ens.Expectation, ens.StdErr)
	}
	for k, st := range ens.Observables {
		fmt.Printf("  observable %s = %.6f ± %.6f\n", obs[k], st.Mean, st.StdErr)
	}
	printTopCounts(c, ens.Counts, ens.Shots)
}

// printTopCounts prints the 8 most frequent sampled outcomes.
func printTopCounts(c *hisvsim.Circuit, counts map[int]int, shots int) {
	if len(counts) == 0 {
		return
	}
	type kv struct {
		basis int
		n     int
	}
	top := make([]kv, 0, len(counts))
	for b, n := range counts {
		top = append(top, kv{b, n})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].n != top[j].n {
			return top[i].n > top[j].n
		}
		return top[i].basis < top[j].basis
	})
	if len(top) > 8 {
		top = top[:8]
	}
	fmt.Println("  top outcomes:")
	for _, e := range top {
		fmt.Printf("    |%0*b⟩ %6d  (%.4f)\n", c.NumQubits, e.basis, e.n,
			float64(e.n)/float64(shots))
	}
}

func loadCircuit(family, qasmFile string, n, layers int) (*hisvsim.Circuit, error) {
	switch {
	case qasmFile != "":
		src, err := os.ReadFile(qasmFile)
		if err != nil {
			return nil, err
		}
		return hisvsim.ParseQASM(string(src))
	case family == "qaoa_ansatz":
		return hisvsim.QAOAAnsatz(n, layers), nil
	case family != "":
		return hisvsim.BuildCircuit(family, n)
	default:
		return nil, fmt.Errorf("specify -circuit <family> or -qasm <file>")
	}
}

// parseParams parses -params: comma-separated name=value bindings.
func parseParams(s string) (map[string]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	env := map[string]float64{}
	for _, kv := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad -params entry %q (want name=value)", kv)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -params value for %q: %w", strings.TrimSpace(name), err)
		}
		env[strings.TrimSpace(name)] = v
	}
	return env, nil
}

// parseSweepGrid parses -sweep into the cartesian binding list. Each
// semicolon-separated entry is name=spec where spec is either a comma list
// of values or a lo:hi:count linspace (count points, endpoints included).
func parseSweepGrid(s string) ([]map[string]float64, error) {
	grid := map[string][]float64{}
	for _, raw := range strings.Split(s, ";") {
		entry := strings.TrimSpace(raw)
		if entry == "" {
			continue
		}
		name, spec, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("bad -sweep entry %q (want name=values)", entry)
		}
		name = strings.TrimSpace(name)
		if _, dup := grid[name]; dup {
			return nil, fmt.Errorf("-sweep lists symbol %q twice", name)
		}
		var vals []float64
		spec = strings.TrimSpace(spec)
		if strings.Contains(spec, ":") {
			parts := strings.Split(spec, ":")
			if len(parts) != 3 {
				return nil, fmt.Errorf("bad -sweep linspace %q (want lo:hi:count)", spec)
			}
			lo, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
			hi, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
			count, err3 := strconv.Atoi(strings.TrimSpace(parts[2]))
			if err1 != nil || err2 != nil || err3 != nil || count < 1 {
				return nil, fmt.Errorf("bad -sweep linspace %q (want lo:hi:count, count >= 1)", spec)
			}
			for i := 0; i < count; i++ {
				v := lo
				if count > 1 {
					v = lo + (hi-lo)*float64(i)/float64(count-1)
				}
				vals = append(vals, v)
			}
		} else {
			for _, f := range strings.Split(spec, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if err != nil {
					return nil, fmt.Errorf("bad -sweep value %q for %q: %w", f, name, err)
				}
				vals = append(vals, v)
			}
		}
		grid[name] = vals
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("-sweep is empty")
	}
	// Cartesian product in sorted symbol order, last symbol fastest —
	// matching the service's grid expansion.
	syms := make([]string, 0, len(grid))
	for name := range grid {
		syms = append(syms, name)
	}
	sort.Strings(syms)
	total := 1
	for _, name := range syms {
		total *= len(grid[name])
	}
	bindings := make([]map[string]float64, 0, total)
	idx := make([]int, len(syms))
	for {
		env := make(map[string]float64, len(syms))
		for i, name := range syms {
			env[name] = grid[name][idx[i]]
		}
		bindings = append(bindings, env)
		i := len(syms) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(grid[syms[i]]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return bindings, nil
		}
	}
}

// runSweep evaluates the observables on every grid point from one template
// compilation and prints the energy (Σ weighted terms) per point plus the
// minimum found.
func runSweep(c *hisvsim.Circuit, opts hisvsim.Options, obs []hisvsim.PauliString, bindings []map[string]float64, traj int, seed int64) {
	spec := hisvsim.ReadoutSpec{Seed: seed}
	if opts.Noise != nil {
		spec.Trajectories = traj
	}
	for _, p := range obs {
		spec.Observables = append(spec.Observables, hisvsim.Observable{
			Coeff: p.Coeff, Paulis: p.Ops, Qubits: p.Qubits,
		})
	}
	rep, err := hisvsim.Sweep(c, opts, spec, bindings)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sweep: %d points over symbols %v in %s\n", len(rep.Points), c.Symbols(), rep.Elapsed)
	fmt.Printf("template: %d compile(s), %d symbol-touched / %d shared fused blocks\n",
		rep.Compiles, rep.TouchedBlocks, rep.SharedBlocks)
	if rep.Trajectories > 0 {
		fmt.Printf("noise: %d trajectories per point\n", rep.Trajectories)
	}
	syms := c.Symbols()
	best, bestE := -1, math.Inf(1)
	for i, pt := range rep.Points {
		var e float64
		for _, ov := range pt.Readouts.Observables {
			e += ov.Value
		}
		if e < bestE {
			best, bestE = i, e
		}
		var b strings.Builder
		for _, name := range syms {
			fmt.Fprintf(&b, " %s=%.6g", name, pt.Binding[name])
		}
		fmt.Printf("  point %3d:%s  energy = %.9f\n", i, b.String(), e)
	}
	fmt.Printf("minimum: point %d with energy %.9f\n", best, bestE)
}

func fusePolicy(s string) (hisvsim.FusePolicy, error) {
	switch s {
	case "auto", "":
		return hisvsim.FuseAuto, nil
	case "on":
		return hisvsim.FuseOn, nil
	case "off":
		return hisvsim.FuseOff, nil
	default:
		return 0, fmt.Errorf("unknown -fuse value %q (want auto, on, or off)", s)
	}
}

func lmOrDefault(lm, n, ranks int) int {
	if lm > 0 {
		return lm
	}
	p := 0
	for 1<<uint(p) < ranks {
		p++
	}
	return n - p
}

func printPlan(pl *hisvsim.Plan, detail bool) {
	fmt.Printf("plan: %s (partitioned in %s)\n", pl.String(), pl.Elapsed)
	if !detail {
		return
	}
	for _, part := range pl.Parts {
		fmt.Printf("  part %d: %d gates, working set %v\n",
			part.Index, len(part.GateIndices), part.Qubits)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hisvsim:", err)
	os.Exit(1)
}
