package hisvsim

import (
	"math/cmplx"
	"testing"
	"testing/quick"

	"hisvsim/internal/circuit"
)

// equalAmps reports element-wise agreement of two states within eps.
func equalAmps(a, b *State, eps float64) bool {
	if a.N != b.N {
		return false
	}
	for i := range a.Amps {
		if cmplx.Abs(a.Amps[i]-b.Amps[i]) > eps {
			return false
		}
	}
	return true
}

// TestFusedMatchesUnfusedAllFamilies is the fusion acceptance matrix: for
// every circuit family at n=10, across partitioning strategies and rank
// counts, the fused and unfused executions must agree amplitude-by-amplitude
// within 1e-9.
func TestFusedMatchesUnfusedAllFamilies(t *testing.T) {
	for _, fam := range Families() {
		c := MustCircuit(fam, 10)
		for _, strategy := range []string{"nat", "dagp"} {
			for _, ranks := range []int{1, 4} {
				base := Options{Strategy: strategy, Ranks: ranks, Seed: 1}
				off := base
				off.Fuse = FuseOff
				want, err := Simulate(c, off)
				if err != nil {
					t.Fatalf("%s/%s/ranks=%d unfused: %v", fam, strategy, ranks, err)
				}
				on := base
				on.Fuse = FuseOn
				got, err := Simulate(c, on)
				if err != nil {
					t.Fatalf("%s/%s/ranks=%d fused: %v", fam, strategy, ranks, err)
				}
				if !equalAmps(got.State, want.State, 1e-9) {
					t.Errorf("%s/%s/ranks=%d: fused state diverges from unfused", fam, strategy, ranks)
				}
				// Both must also match the flat reference simulator.
				flat, err := Run(c)
				if err != nil {
					t.Fatal(err)
				}
				if !equalAmps(got.State, flat, 1e-9) {
					t.Errorf("%s/%s/ranks=%d: fused state diverges from flat reference", fam, strategy, ranks)
				}
			}
		}
	}
}

// TestFusedMatchesUnfusedMaxFuseQubits sweeps the support cap.
func TestFusedMatchesUnfusedMaxFuseQubits(t *testing.T) {
	c := MustCircuit("qft", 10)
	flat, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 4, 5, 7} {
		res, err := Simulate(c, Options{Strategy: "dagp", MaxFuseQubits: k})
		if err != nil {
			t.Fatalf("MaxFuseQubits=%d: %v", k, err)
		}
		if !equalAmps(res.State, flat, 1e-9) {
			t.Errorf("MaxFuseQubits=%d: fused state diverges", k)
		}
	}
}

// TestFusedMatchesUnfusedSecondLevel covers the multi-level executor with
// fusion in the innermost level.
func TestFusedMatchesUnfusedSecondLevel(t *testing.T) {
	c := MustCircuit("qft", 10)
	flat, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 4} {
		res, err := Simulate(c, Options{Strategy: "dagp", Ranks: ranks, Lm: 6, SecondLevelLm: 3})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if !equalAmps(res.State, flat, 1e-9) {
			t.Errorf("ranks=%d: multi-level fused state diverges", ranks)
		}
	}
}

// TestQuickFusedEqualsUnfused is the randomized-circuit differential fuzz:
// seeded random circuits must execute identically fused and unfused across
// the single-node and distributed paths.
func TestQuickFusedEqualsUnfused(t *testing.T) {
	f := func(seed int64, rBits, lmRaw uint8) bool {
		ranks := 1 << (uint(rBits) % 3) // 1, 2 or 4
		c := circuit.Random(8, 60, seed)
		lm := 8 - int(lmRaw%3)
		off := Options{Strategy: "dagp", Ranks: ranks, Lm: lm, Seed: seed, Fuse: FuseOff}
		want, err := Simulate(c, off)
		if err != nil {
			return false
		}
		on := off
		on.Fuse = FuseOn
		got, err := Simulate(c, on)
		if err != nil {
			return false
		}
		return equalAmps(got.State, want.State, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
