// Package backend is the pluggable execution surface of the simulator: a
// small registry of named engines that all answer the same question — "run
// this circuit from |0…0⟩ under this execution spec" — so that adding an
// executor never again means threading a new fork through core, the
// service, the HTTP layer and the CLI.
//
// Five engines register at init:
//
//	flat      per-gate reference sweep on one dense state (sv.Run)
//	hier      single-node hierarchical executor over a partition plan
//	dist      simulated multi-rank distributed executor (one relayout/part)
//	baseline  IQS/qHiPSTER-style fixed-layout comparison system
//	dm        exact density-matrix engine for small noisy registers
//
// Callers normally go through core.Simulate, which resolves
// Options.Backend against this registry (defaulting by rank count); the
// service and daemon expose the same selection per request.
package backend

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"hisvsim/internal/baseline"
	"hisvsim/internal/circuit"
	"hisvsim/internal/dist"
	"hisvsim/internal/dm"
	"hisvsim/internal/hier"
	"hisvsim/internal/mpi"
	"hisvsim/internal/partition"
	"hisvsim/internal/partition/dagp"
	"hisvsim/internal/partition/exact"
	"hisvsim/internal/sv"
)

// Spec is the execution request a backend receives: every core.Options
// field that can shape how (not what) the circuit is executed. Backends
// ignore fields outside their capabilities (flat ignores partitioning,
// single-rank engines reject Ranks > 1).
type Spec struct {
	// Strategy names the partitioner ("nat", "dfs", "dagp", "exact";
	// "" = dagp). Only partitioned backends consult it.
	Strategy string
	// Lm is the first-level working-set limit (0 = local qubit count).
	Lm int
	// Ranks is the simulated MPI rank count (0 or 1 = single node).
	Ranks int
	// SecondLevelLm enables multi-level execution when > 0.
	SecondLevelLm int
	// Workers bounds kernel parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed drives the randomized partitioners.
	Seed int64
	// Model is the distributed communication model (zero = HDR-100).
	Model mpi.CostModel
	// SkipState skips gathering the distributed state (metrics only).
	SkipState bool
	// Fuse enables gate fusion; MaxFuseQubits caps fused-block support.
	Fuse          bool
	MaxFuseQubits int
}

// Execution is what a backend produces: the final state plus whatever
// plan/metrics the engine computes. Plan is nil for unpartitioned engines
// (flat, baseline); exactly one of Hier/Dist/Baseline is set when the
// engine reports metrics. The density-matrix engine sets DM instead of
// State (ρ has no single amplitude vector).
type Execution struct {
	Plan     *partition.Plan
	State    *sv.State   // nil when SkipState on a distributed engine, or for the dm engine
	DM       *dm.Density // exact density matrix (dm engine only)
	Hier     *hier.Metrics
	Dist     *dist.Result
	Baseline *baseline.Result
	Elapsed  time.Duration // execution phase (partitioning excluded)
}

// Noise capability values: how an engine serves requests that carry an
// effective noise model.
const (
	// NoiseNone marks engines with no noisy path at all; the service and
	// core reject noisy requests naming them at submit time.
	NoiseNone = ""
	// NoiseTrajectory marks engines whose noisy requests run as stochastic
	// Kraus/Pauli trajectory ensembles (on the flat fused engine).
	NoiseTrajectory = "trajectory"
	// NoiseExact marks engines that evolve the exact density matrix: one
	// deterministic superoperator evolution instead of an ensemble.
	NoiseExact = "exact"
)

// Capabilities describes what execution specs a backend accepts, so
// callers can validate and pick defaults without knowing the engine.
type Capabilities struct {
	// SingleRank / MultiRank report which rank counts the engine accepts
	// (Ranks ≤ 1 and Ranks > 1 respectively).
	SingleRank bool `json:"single_rank"`
	MultiRank  bool `json:"multi_rank"`
	// Partitioned reports whether the engine builds a partition plan
	// (and therefore consults Strategy/Lm/Seed).
	Partitioned bool `json:"partitioned"`
	// Noise reports how the engine serves noisy requests: NoiseNone
	// (rejected at submit), NoiseTrajectory (stochastic ensembles) or
	// NoiseExact (deterministic density-matrix evolution).
	Noise string `json:"noise,omitempty"`
	// MaxQubits caps the register width the engine accepts (0 = no
	// engine-specific cap beyond the shared sv limits). The density-matrix
	// engine holds ρ = 4^n amplitudes, so its cap is far below the
	// state-vector engines'.
	MaxQubits int `json:"max_qubits,omitempty"`
	// Description is a one-line human summary.
	Description string `json:"description"`
}

// Backend is one execution engine.
type Backend interface {
	// Name is the registry key ("flat", "hier", "dist", "baseline", …).
	Name() string
	// Capabilities reports what specs the engine accepts.
	Capabilities() Capabilities
	// Run executes the circuit from |0…0⟩ per the spec. Implementations
	// must honor ctx at their natural boundaries (part, step, gate run).
	Run(ctx context.Context, c *circuit.Circuit, spec Spec) (*Execution, error)
}

// Info pairs a backend name with its capabilities (the Backends() listing).
type Info struct {
	Name         string       `json:"name"`
	Capabilities Capabilities `json:"capabilities"`
}

var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// Register adds a backend under its name, replacing any previous holder.
func Register(b Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[b.Name()] = b
}

// Get returns the named backend, or an error listing the registered names.
func Get(name string) (Backend, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if b, ok := registry[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("backend: unknown backend %q (want one of %v)", name, namesLocked())
}

// Names lists the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// List returns every registered backend with its capabilities, sorted by
// name.
func List() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Info, 0, len(registry))
	for _, n := range namesLocked() {
		out = append(out, Info{Name: n, Capabilities: registry[n].Capabilities()})
	}
	return out
}

// DefaultName returns the backend an empty Options.Backend selects: the
// hierarchical engine on a single node, the distributed engine beyond
// (exactly the pre-registry rank fork).
func DefaultName(ranks int) string {
	if ranks > 1 {
		return NameDist
	}
	return NameHier
}

// Resolve returns the backend for name, defaulting by rank count when name
// is empty, plus the resolved name (for cache keys and stats).
func Resolve(name string, ranks int) (Backend, string, error) {
	if name == "" {
		name = DefaultName(ranks)
	}
	b, err := Get(name)
	return b, name, err
}

// StrategyNames lists the accepted partitioning strategy names.
func StrategyNames() []string { return []string{"nat", "dfs", "dagp", "exact"} }

// NewStrategy builds a partitioner by name ("" selects dagp, the default).
func NewStrategy(name string, seed int64) (partition.Strategy, error) {
	switch name {
	case "", "dagp":
		return dagp.Partitioner{Opts: dagp.Options{Seed: seed}}, nil
	case "nat":
		return partition.Nat{}, nil
	case "dfs":
		return partition.DFS{Trials: 10, Seed: seed}, nil
	case "exact":
		return exact.Solver{}, nil
	default:
		return nil, fmt.Errorf("core: unknown strategy %q (want one of %v)", name, StrategyNames())
	}
}
