package backend

import (
	"context"
	"strings"
	"testing"

	"hisvsim/internal/circuit"
)

func TestRegistryNamesAndDefaults(t *testing.T) {
	names := Names()
	for _, want := range []string{NameFlat, NameHier, NameDist, NameBaseline} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("backend %q not registered (have %v)", want, names)
		}
	}
	if got := DefaultName(1); got != NameHier {
		t.Errorf("DefaultName(1) = %q, want %q", got, NameHier)
	}
	if got := DefaultName(0); got != NameHier {
		t.Errorf("DefaultName(0) = %q, want %q", got, NameHier)
	}
	if got := DefaultName(4); got != NameDist {
		t.Errorf("DefaultName(4) = %q, want %q", got, NameDist)
	}
	if _, err := Get("no-such-engine"); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("Get(unknown) error = %v, want unknown-backend error", err)
	}
	if _, name, err := Resolve("", 2); err != nil || name != NameDist {
		t.Errorf("Resolve(\"\", 2) = %q, %v", name, err)
	}
	for _, info := range List() {
		if info.Capabilities.Description == "" {
			t.Errorf("backend %q has no description", info.Name)
		}
		if !info.Capabilities.SingleRank && !info.Capabilities.MultiRank {
			t.Errorf("backend %q accepts no rank count at all", info.Name)
		}
	}
}

// TestBackendsAgreeOnState is the registry-level differential test: every
// engine must produce the same final state for specs within its
// capabilities.
func TestBackendsAgreeOnState(t *testing.T) {
	c, err := circuit.Named("qft", 8)
	if err != nil {
		t.Fatal(err)
	}
	flat, _ := Get(NameFlat)
	ref, err := flat.Run(context.Background(), c, Spec{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		spec Spec
	}{
		{NameHier, Spec{Strategy: "dagp", Lm: 5, Seed: 3, Fuse: true}},
		{NameHier, Spec{Strategy: "nat", Lm: 4}},
		{NameDist, Spec{Ranks: 2, Seed: 3, Fuse: true}},
		{NameDist, Spec{Ranks: 4, Seed: 3}},
		{NameBaseline, Spec{Ranks: 2, Fuse: true}},
		{NameBaseline, Spec{Ranks: 1}},
	}
	for _, tc := range cases {
		b, err := Get(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Run(context.Background(), c, tc.spec)
		if err != nil {
			t.Fatalf("%s %+v: %v", tc.name, tc.spec, err)
		}
		if got.State == nil {
			t.Fatalf("%s %+v: nil state", tc.name, tc.spec)
		}
		if !got.State.EqualTol(ref.State, 1e-9) {
			t.Errorf("%s %+v: state diverges from flat reference", tc.name, tc.spec)
		}
		if b.Capabilities().Partitioned && got.Plan == nil {
			t.Errorf("%s: partitioned backend returned no plan", tc.name)
		}
	}
}

func TestSingleRankBackendsRejectMultiRank(t *testing.T) {
	c, err := circuit.Named("bv", 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{NameFlat, NameHier} {
		b, _ := Get(name)
		if _, err := b.Run(context.Background(), c, Spec{Ranks: 4}); err == nil {
			t.Errorf("%s accepted 4 ranks", name)
		}
	}
}

func TestCanceledContext(t *testing.T) {
	c, err := circuit.Named("qft", 6)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Names() {
		b, _ := Get(name)
		if _, err := b.Run(ctx, c, Spec{}); err == nil {
			t.Errorf("%s ignored a canceled context", name)
		}
	}
}
