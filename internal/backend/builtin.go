package backend

import (
	"context"
	"fmt"
	"time"

	"hisvsim/internal/baseline"
	"hisvsim/internal/circuit"
	"hisvsim/internal/dag"
	"hisvsim/internal/dist"
	"hisvsim/internal/dm"
	"hisvsim/internal/hier"
	"hisvsim/internal/partition"
	"hisvsim/internal/prof"
	"hisvsim/internal/sv"
)

// Registered backend names.
const (
	NameFlat     = "flat"
	NameHier     = "hier"
	NameDist     = "dist"
	NameBaseline = "baseline"
	NameDM       = "dm"
)

func init() {
	Register(flatBackend{})
	Register(hierBackend{})
	Register(distBackend{})
	Register(baselineBackend{})
	Register(dmBackend{})
}

// log2 returns ⌈log₂ x⌉ for x ≥ 1.
func log2(x int) int {
	n := 0
	for 1<<uint(n) < x {
		n++
	}
	return n
}

// plan partitions the circuit for a partitioned backend: resolve the
// strategy, default/cap the working-set limit to the local qubit count, and
// run the partitioner. localQubits is the per-rank slab width (the full
// register on a single node).
func plan(c *circuit.Circuit, spec Spec, localQubits int, capLm bool) (*partition.Plan, error) {
	strat, err := NewStrategy(spec.Strategy, spec.Seed)
	if err != nil {
		return nil, err
	}
	lm := spec.Lm
	if lm <= 0 || (capLm && lm > localQubits) {
		// Lm is a performance knob, not a semantics knob: a distributed
		// executor can never place a working set wider than one rank's
		// slab, so an over-wide request degrades to the local qubit count.
		lm = localQubits
	}
	return strat.Partition(dag.FromCircuit(c), lm)
}

// flatBackend is the per-gate reference sweep: one dense state, no
// partitioning, no fusion — the result every other engine is tested
// against.
type flatBackend struct{}

func (flatBackend) Name() string { return NameFlat }

func (flatBackend) Capabilities() Capabilities {
	return Capabilities{
		SingleRank: true,
		// The trajectory engine IS the flat fused sweep, so noisy requests
		// naming this backend run as ensembles.
		Noise:       NoiseTrajectory,
		Description: "per-gate reference sweep on one dense state (no partitioning or fusion)",
	}
}

func (flatBackend) Run(ctx context.Context, c *circuit.Circuit, spec Spec) (*Execution, error) {
	if spec.Ranks > 1 {
		return nil, fmt.Errorf("backend: flat runs single-node only (got %d ranks; use %q)", spec.Ranks, NameDist)
	}
	start := time.Now()
	st := sv.NewState(c.NumQubits)
	st.Workers = spec.Workers
	st.Prof = prof.FromContext(ctx)
	for _, g := range c.Gates {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := st.ApplyGate(g); err != nil {
			return nil, err
		}
	}
	return &Execution{State: st, Elapsed: time.Since(start)}, nil
}

// hierBackend is the single-node hierarchical executor: partition into
// working-set-bounded parts, gather/execute/scatter each part (optionally
// through a second level), fusing gate runs between sweeps.
type hierBackend struct{}

func (hierBackend) Name() string { return NameHier }

func (hierBackend) Capabilities() Capabilities {
	return Capabilities{
		SingleRank: true, Partitioned: true,
		// The single-node default: effective-noise requests degrade to the
		// flat trajectory engine (the zero-noise fast path stays hier).
		Noise:       NoiseTrajectory,
		Description: "single-node hierarchical executor over an acyclic partition plan",
	}
}

func (hierBackend) Run(ctx context.Context, c *circuit.Circuit, spec Spec) (*Execution, error) {
	if spec.Ranks > 1 {
		return nil, fmt.Errorf("backend: hier runs single-node only (got %d ranks; use %q)", spec.Ranks, NameDist)
	}
	pl, err := plan(c, spec, c.NumQubits, false)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	st := sv.NewState(c.NumQubits)
	st.Workers = spec.Workers
	st.Prof = prof.FromContext(ctx)
	m, err := hier.ExecutePlan(pl, st, hier.Options{
		Ctx:           ctx,
		SecondLevelLm: spec.SecondLevelLm, Workers: spec.Workers,
		Fuse: spec.Fuse, MaxFuseQubits: spec.MaxFuseQubits,
	})
	if err != nil {
		return nil, err
	}
	return &Execution{Plan: pl, State: st, Hier: m, Elapsed: time.Since(start)}, nil
}

// distBackend is the simulated multi-rank executor: the state shards over
// 2^p rank slabs and each part triggers at most one collective relayout.
type distBackend struct{}

func (distBackend) Name() string { return NameDist }

func (distBackend) Capabilities() Capabilities {
	return Capabilities{
		SingleRank: true, MultiRank: true, Partitioned: true,
		Description: "distributed executor over simulated MPI ranks (one relayout per part)",
	}
}

func (distBackend) Run(ctx context.Context, c *circuit.Circuit, spec Spec) (*Execution, error) {
	ranks := spec.Ranks
	if ranks < 1 {
		ranks = 1
	}
	pl, err := plan(c, spec, c.NumQubits-log2(ranks), ranks > 1)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	dr, err := dist.Run(pl, dist.Config{
		Ctx:   ctx,
		Ranks: ranks, Model: spec.Model, SecondLevelLm: spec.SecondLevelLm,
		Workers: spec.Workers, GatherResult: !spec.SkipState,
		NoFuse: !spec.Fuse, MaxFuseQubits: spec.MaxFuseQubits,
	})
	if err != nil {
		return nil, err
	}
	return &Execution{Plan: pl, State: dr.State, Dist: dr, Elapsed: time.Since(start)}, nil
}

// baselineBackend is the IQS/qHiPSTER-style comparison system: fixed qubit
// layout, pairwise slab exchange per global-qubit gate, circuits lowered to
// the {1q, CX} basis.
type baselineBackend struct{}

func (baselineBackend) Name() string { return NameBaseline }

func (baselineBackend) Capabilities() Capabilities {
	return Capabilities{
		SingleRank: true, MultiRank: true,
		Description: "IQS-style fixed-layout baseline (pairwise exchange per global-qubit gate)",
	}
}

func (baselineBackend) Run(ctx context.Context, c *circuit.Circuit, spec Spec) (*Execution, error) {
	ranks := spec.Ranks
	if ranks < 1 {
		ranks = 1
	}
	start := time.Now()
	br, err := baseline.Run(c, baseline.Config{
		Ctx:   ctx,
		Ranks: ranks, Model: spec.Model, Workers: spec.Workers,
		GatherResult: !spec.SkipState,
		Fuse:         spec.Fuse, MaxFuseQubits: spec.MaxFuseQubits,
	})
	if err != nil {
		return nil, err
	}
	return &Execution{State: br.State, Baseline: br, Elapsed: time.Since(start)}, nil
}

// dmBackend is the exact density-matrix engine: ρ over ≤ dm.MaxQubits
// qubits evolves as UρU† per fused gate block, and — under a noise model —
// channels apply exactly as superoperators (core routes noisy "dm" requests
// through dm.Run directly; this registry Run covers the ideal case, e.g.
// the zero-noise elision path).
type dmBackend struct{}

func (dmBackend) Name() string { return NameDM }

func (dmBackend) Capabilities() Capabilities {
	return Capabilities{
		SingleRank: true,
		Noise:      NoiseExact,
		MaxQubits:  dm.MaxQubits,
		Description: fmt.Sprintf("exact density-matrix engine (≤ %d qubits; noisy runs are one deterministic superoperator evolution)",
			dm.MaxQubits),
	}
}

func (dmBackend) Run(ctx context.Context, c *circuit.Circuit, spec Spec) (*Execution, error) {
	if spec.Ranks > 1 {
		return nil, fmt.Errorf("backend: dm runs single-node only (got %d ranks)", spec.Ranks)
	}
	if c.NumQubits > dm.MaxQubits {
		return nil, fmt.Errorf("backend: dm holds at most %d qubits (ρ is 4^n amplitudes); circuit has %d", dm.MaxQubits, c.NumQubits)
	}
	start := time.Now()
	d, _, err := dm.Run(ctx, c, nil, dm.Options{
		Fuse: spec.Fuse, MaxFuseQubits: spec.MaxFuseQubits, Workers: spec.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &Execution{DM: d, Elapsed: time.Since(start)}, nil
}
