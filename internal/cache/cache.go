// Package cache is a trace-driven multi-level cache simulator, the repo's
// substitute for the paper's VTune memory profile (Table II). It models an
// inclusive L1/L2/L3 hierarchy with 64-byte lines and set-associative LRU
// replacement, and replays the exact amplitude access pattern of a flat or
// hierarchical simulation plan to produce the per-level hit breakdown that
// distinguishes the partitioning strategies.
package cache

import "fmt"

// LineSize is the modeled cache line size in bytes.
const LineSize = 64

// AmpBytes is the size of one complex128 amplitude.
const AmpBytes = 16

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name  string
	Bytes int // capacity
	Ways  int // associativity
}

// Config is a full hierarchy, ordered fastest first.
type Config struct {
	Levels []LevelConfig
}

// DefaultConfig models a desktop-class core: 32 KB L1, 1 MB L2, 32 MB L3
// (the geometry the paper quotes in §III-A).
func DefaultConfig() Config {
	return Config{Levels: []LevelConfig{
		{Name: "L1", Bytes: 32 << 10, Ways: 8},
		{Name: "L2", Bytes: 1 << 20, Ways: 8},
		{Name: "L3", Bytes: 32 << 20, Ways: 16},
	}}
}

// Stats is the outcome of a simulation: per-level hit counts plus DRAM
// accesses (misses at the last level).
type Stats struct {
	Accesses int64
	Hits     []int64 // per level
	DRAM     int64
	Levels   []string
}

// HitPercent returns the share of accesses served by level i, in percent.
func (s Stats) HitPercent(i int) float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 100 * float64(s.Hits[i]) / float64(s.Accesses)
}

// DRAMPercent returns the share of accesses that reached DRAM, in percent.
func (s Stats) DRAMPercent() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 100 * float64(s.DRAM) / float64(s.Accesses)
}

func (s Stats) String() string {
	out := fmt.Sprintf("accesses=%d", s.Accesses)
	for i, name := range s.Levels {
		out += fmt.Sprintf(" %s=%.1f%%", name, s.HitPercent(i))
	}
	out += fmt.Sprintf(" DRAM=%.1f%%", s.DRAMPercent())
	return out
}

// level is one set-associative LRU cache level.
type level struct {
	sets  int
	ways  int
	tags  [][]int64 // tags[set][way], -1 empty
	stamp [][]int64 // LRU timestamps
	clock int64
}

func newLevel(cfg LevelConfig) *level {
	lines := cfg.Bytes / LineSize
	ways := cfg.Ways
	if ways <= 0 {
		ways = 8
	}
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	l := &level{sets: sets, ways: ways}
	l.tags = make([][]int64, sets)
	l.stamp = make([][]int64, sets)
	for s := 0; s < sets; s++ {
		l.tags[s] = make([]int64, ways)
		l.stamp[s] = make([]int64, ways)
		for w := 0; w < ways; w++ {
			l.tags[s][w] = -1
		}
	}
	return l
}

// access returns true on hit; on miss the line is installed (LRU evict).
func (l *level) access(line int64) bool {
	set := int(line % int64(l.sets))
	if set < 0 {
		set = -set
	}
	l.clock++
	tags := l.tags[set]
	for w, t := range tags {
		if t == line {
			l.stamp[set][w] = l.clock
			return true
		}
	}
	// miss: install over LRU way
	victim := 0
	for w := 1; w < l.ways; w++ {
		if l.stamp[set][w] < l.stamp[set][victim] {
			victim = w
		}
	}
	tags[victim] = line
	l.stamp[set][victim] = l.clock
	return false
}

// Hierarchy simulates an inclusive multi-level hierarchy.
type Hierarchy struct {
	levels []*level
	stats  Stats
}

// NewHierarchy builds the hierarchy from a config.
func NewHierarchy(cfg Config) *Hierarchy {
	h := &Hierarchy{}
	for _, lc := range cfg.Levels {
		h.levels = append(h.levels, newLevel(lc))
		h.stats.Levels = append(h.stats.Levels, lc.Name)
		h.stats.Hits = append(h.stats.Hits, 0)
	}
	return h
}

// Touch performs one byte-addressed access.
func (h *Hierarchy) Touch(addr int64) {
	line := addr / LineSize
	h.stats.Accesses++
	for i, l := range h.levels {
		if l.access(line) {
			h.stats.Hits[i]++
			// Install into upper levels happened during the probe loop
			// (each missed level already installed the line).
			return
		}
	}
	h.stats.DRAM++
}

// TouchAmp accesses the amplitude with the given index (16-byte elements).
func (h *Hierarchy) TouchAmp(idx int64) { h.Touch(idx * AmpBytes) }

// Stats returns the accumulated statistics.
func (h *Hierarchy) Stats() Stats { return h.stats }
