package cache

import (
	"testing"

	"hisvsim/internal/circuit"
	"hisvsim/internal/dag"
	"hisvsim/internal/partition"
	"hisvsim/internal/partition/dagp"
)

func TestLevelLRU(t *testing.T) {
	// 2 lines capacity, 2 ways, 1 set.
	l := newLevel(LevelConfig{Name: "t", Bytes: 2 * LineSize, Ways: 2})
	if l.access(1) {
		t.Fatal("cold access hit")
	}
	if !l.access(1) {
		t.Fatal("warm access missed")
	}
	l.access(2)
	l.access(1) // 1 is now MRU, 2 is LRU
	l.access(3) // evicts 2 -> {1, 3}
	if l.access(2) {
		t.Fatal("evicted line hit") // this access evicts 1 -> {2, 3}
	}
	if !l.access(3) {
		t.Fatal("retained line missed")
	}
}

func TestHierarchyInclusionAndCounters(t *testing.T) {
	h := NewHierarchy(Config{Levels: []LevelConfig{
		{Name: "L1", Bytes: 2 * LineSize, Ways: 2},
		{Name: "L2", Bytes: 8 * LineSize, Ways: 4},
	}})
	h.Touch(0)
	st := h.Stats()
	if st.Accesses != 1 || st.DRAM != 1 {
		t.Fatalf("cold stats %+v", st)
	}
	h.Touch(0)
	st = h.Stats()
	if st.Hits[0] != 1 {
		t.Fatalf("warm access should hit L1: %+v", st)
	}
	// Push L1 capacity: lines 0..3; line 0 evicted from L1 but still in L2.
	for i := int64(1); i < 4; i++ {
		h.Touch(i * LineSize)
	}
	h.Touch(0)
	st = h.Stats()
	if st.Hits[1] < 1 {
		t.Fatalf("expected an L2 hit: %+v", st)
	}
}

func TestStatsPercentages(t *testing.T) {
	s := Stats{Accesses: 200, Hits: []int64{100, 50}, DRAM: 50, Levels: []string{"L1", "L2"}}
	if s.HitPercent(0) != 50 || s.HitPercent(1) != 25 || s.DRAMPercent() != 25 {
		t.Fatalf("percentages wrong: %s", s)
	}
	empty := Stats{Levels: []string{"L1"}, Hits: []int64{0}}
	if empty.HitPercent(0) != 0 || empty.DRAMPercent() != 0 {
		t.Fatal("empty stats should be zero")
	}
}

func TestTraceFlatSequentialGateIsCacheFriendly(t *testing.T) {
	// H on qubit 0 at a size far exceeding L1 still has perfect spatial
	// locality (stride 1), so DRAM traffic ~ compulsory misses only: one
	// miss per line = 25% of the 8 accesses per line... with read+write
	// double-touch the miss share is 1/8 of touches.
	c := circuit.New("t", 14)
	c.Append(circuit.CatState(14).Gates[0]) // single H gate
	h := NewHierarchy(Config{Levels: []LevelConfig{{Name: "L1", Bytes: 32 << 10, Ways: 8}}})
	TraceFlat(h, c)
	st := h.Stats()
	if st.Accesses == 0 {
		t.Fatal("no accesses")
	}
	missShare := float64(st.DRAM) / float64(st.Accesses)
	if missShare > 0.2 {
		t.Fatalf("sequential gate miss share = %v", missShare)
	}
}

func TestCapacityMissesWhenStateExceedsCache(t *testing.T) {
	// §III-A: once 2^n·16 bytes exceed the last-level cache, every gate's
	// sweep re-faults the state (capacity misses); when the state fits,
	// only the first sweep misses.
	c := circuit.QFT(10) // 16 KB state
	fits := Config{Levels: []LevelConfig{{Name: "L", Bytes: 64 << 10, Ways: 8}}}
	small := Config{Levels: []LevelConfig{{Name: "L", Bytes: 4 << 10, Ways: 8}}}
	hFits := NewHierarchy(fits)
	TraceFlat(hFits, c)
	hSmall := NewHierarchy(small)
	TraceFlat(hSmall, c)
	if hSmall.Stats().DRAM <= 4*hFits.Stats().DRAM {
		t.Fatalf("capacity misses missing: small-cache DRAM %d vs fitting %d",
			hSmall.Stats().DRAM, hFits.Stats().DRAM)
	}
}

func TestTracePlanReducesDRAMVsFlat(t *testing.T) {
	// The paper's core locality claim (§III-B, Table II): hierarchical
	// execution's inner vectors stay cache-resident, so DRAM accesses drop
	// versus flat simulation when the state exceeds the cache.
	c := circuit.QFT(13) // 128 KB state
	cfg := Config{Levels: []LevelConfig{
		{Name: "L1", Bytes: 8 << 10, Ways: 8},
		{Name: "L2", Bytes: 32 << 10, Ways: 8},
	}}
	flat := NewHierarchy(cfg)
	TraceFlat(flat, c)

	pl, err := dagp.Partitioner{}.Partition(dag.FromCircuit(c), 9)
	if err != nil {
		t.Fatal(err)
	}
	hier := NewHierarchy(cfg)
	TracePlan(hier, pl)

	if hier.Stats().DRAM >= flat.Stats().DRAM {
		t.Fatalf("hierarchical DRAM %d >= flat DRAM %d", hier.Stats().DRAM, flat.Stats().DRAM)
	}
}

func TestTracePlanStrategyOrderingOnBV(t *testing.T) {
	// Table II's qualitative ranking on bv: dagP ≤ DFS/Nat on DRAM traffic.
	c := circuit.BV(13, -1)
	g := dag.FromCircuit(c)
	cfg := Config{Levels: []LevelConfig{
		{Name: "L1", Bytes: 8 << 10, Ways: 8},
		{Name: "L2", Bytes: 32 << 10, Ways: 8},
	}}
	dram := map[string]int64{}
	for _, s := range []partition.Strategy{partition.Nat{}, dagp.Partitioner{}} {
		pl, err := s.Partition(g, 9)
		if err != nil {
			t.Fatal(err)
		}
		h := NewHierarchy(cfg)
		TracePlan(h, pl)
		dram[s.Name()] = h.Stats().DRAM
	}
	if dram["dagp"] > dram["nat"] {
		t.Fatalf("dagp DRAM %d > nat DRAM %d", dram["dagp"], dram["nat"])
	}
}

func TestDefaultConfig(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.Touch(123456)
	if h.Stats().Accesses != 1 {
		t.Fatal("default hierarchy broken")
	}
	if len(h.Stats().Levels) != 3 {
		t.Fatal("want 3 levels")
	}
}
