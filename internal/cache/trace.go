package cache

import (
	"hisvsim/internal/circuit"
	"hisvsim/internal/gate"
	"hisvsim/internal/partition"
)

// TraceFlat replays the memory access pattern of a flat (non-hierarchical)
// state-vector simulation: every gate sweeps the full 2^n amplitude array,
// reading and writing the 2^k-element groups addressed by its qubits.
func TraceFlat(h *Hierarchy, c *circuit.Circuit) {
	n := c.NumQubits
	for _, g := range c.Gates {
		traceGate(h, g, n, 0)
	}
}

// TracePlan replays the access pattern of hierarchical (Algorithm 1)
// execution: per part, 2^(n-w) gather/execute/scatter sweeps where the
// inner vector occupies a separate (small, cache-resident) buffer placed
// after the outer array.
func TracePlan(h *Hierarchy, pl *partition.Plan) {
	n := pl.Circuit.NumQubits
	outerAmps := int64(1) << uint(n)
	innerBase := outerAmps // inner buffer directly after the outer vector
	for _, part := range pl.Parts {
		w := part.WorkingSetSize()
		if w == 0 {
			continue
		}
		slot := make(map[int]int, w)
		for j, q := range part.Qubits {
			slot[q] = j
		}
		gates := make([]gate.Gate, 0, len(part.GateIndices))
		for _, gi := range part.GateIndices {
			gates = append(gates, pl.Circuit.Gates[gi].Remap(func(q int) int { return slot[q] }))
		}
		dimInner := 1 << uint(w)
		sweeps := 1 << uint(n-w)
		for f := 0; f < sweeps; f++ {
			base := f
			for _, q := range part.Qubits {
				base = insertBit(base, q)
			}
			// Gather: read outer, write inner.
			for s := 0; s < dimInner; s++ {
				h.TouchAmp(int64(base | spread(s, part.Qubits)))
				h.TouchAmp(innerBase + int64(s))
			}
			// Execute on the inner vector.
			for _, g := range gates {
				traceGate(h, g, w, innerBase)
			}
			// Scatter: read inner, write outer.
			for s := 0; s < dimInner; s++ {
				h.TouchAmp(innerBase + int64(s))
				h.TouchAmp(int64(base | spread(s, part.Qubits)))
			}
		}
	}
}

// traceGate touches the amplitude groups a k-qubit gate reads and writes
// over an n-qubit vector whose first amplitude lives at ampBase.
func traceGate(h *Hierarchy, g gate.Gate, n int, ampBase int64) {
	qs := g.SortedQubits()
	k := len(qs)
	free := n - k
	for f := 0; f < 1<<uint(free); f++ {
		base := f
		for _, q := range qs {
			base = insertBit(base, q)
		}
		for s := 0; s < 1<<uint(k); s++ {
			idx := base | spread(s, qs)
			h.TouchAmp(ampBase + int64(idx)) // read
			h.TouchAmp(ampBase + int64(idx)) // write
		}
	}
}

func insertBit(f, p int) int {
	low := f & ((1 << uint(p)) - 1)
	return ((f &^ ((1 << uint(p)) - 1)) << 1) | low
}

func spread(s int, qubits []int) int {
	out := 0
	for j, q := range qubits {
		if s>>uint(j)&1 == 1 {
			out |= 1 << uint(q)
		}
	}
	return out
}
