package core

import (
	"math"
	"strings"
	"testing"

	"hisvsim/internal/backend"
	"hisvsim/internal/circuit"
	"hisvsim/internal/fuse"
	"hisvsim/internal/noise"
)

// qaoaEnvs returns deterministic bindings for every symbol of c.
func qaoaEnvs(c *circuit.Circuit, k int) []map[string]float64 {
	syms := c.Symbols()
	envs := make([]map[string]float64, k)
	for i := range envs {
		env := make(map[string]float64, len(syms))
		for j, s := range syms {
			env[s] = 0.3*float64(i+1) + 0.17*float64(j) - 0.9
		}
		envs[i] = env
	}
	return envs
}

// TestTemplateMatchesConcreteAcrossBackends is the differential acceptance
// gate: a template compiled ONCE and specialized per binding must agree
// with one-off concrete simulations of the bound circuit on every
// registered state-vector backend to 1e-9.
func TestTemplateMatchesConcreteAcrossBackends(t *testing.T) {
	c := circuit.QAOAAnsatz(4, 2)
	tpl, err := fuse.CompileTemplate(c, fuse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tpl.TouchedBlocks() == 0 {
		t.Fatal("template reports no symbol-touched blocks")
	}
	for _, env := range qaoaEnvs(c, 3) {
		st, err := tpl.Run(env, 0)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := c.Bind(env)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range backend.Names() {
			b, err := backend.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			caps := b.Capabilities()
			if caps.Noise == backend.NoiseExact {
				continue // ρ engine: no amplitude vector to compare
			}
			ranks := 0
			if !caps.SingleRank {
				ranks = 4
			}
			res, err := Simulate(bound, Options{Backend: name, Ranks: ranks})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i := range st.Amps {
				if d := cmplxAbs(st.Amps[i] - res.State.Amps[i]); d > 1e-9 {
					t.Fatalf("%s env %v amp %d: template %v vs concrete %v (|Δ|=%g)",
						name, env, i, st.Amps[i], res.State.Amps[i], d)
				}
			}
		}
	}
}

func cmplxAbs(z complex128) float64 {
	return math.Hypot(real(z), imag(z))
}

// TestSweepMatchesConcreteRuns: every sweep point's read-outs must be
// bit-identical to an independent Evaluate of the bound circuit under the
// same spec (the sweep reuses the spec seed per point).
func TestSweepMatchesConcreteRuns(t *testing.T) {
	c := circuit.QAOAAnsatz(4, 1)
	spec := ReadoutSpec{
		Shots: 200, Seed: 11,
		Marginals: [][]int{{0, 1}},
		Observables: []Observable{
			{Name: "zz01", Coeff: -1, Paulis: "ZZ", Qubits: []int{0, 1}},
			{Name: "x2", Paulis: "X", Qubits: []int{2}},
		},
	}
	bindings := qaoaEnvs(c, 5)
	rep, err := Sweep(c, Options{}, spec, bindings)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compiles != 1 {
		t.Fatalf("compiles = %d, want 1", rep.Compiles)
	}
	if len(rep.Points) != len(bindings) {
		t.Fatalf("points = %d, want %d", len(rep.Points), len(bindings))
	}
	for i, p := range rep.Points {
		bound, err := c.Bind(bindings[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := Evaluate(bound, Options{Backend: "flat"}, spec)
		if err != nil {
			t.Fatal(err)
		}
		for k, ov := range p.Readouts.Observables {
			if math.Abs(ov.Value-want.Observables[k].Value) > 1e-9 {
				t.Fatalf("point %d obs %s: %v vs %v", i, ov.Name, ov.Value, want.Observables[k].Value)
			}
		}
		for k := range p.Readouts.Samples {
			if p.Readouts.Samples[k] != want.Samples[k] {
				t.Fatalf("point %d sample %d differs: %d vs %d", i, k, p.Readouts.Samples[k], want.Samples[k])
			}
		}
		for k := range p.Readouts.Marginals[0] {
			if math.Abs(p.Readouts.Marginals[0][k]-want.Marginals[0][k]) > 1e-9 {
				t.Fatalf("point %d marginal %d differs", i, k)
			}
		}
	}
}

// TestSweepNoisyMatchesConcrete: trajectory-noise sweeps re-bind one
// compiled plan; each point must match an independent noisy evaluation of
// the bound circuit (same seed → identical trajectories).
func TestSweepNoisyMatchesConcrete(t *testing.T) {
	c := circuit.QAOAAnsatz(3, 1)
	m := (&noise.Model{}).AddRule(noise.Rule{Channel: noise.Depolarizing(0.05)})
	spec := ReadoutSpec{
		Shots: 100, Seed: 5, Trajectories: 64,
		Observables: []Observable{{Paulis: "ZZ", Qubits: []int{0, 1}}},
	}
	bindings := qaoaEnvs(c, 3)
	rep, err := Sweep(c, Options{Noise: m, Workers: 1}, spec, bindings)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trajectories != 64 {
		t.Fatalf("trajectories = %d", rep.Trajectories)
	}
	for i, p := range rep.Points {
		bound, err := c.Bind(bindings[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := Evaluate(bound, Options{Noise: m, Workers: 1}, spec)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Readouts.Observables[0].Value-want.Observables[0].Value) > 1e-9 {
			t.Fatalf("point %d noisy ⟨ZZ⟩: %v vs %v", i, p.Readouts.Observables[0].Value, want.Observables[0].Value)
		}
		for b, n := range want.Counts {
			if p.Readouts.Counts[b] != n {
				t.Fatalf("point %d counts differ at basis %d", i, b)
			}
		}
	}
}

// TestSweepValidation: binding mistakes fail naming the symbol, and
// template jobs reject non-flat backends.
func TestSweepValidation(t *testing.T) {
	c := circuit.QAOAAnsatz(3, 1)
	spec := ReadoutSpec{Observables: []Observable{{Paulis: "Z", Qubits: []int{0}}}}
	good := qaoaEnvs(c, 1)[0]

	if _, err := Sweep(c, Options{}, spec, nil); err == nil {
		t.Fatal("empty binding list accepted")
	}
	missing := map[string]float64{"gamma0": 0.1}
	if _, err := Sweep(c, Options{}, spec, []map[string]float64{missing}); err == nil || !contains(err.Error(), "beta0") {
		t.Fatalf("unbound symbol not named: %v", err)
	}
	unknown := map[string]float64{"gamma0": 1, "beta0": 1, "delta": 2}
	if _, err := Sweep(c, Options{}, spec, []map[string]float64{unknown}); err == nil || !contains(err.Error(), "delta") {
		t.Fatalf("unknown symbol not named: %v", err)
	}
	nan := map[string]float64{"gamma0": math.NaN(), "beta0": 1}
	if _, err := Sweep(c, Options{}, spec, []map[string]float64{nan}); err == nil || !contains(err.Error(), "gamma0") {
		t.Fatalf("non-finite value not named: %v", err)
	}
	if _, err := Sweep(c, Options{Backend: "hier"}, spec, []map[string]float64{good}); err == nil {
		t.Fatal("non-flat backend accepted for a sweep")
	}
}

// TestOptimizeFindsIsingGroundDirection: a 1-layer QAOA loop on a tiny
// ZZ objective must strictly improve on the zero start, with exactly one
// compile and a populated trace.
func TestOptimizeFindsIsingGroundDirection(t *testing.T) {
	c := circuit.QAOAAnsatz(4, 1)
	spec := OptimizeSpec{
		Observables: []Observable{
			{Coeff: 1, Paulis: "ZZ", Qubits: []int{0, 1}},
			{Coeff: 1, Paulis: "ZZ", Qubits: []int{1, 2}},
			{Coeff: 1, Paulis: "ZZ", Qubits: []int{2, 3}},
		},
		Method: MethodSPSA, MaxIters: 40, Seed: 3, A: 0.4, C: 0.15,
	}
	rep, err := Optimize(c, Options{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compiles != 1 {
		t.Fatalf("compiles = %d, want 1", rep.Compiles)
	}
	if len(rep.Trace) == 0 || rep.Evaluations < 3*len(rep.Trace) {
		t.Fatalf("trace %d entries, %d evaluations", len(rep.Trace), rep.Evaluations)
	}
	// |++++⟩ has ⟨ZZ⟩ = 0 on every bond; any useful step goes below it.
	if rep.BestValue >= 0 {
		t.Fatalf("best value %v, want < 0 (start is 0)", rep.BestValue)
	}
	if err := c.CheckBinding(rep.Best); err != nil {
		t.Fatalf("best binding incomplete: %v", err)
	}

	nm := spec
	nm.Method = MethodNelderMead
	nmRep, err := Optimize(c, Options{}, nm)
	if err != nil {
		t.Fatal(err)
	}
	if nmRep.BestValue >= 0 {
		t.Fatalf("nelder-mead best %v, want < 0", nmRep.BestValue)
	}
}

// TestOptimizeValidation covers the submit-time failure modes.
func TestOptimizeValidation(t *testing.T) {
	c := circuit.QAOAAnsatz(3, 1)
	obs := []Observable{{Paulis: "Z", Qubits: []int{0}}}
	if _, err := Optimize(c, Options{}, OptimizeSpec{Observables: obs, Method: "newton"}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := Optimize(c, Options{}, OptimizeSpec{}); err == nil {
		t.Fatal("empty objective accepted")
	}
	if _, err := Optimize(c, Options{}, OptimizeSpec{Observables: obs, Init: map[string]float64{"nope": 1}}); err == nil || !contains(err.Error(), "nope") {
		t.Fatalf("unknown init symbol not named: %v", err)
	}
	concrete := circuit.MustNamed("ising", 3)
	if _, err := Optimize(concrete, Options{}, OptimizeSpec{Observables: obs}); err == nil {
		t.Fatal("symbol-free circuit accepted")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
