package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"hisvsim/internal/circuit"
	"hisvsim/internal/fuse"
	"hisvsim/internal/noise"
)

// This file is the v3 optimize surface: a server-side variational loop
// that minimizes the summed weighted Pauli observables (the energy
// ⟨H⟩ = Σ c_k⟨P_k⟩) over a parameterized circuit's symbols. The template
// compiles once; every objective evaluation is a cheap specialization, so
// the whole loop costs 1 compile + E evaluations — the request pattern a
// VQE/QAOA client would otherwise drive with E round trips of concrete
// circuits.

// Optimizer method names accepted by OptimizeSpec.Method.
const (
	MethodSPSA       = "spsa"
	MethodNelderMead = "nelder-mead"
)

// OptimizeSpec configures a server-side optimization job.
type OptimizeSpec struct {
	// Observables defines the objective: minimize Σ Coeff·⟨∏ σ⟩.
	Observables []Observable
	// Method selects the optimizer: "spsa" (default, gradient-free
	// stochastic approximation; 3 evaluations per iteration) or
	// "nelder-mead" (deterministic simplex).
	Method string
	// Init seeds the starting point; symbols absent from it start at 0.
	// Keys that are not circuit symbols are rejected.
	Init map[string]float64
	// MaxIters bounds the iteration count (default 50).
	MaxIters int
	// Seed drives the SPSA perturbation RNG (and the trajectory RNGs of
	// noisy objective evaluations, via the usual readout seed).
	Seed int64
	// A and C are the SPSA gain scales: step a_k = A/(k+1+0.1·MaxIters)^0.602,
	// perturbation c_k = C/(k+1)^0.101. Defaults 0.15 and 0.1. Nelder-Mead
	// uses C as its initial simplex step (default 0.25).
	A, C float64
	// Tol, when > 0, stops the loop early once the per-iteration objective
	// improvement stays below it (SPSA: 3 consecutive iterations;
	// Nelder-Mead: simplex value spread below Tol).
	Tol float64
	// Trajectories is the per-evaluation ensemble size for noisy
	// objectives (0 = default).
	Trajectories int
}

func (s OptimizeSpec) withDefaults() OptimizeSpec {
	if s.Method == "" {
		s.Method = MethodSPSA
	}
	if s.MaxIters <= 0 {
		s.MaxIters = 50
	}
	if s.A <= 0 {
		s.A = 0.15
	}
	if s.C <= 0 {
		if s.Method == MethodNelderMead {
			s.C = 0.25
		} else {
			s.C = 0.1
		}
	}
	return s
}

// OptimizeIteration is one entry of the per-iteration trace.
type OptimizeIteration struct {
	// Iter is the iteration index (0-based).
	Iter int
	// Params is the iterate after this iteration's update.
	Params map[string]float64
	// Value is the objective at Params.
	Value float64
}

// OptimizeReport is the result of an optimization job.
type OptimizeReport struct {
	// Best is the best evaluated binding and BestValue its objective —
	// tracked across every evaluation, not just trace points.
	Best      map[string]float64
	BestValue float64
	// Trace records one entry per iteration, in order.
	Trace []OptimizeIteration
	// Evaluations counts objective evaluations (each one template
	// specialization + run); Compiles is always 1.
	Evaluations int
	Compiles    int
	// Method echoes the resolved optimizer name.
	Method string
	// Converged reports whether Tol stopped the loop before MaxIters.
	Converged bool
	// Trajectories is the per-evaluation ensemble size (0 for ideal).
	Trajectories int
	// Elapsed is the wall time of the whole loop, compile included.
	Elapsed time.Duration
}

// Optimize runs the variational loop. See OptimizeContext.
func Optimize(c *circuit.Circuit, opts Options, spec OptimizeSpec) (*OptimizeReport, error) {
	return OptimizeContext(context.Background(), c, opts, spec)
}

// objectiveFn evaluates Σ c_k⟨P_k⟩ for one binding. Implementations hold
// the template compiled once up front.
type objectiveFn func(env map[string]float64) (float64, error)

// OptimizeContext minimizes the spec's observable sum over the circuit's
// symbols with a server-side SPSA or Nelder-Mead loop. The template — ideal
// fused plan or trajectory-noise plan — compiles exactly once; every
// objective evaluation re-binds it. Noisy objectives are trajectory means
// (same seed every evaluation: common random numbers, so the optimizer sees
// a consistent noisy landscape rather than fresh sampling jitter per step).
func OptimizeContext(ctx context.Context, c *circuit.Circuit, opts Options, spec OptimizeSpec) (*OptimizeReport, error) {
	start := time.Now()
	spec = spec.withDefaults()
	if spec.Method != MethodSPSA && spec.Method != MethodNelderMead {
		return nil, fmt.Errorf("core: unknown optimizer %q (have %q, %q)", spec.Method, MethodSPSA, MethodNelderMead)
	}
	if len(spec.Observables) == 0 {
		return nil, fmt.Errorf("core: optimize needs at least one observable (the objective is their weighted sum)")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := validateSweep(c, opts, nil); err != nil {
		return nil, err
	}
	syms := c.Symbols()
	if len(syms) == 0 {
		return nil, fmt.Errorf("core: circuit %s has no symbols to optimize", c.Name)
	}
	for k := range spec.Init {
		found := false
		for _, s := range syms {
			if s == k {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: init binds unknown symbol %q", k)
		}
	}
	roSpec := ReadoutSpec{Observables: spec.Observables, Seed: spec.Seed, Trajectories: spec.Trajectories}
	if err := roSpec.Validate(c.NumQubits); err != nil {
		return nil, err
	}

	rep := &OptimizeReport{Compiles: 1, Method: spec.Method}
	objective, err := buildObjective(ctx, c, opts, roSpec, rep)
	if err != nil {
		return nil, err
	}

	x := make([]float64, len(syms))
	for i, s := range syms {
		x[i] = spec.Init[s]
	}
	envOf := func(x []float64) map[string]float64 {
		env := make(map[string]float64, len(syms))
		for i, s := range syms {
			env[s] = x[i]
		}
		return env
	}
	rep.Best = envOf(x)
	rep.BestValue = math.Inf(1)
	eval := func(x []float64) (float64, error) {
		env := envOf(x)
		v, err := objective(env)
		if err != nil {
			return 0, err
		}
		rep.Evaluations++
		if v < rep.BestValue {
			rep.BestValue, rep.Best = v, env
		}
		return v, nil
	}

	switch spec.Method {
	case MethodSPSA:
		err = runSPSA(ctx, x, eval, envOf, spec, rep)
	case MethodNelderMead:
		err = runNelderMead(ctx, x, eval, envOf, spec, rep)
	}
	if err != nil {
		return nil, err
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// buildObjective compiles the template once and returns the evaluator.
func buildObjective(ctx context.Context, c *circuit.Circuit, opts Options, roSpec ReadoutSpec, rep *OptimizeReport) (objectiveFn, error) {
	sum := func(ro *Readouts) float64 {
		t := 0.0
		for _, ov := range ro.Observables {
			t += ov.Value
		}
		return t
	}
	if !opts.Noise.IsZero() {
		plan, err := noise.Compile(c, opts.Noise, noise.CompileOptions{Fuse: true, MaxFuseQubits: opts.MaxFuseQubits})
		if err != nil {
			return nil, err
		}
		cfg := roSpec.NoisyRunConfig(opts.Workers)
		if !plan.NoiseFree() {
			return func(env map[string]float64) (float64, error) {
				sp, err := plan.Specialize(env)
				if err != nil {
					return 0, err
				}
				ens, err := noise.RunEnsemble(ctx, sp, cfg)
				if err != nil {
					return 0, err
				}
				rep.Trajectories = ens.Trajectories
				return sum(ReadoutsFromEnsemble(ens, roSpec)), nil
			}, nil
		}
		// Zero-effect model: fall through to the ideal template (readout
		// error never perturbs observables — they measure the state, not
		// sampled bits).
	}
	tpl, err := fuse.CompileTemplate(c, fuse.Options{MaxQubits: opts.MaxFuseQubits})
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	return func(env map[string]float64) (float64, error) {
		st, err := tpl.Run(env, workers)
		if err != nil {
			return 0, err
		}
		return sum(EvaluateState(st, nil, roSpec)), nil
	}, nil
}

// runSPSA is simultaneous-perturbation stochastic approximation: each
// iteration probes f at x ± c_k·Δ for one Rademacher Δ, estimates the
// gradient from the two probes, steps, and evaluates the new iterate for
// the trace (3 evaluations per iteration).
func runSPSA(ctx context.Context, x []float64, eval func([]float64) (float64, error), envOf func([]float64) map[string]float64, spec OptimizeSpec, rep *OptimizeReport) error {
	rng := rand.New(rand.NewSource(spec.Seed))
	d := len(x)
	stall := 0
	prev := math.Inf(1)
	bigA := 0.1 * float64(spec.MaxIters)
	for k := 0; k < spec.MaxIters; k++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		ak := spec.A / math.Pow(float64(k+1)+bigA, 0.602)
		ck := spec.C / math.Pow(float64(k+1), 0.101)
		delta := make([]float64, d)
		for i := range delta {
			if rng.Intn(2) == 0 {
				delta[i] = 1
			} else {
				delta[i] = -1
			}
		}
		xp := make([]float64, d)
		xm := make([]float64, d)
		for i := range x {
			xp[i] = x[i] + ck*delta[i]
			xm[i] = x[i] - ck*delta[i]
		}
		fp, err := eval(xp)
		if err != nil {
			return err
		}
		fm, err := eval(xm)
		if err != nil {
			return err
		}
		for i := range x {
			x[i] -= ak * (fp - fm) / (2 * ck * delta[i])
		}
		fx, err := eval(x)
		if err != nil {
			return err
		}
		rep.Trace = append(rep.Trace, OptimizeIteration{Iter: k, Params: envOf(x), Value: fx})
		if spec.Tol > 0 {
			if math.Abs(prev-fx) < spec.Tol {
				stall++
				if stall >= 3 {
					rep.Converged = true
					return nil
				}
			} else {
				stall = 0
			}
			prev = fx
		}
	}
	return nil
}

// runNelderMead is the standard downhill-simplex method (reflection,
// expansion, contraction, shrink with the usual 1/2/0.5/0.5 coefficients);
// the trace records the best vertex per iteration.
func runNelderMead(ctx context.Context, x0 []float64, eval func([]float64) (float64, error), envOf func([]float64) map[string]float64, spec OptimizeSpec, rep *OptimizeReport) error {
	d := len(x0)
	type vertex struct {
		x []float64
		f float64
	}
	verts := make([]vertex, 0, d+1)
	add := func(x []float64) error {
		f, err := eval(x)
		if err != nil {
			return err
		}
		verts = append(verts, vertex{x: x, f: f})
		return nil
	}
	if err := add(append([]float64(nil), x0...)); err != nil {
		return err
	}
	for i := 0; i < d; i++ {
		x := append([]float64(nil), x0...)
		x[i] += spec.C
		if err := add(x); err != nil {
			return err
		}
	}
	for k := 0; k < spec.MaxIters; k++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		sort.Slice(verts, func(i, j int) bool { return verts[i].f < verts[j].f })
		best, worst := verts[0], verts[d]
		if spec.Tol > 0 && worst.f-best.f < spec.Tol {
			rep.Converged = true
			rep.Trace = append(rep.Trace, OptimizeIteration{Iter: k, Params: envOf(best.x), Value: best.f})
			return nil
		}
		// Centroid of all but the worst vertex.
		cen := make([]float64, d)
		for _, v := range verts[:d] {
			for i := range cen {
				cen[i] += v.x[i] / float64(d)
			}
		}
		at := func(coef float64) []float64 {
			x := make([]float64, d)
			for i := range x {
				x[i] = cen[i] + coef*(worst.x[i]-cen[i])
			}
			return x
		}
		xr := at(-1) // reflection
		fr, err := eval(xr)
		if err != nil {
			return err
		}
		switch {
		case fr < best.f:
			xe := at(-2) // expansion
			fe, err := eval(xe)
			if err != nil {
				return err
			}
			if fe < fr {
				verts[d] = vertex{x: xe, f: fe}
			} else {
				verts[d] = vertex{x: xr, f: fr}
			}
		case fr < verts[d-1].f:
			verts[d] = vertex{x: xr, f: fr}
		default:
			xc := at(0.5) // contraction toward the worst vertex
			fc, err := eval(xc)
			if err != nil {
				return err
			}
			if fc < worst.f {
				verts[d] = vertex{x: xc, f: fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= d; i++ {
					x := make([]float64, d)
					for j := range x {
						x[j] = best.x[j] + 0.5*(verts[i].x[j]-best.x[j])
					}
					f, err := eval(x)
					if err != nil {
						return err
					}
					verts[i] = vertex{x: x, f: f}
				}
			}
		}
		sort.Slice(verts, func(i, j int) bool { return verts[i].f < verts[j].f })
		rep.Trace = append(rep.Trace, OptimizeIteration{Iter: k, Params: envOf(verts[0].x), Value: verts[0].f})
	}
	return nil
}
