// Package core is the top of the HiSVSIM stack: it wires the partitioners,
// the hierarchical executor, and the distributed runtime into one engine
// with a single options surface, and computes the modeled end-to-end
// metrics the evaluation reports.
package core

import (
	"context"
	"fmt"
	"time"

	"hisvsim/internal/baseline"
	"hisvsim/internal/circuit"
	"hisvsim/internal/dag"
	"hisvsim/internal/dist"
	"hisvsim/internal/hier"
	"hisvsim/internal/mpi"
	"hisvsim/internal/noise"
	"hisvsim/internal/partition"
	"hisvsim/internal/partition/dagp"
	"hisvsim/internal/partition/exact"
	"hisvsim/internal/perfmodel"
	"hisvsim/internal/sv"
)

// StrategyNames lists the accepted partitioning strategy names.
func StrategyNames() []string { return []string{"nat", "dfs", "dagp", "exact"} }

// NewStrategy builds a partitioner by name.
func NewStrategy(name string, seed int64) (partition.Strategy, error) {
	switch name {
	case "nat":
		return partition.Nat{}, nil
	case "dfs":
		return partition.DFS{Trials: 10, Seed: seed}, nil
	case "dagp":
		return dagp.Partitioner{Opts: dagp.Options{Seed: seed}}, nil
	case "exact":
		return exact.Solver{}, nil
	default:
		return nil, fmt.Errorf("core: unknown strategy %q (want one of %v)", name, StrategyNames())
	}
}

// FusePolicy selects whether executors fuse runs of adjacent gates into
// dense/diagonal blocks. The zero value enables fusion.
type FusePolicy int

const (
	// FuseAuto (the zero value) enables fusion with the default caps.
	FuseAuto FusePolicy = iota
	// FuseOn forces fusion on.
	FuseOn
	// FuseOff disables fusion (per-gate execution, the pre-fusion behavior).
	FuseOff
)

// Enabled reports whether the policy turns fusion on.
func (p FusePolicy) Enabled() bool { return p != FuseOff }

// Options configures one simulation.
type Options struct {
	// Strategy is the partitioner name ("nat", "dfs", "dagp", "exact").
	Strategy string
	// Lm is the first-level working-set limit; 0 selects the local qubit
	// count (distributed) or the full register (single node).
	Lm int
	// Ranks > 1 runs the distributed executor with that many simulated MPI
	// ranks (must be a power of two). 0 or 1 runs single-node.
	Ranks int
	// SecondLevelLm enables multi-level execution when > 0.
	SecondLevelLm int
	// Workers bounds kernel parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed drives the randomized partitioners.
	Seed int64
	// Model is the distributed communication model (default HDR-100).
	Model mpi.CostModel
	// SkipState skips gathering the distributed state (metrics only).
	SkipState bool
	// Fuse selects gate fusion (on unless FuseOff): runs of adjacent gates
	// whose combined support stays within MaxFuseQubits execute as single
	// fused kernels between communication/relayout points.
	Fuse FusePolicy
	// MaxFuseQubits caps fused-block support (0 = defaults: 5 for dense
	// blocks, 10 for diagonal runs; an explicit value caps both).
	MaxFuseQubits int
	// Noise attaches a noise model for SimulateNoisy (nil = ideal). Plain
	// Simulate rejects an effective (non-zero) noise model rather than
	// silently returning ideal amplitudes.
	Noise *noise.Model
}

// Result of a simulation.
type Result struct {
	Plan    *partition.Plan
	State   *sv.State     // final state (nil when SkipState && Ranks > 1)
	Hier    *hier.Metrics // single-node metrics (nil when distributed)
	Dist    *dist.Result  // distributed metrics (nil when single-node)
	Elapsed time.Duration // wall time of the execution phase
}

// Simulate partitions and executes the circuit per the options.
func Simulate(c *circuit.Circuit, opts Options) (*Result, error) {
	return SimulateContext(context.Background(), c, opts)
}

// SimulateContext is Simulate under a context: cancellation or deadline
// expiry aborts the run at the next part (single-node) or step (distributed)
// boundary with the context's error. Options.Seed makes the randomized
// partitioners — and therefore the produced plan and state — deterministic
// for a fixed (circuit, options) pair.
func SimulateContext(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !opts.Noise.IsZero() {
		return nil, fmt.Errorf("core: options carry a noise model; use SimulateNoisy for noisy runs")
	}
	name := opts.Strategy
	if name == "" {
		name = "dagp"
	}
	strat, err := NewStrategy(name, opts.Seed)
	if err != nil {
		return nil, err
	}
	lm := opts.Lm
	ranks := opts.Ranks
	if ranks <= 1 {
		ranks = 1
	}
	localQubits := c.NumQubits - log2(ranks)
	if lm <= 0 || (ranks > 1 && lm > localQubits) {
		// Lm is a performance knob, not a semantics knob: the distributed
		// executor can never place a working set wider than one rank's slab,
		// so an over-wide request degrades to the local qubit count.
		lm = localQubits
	}
	pl, err := strat.Partition(dag.FromCircuit(c), lm)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: pl}
	start := time.Now()
	if ranks == 1 {
		st := sv.NewState(c.NumQubits)
		st.Workers = opts.Workers
		m, err := hier.ExecutePlan(pl, st, hier.Options{
			Ctx:           ctx,
			SecondLevelLm: opts.SecondLevelLm, Workers: opts.Workers,
			Fuse: opts.Fuse.Enabled(), MaxFuseQubits: opts.MaxFuseQubits,
		})
		if err != nil {
			return nil, err
		}
		res.State = st
		res.Hier = m
	} else {
		dr, err := dist.Run(pl, dist.Config{
			Ctx:   ctx,
			Ranks: ranks, Model: opts.Model, SecondLevelLm: opts.SecondLevelLm,
			Workers: opts.Workers, GatherResult: !opts.SkipState,
			NoFuse: !opts.Fuse.Enabled(), MaxFuseQubits: opts.MaxFuseQubits,
		})
		if err != nil {
			return nil, err
		}
		res.Dist = dr
		res.State = dr.State
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func log2(x int) int {
	n := 0
	for 1<<uint(n) < x {
		n++
	}
	return n
}

// Estimate is the deterministic end-to-end time model for one distributed
// run (the Fig. 5/6 metric): measured α–β communication plus bandwidth-model
// computation.
type Estimate struct {
	Strategy       string
	Circuit        string
	Ranks          int
	Parts          int
	CommAvg        float64 // mean modeled comm seconds across ranks (Fig. 7)
	CommMax        float64
	ComputeSeconds float64
	BytesComm      int64
}

// Total returns the modeled end-to-end seconds (slowest rank).
func (e Estimate) Total() float64 { return e.CommMax + e.ComputeSeconds }

// CommRatio returns communication share of the total (Fig. 8 metric).
func (e Estimate) CommRatio() float64 {
	t := e.Total()
	if t <= 0 {
		return 0
	}
	return e.CommAvg / t
}

// EstimateHiSVSIM runs the distributed executor (metrics only) and composes
// the end-to-end estimate under the given CPU model.
func EstimateHiSVSIM(c *circuit.Circuit, strategyName string, ranks int, seed int64,
	net mpi.CostModel, cpu perfmodel.CPUModel, secondLevelLm int) (Estimate, *partition.Plan, error) {

	strat, err := NewStrategy(strategyName, seed)
	if err != nil {
		return Estimate{}, nil, err
	}
	l := c.NumQubits - log2(ranks)
	pl, err := strat.Partition(dag.FromCircuit(c), l)
	if err != nil {
		return Estimate{}, nil, err
	}
	dr, err := dist.Run(pl, dist.Config{Ranks: ranks, Model: net, SecondLevelLm: secondLevelLm})
	if err != nil {
		return Estimate{}, nil, err
	}
	parts := make([][2]int, pl.NumParts())
	for i, p := range pl.Parts {
		parts[i] = [2]int{p.WorkingSetSize(), len(p.GateIndices)}
	}
	compute := cpu.HierTime(l, parts)
	if secondLevelLm > 0 {
		// Second level shrinks the effective inner working set to the cache
		// limit; model by capping w at the second-level limit.
		capped := make([][2]int, len(parts))
		for i, p := range parts {
			w := p[0]
			if w > secondLevelLm {
				w = secondLevelLm
			}
			capped[i] = [2]int{w, p[1]}
		}
		compute = cpu.HierTime(l, capped)
	}
	est := Estimate{
		Strategy: strategyName, Circuit: c.Name, Ranks: ranks, Parts: pl.NumParts(),
		CommAvg: avgComm(dr.Stats), CommMax: mpi.MaxCommSeconds(dr.Stats),
		ComputeSeconds: compute, BytesComm: dr.BytesComm,
	}
	return est, pl, nil
}

// EstimateIQS runs the baseline (metrics only) and composes its end-to-end
// estimate: every gate streams the DRAM-resident slab.
func EstimateIQS(c *circuit.Circuit, ranks int, net mpi.CostModel, cpu perfmodel.CPUModel) (Estimate, error) {
	br, err := baseline.Run(c, baseline.Config{Ranks: ranks, Model: net})
	if err != nil {
		return Estimate{}, err
	}
	l := c.NumQubits - log2(ranks)
	est := Estimate{
		Strategy: "iqs", Circuit: c.Name, Ranks: ranks,
		CommAvg: avgComm(br.Stats), CommMax: mpi.MaxCommSeconds(br.Stats),
		ComputeSeconds: cpu.FlatTime(l, br.Gates), BytesComm: br.BytesComm,
	}
	return est, nil
}

func avgComm(stats []mpi.Stats) float64 { return mpi.AvgCommSeconds(stats) }
