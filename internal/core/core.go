// Package core is the top of the HiSVSIM stack: it wires the partitioners,
// the hierarchical executor, and the distributed runtime into one engine
// with a single options surface, and computes the modeled end-to-end
// metrics the evaluation reports.
package core

import (
	"context"
	"fmt"
	"time"

	"hisvsim/internal/backend"
	"hisvsim/internal/baseline"
	"hisvsim/internal/circuit"
	"hisvsim/internal/dag"
	"hisvsim/internal/dist"
	"hisvsim/internal/dm"
	"hisvsim/internal/hier"
	"hisvsim/internal/mpi"
	"hisvsim/internal/noise"
	"hisvsim/internal/obs"
	"hisvsim/internal/partition"
	"hisvsim/internal/perfmodel"
	"hisvsim/internal/sv"
)

// StrategyNames lists the accepted partitioning strategy names.
func StrategyNames() []string { return backend.StrategyNames() }

// NewStrategy builds a partitioner by name ("" selects dagp).
func NewStrategy(name string, seed int64) (partition.Strategy, error) {
	return backend.NewStrategy(name, seed)
}

// BackendNames lists the registered execution backends ("flat", "hier",
// "dist", "baseline", plus anything Register-ed on top).
func BackendNames() []string { return backend.Names() }

// Backends lists every registered backend with its capabilities.
func Backends() []backend.Info { return backend.List() }

// FusePolicy selects whether executors fuse runs of adjacent gates into
// dense/diagonal blocks. The zero value enables fusion.
type FusePolicy int

const (
	// FuseAuto (the zero value) enables fusion with the default caps.
	FuseAuto FusePolicy = iota
	// FuseOn forces fusion on.
	FuseOn
	// FuseOff disables fusion (per-gate execution, the pre-fusion behavior).
	FuseOff
)

// Enabled reports whether the policy turns fusion on.
func (p FusePolicy) Enabled() bool { return p != FuseOff }

// Options configures one simulation.
type Options struct {
	// Backend names the execution engine ("flat", "hier", "dist",
	// "baseline"; see BackendNames). Empty selects by rank count exactly as
	// before the registry existed: "hier" on a single node, "dist" when
	// Ranks > 1.
	Backend string
	// Strategy is the partitioner name ("nat", "dfs", "dagp", "exact").
	Strategy string
	// Lm is the first-level working-set limit; 0 selects the local qubit
	// count (distributed) or the full register (single node).
	Lm int
	// Ranks > 1 runs the distributed executor with that many simulated MPI
	// ranks (must be a power of two). 0 or 1 runs single-node.
	Ranks int
	// SecondLevelLm enables multi-level execution when > 0.
	SecondLevelLm int
	// Workers bounds kernel parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed drives the randomized partitioners.
	Seed int64
	// Model is the distributed communication model (default HDR-100).
	Model mpi.CostModel
	// SkipState skips gathering the distributed state (metrics only).
	SkipState bool
	// Fuse selects gate fusion (on unless FuseOff): runs of adjacent gates
	// whose combined support stays within MaxFuseQubits execute as single
	// fused kernels between communication/relayout points.
	Fuse FusePolicy
	// MaxFuseQubits caps fused-block support (0 = defaults: 5 for dense
	// blocks, 10 for diagonal runs; an explicit value caps both).
	MaxFuseQubits int
	// Noise attaches a noise model for SimulateNoisy (nil = ideal). Plain
	// Simulate rejects an effective (non-zero) noise model rather than
	// silently returning ideal amplitudes.
	Noise *noise.Model
}

// Result of a simulation.
type Result struct {
	// Backend is the resolved name of the engine that executed the run
	// (never empty; defaults are resolved before execution).
	Backend  string
	Plan     *partition.Plan  // nil for unpartitioned backends (flat, baseline)
	State    *sv.State        // final state (nil when SkipState on a distributed backend, or for "dm")
	DM       *dm.Density      // exact density matrix ("dm" backend only)
	Hier     *hier.Metrics    // single-node metrics (hier backend only)
	Dist     *dist.Result     // distributed metrics (dist backend only)
	Baseline *baseline.Result // IQS-baseline metrics (baseline backend only)
	Elapsed  time.Duration    // wall time of the execution phase
}

// Simulate partitions and executes the circuit per the options.
func Simulate(c *circuit.Circuit, opts Options) (*Result, error) {
	return SimulateContext(context.Background(), c, opts)
}

// SimulateContext is Simulate under a context: cancellation or deadline
// expiry aborts the run at the next part (single-node) or step (distributed)
// boundary with the context's error. Options.Seed makes the randomized
// partitioners — and therefore the produced plan and state — deterministic
// for a fixed (circuit, options) pair.
//
// The execution engine is a registry lookup: Options.Backend names it, an
// empty name resolves by rank count ("hier" single-node, "dist" beyond) —
// the exact fork this function hard-coded before the backend registry.
func SimulateContext(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.Parametric() {
		return nil, fmt.Errorf("core: circuit %s has unbound symbols %v; bind a parameter environment (or submit a sweep/optimize job)", c.Name, c.Symbols())
	}
	if !opts.Noise.IsZero() {
		return nil, fmt.Errorf("core: options carry a noise model; use SimulateNoisy for noisy runs")
	}
	b, name, err := backend.Resolve(opts.Backend, opts.Ranks)
	if err != nil {
		return nil, err
	}
	// Mark the simulate stage on a context-carried trace (a no-op without
	// one): service jobs that miss the cache split their execute span here.
	obs.TraceFromContext(ctx).Begin("simulate")
	exec, err := b.Run(ctx, c, specFor(opts))
	if err != nil {
		return nil, err
	}
	return &Result{
		Backend: name,
		Plan:    exec.Plan, State: exec.State, DM: exec.DM,
		Hier: exec.Hier, Dist: exec.Dist, Baseline: exec.Baseline,
		Elapsed: exec.Elapsed,
	}, nil
}

// specFor lowers the public options into the backend execution spec.
func specFor(opts Options) backend.Spec {
	return backend.Spec{
		Strategy: opts.Strategy, Lm: opts.Lm, Ranks: opts.Ranks,
		SecondLevelLm: opts.SecondLevelLm, Workers: opts.Workers,
		Seed: opts.Seed, Model: opts.Model, SkipState: opts.SkipState,
		Fuse: opts.Fuse.Enabled(), MaxFuseQubits: opts.MaxFuseQubits,
	}
}

// ResolveBackend validates a backend name against the registry — including
// its rank capabilities — returning the resolved (defaulted) name. See
// ResolveBackendFor for the full request-shaped validation.
func ResolveBackend(name string, ranks int) (string, error) {
	resolved, _, err := ResolveBackendFor(name, ranks, 0, false)
	return resolved, err
}

// ResolveBackendFor validates a backend name against the registry and the
// full request shape — rank count, register width and whether the request
// carries an effective noise model — returning the resolved (defaulted)
// name and the engine's capabilities. The service layer uses it to reject
// unknown or capability-mismatched backends at submit time (a 400, not a
// worker-time failure) and to key its cache/stats on the engine that will
// actually execute. numQubits 0 skips the width check.
func ResolveBackendFor(name string, ranks, numQubits int, noisy bool) (string, backend.Capabilities, error) {
	b, resolved, err := backend.Resolve(name, ranks)
	if err != nil {
		return "", backend.Capabilities{}, err
	}
	caps := b.Capabilities()
	if ranks > 1 && !caps.MultiRank {
		return "", caps, fmt.Errorf("core: backend %q runs single-node only (got %d ranks)", resolved, ranks)
	}
	if ranks <= 1 && !caps.SingleRank {
		return "", caps, fmt.Errorf("core: backend %q requires a multi-rank run (got ranks ≤ 1)", resolved)
	}
	if caps.MaxQubits > 0 && numQubits > caps.MaxQubits {
		return "", caps, fmt.Errorf("core: backend %q holds at most %d qubits (circuit has %d)", resolved, caps.MaxQubits, numQubits)
	}
	if noisy && caps.Noise == backend.NoiseNone && name != "" {
		// Only an EXPLICITLY named engine without a noisy path is a
		// contradiction worth rejecting (the results could never come from
		// the engine the caller asked for). An empty name is a rank-count
		// default that only steers the zero-noise fast path; effective-noise
		// ensembles execute on the flat trajectory engine as they always
		// have, so a multi-rank noisy request with no backend stays valid.
		return "", caps, fmt.Errorf("core: backend %q has no noisy path (engines with noise support: %v)", resolved, NoisyBackendNames())
	}
	return resolved, caps, nil
}

// NoisyBackendNames lists the registered backends that accept requests
// carrying an effective noise model.
func NoisyBackendNames() []string {
	var out []string
	for _, info := range backend.List() {
		if info.Capabilities.Noise != backend.NoiseNone {
			out = append(out, info.Name)
		}
	}
	return out
}

func log2(x int) int {
	n := 0
	for 1<<uint(n) < x {
		n++
	}
	return n
}

// Estimate is the deterministic end-to-end time model for one distributed
// run (the Fig. 5/6 metric): measured α–β communication plus bandwidth-model
// computation.
type Estimate struct {
	Strategy       string
	Circuit        string
	Ranks          int
	Parts          int
	CommAvg        float64 // mean modeled comm seconds across ranks (Fig. 7)
	CommMax        float64
	ComputeSeconds float64
	BytesComm      int64
}

// Total returns the modeled end-to-end seconds (slowest rank).
func (e Estimate) Total() float64 { return e.CommMax + e.ComputeSeconds }

// CommRatio returns communication share of the total (Fig. 8 metric).
func (e Estimate) CommRatio() float64 {
	t := e.Total()
	if t <= 0 {
		return 0
	}
	return e.CommAvg / t
}

// EstimateHiSVSIM runs the distributed executor (metrics only) and composes
// the end-to-end estimate under the given CPU model.
func EstimateHiSVSIM(c *circuit.Circuit, strategyName string, ranks int, seed int64,
	net mpi.CostModel, cpu perfmodel.CPUModel, secondLevelLm int) (Estimate, *partition.Plan, error) {

	strat, err := NewStrategy(strategyName, seed)
	if err != nil {
		return Estimate{}, nil, err
	}
	l := c.NumQubits - log2(ranks)
	pl, err := strat.Partition(dag.FromCircuit(c), l)
	if err != nil {
		return Estimate{}, nil, err
	}
	dr, err := dist.Run(pl, dist.Config{Ranks: ranks, Model: net, SecondLevelLm: secondLevelLm})
	if err != nil {
		return Estimate{}, nil, err
	}
	parts := make([][2]int, pl.NumParts())
	for i, p := range pl.Parts {
		parts[i] = [2]int{p.WorkingSetSize(), len(p.GateIndices)}
	}
	compute := cpu.HierTime(l, parts)
	if secondLevelLm > 0 {
		// Second level shrinks the effective inner working set to the cache
		// limit; model by capping w at the second-level limit.
		capped := make([][2]int, len(parts))
		for i, p := range parts {
			w := p[0]
			if w > secondLevelLm {
				w = secondLevelLm
			}
			capped[i] = [2]int{w, p[1]}
		}
		compute = cpu.HierTime(l, capped)
	}
	est := Estimate{
		Strategy: strategyName, Circuit: c.Name, Ranks: ranks, Parts: pl.NumParts(),
		CommAvg: avgComm(dr.Stats), CommMax: mpi.MaxCommSeconds(dr.Stats),
		ComputeSeconds: compute, BytesComm: dr.BytesComm,
	}
	return est, pl, nil
}

// EstimateIQS runs the baseline (metrics only) and composes its end-to-end
// estimate: every gate streams the DRAM-resident slab.
func EstimateIQS(c *circuit.Circuit, ranks int, net mpi.CostModel, cpu perfmodel.CPUModel) (Estimate, error) {
	br, err := baseline.Run(c, baseline.Config{Ranks: ranks, Model: net})
	if err != nil {
		return Estimate{}, err
	}
	l := c.NumQubits - log2(ranks)
	est := Estimate{
		Strategy: "iqs", Circuit: c.Name, Ranks: ranks,
		CommAvg: avgComm(br.Stats), CommMax: mpi.MaxCommSeconds(br.Stats),
		ComputeSeconds: cpu.FlatTime(l, br.Gates), BytesComm: br.BytesComm,
	}
	return est, nil
}

func avgComm(stats []mpi.Stats) float64 { return mpi.AvgCommSeconds(stats) }
