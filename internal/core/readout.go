package core

import (
	"context"
	"fmt"
	"math/rand"

	"hisvsim/internal/backend"
	"hisvsim/internal/circuit"
	"hisvsim/internal/dm"
	"hisvsim/internal/noise"
	"hisvsim/internal/sv"
)

// This file is the v2 request surface: one ReadoutSpec describes every
// read-out a caller wants from a single simulation — amplitudes, seeded
// shots, marginal distributions, and general Pauli-string observables
// (Hamiltonian terms) — replacing the one-kind-per-job model. Core,
// the service, the HTTP daemon, the CLI and the façade all speak it; N
// read-outs on one circuit cost one simulation (or one trajectory
// ensemble under a noise model).

// Observable is one weighted Pauli string to evaluate: Coeff·⟨∏ σ⟩ with
// σ ∈ {I, X, Y, Z} per listed qubit. A zero Coeff means 1 (unweighted), so
// a Hamiltonian H = Σ c_k P_k is a list of Observables and its energy the
// sum of the returned values.
type Observable struct {
	// Name is an optional label echoed back with the value.
	Name string
	// Coeff scales the expectation (0 = 1).
	Coeff float64
	// Paulis spells the operator ("XZY"); Qubits lists the qubit each
	// letter acts on (same length). Only all-Z strings may repeat a qubit
	// (Z² = I, the legacy Z-string semantics).
	Paulis string
	Qubits []int
}

// pauli lowers the observable to the sv kernel form.
func (o Observable) pauli() sv.PauliString {
	return sv.PauliString{Coeff: o.Coeff, Ops: o.Paulis, Qubits: o.Qubits}
}

// ObservableValue is one evaluated observable.
type ObservableValue struct {
	// Name echoes Observable.Name.
	Name string
	// Value is Coeff·⟨∏ σ⟩ — exact for ideal runs, the trajectory mean for
	// noisy ones (StdErr then carries the standard error of that mean).
	Value  float64
	StdErr float64
}

// ReadoutSpec is the unified multi-readout request: any mix of the four
// read-outs, all served by one simulation. The zero value asks for
// nothing and is rejected by Validate.
type ReadoutSpec struct {
	// Statevector requests the full amplitude vector (rejected under an
	// effective noise model: a trajectory ensemble has no single state).
	Statevector bool
	// Shots > 0 requests that many seeded basis-state samples.
	Shots int
	// Seed drives the sampling RNG and, for noisy runs, the trajectory
	// RNGs. A fixed (circuit, options, spec) triple reproduces the exact
	// shot sequence.
	Seed int64
	// Marginals requests one probability distribution per qubit list
	// (little-endian over the listed qubits).
	Marginals [][]int
	// Observables requests one weighted Pauli-string expectation each.
	Observables []Observable
	// Trajectories is the ensemble size for noisy runs (0 = default 256);
	// ignored when the noise model is absent or zero-effect. When
	// TrajTotal marks the request as a cluster sub-range, it is the LOCAL
	// range size.
	Trajectories int
	// TrajOffset and TrajTotal place the request's trajectories inside a
	// larger logical ensemble (the cluster coordinator's fan-out surface):
	// the run executes global trajectories [TrajOffset,
	// TrajOffset+Trajectories) of a TrajTotal-trajectory ensemble, with
	// per-trajectory RNGs and the Shots split keyed on GLOBAL indices so
	// sub-ranges merge bit-identically to one full run. TrajOffset must be
	// a multiple of noise.MomentChunk; TrajTotal = 0 means "not a
	// sub-range". Ignored (like Trajectories) when the noise model is
	// absent or zero-effect.
	TrajOffset int
	TrajTotal  int
	// Moments requests the per-chunk partial sums behind the ensemble's
	// mean ± stderr readouts in the result (noise.Ensemble.Moments), which
	// is what a coordinator needs to merge sub-range results
	// deterministically. Only effective-noise ensemble runs produce them;
	// ideal and noise-free fast-path runs return exact values and no
	// moments.
	Moments bool
}

// Empty reports whether the spec requests nothing.
func (s ReadoutSpec) Empty() bool {
	return !s.Statevector && s.Shots <= 0 && len(s.Marginals) == 0 && len(s.Observables) == 0
}

// Validate checks the spec against an n-qubit register.
func (s ReadoutSpec) Validate(n int) error {
	if s.Empty() {
		return fmt.Errorf("core: empty readout spec (ask for a statevector, shots, marginals or observables)")
	}
	if s.Shots < 0 {
		return fmt.Errorf("core: negative shot count %d", s.Shots)
	}
	if s.Trajectories < 0 {
		return fmt.Errorf("core: negative trajectory count %d", s.Trajectories)
	}
	if s.TrajOffset < 0 {
		return fmt.Errorf("core: negative trajectory offset %d", s.TrajOffset)
	}
	if s.TrajTotal < 0 {
		return fmt.Errorf("core: negative trajectory total %d", s.TrajTotal)
	}
	if s.TrajTotal == 0 && s.TrajOffset != 0 {
		return fmt.Errorf("core: trajectory offset %d without a total (set TrajTotal to the full ensemble size)", s.TrajOffset)
	}
	if s.TrajTotal > 0 {
		if s.Trajectories == 0 {
			return fmt.Errorf("core: trajectory sub-range needs an explicit Trajectories count")
		}
		if s.TrajOffset%noise.MomentChunk != 0 {
			return fmt.Errorf("core: trajectory offset %d is not a multiple of the moment chunk %d", s.TrajOffset, noise.MomentChunk)
		}
		if s.TrajOffset+s.Trajectories > s.TrajTotal {
			return fmt.Errorf("core: trajectory range [%d,%d) exceeds ensemble total %d",
				s.TrajOffset, s.TrajOffset+s.Trajectories, s.TrajTotal)
		}
	}
	for mi, qs := range s.Marginals {
		seen := map[int]bool{}
		for _, q := range qs {
			if q < 0 || q >= n {
				return fmt.Errorf("core: marginal %d: qubit %d out of range [0,%d)", mi, q, n)
			}
			if seen[q] {
				return fmt.Errorf("core: marginal %d: duplicate qubit %d", mi, q)
			}
			seen[q] = true
		}
	}
	for oi, ob := range s.Observables {
		if err := ob.pauli().Validate(n); err != nil {
			return fmt.Errorf("core: observable %d: %w", oi, err)
		}
	}
	return nil
}

// Readouts is every read-out the spec produced. Fields for read-outs the
// spec did not request stay zero.
type Readouts struct {
	// Amplitudes is the final state (Statevector; a private copy).
	Amplitudes []complex128
	// Samples are the drawn basis indices and Counts their histogram
	// (Shots > 0). Noisy trajectory ensembles aggregate Counts only
	// (Samples nil); exact density-matrix runs — ideal or noisy — have a
	// definite seeded shot stream and return both.
	Samples []int
	Counts  map[int]int
	// Marginals and Observables are in spec order.
	Marginals   [][]float64
	Observables []ObservableValue
	// Trajectories is the executed ensemble size (0 for ideal runs).
	Trajectories int
}

// EvaluateState derives every requested read-out from an already-simulated
// state. The sampler may be nil (one is built if shots are requested);
// callers holding a prebuilt sampler for the state (the service cache)
// pass it to skip the CDF pass. The state is never mutated.
func EvaluateState(st *sv.State, sampler *sv.Sampler, spec ReadoutSpec) *Readouts {
	out := &Readouts{}
	if spec.Statevector {
		out.Amplitudes = append([]complex128(nil), st.Amps...)
	}
	if spec.Shots > 0 {
		if sampler == nil {
			sampler = sv.NewSampler(st)
		}
		rng := rand.New(rand.NewSource(spec.Seed))
		out.Samples = sampler.Sample(spec.Shots, rng)
		out.Counts = make(map[int]int, len(out.Samples))
		for _, x := range out.Samples {
			out.Counts[x]++
		}
	}
	if len(spec.Marginals) > 0 {
		out.Marginals = make([][]float64, len(spec.Marginals))
		for k, qs := range spec.Marginals {
			out.Marginals[k] = st.Marginal(qs)
		}
	}
	if len(spec.Observables) > 0 {
		out.Observables = make([]ObservableValue, len(spec.Observables))
		for k, ob := range spec.Observables {
			out.Observables[k] = ObservableValue{Name: ob.Name, Value: st.ExpectationPauliString(ob.pauli())}
		}
	}
	return out
}

// NoisyRunConfig lowers the spec to the trajectory-ensemble config (the
// service layer calls it with its own worker-pool width).
func (s ReadoutSpec) NoisyRunConfig(workers int) noise.RunConfig {
	cfg := noise.RunConfig{
		Trajectories: s.Trajectories, Seed: s.Seed, Workers: workers,
		Offset: s.TrajOffset, Total: s.TrajTotal,
		Shots:     s.Shots,
		Marginals: s.Marginals,
	}
	if len(s.Observables) > 0 {
		cfg.Observables = make([]sv.PauliString, len(s.Observables))
		for k, ob := range s.Observables {
			cfg.Observables[k] = ob.pauli()
		}
	}
	return cfg
}

// ReadoutsFromEnsemble maps an ensemble back onto the spec's read-outs.
func ReadoutsFromEnsemble(ens *noise.Ensemble, spec ReadoutSpec) *Readouts {
	out := &Readouts{
		Counts:    ens.Counts,
		Marginals: ens.Marginals,
	}
	if !ens.NoiseFree {
		out.Trajectories = ens.Trajectories
	}
	if len(spec.Observables) > 0 {
		out.Observables = make([]ObservableValue, len(spec.Observables))
		for k, ob := range spec.Observables {
			out.Observables[k] = ObservableValue{
				Name: ob.Name, Value: ens.Observables[k].Mean, StdErr: ens.Observables[k].StdErr,
			}
		}
	}
	return out
}

// RunReport is Evaluate's result: the read-outs plus whichever execution
// artifact produced them.
type RunReport struct {
	Readouts
	// Sim is the ideal simulation behind the read-outs (nil when an
	// effective noise model forced a trajectory ensemble or an exact
	// density-matrix evolution).
	Sim *Result
	// Ensemble is the trajectory ensemble (nil for ideal runs; a fully
	// zero-effect model counts as ideal, but a readout-only model still
	// rides the ensemble path so its bit flips reach the counts).
	Ensemble *noise.Ensemble
	// Density is the exact density matrix behind the read-outs (backend
	// "dm" only; set for both ideal and noisy runs on that engine).
	Density *dm.Density
}

// Evaluate runs one simulation and derives every read-out the spec asks
// for. See EvaluateContext.
func Evaluate(c *circuit.Circuit, opts Options, spec ReadoutSpec) (*RunReport, error) {
	return EvaluateContext(context.Background(), c, opts, spec)
}

// EvaluateContext is the unified entry point of the v2 surface: one
// circuit, one Options (backend, partitioning, fusion, optional noise
// model), one ReadoutSpec — one simulation, many answers.
//
// Ideal (opts.Noise nil or zero-effect): the circuit executes once through
// the selected backend and every read-out derives from that state.
// Noisy: on trajectory-capable backends the circuit+model compile to a
// trajectory plan and counts, marginals and observables aggregate over
// spec.Trajectories seeded trajectories; on the exact backend ("dm") the
// density matrix evolves ONCE deterministically and every read-out is
// exact — spec.Trajectories is meaningless there and ignored, and the
// returned observable values are seed-independent. Statevector is rejected
// under effective noise (neither an ensemble nor ρ has a single amplitude
// vector) and on the dm backend generally.
func EvaluateContext(ctx context.Context, c *circuit.Circuit, opts Options, spec ReadoutSpec) (*RunReport, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(c.NumQubits); err != nil {
		return nil, err
	}
	if c.Parametric() {
		return nil, fmt.Errorf("core: circuit %s has unbound symbols %v; bind a parameter environment (or submit a sweep/optimize job)", c.Name, c.Symbols())
	}
	noisy := !opts.Noise.IsZero()
	_, caps, err := ResolveBackendFor(opts.Backend, opts.Ranks, c.NumQubits, noisy)
	if err != nil {
		return nil, err
	}
	exact := caps.Noise == backend.NoiseExact
	if spec.Statevector && exact {
		return nil, fmt.Errorf("core: statevector readout is not available on the exact density-matrix backend (ρ has no single amplitude vector)")
	}
	if noisy && exact {
		d, plan, err := dm.Run(ctx, c, opts.Noise, dm.Options{
			Fuse: opts.Fuse.Enabled(), MaxFuseQubits: opts.MaxFuseQubits, Workers: opts.Workers,
		})
		if err != nil {
			return nil, err
		}
		return &RunReport{Readouts: *EvaluateDensity(d, plan.Readout(), spec), Density: d}, nil
	}
	if !noisy {
		ideal := opts
		ideal.Noise = nil
		ideal.SkipState = false
		res, err := SimulateContext(ctx, c, ideal)
		if err != nil {
			return nil, err
		}
		if res.DM != nil {
			return &RunReport{Readouts: *EvaluateDensity(res.DM, nil, spec), Sim: res, Density: res.DM}, nil
		}
		return &RunReport{Readouts: *EvaluateState(res.State, nil, spec), Sim: res}, nil
	}
	if spec.Statevector {
		return nil, fmt.Errorf("core: statevector readout is undefined under an effective noise model (a trajectory ensemble has no single state)")
	}
	ens, err := SimulateNoisyContext(ctx, c, opts, spec.NoisyRunConfig(opts.Workers))
	if err != nil {
		return nil, err
	}
	return &RunReport{Readouts: *ReadoutsFromEnsemble(ens, spec), Ensemble: ens}, nil
}

// EvaluateDensity derives every requested read-out from an exact density
// matrix: marginals and observables come straight from ρ (deterministic,
// StdErr 0 — the values a trajectory ensemble converges to), shots from
// the readout-error-adjusted diagonal distribution under spec.Seed. The
// density matrix is never mutated. Statevector must have been rejected by
// the caller; Trajectories stays 0 — there is no ensemble.
func EvaluateDensity(d *dm.Density, ro *noise.Readout, spec ReadoutSpec) *Readouts {
	out := &Readouts{}
	if spec.Shots > 0 {
		out.Samples = d.Sample(spec.Shots, spec.Seed, ro)
		out.Counts = make(map[int]int, len(out.Samples))
		for _, x := range out.Samples {
			out.Counts[x]++
		}
	}
	if len(spec.Marginals) > 0 {
		out.Marginals = make([][]float64, len(spec.Marginals))
		for k, qs := range spec.Marginals {
			out.Marginals[k] = d.Marginal(qs)
		}
	}
	if len(spec.Observables) > 0 {
		out.Observables = make([]ObservableValue, len(spec.Observables))
		for k, ob := range spec.Observables {
			out.Observables[k] = ObservableValue{Name: ob.Name, Value: d.ExpectationPauliString(ob.pauli())}
		}
	}
	return out
}
