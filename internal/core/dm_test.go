package core

import (
	"math"
	"strings"
	"testing"

	"hisvsim/internal/circuit"
	"hisvsim/internal/dm"
	"hisvsim/internal/noise"
)

// TestSimulateDMBackendZeroNoise: the "dm" backend through the ordinary
// Simulate path returns ρ = |ψ⟩⟨ψ| of the flat reference state (the
// zero-noise differential bound), with no amplitude vector.
func TestSimulateDMBackendZeroNoise(t *testing.T) {
	c := circuit.MustNamed("qft", 6)
	res, err := Simulate(c, Options{Backend: "dm"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "dm" || res.DM == nil || res.State != nil {
		t.Fatalf("dm result: backend=%q DM=%v State=%v", res.Backend, res.DM != nil, res.State != nil)
	}
	flat, err := Simulate(c, Options{Backend: "flat"})
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.DM.MaxAbsDiffPure(flat.State); diff > 1e-9 {
		t.Fatalf("max |ρ − ψψ†| = %g", diff)
	}
}

// TestEvaluateDMMatchesIdealReadouts: every zero-noise read-out from ρ
// agrees with the flat state-vector backend's ≤ 1e-9, and the seeded shot
// stream is identical (both sample the same distribution with the same
// generator).
func TestEvaluateDMMatchesIdealReadouts(t *testing.T) {
	c := circuit.MustNamed("qft", 5)
	spec := ReadoutSpec{
		Shots: 200, Seed: 11,
		Marginals: [][]int{{0, 2}},
		Observables: []Observable{
			{Name: "zz", Coeff: -1, Paulis: "ZZ", Qubits: []int{0, 1}},
			{Name: "xy", Paulis: "XY", Qubits: []int{2, 4}},
		},
	}
	want, err := Evaluate(c, Options{Backend: "flat"}, spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Evaluate(c, Options{Backend: "dm"}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Density == nil {
		t.Fatal("dm evaluate returned no density matrix")
	}
	for k := range want.Observables {
		if d := math.Abs(got.Observables[k].Value - want.Observables[k].Value); d > 1e-9 {
			t.Errorf("observable %s: dm %g vs flat %g", spec.Observables[k].Name,
				got.Observables[k].Value, want.Observables[k].Value)
		}
	}
	for i := range want.Marginals[0] {
		if d := math.Abs(got.Marginals[0][i] - want.Marginals[0][i]); d > 1e-9 {
			t.Errorf("marginal[%d]: dm %g vs flat %g", i, got.Marginals[0][i], want.Marginals[0][i])
		}
	}
	// Both engines draw shots through the shared sv.Sampler inverse-CDF, so
	// the same seed over the same distribution yields the identical
	// per-shot sample stream (and therefore counts).
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("dm drew %d samples, flat %d", len(got.Samples), len(want.Samples))
	}
	for i := range want.Samples {
		if got.Samples[i] != want.Samples[i] {
			t.Fatalf("sample %d: dm %d vs flat %d (same seed must draw identically)", i, got.Samples[i], want.Samples[i])
		}
	}
	for basis, n := range want.Counts {
		if got.Counts[basis] != n {
			t.Fatalf("counts[%d]: dm %d vs flat %d", basis, got.Counts[basis], n)
		}
	}
}

// TestEvaluateDMNoisySeedIndependentObservables: under an effective model
// the dm backend's observables and marginals do not depend on seed or
// trajectory count — there is no ensemble — and match the trajectory
// engine within 3× its standard error.
func TestEvaluateDMNoisySeedIndependentObservables(t *testing.T) {
	c := circuit.MustNamed("ising", 5)
	model := noise.OnGates(noise.CorrelatedDepolarizing2(0.03), "rzz").
		AddRule(noise.Rule{Channel: noise.PhaseDamping(0.02)})
	spec := ReadoutSpec{
		Shots: 100, Seed: 1, Trajectories: 7,
		Observables: []Observable{{Name: "z0", Paulis: "Z", Qubits: []int{0}}},
	}
	a, err := Evaluate(c, Options{Backend: "dm", Noise: model}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ensemble != nil || a.Density == nil {
		t.Fatalf("dm noisy evaluate: ensemble=%v density=%v", a.Ensemble != nil, a.Density != nil)
	}
	spec2 := spec
	spec2.Seed, spec2.Trajectories = 99, 500
	b, err := Evaluate(c, Options{Backend: "dm", Noise: model}, spec2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Observables[0].Value != b.Observables[0].Value {
		t.Fatalf("exact observable moved with seed/trajectories: %g vs %g",
			a.Observables[0].Value, b.Observables[0].Value)
	}
	ens, err := Evaluate(c, Options{Backend: "flat", Noise: model},
		ReadoutSpec{Trajectories: 1200, Seed: 5, Observables: spec.Observables})
	if err != nil {
		t.Fatal(err)
	}
	exact, mean, se := a.Observables[0].Value, ens.Observables[0].Value, ens.Observables[0].StdErr
	if math.Abs(mean-exact) > 3*se+1e-9 {
		t.Fatalf("⟨Z0⟩: ensemble %g ± %g vs exact %g (|Δ| > 3σ)", mean, se, exact)
	}
}

// TestDMCapabilityErrors: requests the engine cannot serve fail up front
// with actionable messages.
func TestDMCapabilityErrors(t *testing.T) {
	small := circuit.MustNamed("ising", 5)
	model := noise.Global(noise.Depolarizing(0.01))

	// Statevector read-out of ρ.
	if _, err := Evaluate(small, Options{Backend: "dm"}, ReadoutSpec{Statevector: true}); err == nil ||
		!strings.Contains(err.Error(), "statevector") {
		t.Errorf("statevector on dm: %v", err)
	}
	// Register over the cap.
	wide := circuit.MustNamed("cat_state", dm.MaxQubits+1)
	if _, err := Evaluate(wide, Options{Backend: "dm"}, ReadoutSpec{Shots: 1}); err == nil ||
		!strings.Contains(err.Error(), "at most") {
		t.Errorf("dm over cap: %v", err)
	}
	// The trajectory entry point refuses the exact engine (its results are
	// not an ensemble) and points at Evaluate.
	if _, err := SimulateNoisy(small, Options{Backend: "dm", Noise: model}, noise.RunConfig{Trajectories: 5}); err == nil ||
		!strings.Contains(err.Error(), "Evaluate") {
		t.Errorf("SimulateNoisy on dm: %v", err)
	}
	// Engines with no noisy path reject effective models.
	if _, err := Evaluate(small, Options{Backend: "baseline", Noise: model}, ReadoutSpec{Shots: 1}); err == nil ||
		!strings.Contains(err.Error(), "no noisy path") {
		t.Errorf("noisy on baseline: %v", err)
	}
	// But the rank-count DEFAULT only steers the zero-noise fast path: a
	// multi-rank noisy request with no explicit backend still runs as a
	// trajectory ensemble (the pre-registry behavior), not a rejection.
	if ens, err := SimulateNoisy(small, Options{Ranks: 2, Noise: model},
		noise.RunConfig{Trajectories: 5, Qubits: []int{0}}); err != nil {
		t.Errorf("default-backend multi-rank noisy run rejected: %v", err)
	} else if ens.Trajectories != 5 {
		t.Errorf("default-backend multi-rank noisy run: %d trajectories, want 5", ens.Trajectories)
	}
	if _, err := Evaluate(small, Options{Ranks: 2, Noise: model},
		ReadoutSpec{Shots: 5, Trajectories: 5}); err != nil {
		t.Errorf("default-backend multi-rank noisy Evaluate rejected: %v", err)
	}
}
