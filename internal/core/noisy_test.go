package core

import (
	"math"
	"testing"

	"hisvsim/internal/circuit"
	"hisvsim/internal/gate"
	"hisvsim/internal/noise"
)

// zeroModel is structurally noisy (rules for every channel family plus a
// readout stanza) but has every probability at zero — it must compile away
// completely.
func zeroModel() *noise.Model {
	m := noise.NewModel(
		noise.Rule{Channel: noise.Depolarizing(0)},
		noise.Rule{Channel: noise.BitFlip(0)},
		noise.Rule{Channel: noise.PhaseFlip(0)},
		noise.Rule{Channel: noise.AmplitudeDamping(0)},
		noise.Rule{Channel: noise.PhaseDamping(0)},
	)
	return m.WithReadout(0, 0)
}

// TestZeroNoiseMatchesIdealBitForBit is the differential acceptance test:
// for every strategy/rank combination, a zero-probability noise model must
// reproduce ideal simulation exactly — the same final state serves the
// ensemble, so the Z-string expectation matches ideal bit-for-bit (T = 4
// identical trajectory values average exactly) and the sampled counts are
// reproducible functions of the seed alone.
func TestZeroNoiseMatchesIdealBitForBit(t *testing.T) {
	c, err := circuit.Named("qft", 8)
	if err != nil {
		t.Fatal(err)
	}
	qubits := []int{0, 3, 5}
	cases := []Options{
		{Strategy: "nat", Lm: 5},
		{Strategy: "dfs", Lm: 5, Seed: 3},
		{Strategy: "dagp", Lm: 5, Seed: 3},
		{Strategy: "dagp", Ranks: 2, Seed: 3},
		{Strategy: "dagp", Ranks: 4, SecondLevelLm: 4, Seed: 3},
		{Strategy: "dagp", Fuse: FuseOff, Seed: 3},
	}
	for _, opts := range cases {
		ideal, err := Simulate(c, opts)
		if err != nil {
			t.Fatalf("%+v: ideal: %v", opts, err)
		}
		want := ideal.State.ExpectationPauliZString(qubits)

		noisyOpts := opts
		noisyOpts.Noise = zeroModel()
		run := noise.RunConfig{Trajectories: 4, Seed: 11, Shots: 64, Qubits: qubits}
		a, err := SimulateNoisy(c, noisyOpts, run)
		if err != nil {
			t.Fatalf("%+v: noisy: %v", opts, err)
		}
		if !a.NoiseFree {
			t.Fatalf("%+v: zero model missed the ideal fast path", opts)
		}
		if a.Expectation != want {
			t.Fatalf("%+v: zero-noise ⟨Z⟩ = %v, ideal = %v (must be identical)",
				opts, a.Expectation, want)
		}
		if a.StdErr != 0 {
			t.Fatalf("%+v: zero-noise stderr %v, want exactly 0", opts, a.StdErr)
		}

		// Same seed ⇒ identical counts; and a nil model agrees with the
		// zero-probability model exactly (same elision, same fast path).
		nilOpts := opts
		b, err := SimulateNoisy(c, nilOpts, run)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Counts) == 0 || len(a.Counts) != len(b.Counts) {
			t.Fatalf("%+v: counts differ between zero model and nil model", opts)
		}
		for k, v := range a.Counts {
			if b.Counts[k] != v {
				t.Fatalf("%+v: count[%d] = %d vs %d", opts, k, v, b.Counts[k])
			}
		}
	}
}

// TestSimulateRejectsNoiseModel: the ideal entry point must not silently
// ignore an effective noise model.
func TestSimulateRejectsNoiseModel(t *testing.T) {
	c, err := circuit.Named("bv", 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(c, Options{Noise: noise.Global(noise.Depolarizing(0.01))}); err == nil {
		t.Fatal("Simulate accepted a noisy model")
	}
	// A zero model is fine (it IS ideal).
	if _, err := Simulate(c, Options{Noise: zeroModel()}); err != nil {
		t.Fatalf("Simulate rejected a zero model: %v", err)
	}
}

// TestSimulateNoisySeededReproducibility: fixed (circuit, model, config)
// reproduces counts and expectation exactly, across repeated runs and
// worker counts.
func TestSimulateNoisySeededReproducibility(t *testing.T) {
	c, err := circuit.Named("ising", 6)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Noise: noise.Global(noise.Depolarizing(0.02)).WithReadout(0.01, 0.01)}
	run := func(workers int) *noise.Ensemble {
		e, err := SimulateNoisy(c, opts, noise.RunConfig{
			Trajectories: 30, Seed: 42, Workers: workers, Shots: 300, Qubits: []int{0, 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b, c8 := run(2), run(2), run(8)
	if a.Expectation != b.Expectation || a.Expectation != c8.Expectation {
		t.Fatal("expectation not reproducible across runs/workers")
	}
	for k, v := range a.Counts {
		if b.Counts[k] != v || c8.Counts[k] != v {
			t.Fatalf("count[%d] not reproducible", k)
		}
	}
	if a.NoiseFree {
		t.Fatal("noisy run took the noise-free path")
	}
	if a.Stats.Locations == 0 {
		t.Fatal("no channel draws recorded")
	}
}

// TestSimulateNoisyDecay reruns the analytic depolarizing check through the
// public core surface (id-gate anchors, ⟨Z⟩ = (1−4p/3)^k).
func TestSimulateNoisyDecay(t *testing.T) {
	const p, k = 0.08, 6
	c := circuit.New("decay", 2)
	for i := 0; i < k; i++ {
		c.Append(gate.ID(0))
	}
	opts := Options{Noise: noise.OnGates(noise.Depolarizing(p), "id")}
	ens, err := SimulateNoisy(c, opts, noise.RunConfig{Trajectories: 3000, Seed: 5, Qubits: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(1-4*p/3, k)
	if math.Abs(ens.Expectation-want) > 6*ens.StdErr+1e-9 {
		t.Fatalf("⟨Z⟩ = %.4f ± %.4f, analytic %.4f", ens.Expectation, ens.StdErr, want)
	}
}
