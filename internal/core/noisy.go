package core

import (
	"context"
	"fmt"

	"hisvsim/internal/backend"
	"hisvsim/internal/circuit"
	"hisvsim/internal/noise"
)

// SimulateNoisy runs a trajectory ensemble of the circuit under the noise
// model in opts.Noise (nil = ideal). See SimulateNoisyContext.
func SimulateNoisy(c *circuit.Circuit, opts Options, run noise.RunConfig) (*noise.Ensemble, error) {
	return SimulateNoisyContext(context.Background(), c, opts, run)
}

// SimulateNoisyContext compiles the circuit plus opts.Noise into one
// trajectory plan (gate runs fused between channel-insertion points) and
// executes run.Trajectories stochastic trajectories over it, aggregating
// sampled counts and/or a Z-string expectation with its standard error.
//
// Two properties are load-bearing for callers:
//
//   - Zero-effect models (nil, no rules, or every probability 0) take the
//     ideal fast path: the circuit is simulated ONCE through the ordinary
//     executors (strategy, Lm, ranks, fusion all honored), so the ensemble
//     is bit-for-bit consistent with Simulate under the same options, and
//     only sampling/readout work scales with the trajectory count.
//
//   - Noisy ensembles are deterministic in (circuit, model, run config):
//     every trajectory derives its RNG from run.Seed and its index, so the
//     counts are reproducible and independent of run.Workers.
//
// Noisy trajectories execute on the flat fused state vector (trajectories,
// not partitions, are the parallelism axis); Strategy/Lm/Ranks only shape
// the zero-noise fast path.
func SimulateNoisyContext(ctx context.Context, c *circuit.Circuit, opts Options, run noise.RunConfig) (*noise.Ensemble, error) {
	if c.Parametric() {
		return nil, fmt.Errorf("core: circuit %s has unbound symbols %v; bind a parameter environment (or submit a sweep/optimize job)", c.Name, c.Symbols())
	}
	// Effective-noise ensembles execute on the flat trajectory engine, so
	// Options.Backend only steers the zero-noise fast path — but the name
	// is still validated here, not silently ignored: a typo'd backend
	// cannot return results from a different engine than requested, and a
	// backend without a noisy path (dist, baseline) is rejected up front
	// instead of silently misreporting a flat trajectory run as its own.
	_, caps, err := ResolveBackendFor(opts.Backend, opts.Ranks, c.NumQubits, !opts.Noise.IsZero())
	if err != nil {
		return nil, err
	}
	if caps.Noise == backend.NoiseExact && !opts.Noise.IsZero() {
		return nil, fmt.Errorf("core: backend %q computes exact noisy read-outs, not trajectory ensembles; use Evaluate", opts.Backend)
	}
	model := opts.Noise
	plan, err := noise.Compile(c, model, noise.CompileOptions{
		Fuse: opts.Fuse.Enabled(), MaxFuseQubits: opts.MaxFuseQubits,
	})
	if err != nil {
		return nil, err
	}
	if run.Workers <= 0 {
		run.Workers = opts.Workers
	}
	if plan.NoiseFree() {
		ideal := opts
		ideal.Noise = nil // the remaining model (readout only) applies at sampling
		ideal.SkipState = false
		res, err := SimulateContext(ctx, c, ideal)
		if err != nil {
			return nil, err
		}
		return noise.RunEnsembleFromState(ctx, res.State, plan.Readout(), run)
	}
	return noise.RunEnsemble(ctx, plan, run)
}
