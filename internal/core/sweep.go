package core

import (
	"context"
	"fmt"
	"time"

	"hisvsim/internal/circuit"
	"hisvsim/internal/fuse"
	"hisvsim/internal/noise"
)

// This file is the v3 sweep surface: evaluate one parameterized circuit
// template over many symbol bindings with a single fusion compile. The
// template compiles once (fuse.CompileTemplate for ideal runs,
// noise.Compile for trajectory ensembles); each grid point only re-binds
// the symbol-touched blocks and replays the shared kernel plans, so M
// bindings cost 1 compile + M cheap specializations instead of M full
// compiles. Every point derives the same ReadoutSpec, making the result a
// readout table over the grid.

// SweepPoint is one evaluated grid point.
type SweepPoint struct {
	// Binding is the symbol environment the point was evaluated under.
	Binding map[string]float64
	// Readouts are the point's evaluated read-outs (same spec every point).
	Readouts *Readouts
}

// SweepReport is the result of a sweep: per-point read-outs plus the
// compile-amortization accounting the stats surface exposes.
type SweepReport struct {
	// Points holds one entry per requested binding, in request order.
	Points []SweepPoint
	// Compiles is the number of fusion compiles performed (always 1: the
	// whole point of the template engine).
	Compiles int
	// TouchedBlocks is how many fused blocks each binding re-specializes;
	// SharedBlocks is how many are reused read-only across all bindings.
	TouchedBlocks int
	SharedBlocks  int
	// Trajectories is the per-point ensemble size (0 for ideal sweeps).
	Trajectories int
	// Elapsed is the wall time of the whole sweep, compile included.
	Elapsed time.Duration
}

// validateSweep checks the request shape shared by Sweep and Optimize:
// a parameterized circuit, a backend the template engine can honor, and
// well-formed bindings. Errors name the offending symbol or point.
func validateSweep(c *circuit.Circuit, opts Options, bindings []map[string]float64) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if opts.Backend != "" && opts.Backend != "flat" {
		return fmt.Errorf("core: parameterized jobs run on the flat template engine (got backend %q)", opts.Backend)
	}
	if opts.Ranks > 1 {
		return fmt.Errorf("core: parameterized jobs run single-node (got %d ranks)", opts.Ranks)
	}
	for i, env := range bindings {
		if err := c.CheckBinding(env); err != nil {
			return fmt.Errorf("binding %d: %w", i, err)
		}
	}
	return nil
}

// Sweep evaluates the template under every binding. See SweepContext.
func Sweep(c *circuit.Circuit, opts Options, spec ReadoutSpec, bindings []map[string]float64) (*SweepReport, error) {
	return SweepContext(context.Background(), c, opts, spec, bindings)
}

// SweepContext compiles the parameterized circuit once and evaluates the
// ReadoutSpec under every binding, in order. Ideal sweeps replay the fused
// template on the flat engine; sweeps under an effective noise model
// compile one trajectory plan and re-bind its gate runs per point, running
// a full seeded ensemble each (counts / mean±stderr aggregation included).
// The spec's Seed is reused at every point, so each point's read-outs are
// bit-identical to an independent concrete-circuit run of the bound
// circuit. Fusion is inherent to the template engine: FuseOff is ignored,
// MaxFuseQubits still caps block support.
func SweepContext(ctx context.Context, c *circuit.Circuit, opts Options, spec ReadoutSpec, bindings []map[string]float64) (*SweepReport, error) {
	start := time.Now()
	if len(bindings) == 0 {
		return nil, fmt.Errorf("core: sweep needs at least one binding")
	}
	if err := validateSweep(c, opts, bindings); err != nil {
		return nil, err
	}
	if err := spec.Validate(c.NumQubits); err != nil {
		return nil, err
	}
	noisy := !opts.Noise.IsZero()
	rep := &SweepReport{Compiles: 1, Points: make([]SweepPoint, 0, len(bindings))}

	if noisy {
		if spec.Statevector {
			return nil, fmt.Errorf("core: statevector readout is undefined under an effective noise model (a trajectory ensemble has no single state)")
		}
		plan, err := noise.Compile(c, opts.Noise, noise.CompileOptions{
			Fuse: true, MaxFuseQubits: opts.MaxFuseQubits,
		})
		if err != nil {
			return nil, err
		}
		cfg := spec.NoisyRunConfig(opts.Workers)
		if plan.NoiseFree() {
			// Zero-effect model (channel insertions all elided): one ideal
			// template run per point, with readout error applied at
			// sampling — the same fast path SimulateNoisy takes for
			// concrete circuits. NoiseFree is structural (insertion count),
			// so one check covers every binding.
			tpl, err := fuse.CompileTemplate(c, fuse.Options{MaxQubits: opts.MaxFuseQubits})
			if err != nil {
				return nil, err
			}
			rep.TouchedBlocks = tpl.TouchedBlocks()
			rep.SharedBlocks = len(tpl.Blocks) - tpl.TouchedBlocks()
			for i, env := range bindings {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				st, err := tpl.Run(env, opts.Workers)
				if err != nil {
					return nil, fmt.Errorf("core: binding %d: %w", i, err)
				}
				ens, err := noise.RunEnsembleFromState(ctx, st, plan.Readout(), cfg)
				if err != nil {
					return nil, err
				}
				rep.Trajectories = ens.Trajectories
				rep.Points = append(rep.Points, SweepPoint{Binding: cloneEnv(env), Readouts: ReadoutsFromEnsemble(ens, spec)})
			}
			rep.Elapsed = time.Since(start)
			return rep, nil
		}
		for i, env := range bindings {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sp, err := plan.Specialize(env)
			if err != nil {
				return nil, fmt.Errorf("core: binding %d: %w", i, err)
			}
			ens, err := noise.RunEnsemble(ctx, sp, cfg)
			if err != nil {
				return nil, err
			}
			rep.Trajectories = ens.Trajectories
			rep.Points = append(rep.Points, SweepPoint{Binding: cloneEnv(env), Readouts: ReadoutsFromEnsemble(ens, spec)})
		}
		rep.Elapsed = time.Since(start)
		return rep, nil
	}

	tpl, err := fuse.CompileTemplate(c, fuse.Options{MaxQubits: opts.MaxFuseQubits})
	if err != nil {
		return nil, err
	}
	rep.TouchedBlocks = tpl.TouchedBlocks()
	rep.SharedBlocks = len(tpl.Blocks) - tpl.TouchedBlocks()
	for i, env := range bindings {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st, err := tpl.Run(env, opts.Workers)
		if err != nil {
			return nil, fmt.Errorf("core: binding %d: %w", i, err)
		}
		rep.Points = append(rep.Points, SweepPoint{Binding: cloneEnv(env), Readouts: EvaluateState(st, nil, spec)})
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

func cloneEnv(env map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}
