package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"hisvsim/internal/circuit"
	"hisvsim/internal/mpi"
	"hisvsim/internal/perfmodel"
	"hisvsim/internal/sv"
)

func TestNewStrategyNames(t *testing.T) {
	for _, name := range StrategyNames() {
		s, err := NewStrategy(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("strategy %q reports name %q", name, s.Name())
		}
	}
	if _, err := NewStrategy("bogus", 1); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestSimulateSingleNodeDefaults(t *testing.T) {
	c := circuit.QFT(8)
	want, err := sv.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hier == nil || res.Dist != nil {
		t.Fatal("expected single-node metrics")
	}
	if f := res.State.Fidelity(want); math.Abs(f-1) > 1e-8 {
		t.Fatalf("fidelity = %v", f)
	}
	// Default Lm = full register: one part.
	if res.Plan.NumParts() != 1 {
		t.Fatalf("parts = %d", res.Plan.NumParts())
	}
}

func TestSimulateWithLmAndStrategies(t *testing.T) {
	c := circuit.BV(8, -1)
	want, err := sv.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"nat", "dfs", "dagp"} {
		res, err := Simulate(c, Options{Strategy: s, Lm: 4, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if f := res.State.Fidelity(want); math.Abs(f-1) > 1e-8 {
			t.Fatalf("%s: fidelity = %v", s, f)
		}
		if res.Plan.NumParts() < 2 {
			t.Fatalf("%s: expected multiple parts", s)
		}
	}
}

func TestSimulateDistributed(t *testing.T) {
	c := circuit.QFT(8)
	want, err := sv.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(c, Options{Strategy: "dagp", Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist == nil || res.Hier != nil {
		t.Fatal("expected distributed metrics")
	}
	if f := res.State.Fidelity(want); math.Abs(f-1) > 1e-8 {
		t.Fatalf("fidelity = %v", f)
	}
}

func TestSimulateDistributedSkipState(t *testing.T) {
	res, err := Simulate(circuit.QFT(8), Options{Ranks: 2, SkipState: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != nil {
		t.Fatal("state gathered despite SkipState")
	}
}

func TestSimulateMultiLevel(t *testing.T) {
	c := circuit.QFT(9)
	want, err := sv.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(c, Options{Strategy: "dagp", Ranks: 2, SecondLevelLm: 4})
	if err != nil {
		t.Fatal(err)
	}
	if f := res.State.Fidelity(want); math.Abs(f-1) > 1e-8 {
		t.Fatalf("fidelity = %v", f)
	}
}

func TestSimulateRejectsInvalid(t *testing.T) {
	bad := circuit.New("bad", 2)
	bad.Append(circuit.QFT(4).Gates...) // out-of-range gates
	if _, err := Simulate(bad, Options{}); err == nil {
		t.Fatal("invalid circuit accepted")
	}
	if _, err := Simulate(circuit.QFT(6), Options{Strategy: "nope"}); err == nil {
		t.Fatal("invalid strategy accepted")
	}
}

func TestSimulateContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimulateContext(ctx, circuit.QFT(8), Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("single-node: err = %v, want context.Canceled", err)
	}
	if _, err := SimulateContext(ctx, circuit.QFT(8), Options{Ranks: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("distributed: err = %v, want context.Canceled", err)
	}
}

func TestSimulateContextDeadline(t *testing.T) {
	// An already-expired deadline must abort at (or before) the first part
	// boundary rather than running to completion.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := SimulateContext(ctx, circuit.QFT(10), Options{Strategy: "nat", Lm: 4}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSimulateSeedDeterminism(t *testing.T) {
	// A fixed Seed pins the randomized partitioners, so the plan shape and
	// the final state are reproducible run to run.
	c := circuit.Random(8, 60, 2)
	a, err := Simulate(c, Options{Strategy: "dfs", Lm: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(c, Options{Strategy: "dfs", Lm: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Plan.NumParts() != b.Plan.NumParts() {
		t.Fatalf("seeded runs produced %d vs %d parts", a.Plan.NumParts(), b.Plan.NumParts())
	}
	for i, amp := range a.State.Amps {
		if amp != b.State.Amps[i] {
			t.Fatalf("seeded runs diverged at amplitude %d", i)
		}
	}
}

func TestEstimatesImprovementShape(t *testing.T) {
	// The paper's headline (Fig. 5): dagP end-to-end beats IQS. Check the
	// modeled estimate reproduces that on communication-heavy circuits.
	net := mpi.HDR100()
	cpu := perfmodel.Xeon8280()
	for _, fam := range []string{"qft", "ising", "bv"} {
		c, err := circuit.Named(fam, 10)
		if err != nil {
			t.Fatal(err)
		}
		hi, pl, err := EstimateHiSVSIM(c, "dagp", 4, 1, net, cpu, 0)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		iqs, err := EstimateIQS(c, 4, net, cpu)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if pl.NumParts() < 1 {
			t.Fatalf("%s: empty plan", fam)
		}
		if hi.BytesComm >= iqs.BytesComm && iqs.BytesComm > 0 {
			t.Errorf("%s: HiSVSIM bytes %d >= IQS bytes %d", fam, hi.BytesComm, iqs.BytesComm)
		}
		if hi.Total() <= 0 || iqs.Total() <= 0 {
			t.Errorf("%s: non-positive totals", fam)
		}
		if hi.CommRatio() < 0 || hi.CommRatio() > 1 {
			t.Errorf("%s: comm ratio %v out of range", fam, hi.CommRatio())
		}
	}
}

func TestEstimateMultiLevelReducesCompute(t *testing.T) {
	// With the scaled cache (8 KB = 9 cache-resident qubits), QFT(14) on 4
	// ranks has 12 local qubits, so single-level parts (64 KB inner
	// vectors) overflow the cache; a second level at Lm2 = 8 brings the
	// inner vectors back under it, reducing modeled compute (the paper's
	// Fig. 10 mechanism).
	c := circuit.QFT(14)
	net := mpi.HDR100()
	cpu := perfmodel.ScaledNode()
	single, _, err := EstimateHiSVSIM(c, "dagp", 4, 1, net, cpu, 0)
	if err != nil {
		t.Fatal(err)
	}
	multi, _, err := EstimateHiSVSIM(c, "dagp", 4, 1, net, cpu, 8)
	if err != nil {
		t.Fatal(err)
	}
	if multi.ComputeSeconds >= single.ComputeSeconds {
		t.Fatalf("multi-level compute %v >= single %v", multi.ComputeSeconds, single.ComputeSeconds)
	}
}
