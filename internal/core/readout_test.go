package core

import (
	"math"
	"testing"

	"hisvsim/internal/circuit"
	"hisvsim/internal/gate"
	"hisvsim/internal/noise"
	"hisvsim/internal/sv"
)

func TestReadoutSpecValidate(t *testing.T) {
	bad := []ReadoutSpec{
		{}, // empty
		{Shots: -1},
		{Statevector: true, Trajectories: -2},
		{Marginals: [][]int{{0, 9}}},
		{Marginals: [][]int{{1, 1}}},
		{Observables: []Observable{{Paulis: "X", Qubits: []int{9}}}},
		{Observables: []Observable{{Paulis: "XX", Qubits: []int{1}}}},
		{Observables: []Observable{{Paulis: "W", Qubits: []int{0}}}},
		{Observables: []Observable{{Paulis: "XX", Qubits: []int{2, 2}}}},
	}
	for _, spec := range bad {
		if err := spec.Validate(8); err == nil {
			t.Errorf("spec %+v validated but should not", spec)
		}
	}
	good := ReadoutSpec{
		Statevector: true, Shots: 10, Seed: 1,
		Marginals:   [][]int{{0, 1}, {3}},
		Observables: []Observable{{Paulis: "XYZ", Qubits: []int{0, 2, 4}}, {Paulis: "ZZ", Qubits: []int{5, 5}}},
	}
	if err := good.Validate(8); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

// TestEvaluateMatchesSingleReadouts checks the unified path against each
// read-out computed directly from a flat reference simulation.
func TestEvaluateMatchesSingleReadouts(t *testing.T) {
	c, err := circuit.Named("ising", 7)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sv.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	spec := ReadoutSpec{
		Statevector: true, Shots: 200, Seed: 11,
		Marginals: [][]int{{0, 1, 2}, {5}},
		Observables: []Observable{
			{Name: "zz", Coeff: -1, Paulis: "ZZ", Qubits: []int{0, 1}},
			{Name: "x3", Paulis: "X", Qubits: []int{3}},
			{Name: "y5z6", Coeff: 0.25, Paulis: "YZ", Qubits: []int{5, 6}},
		},
	}
	rep, err := Evaluate(c, Options{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sim == nil || rep.Ensemble != nil {
		t.Fatalf("ideal evaluate: Sim=%v Ensemble=%v", rep.Sim, rep.Ensemble)
	}
	if rep.Sim.Backend != "hier" {
		t.Errorf("default backend = %q, want hier", rep.Sim.Backend)
	}
	if len(rep.Amplitudes) != 1<<7 {
		t.Fatalf("amplitudes: got %d", len(rep.Amplitudes))
	}
	total := 0
	for _, n := range rep.Counts {
		total += n
	}
	if total != 200 || len(rep.Samples) != 200 {
		t.Fatalf("shots: %d samples, counts sum %d", len(rep.Samples), total)
	}
	for k, qs := range spec.Marginals {
		want := ref.Marginal(qs)
		for i := range want {
			if math.Abs(rep.Marginals[k][i]-want[i]) > 1e-9 {
				t.Errorf("marginal %d[%d]: got %g want %g", k, i, rep.Marginals[k][i], want[i])
			}
		}
	}
	wants := []float64{
		-ref.ExpectationPauliZString([]int{0, 1}),
		ref.ExpectationPauli("X", []int{3}),
		0.25 * ref.ExpectationPauli("YZ", []int{5, 6}),
	}
	for k, ov := range rep.Observables {
		if ov.Name != spec.Observables[k].Name {
			t.Errorf("observable %d: name %q", k, ov.Name)
		}
		if math.Abs(ov.Value-wants[k]) > 1e-9 {
			t.Errorf("observable %d: got %.12f want %.12f", k, ov.Value, wants[k])
		}
	}
}

// TestPauliObservablesAcrossBackendsAndRanks is the satellite differential
// test: X/Y/Z mixes evaluated through every backend and rank count agree
// with the flat reference to 1e-9.
func TestPauliObservablesAcrossBackendsAndRanks(t *testing.T) {
	c, err := circuit.Named("qft", 8)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sv.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	obs := []Observable{
		{Paulis: "X", Qubits: []int{0}},
		{Paulis: "Y", Qubits: []int{4}},
		{Paulis: "XY", Qubits: []int{1, 6}},
		{Paulis: "ZXY", Qubits: []int{2, 3, 7}},
		{Coeff: -0.5, Paulis: "YX", Qubits: []int{5, 0}},
	}
	wants := make([]float64, len(obs))
	for k, ob := range obs {
		wants[k] = ref.ExpectationPauliString(sv.PauliString{Coeff: ob.Coeff, Ops: ob.Paulis, Qubits: ob.Qubits})
	}
	cases := []Options{
		{Backend: "flat"},
		{Backend: "hier", Strategy: "dagp", Lm: 5, Seed: 3},
		{Backend: "hier", Strategy: "nat", Lm: 4, Fuse: FuseOff},
		{Backend: "dist", Ranks: 2, Seed: 3},
		{Backend: "dist", Ranks: 4, SecondLevelLm: 4, Seed: 3},
		{Backend: "baseline", Ranks: 2},
		{Ranks: 4, Seed: 3}, // default resolution → dist
	}
	for _, opts := range cases {
		rep, err := Evaluate(c, opts, ReadoutSpec{Observables: obs})
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		for k, ov := range rep.Observables {
			if math.Abs(ov.Value-wants[k]) > 1e-9 {
				t.Errorf("%+v observable %d: got %.12f want %.12f", opts, k, ov.Value, wants[k])
			}
		}
	}
}

// TestEvaluateNoisyXDecayUnderPhaseDamping is the analytic-decay check:
// |+⟩ under k phase-damping hits keeps ⟨X⟩ = (1−γ)^{k/2} in expectation
// (each off-diagonal element shrinks by √(1−γ) per application).
func TestEvaluateNoisyXDecayUnderPhaseDamping(t *testing.T) {
	const gamma = 0.08
	const hits = 6
	c := circuit.New("xdecay", 1)
	c.Append(gate.H(0))
	for i := 1; i < hits; i++ {
		c.Append(gate.ID(0)) // each gate fires the global channel once more
	}
	model := noise.Global(noise.PhaseDamping(gamma))
	rep, err := Evaluate(c, Options{Noise: model}, ReadoutSpec{
		Observables:  []Observable{{Name: "x", Paulis: "X", Qubits: []int{0}}},
		Trajectories: 3000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ensemble == nil || rep.Sim != nil {
		t.Fatalf("noisy evaluate: Sim=%v Ensemble=%v", rep.Sim, rep.Ensemble)
	}
	ov := rep.Observables[0]
	want := math.Pow(1-gamma, float64(hits)/2)
	tol := 4*ov.StdErr + 1e-6
	if math.Abs(ov.Value-want) > tol {
		t.Errorf("⟨X⟩ after %d phase-damping hits: got %.6f ± %.6f, want %.6f (tol %.6f)",
			hits, ov.Value, ov.StdErr, want, tol)
	}
	if ov.StdErr <= 0 {
		t.Errorf("noisy observable reported zero stderr")
	}
	if rep.Trajectories != 3000 {
		t.Errorf("trajectories: got %d", rep.Trajectories)
	}
}

// TestEvaluateStatevectorRejectedUnderNoise pins the API contract.
func TestEvaluateStatevectorRejectedUnderNoise(t *testing.T) {
	c, _ := circuit.Named("bv", 4)
	model := noise.Global(noise.Depolarizing(0.01))
	if _, err := Evaluate(c, Options{Noise: model}, ReadoutSpec{Statevector: true}); err == nil {
		t.Fatal("statevector readout accepted under an effective noise model")
	}
}

// TestNoisyPathRejectsUnknownBackend: an unresolvable Options.Backend must
// fail under noise too, not silently run the trajectory engine.
func TestNoisyPathRejectsUnknownBackend(t *testing.T) {
	c, _ := circuit.Named("bv", 4)
	model := noise.Global(noise.Depolarizing(0.01))
	spec := ReadoutSpec{Observables: []Observable{{Paulis: "Z", Qubits: []int{0}}}, Trajectories: 2}
	if _, err := Evaluate(c, Options{Backend: "warp-drive", Noise: model}, spec); err == nil {
		t.Fatal("unknown backend accepted on the noisy path")
	}
	if _, err := SimulateNoisy(c, Options{Backend: "warp-drive", Noise: model},
		noise.RunConfig{Trajectories: 2, Qubits: []int{0}}); err == nil {
		t.Fatal("SimulateNoisy accepted an unknown backend")
	}
}

// TestEvaluateZeroNoiseIsIdeal: a zero-effect model rides the ideal path.
func TestEvaluateZeroNoiseIsIdeal(t *testing.T) {
	c, _ := circuit.Named("bv", 5)
	rep, err := Evaluate(c, Options{Noise: zeroModelNoReadout()}, ReadoutSpec{Statevector: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sim == nil {
		t.Fatal("zero-effect model did not take the ideal path")
	}
	want, _ := Simulate(c, Options{})
	for i := range want.State.Amps {
		if rep.Amplitudes[i] != want.State.Amps[i] {
			t.Fatalf("amplitude %d differs from ideal Simulate", i)
		}
	}
}

// zeroModelNoReadout: structurally noisy, zero effect, no readout stanza
// (IsZero must hold so Evaluate takes the ideal branch).
func zeroModelNoReadout() *noise.Model {
	return noise.NewModel(noise.Rule{Channel: noise.Depolarizing(0)})
}
