package baseline

import (
	"math"
	"testing"
	"testing/quick"

	"hisvsim/internal/circuit"
	"hisvsim/internal/dist"
	"hisvsim/internal/partition/dagp"
	"hisvsim/internal/sv"
)

func baselineVsFlat(t *testing.T, c *circuit.Circuit, ranks int) *Result {
	t.Helper()
	want, err := sv.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, Config{Ranks: ranks, GatherResult: true})
	if err != nil {
		t.Fatalf("%s/ranks=%d: %v", c.Name, ranks, err)
	}
	if f := res.State.Fidelity(want); math.Abs(f-1) > 1e-8 {
		t.Fatalf("%s/ranks=%d: fidelity = %v", c.Name, ranks, f)
	}
	return res
}

func TestBaselineMatchesFlat(t *testing.T) {
	circuits := []*circuit.Circuit{
		circuit.CatState(8),
		circuit.BV(8, -1),
		circuit.QFT(8),
		circuit.Ising(8, 2),
		circuit.QAOA(8, 2, 5),
		circuit.Grover(5, 1),
		circuit.Adder(3),
		circuit.QPE(7, 0.25, 16),
	}
	for _, c := range circuits {
		for _, ranks := range []int{1, 2, 4} {
			baselineVsFlat(t, c, ranks)
		}
	}
}

func TestBaselineEightRanks(t *testing.T) {
	baselineVsFlat(t, circuit.QFT(9), 8)
}

func TestBaselineCommGrowsWithGlobalGates(t *testing.T) {
	// cat_state's CX chain crosses the rank boundary once per global target;
	// QFT touches the top qubits with many gates, so it must exchange much
	// more than cat_state.
	cat := baselineVsFlat(t, circuit.CatState(8), 4)
	qft := baselineVsFlat(t, circuit.QFT(8), 4)
	if qft.BytesComm <= cat.BytesComm {
		t.Fatalf("QFT comm %d should exceed cat_state comm %d", qft.BytesComm, cat.BytesComm)
	}
}

func TestBaselineSingleRankNoComm(t *testing.T) {
	res := baselineVsFlat(t, circuit.QFT(7), 1)
	if res.BytesComm != 0 || res.Exchanges != 0 {
		t.Fatal("single-rank run communicated")
	}
}

func TestBaselineRejectsBadConfig(t *testing.T) {
	c := circuit.BV(6, -1)
	if _, err := Run(c, Config{Ranks: 3}); err == nil {
		t.Fatal("non-power-of-two ranks accepted")
	}
	if _, err := Run(c, Config{Ranks: 64}); err == nil {
		t.Fatal("too many ranks accepted")
	}
}

func TestBaselineKeepGatesLocalOnly(t *testing.T) {
	// With KeepGates, a swap on global qubits must be rejected...
	c := circuit.New("t", 6)
	c.Append(circuit.QFT(6).Gates...)
	if _, err := Run(c, Config{Ranks: 4, KeepGates: true}); err == nil {
		t.Fatal("multi-target global gate accepted with KeepGates")
	}
	// ...but a circuit whose multi-qubit gates stay local is fine.
	local := circuit.QFT(4)
	wide := circuit.New("wide", 6)
	wide.Append(local.Gates...)
	want, err := sv.Run(wide)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(wide, Config{Ranks: 4, GatherResult: true, KeepGates: true})
	if err != nil {
		t.Fatal(err)
	}
	if f := res.State.Fidelity(want); math.Abs(f-1) > 1e-8 {
		t.Fatalf("fidelity = %v", f)
	}
}

// HiSVSIM's headline claim: per-part relayout moves far fewer bytes than the
// baseline's per-gate exchanges on communication-heavy circuits.
func TestHiSVSIMBeatsBaselineOnCommVolume(t *testing.T) {
	for _, name := range []string{"qft", "ising", "bv"} {
		c, err := circuit.Named(name, 9)
		if err != nil {
			t.Fatal(err)
		}
		base, err := Run(c, Config{Ranks: 4})
		if err != nil {
			t.Fatal(err)
		}
		hi, _, err := dist.RunCircuit(c, dagp.Partitioner{}, dist.Config{Ranks: 4})
		if err != nil {
			t.Fatal(err)
		}
		if base.BytesComm > 0 && hi.BytesComm >= base.BytesComm {
			t.Errorf("%s: HiSVSIM comm %d >= baseline comm %d", name, hi.BytesComm, base.BytesComm)
		}
	}
}

func TestQuickBaselineEqualsFlat(t *testing.T) {
	f := func(seed int64, rBits uint8) bool {
		ranks := 1 << (uint(rBits) % 3) // 1, 2 or 4
		c := circuit.Random(7, 30, seed)
		want, err := sv.Run(c)
		if err != nil {
			return false
		}
		res, err := Run(c, Config{Ranks: ranks, GatherResult: true})
		if err != nil {
			return false
		}
		return math.Abs(res.State.Fidelity(want)-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
