// Package baseline implements the distributed state-vector scheme of the
// paper's comparison system, Intel IQS / qHiPSTER: a fixed qubit layout
// (low l qubits local, high p qubits select the rank) where every gate on a
// process (global) qubit triggers a pairwise slab exchange with the partner
// rank, and gates on local qubits run communication-free. Circuits are
// first lowered to the {single-qubit, CX} basis, matching IQS's native gate
// set. This is the system HiSVSIM's per-part single relayout is measured
// against in Figs. 5–9.
package baseline

import (
	"context"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"hisvsim/internal/circuit"
	"hisvsim/internal/fuse"
	"hisvsim/internal/gate"
	"hisvsim/internal/mpi"
	"hisvsim/internal/prof"
	"hisvsim/internal/sv"
)

// fullyLocal reports whether every qubit of the gate lies below the local
// boundary (no communication and no rank-dependent control behavior).
func fullyLocal(g gate.Gate, l int) bool {
	for _, q := range g.Qubits {
		if q >= l {
			return false
		}
	}
	return true
}

// Config describes a baseline run.
type Config struct {
	// Ctx, when non-nil, is polled at gate boundaries: a cancelled or
	// timed-out context aborts the run with the context's error. The abort
	// gate is latched so every simulated rank leaves at the same boundary
	// (no rank abandons a partner mid-exchange).
	Ctx context.Context
	// Ranks must be a power of two.
	Ranks int
	// Model is the communication cost model (default mpi.HDR100()).
	Model mpi.CostModel
	// Workers bounds per-rank kernel parallelism.
	Workers int
	// GatherResult collects the full state at rank 0.
	GatherResult bool
	// KeepGates skips the {1q, cx} lowering and simulates gates natively
	// (multi-target global gates are then unsupported).
	KeepGates bool
	// Fuse coalesces runs of fully-local gates between communication points
	// into fused blocks (gates touching a global qubit stay per-gate).
	Fuse bool
	// MaxFuseQubits caps fused-block support (0 = fuse default).
	MaxFuseQubits int
}

// Result of a baseline run.
type Result struct {
	Stats     []mpi.Stats
	State     *sv.State
	Exchanges int   // pairwise slab exchanges performed (per rank)
	BytesComm int64 // total bytes sent across ranks
	Gates     int   // gates simulated after lowering
}

// Run simulates the circuit with the IQS-style fixed-layout scheme.
func Run(c *circuit.Circuit, cfg Config) (*Result, error) {
	if cfg.Ranks < 1 || bits.OnesCount(uint(cfg.Ranks)) != 1 {
		return nil, fmt.Errorf("baseline: ranks must be a power of two, got %d", cfg.Ranks)
	}
	p := bits.TrailingZeros(uint(cfg.Ranks))
	n := c.NumQubits
	l := n - p
	if l < 1 {
		return nil, fmt.Errorf("baseline: %d ranks leave no local qubits for %d-qubit circuit", cfg.Ranks, n)
	}
	gates := c.Gates
	if !cfg.KeepGates {
		gates = gate.DecomposeAll(c.Gates)
	}
	for gi, g := range gates {
		if len(g.Targets()) != 1 && !fullyLocal(g, l) {
			// Global multi-target gates need pair exchanges per target;
			// the lowering avoids this case entirely.
			return nil, fmt.Errorf("baseline: gate %d (%s) has %d targets with global qubits; lower the circuit first",
				gi, g.Name, len(g.Targets()))
		}
	}
	model := cfg.Model
	if model == (mpi.CostModel{}) {
		model = mpi.HDR100()
	}

	res := &Result{Gates: len(gates)}
	exchanges := make([]int, cfg.Ranks)
	gathered := make([][]complex128, cfg.Ranks)

	// Pre-fuse the runs of fully-local gates between communication points
	// once; the fused schedule is rank-independent and shared read-only.
	type fusedRun struct {
		blocks []fuse.Block
		plans  []*sv.FusedPlan
	}
	var localRuns map[int]fusedRun // keyed by index of the run's first gate
	if cfg.Fuse {
		localRuns = map[int]fusedRun{}
		runStart := -1
		flush := func(end int) error {
			if runStart < 0 {
				return nil
			}
			blocks, err := fuse.Fuse(gates[runStart:end], fuse.Options{MaxQubits: cfg.MaxFuseQubits})
			if err != nil {
				return err
			}
			localRuns[runStart] = fusedRun{blocks: blocks, plans: fuse.Plan(blocks, l)}
			runStart = -1
			return nil
		}
		for gi, g := range gates {
			if fullyLocal(g, l) {
				if runStart < 0 {
					runStart = gi
				}
				continue
			}
			if err := flush(gi); err != nil {
				return res, err
			}
		}
		if err := flush(len(gates)); err != nil {
			return res, err
		}
	}

	// gateGate latches one go/abort decision per gate index (the same
	// scheme dist uses per step): the FIRST rank to reach a boundary polls
	// the context and publishes the verdict, every other rank follows it —
	// per-rank polling could strand a partner already blocked inside the
	// same gate's pairwise exchange.
	var gateGate []atomic.Int32 // 0 undecided, 1 go, 2 abort
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return res, err
		}
		gateGate = make([]atomic.Int32, len(gates))
	}

	stats, err := mpi.Run(cfg.Ranks, model, func(cm *mpi.Comm) error {
		rank := cm.Rank()
		local := make([]complex128, 1<<uint(l))
		if rank == 0 {
			local[0] = 1
		}
		st := sv.NewStateRaw(local)
		st.Workers = cfg.Workers
		st.Prof = prof.FromContext(cfg.Ctx)

		for gi := 0; gi < len(gates); gi++ {
			if gateGate != nil {
				verdict := gateGate[gi].Load()
				if verdict == 0 {
					want := int32(1)
					if cfg.Ctx.Err() != nil {
						want = 2
					}
					if gateGate[gi].CompareAndSwap(0, want) {
						verdict = want
					} else {
						verdict = gateGate[gi].Load()
					}
				}
				if verdict == 2 {
					if err := cfg.Ctx.Err(); err != nil {
						return err
					}
					return context.Canceled
				}
			}
			g := gates[gi]
			if run, ok := localRuns[gi]; ok {
				// Fused run of fully-local gates: skip past the whole run.
				t0 := time.Now()
				if err := fuse.ApplyPlanned(st, run.blocks, run.plans); err != nil {
					return err
				}
				cm.RecordCompute(time.Since(t0).Seconds())
				for gi < len(gates) && fullyLocal(gates[gi], l) {
					gi++
				}
				gi--
				continue
			}
			if fullyLocal(g, l) {
				t0 := time.Now()
				if err := st.ApplyGate(g); err != nil {
					return err
				}
				cm.RecordCompute(time.Since(t0).Seconds())
				continue
			}
			// Split controls into local mask and global requirement.
			var localCtrl int
			globalOK := true
			for _, q := range g.Controls() {
				if q < l {
					localCtrl |= 1 << uint(q)
				} else if rank>>uint(q-l)&1 == 0 {
					globalOK = false
				}
			}
			tq := g.Targets()[0]
			if tq < l {
				// Local target, some global control: apply only on ranks
				// whose global control bits are all one. No communication.
				if !globalOK {
					continue
				}
				t0 := time.Now()
				applyLocalControlled(local, tq, localCtrl, g.BaseMatrix())
				cm.RecordCompute(time.Since(t0).Seconds())
				continue
			}
			// Global target: pairwise slab exchange with the partner rank.
			// Global controls are identical on both partners (they differ
			// only in the target bit), so an unsatisfied control skips the
			// exchange consistently on both sides.
			if !globalOK {
				continue
			}
			partner := rank ^ 1<<uint(tq-l)
			other := cm.Exchange(partner, gi, local)
			exchangesInc(exchanges, rank)
			myBit := rank >> uint(tq-l) & 1
			m := g.BaseMatrix()
			t0 := time.Now()
			combinePair(local, other, myBit, localCtrl, m)
			cm.RecordCompute(time.Since(t0).Seconds())
		}

		if cfg.GatherResult {
			out := cm.Gather(0, 1<<20, local)
			if rank == 0 {
				copy(gathered, out)
			}
		}
		return nil
	})
	res.Stats = stats
	if err != nil {
		return res, err
	}
	res.Exchanges = exchanges[0]
	res.BytesComm = mpi.TotalBytes(stats)
	if cfg.GatherResult {
		amps := make([]complex128, 1<<uint(n))
		for r := 0; r < cfg.Ranks; r++ {
			copy(amps[r<<uint(l):], gathered[r])
		}
		res.State = sv.NewStateRaw(amps)
	}
	return res, nil
}

func exchangesInc(ex []int, rank int) { ex[rank]++ }

// applyLocalControlled applies a 2x2 matrix on a local target with a local
// control mask, in place.
func applyLocalControlled(amps []complex128, t, ctrlMask int, m gate.Matrix) {
	m00, m01, m10, m11 := m.At(0, 0), m.At(0, 1), m.At(1, 0), m.At(1, 1)
	tbit := 1 << uint(t)
	for i0 := 0; i0 < len(amps); i0++ {
		if i0&tbit != 0 || i0&ctrlMask != ctrlMask {
			continue
		}
		i1 := i0 | tbit
		a0, a1 := amps[i0], amps[i1]
		amps[i0] = m00*a0 + m01*a1
		amps[i1] = m10*a0 + m11*a1
	}
}

// combinePair updates this rank's slab given the partner's slab for a gate
// whose target is the global qubit distinguishing the pair. myBit is this
// rank's value of the target bit; entries with unsatisfied local controls
// are left untouched.
func combinePair(mine, other []complex128, myBit, ctrlMask int, m gate.Matrix) {
	mb0 := m.At(myBit, 0)
	mb1 := m.At(myBit, 1)
	for o := range mine {
		if o&ctrlMask != ctrlMask {
			continue
		}
		var a0, a1 complex128
		if myBit == 0 {
			a0, a1 = mine[o], other[o]
		} else {
			a0, a1 = other[o], mine[o]
		}
		mine[o] = mb0*a0 + mb1*a1
	}
}
