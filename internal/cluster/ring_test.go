package cluster

import (
	"fmt"
	"testing"
)

func TestRingLookupStable(t *testing.T) {
	workers := []string{"http://a", "http://b", "http://c"}
	r1 := newRing(workers)
	r2 := newRing([]string{"http://c", "http://a", "http://b"}) // order must not matter
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("fp-%d", i)
		if r1.lookup(key) != r2.lookup(key) {
			t.Fatalf("key %q: lookup depends on membership order", key)
		}
	}
}

func TestRingSuccessorsDistinct(t *testing.T) {
	r := newRing([]string{"http://a", "http://b", "http://c"})
	for i := 0; i < 20; i++ {
		succ := r.successors(fmt.Sprintf("fp-%d", i), 3)
		if len(succ) != 3 {
			t.Fatalf("wanted 3 distinct successors, got %v", succ)
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("duplicate successor in %v", succ)
			}
			seen[s] = true
		}
		if succ[0] != r.lookup(fmt.Sprintf("fp-%d", i)) {
			t.Fatal("owner is not the first successor")
		}
	}
}

// TestRingConsistency pins the property the routing design leans on:
// removing one worker only remaps the keys that worker owned — every
// other key keeps its owner, so its plan/state caches stay hot.
func TestRingConsistency(t *testing.T) {
	full := newRing([]string{"http://a", "http://b", "http://c"})
	without := newRing([]string{"http://a", "http://c"})
	moved := 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("fp-%d", i)
		before := full.lookup(key)
		after := without.lookup(key)
		if before == "http://b" {
			moved++
			continue // had to move somewhere
		}
		if before != after {
			t.Fatalf("key %q moved %s → %s though its owner survived", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("suspicious: no key was owned by the removed worker")
	}
}

func TestRingDistribution(t *testing.T) {
	r := newRing([]string{"http://a", "http://b", "http://c"})
	owners := map[string]int{}
	for i := 0; i < 3000; i++ {
		owners[r.lookup(fmt.Sprintf("fp-%d", i))]++
	}
	for w, n := range owners {
		if n < 300 {
			t.Fatalf("worker %s owns only %d/3000 keys — virtual nodes not spreading load", w, n)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := newRing(nil)
	if got := r.lookup("anything"); got != "" {
		t.Fatalf("empty ring returned %q", got)
	}
	if got := r.successors("anything", 3); got != nil {
		t.Fatalf("empty ring returned successors %v", got)
	}
}
