package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"hisvsim/internal/obs"
	"hisvsim/internal/prof"
	"hisvsim/internal/service"
)

// Coordinator trace stages: a cluster job's wall clock tiles into
// planning (parse/route/split), fan-out (workers executing sub-jobs) and
// merge, mirroring the per-stage trace workers keep for their own jobs.
const (
	stagePlan   = "plan"
	stageFanout = "fanout"
	stageMerge  = "merge"
)

// Attempt statuses in the stitched trace (wire "status" field).
const (
	attemptOK     = "ok"     // delivered; worker trace/profile stitched below
	attemptLost   = "lost"   // dispatch lost (worker died/bounced); span retained unstitched
	attemptFailed = "failed" // permanent rejection
)

// cjob is one coordinator job: the fan-out of one client submission.
type cjob struct {
	id   string
	kind string
	mode string
	key  string
	// requestID is the job's cluster-wide correlation ID: taken from the
	// submitting context (the instrumented HTTP front door mints one per
	// request) or generated here, and forwarded to every sub-job dispatch
	// in X-Request-ID — one grep follows a job across the whole fleet.
	requestID string
	status    service.Status
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time
	trace     *obs.Trace
	subs      []*subjob
	result    json.RawMessage // merged wire result (the "result" field of the job body)
	done      chan struct{}
}

// subjob is one dispatched slice of a cjob, plus its attempt history for
// the trace endpoint.
type subjob struct {
	index    int
	body     []byte
	worker   string // last worker it ran on
	remoteID string
	attempts []attempt
	result   json.RawMessage
	err      error
}

// attempt is one delivery try, rendered as a span in the job trace. Each
// attempt has its own span ID ("<job>/s<sub>/a<attempt>"), sent to the
// worker as X-Parent-Span so the worker-side job pins itself under this
// exact span; after a successful attempt the coordinator fetches the
// worker's trace and profile and stitches them here.
type attempt struct {
	worker   string
	span     string // span ID propagated in X-Parent-Span
	remoteID string // worker-side job id, once accepted
	start    time.Time
	end      time.Time
	outcome  string // "ok", "retry", "backoff", "failed"
	// status classifies the attempt for the stitched trace: "ok" (worker
	// trace nested below), "lost" (the dispatch died — worker killed,
	// bounced or timed out — so there is nothing to stitch) or "failed"
	// (permanent rejection).
	status string
	wtrace *workerTrace   // stitched worker trace (ok attempts, best effort)
	wprof  *workerProfile // stitched worker kernel profile (ditto)
}

// workerTrace is the decoded worker GET /v1/jobs/{id}/trace body.
type workerTrace struct {
	ID         string      `json:"id"`
	RequestID  string      `json:"request_id,omitempty"`
	ParentSpan string      `json:"parent_span,omitempty"`
	Backend    string      `json:"backend,omitempty"`
	WallMS     float64     `json:"wall_ms"`
	Stages     []wireStage `json:"stages"`
}

// workerProfile is the decoded worker GET /v1/jobs/{id}/profile body.
type workerProfile struct {
	ID             string            `json:"id"`
	RequestID      string            `json:"request_id,omitempty"`
	ParentSpan     string            `json:"parent_span,omitempty"`
	Backend        string            `json:"backend,omitempty"`
	WallMS         float64           `json:"wall_ms"`
	WindowMS       float64           `json:"window_ms"`
	KernelMS       float64           `json:"kernel_ms"`
	UnattributedMS float64           `json:"unattributed_ms"`
	Kernels        []prof.KernelStat `json:"kernels"`
}

// Submit plans, fans out and (asynchronously) merges one client
// submission, returning the coordinator job id.
func (c *Coordinator) Submit(ctx context.Context, body []byte) (string, error) {
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return "", ErrDraining
	}
	c.seq++
	id := fmt.Sprintf("c-%d", c.seq)
	c.mu.Unlock()

	rid := obs.RequestID(ctx)
	if rid == "" {
		rid = obs.NewRequestID()
	}
	j := &cjob{
		id: id, requestID: rid, status: service.StatusQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	j.trace = obs.NewTrace(j.submitted)
	j.trace.BeginAt(stagePlan, j.submitted)

	p, err := c.planFor(body)
	if err != nil {
		c.m.jobs.With("local_error").Inc()
		return "", err
	}
	if len(c.candidates(p.key, 1)) == 0 {
		c.m.jobs.With("local_error").Inc()
		return "", ErrNoWorkers
	}
	req, _ := service.ParseRequest(body) // planFor already proved it parses
	j.kind = string(req.Kind)
	j.mode = p.mode
	j.key = p.key
	for i, sub := range p.subs {
		j.subs = append(j.subs, &subjob{index: i, body: sub})
	}

	c.mu.Lock()
	c.jobs[id] = j
	c.order = append(c.order, id)
	c.evictLocked()
	c.mu.Unlock()
	c.m.jobs.With(p.mode).Inc()

	go c.run(j)
	return id, nil
}

// evictLocked drops the oldest finished jobs beyond the retention cap.
func (c *Coordinator) evictLocked() {
	for len(c.order) > c.cfg.Retain {
		evicted := false
		for i, id := range c.order {
			j, ok := c.jobs[id]
			if !ok || j.status.Terminal() {
				delete(c.jobs, id)
				c.order = append(c.order[:i], c.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything is still running; let it finish
		}
	}
}

// run drives a job to a terminal state: fan out every sub-job (each with
// its own retry loop), then merge.
func (c *Coordinator) run(j *cjob) {
	c.mu.Lock()
	j.status = service.StatusRunning
	j.started = time.Now()
	c.mu.Unlock()
	j.trace.Begin(stageFanout)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errs := make(chan error, len(j.subs))
	for _, sub := range j.subs {
		go func(sub *subjob) { errs <- c.runSub(ctx, j, sub) }(sub)
	}
	var firstErr error
	for range j.subs {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
			cancel() // no point finishing the other slices of a failed job
		}
	}

	j.trace.Begin(stageMerge)
	var result json.RawMessage
	if firstErr == nil {
		result, firstErr = mergeJob(j)
	}

	c.mu.Lock()
	j.finished = time.Now()
	if firstErr != nil {
		j.status = service.StatusFailed
		j.err = firstErr.Error()
	} else {
		j.status = service.StatusDone
		j.result = result
	}
	c.mu.Unlock()
	j.trace.FinishAt(j.finished)
	close(j.done)
	if firstErr != nil {
		c.log.Warn("cluster job failed", "job", j.id, "mode", j.mode, "err", firstErr)
	}
}

// errPermanent wraps worker errors that retrying cannot fix (400s,
// remote job failures): the sub-job fails immediately.
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }

// runSub delivers one sub-job: pick a worker (ring owner first, then its
// ring successors), submit, long-poll the result, and on any lost or
// bounced dispatch retry elsewhere with capped exponential backoff.
func (c *Coordinator) runSub(ctx context.Context, j *cjob, sub *subjob) error {
	var lastErr error
	for att := 0; att < c.cfg.MaxAttempts; att++ {
		cands := c.candidates(j.key, att+len(j.subs)+1)
		if len(cands) == 0 {
			lastErr = ErrNoWorkers
		} else {
			// Spread slices across the owner's successor list, then rotate
			// by attempt so a retry lands on a different live worker.
			worker := cands[(sub.index+att)%len(cands)]
			a := &attempt{
				worker: worker,
				span:   fmt.Sprintf("%s/s%d/a%d", j.id, sub.index, att),
				start:  time.Now(),
			}
			res, err := c.dispatch(ctx, j, sub, a)
			if a.end.IsZero() { // failed dispatches never reached the end stamp
				a.end = time.Now()
			}
			switch {
			case err == nil:
				a.outcome, a.status = "ok", attemptOK
				c.recordAttempt(j, sub, a)
				sub.result = res
				c.m.subjobs.With(subjobOK).Inc()
				return nil
			case errors.As(err, &errPermanent{}):
				a.outcome, a.status = "failed", attemptFailed
				c.recordAttempt(j, sub, a)
				c.m.subjobs.With(subjobFailed).Inc()
				return err
			default:
				// The dispatch was lost (worker died, bounced or timed
				// out): the attempt span stays in the trace, unstitched and
				// marked lost, and the sub-job re-dispatches elsewhere.
				a.outcome, a.status = "retry", attemptLost
				c.recordAttempt(j, sub, a)
				lastErr = err
				c.m.subjobs.With(subjobRetried).Inc()
				c.m.retries.Inc()
				c.log.Info("cluster sub-job retry", "job", j.id, "sub", sub.index,
					"worker", worker, "attempt", att, "span", a.span, "err", err)
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.backoffDelay(att)):
		}
	}
	c.m.subjobs.With(subjobFailed).Inc()
	return fmt.Errorf("cluster: sub-job %d exhausted %d attempts: %w", sub.index, c.cfg.MaxAttempts, lastErr)
}

func (c *Coordinator) recordAttempt(j *cjob, sub *subjob, a *attempt) {
	c.mu.Lock()
	sub.worker = a.worker
	sub.attempts = append(sub.attempts, *a)
	c.mu.Unlock()
}

// dispatch submits a sub-job body to one worker and long-polls it to a
// terminal result, then (best effort) fetches the worker's trace and
// kernel profile for stitching. Errors are retryable unless wrapped
// errPermanent.
func (c *Coordinator) dispatch(ctx context.Context, j *cjob, sub *subjob, a *attempt) (json.RawMessage, error) {
	id, err := c.submitTo(ctx, sub.body, a.worker, j.requestID, a.span)
	if err != nil {
		return nil, err
	}
	a.remoteID = id
	c.mu.Lock()
	sub.remoteID = id
	c.mu.Unlock()
	res, err := c.pollResult(ctx, a.worker, id)
	if err != nil {
		return nil, err
	}
	// The attempt window closes when the result lands; the stitch fetch is
	// post-hoc observability and must not pad the span it describes.
	a.end = time.Now()
	c.stitch(ctx, a)
	return res, nil
}

// stitch pulls the finished worker job's trace and profile and attaches
// them to the attempt. Best effort: a worker that dies between finishing
// the job and the fetch loses its sub-trace, not the job.
func (c *Coordinator) stitch(ctx context.Context, a *attempt) {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	var wt workerTrace
	if err := c.getJSON(ctx, fmt.Sprintf("%s/v1/jobs/%s/trace", a.worker, a.remoteID), &wt); err == nil {
		a.wtrace = &wt
	} else {
		c.log.Warn("cluster trace stitch failed", "worker", a.worker, "remote", a.remoteID, "err", err)
	}
	var wp workerProfile
	if err := c.getJSON(ctx, fmt.Sprintf("%s/v1/jobs/%s/profile", a.worker, a.remoteID), &wp); err == nil {
		a.wprof = &wp
	} else {
		c.log.Warn("cluster profile stitch failed", "worker", a.worker, "remote", a.remoteID, "err", err)
	}
}

// getJSON fetches one worker URL into out.
func (c *Coordinator) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(out)
}

// submitTo POSTs the body to one worker, honoring admission control: a
// 429 backs the worker off for its Retry-After horizon and reads as a
// retryable loss, a 400 is permanent (retrying the same bytes cannot
// help), and 5xx/transport errors are retryable. The job's request ID and
// the attempt span ride along as X-Request-ID / X-Parent-Span, so the
// worker's logs, job record and trace all correlate with this dispatch.
func (c *Coordinator) submitTo(ctx context.Context, body []byte, worker, requestID, span string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if requestID != "" {
		req.Header.Set("X-Request-ID", requestID)
	}
	if span != "" {
		req.Header.Set(obs.ParentSpanHeader, span)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return "", fmt.Errorf("submit to %s: %w", worker, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusAccepted:
		var out struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.ID == "" {
			return "", fmt.Errorf("submit to %s: bad accept body: %v", worker, err)
		}
		return out.ID, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		d := retryAfter(resp)
		c.backoffWorker(worker, d)
		return "", fmt.Errorf("submit to %s: queue full (retry after %s)", worker, d)
	case resp.StatusCode == http.StatusBadRequest:
		return "", errPermanent{fmt.Errorf("submit to %s: %s", worker, readError(resp.Body))}
	default:
		return "", fmt.Errorf("submit to %s: HTTP %d: %s", worker, resp.StatusCode, readError(resp.Body))
	}
}

// pollResult long-polls one worker job to a terminal state. Transport
// errors and 5xx/404 mean the worker (or the job) is gone — the sub-job
// is lost and the caller re-dispatches. A remote "failed" status is
// permanent: the job itself is bad, not the worker.
func (c *Coordinator) pollResult(ctx context.Context, worker, id string) (json.RawMessage, error) {
	url := fmt.Sprintf("%s/v1/jobs/%s/result?wait=%s", worker, id, c.cfg.PollWait)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return nil, fmt.Errorf("poll %s on %s: %w", id, worker, err)
		}
		raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		switch {
		case rerr != nil:
			return nil, fmt.Errorf("poll %s on %s: %w", id, worker, rerr)
		case resp.StatusCode == http.StatusAccepted:
			continue // still running: re-arm the long poll
		case resp.StatusCode != http.StatusOK:
			return nil, fmt.Errorf("poll %s on %s: HTTP %d", id, worker, resp.StatusCode)
		}
		var job struct {
			Status string          `json:"status"`
			Error  string          `json:"error,omitempty"`
			Result json.RawMessage `json:"result,omitempty"`
		}
		if err := json.Unmarshal(raw, &job); err != nil {
			return nil, fmt.Errorf("poll %s on %s: %w", id, worker, err)
		}
		switch service.Status(job.Status) {
		case service.StatusDone:
			return job.Result, nil
		case service.StatusFailed:
			return nil, errPermanent{fmt.Errorf("worker %s job %s failed: %s", worker, id, job.Error)}
		case service.StatusCanceled:
			// A drain cancels queued jobs; treat as a lost dispatch.
			return nil, fmt.Errorf("worker %s canceled job %s", worker, id)
		default:
			continue
		}
	}
}

func readError(r io.Reader) string {
	raw, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(raw)
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (c *Coordinator) Wait(ctx context.Context, id string) error {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Coordinator) job(id string) (*cjob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}
