package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"hisvsim/internal/obs"
	"hisvsim/internal/service"
)

// Coordinator trace stages: a cluster job's wall clock tiles into
// planning (parse/route/split), fan-out (workers executing sub-jobs) and
// merge, mirroring the per-stage trace workers keep for their own jobs.
const (
	stagePlan   = "plan"
	stageFanout = "fanout"
	stageMerge  = "merge"
)

// cjob is one coordinator job: the fan-out of one client submission.
type cjob struct {
	id        string
	kind      string
	mode      string
	key       string
	status    service.Status
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time
	trace     *obs.Trace
	subs      []*subjob
	result    json.RawMessage // merged wire result (the "result" field of the job body)
	done      chan struct{}
}

// subjob is one dispatched slice of a cjob, plus its attempt history for
// the trace endpoint.
type subjob struct {
	index    int
	body     []byte
	worker   string // last worker it ran on
	remoteID string
	attempts []attempt
	result   json.RawMessage
	err      error
}

// attempt is one delivery try, rendered as a span in the job trace.
type attempt struct {
	worker  string
	start   time.Time
	end     time.Time
	outcome string // "ok", "retry", "backoff", "failed"
}

// Submit plans, fans out and (asynchronously) merges one client
// submission, returning the coordinator job id.
func (c *Coordinator) Submit(ctx context.Context, body []byte) (string, error) {
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return "", ErrDraining
	}
	c.seq++
	id := fmt.Sprintf("c-%d", c.seq)
	c.mu.Unlock()

	j := &cjob{
		id: id, status: service.StatusQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	j.trace = obs.NewTrace(j.submitted)
	j.trace.BeginAt(stagePlan, j.submitted)

	p, err := c.planFor(body)
	if err != nil {
		c.m.jobs.With("local_error").Inc()
		return "", err
	}
	if len(c.candidates(p.key, 1)) == 0 {
		c.m.jobs.With("local_error").Inc()
		return "", ErrNoWorkers
	}
	req, _ := service.ParseRequest(body) // planFor already proved it parses
	j.kind = string(req.Kind)
	j.mode = p.mode
	j.key = p.key
	for i, sub := range p.subs {
		j.subs = append(j.subs, &subjob{index: i, body: sub})
	}

	c.mu.Lock()
	c.jobs[id] = j
	c.order = append(c.order, id)
	c.evictLocked()
	c.mu.Unlock()
	c.m.jobs.With(p.mode).Inc()

	go c.run(j)
	return id, nil
}

// evictLocked drops the oldest finished jobs beyond the retention cap.
func (c *Coordinator) evictLocked() {
	for len(c.order) > c.cfg.Retain {
		evicted := false
		for i, id := range c.order {
			j, ok := c.jobs[id]
			if !ok || j.status.Terminal() {
				delete(c.jobs, id)
				c.order = append(c.order[:i], c.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything is still running; let it finish
		}
	}
}

// run drives a job to a terminal state: fan out every sub-job (each with
// its own retry loop), then merge.
func (c *Coordinator) run(j *cjob) {
	c.mu.Lock()
	j.status = service.StatusRunning
	j.started = time.Now()
	c.mu.Unlock()
	j.trace.Begin(stageFanout)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errs := make(chan error, len(j.subs))
	for _, sub := range j.subs {
		go func(sub *subjob) { errs <- c.runSub(ctx, j, sub) }(sub)
	}
	var firstErr error
	for range j.subs {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
			cancel() // no point finishing the other slices of a failed job
		}
	}

	j.trace.Begin(stageMerge)
	var result json.RawMessage
	if firstErr == nil {
		result, firstErr = mergeJob(j)
	}

	c.mu.Lock()
	j.finished = time.Now()
	if firstErr != nil {
		j.status = service.StatusFailed
		j.err = firstErr.Error()
	} else {
		j.status = service.StatusDone
		j.result = result
	}
	c.mu.Unlock()
	j.trace.FinishAt(j.finished)
	close(j.done)
	if firstErr != nil {
		c.log.Warn("cluster job failed", "job", j.id, "mode", j.mode, "err", firstErr)
	}
}

// errPermanent wraps worker errors that retrying cannot fix (400s,
// remote job failures): the sub-job fails immediately.
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }

// runSub delivers one sub-job: pick a worker (ring owner first, then its
// ring successors), submit, long-poll the result, and on any lost or
// bounced dispatch retry elsewhere with capped exponential backoff.
func (c *Coordinator) runSub(ctx context.Context, j *cjob, sub *subjob) error {
	var lastErr error
	for att := 0; att < c.cfg.MaxAttempts; att++ {
		cands := c.candidates(j.key, att+len(j.subs)+1)
		if len(cands) == 0 {
			lastErr = ErrNoWorkers
		} else {
			// Spread slices across the owner's successor list, then rotate
			// by attempt so a retry lands on a different live worker.
			worker := cands[(sub.index+att)%len(cands)]
			a := attempt{worker: worker, start: time.Now()}
			res, err := c.dispatch(ctx, sub, worker)
			a.end = time.Now()
			switch {
			case err == nil:
				a.outcome = "ok"
				c.recordAttempt(j, sub, a)
				sub.result = res
				c.m.subjobs.With(subjobOK).Inc()
				return nil
			case errors.As(err, &errPermanent{}):
				a.outcome = "failed"
				c.recordAttempt(j, sub, a)
				c.m.subjobs.With(subjobFailed).Inc()
				return err
			default:
				a.outcome = "retry"
				c.recordAttempt(j, sub, a)
				lastErr = err
				c.m.subjobs.With(subjobRetried).Inc()
				c.m.retries.Inc()
				c.log.Info("cluster sub-job retry", "job", j.id, "sub", sub.index,
					"worker", worker, "attempt", att, "err", err)
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.backoffDelay(att)):
		}
	}
	c.m.subjobs.With(subjobFailed).Inc()
	return fmt.Errorf("cluster: sub-job %d exhausted %d attempts: %w", sub.index, c.cfg.MaxAttempts, lastErr)
}

func (c *Coordinator) recordAttempt(j *cjob, sub *subjob, a attempt) {
	c.mu.Lock()
	sub.worker = a.worker
	sub.attempts = append(sub.attempts, a)
	c.mu.Unlock()
}

// dispatch submits a sub-job body to one worker and long-polls it to a
// terminal result. Errors are retryable unless wrapped errPermanent.
func (c *Coordinator) dispatch(ctx context.Context, sub *subjob, worker string) (json.RawMessage, error) {
	id, err := c.submitTo(ctx, sub.body, worker)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	sub.remoteID = id
	c.mu.Unlock()
	return c.pollResult(ctx, worker, id)
}

// submitTo POSTs the body to one worker, honoring admission control: a
// 429 backs the worker off for its Retry-After horizon and reads as a
// retryable loss, a 400 is permanent (retrying the same bytes cannot
// help), and 5xx/transport errors are retryable.
func (c *Coordinator) submitTo(ctx context.Context, body []byte, worker string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return "", fmt.Errorf("submit to %s: %w", worker, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusAccepted:
		var out struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.ID == "" {
			return "", fmt.Errorf("submit to %s: bad accept body: %v", worker, err)
		}
		return out.ID, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		d := retryAfter(resp)
		c.backoffWorker(worker, d)
		return "", fmt.Errorf("submit to %s: queue full (retry after %s)", worker, d)
	case resp.StatusCode == http.StatusBadRequest:
		return "", errPermanent{fmt.Errorf("submit to %s: %s", worker, readError(resp.Body))}
	default:
		return "", fmt.Errorf("submit to %s: HTTP %d: %s", worker, resp.StatusCode, readError(resp.Body))
	}
}

// pollResult long-polls one worker job to a terminal state. Transport
// errors and 5xx/404 mean the worker (or the job) is gone — the sub-job
// is lost and the caller re-dispatches. A remote "failed" status is
// permanent: the job itself is bad, not the worker.
func (c *Coordinator) pollResult(ctx context.Context, worker, id string) (json.RawMessage, error) {
	url := fmt.Sprintf("%s/v1/jobs/%s/result?wait=%s", worker, id, c.cfg.PollWait)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return nil, fmt.Errorf("poll %s on %s: %w", id, worker, err)
		}
		raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		switch {
		case rerr != nil:
			return nil, fmt.Errorf("poll %s on %s: %w", id, worker, rerr)
		case resp.StatusCode == http.StatusAccepted:
			continue // still running: re-arm the long poll
		case resp.StatusCode != http.StatusOK:
			return nil, fmt.Errorf("poll %s on %s: HTTP %d", id, worker, resp.StatusCode)
		}
		var job struct {
			Status string          `json:"status"`
			Error  string          `json:"error,omitempty"`
			Result json.RawMessage `json:"result,omitempty"`
		}
		if err := json.Unmarshal(raw, &job); err != nil {
			return nil, fmt.Errorf("poll %s on %s: %w", id, worker, err)
		}
		switch service.Status(job.Status) {
		case service.StatusDone:
			return job.Result, nil
		case service.StatusFailed:
			return nil, errPermanent{fmt.Errorf("worker %s job %s failed: %s", worker, id, job.Error)}
		case service.StatusCanceled:
			// A drain cancels queued jobs; treat as a lost dispatch.
			return nil, fmt.Errorf("worker %s canceled job %s", worker, id)
		default:
			continue
		}
	}
}

func readError(r io.Reader) string {
	raw, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(raw)
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (c *Coordinator) Wait(ctx context.Context, id string) error {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Coordinator) job(id string) (*cjob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}
