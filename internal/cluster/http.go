package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"hisvsim/internal/obs"
	"hisvsim/internal/prof"
	"hisvsim/internal/service"
)

// NewHandler exposes the coordinator over the same HTTP/JSON surface as a
// worker, so clients (and the CLI) need no cluster awareness:
//
//	POST   /v1/jobs              submit → routed or fanned out  → 202 {id, status}
//	GET    /v1/jobs/{id}         job snapshot (+ merged result when done)
//	GET    /v1/jobs/{id}/result  long-poll for the merged result (?wait=30s)
//	GET    /v1/jobs/{id}/trace   stitched cluster trace: plan/fanout/merge stages,
//	                             per-sub-job attempt spans with nested worker traces,
//	                             and the whole thing as one tree
//	GET    /v1/jobs/{id}/profile cluster-wide kernel attribution merged from the
//	                             workers' per-sub-job profiles
//	GET    /v1/cluster           ring membership (with probe health) and job listings
//	GET    /metrics              Prometheus text exposition (cluster_* series)
//	GET    /metrics/federate     on-demand scrape of every live worker's /metrics,
//	                             re-exposed with a worker label plus cluster rollups
//	GET    /healthz, /readyz     liveness / drain-aware readiness
func NewHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) { handleSubmit(c, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) { handleJob(c, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) { handleResult(c, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) { handleTrace(c, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}/profile", func(w http.ResponseWriter, r *http.Request) { handleProfile(c, w, r) })
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) { handleCluster(c, w, r) })
	mux.HandleFunc("GET /metrics/federate", func(w http.ResponseWriter, r *http.Request) { handleFederate(c, w, r) })
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if c.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
	})
	mux.Handle("GET /metrics", c.Metrics().Handler())
	return mux
}

// wireJob mirrors the worker job body; Result is the merged (or
// passed-through) worker result, already in wire form.
type wireJob struct {
	ID        string          `json:"id"`
	Kind      string          `json:"kind"`
	Status    string          `json:"status"`
	Mode      string          `json:"mode,omitempty"`
	Error     string          `json:"error,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

func handleSubmit(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Honor an incoming X-Request-ID even when the handler is mounted
	// without obs.InstrumentHTTP (embedded use, tests) so the client's
	// correlation ID still reaches every sub-job.
	ctx := r.Context()
	if obs.RequestID(ctx) == "" {
		if rid := r.Header.Get("X-Request-ID"); rid != "" {
			ctx = obs.WithRequestID(ctx, rid)
		}
	}
	id, err := c.Submit(ctx, body)
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrNoWorkers):
		// The fleet may come back; tell the client when to re-try.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "status": string(service.StatusQueued)})
}

func toWireJob(j *cjob) wireJob {
	out := wireJob{
		ID: j.id, Kind: j.kind, Status: string(j.status), Mode: j.mode,
		Error: j.err, Submitted: j.submitted, Result: j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		out.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		out.Finished = &t
	}
	return out
}

func handleJob(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	c.mu.Lock()
	out := toWireJob(j)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleResult long-polls like the worker endpoint: 200 with the merged
// result on completion, 202 with the snapshot when the wait expires
// first.
func handleResult(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wait := 30 * time.Second
	if raw := r.URL.Query().Get("wait"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait %q: %w", raw, err))
			return
		}
		wait = min(max(d, 0), 5*time.Minute)
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	err := c.Wait(ctx, id)
	if errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, err)
		return
	}
	j, ok := c.job(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	c.mu.Lock()
	out := toWireJob(j)
	c.mu.Unlock()
	code := http.StatusOK
	if !service.Status(out.Status).Terminal() {
		code = http.StatusAccepted
	}
	writeJSON(w, code, out)
}

// wireTrace is the coordinator trace body: the plan/fanout/merge stages
// tile the submitted→finished window exactly like a worker job's trace,
// the subjobs array breaks the fan-out down into per-attempt spans
// (worker, offset, duration, outcome) with each successful attempt
// carrying the stitched worker trace, and tree renders the same data as
// one nested span tree (job → stages → sub-jobs → attempts → worker
// stages).
type wireTrace struct {
	ID        string       `json:"id"`
	Kind      string       `json:"kind"`
	Status    string       `json:"status"`
	Mode      string       `json:"mode,omitempty"`
	RequestID string       `json:"request_id,omitempty"`
	WallMS    float64      `json:"wall_ms"`
	Stages    []wireStage  `json:"stages"`
	SubJobs   []wireSubJob `json:"subjobs,omitempty"`
	Tree      *obs.Node    `json:"tree,omitempty"`
}

type wireStage struct {
	Stage      string  `json:"stage"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
}

type wireSubJob struct {
	Index    int              `json:"index"`
	Worker   string           `json:"worker,omitempty"`
	RemoteID string           `json:"remote_id,omitempty"`
	Attempts []wireSubAttempt `json:"attempts,omitempty"`
}

type wireSubAttempt struct {
	Worker     string  `json:"worker"`
	Span       string  `json:"span,omitempty"`
	RemoteID   string  `json:"remote_id,omitempty"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
	Outcome    string  `json:"outcome"`
	// Status is the stitched-trace classification: "ok" (WorkerTrace
	// nested below), "lost" (dispatch died; span retained, nothing to
	// stitch) or "failed" (permanent rejection).
	Status string `json:"status,omitempty"`
	// WorkerTrace is the worker-side trace of the job this attempt ran,
	// fetched after completion. Its stage offsets are relative to the
	// worker's own submit instant (worker clocks are not comparable to the
	// coordinator's); its parent_span echoes this attempt's span.
	WorkerTrace *workerTrace `json:"worker_trace,omitempty"`
}

func handleTrace(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	c.mu.Lock()
	wall := time.Since(j.submitted)
	if !j.finished.IsZero() {
		wall = j.finished.Sub(j.submitted)
	}
	out := wireTrace{
		ID: j.id, Kind: j.kind, Status: string(j.status), Mode: j.mode,
		RequestID: j.requestID,
		WallMS:    durationMS(wall),
	}
	for _, sub := range j.subs {
		ws := wireSubJob{Index: sub.index, Worker: sub.worker, RemoteID: sub.remoteID}
		for _, a := range sub.attempts {
			ws.Attempts = append(ws.Attempts, wireSubAttempt{
				Worker:      a.worker,
				Span:        a.span,
				RemoteID:    a.remoteID,
				StartMS:     durationMS(a.start.Sub(j.submitted)),
				DurationMS:  durationMS(a.end.Sub(a.start)),
				Outcome:     a.outcome,
				Status:      a.status,
				WorkerTrace: a.wtrace,
			})
		}
		out.SubJobs = append(out.SubJobs, ws)
	}
	c.mu.Unlock()
	for _, sp := range j.trace.Spans() {
		out.Stages = append(out.Stages, wireStage{
			Stage: sp.Name, StartMS: durationMS(sp.Start), DurationMS: durationMS(sp.Dur),
		})
	}
	out.Tree = traceTree(&out)
	writeJSON(w, http.StatusOK, out)
}

// traceTree folds a rendered wireTrace into one nested span tree. Every
// node's start_ms is relative to its parent's window: coordinator stages
// and sub-jobs to the job's submit, attempts to their sub-job's first
// dispatch, worker stages to the worker job's own submit. Sequential
// levels (stages under the job, worker stages under an attempt) tile
// their parent; concurrent levels (sub-jobs under the fan-out) overlap.
func traceTree(t *wireTrace) *obs.Node {
	root := &obs.Node{
		Name: "job", SpanID: t.ID, Status: t.Status, DurationMS: t.WallMS,
	}
	var fanout *obs.Node
	for _, st := range t.Stages {
		n := &obs.Node{Name: st.Stage, StartMS: st.StartMS, DurationMS: st.DurationMS}
		if st.Stage == stageFanout {
			fanout = n
		}
		root.Children = append(root.Children, n)
	}
	if fanout == nil && len(root.Children) > 0 {
		fanout = root.Children[len(root.Children)-1] // live job: attach to the open stage
	}
	for _, sub := range t.SubJobs {
		if len(sub.Attempts) == 0 || fanout == nil {
			continue
		}
		first, last := sub.Attempts[0], sub.Attempts[len(sub.Attempts)-1]
		sn := &obs.Node{
			Name:       fmt.Sprintf("sub%d", sub.Index),
			SpanID:     fmt.Sprintf("%s/s%d", t.ID, sub.Index),
			StartMS:    first.StartMS - fanout.StartMS,
			DurationMS: (last.StartMS + last.DurationMS) - first.StartMS,
		}
		for _, a := range sub.Attempts {
			an := &obs.Node{
				Name:       "attempt " + a.Worker,
				SpanID:     a.Span,
				Status:     a.Status,
				StartMS:    a.StartMS - first.StartMS,
				DurationMS: a.DurationMS,
			}
			if a.WorkerTrace != nil {
				for _, st := range a.WorkerTrace.Stages {
					an.Children = append(an.Children, &obs.Node{
						Name: st.Stage, StartMS: st.StartMS, DurationMS: st.DurationMS,
					})
				}
			}
			sn.Children = append(sn.Children, an)
		}
		fanout.Children = append(fanout.Children, sn)
	}
	return root
}

// wireClusterProfile is the coordinator GET /v1/jobs/{id}/profile body:
// the workers' per-sub-job kernel profiles merged into one cluster-wide
// attribution. Rows with the same (kernel, width) sum their calls, amps,
// bytes, allocs and seconds across workers; gbps is recomputed from the
// merged totals. window_ms / kernel_ms / unattributed_ms are the summed
// worker numbers (concurrent sub-jobs sum wall windows, so window_ms can
// exceed the coordinator job's wall_ms — same convention as concurrent
// trajectories within one worker).
type wireClusterProfile struct {
	ID             string              `json:"id"`
	Kind           string              `json:"kind"`
	Status         string              `json:"status"`
	Mode           string              `json:"mode,omitempty"`
	RequestID      string              `json:"request_id,omitempty"`
	WallMS         float64             `json:"wall_ms"`
	WindowMS       float64             `json:"window_ms"`
	KernelMS       float64             `json:"kernel_ms"`
	UnattributedMS float64             `json:"unattributed_ms"`
	Kernels        []prof.KernelStat   `json:"kernels"`
	Workers        []wireWorkerProfile `json:"workers,omitempty"`
}

// wireWorkerProfile is one stitched sub-job profile's contribution.
type wireWorkerProfile struct {
	Worker   string  `json:"worker"`
	RemoteID string  `json:"remote_id,omitempty"`
	Sub      int     `json:"sub"`
	KernelMS float64 `json:"kernel_ms"`
	WindowMS float64 `json:"window_ms"`
}

func handleProfile(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	c.mu.Lock()
	wall := time.Since(j.submitted)
	if !j.finished.IsZero() {
		wall = j.finished.Sub(j.submitted)
	}
	out := wireClusterProfile{
		ID: j.id, Kind: j.kind, Status: string(j.status), Mode: j.mode,
		RequestID: j.requestID,
		WallMS:    durationMS(wall),
		Kernels:   []prof.KernelStat{},
	}
	merged := map[[2]any]*prof.KernelStat{}
	for _, sub := range j.subs {
		for _, a := range sub.attempts {
			if a.status != attemptOK || a.wprof == nil {
				continue
			}
			out.WindowMS += a.wprof.WindowMS
			out.KernelMS += a.wprof.KernelMS
			out.UnattributedMS += a.wprof.UnattributedMS
			out.Workers = append(out.Workers, wireWorkerProfile{
				Worker: a.worker, RemoteID: a.remoteID, Sub: sub.index,
				KernelMS: a.wprof.KernelMS, WindowMS: a.wprof.WindowMS,
			})
			for _, k := range a.wprof.Kernels {
				key := [2]any{k.Kernel, k.Width}
				m, ok := merged[key]
				if !ok {
					m = &prof.KernelStat{Kernel: k.Kernel, Width: k.Width}
					merged[key] = m
				}
				m.Calls += k.Calls
				m.Amps += k.Amps
				m.Bytes += k.Bytes
				m.Allocs += k.Allocs
				m.Seconds += k.Seconds
			}
		}
	}
	c.mu.Unlock()
	for _, m := range merged {
		if m.Seconds > 0 {
			m.GBps = float64(m.Bytes) / m.Seconds / 1e9
		}
		out.Kernels = append(out.Kernels, *m)
	}
	sort.Slice(out.Kernels, func(i, j int) bool {
		if out.Kernels[i].Kernel != out.Kernels[j].Kernel {
			return out.Kernels[i].Kernel < out.Kernels[j].Kernel
		}
		return out.Kernels[i].Width < out.Kernels[j].Width
	})
	writeJSON(w, http.StatusOK, out)
}

// wireCluster is the GET /v1/cluster body: live membership with per-worker
// probe health, the retained-job count, and a most-recent-first job
// listing whose sub-job rows echo the propagated request ID.
type wireCluster struct {
	Workers []wireWorker     `json:"workers"`
	Jobs    int              `json:"jobs"`
	Recent  []wireClusterJob `json:"recent_jobs,omitempty"`
}

type wireWorker struct {
	URL   string `json:"url"`
	State string `json:"state"`
	Fails int    `json:"fails,omitempty"` // deprecated: same as consecutive_failures
	// LastProbeMS is the latest /readyz probe round trip; together with
	// ConsecutiveFailures and BackoffUntil it says *why* a worker is
	// draining, dead or being avoided, not just that it is.
	LastProbeMS         float64    `json:"last_probe_ms"`
	ConsecutiveFailures int        `json:"consecutive_failures"`
	BackoffUntil        *time.Time `json:"backoff_until,omitempty"` // admission-control horizon, when in the future
}

// wireClusterJob is one row of the /v1/cluster job listing.
type wireClusterJob struct {
	ID        string              `json:"id"`
	Kind      string              `json:"kind"`
	Mode      string              `json:"mode,omitempty"`
	Status    string              `json:"status"`
	RequestID string              `json:"request_id,omitempty"`
	SubJobs   []wireClusterSubJob `json:"subjobs,omitempty"`
}

// wireClusterSubJob is one dispatched slice: where it ran, its worker-side
// job id and the request ID the coordinator forwarded with it.
type wireClusterSubJob struct {
	Index     int    `json:"index"`
	Worker    string `json:"worker,omitempty"`
	RemoteID  string `json:"remote_id,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// clusterListingCap bounds the /v1/cluster job listing (newest first).
const clusterListingCap = 32

func handleCluster(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	c.mu.Lock()
	out := wireCluster{Jobs: len(c.jobs)}
	for _, wk := range c.workers {
		ww := wireWorker{
			URL: wk.url, State: wk.state, Fails: wk.fails,
			LastProbeMS:         durationMS(wk.lastProbe),
			ConsecutiveFailures: wk.fails,
		}
		if wk.backoffUntil.After(now) {
			t := wk.backoffUntil
			ww.BackoffUntil = &t
		}
		out.Workers = append(out.Workers, ww)
	}
	for i := len(c.order) - 1; i >= 0 && len(out.Recent) < clusterListingCap; i-- {
		j, ok := c.jobs[c.order[i]]
		if !ok {
			continue
		}
		row := wireClusterJob{
			ID: j.id, Kind: j.kind, Mode: j.mode,
			Status: string(j.status), RequestID: j.requestID,
		}
		for _, sub := range j.subs {
			row.SubJobs = append(row.SubJobs, wireClusterSubJob{
				Index: sub.index, Worker: sub.worker,
				RemoteID: sub.remoteID, RequestID: j.requestID,
			})
		}
		out.Recent = append(out.Recent, row)
	}
	c.mu.Unlock()
	sort.Slice(out.Workers, func(i, j int) bool { return out.Workers[i].URL < out.Workers[j].URL })
	writeJSON(w, http.StatusOK, out)
}

func durationMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
