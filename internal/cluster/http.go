package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"hisvsim/internal/service"
)

// NewHandler exposes the coordinator over the same HTTP/JSON surface as a
// worker, so clients (and the CLI) need no cluster awareness:
//
//	POST   /v1/jobs             submit → routed or fanned out  → 202 {id, status}
//	GET    /v1/jobs/{id}        job snapshot (+ merged result when done)
//	GET    /v1/jobs/{id}/result long-poll for the merged result (?wait=30s)
//	GET    /v1/jobs/{id}/trace  plan/fanout/merge stages + per-sub-job attempt spans
//	GET    /v1/cluster          ring membership and job tallies
//	GET    /metrics             Prometheus text exposition (cluster_* series)
//	GET    /healthz, /readyz    liveness / drain-aware readiness
func NewHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) { handleSubmit(c, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) { handleJob(c, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) { handleResult(c, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) { handleTrace(c, w, r) })
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) { handleCluster(c, w, r) })
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if c.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
	})
	mux.Handle("GET /metrics", c.Metrics().Handler())
	return mux
}

// wireJob mirrors the worker job body; Result is the merged (or
// passed-through) worker result, already in wire form.
type wireJob struct {
	ID        string          `json:"id"`
	Kind      string          `json:"kind"`
	Status    string          `json:"status"`
	Mode      string          `json:"mode,omitempty"`
	Error     string          `json:"error,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

func handleSubmit(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := c.Submit(r.Context(), body)
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrNoWorkers):
		// The fleet may come back; tell the client when to re-try.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "status": string(service.StatusQueued)})
}

func toWireJob(j *cjob) wireJob {
	out := wireJob{
		ID: j.id, Kind: j.kind, Status: string(j.status), Mode: j.mode,
		Error: j.err, Submitted: j.submitted, Result: j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		out.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		out.Finished = &t
	}
	return out
}

func handleJob(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	c.mu.Lock()
	out := toWireJob(j)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleResult long-polls like the worker endpoint: 200 with the merged
// result on completion, 202 with the snapshot when the wait expires
// first.
func handleResult(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wait := 30 * time.Second
	if raw := r.URL.Query().Get("wait"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait %q: %w", raw, err))
			return
		}
		wait = min(max(d, 0), 5*time.Minute)
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	err := c.Wait(ctx, id)
	if errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, err)
		return
	}
	j, ok := c.job(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	c.mu.Lock()
	out := toWireJob(j)
	c.mu.Unlock()
	code := http.StatusOK
	if !service.Status(out.Status).Terminal() {
		code = http.StatusAccepted
	}
	writeJSON(w, code, out)
}

// wireTrace is the coordinator trace body: the plan/fanout/merge stages
// tile the submitted→finished window exactly like a worker job's trace,
// and the subjobs array breaks the fan-out down into per-attempt spans
// (worker, offset, duration, outcome).
type wireTrace struct {
	ID      string       `json:"id"`
	Kind    string       `json:"kind"`
	Status  string       `json:"status"`
	Mode    string       `json:"mode,omitempty"`
	WallMS  float64      `json:"wall_ms"`
	Stages  []wireStage  `json:"stages"`
	SubJobs []wireSubJob `json:"subjobs,omitempty"`
}

type wireStage struct {
	Stage      string  `json:"stage"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
}

type wireSubJob struct {
	Index    int              `json:"index"`
	Worker   string           `json:"worker,omitempty"`
	RemoteID string           `json:"remote_id,omitempty"`
	Attempts []wireSubAttempt `json:"attempts,omitempty"`
}

type wireSubAttempt struct {
	Worker     string  `json:"worker"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
	Outcome    string  `json:"outcome"`
}

func handleTrace(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	c.mu.Lock()
	wall := time.Since(j.submitted)
	if !j.finished.IsZero() {
		wall = j.finished.Sub(j.submitted)
	}
	out := wireTrace{
		ID: j.id, Kind: j.kind, Status: string(j.status), Mode: j.mode,
		WallMS: durationMS(wall),
	}
	for _, sub := range j.subs {
		ws := wireSubJob{Index: sub.index, Worker: sub.worker, RemoteID: sub.remoteID}
		for _, a := range sub.attempts {
			ws.Attempts = append(ws.Attempts, wireSubAttempt{
				Worker:     a.worker,
				StartMS:    durationMS(a.start.Sub(j.submitted)),
				DurationMS: durationMS(a.end.Sub(a.start)),
				Outcome:    a.outcome,
			})
		}
		out.SubJobs = append(out.SubJobs, ws)
	}
	c.mu.Unlock()
	for _, sp := range j.trace.Spans() {
		out.Stages = append(out.Stages, wireStage{
			Stage: sp.Name, StartMS: durationMS(sp.Start), DurationMS: durationMS(sp.Dur),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// wireCluster is the GET /v1/cluster body: live membership and tallies.
type wireCluster struct {
	Workers []wireWorker `json:"workers"`
	Jobs    int          `json:"jobs"`
}

type wireWorker struct {
	URL   string `json:"url"`
	State string `json:"state"`
	Fails int    `json:"fails,omitempty"`
}

func handleCluster(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	out := wireCluster{Jobs: len(c.jobs)}
	for _, wk := range c.workers {
		out.Workers = append(out.Workers, wireWorker{URL: wk.url, State: wk.state, Fails: wk.fails})
	}
	c.mu.Unlock()
	sort.Slice(out.Workers, func(i, j int) bool { return out.Workers[i].URL < out.Workers[j].URL })
	writeJSON(w, http.StatusOK, out)
}

func durationMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
