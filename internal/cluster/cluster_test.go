package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"hisvsim/internal/service"
)

// startWorker spins up one real in-process hisvsimd worker.
func startWorker(t *testing.T) *httptest.Server {
	t.Helper()
	s := service.New(service.Config{Workers: 2})
	srv := httptest.NewServer(service.NewHandler(s))
	t.Cleanup(func() { srv.Close(); s.Close() })
	return srv
}

// startCoordinator fronts the given worker URLs with test-speed timing.
func startCoordinator(t *testing.T, urls []string, mutate func(*Config)) (*Coordinator, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Workers:           urls,
		HealthEvery:       200 * time.Millisecond,
		RetryBase:         50 * time.Millisecond,
		RetryCap:          300 * time.Millisecond,
		PollWait:          5 * time.Second,
		SplitTrajectories: 64,
		SplitSweepPoints:  10,
		MaxSubJobs:        3,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(c))
	t.Cleanup(func() { srv.Close(); c.Close() })
	return c, srv
}

// submitAndWait drives one job to completion against any server exposing
// the /v1/jobs surface (a worker or a coordinator) and returns the
// decoded result object.
func submitAndWait(t *testing.T, base, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	acc := decodeJSON(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, acc)
	}
	id := acc["id"].(string)
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/result?wait=10s", base, id))
		if err != nil {
			t.Fatal(err)
		}
		job := decodeJSON(t, resp)
		switch resp.StatusCode {
		case http.StatusOK:
			if job["status"] != "done" {
				t.Fatalf("job %s finished %v: %v", id, job["status"], job["error"])
			}
			return job["result"].(map[string]any)
		case http.StatusAccepted:
			if time.Now().After(deadline) {
				t.Fatalf("job %s still running at deadline", id)
			}
		default:
			t.Fatalf("result status %d: %v", resp.StatusCode, job)
		}
	}
}

func decodeJSON(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	return m
}

// ensembleBody is the differential-test workload: a 512-trajectory noisy
// ensemble with every mergeable read-out (counts, observables,
// marginals).
const ensembleBody = `{
	"circuit": {"family": "ising", "qubits": 6},
	"kind": "run",
	"noise": {"rules": [{"channel": "depolarizing", "p": 0.02}], "readout": {"p01": 0.01, "p10": 0.02}},
	"readouts": {
		"shots": 2048, "seed": 7, "trajectories": 512,
		"marginals": [[0, 1], [3]],
		"observables": [{"name": "zz01", "paulis": "ZZ", "qubits": [0, 1]},
		                {"name": "x2", "coeff": 0.5, "paulis": "X", "qubits": [2]}]
	}
}`

// mustEqualField compares one result field between the cluster run and
// the single-node baseline with exact (bit-level, post-JSON) equality.
func mustEqualField(t *testing.T, got, want map[string]any, field string) {
	t.Helper()
	if !reflect.DeepEqual(got[field], want[field]) {
		t.Fatalf("%s differs from single-node run:\n cluster: %v\n single:  %v",
			field, got[field], want[field])
	}
}

// TestClusterEnsembleBitIdentical is the tentpole acceptance test: a
// 512-trajectory noisy ensemble split across 3 workers merges to exactly
// the single-node result — counts, mean ± stderr and marginals all
// bit-identical, because sub-ranges reuse the global per-trajectory
// streams and the merge folds the same chunk partials in the same order.
func TestClusterEnsembleBitIdentical(t *testing.T) {
	single := startWorker(t)
	want := submitAndWait(t, single.URL, ensembleBody)

	w1, w2, w3 := startWorker(t), startWorker(t), startWorker(t)
	coord, csrv := startCoordinator(t, []string{w1.URL, w2.URL, w3.URL}, nil)
	got := submitAndWait(t, csrv.URL, ensembleBody)

	for _, field := range []string{"counts", "observables", "marginals", "trajectories", "kind", "num_qubits", "backend"} {
		mustEqualField(t, got, want, field)
	}
	// The job must actually have fanned out.
	coord.mu.Lock()
	var split *cjob
	for _, j := range coord.jobs {
		if j.mode == modeSplitEnsemble {
			split = j
		}
	}
	coord.mu.Unlock()
	if split == nil {
		t.Fatal("ensemble was not split across workers")
	}
	if len(split.subs) < 2 {
		t.Fatalf("split into %d sub-jobs, want ≥ 2", len(split.subs))
	}
	workers := map[string]bool{}
	for _, sub := range split.subs {
		workers[sub.worker] = true
	}
	if len(workers) < 2 {
		t.Fatalf("all sub-jobs ran on one worker: %v", workers)
	}
}

// sweepBody sweeps a symbolic 4-qubit ansatz over a 50-point zipped grid
// with small per-point noisy ensembles.
func sweepBody() string {
	gammas := make([]float64, 50)
	betas := make([]float64, 50)
	for i := range gammas {
		gammas[i] = -0.8 + 0.03*float64(i)
		betas[i] = 0.9 - 0.025*float64(i)
	}
	g, _ := json.Marshal(gammas)
	b, _ := json.Marshal(betas)
	return fmt.Sprintf(`{
		"circuit": {"qasm": "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\nh q[0]; h q[1]; h q[2]; h q[3];\ncx q[0],q[1]; rz(gamma) q[1]; cx q[0],q[1];\ncx q[1],q[2]; rz(gamma) q[2]; cx q[1],q[2];\nrx(beta) q[0]; rx(beta) q[1]; rx(beta) q[2]; rx(beta) q[3];\n"},
		"kind": "sweep",
		"noise": {"rules": [{"channel": "depolarizing", "p": 0.01}]},
		"readouts": {
			"seed": 11, "trajectories": 32,
			"observables": [{"name": "zz01", "paulis": "ZZ", "qubits": [0, 1]}]
		},
		"sweep": {"grid": {"gamma": %s, "beta": %s}, "zip": true}
	}`, g, b)
}

// TestClusterSweepBitIdentical: a 50-point sweep split into contiguous
// binding ranges across 3 workers returns per-point results identical to
// the single-node run (per-point ensembles are point-local, so placement
// cannot perturb them).
func TestClusterSweepBitIdentical(t *testing.T) {
	single := startWorker(t)
	want := submitAndWait(t, single.URL, sweepBody())

	w1, w2, w3 := startWorker(t), startWorker(t), startWorker(t)
	coord, csrv := startCoordinator(t, []string{w1.URL, w2.URL, w3.URL}, nil)
	got := submitAndWait(t, csrv.URL, sweepBody())

	wantSweep := want["sweep"].(map[string]any)
	gotSweep := got["sweep"].(map[string]any)
	wantPoints := wantSweep["points"].([]any)
	gotPoints := gotSweep["points"].([]any)
	if len(gotPoints) != len(wantPoints) {
		t.Fatalf("cluster returned %d points, single node %d", len(gotPoints), len(wantPoints))
	}
	for i := range wantPoints {
		if !reflect.DeepEqual(gotPoints[i], wantPoints[i]) {
			t.Fatalf("sweep point %d differs:\n cluster: %v\n single:  %v", i, gotPoints[i], wantPoints[i])
		}
	}
	coord.mu.Lock()
	splitSeen := false
	for _, j := range coord.jobs {
		splitSeen = splitSeen || j.mode == modeSplitSweep
	}
	coord.mu.Unlock()
	if !splitSeen {
		t.Fatal("sweep was not split across workers")
	}
}

// routedBody is a small ideal job (below every split threshold): it
// routes whole to the fingerprint's ring owner.
const routedBody = `{
	"circuit": {"family": "qft", "qubits": 8},
	"kind": "run",
	"readouts": {"shots": 256, "seed": 5}
}`

var cacheHitRe = regexp.MustCompile(`hisvsim_cache_hits_total\{cache="state"\} (\d+)`)

func scrapeStateCacheHits(t *testing.T, workerURL string) int {
	t.Helper()
	resp, err := http.Get(workerURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	m := cacheHitRe.FindSubmatch(raw)
	if m == nil {
		return 0
	}
	n, _ := strconv.Atoi(string(m[1]))
	return n
}

// TestClusterRoutingAffinity pins acceptance criterion (3): repeated
// submissions of the same circuit land on the same worker, and that
// worker's cache-hit counters rise — scraped from its /metrics.
func TestClusterRoutingAffinity(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	_, csrv := startCoordinator(t, []string{w1.URL, w2.URL}, nil)

	var results []map[string]any
	for i := 0; i < 3; i++ {
		results = append(results, submitAndWait(t, csrv.URL, routedBody))
	}
	// Repeat submissions must be cache hits — impossible if they routed
	// to different workers.
	for i, res := range results[1:] {
		if res["cache_hit"] != true {
			t.Fatalf("repeat submission %d missed the cache (routed to a cold worker?)", i+2)
		}
	}
	h1, h2 := scrapeStateCacheHits(t, w1.URL), scrapeStateCacheHits(t, w2.URL)
	if h1+h2 < 2 {
		t.Fatalf("cache hits after 3 identical jobs: worker1=%d worker2=%d, want ≥ 2 total", h1, h2)
	}
	if h1 != 0 && h2 != 0 {
		t.Fatalf("cache hits on both workers (worker1=%d worker2=%d): routing is not sticky", h1, h2)
	}
}

// faultProxy fronts a real worker and, once armed (after forwarding one
// successful submit), fails every subsequent request — a deterministic
// stand-in for "worker died mid-ensemble" with no timing races: the
// sub-job is accepted and lost, and the coordinator must re-run it
// elsewhere.
type faultProxy struct {
	target string
	mu     sync.Mutex
	armed  bool
}

func (p *faultProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	armed := p.armed
	p.mu.Unlock()
	if armed {
		http.Error(w, "injected fault", http.StatusBadGateway)
		return
	}
	body, _ := io.ReadAll(r.Body)
	url := p.target + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	w.WriteHeader(resp.StatusCode)
	w.Write(out)
	if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" && resp.StatusCode == http.StatusAccepted {
		p.mu.Lock()
		p.armed = true
		p.mu.Unlock()
	}
}

// TestClusterFaultRetry pins acceptance criterion (2): losing a worker
// mid-ensemble still yields a successful job — the lost sub-job re-runs
// on the survivor — and the result is STILL bit-identical to the
// single-node run, because the retried range replays the same global
// trajectory streams.
func TestClusterFaultRetry(t *testing.T) {
	single := startWorker(t)
	want := submitAndWait(t, single.URL, ensembleBody)

	healthy := startWorker(t)
	behindProxy := startWorker(t)
	proxy := &faultProxy{target: behindProxy.URL}
	proxySrv := httptest.NewServer(proxy)
	t.Cleanup(proxySrv.Close)

	coord, csrv := startCoordinator(t, []string{healthy.URL, proxySrv.URL}, func(cfg *Config) {
		// Keep the dying worker "ready" long enough that the sub-job is
		// dispatched to it before health checks notice.
		cfg.HealthEvery = time.Hour
	})
	got := submitAndWait(t, csrv.URL, ensembleBody)

	for _, field := range []string{"counts", "observables", "marginals", "trajectories"} {
		mustEqualField(t, got, want, field)
	}
	if v := coord.m.retries.Value(); v < 1 {
		t.Fatalf("hisvsim_cluster_retries_total = %d after a lost worker, want ≥ 1", v)
	}
	if !proxy.hasArmed() {
		t.Fatal("fault proxy never armed: no sub-job was dispatched to the dying worker")
	}
}

func (p *faultProxy) hasArmed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.armed
}

// TestClusterHonorsRetryAfter: a worker answering 429 with Retry-After
// is backed off for that horizon — the coordinator re-routes the sub-job
// and does not hammer the throttled worker.
func TestClusterHonorsRetryAfter(t *testing.T) {
	healthy := startWorker(t)
	var posts int32
	var mu sync.Mutex
	throttled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/readyz" || r.URL.Path == "/healthz":
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"ready": true}`))
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			mu.Lock()
			posts++
			mu.Unlock()
			w.Header().Set("Retry-After", "30")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error": "queue full"}`))
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(throttled.Close)

	coord, csrv := startCoordinator(t, []string{healthy.URL, throttled.URL}, nil)
	got := submitAndWait(t, csrv.URL, ensembleBody)
	if got["trajectories"] != float64(512) {
		t.Fatalf("trajectories = %v, want 512", got["trajectories"])
	}
	mu.Lock()
	n := posts
	mu.Unlock()
	if n < 1 {
		t.Skip("ring never placed a sub-job on the throttled worker") // hash-dependent but deterministic; guard anyway
	}
	if n > 1 {
		t.Fatalf("throttled worker got %d submits inside its Retry-After horizon, want 1", n)
	}
	coord.mu.Lock()
	w := coord.workers[throttled.URL]
	backedOff := w != nil && time.Now().Before(w.backoffUntil)
	coord.mu.Unlock()
	if !backedOff {
		t.Fatal("throttled worker has no backoff horizon recorded")
	}
}

// TestClusterTraceTiles: a finished cluster job's plan/fanout/merge
// stages tile the submitted→finished wall clock, and split jobs carry
// per-sub-job attempt spans.
func TestClusterTraceTiles(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	_, csrv := startCoordinator(t, []string{w1.URL, w2.URL}, nil)

	resp, err := http.Post(csrv.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(ensembleBody)))
	if err != nil {
		t.Fatal(err)
	}
	id := decodeJSON(t, resp)["id"].(string)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for {
		r2, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/result?wait=10s", csrv.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		body := decodeJSON(t, r2)
		if r2.StatusCode == http.StatusOK {
			if body["status"] != "done" {
				t.Fatalf("job ended %v: %v", body["status"], body["error"])
			}
			break
		}
		if ctx.Err() != nil {
			t.Fatal("job did not finish in time")
		}
	}

	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s/trace", csrv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	trace := decodeJSON(t, resp)
	wall := trace["wall_ms"].(float64)
	stages := trace["stages"].([]any)
	sum := 0.0
	seen := map[string]bool{}
	for _, s := range stages {
		st := s.(map[string]any)
		sum += st["duration_ms"].(float64)
		seen[st["stage"].(string)] = true
	}
	if wall <= 0 || sum <= 0 {
		t.Fatalf("empty trace: wall=%v sum=%v", wall, sum)
	}
	if diff := sum - wall; diff > 1 || diff < -1 {
		t.Fatalf("stages sum to %.3fms but wall is %.3fms — cluster spans must tile", sum, wall)
	}
	for _, want := range []string{stagePlan, stageFanout, stageMerge} {
		if !seen[want] {
			t.Fatalf("trace missing stage %q (got %v)", want, seen)
		}
	}
	subs, ok := trace["subjobs"].([]any)
	if !ok || len(subs) < 2 {
		t.Fatalf("trace carries %d sub-job spans, want ≥ 2", len(subs))
	}
	first := subs[0].(map[string]any)
	atts, ok := first["attempts"].([]any)
	if !ok || len(atts) == 0 {
		t.Fatal("sub-job span has no attempts")
	}
}

// TestClusterRejectsBadRequests: validation failures surface as submit
// errors (the HTTP layer's 400), not as dispatched jobs.
func TestClusterRejectsBadRequests(t *testing.T) {
	w1 := startWorker(t)
	_, csrv := startCoordinator(t, []string{w1.URL}, nil)
	resp, err := http.Post(csrv.URL+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"circuit": {"family": "nope", "qubits": 4}, "kind": "run"}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad request got %d, want 400", resp.StatusCode)
	}
}

// TestClusterDrainingWorkerLeavesRing: a worker whose /readyz flips 503
// is dropped from the ring on the next sweep and jobs keep completing on
// the survivors.
func TestClusterDrainingWorkerLeavesRing(t *testing.T) {
	w1 := startWorker(t)
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"ready": false}`))
	}))
	t.Cleanup(draining.Close)

	coord, csrv := startCoordinator(t, []string{w1.URL, draining.URL}, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		coord.mu.Lock()
		state := coord.workers[draining.URL].state
		coord.mu.Unlock()
		if state == workerDraining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining worker still %q after 5s", state)
		}
		time.Sleep(50 * time.Millisecond)
	}
	res := submitAndWait(t, csrv.URL, routedBody)
	if res["kind"] != "run" {
		t.Fatalf("unexpected result %v", res)
	}
}
