package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over worker names. Each worker owns
// vnodesPerWorker points on a 64-bit circle; a key (circuit fingerprint)
// is owned by the first point clockwise from its hash. Virtual nodes keep
// the load split roughly even, and consistency means adding or removing
// one worker only remaps the keys that worker owned — every other
// circuit keeps hitting the worker whose plan/state/ρ caches it warmed.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	worker string
}

// vnodesPerWorker is the virtual-node count per worker. 64 points keeps
// the expected load imbalance across a handful of workers in the few-
// percent range without making ring rebuilds (every health sweep that
// changes membership) measurable.
const vnodesPerWorker = 64

// newRing builds a ring over the named workers. Order does not matter —
// the ring is a pure function of the name set, so every rebuild from the
// same membership routes identically.
func newRing(workers []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(workers)*vnodesPerWorker)}
	for _, w := range workers {
		for v := 0; v < vnodesPerWorker; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", w, v)), worker: w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on name so equal hashes (vanishingly rare) still
		// order deterministically across rebuilds.
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// lookup returns the worker owning key, or "" on an empty ring.
func (r *ring) lookup(key string) string {
	ws := r.successors(key, 1)
	if len(ws) == 0 {
		return ""
	}
	return ws[0]
}

// successors walks clockwise from key's hash and returns up to n DISTINCT
// workers in ring order: the owner first, then the natural fail-over
// candidates. Sub-job fan-out assigns range i to successors[i mod len],
// and retries walk the same list, so placement is deterministic for a
// given membership.
func (r *ring) successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, p.worker)
		}
	}
	return out
}

// hash64 is FNV-1a: not cryptographic, but fast, dependency-free and
// stable across processes — coordinator restarts route the same keys to
// the same workers.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
