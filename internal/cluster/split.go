package cluster

import (
	"encoding/json"
	"fmt"

	"hisvsim/internal/noise"
	"hisvsim/internal/service"
)

// Job execution modes.
const (
	modeRouted        = "routed"         // whole job → ring owner
	modeSplitEnsemble = "split_ensemble" // trajectory sub-ranges
	modeSplitSweep    = "split_sweep"    // binding sub-ranges
)

// plan is what Submit decides before any worker traffic: the execution
// mode, the routing key, and the sub-job bodies. A routed job is a
// 1-part plan whose body is the client's bytes verbatim, so every mode
// flows through the same dispatch/retry machinery.
type plan struct {
	mode string
	key  string // ring key: the circuit/template fingerprint
	subs [][]byte
}

// planFor parses the submit body just enough to route and split it. The
// parsed form is used only for decisions — sub-job bodies are produced
// by surgically rewriting the client's own JSON (readouts or sweep
// field), so workers see the request otherwise byte-identical.
func (c *Coordinator) planFor(body []byte) (*plan, error) {
	req, err := service.ParseRequest(body)
	if err != nil {
		return nil, err
	}
	p := &plan{mode: modeRouted, key: req.Circuit.Fingerprint(), subs: [][]byte{body}}

	width := c.readyCount()
	if width <= 1 {
		return p, nil
	}
	switch {
	case req.Kind == service.KindRun &&
		req.Noise != nil && !req.Noise.IsZero() &&
		!req.Readouts.Statevector &&
		req.Readouts.TrajTotal == 0 && // already a sub-range: pass through
		req.Readouts.Trajectories >= c.cfg.SplitTrajectories:
		total := req.Readouts.Trajectories
		parts := trajRanges(total, min(width, c.cfg.MaxSubJobs))
		if len(parts) <= 1 {
			return p, nil
		}
		subs, err := splitEnsembleBody(body, total, parts)
		if err != nil {
			return nil, err
		}
		p.mode, p.subs = modeSplitEnsemble, subs
	case req.Kind == service.KindSweep && req.Sweep != nil:
		points, err := req.Sweep.Expand(c.cfg.MaxSweepPoints)
		if err != nil {
			return nil, err
		}
		if len(points) < c.cfg.SplitSweepPoints {
			return p, nil
		}
		ranges := evenRanges(len(points), min(width, c.cfg.MaxSubJobs))
		if len(ranges) <= 1 {
			return p, nil
		}
		subs, err := splitSweepBody(body, points, ranges)
		if err != nil {
			return nil, err
		}
		p.mode, p.subs = modeSplitSweep, subs
	}
	return p, nil
}

func (c *Coordinator) readyCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, w := range c.workers {
		if w.state == workerReady {
			n++
		}
	}
	return n
}

// trajRanges splits [0, total) into at most parts contiguous ranges with
// every boundary on a moment-chunk multiple — the alignment the
// canonical chunked reduction needs for bit-identical cross-host merges.
// Small ensembles yield fewer (possibly one) ranges rather than
// sub-chunk slivers.
func trajRanges(total, parts int) [][2]int {
	if parts < 1 {
		parts = 1
	}
	var out [][2]int
	prev := 0
	for i := 1; i <= parts; i++ {
		end := total * i / parts
		if i < parts {
			end = end / noise.MomentChunk * noise.MomentChunk
		}
		if end <= prev {
			continue
		}
		out = append(out, [2]int{prev, end})
		prev = end
	}
	return out
}

// evenRanges splits [0, n) into at most parts non-empty contiguous
// ranges (no alignment constraint — sweep points are independent).
func evenRanges(n, parts int) [][2]int {
	if parts < 1 {
		parts = 1
	}
	var out [][2]int
	prev := 0
	for i := 1; i <= parts; i++ {
		end := n * i / parts
		if end <= prev {
			continue
		}
		out = append(out, [2]int{prev, end})
		prev = end
	}
	return out
}

// splitEnsembleBody rewrites the client's readouts spec into one body
// per trajectory range: trajectories=len, traj_offset/traj_total pin the
// global placement, and moments=true asks the worker for the per-chunk
// partial sums the merge folds. Every other top-level field is the
// client's raw JSON, untouched.
func splitEnsembleBody(body []byte, total int, ranges [][2]int) ([][]byte, error) {
	top, err := decodeObject(body, "request")
	if err != nil {
		return nil, err
	}
	ro, err := decodeObject(top["readouts"], "readouts")
	if err != nil {
		return nil, err
	}
	subs := make([][]byte, 0, len(ranges))
	for _, r := range ranges {
		sub := cloneObject(ro)
		sub["trajectories"] = jsonInt(r[1] - r[0])
		if r[0] > 0 {
			sub["traj_offset"] = jsonInt(r[0])
		} else {
			delete(sub, "traj_offset")
		}
		sub["traj_total"] = jsonInt(total)
		sub["moments"] = json.RawMessage("true")
		b, err := encodeWith(top, "readouts", sub)
		if err != nil {
			return nil, err
		}
		subs = append(subs, b)
	}
	return subs, nil
}

// splitSweepBody rewrites the client's sweep spec into one explicit
// binding list per point range. Binding values are float64s re-encoded
// by encoding/json, which round-trips them exactly, so each worker
// binds precisely the grid points a single node would.
func splitSweepBody(body []byte, points []map[string]float64, ranges [][2]int) ([][]byte, error) {
	top, err := decodeObject(body, "request")
	if err != nil {
		return nil, err
	}
	subs := make([][]byte, 0, len(ranges))
	for _, r := range ranges {
		bindings, err := json.Marshal(map[string]any{"bindings": points[r[0]:r[1]]})
		if err != nil {
			return nil, err
		}
		sub := cloneObject(top)
		sub["sweep"] = json.RawMessage(bindings)
		out, err := json.Marshal(sub)
		if err != nil {
			return nil, err
		}
		subs = append(subs, out)
	}
	return subs, nil
}

// decodeObject unmarshals a JSON object into its raw fields.
func decodeObject(raw []byte, what string) (map[string]json.RawMessage, error) {
	if len(raw) == 0 {
		return map[string]json.RawMessage{}, nil
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", what, err)
	}
	if m == nil {
		m = map[string]json.RawMessage{}
	}
	return m, nil
}

func cloneObject(m map[string]json.RawMessage) map[string]json.RawMessage {
	out := make(map[string]json.RawMessage, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// encodeWith re-encodes top with field replaced by the given object.
func encodeWith(top map[string]json.RawMessage, field string, obj map[string]json.RawMessage) ([]byte, error) {
	sub := cloneObject(top)
	inner, err := json.Marshal(obj)
	if err != nil {
		return nil, err
	}
	sub[field] = json.RawMessage(inner)
	return json.Marshal(sub)
}

func jsonInt(n int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf("%d", n))
}
