package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"hisvsim/internal/obs"
)

// Metrics federation: GET /metrics/federate scrapes every live worker's
// /metrics on demand, parses the expositions back with obs.ParseText (the
// inverse of the registry's writer), stamps a worker label on each sample
// and re-exposes the union — one scrape target covers the whole fleet
// without running a Prometheus federation server. On top of the raw
// series the endpoint adds cluster rollups:
//
//	hisvsim_cluster_cache_hit_rate                      fleet-wide hits/(hits+misses), all caches
//	hisvsim_cluster_queue_depth                         summed worker queue depth
//	hisvsim_cluster_worker_up{worker}                   1 if this scrape succeeded
//	hisvsim_cluster_worker_probe_seconds{worker}        latest /readyz round trip
//	hisvsim_cluster_worker_consecutive_failures{worker} failed probes in a row
//
// Dead workers are skipped (there is nothing to scrape); a worker that
// fails mid-scrape reports hisvsim_cluster_worker_up 0 and contributes no
// series rather than failing the whole response.

// federateTimeout bounds one worker scrape within a federate request.
const federateTimeout = 5 * time.Second

// scrapeTarget is one worker to federate, snapshotted under c.mu.
type scrapeTarget struct {
	url          string
	state        string
	probeSeconds float64
	fails        int
}

func handleFederate(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	targets := make([]scrapeTarget, 0, len(c.workers))
	for _, wk := range c.workers {
		targets = append(targets, scrapeTarget{
			url: wk.url, state: wk.state,
			probeSeconds: wk.lastProbe.Seconds(), fails: wk.fails,
		})
	}
	c.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].url < targets[j].url })

	type scrape struct {
		fams []*obs.MetricFamily
		err  error
	}
	results := make([]scrape, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		if t.state == workerDead {
			results[i].err = fmt.Errorf("worker %s is dead", t.url)
			continue
		}
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			results[i].fams, results[i].err = c.scrapeWorker(r.Context(), url)
		}(i, t.url)
	}
	wg.Wait()

	// Merge: one family per name, samples grouped by worker in URL order
	// (targets are sorted), each stamped with the worker label. HELP/TYPE
	// metadata comes from the first worker that exposes the family.
	merged := map[string]*obs.MetricFamily{}
	var order []string
	var hits, misses, queueDepth float64
	for i, t := range targets {
		if results[i].err != nil {
			if t.state != workerDead {
				c.m.federations.With("error").Inc()
				c.log.Warn("federate scrape failed", "worker", t.url, "err", results[i].err)
			}
			continue
		}
		c.m.federations.With("ok").Inc()
		for _, f := range results[i].fams {
			mf, ok := merged[f.Name]
			if !ok {
				mf = &obs.MetricFamily{Name: f.Name, Help: f.Help, Type: f.Type}
				merged[f.Name] = mf
				order = append(order, f.Name)
			}
			for _, s := range f.Samples {
				mf.Samples = append(mf.Samples, s.WithLabel("worker", t.url))
				switch s.Name {
				case "hisvsim_cache_hits_total":
					hits += s.Value
				case "hisvsim_cache_misses_total":
					misses += s.Value
				case "hisvsim_queue_depth":
					queueDepth += s.Value
				}
			}
		}
	}
	sort.Strings(order)
	fams := make([]*obs.MetricFamily, 0, len(order)+5)
	for _, name := range order {
		fams = append(fams, merged[name])
	}

	// Cluster rollups, computed from the scrapes and the health sweeps.
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = hits / (hits + misses)
	}
	fams = append(fams,
		&obs.MetricFamily{
			Name: "hisvsim_cluster_cache_hit_rate", Type: "gauge",
			Help:    "Fleet-wide cache hit rate: sum(hits)/sum(hits+misses) over every worker and cache at scrape time.",
			Samples: []obs.Sample{{Name: "hisvsim_cluster_cache_hit_rate", Value: hitRate}},
		},
		&obs.MetricFamily{
			Name: "hisvsim_cluster_queue_depth", Type: "gauge",
			Help:    "Total queued jobs across every scraped worker.",
			Samples: []obs.Sample{{Name: "hisvsim_cluster_queue_depth", Value: queueDepth}},
		},
	)
	up := &obs.MetricFamily{
		Name: "hisvsim_cluster_worker_up", Type: "gauge",
		Help: "Whether this federate request scraped the worker successfully.",
	}
	probeSecs := &obs.MetricFamily{
		Name: "hisvsim_cluster_worker_probe_seconds", Type: "gauge",
		Help: "Latest /readyz probe round-trip time per worker.",
	}
	probeFails := &obs.MetricFamily{
		Name: "hisvsim_cluster_worker_consecutive_failures", Type: "gauge",
		Help: "Consecutive failed health probes per worker (resets on success).",
	}
	for i, t := range targets {
		workerLabel := []obs.Label{{Name: "worker", Value: t.url}}
		upVal := 1.0
		if results[i].err != nil {
			upVal = 0
		}
		up.Samples = append(up.Samples, obs.Sample{Name: up.Name, Labels: workerLabel, Value: upVal})
		probeSecs.Samples = append(probeSecs.Samples, obs.Sample{Name: probeSecs.Name, Labels: workerLabel, Value: t.probeSeconds})
		probeFails.Samples = append(probeFails.Samples, obs.Sample{Name: probeFails.Name, Labels: workerLabel, Value: float64(t.fails)})
	}
	fams = append(fams, probeFails, probeSecs, up)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WriteFamilies(w, fams)
}

// scrapeWorker fetches and parses one worker's /metrics.
func (c *Coordinator) scrapeWorker(ctx context.Context, url string) ([]*obs.MetricFamily, error) {
	ctx, cancel := context.WithTimeout(ctx, federateTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/metrics: HTTP %d", url, resp.StatusCode)
	}
	return obs.ParseText(resp.Body)
}
