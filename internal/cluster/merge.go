package cluster

import (
	"encoding/json"
	"fmt"

	"hisvsim/internal/noise"
)

// subResult is the slice of a worker's wire result the merge needs.
// Everything it does not model (samples, amplitudes, …) is excluded from
// split jobs by planFor, so nothing is silently dropped.
type subResult struct {
	Kind          string          `json:"kind"`
	NumQubits     int             `json:"num_qubits"`
	CacheHit      bool            `json:"cache_hit"`
	Parts         int             `json:"parts"`
	ElapsedMS     float64         `json:"elapsed_ms"`
	WaitedMS      float64         `json:"waited_ms"`
	Backend       string          `json:"backend,omitempty"`
	Counts        map[string]int  `json:"counts,omitempty"`
	Trajectories  int             `json:"trajectories,omitempty"`
	Marginals     [][]float64     `json:"marginals,omitempty"`
	Observables   []subObsValue   `json:"observables,omitempty"`
	Moments       *subMoments     `json:"moments,omitempty"`
	Sweep         *subSweepResult `json:"sweep,omitempty"`
	Probabilities []float64       `json:"probabilities,omitempty"`
	Samples       []int           `json:"samples,omitempty"`
	Amplitudes    [][2]float64    `json:"amplitudes,omitempty"`
}

type subObsValue struct {
	Name   string  `json:"name,omitempty"`
	Value  float64 `json:"value"`
	StdErr float64 `json:"stderr,omitempty"`
}

type subMoments struct {
	ChunkSize int `json:"chunk_size"`
	Chunks    []struct {
		Chunk int          `json:"chunk"`
		Count int          `json:"count"`
		Obs   [][2]float64 `json:"obs,omitempty"`
		Marg  [][]float64  `json:"marg,omitempty"`
	} `json:"chunks"`
}

// subSweepResult keeps per-point payloads as raw JSON: merged sweep
// points are the workers' own bytes concatenated in grid order, so the
// per-point results are byte-identical to what each worker computed —
// and, because per-point ensembles use point-local trajectory indices,
// identical to the single-node run.
type subSweepResult struct {
	Compiles      int               `json:"compiles"`
	TouchedBlocks int               `json:"touched_blocks"`
	SharedBlocks  int               `json:"shared_blocks"`
	Trajectories  int               `json:"trajectories,omitempty"`
	Points        []json.RawMessage `json:"points"`
}

// mergedResult mirrors the worker wire result shape (service.wireResult)
// so clients cannot tell a merged job from a routed one.
type mergedResult struct {
	Kind         string             `json:"kind"`
	NumQubits    int                `json:"num_qubits"`
	CacheHit     bool               `json:"cache_hit"`
	Parts        int                `json:"parts"`
	ElapsedMS    float64            `json:"elapsed_ms"`
	WaitedMS     float64            `json:"waited_ms"`
	Backend      string             `json:"backend,omitempty"`
	Counts       map[string]int     `json:"counts,omitempty"`
	Trajectories int                `json:"trajectories,omitempty"`
	Marginals    [][]float64        `json:"marginals,omitempty"`
	Observables  []subObsValue      `json:"observables,omitempty"`
	Sweep        *mergedSweepResult `json:"sweep,omitempty"`
}

type mergedSweepResult struct {
	Compiles      int               `json:"compiles"`
	TouchedBlocks int               `json:"touched_blocks"`
	SharedBlocks  int               `json:"shared_blocks"`
	Trajectories  int               `json:"trajectories,omitempty"`
	Points        []json.RawMessage `json:"points"`
}

// mergeJob folds a job's sub-results into one client-facing result.
// Routed jobs pass the worker's bytes through verbatim.
func mergeJob(j *cjob) (json.RawMessage, error) {
	switch j.mode {
	case modeRouted:
		return j.subs[0].result, nil
	case modeSplitEnsemble:
		return mergeEnsemble(j.subs)
	case modeSplitSweep:
		return mergeSweep(j.subs)
	default:
		return nil, fmt.Errorf("cluster: unknown job mode %q", j.mode)
	}
}

// mergeEnsemble reduces trajectory sub-range results: counts and
// trajectory tallies sum exactly (integers), and the statistics re-fold
// from the workers' per-chunk partial sums via noise.AggregateMoments —
// the SAME canonical reduction a single node applies to its own chunks,
// over the SAME chunk sequence (sub-jobs are contiguous chunk-aligned
// ranges in ascending offset order) — so mean ± stderr and marginals
// come out bit-identical to the unsplit run.
func mergeEnsemble(subs []*subjob) (json.RawMessage, error) {
	parts := make([]*subResult, len(subs))
	for i, s := range subs {
		var r subResult
		if err := json.Unmarshal(s.result, &r); err != nil {
			return nil, fmt.Errorf("cluster: sub-result %d: %w", i, err)
		}
		if r.Moments == nil {
			return nil, fmt.Errorf("cluster: sub-result %d carries no moments (worker too old to merge?)", i)
		}
		parts[i] = &r
	}
	out := &mergedResult{
		Kind: parts[0].Kind, NumQubits: parts[0].NumQubits,
		Backend: parts[0].Backend, CacheHit: true,
	}
	var moments []noise.Moment
	for _, p := range parts {
		out.CacheHit = out.CacheHit && p.CacheHit
		out.Trajectories += p.Trajectories
		if p.Parts > out.Parts {
			out.Parts = p.Parts
		}
		if p.ElapsedMS > out.ElapsedMS {
			out.ElapsedMS = p.ElapsedMS
		}
		if p.WaitedMS > out.WaitedMS {
			out.WaitedMS = p.WaitedMS
		}
		if p.Counts != nil && out.Counts == nil {
			out.Counts = make(map[string]int)
		}
		for bits, n := range p.Counts {
			out.Counts[bits] += n
		}
		for _, ch := range p.Moments.Chunks {
			moments = append(moments, noise.Moment{
				Chunk: ch.Chunk, Count: ch.Count, Obs: ch.Obs, Marg: ch.Marg,
			})
		}
	}
	agg := noise.AggregateMoments(moments)
	if agg.Trajectories != out.Trajectories {
		return nil, fmt.Errorf("cluster: moment chunks cover %d trajectories, counts say %d",
			agg.Trajectories, out.Trajectories)
	}
	out.Marginals = agg.Marginals
	for k, st := range agg.Observables {
		// Names come from the first part (spec order is identical across
		// sub-jobs; only the trajectory range differs).
		name := ""
		if k < len(parts[0].Observables) {
			name = parts[0].Observables[k].Name
		}
		out.Observables = append(out.Observables, subObsValue{Name: name, Value: st.Mean, StdErr: st.StdErr})
	}
	return json.Marshal(out)
}

// mergeSweep concatenates per-point payloads in grid order and sums the
// compile-amortization ledger. Summed compiles honestly report that each
// worker compiled the template once — the price of the fan-out.
func mergeSweep(subs []*subjob) (json.RawMessage, error) {
	out := &mergedResult{Sweep: &mergedSweepResult{Points: []json.RawMessage{}}, CacheHit: true}
	for i, s := range subs {
		var r subResult
		if err := json.Unmarshal(s.result, &r); err != nil {
			return nil, fmt.Errorf("cluster: sub-result %d: %w", i, err)
		}
		if r.Sweep == nil {
			return nil, fmt.Errorf("cluster: sub-result %d carries no sweep payload", i)
		}
		if i == 0 {
			out.Kind, out.NumQubits, out.Backend = r.Kind, r.NumQubits, r.Backend
			out.Sweep.Trajectories = r.Sweep.Trajectories
		}
		out.CacheHit = out.CacheHit && r.CacheHit
		out.Trajectories += r.Trajectories
		if r.Parts > out.Parts {
			out.Parts = r.Parts
		}
		if r.ElapsedMS > out.ElapsedMS {
			out.ElapsedMS = r.ElapsedMS
		}
		if r.WaitedMS > out.WaitedMS {
			out.WaitedMS = r.WaitedMS
		}
		out.Sweep.Compiles += r.Sweep.Compiles
		out.Sweep.TouchedBlocks += r.Sweep.TouchedBlocks
		out.Sweep.SharedBlocks += r.Sweep.SharedBlocks
		out.Sweep.Points = append(out.Sweep.Points, r.Sweep.Points...)
	}
	return json.Marshal(out)
}
