package cluster

import (
	"hisvsim/internal/obs"
	"hisvsim/internal/service"
)

// Sub-job outcome labels (hisvsim_cluster_subjobs_total{status}).
const (
	subjobOK      = "ok"      // completed (possibly after retries)
	subjobFailed  = "failed"  // exhausted attempts or hit a permanent error
	subjobRetried = "retried" // one dispatch lost and re-queued
)

// metrics is the coordinator's metric surface. It reuses the service's
// dependency-free registry so /metrics on the coordinator looks exactly
// like /metrics on a worker (text exposition, build info, Go runtime).
type metrics struct {
	reg *obs.Registry
	// workers gauges current membership by state: ready workers are in
	// the ring, draining/dead ones are not.
	workers *obs.GaugeVec
	// subjobs counts terminal sub-job dispatch outcomes plus "retried"
	// transitions; retries also count in the dedicated counter below so
	// dashboards can alert on the rate without label math.
	subjobs *obs.CounterVec
	retries *obs.Counter
	// jobs counts coordinator jobs by how they executed: "routed" whole
	// to the ring owner, "split" across workers, or "local_error".
	jobs *obs.CounterVec
	// probeSeconds / probeFails surface per-worker health-probe telemetry
	// (latest /readyz round trip, consecutive failures) — the same numbers
	// /v1/cluster reports per worker and /metrics/federate rolls up.
	probeSeconds *obs.GaugeVec
	probeFails   *obs.GaugeVec
	// federations counts /metrics/federate scrapes by per-worker outcome.
	federations *obs.CounterVec
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg: reg,
		workers: reg.GaugeVec("hisvsim_cluster_workers",
			"Cluster worker count by health state.", "state"),
		subjobs: reg.CounterVec("hisvsim_cluster_subjobs_total",
			"Sub-job dispatch outcomes.", "status"),
		retries: reg.Counter("hisvsim_cluster_retries_total",
			"Sub-job dispatch retries (lost, straggling or bounced sub-jobs re-sent)."),
		jobs: reg.CounterVec("hisvsim_cluster_jobs_total",
			"Coordinator jobs by execution mode.", "mode"),
		probeSeconds: reg.GaugeVec("hisvsim_cluster_worker_probe_seconds",
			"Latest /readyz probe round-trip time per worker.", "worker"),
		probeFails: reg.GaugeVec("hisvsim_cluster_worker_consecutive_failures",
			"Consecutive failed health probes per worker (resets on success).", "worker"),
		federations: reg.CounterVec("hisvsim_cluster_federate_scrapes_total",
			"Per-worker scrape outcomes of /metrics/federate requests.", "status"),
	}
	obs.RegisterBuildInfo(reg, service.Version)
	return m
}
