package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hisvsim/internal/obs"
)

// stitchBody is a fan-out ensemble heavy enough that per-sub-job wall time
// dwarfs coordinator↔worker HTTP overhead, so the 5% tiling bound on
// stitched worker stages is meaningful rather than noise-dominated.
const stitchBody = `{
	"circuit": {"family": "ising", "qubits": 13},
	"kind": "run",
	"noise": {"rules": [{"channel": "depolarizing", "p": 0.02}]},
	"readouts": {
		"shots": 2048, "seed": 7, "trajectories": 512,
		"observables": [{"name": "zz01", "paulis": "ZZ", "qubits": [0, 1]}]
	}
}`

// submitWait submits a body (with optional headers) and waits for the job
// to finish, returning its coordinator id.
func submitWait(t *testing.T, base, body string, headers map[string]string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	acc := decodeJSON(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, acc)
	}
	id := acc["id"].(string)
	deadline := time.Now().Add(120 * time.Second)
	for {
		r2, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/result?wait=10s", base, id))
		if err != nil {
			t.Fatal(err)
		}
		body := decodeJSON(t, r2)
		switch r2.StatusCode {
		case http.StatusOK:
			if body["status"] != "done" {
				t.Fatalf("job %s finished %v: %v", id, body["status"], body["error"])
			}
			return id
		case http.StatusAccepted:
			if time.Now().After(deadline) {
				t.Fatalf("job %s still running at deadline", id)
			}
		default:
			t.Fatalf("result status %d: %v", r2.StatusCode, body)
		}
	}
}

func getTrace(t *testing.T, base, id string) wireTrace {
	t.Helper()
	var out wireTrace
	fetchJSON(t, fmt.Sprintf("%s/v1/jobs/%s/trace", base, id), &out)
	return out
}

func fetchJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
}

// tileWithin asserts |sum(childDurations) − window| ≤ max(5% of window,
// slackMS): the 5% acceptance bound with a small absolute floor so
// sub-millisecond windows cannot flake on scheduler noise.
func tileWithin(t *testing.T, what string, window, childSum, slackMS float64) {
	t.Helper()
	diff := math.Abs(childSum - window)
	if diff > math.Max(0.05*window, slackMS) {
		t.Fatalf("%s: children sum to %.3fms inside a %.3fms window (off by %.3fms > 5%%)",
			what, childSum, window, diff)
	}
}

// TestClusterStitchedTraceAndProfile pins the tentpole acceptance
// criteria on a 3-worker fan-out ensemble:
//
//   - the coordinator trace nests each worker's stage trace under the
//     attempt that ran it, the worker echoes the propagated request ID and
//     attempt span, and nested worker stages tile each attempt window
//     within 5%;
//   - the trace's tree form reaches from the job root down to worker
//     stages (depth 5);
//   - the coordinator profile's merged kernel seconds equal the sum of the
//     workers' per-sub-job profiles.
func TestClusterStitchedTraceAndProfile(t *testing.T) {
	w1, w2, w3 := startWorker(t), startWorker(t), startWorker(t)
	_, csrv := startCoordinator(t, []string{w1.URL, w2.URL, w3.URL}, nil)

	id := submitWait(t, csrv.URL, stitchBody, nil)
	trace := getTrace(t, csrv.URL, id)

	if trace.Mode != "split_ensemble" || len(trace.SubJobs) < 2 {
		t.Fatalf("want a fanned-out ensemble, got mode=%q subjobs=%d", trace.Mode, len(trace.SubJobs))
	}
	if trace.RequestID == "" {
		t.Fatal("coordinator trace has no request_id")
	}
	for _, sub := range trace.SubJobs {
		if len(sub.Attempts) == 0 {
			t.Fatalf("sub-job %d has no attempts", sub.Index)
		}
		a := sub.Attempts[len(sub.Attempts)-1]
		if a.Status != attemptOK {
			t.Fatalf("sub-job %d final attempt status %q, want ok", sub.Index, a.Status)
		}
		wantSpan := fmt.Sprintf("%s/s%d/a%d", id, sub.Index, len(sub.Attempts)-1)
		if a.Span != wantSpan {
			t.Fatalf("sub-job %d attempt span %q, want %q", sub.Index, a.Span, wantSpan)
		}
		wt := a.WorkerTrace
		if wt == nil || len(wt.Stages) == 0 {
			t.Fatalf("sub-job %d ok attempt has no stitched worker trace", sub.Index)
		}
		if wt.RequestID != trace.RequestID {
			t.Fatalf("sub-job %d worker request_id %q, want the propagated %q", sub.Index, wt.RequestID, trace.RequestID)
		}
		if wt.ParentSpan != a.Span {
			t.Fatalf("sub-job %d worker parent_span %q, want the attempt span %q", sub.Index, wt.ParentSpan, a.Span)
		}
		stageNames := map[string]bool{}
		var stageSum float64
		for _, st := range wt.Stages {
			stageNames[st.Stage] = true
			stageSum += st.DurationMS
		}
		for _, want := range []string{"queue_wait", "trajectories"} {
			if !stageNames[want] {
				t.Fatalf("sub-job %d worker trace missing stage %q (got %v)", sub.Index, want, stageNames)
			}
		}
		// The acceptance bound: nested worker stages tile the sub-job
		// attempt window within 5% (the slack absorbs the HTTP round
		// trips bracketing the worker job inside the attempt).
		tileWithin(t, fmt.Sprintf("sub-job %d attempt", sub.Index), a.DurationMS, stageSum, 20)
	}

	// Tree form: job → stages → sub-jobs → attempts → worker stages.
	if trace.Tree == nil {
		t.Fatal("trace has no tree")
	}
	if d := trace.Tree.Depth(); d < 5 {
		t.Fatalf("stitched tree depth = %d, want ≥ 5", d)
	}
	if err := trace.Tree.TileError(); err > 0.05 {
		t.Fatalf("coordinator stages tile the job window with %.1f%% error, want ≤ 5%%", 100*err)
	}
	leafStages := 0
	trace.Tree.Walk(func(n *obs.Node) {
		if n.Name == "trajectories" {
			leafStages++
		}
	})
	if leafStages < 2 {
		t.Fatalf("tree carries %d nested worker trajectory stages, want ≥ 2", leafStages)
	}

	// Profile stitching: the coordinator's merged kernel seconds must
	// equal the sum of the workers' own profiles for the same sub-jobs.
	var cp wireClusterProfile
	fetchJSON(t, fmt.Sprintf("%s/v1/jobs/%s/profile", csrv.URL, id), &cp)
	if len(cp.Kernels) == 0 || len(cp.Workers) != len(trace.SubJobs) {
		t.Fatalf("cluster profile: %d kernel rows, %d worker contributions (want >0, %d)",
			len(cp.Kernels), len(cp.Workers), len(trace.SubJobs))
	}
	var mergedSecs float64
	for _, k := range cp.Kernels {
		mergedSecs += k.Seconds
	}
	var workerSecs float64
	for _, sub := range trace.SubJobs {
		a := sub.Attempts[len(sub.Attempts)-1]
		var wp workerProfile
		fetchJSON(t, fmt.Sprintf("%s/v1/jobs/%s/profile", a.Worker, a.RemoteID), &wp)
		for _, k := range wp.Kernels {
			workerSecs += k.Seconds
		}
	}
	if workerSecs <= 0 {
		t.Fatal("workers attributed no kernel seconds")
	}
	if rel := math.Abs(mergedSecs-workerSecs) / workerSecs; rel > 1e-9 {
		t.Fatalf("merged kernel seconds %.9f != summed worker profiles %.9f (rel %.2e)",
			mergedSecs, workerSecs, rel)
	}
}

// TestClusterStitchUnderRetry pins stitching across a worker death: the
// killed worker's attempt span is retained unstitched with status "lost",
// the succeeding attempt carries the nested worker trace, and the nested
// stages still tile the surviving attempt's window.
func TestClusterStitchUnderRetry(t *testing.T) {
	healthy := startWorker(t)
	behindProxy := startWorker(t)
	proxy := &faultProxy{target: behindProxy.URL}
	proxySrv := httptest.NewServer(proxy)
	t.Cleanup(proxySrv.Close)

	_, csrv := startCoordinator(t, []string{healthy.URL, proxySrv.URL}, func(cfg *Config) {
		cfg.HealthEvery = time.Hour // keep the dying worker "ready" so it gets a dispatch
	})
	// The retry pile-up lands every sub-job on the surviving worker, so the
	// per-attempt scheduler stalls are worse than in the happy path; a
	// larger circuit keeps the windows long enough that 5% still dominates
	// the fixed overhead.
	id := submitWait(t, csrv.URL, strings.Replace(stitchBody, `"qubits": 13`, `"qubits": 14`, 1), nil)
	trace := getTrace(t, csrv.URL, id)

	var lost *wireSubAttempt
	for _, sub := range trace.SubJobs {
		for i, a := range sub.Attempts {
			if a.Status != attemptLost {
				continue
			}
			lost = &sub.Attempts[i]
			// The lost attempt is retained in the trace but unstitched.
			if a.WorkerTrace != nil {
				t.Fatalf("lost attempt on %s carries a stitched worker trace", a.Worker)
			}
			// Its sub-job must still have succeeded, with the final
			// attempt fully stitched and tiling.
			final := sub.Attempts[len(sub.Attempts)-1]
			if final.Status != attemptOK || final.WorkerTrace == nil {
				t.Fatalf("sub-job %d never recovered: final status %q stitched=%v",
					sub.Index, final.Status, final.WorkerTrace != nil)
			}
			var stageSum float64
			for _, st := range final.WorkerTrace.Stages {
				stageSum += st.DurationMS
			}
			tileWithin(t, fmt.Sprintf("recovered sub-job %d", sub.Index), final.DurationMS, stageSum, 20)
		}
	}
	if lost == nil {
		t.Fatal("no attempt was marked lost despite the injected worker death")
	}
	if !proxy.hasArmed() {
		t.Fatal("fault proxy never armed")
	}
}

// TestClusterRequestIDPropagation pins the satellite fix: a client's
// X-Request-ID flows through the coordinator to every worker sub-job (the
// worker job record carries it) and is echoed in the /v1/cluster job
// listing's sub-job rows.
func TestClusterRequestIDPropagation(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	_, csrv := startCoordinator(t, []string{w1.URL, w2.URL}, nil)

	const rid = "rid-propagation-test"
	id := submitWait(t, csrv.URL, ensembleBody, map[string]string{"X-Request-ID": rid})

	trace := getTrace(t, csrv.URL, id)
	if trace.RequestID != rid {
		t.Fatalf("coordinator trace request_id %q, want %q", trace.RequestID, rid)
	}
	for _, sub := range trace.SubJobs {
		a := sub.Attempts[len(sub.Attempts)-1]
		var wt workerTrace
		fetchJSON(t, fmt.Sprintf("%s/v1/jobs/%s/trace", a.Worker, a.RemoteID), &wt)
		if wt.RequestID != rid {
			t.Fatalf("worker job %s request_id %q, want the client's %q", a.RemoteID, wt.RequestID, rid)
		}
		if !strings.HasPrefix(wt.ParentSpan, id+"/s") {
			t.Fatalf("worker job %s parent_span %q does not point at job %s", a.RemoteID, wt.ParentSpan, id)
		}
	}

	var cl wireCluster
	fetchJSON(t, csrv.URL+"/v1/cluster", &cl)
	var row *wireClusterJob
	for i := range cl.Recent {
		if cl.Recent[i].ID == id {
			row = &cl.Recent[i]
		}
	}
	if row == nil {
		t.Fatalf("/v1/cluster listing is missing job %s", id)
	}
	if row.RequestID != rid {
		t.Fatalf("/v1/cluster job row request_id %q, want %q", row.RequestID, rid)
	}
	if len(row.SubJobs) < 2 {
		t.Fatalf("/v1/cluster job row has %d sub-job rows, want ≥ 2", len(row.SubJobs))
	}
	for _, sr := range row.SubJobs {
		if sr.RequestID != rid {
			t.Fatalf("sub-job row %d request_id %q, want %q", sr.Index, sr.RequestID, rid)
		}
		if sr.Worker == "" || sr.RemoteID == "" {
			t.Fatalf("sub-job row %d missing placement: %+v", sr.Index, sr)
		}
	}
}

// TestClusterWorkerHealthSurface pins the satellite fix on /v1/cluster:
// worker entries expose last_probe_ms and consecutive_failures (and the
// coordinator registry carries the matching per-worker gauges), so a
// draining/dead worker explains itself.
func TestClusterWorkerHealthSurface(t *testing.T) {
	w1 := startWorker(t)
	deadURL := "http://127.0.0.1:1" // nothing listens: every probe fails fast
	_, csrv := startCoordinator(t, []string{w1.URL, deadURL}, nil)

	deadline := time.Now().Add(5 * time.Second)
	for {
		var cl wireCluster
		fetchJSON(t, csrv.URL+"/v1/cluster", &cl)
		byURL := map[string]wireWorker{}
		for _, w := range cl.Workers {
			byURL[w.URL] = w
		}
		live, dead := byURL[w1.URL], byURL[deadURL]
		if live.ConsecutiveFailures == 0 && live.LastProbeMS >= 0 &&
			dead.ConsecutiveFailures >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health surface never settled: live=%+v dead=%+v", live, dead)
		}
		time.Sleep(50 * time.Millisecond)
	}

	resp, err := http.Get(csrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseText(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, f := range fams {
		for _, s := range f.Samples {
			if s.Label("worker") != "" {
				found[f.Name] = true
			}
		}
	}
	for _, want := range []string{"hisvsim_cluster_worker_probe_seconds", "hisvsim_cluster_worker_consecutive_failures"} {
		if !found[want] {
			t.Fatalf("coordinator /metrics missing per-worker gauge %s", want)
		}
	}
}

// TestClusterFederate pins the federation acceptance criterion: the
// coordinator's /metrics/federate exposes every worker's
// hisvsim_cache_hits_total with a worker label matching a direct scrape
// of that worker, plus the documented rollup series.
func TestClusterFederate(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	_, csrv := startCoordinator(t, []string{w1.URL, w2.URL}, nil)

	// Generate cache traffic on every worker directly (ring placement may
	// pin a routed job to one worker): the repeat submission hits each
	// worker's warm cache.
	for _, w := range []string{w1.URL, w2.URL} {
		submitWait(t, w, routedBody, nil)
		submitWait(t, w, routedBody, nil)
	}

	scrape := func(url string) []*obs.MetricFamily {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		fams, err := obs.ParseText(resp.Body)
		if err != nil {
			t.Fatalf("parse %s: %v", url, err)
		}
		return fams
	}
	sumFamily := func(fams []*obs.MetricFamily, name, workerLabel string) (float64, int) {
		var sum float64
		var n int
		for _, f := range fams {
			if f.Name != name {
				continue
			}
			for _, s := range f.Samples {
				if workerLabel != "" && s.Label("worker") != workerLabel {
					continue
				}
				sum += s.Value
				n++
			}
		}
		return sum, n
	}

	direct := map[string]float64{}
	for _, w := range []string{w1.URL, w2.URL} {
		direct[w], _ = sumFamily(scrape(w+"/metrics"), "hisvsim_cache_hits_total", "")
	}
	fed := scrape(csrv.URL + "/metrics/federate")
	var fedTotal float64
	for _, w := range []string{w1.URL, w2.URL} {
		got, n := sumFamily(fed, "hisvsim_cache_hits_total", w)
		if n == 0 {
			t.Fatalf("federation has no hisvsim_cache_hits_total samples labeled worker=%q", w)
		}
		if got != direct[w] {
			t.Fatalf("federated cache hits for %s = %v, direct scrape says %v", w, got, direct[w])
		}
		fedTotal += got
	}
	if fedTotal < 1 {
		t.Fatalf("no cache hits federated after a repeat submission (total %v)", fedTotal)
	}

	// Rollup catalog: cache hit rate in (0,1], summed queue depth, and
	// per-worker up/probe gauges.
	if rate, n := sumFamily(fed, "hisvsim_cluster_cache_hit_rate", ""); n != 1 || rate <= 0 || rate > 1 {
		t.Fatalf("hisvsim_cluster_cache_hit_rate = %v (%d samples), want one sample in (0,1]", rate, n)
	}
	if _, n := sumFamily(fed, "hisvsim_cluster_queue_depth", ""); n != 1 {
		t.Fatalf("hisvsim_cluster_queue_depth: %d samples, want 1", n)
	}
	for _, w := range []string{w1.URL, w2.URL} {
		if up, n := sumFamily(fed, "hisvsim_cluster_worker_up", w); n != 1 || up != 1 {
			t.Fatalf("hisvsim_cluster_worker_up{worker=%q} = %v (%d samples), want 1", w, up, n)
		}
		if _, n := sumFamily(fed, "hisvsim_cluster_worker_probe_seconds", w); n != 1 {
			t.Fatalf("hisvsim_cluster_worker_probe_seconds{worker=%q}: %d samples, want 1", w, n)
		}
	}
}
