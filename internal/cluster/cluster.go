// Package cluster is the multi-node layer of the simulator service: a
// coordinator that fronts a fleet of hisvsimd workers over the existing
// HTTP/JSON API, scaling the single-process job service horizontally
// without a new wire format.
//
// Three mechanisms carry the design:
//
//   - Fingerprint-sharded routing. A consistent-hash ring keyed by the
//     circuit/template fingerprint sends repeat traffic for the same
//     circuit to the same worker, so that worker's content-addressed
//     plan/state/ρ caches stay hot: N submissions of one circuit cost one
//     simulation cluster-wide, exactly as they do on a single node.
//
//   - Deterministic fan-out. Large trajectory ensembles split into
//     chunk-aligned contiguous sub-ranges ([offset, offset+n) of a fixed
//     total) and sweeps into contiguous binding ranges; sub-jobs reuse the
//     v3 request surface (readouts.traj_offset/traj_total/moments, sweep
//     bindings), and the merge folds the workers' per-chunk partial sums
//     with the same canonical reduction a single node uses — same seeds ⇒
//     bit-identical counts, mean ± stderr and per-point results.
//
//   - Fault tolerance. Workers are health-checked via /readyz, drained or
//     dead workers drop out of the ring, and lost sub-jobs are retried on
//     surviving workers with capped exponential backoff + jitter. A 429
//     from a worker's admission control backs that worker off for its
//     Retry-After horizon instead of burning an attempt.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"hisvsim/internal/obs"
)

// Config tunes the coordinator. The zero value plus at least one worker
// URL (or a workers file) is a working configuration.
type Config struct {
	// Workers is the static worker URL list ("http://host:port").
	Workers []string
	// WorkersFile, when set, is a JSON file {"workers": ["url", …]}
	// reloaded every ReloadEvery — membership changes (scale-up, planned
	// drain) take effect without restarting the coordinator.
	WorkersFile string
	// ReloadEvery is the workers-file poll interval (default 10s).
	ReloadEvery time.Duration
	// HealthEvery is the /readyz probe interval (default 2s).
	HealthEvery time.Duration
	// DeadAfter is the consecutive probe failures after which a worker is
	// dead and leaves the ring (default 3). Draining workers (readyz 503)
	// leave the ring immediately but keep being probed — a drain that
	// completes with a restart comes back.
	DeadAfter int
	// SplitTrajectories is the minimum ensemble size worth fanning out
	// (default 128); smaller ensembles route whole to the ring owner.
	SplitTrajectories int
	// SplitSweepPoints is the minimum sweep grid worth fanning out
	// (default 8).
	SplitSweepPoints int
	// MaxSubJobs caps the fan-out width of one job (default 8).
	MaxSubJobs int
	// MaxAttempts bounds per-sub-job delivery attempts (default 4).
	MaxAttempts int
	// RetryBase/RetryCap shape the capped exponential backoff between
	// attempts (defaults 100ms / 3s); each delay gets ±50% jitter so a
	// thundering herd of retries against a recovering worker spreads out.
	RetryBase time.Duration
	RetryCap  time.Duration
	// PollWait is the long-poll window per result request (default 30s).
	PollWait time.Duration
	// MaxSweepPoints caps coordinator-side grid expansion (default 4096,
	// matching the service default).
	MaxSweepPoints int
	// Retain bounds how many finished jobs the coordinator keeps
	// (default 256; oldest evicted first).
	Retain int
	// Client is the HTTP client used for worker traffic (default: a
	// client with sane timeouts for connect; request bodies long-poll so
	// no overall timeout is set).
	Client *http.Client
	// Logger receives structured cluster events (nil = discard).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.ReloadEvery <= 0 {
		c.ReloadEvery = 10 * time.Second
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = 2 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3
	}
	if c.SplitTrajectories <= 0 {
		c.SplitTrajectories = 128
	}
	if c.SplitSweepPoints <= 0 {
		c.SplitSweepPoints = 8
	}
	if c.MaxSubJobs <= 0 {
		c.MaxSubJobs = 8
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 3 * time.Second
	}
	if c.PollWait <= 0 {
		c.PollWait = 30 * time.Second
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 4096
	}
	if c.Retain <= 0 {
		c.Retain = 256
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logger == nil {
		c.Logger = obs.Nop()
	}
	return c
}

// Worker states (the hisvsim_cluster_workers gauge labels).
const (
	workerReady    = "ready"
	workerDraining = "draining"
	workerDead     = "dead"
)

type worker struct {
	url          string
	state        string
	fails        int           // consecutive probe failures
	backoffUntil time.Time     // admission-control horizon (429 Retry-After)
	lastProbe    time.Duration // latency of the last /readyz probe round trip
	lastProbeAt  time.Time     // when that probe ran
}

// Coordinator fronts the worker fleet: it routes, splits, retries and
// merges, and exposes the same /v1/jobs surface the workers do.
type Coordinator struct {
	cfg    Config
	m      *metrics
	client *http.Client
	log    *slog.Logger

	mu       sync.Mutex
	workers  map[string]*worker
	ring     *ring
	jobs     map[string]*cjob
	order    []string // job ids in submit order, for retention
	seq      int64
	draining bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Errors surfaced by Submit; the HTTP layer maps them to status codes.
var (
	// ErrNoWorkers means the ring is empty — no worker is ready.
	ErrNoWorkers = errors.New("cluster: no ready workers")
	// ErrNotFound means the job id is unknown (or evicted).
	ErrNotFound = errors.New("cluster: job not found")
	// ErrDraining means the coordinator is shutting down.
	ErrDraining = errors.New("cluster: coordinator draining")
)

// New builds a coordinator over the configured workers, probing each one
// synchronously so the first ring reflects live membership, then starts
// the periodic health and workers-file reload loops.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:     cfg,
		m:       newMetrics(),
		client:  cfg.Client,
		log:     cfg.Logger,
		workers: make(map[string]*worker),
		jobs:    make(map[string]*cjob),
		stop:    make(chan struct{}),
	}
	urls := append([]string(nil), cfg.Workers...)
	if cfg.WorkersFile != "" {
		fromFile, err := readWorkersFile(cfg.WorkersFile)
		if err != nil {
			return nil, err
		}
		urls = append(urls, fromFile...)
	}
	if len(urls) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	c.setMembership(urls)
	c.healthSweep()
	c.wg.Add(1)
	go c.healthLoop()
	if cfg.WorkersFile != "" {
		c.wg.Add(1)
		go c.reloadLoop()
	}
	return c, nil
}

// Metrics returns the coordinator's metric registry (served at /metrics).
func (c *Coordinator) Metrics() *obs.Registry { return c.m.reg }

// BeginDrain stops admission; in-flight jobs keep running.
func (c *Coordinator) BeginDrain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
}

// Draining reports whether BeginDrain has been called.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Close drains and stops the background loops. In-flight jobs are not
// awaited — their sub-jobs run on workers and the poll goroutines exit
// with the process.
func (c *Coordinator) Close() {
	c.BeginDrain()
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// readWorkersFile parses {"workers": ["url", …]}.
func readWorkersFile(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: workers file: %w", err)
	}
	var doc struct {
		Workers []string `json:"workers"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("cluster: workers file %s: %w", path, err)
	}
	return doc.Workers, nil
}

// setMembership reconciles the worker set with the given URL list: new
// URLs join (probed on the next sweep), removed URLs leave the ring.
func (c *Coordinator) setMembership(urls []string) {
	want := make(map[string]bool, len(urls))
	for _, u := range urls {
		if u != "" {
			want[u] = true
		}
	}
	c.mu.Lock()
	changed := false
	for u := range want {
		if _, ok := c.workers[u]; !ok {
			// Join optimistically ready: the sweep demotes it within one
			// interval if it is not actually up, and New's synchronous
			// sweep runs before the coordinator serves traffic.
			c.workers[u] = &worker{url: u, state: workerReady}
			changed = true
		}
	}
	for u := range c.workers {
		if !want[u] {
			delete(c.workers, u)
			changed = true
		}
	}
	if changed {
		c.rebuildRingLocked()
	}
	c.mu.Unlock()
}

// rebuildRingLocked rebuilds the ring from ready workers and republishes
// the membership gauges. Callers hold c.mu.
func (c *Coordinator) rebuildRingLocked() {
	var ready []string
	counts := map[string]int{workerReady: 0, workerDraining: 0, workerDead: 0}
	for _, w := range c.workers {
		counts[w.state]++
		if w.state == workerReady {
			ready = append(ready, w.url)
		}
	}
	sort.Strings(ready)
	c.ring = newRing(ready)
	for state, n := range counts {
		c.m.workers.With(state).Set(float64(n))
	}
}

func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.healthSweep()
		}
	}
}

func (c *Coordinator) reloadLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ReloadEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			urls, err := readWorkersFile(c.cfg.WorkersFile)
			if err != nil {
				c.log.Warn("cluster workers-file reload failed", "err", err)
				continue
			}
			c.setMembership(append(append([]string(nil), c.cfg.Workers...), urls...))
		}
	}
}

// healthSweep probes every worker's /readyz once and rebuilds the ring
// when any state changed. Probes run sequentially — fleets are small and
// the probe timeout is short.
func (c *Coordinator) healthSweep() {
	c.mu.Lock()
	urls := make([]string, 0, len(c.workers))
	for u := range c.workers {
		urls = append(urls, u)
	}
	c.mu.Unlock()
	sort.Strings(urls)

	type probeResult struct {
		state   string
		latency time.Duration
	}
	states := make(map[string]probeResult, len(urls))
	for _, u := range urls {
		state, latency := c.probe(u)
		states[u] = probeResult{state: state, latency: latency}
	}

	c.mu.Lock()
	changed := false
	for u, probed := range states {
		w, ok := c.workers[u]
		if !ok {
			continue // removed by a concurrent reload
		}
		w.lastProbe = probed.latency
		w.lastProbeAt = time.Now()
		next := w.state
		switch probed.state {
		case workerReady:
			w.fails = 0
			next = workerReady
		case workerDraining:
			w.fails = 0
			next = workerDraining
		default: // probe error
			w.fails++
			if w.fails >= c.cfg.DeadAfter {
				next = workerDead
			}
		}
		if next != w.state {
			c.log.Info("cluster worker state change", "worker", u, "from", w.state, "to", next)
			w.state = next
			changed = true
		}
		c.m.probeSeconds.With(u).Set(probed.latency.Seconds())
		c.m.probeFails.With(u).Set(float64(w.fails))
	}
	if changed {
		c.rebuildRingLocked()
	}
	c.mu.Unlock()
}

// probe hits one worker's /readyz, classifying the answer and timing the
// round trip (the per-worker probe-latency gauge and /v1/cluster's
// last_probe_ms; a timed-out probe reports the timeout itself).
func (c *Coordinator) probe(url string) (string, time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthEvery)
	defer cancel()
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return workerDead, time.Since(start)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return workerDead, time.Since(start)
	}
	defer resp.Body.Close()
	latency := time.Since(start)
	switch {
	case resp.StatusCode == http.StatusOK:
		return workerReady, latency
	case resp.StatusCode == http.StatusServiceUnavailable:
		return workerDraining, latency
	default:
		return workerDead, latency
	}
}

// candidates returns up to n distinct ready workers for key in ring
// order (owner first), skipping workers inside their admission-control
// backoff horizon unless that would leave no candidate at all.
func (c *Coordinator) candidates(key string, n int) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring == nil {
		return nil
	}
	all := c.ring.successors(key, n)
	now := time.Now()
	var open []string
	for _, u := range all {
		if w, ok := c.workers[u]; ok && now.Before(w.backoffUntil) {
			continue
		}
		open = append(open, u)
	}
	if len(open) == 0 {
		return all // everyone is backing off: better to wait on one than fail
	}
	return open
}

// backoffWorker records a worker's Retry-After horizon so sub-job
// dispatch avoids it until then.
func (c *Coordinator) backoffWorker(url string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[url]; ok {
		until := time.Now().Add(d)
		if until.After(w.backoffUntil) {
			w.backoffUntil = until
		}
	}
}

// retryAfter parses a 429's Retry-After header (delta-seconds form; the
// HTTP-date form is overkill for intra-cluster traffic) with a 1s floor.
func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return time.Second
}

// backoffDelay is the capped exponential retry delay with ±50% jitter.
func (c *Coordinator) backoffDelay(attempt int) time.Duration {
	d := c.cfg.RetryBase << uint(attempt)
	if d > c.cfg.RetryCap || d <= 0 {
		d = c.cfg.RetryCap
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(int64(d)-half+1))
}
