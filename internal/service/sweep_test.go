package service

import (
	"context"
	"math"
	"strings"
	"testing"

	"hisvsim/internal/circuit"
	"hisvsim/internal/core"
	"hisvsim/internal/noise"
)

// isingObjective is the transverse-field Ising Hamiltonian of the
// observables example, as a readout spec: H = −J Σ Z_iZ_{i+1} − h Σ X_i.
func isingObjective(n int) []core.Observable {
	var obs []core.Observable
	for i := 0; i < n-1; i++ {
		obs = append(obs, core.Observable{Coeff: -1, Paulis: "ZZ", Qubits: []int{i, i + 1}})
	}
	for i := 0; i < n; i++ {
		obs = append(obs, core.Observable{Coeff: -0.6, Paulis: "X", Qubits: []int{i}})
	}
	return obs
}

// TestSweep50BindingsOneCompile is the acceptance criterion: a sweep of
// 50 bindings over the Ising Hamiltonian performs exactly ONE fusion
// compile (asserted via the service template_compiles stat AND the
// in-result ledger), and every per-binding readout matches an independent
// concrete run to 1e-9.
func TestSweep50BindingsOneCompile(t *testing.T) {
	s := newTest(t, Config{Workers: 2})
	c := circuit.QAOAAnsatz(6, 1)
	grid := map[string][]float64{"gamma0": nil, "beta0": nil}
	for i := 0; i < 50; i++ {
		grid["gamma0"] = append(grid["gamma0"], -0.8+0.03*float64(i))
		grid["beta0"] = append(grid["beta0"], 0.9-0.025*float64(i))
	}
	spec := core.ReadoutSpec{Observables: isingObjective(6)}
	res, err := s.Do(context.Background(), Request{
		Circuit: c, Kind: KindSweep,
		Readouts: spec,
		Sweep:    &SweepSpec{Grid: grid, Zip: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.TemplateCompiles != 1 {
		t.Fatalf("template_compiles = %d, want exactly 1 for 50 bindings", st.TemplateCompiles)
	}
	if res.Sweep == nil || res.Sweep.Compiles != 1 {
		t.Fatalf("result compiles = %+v, want 1", res.Sweep)
	}
	if len(res.Sweep.Points) != 50 {
		t.Fatalf("points = %d, want 50", len(res.Sweep.Points))
	}
	if res.Sweep.TouchedBlocks == 0 || res.Sweep.SharedBlocks == 0 {
		t.Fatalf("block ledger: touched=%d shared=%d, want both > 0",
			res.Sweep.TouchedBlocks, res.Sweep.SharedBlocks)
	}
	// Differential: spot-check points against one-off concrete evaluations.
	for _, i := range []int{0, 17, 49} {
		p := res.Sweep.Points[i]
		bound, err := c.Bind(p.Binding)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Evaluate(bound, core.Options{Backend: "flat"}, spec)
		if err != nil {
			t.Fatal(err)
		}
		for k, ov := range p.Readouts.Observables {
			if math.Abs(ov.Value-want.Observables[k].Value) > 1e-9 {
				t.Fatalf("point %d obs %d: %v vs concrete %v", i, k, ov.Value, want.Observables[k].Value)
			}
		}
	}
	// A second sweep over the same template: zero new compiles.
	if _, err := s.Do(context.Background(), Request{
		Circuit: c, Kind: KindSweep, Readouts: spec,
		Sweep: &SweepSpec{Bindings: []map[string]float64{{"gamma0": 0.4, "beta0": -0.2}}},
	}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.TemplateCompiles != 1 {
		t.Fatalf("template_compiles after repeat sweep = %d, want still 1", st.TemplateCompiles)
	}
}

// TestSweepBindingErrorsNameSymbol: the submit-time validation failures
// required by the v3 surface, each naming the offending symbol.
func TestSweepBindingErrorsNameSymbol(t *testing.T) {
	s := newTest(t, Config{Workers: 1})
	c := circuit.QAOAAnsatz(3, 1)
	spec := core.ReadoutSpec{Observables: []core.Observable{{Paulis: "Z", Qubits: []int{0}}}}
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"unbound", Request{Circuit: c, Kind: KindSweep, Readouts: spec,
			Sweep: &SweepSpec{Bindings: []map[string]float64{{"gamma0": 1}}}}, "beta0"},
		{"unknown", Request{Circuit: c, Kind: KindSweep, Readouts: spec,
			Sweep: &SweepSpec{Bindings: []map[string]float64{{"gamma0": 1, "beta0": 1, "zeta": 0}}}}, "zeta"},
		{"non-finite", Request{Circuit: c, Kind: KindSweep, Readouts: spec,
			Sweep: &SweepSpec{Bindings: []map[string]float64{{"gamma0": math.Inf(1), "beta0": 1}}}}, "gamma0"},
		{"grid-mismatch", Request{Circuit: c, Kind: KindSweep, Readouts: spec,
			Sweep: &SweepSpec{Grid: map[string][]float64{"gamma0": {1, 2}, "beta0": {1}}, Zip: true}}, "grid-size mismatch"},
		{"run-unbound", Request{Circuit: c, Kind: KindRun, Readouts: spec,
			Params: map[string]float64{"gamma0": 1}}, "beta0"},
		{"run-unknown", Request{Circuit: circuit.MustNamed("ising", 3), Kind: KindRun, Readouts: spec,
			Params: map[string]float64{"theta": 1}}, "theta"},
		{"legacy-parametric", Request{Circuit: c, Kind: KindStatevector}, "unbound symbol"},
		{"optimize-unknown-init", Request{Circuit: c, Kind: KindOptimize,
			Optimize: &core.OptimizeSpec{Observables: []core.Observable{{Paulis: "Z", Qubits: []int{0}}},
				Init: map[string]float64{"omega": 1}}}, "omega"},
		{"sweep-nonflat", Request{Circuit: c, Kind: KindSweep, Readouts: spec,
			Options: Requests("hier"),
			Sweep:   &SweepSpec{Bindings: []map[string]float64{{"gamma0": 1, "beta0": 1}}}}, "flat template engine"},
	}
	for _, tc := range cases {
		_, err := s.Submit(tc.req)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// Requests builds options with the named backend (tiny test helper).
func Requests(backend string) core.Options { return core.Options{Backend: backend} }

// TestRunWithParamsMatchesBoundCircuit: KindRun + Params equals the bound
// concrete circuit bit-for-bit, and repeated bindings share one template
// compile while distinct bindings get distinct states.
func TestRunWithParamsMatchesBoundCircuit(t *testing.T) {
	s := newTest(t, Config{Workers: 2})
	c := circuit.QAOAAnsatz(4, 1)
	spec := core.ReadoutSpec{Shots: 300, Seed: 9, Observables: isingObjective(4)}
	envA := map[string]float64{"gamma0": 0.7, "beta0": -0.3}
	envB := map[string]float64{"gamma0": -0.2, "beta0": 0.5}

	for _, env := range []map[string]float64{envA, envB, envA} {
		res, err := s.Do(context.Background(), Request{
			Circuit: c, Kind: KindRun, Readouts: spec, Params: env,
			Options: core.Options{Backend: "flat"},
		})
		if err != nil {
			t.Fatal(err)
		}
		bound, err := c.Bind(env)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Evaluate(bound, core.Options{Backend: "flat"}, spec)
		if err != nil {
			t.Fatal(err)
		}
		for k, ov := range res.Observables {
			if math.Abs(ov.Value-want.Observables[k].Value) > 1e-9 {
				t.Fatalf("obs %d: %v vs %v", k, ov.Value, want.Observables[k].Value)
			}
		}
		for k := range res.Samples {
			if res.Samples[k] != want.Samples[k] {
				t.Fatalf("sample %d differs", k)
			}
		}
	}
	st := s.Stats()
	if st.TemplateCompiles != 1 {
		t.Fatalf("template_compiles = %d, want 1 across three bound runs", st.TemplateCompiles)
	}
	if st.Simulations != 2 {
		t.Fatalf("simulations = %d, want 2 (envA cached on repeat)", st.Simulations)
	}
}

// TestRunWithParamsOnOtherBackends: a parameterized run on a non-flat
// backend binds at submit and still matches the template result.
func TestRunWithParamsOnOtherBackends(t *testing.T) {
	s := newTest(t, Config{Workers: 2})
	c := circuit.QAOAAnsatz(4, 1)
	env := map[string]float64{"gamma0": 0.35, "beta0": -0.6}
	spec := core.ReadoutSpec{Observables: isingObjective(4)}
	var vals [][]core.ObservableValue
	for _, b := range []string{"flat", "hier", "baseline"} {
		res, err := s.Do(context.Background(), Request{
			Circuit: c, Kind: KindRun, Readouts: spec, Params: env,
			Options: core.Options{Backend: b},
		})
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if res.Backend != b {
			t.Fatalf("backend = %q, want %q", res.Backend, b)
		}
		vals = append(vals, res.Observables)
	}
	for i := 1; i < len(vals); i++ {
		for k := range vals[i] {
			if math.Abs(vals[i][k].Value-vals[0][k].Value) > 1e-9 {
				t.Fatalf("backend %d obs %d: %v vs flat %v", i, k, vals[i][k].Value, vals[0][k].Value)
			}
		}
	}
}

// TestSweepNoisyService: an effective-noise sweep compiles one trajectory
// plan, runs per-point ensembles, and matches concrete noisy runs.
func TestSweepNoisyService(t *testing.T) {
	s := newTest(t, Config{Workers: 2})
	c := circuit.QAOAAnsatz(3, 1)
	m := (&noise.Model{}).AddRule(noise.Rule{Channel: noise.Depolarizing(0.05)})
	spec := core.ReadoutSpec{Seed: 3, Trajectories: 48,
		Observables: []core.Observable{{Paulis: "ZZ", Qubits: []int{0, 1}}}}
	bindings := []map[string]float64{
		{"gamma0": 0.2, "beta0": 0.4},
		{"gamma0": -0.5, "beta0": 0.1},
	}
	res, err := s.Do(context.Background(), Request{
		Circuit: c, Kind: KindSweep, Readouts: spec, Noise: m,
		Sweep: &SweepSpec{Bindings: bindings},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != BackendTrajectory {
		t.Fatalf("backend = %q", res.Backend)
	}
	if res.Sweep.Trajectories != 48 {
		t.Fatalf("trajectories = %d", res.Sweep.Trajectories)
	}
	for i, p := range res.Sweep.Points {
		bound, err := c.Bind(bindings[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Evaluate(bound, core.Options{Noise: m, Workers: 1}, spec)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Readouts.Observables[0].Value-want.Observables[0].Value) > 1e-9 {
			t.Fatalf("point %d: %v vs %v", i, p.Readouts.Observables[0].Value, want.Observables[0].Value)
		}
	}
}

// TestOptimizeJob: the server-side loop returns an improving trace and a
// complete best binding.
func TestOptimizeJob(t *testing.T) {
	s := newTest(t, Config{Workers: 2})
	c := circuit.QAOAAnsatz(4, 1)
	res, err := s.Do(context.Background(), Request{
		Circuit: c, Kind: KindOptimize,
		Optimize: &core.OptimizeSpec{
			Observables: isingObjective(4),
			Method:      core.MethodSPSA, MaxIters: 25, Seed: 7, A: 0.4, C: 0.15,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimize == nil || len(res.Optimize.Trace) == 0 {
		t.Fatal("missing optimize payload")
	}
	if res.Optimize.BestValue >= res.Optimize.Trace[0].Value+1e-12 &&
		res.Optimize.BestValue >= 0 {
		t.Fatalf("no improvement: best %v, first %v", res.Optimize.BestValue, res.Optimize.Trace[0].Value)
	}
	if err := c.CheckBinding(res.Optimize.Best); err != nil {
		t.Fatalf("best binding incomplete: %v", err)
	}
	if st := s.Stats(); st.TemplateCompiles != 1 {
		t.Fatalf("template_compiles = %d", st.TemplateCompiles)
	}
}

// TestShimHitCounting: deprecated kinds bump shim_hits; v2/v3 kinds don't.
func TestShimHitCounting(t *testing.T) {
	s := newTest(t, Config{Workers: 1})
	c := circuit.MustNamed("ising", 4)
	for _, req := range []Request{
		{Circuit: c, Kind: KindStatevector},
		{Circuit: c, Kind: KindSample, Shots: 16},
		{Circuit: c, Kind: KindExpectation, Qubits: []int{0}},
		{Circuit: c, Kind: KindProbabilities, Qubits: []int{0}},
	} {
		if _, err := s.Do(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.ShimHits != 4 {
		t.Fatalf("shim_hits = %d, want 4", st.ShimHits)
	}
	if _, err := s.Do(context.Background(), Request{Circuit: c, Kind: KindRun,
		Readouts: core.ReadoutSpec{Shots: 16}}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ShimHits != 4 {
		t.Fatalf("shim_hits after KindRun = %d, want still 4", st.ShimHits)
	}
}

// TestSweepGridExpansion: cartesian and zip grids expand as documented.
func TestSweepGridExpansion(t *testing.T) {
	sp := &SweepSpec{Grid: map[string][]float64{"a": {1, 2, 3}, "b": {10, 20}}}
	pts, err := sp.Expand(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("cartesian points = %d, want 6", len(pts))
	}
	// Sorted symbol order, last symbol fastest: (a=1,b=10), (a=1,b=20), …
	if pts[0]["a"] != 1 || pts[0]["b"] != 10 || pts[1]["a"] != 1 || pts[1]["b"] != 20 || pts[2]["a"] != 2 {
		t.Fatalf("cartesian order wrong: %v", pts[:3])
	}
	if _, err := sp.Expand(5); err == nil {
		t.Fatal("oversize cartesian grid accepted")
	}
	zip := &SweepSpec{Grid: map[string][]float64{"a": {1, 2}, "b": {10, 20}}, Zip: true}
	zpts, err := zip.Expand(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(zpts) != 2 || zpts[1]["a"] != 2 || zpts[1]["b"] != 20 {
		t.Fatalf("zip points wrong: %v", zpts)
	}
	both := &SweepSpec{Bindings: []map[string]float64{{"a": 1}}, Grid: map[string][]float64{"a": {1}}}
	if _, err := both.Expand(100); err == nil {
		t.Fatal("bindings+grid accepted")
	}
}
