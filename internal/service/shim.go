package service

import (
	"strings"

	"hisvsim/internal/core"
)

// This file is the ENTIRE deprecated v1 surface: six single-readout kinds
// (statevector, sample, expectation, probabilities, noisy_sample,
// noisy_expectation) expressed as a translation table over the unified
// KindRun path. Each shim is two pure functions — lower the legacy request
// onto a core.ReadoutSpec, then project the unified read-outs back onto
// the legacy result fields — so the executors never see a v1 kind and the
// v1 payloads stay byte-compatible. Submit counts table hits in
// Stats.ShimHits ("shim_hits" on /v1/stats) so the deprecation window can
// close on evidence rather than guesswork; removing a kind is deleting
// its table row.

// v1Shim adapts one deprecated kind onto the unified readout path.
type v1Shim struct {
	// spec lowers the legacy request fields onto the ReadoutSpec the
	// unified executors consume.
	spec func(req Request) core.ReadoutSpec
	// project maps the evaluated read-outs back onto the kind's legacy
	// result fields.
	project func(res *Result, ro *core.Readouts)
}

// v1Shims is the deprecated-kind translation table.
var v1Shims = map[Kind]v1Shim{
	KindStatevector: {
		spec: func(Request) core.ReadoutSpec {
			return core.ReadoutSpec{Statevector: true}
		},
		project: func(res *Result, ro *core.Readouts) {
			res.Amplitudes = ro.Amplitudes
		},
	},
	KindSample: {
		spec:    sampleSpec,
		project: sampleProject,
	},
	KindNoisySample: {
		spec:    sampleSpec,
		project: sampleProject,
	},
	KindExpectation: {
		spec:    zStringSpec,
		project: zStringProject,
	},
	KindNoisyExpectation: {
		spec:    zStringSpec,
		project: zStringProject,
	},
	KindProbabilities: {
		spec: func(req Request) core.ReadoutSpec {
			return core.ReadoutSpec{Marginals: [][]int{req.Qubits}}
		},
		project: func(res *Result, ro *core.Readouts) {
			res.Probabilities = ro.Marginals[0]
		},
	},
}

func sampleSpec(req Request) core.ReadoutSpec {
	return core.ReadoutSpec{Shots: req.Shots, Seed: req.Seed, Trajectories: req.Trajectories}
}

func sampleProject(res *Result, ro *core.Readouts) {
	res.Samples = ro.Samples
	res.Counts = ro.Counts
}

// zStringSpec is the legacy Z-string observable (repeats cancel via
// Z² = I, handled by the kernel's Z-only delegation).
func zStringSpec(req Request) core.ReadoutSpec {
	qs := req.Qubits
	if qs == nil {
		qs = []int{}
	}
	return core.ReadoutSpec{
		Observables:  []core.Observable{{Paulis: strings.Repeat("Z", len(qs)), Qubits: qs}},
		Seed:         req.Seed,
		Trajectories: req.Trajectories,
	}
}

func zStringProject(res *Result, ro *core.Readouts) {
	res.Expectation = ro.Observables[0].Value
	res.StdErr = ro.Observables[0].StdErr
}

// specForJob lowers a request onto the unified ReadoutSpec: KindRun (and
// the template kinds) carry their spec verbatim; deprecated kinds go
// through their table row.
func specForJob(req Request) core.ReadoutSpec {
	if sh, ok := v1Shims[req.Kind]; ok {
		return sh.spec(req)
	}
	return req.Readouts
}

// legacyProject maps unified read-outs back onto the result: the table row
// for deprecated kinds, the unified fields as-is for KindRun.
func legacyProject(res *Result, ro *core.Readouts) {
	if sh, ok := v1Shims[res.Kind]; ok {
		sh.project(res, ro)
		return
	}
	res.Amplitudes = ro.Amplitudes
	res.Samples = ro.Samples
	res.Counts = ro.Counts
	res.Marginals = ro.Marginals
	res.Observables = ro.Observables
}
