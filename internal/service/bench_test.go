package service

import (
	"context"
	"io"
	"log/slog"
	"testing"

	"hisvsim/internal/circuit"
	"hisvsim/internal/core"
	"hisvsim/internal/obs"
)

// BenchmarkCacheHitSample measures the steady-state cost of a sample
// request against an already-cached circuit (the service's hot path).
func BenchmarkCacheHitSample(b *testing.B) {
	s := New(Config{Workers: 1})
	defer s.Close()
	c := circuit.MustNamed("qft", 14)
	req := Request{Circuit: c, Kind: KindSample, Shots: 1000, Options: core.Options{Strategy: "dagp"}}
	if _, err := s.Do(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Seed = int64(i)
		res, err := s.Do(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheHit {
			b.Fatal("cache miss on hot path")
		}
	}
}

// BenchmarkServiceInstrumented is the observability overhead guard: the
// same cache-hit hot path as BenchmarkCacheHitSample, but configured the
// way hisvsimd runs in production — an explicit shared registry plus a
// real text slog handler at Info (writing to io.Discard), so the per-job
// finish line and every counter/histogram update are on the clock.
// Compare ns/op against BenchmarkCacheHitSample at the PR 6 commit; the
// budget is a <2% delta.
func BenchmarkServiceInstrumented(b *testing.B) {
	reg := obs.NewRegistry()
	s := New(Config{Workers: 1, Metrics: reg,
		Logger: obs.NewLogger(io.Discard, slog.LevelInfo, false)})
	defer s.Close()
	c := circuit.MustNamed("qft", 14)
	req := Request{Circuit: c, Kind: KindSample, Shots: 1000, Options: core.Options{Strategy: "dagp"}}
	if _, err := s.Do(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Seed = int64(i)
		res, err := s.Do(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheHit {
			b.Fatal("cache miss on hot path")
		}
	}
}

// BenchmarkColdSimulate measures a full miss: simulation + sampling.
func BenchmarkColdSimulate(b *testing.B) {
	s := New(Config{Workers: 1, CacheBytes: -1})
	defer s.Close()
	c := circuit.MustNamed("qft", 14)
	req := Request{Circuit: c, Kind: KindSample, Shots: 1000, Options: core.Options{Strategy: "dagp"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Do(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}
