// Package service is the production front of the simulator: an asynchronous
// simulation service that turns the one-shot core.Simulate library call into
// a job-oriented API suitable for sustained traffic.
//
// Three mechanisms carry the load:
//
//   - A bounded job queue drained by a fixed worker pool. Every job carries
//     a context (service root + optional per-request timeout), so queued and
//     running work is cancellable; cancellation propagates into the
//     executors at part/step boundaries via core.SimulateContext.
//
//   - A content-addressed plan/result cache: entries are keyed by
//     Circuit.Fingerprint() plus the semantically relevant simulation
//     options, and hold the partition plan and the final state. N shot
//     requests against the same circuit cost one simulation plus O(shots)
//     sampling — repeat sampling reuses a prebuilt CDF (sv.Sampler) without
//     copying the state. Concurrent misses on one key are single-flighted
//     so a burst of identical requests still simulates once.
//
//   - A unified request API (KindRun + core.ReadoutSpec): one job asks for
//     any mix of amplitudes, seeded shots, marginal distributions and
//     general Pauli-string observables, and — with or without a noise
//     model — pays for exactly one simulation (or one trajectory
//     ensemble). The pre-v2 one-readout-per-job kinds (statevector,
//     sample, expectation, probabilities, noisy_sample,
//     noisy_expectation) remain as thin shims over the same spec with
//     byte-compatible results. Per-request Options.Backend selects the
//     execution engine from the backend registry.
//
// Compiled trajectory plans live in their own small LRU (Config.
// PlanCacheBytes) beside the plan/state cache, so giant statevector
// entries can never evict every hot plan.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hisvsim/internal/backend"
	"hisvsim/internal/circuit"
	"hisvsim/internal/core"
	"hisvsim/internal/dm"
	"hisvsim/internal/lru"
	"hisvsim/internal/noise"
	"hisvsim/internal/obs"
	"hisvsim/internal/partition"
	"hisvsim/internal/prof"
	"hisvsim/internal/sv"
)

// Kind selects what a job computes from the simulated state.
type Kind string

// Request kinds.
const (
	// KindRun is the v2 unified kind: Request.Readouts (core.ReadoutSpec)
	// names any mix of statevector, seeded shots, marginal distributions
	// and weighted Pauli-string observables, all derived from ONE
	// simulation (or, when Request.Noise is effective, one trajectory
	// ensemble). Every other kind is a deprecated single-readout shim over
	// this path.
	KindRun Kind = "run"

	// KindSweep is the v3 grid kind: one parameterized circuit template,
	// one ReadoutSpec, and a binding grid (Request.Sweep). The template
	// compiles ONCE (asserted by Stats.TemplateCompiles) and every grid
	// point re-binds the compiled plan, so M bindings cost one fusion
	// compile plus M cheap runs. Results are keyed per grid point.
	KindSweep Kind = "sweep"

	// KindOptimize is the v3 variational kind: a server-side SPSA or
	// Nelder-Mead loop (Request.Optimize) minimizing a weighted Pauli
	// observable sum over the template's symbols, with a per-iteration
	// trace in the result — the whole VQE/QAOA outer loop in one job.
	KindOptimize Kind = "optimize"

	// Deprecated single-readout kinds (v1 surface). They execute through
	// the same unified readout path as KindRun and keep byte-compatible
	// results (see shim.go for the whole translation table); new callers
	// should send KindRun with a ReadoutSpec. Stats.ShimHits counts their
	// use so the removal decision can be data-driven.
	KindStatevector   Kind = "statevector"   // full amplitude vector
	KindSample        Kind = "sample"        // Shots seeded basis-state samples
	KindExpectation   Kind = "expectation"   // ⟨∏ Z_q⟩ over Qubits
	KindProbabilities Kind = "probabilities" // marginal distribution over Qubits

	// KindNoisySample and KindNoisyExpectation (also deprecated: KindRun
	// plus Request.Noise subsumes both) run a stochastic trajectory
	// ensemble under Request.Noise instead of a single ideal simulation:
	// trajectory batches fan out across the worker-pool width, the compiled
	// (circuit + noise) plan is cached and reused across requests, and the
	// results aggregate counts (noisy_sample) or the trajectory-mean
	// ⟨∏ Z_q⟩ with its standard error (noisy_expectation).
	KindNoisySample      Kind = "noisy_sample"
	KindNoisyExpectation Kind = "noisy_expectation"
)

// BackendTrajectory is the backend name reported for jobs whose effective
// noise model routes execution through the flat trajectory-ensemble engine
// rather than a registered ideal backend.
const BackendTrajectory = "trajectory"

// Kinds lists the accepted request kinds.
func Kinds() []Kind {
	return []Kind{KindRun, KindSweep, KindOptimize,
		KindStatevector, KindSample, KindExpectation, KindProbabilities,
		KindNoisySample, KindNoisyExpectation}
}

// Noisy reports whether the kind runs a trajectory ensemble.
func (k Kind) Noisy() bool { return k == KindNoisySample || k == KindNoisyExpectation }

// Parameterized reports whether the kind is a v3 template job (binding
// grids or optimization loops over a parameterized circuit).
func (k Kind) Parameterized() bool { return k == KindSweep || k == KindOptimize }

// Request describes one simulation job.
type Request struct {
	// Circuit to simulate (required, validated on submit).
	Circuit *circuit.Circuit
	// Kind of read-out (required).
	Kind Kind
	// Shots is the sample count for KindSample (default 1024).
	Shots int
	// Seed drives the sampling RNG for KindSample; a fixed (circuit,
	// options, seed) triple reproduces the exact shot sequence. It is NOT
	// part of the cache key — differently-seeded sample requests share one
	// simulated state.
	Seed int64
	// Qubits are the Z-string qubits (KindExpectation, KindNoisyExpectation)
	// or the marginal qubits, little-endian (KindProbabilities).
	Qubits []int
	// Readouts is the unified multi-readout spec for KindRun and KindSweep
	// (rejected on the deprecated kinds, which carry their read-out in the
	// fields above). Its Seed/Trajectories fields take over the role of the
	// request-level ones for those kinds.
	Readouts core.ReadoutSpec
	// Params binds the circuit's symbols for KindRun (v3): a parameterized
	// circuit template plus a complete binding runs exactly like the bound
	// concrete circuit, but flat ideal runs share ONE compiled template
	// across bindings (cache key: template fingerprint + binding digest).
	// Unbound, unknown or non-finite entries are submit errors naming the
	// symbol. Rejected on every other kind.
	Params map[string]float64
	// Sweep is the binding grid for KindSweep (required there, rejected
	// elsewhere).
	Sweep *SweepSpec
	// Optimize is the optimization spec for KindOptimize (required there,
	// rejected elsewhere).
	Optimize *core.OptimizeSpec
	// Noise is the noise model (nil = ideal: the trajectory layer reduces
	// to one cached simulation plus sampling). Accepted by KindRun and the
	// noisy kinds; rejected when effective on the deprecated ideal kinds.
	Noise *noise.Model
	// Trajectories is the ensemble size for the deprecated noisy kinds
	// (default 256, capped by Config.MaxTrajectories); KindRun uses
	// Readouts.Trajectories.
	Trajectories int
	// Options forwards to core.Simulate (backend, strategy, Lm, ranks,
	// fusion, …). Options.Backend selects the execution engine per request
	// (validated against the registry at submit).
	Options core.Options
	// Timeout, when > 0, bounds the job from submission to completion.
	Timeout time.Duration
}

// Status is a job's lifecycle state.
type Status string

// Job statuses.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Result is a completed job's payload. Exactly the fields implied by Kind
// are populated.
type Result struct {
	Kind Kind
	// Amplitudes is the final state (KindStatevector). It is a copy of the
	// cached state made once per job, shared by every observer of that job
	// (Wait, Job, the HTTP snapshot): mutating it never corrupts the
	// cache, but treat it as read-only unless you are the job's sole
	// reader.
	Amplitudes []complex128
	// Samples are the drawn basis-state indices and Counts their histogram
	// (KindSample).
	Samples []int
	Counts  map[int]int
	// Expectation is ⟨∏ Z_q⟩ (KindExpectation), or its trajectory mean
	// (KindNoisyExpectation) with StdErr the standard error of that mean.
	Expectation float64
	StdErr      float64
	// Trajectories is the executed ensemble size (noisy kinds).
	Trajectories int
	// Probabilities is the marginal distribution (KindProbabilities).
	Probabilities []float64
	// Marginals and Observables are the KindRun multi-readout payloads, in
	// ReadoutSpec order.
	Marginals   [][]float64
	Observables []core.ObservableValue
	// Moments are the per-chunk partial sums behind the ensemble's mean ±
	// stderr readouts (KindRun with Readouts.Moments on an effective-noise
	// ensemble): the deterministic-merge surface a cluster coordinator
	// reduces sub-range results with.
	Moments []noise.Moment
	// Sweep is the per-grid-point readout table (KindSweep).
	Sweep *core.SweepReport
	// Optimize is the optimization outcome with its iteration trace
	// (KindOptimize).
	Optimize *core.OptimizeReport

	// NumQubits is the simulated register width.
	NumQubits int
	// Backend is the engine that executed the job: a registry name
	// ("flat", "hier", "dist", "baseline", …) or BackendTrajectory for
	// effective-noise ensembles.
	Backend string
	// CacheHit reports whether the job reused a cached simulation.
	CacheHit bool
	// Parts is the partition plan's part count.
	Parts int
	// Elapsed is the job's execution time (excluding queue wait); Waited is
	// the time spent queued.
	Elapsed time.Duration
	Waited  time.Duration
	// Stages is the job's completed stage trace: sequential spans
	// (queue_wait, compile, execute, sample, …) that tile the
	// submitted→finished window, so their durations sum to the job's wall
	// time. Served over HTTP at GET /v1/jobs/{id}/trace.
	Stages []obs.Span
	// Profile is the job's kernel-level execution profile: per (kernel
	// class, block width) time, amplitudes touched, bytes moved and scratch
	// allocations, attributed by the engines while the job ran. The rows
	// tile the execute/simulate stage (ensemble kernels sum across
	// concurrent trajectories). Served over HTTP at
	// GET /v1/jobs/{id}/profile.
	Profile []prof.KernelStat
}

// JobInfo is a point-in-time snapshot of a job.
type JobInfo struct {
	ID     string
	Kind   Kind
	Status Status
	// Backend is the engine executing (or that executed) the job: empty
	// while queued, then a registry name or BackendTrajectory.
	Backend   string
	Err       string // non-empty iff StatusFailed/StatusCanceled
	Result    *Result
	Submitted time.Time
	Started   time.Time // zero until running
	Finished  time.Time // zero until terminal
	// RequestID is the job's correlation ID: taken from the submitting
	// context (the HTTP layer mints one per request and echoes it in
	// X-Request-ID), or generated at submit. It appears as request_id on
	// every log line the job produces.
	RequestID string
	// ParentSpan is the submitting side's span ID when the job arrived as
	// a cluster fan-out sub-job (the coordinator sends it in
	// X-Parent-Span); empty for direct submissions. It lets a stitched
	// cluster trace pin this job's stages under the exact coordinator
	// attempt that dispatched it.
	ParentSpan string
	// Trace is the job's stage spans so far (live jobs include the open
	// stage measured to now; terminal jobs tile submitted→finished).
	Trace []obs.Span
	// Profile is the job's kernel profile so far: live jobs report the
	// counters accumulated up to the snapshot (the recorder is lock-free),
	// terminal jobs the full profile.
	Profile []prof.KernelStat
}

// Config tunes a Service. The zero value selects the documented defaults.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued-but-not-running jobs (default 256); Submit
	// returns ErrQueueFull beyond it, giving callers backpressure instead
	// of unbounded memory growth.
	QueueDepth int
	// CacheBytes budgets the plan/state cache (default 256 MiB; negative
	// disables caching).
	CacheBytes int64
	// PlanCacheBytes budgets the separate compiled-trajectory-plan cache
	// (default 16 MiB; negative disables it). Plans are tiny but hot —
	// keeping them out of the state cache means a burst of giant
	// statevector entries can never evict every compiled plan.
	PlanCacheBytes int64
	// RetainJobs bounds how many terminal jobs stay pollable (default
	// 4096); older ones are forgotten FIFO.
	RetainJobs int
	// RetainBytes bounds the summed result payload of retained terminal
	// jobs (default 256 MiB): big statevector results age out of the job
	// store long before the count bound so they cannot pin memory.
	RetainBytes int64
	// MaxQubits rejects circuits wider than this at submit (default 26,
	// a 1 GiB state).
	MaxQubits int
	// MaxShots rejects sample requests above this shot count (default
	// 1e6), bounding per-job result memory.
	MaxShots int
	// MaxRanks rejects requests asking for more simulated MPI ranks than
	// this (default 64): each virtual rank costs a goroutine plus mailbox,
	// so an unbounded Options.Ranks would let one request exhaust memory.
	MaxRanks int
	// MaxTrajectories rejects noisy requests above this ensemble size
	// (default 4096): each trajectory is a full 2^n sweep of the circuit,
	// so the bound plays the same backpressure role MaxShots does for
	// sampling.
	MaxTrajectories int
	// MaxSweepPoints rejects sweep jobs whose binding grid expands beyond
	// this many points (default 4096): each point is a template run plus a
	// retained readout, so the bound is the sweep-shaped sibling of
	// MaxShots/MaxTrajectories.
	MaxSweepPoints int
	// MaxOptimizeIters caps OptimizeSpec.MaxIters (default 1000); every
	// iteration costs up to a handful of objective evaluations.
	MaxOptimizeIters int
	// Metrics is the registry the service reports into (nil = a private
	// one). Share a registry between the service and obs.InstrumentHTTP so
	// one GET /metrics exposition covers both; use one registry per
	// Service — the queue-depth and worker gauges are service-shaped.
	Metrics *obs.Registry
	// Logger receives the service's structured log lines (job lifecycle
	// at info, submissions at debug), each carrying the job's request_id.
	// Nil discards them.
	Logger *slog.Logger
}

// maxJobWorkers caps Options.Workers per request; more goroutines than
// this never helps a kernel sweep and only costs scheduler memory.
const maxJobWorkers = 1024

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.PlanCacheBytes == 0 {
		c.PlanCacheBytes = 16 << 20
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 4096
	}
	if c.MaxQubits <= 0 {
		c.MaxQubits = 26
	}
	if c.MaxShots <= 0 {
		c.MaxShots = 1_000_000
	}
	if c.RetainBytes <= 0 {
		c.RetainBytes = 256 << 20
	}
	if c.MaxRanks <= 0 {
		c.MaxRanks = 64
	}
	if c.MaxTrajectories <= 0 {
		c.MaxTrajectories = 4096
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 4096
	}
	if c.MaxOptimizeIters <= 0 {
		c.MaxOptimizeIters = 1000
	}
	return c
}

// Stats is a snapshot of service counters.
type Stats struct {
	Submitted    int64 `json:"submitted"`
	Completed    int64 `json:"completed"`
	Failed       int64 `json:"failed"`
	Canceled     int64 `json:"canceled"`
	Simulations  int64 `json:"simulations"`  // actual core.Simulate executions
	Trajectories int64 `json:"trajectories"` // stochastic trajectories executed
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	// TemplateCompiles counts parameterized-template fusion compiles. This
	// is the compile-amortization scoreboard: a sweep of M bindings over a
	// cold template bumps it by exactly 1.
	TemplateCompiles int64 `json:"template_compiles"`
	// ShimHits counts submissions through the deprecated v1 kinds (the
	// shim.go table), informing the eventual removal.
	ShimHits int64 `json:"shim_hits"`

	CacheEntries int   `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`
	// PlanCacheEntries/Bytes snapshot the separate compiled-trajectory-plan
	// LRU (see Config.PlanCacheBytes).
	PlanCacheEntries int   `json:"plan_cache_entries"`
	PlanCacheBytes   int64 `json:"plan_cache_bytes"`
	QueueLength      int   `json:"queue_length"`
	Workers          int   `json:"workers"`
	// Backends counts executed jobs per engine name (registry names plus
	// BackendTrajectory for effective-noise ensembles).
	Backends map[string]int64 `json:"backends,omitempty"`
}

// Service errors.
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrClosed    = errors.New("service: closed")
	ErrNotFound  = errors.New("service: no such job")
)

// Service is the asynchronous simulation engine. Create with New, submit
// with Submit/Do, observe with Job/Wait/Stats, stop with Close.
type Service struct {
	cfg  Config
	root context.Context
	stop context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup
	// draining flips once when graceful shutdown begins: /readyz turns 503
	// so load balancers stop routing, while /healthz stays 200 until the
	// process exits (liveness vs readiness).
	draining atomic.Bool
	// trajTokens bounds trajectory-level parallelism ACROSS noisy jobs:
	// every noisy job runs at least one trajectory lane (its own worker
	// slot) and widens by however many shared tokens it can grab, so the
	// total live trajectory goroutines — each holding a 2^n state — stay
	// O(Workers) no matter how many noisy jobs run concurrently (a per-job
	// width of cfg.Workers would square that).
	trajTokens chan struct{}

	mu            sync.Mutex
	closed        bool
	jobs          map[string]*job
	retained      []string // terminal job IDs, oldest first
	retainedBytes int64    // summed result payload of retained jobs
	nextID        int64
	cache         *lru.Cache
	planCache     *lru.Cache // compiled trajectory plans (own small budget)
	inflight      map[string]*flight

	// m is the single source of truth for every service counter: Stats()
	// is a read-only projection of it, and GET /metrics exposes it raw.
	m   *serviceMetrics
	log *slog.Logger
}

// job is the internal mutable job record; all fields past ctx/cancel are
// guarded by Service.mu (idealBackend is written once at submit and then
// read-only).
type job struct {
	id     string
	req    Request
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// idealBackend is the resolved registry name for the job's ideal
	// simulations (cache key + default execution engine).
	idealBackend string
	// exact marks an exact-noise engine (backend capability NoiseExact):
	// the job — ideal or noisy — runs one density-matrix evolution.
	exact bool
	// backend is the engine actually executing the job (idealBackend or
	// BackendTrajectory), set when execution starts.
	backend string
	// requestID correlates the job's log lines (and its HTTP submit, when
	// the ID came in via X-Request-ID); parentSpan is the coordinator
	// attempt span on fan-out sub-jobs (X-Parent-Span), empty otherwise;
	// trace records the job's sequential stage spans, tiling
	// submitted→finished. All write-once at submit; the trace has its own
	// lock.
	requestID  string
	parentSpan string
	trace      *obs.Trace
	// profr accumulates the job's kernel-level profile: the engines record
	// into it through the job context, lock-free, so snapshots are safe at
	// any time.
	profr *prof.Recorder

	status    Status
	result    *Result
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// cacheEntry is one simulated circuit: the plan, the final state (shared
// read-only by every hit) and a lazily built sampler over it.
type cacheEntry struct {
	plan  *partition.Plan
	state *sv.State

	samplerOnce sync.Once
	sampler     *sv.Sampler
}

func (e *cacheEntry) getSampler() *sv.Sampler {
	e.samplerOnce.Do(func() { e.sampler = sv.NewSampler(e.state) })
	return e.sampler
}

// parts returns the plan's part count (0 for unpartitioned backends such
// as flat and baseline, which simulate without a plan).
func (e *cacheEntry) parts() int {
	if e.plan == nil {
		return 0
	}
	return e.plan.NumParts()
}

func (e *cacheEntry) cost() int64 {
	// Charge the lazily built sampler CDF (8 bytes/amplitude) up front:
	// it attaches to the entry after Put, so budgeting only the 16-byte
	// amplitudes would let a sampled cache overshoot its budget by ~50%.
	return int64(len(e.state.Amps))*(16+8) + 1024 // + 1 KiB plan slack
}

// costed is a cacheable single-flight payload (cacheEntry's simulated
// state or dmEntry's evolved ρ).
type costed interface{ cost() int64 }

// flight tracks one in-progress simulation so concurrent misses on the same
// key wait for it instead of duplicating the work.
type flight struct {
	done chan struct{}
	val  costed
	err  error
}

// dmEntry is one evolved density matrix: the exact ρ for a (circuit, noise,
// fusion) key, shared read-only by every hit like cacheEntry's state.
type dmEntry struct {
	d *dm.Density
}

func (e *dmEntry) cost() int64 { return e.d.MemoryBytes() + 1024 }

// New starts a service with cfg's worker pool running.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	root, stop := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		root:       root,
		stop:       stop,
		queue:      make(chan *job, cfg.QueueDepth),
		jobs:       map[string]*job{},
		cache:      lru.New(cfg.CacheBytes),
		planCache:  lru.New(cfg.PlanCacheBytes),
		inflight:   map[string]*flight{},
		trajTokens: make(chan struct{}, cfg.Workers), // Workers−1 tokens below
		m:          newServiceMetrics(cfg.Metrics),
		log:        cfg.Logger,
	}
	if s.log == nil {
		s.log = obs.Nop()
	}
	s.m.attach(s)
	for i := 0; i < cfg.Workers-1; i++ {
		s.trajTokens <- struct{}{}
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Metrics returns the registry the service reports into. NewHandler
// mounts it at GET /metrics; pass it to obs.InstrumentHTTP so the
// daemon-level HTTP series land in the same exposition.
func (s *Service) Metrics() *obs.Registry { return s.m.reg }

// Submit validates and enqueues a request, returning the job ID
// immediately. It never blocks on execution: a full queue fails fast with
// ErrQueueFull.
func (s *Service) Submit(req Request) (string, error) {
	return s.SubmitContext(context.Background(), req)
}

// SubmitContext is Submit with a caller context carrying observability
// state: an obs request ID on ctx (the HTTP layer mints one per request)
// becomes the job's correlation ID — a fresh one is generated otherwise.
// The context is NOT a cancellation scope for the job; job lifetime is
// still bounded by the service root and Request.Timeout.
func (s *Service) SubmitContext(ctx context.Context, req Request) (string, error) {
	if (req.Kind == KindSample || req.Kind == KindNoisySample) && req.Shots == 0 {
		req.Shots = min(1024, s.cfg.MaxShots)
	}
	if req.Kind.Noisy() && req.Trajectories == 0 {
		req.Trajectories = min(256, s.cfg.MaxTrajectories)
	}
	if (req.Kind == KindRun || req.Kind == KindSweep) && !req.Noise.IsZero() && req.Readouts.Trajectories == 0 {
		req.Readouts.Trajectories = min(256, s.cfg.MaxTrajectories)
	}
	if req.Kind == KindSweep && req.Sweep != nil {
		// Expand Grid/Zip specs into the explicit binding list once, here,
		// so grid-shape errors (size mismatches, oversize products) are
		// submit errors and the worker only ever sees concrete bindings.
		expanded, err := req.Sweep.Expand(s.cfg.MaxSweepPoints)
		if err != nil {
			return "", fmt.Errorf("service: %w", err)
		}
		req.Sweep = &SweepSpec{Bindings: expanded}
	}
	if err := s.validate(req); err != nil {
		return "", err
	}
	if _, ok := v1Shims[req.Kind]; ok {
		s.m.shimHits.With(string(req.Kind)).Inc()
	}
	// Capability enforcement happens here, at submit: an unknown backend, a
	// rank/width mismatch, a noisy request on an engine with no noisy path,
	// or a register over the engine's qubit cap is a submit error (an HTTP
	// 400), never a worker-time failure.
	noisy := req.Kind.Noisy() || !req.Noise.IsZero()
	if req.Kind.Parameterized() && req.Options.Backend == "" {
		// Template jobs default to the engine that runs them; only an
		// explicit non-flat backend is a submit error below.
		req.Options.Backend = "flat"
	}
	idealBackend, caps, err := core.ResolveBackendFor(req.Options.Backend, req.Options.Ranks, req.Circuit.NumQubits, noisy)
	if err != nil {
		return "", fmt.Errorf("service: %w", err)
	}
	exact := caps.Noise == backend.NoiseExact
	if exact && (req.Kind == KindStatevector || req.Readouts.Statevector) {
		return "", fmt.Errorf("service: statevector readout is not available on backend %q (ρ has no single amplitude vector)", idealBackend)
	}
	if req.Kind.Parameterized() && (exact || idealBackend != "flat") {
		return "", fmt.Errorf("service: parameterized jobs run on the flat template engine (got backend %q)", idealBackend)
	}
	if req.Kind == KindRun && req.Circuit.Parametric() && (exact || (req.Noise.IsZero() && idealBackend != "flat")) {
		// The template engine is flat-only; engines that execute a plain
		// concrete circuit (hier/dist/baseline ideal paths, the exact DM
		// engine) get the circuit bound here, once, so their cache keys and
		// executors stay binding-correct without knowing about symbols.
		bound, err := req.Circuit.Bind(req.Params)
		if err != nil {
			return "", fmt.Errorf("service: %w", err) // unreachable: validate checked the binding
		}
		req.Circuit = bound
		req.Params = nil
	}

	var jctx context.Context
	var jcancel context.CancelFunc
	if req.Timeout > 0 {
		jctx, jcancel = context.WithTimeout(s.root, req.Timeout)
	} else {
		jctx, jcancel = context.WithCancel(s.root)
	}
	rid := obs.RequestID(ctx)
	if rid == "" {
		rid = obs.NewRequestID()
	}
	pspan := obs.ParentSpan(ctx)
	// The trace window opens — and its queue_wait stage begins — at the
	// exact submit timestamp, so the spans tile submitted→finished and
	// their durations sum to the job's wall time. Both ride the job
	// context so core and the trajectory engine can mark their stages.
	submitted := time.Now()
	trace := obs.NewTrace(submitted)
	trace.BeginAt(stageQueueWait, submitted)
	// The kernel recorder rides the same context; its bucket table is
	// allocated lazily on the first recorded kernel, so cache-hit jobs pay
	// one pointer-sized struct and nothing else.
	profr := &prof.Recorder{}
	jctx = obs.WithRequestID(jctx, rid)
	if pspan != "" {
		jctx = obs.WithParentSpan(jctx, pspan)
	}
	jctx = prof.WithRecorder(obs.ContextWithTrace(jctx, trace), profr)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		jcancel()
		return "", ErrClosed
	}
	s.nextID++
	j := &job{
		id: fmt.Sprintf("j%06d", s.nextID), req: req,
		ctx: jctx, cancel: jcancel, done: make(chan struct{}),
		idealBackend: idealBackend, exact: exact,
		requestID: rid, parentSpan: pspan, trace: trace, profr: profr,
		status: StatusQueued, submitted: submitted,
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		jcancel()
		return "", ErrQueueFull
	}
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.m.jobsSubmitted.With(string(req.Kind)).Inc()
	s.log.LogAttrs(jctx, slog.LevelDebug, "job submitted",
		slog.String("job", j.id), slog.String("kind", string(req.Kind)),
		slog.String("backend", idealBackend))
	return j.id, nil
}

func (s *Service) validate(req Request) error {
	if req.Circuit == nil {
		return errors.New("service: nil circuit")
	}
	if err := req.Circuit.Validate(); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if req.Circuit.NumQubits > s.cfg.MaxQubits {
		return fmt.Errorf("service: circuit has %d qubits, limit %d", req.Circuit.NumQubits, s.cfg.MaxQubits)
	}
	if req.Options.Ranks > s.cfg.MaxRanks {
		return fmt.Errorf("service: %d ranks exceeds limit %d", req.Options.Ranks, s.cfg.MaxRanks)
	}
	if req.Options.Workers > maxJobWorkers {
		return fmt.Errorf("service: %d workers exceeds limit %d", req.Options.Workers, maxJobWorkers)
	}
	if !req.Options.Noise.IsZero() {
		// The noise model rides on the Request (so it can be validated and
		// cache-keyed uniformly), never on the forwarded simulation options.
		return fmt.Errorf("service: set Request.Noise, not Options.Noise")
	}
	// Symbol discipline first: every parameterized shape resolves to a
	// complete, finite binding at submit (per grid point for sweeps), and
	// symbols never leak into kinds that cannot bind them. The errors come
	// from circuit.CheckBinding and name the offending symbol.
	switch req.Kind {
	case KindRun:
		if req.Circuit.Parametric() || len(req.Params) > 0 {
			if err := req.Circuit.CheckBinding(req.Params); err != nil {
				return fmt.Errorf("service: %w", err)
			}
		}
	case KindSweep, KindOptimize:
		if len(req.Params) > 0 {
			return fmt.Errorf("service: kind %q takes bindings from its %s spec, not Params", req.Kind, req.Kind)
		}
		if !req.Circuit.Parametric() {
			return fmt.Errorf("service: kind %q needs a parameterized circuit (circuit %s has no symbols)", req.Kind, req.Circuit.Name)
		}
	default:
		if len(req.Params) > 0 {
			return fmt.Errorf("service: kind %q does not accept params (use %q)", req.Kind, KindRun)
		}
		if req.Circuit.Parametric() {
			return fmt.Errorf("service: %w (bind via %q Params or submit a %q/%q job)",
				req.Circuit.CheckBinding(nil), KindRun, KindSweep, KindOptimize)
		}
	}
	if req.Sweep != nil && req.Kind != KindSweep {
		return fmt.Errorf("service: kind %q does not accept a sweep spec (use %q)", req.Kind, KindSweep)
	}
	if req.Optimize != nil && req.Kind != KindOptimize {
		return fmt.Errorf("service: kind %q does not accept an optimize spec (use %q)", req.Kind, KindOptimize)
	}
	if req.Kind != KindRun && req.Kind != KindSweep && !req.Readouts.Empty() {
		return fmt.Errorf("service: kind %q does not accept a readout spec (use %q)", req.Kind, KindRun)
	}
	if req.Kind.Noisy() {
		if req.Trajectories < 0 {
			return fmt.Errorf("service: negative trajectory count %d", req.Trajectories)
		}
		if req.Trajectories > s.cfg.MaxTrajectories {
			return fmt.Errorf("service: %d trajectories exceeds limit %d", req.Trajectories, s.cfg.MaxTrajectories)
		}
		if err := req.Noise.Validate(req.Circuit.NumQubits); err != nil {
			return fmt.Errorf("service: %w", err)
		}
	} else if !req.Noise.IsZero() && req.Kind != KindRun && !req.Kind.Parameterized() {
		return fmt.Errorf("service: kind %q does not accept a noise model (use %q or %q)",
			req.Kind, KindRun, KindNoisySample)
	}
	switch req.Kind {
	case KindRun:
		// The legacy top-level read-out fields have no meaning on the v2
		// kind; silently dropping them would let a half-migrated client
		// believe its shots/seed were honored.
		if req.Shots != 0 || req.Seed != 0 || len(req.Qubits) != 0 || req.Trajectories != 0 {
			return fmt.Errorf("service: kind %q takes its read-outs from Readouts (move shots/seed/qubits/trajectories into the readout spec)", KindRun)
		}
		if err := req.Readouts.Validate(req.Circuit.NumQubits); err != nil {
			return fmt.Errorf("service: %w", err)
		}
		if req.Readouts.Shots > s.cfg.MaxShots {
			return fmt.Errorf("service: %d shots exceeds limit %d", req.Readouts.Shots, s.cfg.MaxShots)
		}
		if req.Readouts.Trajectories > s.cfg.MaxTrajectories {
			return fmt.Errorf("service: %d trajectories exceeds limit %d", req.Readouts.Trajectories, s.cfg.MaxTrajectories)
		}
		if req.Noise != nil {
			if err := req.Noise.Validate(req.Circuit.NumQubits); err != nil {
				return fmt.Errorf("service: %w", err)
			}
			if !req.Noise.IsZero() && req.Readouts.Statevector {
				return fmt.Errorf("service: statevector readout is undefined under an effective noise model")
			}
		}
	case KindSweep:
		if req.Shots != 0 || req.Seed != 0 || len(req.Qubits) != 0 || req.Trajectories != 0 {
			return fmt.Errorf("service: kind %q takes its read-outs from Readouts (move shots/seed/qubits/trajectories into the readout spec)", KindSweep)
		}
		if req.Readouts.TrajOffset != 0 || req.Readouts.TrajTotal != 0 || req.Readouts.Moments {
			return fmt.Errorf("service: kind %q is split by sweep points, not trajectory ranges (drop traj_offset/traj_total/moments)", KindSweep)
		}
		if req.Sweep == nil || len(req.Sweep.Bindings) == 0 {
			return fmt.Errorf("service: sweep needs a binding grid (set Sweep.Bindings or Sweep.Grid)")
		}
		if len(req.Sweep.Bindings) > s.cfg.MaxSweepPoints {
			return fmt.Errorf("service: sweep has %d points, limit %d", len(req.Sweep.Bindings), s.cfg.MaxSweepPoints)
		}
		for i, env := range req.Sweep.Bindings {
			if err := req.Circuit.CheckBinding(env); err != nil {
				return fmt.Errorf("service: binding %d: %w", i, err)
			}
		}
		if err := req.Readouts.Validate(req.Circuit.NumQubits); err != nil {
			return fmt.Errorf("service: %w", err)
		}
		if req.Readouts.Shots > s.cfg.MaxShots {
			return fmt.Errorf("service: %d shots exceeds limit %d", req.Readouts.Shots, s.cfg.MaxShots)
		}
		if req.Readouts.Trajectories > s.cfg.MaxTrajectories {
			return fmt.Errorf("service: %d trajectories exceeds limit %d", req.Readouts.Trajectories, s.cfg.MaxTrajectories)
		}
		if req.Noise != nil {
			if err := req.Noise.Validate(req.Circuit.NumQubits); err != nil {
				return fmt.Errorf("service: %w", err)
			}
			if !req.Noise.IsZero() && req.Readouts.Statevector {
				return fmt.Errorf("service: statevector readout is undefined under an effective noise model")
			}
		}
	case KindOptimize:
		if req.Shots != 0 || req.Seed != 0 || len(req.Qubits) != 0 || req.Trajectories != 0 {
			return fmt.Errorf("service: kind %q drives its objective from the optimize spec (drop shots/seed/qubits/trajectories)", KindOptimize)
		}
		if req.Optimize == nil {
			return fmt.Errorf("service: optimize needs an optimize spec (observables + method)")
		}
		if err := s.validateOptimize(req); err != nil {
			return err
		}
	case KindStatevector:
	case KindSample, KindNoisySample:
		if req.Shots < 0 {
			return fmt.Errorf("service: negative shot count %d", req.Shots)
		}
		if req.Shots > s.cfg.MaxShots {
			return fmt.Errorf("service: %d shots exceeds limit %d", req.Shots, s.cfg.MaxShots)
		}
	case KindExpectation, KindProbabilities, KindNoisyExpectation:
		seen := map[int]bool{}
		for _, q := range req.Qubits {
			if q < 0 || q >= req.Circuit.NumQubits {
				return fmt.Errorf("service: qubit %d out of range [0,%d)", q, req.Circuit.NumQubits)
			}
			// Repeats are meaningful for Z strings (Z² = I) but would only
			// amplify the marginal's 2^k result, so reject them there.
			if req.Kind == KindProbabilities && seen[q] {
				return fmt.Errorf("service: duplicate marginal qubit %d", q)
			}
			seen[q] = true
		}
	default:
		return fmt.Errorf("service: unknown kind %q (want one of %v)", req.Kind, Kinds())
	}
	return nil
}

// Job returns a snapshot of the job, or ErrNotFound.
func (s *Service) Job(id string) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, ErrNotFound
	}
	return s.snapshotLocked(j), nil
}

func (s *Service) snapshotLocked(j *job) JobInfo {
	info := JobInfo{
		ID: j.id, Kind: j.req.Kind, Status: j.status, Backend: j.backend,
		Result:    j.result,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		RequestID: j.requestID, ParentSpan: j.parentSpan,
		Trace: j.trace.Spans(), Profile: j.profr.Snapshot(),
	}
	if j.err != nil {
		info.Err = j.err.Error()
	}
	return info
}

// Cancel cancels a queued or running job. Canceling a terminal job is a
// no-op; an unknown ID returns ErrNotFound.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	j.cancel()
	return nil
}

// Wait blocks until the job reaches a terminal status (returning its
// result or failure) or ctx expires (returning ctx's error; the job keeps
// running).
func (s *Service) Wait(ctx context.Context, id string) (*Result, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.err != nil {
		return nil, j.err
	}
	return j.result, nil
}

// Do is the synchronous convenience: Submit then Wait. If ctx expires
// while waiting, the job itself is canceled too.
func (s *Service) Do(ctx context.Context, req Request) (*Result, error) {
	id, err := s.Submit(req)
	if err != nil {
		return nil, err
	}
	res, err := s.Wait(ctx, id)
	if err != nil && ctx.Err() != nil {
		_ = s.Cancel(id)
	}
	return res, err
}

// Stats snapshots the counters. It is a read-only projection of the
// metrics registry (the labeled series summed back to the original
// aggregates), so the /v1/stats JSON shape — and its numbers — stay
// byte-compatible with the pre-registry surface.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	entries, bytes := s.cache.Len(), s.cache.Size()
	planEntries, planBytes := s.planCache.Len(), s.planCache.Size()
	queued := len(s.queue)
	s.mu.Unlock()
	st := Stats{
		Simulations:      s.m.simulations.Value(),
		Trajectories:     s.m.trajectories.Value(),
		TemplateCompiles: s.m.templateCompiles.Value(),
		CacheEntries:     entries, CacheBytes: bytes,
		PlanCacheEntries: planEntries, PlanCacheBytes: planBytes,
		QueueLength: queued, Workers: s.cfg.Workers,
	}
	s.m.jobsSubmitted.Each(func(_ []string, v int64) { st.Submitted += v })
	s.m.jobsFinished.Each(func(labels []string, v int64) {
		switch Status(labels[1]) {
		case StatusDone:
			st.Completed += v
		case StatusCanceled:
			st.Canceled += v
		default:
			st.Failed += v
		}
	})
	s.m.cacheHits.Each(func(_ []string, v int64) { st.CacheHits += v })
	s.m.cacheMisses.Each(func(_ []string, v int64) { st.CacheMisses += v })
	s.m.shimHits.Each(func(_ []string, v int64) { st.ShimHits += v })
	s.m.backendJobs.Each(func(labels []string, v int64) {
		if st.Backends == nil {
			st.Backends = map[string]int64{}
		}
		st.Backends[labels[0]] += v
	})
	return st
}

// BeginDrain marks the service as draining: Draining() — and with it the
// HTTP /readyz probe — flips to not-ready so load balancers stop sending
// traffic, while already-accepted work keeps running. Call it when graceful
// shutdown starts, before the listener closes; it is idempotent and does
// not by itself stop anything.
func (s *Service) BeginDrain() { s.draining.Store(true) }

// Draining reports whether graceful shutdown has begun (BeginDrain or
// Close was called).
func (s *Service) Draining() bool { return s.draining.Load() }

// Close stops the service: no new submissions, queued jobs are canceled,
// running jobs are interrupted via their contexts, and the worker pool is
// drained before returning.
func (s *Service) Close() {
	s.draining.Store(true)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.stop() // cancels s.root and with it every job context
	s.wg.Wait()
	// Workers are gone; fail anything still sitting in the queue.
	for {
		select {
		case j := <-s.queue:
			s.finish(j, nil, context.Canceled)
		default:
			return
		}
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.root.Done():
			return
		case j := <-s.queue:
			s.run(j)
		}
	}
}

func (s *Service) run(j *job) {
	s.m.workersBusy.Add(1)
	defer s.m.workersBusy.Add(-1)
	s.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	s.mu.Unlock()
	// queue_wait ends exactly at the started timestamp; the executors open
	// finer stages (compile, simulate, sample, …) from here.
	j.trace.BeginAt(stageExecute, j.started)

	if err := j.ctx.Err(); err != nil {
		s.finish(j, nil, err)
		return
	}
	res, err := s.execute(j)
	s.finish(j, res, err)
}

func (s *Service) finish(j *job, res *Result, err error) {
	// Close the trace at the exact finished timestamp (before res is
	// published under the lock — observers of j.result must never see
	// Stages still being written) so the spans tile submitted→finished.
	now := time.Now()
	j.trace.FinishAt(now)
	spans := j.trace.Spans()
	profile := j.profr.Snapshot()
	if res != nil {
		res.Stages = spans
		res.Profile = profile
	}
	s.mu.Lock()
	if j.status.Terminal() {
		s.mu.Unlock()
		return
	}
	j.finished = now
	j.result = res
	j.err = err
	switch {
	case err == nil:
		j.status = StatusDone
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.status = StatusCanceled
	default:
		j.status = StatusFailed
	}
	status := j.status
	backendName := j.backend
	s.retained = append(s.retained, j.id)
	s.retainedBytes += resultBytes(res)
	for len(s.retained) > s.cfg.RetainJobs ||
		(s.retainedBytes > s.cfg.RetainBytes && len(s.retained) > 1) {
		old := s.jobs[s.retained[0]]
		if old != nil {
			s.retainedBytes -= resultBytes(old.result)
		}
		delete(s.jobs, s.retained[0])
		s.retained = s.retained[1:]
	}
	s.mu.Unlock()
	// Metrics and logging happen off the lock: the stage histograms are
	// the worker-utilization ledger (per stage/kind/backend; jobs that
	// never reached an engine are labeled backend "none").
	kind := string(j.req.Kind)
	if backendName == "" {
		backendName = "none"
	}
	for _, sp := range spans {
		s.m.stageObserve(sp.Name, kind, backendName, sp.Dur.Seconds())
	}
	s.m.flushProfile(profile)
	s.m.jobsFinished.With(kind, string(status)).Inc()
	level := slog.LevelInfo
	if status == StatusFailed {
		level = slog.LevelWarn
	}
	attrs := []slog.Attr{
		slog.String("job", j.id), slog.String("kind", kind),
		slog.String("status", string(status)), slog.String("backend", backendName),
		slog.Duration("wall", now.Sub(j.submitted)),
	}
	if err != nil {
		attrs = append(attrs, slog.String("err", err.Error()))
	}
	s.log.LogAttrs(j.ctx, level, "job finished", attrs...)
	j.cancel() // release the context's resources
	close(j.done)
}

// resultBytes estimates a result's retained payload.
func resultBytes(r *Result) int64 {
	if r == nil {
		return 0
	}
	b := int64(len(r.Amplitudes))*16 + int64(len(r.Samples))*8 +
		int64(len(r.Counts))*16 + int64(len(r.Probabilities))*8
	for _, m := range r.Marginals {
		b += int64(len(m)) * 8
	}
	b += int64(len(r.Observables)) * 48
	for _, m := range r.Moments {
		b += 32 + int64(len(m.Obs))*16
		for _, mg := range m.Marg {
			b += int64(len(mg)) * 8
		}
	}
	if r.Sweep != nil {
		for _, p := range r.Sweep.Points {
			b += int64(len(p.Binding)) * 32
			b += readoutsBytes(p.Readouts)
		}
	}
	if r.Optimize != nil {
		perIter := int64(len(r.Optimize.Best)+2) * 32
		b += int64(len(r.Optimize.Trace))*perIter + perIter
	}
	return b
}

// readoutsBytes estimates one evaluated readout set's retained payload
// (the per-point unit of a sweep result).
func readoutsBytes(ro *core.Readouts) int64 {
	if ro == nil {
		return 0
	}
	b := int64(len(ro.Amplitudes))*16 + int64(len(ro.Samples))*8 +
		int64(len(ro.Counts))*16 + int64(len(ro.Observables))*48
	for _, m := range ro.Marginals {
		b += int64(len(m)) * 8
	}
	return b
}

// setBackend records the engine executing the job (visible in JobInfo
// while running) and bumps its per-backend job counter.
func (s *Service) setBackend(j *job, name string) {
	s.mu.Lock()
	j.backend = name
	s.mu.Unlock()
	s.m.backendJobs.With(name).Inc()
}

// execute resolves the cache entry (simulating on miss) and derives every
// read-out the job's spec names. All kinds — KindRun, the v3 template
// kinds and the deprecated shims — pass through here.
func (s *Service) execute(j *job) (*Result, error) {
	switch j.req.Kind {
	case KindSweep:
		return s.executeSweep(j)
	case KindOptimize:
		return s.executeOptimize(j)
	}
	spec := specForJob(j.req)
	if j.exact {
		// Exact-noise engines serve every request shape — ideal, noisy,
		// legacy kinds — from one cached density-matrix evolution.
		return s.executeDM(j, spec)
	}
	if j.req.Kind.Noisy() || !j.req.Noise.IsZero() {
		// Legacy noisy kinds keep the ensemble path even for zero-effect
		// models: their counts come from per-trajectory split RNGs, not the
		// single sampling stream of the ideal kinds.
		return s.executeNoisy(j, spec)
	}
	if j.req.Circuit.Parametric() {
		// Bound template run (KindRun + Params on the flat engine): the
		// compiled template is shared across bindings; only the bound
		// state is per-binding (keyed by the binding digest).
		return s.executeParamRun(j, spec)
	}
	s.setBackend(j, j.idealBackend)
	start := time.Now()
	entry, hit, err := s.entryFor(j)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Kind: j.req.Kind, Backend: j.idealBackend, NumQubits: entry.state.N,
		CacheHit: hit, Parts: entry.parts(),
		Waited: j.started.Sub(j.submitted),
	}
	j.trace.Begin(stageSample)
	var sampler *sv.Sampler
	if spec.Shots > 0 {
		sampler = entry.getSampler() // reuse the cached CDF across jobs
	}
	legacyProject(res, core.EvaluateState(entry.state, sampler, spec))
	res.Elapsed = time.Since(start)
	return res, nil
}

// entryFor returns the cached simulation for the job's (circuit, options)
// key, running it via single-flight on a miss. The returned hit flag is
// true when no simulation ran on behalf of this job.
func (s *Service) entryFor(j *job) (*cacheEntry, bool, error) {
	return s.entryForCircuit(j, j.req.Circuit)
}

// entryForCircuit is entryFor over an explicit circuit: the noisy path
// passes the bound form of a parameterized request here so cache keys stay
// per-binding.
func (s *Service) entryForCircuit(j *job, c *circuit.Circuit) (*cacheEntry, bool, error) {
	key := cacheKey(c, j.req.Options, j.idealBackend)
	v, hit, err := s.cachedCompute(j, key, func() (costed, error) {
		e, err := s.simulate(j, c)
		if err != nil {
			return nil, err
		}
		return e, nil
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*cacheEntry), hit, nil
}

// cachedCompute returns the cached payload for key, running compute at
// most once across concurrent misses: the first claimant publishes a
// flight, everyone else waits on it (or loops to claim the key themselves
// when the owner was canceled — that says nothing about their own job;
// a real compute failure would fail them identically).
func (s *Service) cachedCompute(j *job, key string, compute func() (costed, error)) (costed, bool, error) {
	// The cache label (state vs rho) is keyed by the entry's key prefix,
	// so one LRU serves two logically distinct metric series.
	cacheName := mainCacheName(key)
	for {
		s.mu.Lock()
		if v, ok := s.cache.Get(key); ok {
			s.mu.Unlock()
			s.m.cacheHits.With(cacheName).Inc()
			return v.(costed), true, nil
		}
		if fl, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			select {
			case <-fl.done:
			case <-j.ctx.Done():
				return nil, false, j.ctx.Err()
			}
			if fl.err != nil {
				if errors.Is(fl.err, context.Canceled) || errors.Is(fl.err, context.DeadlineExceeded) {
					continue
				}
				return nil, false, fl.err
			}
			s.m.cacheHits.With(cacheName).Inc()
			return fl.val, true, nil
		}
		fl := &flight{done: make(chan struct{})}
		s.inflight[key] = fl
		s.mu.Unlock()

		s.m.cacheMisses.With(cacheName).Inc()
		fl.val, fl.err = compute()
		s.mu.Lock()
		delete(s.inflight, key)
		if fl.err == nil {
			if s.cache.Put(key, fl.val, fl.val.cost()) {
				s.m.cachePut(cacheName, fl.val.cost())
			}
		}
		s.mu.Unlock()
		close(fl.done)
		return fl.val, false, fl.err
	}
}

// executeNoisy runs a trajectory-ensemble job (any kind carrying a noise
// model, plus the legacy noisy kinds even when their model is zero-effect).
// The compiled (circuit + noise model) plan is cached in the dedicated
// plan LRU and shared across requests — fuse and plan once, then every
// request replays it for its own seeded trajectories — and the trajectory
// batch fans out across the service's worker-pool width. Zero-effect
// models degrade gracefully to the ideal plan/state cache: the ensemble
// then costs sampling only, exactly like KindSample.
func (s *Service) executeNoisy(j *job, spec core.ReadoutSpec) (*Result, error) {
	start := time.Now()
	req := j.req
	// Widen beyond this job's own worker slot only by tokens from the
	// shared pool, so concurrent noisy jobs cannot multiply into
	// Workers² live trajectory states; tokens return when the job ends.
	width := 1
	for width < s.cfg.Workers {
		select {
		case <-s.trajTokens:
			width++
			continue
		default:
		}
		break
	}
	defer func() {
		for i := 1; i < width; i++ {
			s.trajTokens <- struct{}{}
		}
	}()
	run := spec.NoisyRunConfig(width)
	j.trace.Begin(stageCompile)
	plan, hit, err := s.noisePlanFor(j)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Kind: req.Kind, NumQubits: req.Circuit.NumQubits,
		Waited: j.started.Sub(j.submitted),
	}
	var ens *noise.Ensemble
	if plan.NoiseFree() {
		// One ideal simulation serves every trajectory; the executing
		// engine is the job's resolved ideal backend. A parameterized
		// request binds here so the state cache keys on the bound circuit.
		s.setBackend(j, j.idealBackend)
		res.Backend = j.idealBackend
		c := req.Circuit
		if c.Parametric() {
			if c, err = c.Bind(req.Params); err != nil {
				return nil, err
			}
		}
		entry, stateHit, err := s.entryForCircuit(j, c)
		if err != nil {
			return nil, err
		}
		hit = stateHit // the simulation, not the plan, is the cost that matters
		res.Parts = entry.parts()
		ens, err = noise.RunEnsembleFromState(j.ctx, entry.state, plan.Readout(), run)
		if err != nil {
			return nil, err
		}
	} else {
		s.setBackend(j, BackendTrajectory)
		res.Backend = BackendTrajectory
		if plan.Parametric() {
			// The cached plan is the shared template; only the touched gate
			// runs re-materialize for this request's binding.
			j.trace.Begin(stageSpecialize)
			if plan, err = plan.Specialize(req.Params); err != nil {
				return nil, err
			}
		}
		ens, err = noise.RunEnsemble(j.ctx, plan, run)
		if err != nil {
			return nil, err
		}
		s.m.trajectories.Add(int64(ens.Trajectories))
	}
	res.CacheHit = hit
	res.Trajectories = ens.Trajectories
	if spec.Moments {
		res.Moments = ens.Moments
	}
	j.trace.Begin(stageSample)
	legacyProject(res, core.ReadoutsFromEnsemble(ens, spec))
	res.Elapsed = time.Since(start)
	return res, nil
}

// executeDM runs a job on the exact density-matrix engine: one deterministic
// superoperator evolution (never an ensemble — the trajectories stat stays
// untouched and Result.Trajectories stays 0) answers every read-out the
// spec names. The compiled plan comes from the same digest-keyed plan cache
// the trajectory path uses, and the evolved ρ is cached like an ideal
// state: repeat DM jobs — any seed, any readout mix — cost sampling only.
func (s *Service) executeDM(j *job, spec core.ReadoutSpec) (*Result, error) {
	start := time.Now()
	s.setBackend(j, j.idealBackend)
	j.trace.Begin(stageCompile)
	plan, _, err := s.noisePlanFor(j)
	if err != nil {
		return nil, err
	}
	entry, hit, err := s.dmEntryFor(j, plan)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Kind: j.req.Kind, Backend: j.idealBackend, NumQubits: j.req.Circuit.NumQubits,
		CacheHit: hit,
		Waited:   j.started.Sub(j.submitted),
	}
	j.trace.Begin(stageSample)
	legacyProject(res, core.EvaluateDensity(entry.d, plan.Readout(), spec))
	res.Elapsed = time.Since(start)
	return res, nil
}

// dmEntryFor returns the evolved density matrix for the job's (circuit,
// noise, fusion) key, evolving on miss — single-flighted like entryFor, and
// counted as a simulation (one DM evolution is the engine's whole run).
func (s *Service) dmEntryFor(j *job, plan *noise.Plan) (*dmEntry, bool, error) {
	key := dmKey(j.req.Circuit, j.req.Options, j.req.Noise)
	v, hit, err := s.cachedCompute(j, key, func() (costed, error) {
		s.m.simulations.Inc()
		j.trace.Begin(stageSimulate)
		d, err := dm.Evolve(j.ctx, plan, j.req.Options.Workers)
		if err != nil {
			return nil, err
		}
		return &dmEntry{d: d}, nil
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*dmEntry), hit, nil
}

// dmKey is the content address of one density-matrix evolution: the circuit
// fingerprint with the noise digest folded in (exactly the trajectory-plan
// digest) plus the fusion options that shape the compiled blocks. Seeds are
// excluded — ρ is seed-free; only sampling consumes the request seed — and
// so are Strategy/Lm/Ranks, which the unpartitioned engine never reads.
func dmKey(c *circuit.Circuit, o core.Options, m *noise.Model) string {
	return fmt.Sprintf("dm|%s|f=%t mf=%d", c.FingerprintWith(m.Hash()), o.Fuse.Enabled(), o.MaxFuseQubits)
}

// noisePlanEntry wraps a compiled trajectory plan for the LRU cache.
type noisePlanEntry struct {
	plan *noise.Plan
}

// noisePlanFor returns the compiled trajectory plan for the job's
// (circuit, noise, fusion) key, compiling on miss. Plans live in their own
// small LRU (Config.PlanCacheBytes), not the plan/state cache: they are a
// few KiB but hot, and sharing a budget with 2^n-amplitude states let one
// burst of statevector jobs evict every compiled plan. Unlike entryFor,
// misses are not single-flighted: compilation is plan construction, not
// simulation, so a duplicated compile under a request burst is benign.
func (s *Service) noisePlanFor(j *job) (*noise.Plan, bool, error) {
	key := noisePlanKey(j.req.Circuit, j.req.Options, j.req.Noise)
	s.mu.Lock()
	if v, ok := s.planCache.Get(key); ok {
		s.mu.Unlock()
		s.m.cacheHits.With(cachePlan).Inc()
		return v.(*noisePlanEntry).plan, true, nil
	}
	s.mu.Unlock()
	s.m.cacheMisses.With(cachePlan).Inc()
	plan, err := noise.Compile(j.req.Circuit, j.req.Noise, noise.CompileOptions{
		Fuse: j.req.Options.Fuse.Enabled(), MaxFuseQubits: j.req.Options.MaxFuseQubits,
	})
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	if s.planCache.Put(key, &noisePlanEntry{plan: plan}, plan.MemoryBytes()) {
		s.m.cachePut(cachePlan, plan.MemoryBytes())
	}
	s.mu.Unlock()
	return plan, false, nil
}

// noisePlanKey is the content address of a compiled trajectory plan: the
// circuit fingerprint with the noise model's digest folded in, plus the
// fusion options that shape the compiled blocks. The request seed is
// excluded — differently-seeded ensembles replay one plan — and so are
// Strategy/Lm/Ranks, which only steer the zero-noise ideal path (keyed
// separately by cacheKey).
func noisePlanKey(c *circuit.Circuit, o core.Options, m *noise.Model) string {
	return fmt.Sprintf("noise|%s|f=%t mf=%d", c.FingerprintWith(m.Hash()), o.Fuse.Enabled(), o.MaxFuseQubits)
}

func (s *Service) simulate(j *job, c *circuit.Circuit) (*cacheEntry, error) {
	s.m.simulations.Inc()
	opts := j.req.Options
	opts.SkipState = false // the cache entry IS the state
	res, err := core.SimulateContext(j.ctx, c, opts)
	if err != nil {
		return nil, err
	}
	return &cacheEntry{plan: res.Plan, state: res.State}, nil
}

// cacheKey is the content address of one simulation: the circuit
// fingerprint plus every option that can change the produced state or plan.
// Workers, Model and SkipState are excluded — they affect speed and
// metrics, never the amplitudes — and the fuse policy collapses to its
// Enabled bit (FuseAuto and FuseOn execute identically). The backend is
// keyed by its RESOLVED name, so an explicit "hier" and the single-node
// default share entries while e.g. "flat" (whose float schedule differs)
// gets its own.
func cacheKey(c *circuit.Circuit, o core.Options, backendName string) string {
	return fmt.Sprintf("%s|b=%s s=%s lm=%d r=%d lm2=%d f=%t mf=%d seed=%d",
		c.Fingerprint(), backendName, o.Strategy, o.Lm, o.Ranks, o.SecondLevelLm, o.Fuse.Enabled(), o.MaxFuseQubits, o.Seed)
}
