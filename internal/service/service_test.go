package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hisvsim/internal/circuit"
	"hisvsim/internal/core"
	"hisvsim/internal/noise"
	"hisvsim/internal/sv"
)

func newTest(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func TestSampleMatchesDirectSimulation(t *testing.T) {
	// Differential check: the service's sample path must reproduce exactly
	// what a direct Simulate + State.Sample with the same seed produces.
	s := newTest(t, Config{Workers: 2})
	c := circuit.MustNamed("qft", 8)
	opts := core.Options{Strategy: "dagp", Lm: 5, Seed: 3}

	res, err := s.Do(context.Background(), Request{
		Circuit: c, Kind: KindSample, Shots: 500, Seed: 99, Options: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Simulate(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := direct.State.Sample(500, rand.New(rand.NewSource(99)))
	if len(res.Samples) != len(want) {
		t.Fatalf("got %d samples, want %d", len(res.Samples), len(want))
	}
	for i := range want {
		if res.Samples[i] != want[i] {
			t.Fatalf("shot %d: service %d vs direct %d", i, res.Samples[i], want[i])
		}
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != 500 {
		t.Fatalf("counts sum to %d", total)
	}
}

func TestExpectationAndProbabilitiesMatchDirect(t *testing.T) {
	s := newTest(t, Config{Workers: 1})
	c := circuit.MustNamed("ising", 7)
	opts := core.Options{Strategy: "nat", Lm: 4}
	direct, err := core.Simulate(c, opts)
	if err != nil {
		t.Fatal(err)
	}

	exp, err := s.Do(context.Background(), Request{
		Circuit: c, Kind: KindExpectation, Qubits: []int{0, 3}, Options: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := direct.State.ExpectationPauliZString([]int{0, 3}); exp.Expectation != want {
		t.Fatalf("⟨Z0Z3⟩ service %v vs direct %v", exp.Expectation, want)
	}

	prob, err := s.Do(context.Background(), Request{
		Circuit: c, Kind: KindProbabilities, Qubits: []int{1, 2}, Options: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := direct.State.Marginal([]int{1, 2})
	for i := range want {
		if prob.Probabilities[i] != want[i] {
			t.Fatalf("marginal[%d] service %v vs direct %v", i, prob.Probabilities[i], want[i])
		}
	}

	stv, err := s.Do(context.Background(), Request{Circuit: c, Kind: KindStatevector, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range direct.State.Amps {
		if stv.Amplitudes[i] != a {
			t.Fatalf("amplitude %d differs", i)
		}
	}
}

func TestDistributedRequestThroughService(t *testing.T) {
	s := newTest(t, Config{Workers: 1})
	c := circuit.MustNamed("qft", 8)
	opts := core.Options{Strategy: "dagp", Ranks: 4}
	res, err := s.Do(context.Background(), Request{Circuit: c, Kind: KindStatevector, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Simulate(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range direct.State.Amps {
		if res.Amplitudes[i] != a {
			t.Fatalf("distributed service result diverges at amplitude %d", i)
		}
	}
}

func TestCacheHitSkipsSimulationBitIdentical(t *testing.T) {
	// The acceptance-criterion check: a repeat circuit must NOT re-simulate
	// (execution counter pinned at 1) and must return bit-identical results.
	s := newTest(t, Config{Workers: 1})
	c := circuit.MustNamed("qft", 9)
	req := Request{Circuit: c, Kind: KindStatevector, Options: core.Options{Strategy: "dagp", Lm: 6}}

	cold, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("first request reported a cache hit")
	}
	// Same circuit content rebuilt from scratch: content addressing must
	// hit regardless of pointer identity.
	req2 := req
	req2.Circuit = circuit.MustNamed("qft", 9)
	warm, err := s.Do(context.Background(), req2)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("repeat request missed the cache")
	}
	if got := s.Stats().Simulations; got != 1 {
		t.Fatalf("simulations = %d, want 1", got)
	}
	for i := range cold.Amplitudes {
		if cold.Amplitudes[i] != warm.Amplitudes[i] {
			t.Fatalf("cache hit not bit-identical at amplitude %d", i)
		}
	}

	// FuseAuto and FuseOn execute identically, so they share an entry.
	req4 := req
	req4.Options.Fuse = core.FuseOn
	same, err := s.Do(context.Background(), req4)
	if err != nil {
		t.Fatal(err)
	}
	if !same.CacheHit {
		t.Fatal("FuseOn must share FuseAuto's cache entry")
	}

	// Different options → different key → fresh simulation.
	req3 := req
	req3.Options.Lm = 4
	other, err := s.Do(context.Background(), req3)
	if err != nil {
		t.Fatal(err)
	}
	if other.CacheHit {
		t.Fatal("different options must not share a cache entry")
	}
	if got := s.Stats().Simulations; got != 2 {
		t.Fatalf("simulations = %d, want 2", got)
	}
}

func TestSampleSeedsShareOneSimulation(t *testing.T) {
	// N differently-seeded shot requests on one circuit: one simulation,
	// N samplings; equal seeds reproduce the exact shot sequence.
	s := newTest(t, Config{Workers: 2})
	c := circuit.MustNamed("qaoa", 8)
	base := Request{Circuit: c, Kind: KindSample, Shots: 100, Options: core.Options{Strategy: "dagp", Lm: 5}}

	bySeed := map[int64][]int{}
	for _, seed := range []int64{1, 2, 3, 1} {
		req := base
		req.Seed = seed
		res, err := s.Do(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := bySeed[seed]; ok {
			for i := range prev {
				if prev[i] != res.Samples[i] {
					t.Fatalf("seed %d: repeat request diverged at shot %d", seed, i)
				}
			}
		}
		bySeed[seed] = res.Samples
	}
	if got := s.Stats().Simulations; got != 1 {
		t.Fatalf("simulations = %d, want 1 across 4 sample requests", got)
	}
}

func TestConcurrentSubmissionsRace(t *testing.T) {
	// Many goroutines hammering a small set of circuits through a small
	// pool: exercises the queue, the single-flight path and the cache under
	// the race detector. Identical requests must all agree bit-for-bit.
	s := newTest(t, Config{Workers: 4, QueueDepth: 512})
	circs := []*circuit.Circuit{
		circuit.MustNamed("qft", 7),
		circuit.MustNamed("bv", 7),
		circuit.MustNamed("ising", 7),
	}
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([][]int, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := circs[g%len(circs)]
			res, err := s.Do(context.Background(), Request{
				Circuit: c, Kind: KindSample, Shots: 50, Seed: 7,
				Options: core.Options{Strategy: "dagp", Lm: 5},
			})
			if err != nil {
				errs[g] = err
				return
			}
			results[g] = res.Samples
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := len(circs); g < goroutines; g++ {
		prev := results[g-len(circs)] // same circuit, same seed
		for i := range prev {
			if results[g][i] != prev[i] {
				t.Fatalf("identical requests disagreed (goroutine %d, shot %d)", g, i)
			}
		}
	}
	if sims := s.Stats().Simulations; sims != int64(len(circs)) {
		t.Fatalf("simulations = %d, want %d (one per distinct circuit)", sims, len(circs))
	}
}

func TestAsyncSubmitPollWait(t *testing.T) {
	s := newTest(t, Config{Workers: 1})
	c := circuit.MustNamed("grover", 6)
	id, err := s.Submit(Request{Circuit: c, Kind: KindSample, Shots: 10, Options: core.Options{Strategy: "nat"}})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != id || info.Status.Terminal() && info.Result == nil {
		t.Fatalf("inconsistent snapshot: %+v", info)
	}
	res, err := s.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 10 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	info, err = s.Job(id)
	if err != nil || info.Status != StatusDone || info.Finished.IsZero() {
		t.Fatalf("post-wait snapshot: %+v, %v", info, err)
	}
	if _, err := s.Job("j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown job: %v", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	// One worker pinned on a slow job; a queued job canceled behind it must
	// finish as canceled without executing.
	s := newTest(t, Config{Workers: 1})
	slow := circuit.MustNamed("qft", 14)
	quick := circuit.MustNamed("bv", 6)
	slowID, err := s.Submit(Request{Circuit: slow, Kind: KindStatevector, Options: core.Options{Strategy: "dagp", Lm: 8}})
	if err != nil {
		t.Fatal(err)
	}
	victimID, err := s.Submit(Request{Circuit: quick, Kind: KindStatevector})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(victimID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), victimID); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled job returned %v", err)
	}
	if _, err := s.Wait(context.Background(), slowID); err != nil {
		t.Fatalf("unrelated job affected: %v", err)
	}
	if st := s.Stats(); st.Canceled != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRequestTimeout(t *testing.T) {
	s := newTest(t, Config{Workers: 1})
	_, err := s.Do(context.Background(), Request{
		Circuit: circuit.MustNamed("qft", 14),
		Kind:    KindStatevector,
		Options: core.Options{Strategy: "nat", Lm: 4},
		Timeout: time.Nanosecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestValidationErrors(t *testing.T) {
	s := newTest(t, Config{Workers: 1, MaxQubits: 10})
	good := circuit.MustNamed("bv", 4)
	cases := []struct {
		name string
		req  Request
	}{
		{"nil circuit", Request{Kind: KindSample}},
		{"unknown kind", Request{Circuit: good, Kind: "bogus"}},
		{"negative shots", Request{Circuit: good, Kind: KindSample, Shots: -1}},
		{"qubit out of range", Request{Circuit: good, Kind: KindExpectation, Qubits: []int{9}}},
		{"too wide", Request{Circuit: circuit.MustNamed("bv", 12), Kind: KindSample}},
		{"too many shots", Request{Circuit: good, Kind: KindSample, Shots: 1 << 62}},
		{"duplicate marginal qubit", Request{Circuit: good, Kind: KindProbabilities, Qubits: []int{1, 1}}},
		{"too many ranks", Request{Circuit: good, Kind: KindSample, Options: core.Options{Ranks: 1 << 24}}},
		{"too many workers", Request{Circuit: good, Kind: KindSample, Options: core.Options{Workers: 1 << 30}}},
	}
	for _, tc := range cases {
		if _, err := s.Submit(tc.req); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if s.Stats().Submitted != 0 {
		t.Fatal("rejected submissions were counted")
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	s := newTest(t, Config{Workers: 1, QueueDepth: 1})
	blocker := Request{Circuit: circuit.MustNamed("qft", 13), Kind: KindStatevector, Options: core.Options{Strategy: "dagp", Lm: 8}}
	if _, err := s.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	// Saturate: worker may have taken the first job already, so allow one
	// queued success before demanding ErrQueueFull.
	full := false
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(blocker); errors.Is(err, ErrQueueFull) {
			full = true
			break
		}
	}
	if !full {
		t.Fatal("queue never reported full")
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Close()
	if _, err := s.Submit(Request{Circuit: circuit.MustNamed("bv", 4), Kind: KindSample}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestCacheDisabled(t *testing.T) {
	s := newTest(t, Config{Workers: 1, CacheBytes: -1})
	c := circuit.MustNamed("bv", 6)
	for i := 0; i < 2; i++ {
		res, err := s.Do(context.Background(), Request{Circuit: c, Kind: KindProbabilities, Qubits: []int{0}})
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHit {
			t.Fatal("cache hit with caching disabled")
		}
		if math.Abs(res.Probabilities[0]+res.Probabilities[1]-1) > 1e-9 {
			t.Fatalf("marginal not normalized: %v", res.Probabilities)
		}
	}
	if got := s.Stats().Simulations; got != 2 {
		t.Fatalf("simulations = %d, want 2 with cache disabled", got)
	}
}

func TestDefaultShotsClampedToMaxShots(t *testing.T) {
	// Omitting Shots must respect an operator MaxShots below the 1024
	// default rather than bypassing it.
	s := newTest(t, Config{Workers: 1, MaxShots: 100})
	res, err := s.Do(context.Background(), Request{Circuit: circuit.MustNamed("bv", 5), Kind: KindSample})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 100 {
		t.Fatalf("default shots = %d, want clamp to 100", len(res.Samples))
	}
	// Expectation strings may still repeat qubits (Z² = I).
	if _, err := s.Do(context.Background(), Request{
		Circuit: circuit.MustNamed("bv", 5), Kind: KindExpectation, Qubits: []int{0, 0},
	}); err != nil {
		t.Fatalf("repeated Z-string qubits rejected: %v", err)
	}
}

func TestRetainBytesEvictsHeavyResults(t *testing.T) {
	// Statevector results beyond the byte budget age out of the job store
	// (oldest first), while light jobs stay pollable under the count bound.
	s := newTest(t, Config{Workers: 1, RetainBytes: 3 * (16 << 7)}) // room for ~3 7-qubit statevectors
	for i := 0; i < 6; i++ {
		res, err := s.Do(context.Background(), Request{Circuit: circuit.MustNamed("qft", 7), Kind: KindStatevector})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Amplitudes) != 1<<7 {
			t.Fatalf("bad result size %d", len(res.Amplitudes))
		}
	}
	// The job store must have evicted the early statevector results.
	evicted := 0
	for i := 1; i <= 6; i++ {
		if _, err := s.Job(fmt.Sprintf("j%06d", i)); errors.Is(err, ErrNotFound) {
			evicted++
		}
	}
	if evicted < 2 {
		t.Fatalf("no byte-bounded eviction: %d of 6 heavy jobs evicted", evicted)
	}
	// The most recent job always survives.
	if _, err := s.Job("j000006"); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
}

func TestStatevectorResultIsACopy(t *testing.T) {
	s := newTest(t, Config{Workers: 1})
	c := circuit.MustNamed("bv", 5)
	req := Request{Circuit: c, Kind: KindStatevector}
	a, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Amplitudes {
		a.Amplitudes[i] = complex(42, 42) // vandalize the returned slice
	}
	b, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !b.CacheHit {
		t.Fatal("expected cache hit")
	}
	if b.Amplitudes[0] == complex(42, 42) {
		t.Fatal("caller mutation reached the cached state")
	}
	// And the cached state still samples correctly.
	st := sv.NewStateRaw(append([]complex128(nil), b.Amplitudes...))
	if math.Abs(st.Norm()-1) > 1e-9 {
		t.Fatalf("cached state corrupted: norm %v", st.Norm())
	}
}

func TestNoisySampleDeterministicAndPlanCached(t *testing.T) {
	s := newTest(t, Config{Workers: 2})
	c := circuit.MustNamed("ising", 6)
	req := Request{
		Circuit: c, Kind: KindNoisySample, Shots: 400, Seed: 7, Trajectories: 20,
		Noise: noise.Global(noise.Depolarizing(0.02)),
	}
	a, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheHit {
		t.Fatal("first noisy request hit the plan cache")
	}
	if a.Trajectories != 20 {
		t.Fatalf("Trajectories = %d, want 20", a.Trajectories)
	}
	total := 0
	for _, n := range a.Counts {
		total += n
	}
	if total != 400 {
		t.Fatalf("counts sum to %d, want 400", total)
	}

	// Same request again: the compiled plan is reused and the seeded
	// ensemble reproduces the exact counts.
	b, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !b.CacheHit {
		t.Fatal("repeat noisy request missed the plan cache")
	}
	if len(a.Counts) != len(b.Counts) {
		t.Fatal("seeded noisy counts not reproducible")
	}
	for k, v := range a.Counts {
		if b.Counts[k] != v {
			t.Fatalf("count[%d] = %d vs %d", k, v, b.Counts[k])
		}
	}
	// No ideal simulation ran; trajectories were executed and counted.
	st := s.Stats()
	if st.Simulations != 0 {
		t.Fatalf("noisy jobs ran %d ideal simulations", st.Simulations)
	}
	if st.Trajectories != 40 {
		t.Fatalf("Trajectories stat = %d, want 40", st.Trajectories)
	}
}

func TestNoisyExpectationStdErr(t *testing.T) {
	s := newTest(t, Config{Workers: 2})
	res, err := s.Do(context.Background(), Request{
		Circuit: circuit.MustNamed("qft", 6), Kind: KindNoisyExpectation,
		Qubits: []int{0, 1}, Seed: 3, Trajectories: 40,
		Noise: noise.Global(noise.AmplitudeDamping(0.05)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trajectories != 40 {
		t.Fatalf("Trajectories = %d", res.Trajectories)
	}
	if res.StdErr < 0 || math.IsNaN(res.StdErr) {
		t.Fatalf("StdErr = %g", res.StdErr)
	}
	if math.Abs(res.Expectation) > 1 {
		t.Fatalf("Expectation = %g out of [-1,1]", res.Expectation)
	}
}

func TestNoisyZeroModelSharesIdealCache(t *testing.T) {
	// A noisy request whose model is all-zero must reuse the ideal state
	// cache entry: one simulation serves both the ideal and "noisy" jobs.
	s := newTest(t, Config{Workers: 1})
	c := circuit.MustNamed("qft", 7)
	opts := core.Options{Strategy: "dagp", Lm: 5, Seed: 1}
	if _, err := s.Do(context.Background(), Request{
		Circuit: c, Kind: KindSample, Shots: 100, Options: opts,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Do(context.Background(), Request{
		Circuit: c, Kind: KindNoisySample, Shots: 100, Trajectories: 4,
		Noise: noise.Global(noise.Depolarizing(0)), Options: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("zero-noise job missed the ideal state cache")
	}
	if got := s.Stats().Simulations; got != 1 {
		t.Fatalf("%d simulations for ideal + zero-noise job, want 1", got)
	}
}

func TestNoisyValidation(t *testing.T) {
	s := newTest(t, Config{Workers: 1, MaxTrajectories: 100})
	c := circuit.MustNamed("bv", 5)
	bad := []Request{
		{Circuit: c, Kind: KindNoisySample, Trajectories: 101,
			Noise: noise.Global(noise.BitFlip(0.1))}, // over trajectory cap
		{Circuit: c, Kind: KindNoisySample, Trajectories: -1,
			Noise: noise.Global(noise.BitFlip(0.1))}, // negative trajectories
		{Circuit: c, Kind: KindNoisySample,
			Noise: noise.Global(noise.BitFlip(1.5))}, // probability out of bounds
		{Circuit: c, Kind: KindNoisyExpectation, Qubits: []int{9},
			Noise: noise.Global(noise.BitFlip(0.1))}, // qubit out of range
		{Circuit: c, Kind: KindSample,
			Noise: noise.Global(noise.BitFlip(0.1))}, // noise on an ideal kind
		{Circuit: c, Kind: KindSample,
			Options: core.Options{Noise: noise.Global(noise.BitFlip(0.1))}}, // noise inside options
	}
	for i, req := range bad {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
	// The boundary values pass.
	if _, err := s.Submit(Request{Circuit: c, Kind: KindNoisySample, Trajectories: 100,
		Noise: noise.Global(noise.BitFlip(0.1))}); err != nil {
		t.Errorf("limit trajectory count rejected: %v", err)
	}
}

func TestConcurrentNoisyJobsShareTrajectoryTokens(t *testing.T) {
	// Several noisy jobs in flight at once: the shared token pool must
	// neither deadlock nor change the seeded results.
	s := newTest(t, Config{Workers: 3})
	c := circuit.MustNamed("qft", 6)
	req := func(seed int64) Request {
		return Request{
			Circuit: c, Kind: KindNoisySample, Shots: 100, Seed: seed,
			Trajectories: 12, Noise: noise.Global(noise.Depolarizing(0.05)),
		}
	}
	ids := make([]string, 6)
	for i := range ids {
		id, err := s.Submit(req(int64(i % 2))) // two seed groups
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	results := make([]*Result, len(ids))
	for i, id := range ids {
		res, err := s.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	// Jobs with equal seeds agree exactly, regardless of how many tokens
	// each happened to grab.
	for i := 2; i < len(results); i++ {
		want := results[i%2]
		if len(results[i].Counts) != len(want.Counts) {
			t.Fatalf("job %d counts differ from its seed group", i)
		}
		for k, v := range want.Counts {
			if results[i].Counts[k] != v {
				t.Fatalf("job %d count[%d] = %d, want %d", i, k, results[i].Counts[k], v)
			}
		}
	}
}
