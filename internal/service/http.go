package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"hisvsim/internal/circuit"
	"hisvsim/internal/core"
	"hisvsim/internal/noise"
	"hisvsim/internal/obs"
	"hisvsim/internal/prof"
	"hisvsim/internal/qasm"
)

// NewHandler exposes the service over HTTP/JSON:
//
//	POST   /v1/jobs             submit a job            → 202 {id, status}
//	GET    /v1/jobs/{id}        poll a job snapshot     → 200 job JSON
//	GET    /v1/jobs/{id}/result long-poll for the result (?wait=30s)
//	GET    /v1/jobs/{id}/trace  per-stage timing trace  → 200 trace JSON
//	GET    /v1/jobs/{id}/profile kernel-level execution profile → 200 profile JSON
//	DELETE /v1/jobs/{id}        cancel                  → 200 job JSON
//	GET    /v1/backends         registered execution backends
//	GET    /v1/stats            service counters
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness (200 until the process exits)
//	GET    /readyz              readiness (503 once graceful drain begins)
//
// The submit body names the circuit either inline ("qasm") or by generator
// family ("family" + "qubits"), plus kind/shots/seed/qubits and the
// simulation options; see wireRequest. Kind "run" instead carries a
// "readouts" spec — any mix of statevector, shots, marginals and Pauli
// observables answered by one simulation; "options.backend" picks the
// execution engine. Sample counts are keyed by bitstring (most-significant
// qubit first).
//
// The v3 parameterized surface rides the same endpoint: QASM may leave
// gate angles symbolic (rz(gamma) q[0];), kind "run" binds them via
// "params", kind "sweep" evaluates a binding grid ("sweep": bindings or
// grid+zip) against one compiled template, and kind "optimize" runs a
// server-side SPSA/Nelder-Mead loop ("optimize": observables, method,
// init, max_iters, …). Binding mistakes — unbound, unknown or non-finite
// symbols, grid-size mismatches — are 400s naming the symbol.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) { handleSubmit(s, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) { handleJob(s, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) { handleResult(s, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) { handleTrace(s, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}/profile", func(w http.ResponseWriter, r *http.Request) { handleProfile(s, w, r) })
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) { handleCancel(s, w, r) })
	mux.HandleFunc("GET /v1/backends", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, core.Backends())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness is distinct from liveness: once graceful shutdown
		// begins the process is still alive (healthz 200, in-flight jobs
		// finishing) but must stop receiving new traffic.
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
	})
	mux.Handle("GET /metrics", s.Metrics().Handler())
	return mux
}

// ParseRequest decodes a submit body into a Request without enqueuing it.
// The cluster coordinator uses it to route (circuit fingerprint) and to
// decide whether a job is splittable; the original bytes — not the parsed
// form — are what it forwards, so workers see the request verbatim.
func ParseRequest(body []byte) (*Request, error) {
	var wr wireRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wr); err != nil {
		return nil, err
	}
	req, err := wr.toRequest()
	if err != nil {
		return nil, err
	}
	return &req, nil
}

// wireRequest is the submit body.
type wireRequest struct {
	Circuit struct {
		QASM   string `json:"qasm,omitempty"`
		Family string `json:"family,omitempty"`
		Qubits int    `json:"qubits,omitempty"`
	} `json:"circuit"`
	Kind         string             `json:"kind"`
	Shots        int                `json:"shots,omitempty"`
	Seed         int64              `json:"seed,omitempty"`
	Qubits       []int              `json:"qubits,omitempty"`
	Readouts     *wireReadouts      `json:"readouts,omitempty"`
	Params       map[string]float64 `json:"params,omitempty"`
	Sweep        *wireSweep         `json:"sweep,omitempty"`
	Optimize     *wireOptimize      `json:"optimize,omitempty"`
	Noise        *wireNoise         `json:"noise,omitempty"`
	Trajectories int                `json:"trajectories,omitempty"`
	Options      wireOptions        `json:"options"`
	TimeoutMS    int64              `json:"timeout_ms,omitempty"`
}

// wireSweep is the kind-"sweep" binding grid:
//
//	"sweep": {"bindings": [{"gamma": 0.1, "beta": 0.2}, …]}
//	"sweep": {"grid": {"gamma": [0.1, 0.2], "beta": [0.3, 0.4]}}        // cartesian
//	"sweep": {"grid": {"gamma": [...], "beta": [...]}, "zip": true}     // zipped columns
type wireSweep struct {
	Bindings []map[string]float64 `json:"bindings,omitempty"`
	Grid     map[string][]float64 `json:"grid,omitempty"`
	Zip      bool                 `json:"zip,omitempty"`
}

// wireOptimize is the kind-"optimize" spec: the objective (weighted Pauli
// observables, summed), the optimizer and its knobs.
type wireOptimize struct {
	Observables  []wireObservable   `json:"observables"`
	Method       string             `json:"method,omitempty"` // "spsa" (default) or "nelder-mead"
	Init         map[string]float64 `json:"init,omitempty"`
	MaxIters     int                `json:"max_iters,omitempty"`
	Seed         int64              `json:"seed,omitempty"`
	A            float64            `json:"a,omitempty"`
	C            float64            `json:"c,omitempty"`
	Tol          float64            `json:"tol,omitempty"`
	Trajectories int                `json:"trajectories,omitempty"`
}

// wireReadouts is the kind-"run" multi-readout spec:
//
//	"readouts": {
//	  "shots": 1000, "seed": 7,
//	  "marginals": [[0, 1]],
//	  "observables": [
//	    {"name": "zz01", "coeff": -1.0, "paulis": "ZZ", "qubits": [0, 1]},
//	    {"name": "x2", "paulis": "X", "qubits": [2]}
//	  ],
//	  "trajectories": 500
//	}
//
// Every listed read-out is answered by the same single simulation (or, with
// a "noise" spec, the same trajectory ensemble). An omitted "coeff" means 1.
type wireReadouts struct {
	Statevector  bool             `json:"statevector,omitempty"`
	Shots        int              `json:"shots,omitempty"`
	Seed         int64            `json:"seed,omitempty"`
	Marginals    [][]int          `json:"marginals,omitempty"`
	Observables  []wireObservable `json:"observables,omitempty"`
	Trajectories int              `json:"trajectories,omitempty"`
	// TrajOffset/TrajTotal place this request's trajectories as the
	// contiguous global sub-range [traj_offset, traj_offset+trajectories)
	// of a traj_total-sized ensemble: per-trajectory RNG streams and the
	// shot split are keyed on the GLOBAL index, so a cluster coordinator
	// can fan one ensemble out across workers and merge bit-identically.
	TrajOffset int `json:"traj_offset,omitempty"`
	TrajTotal  int `json:"traj_total,omitempty"`
	// Moments asks the result to carry the per-chunk partial sums behind
	// the ensemble's mean ± stderr readouts (the deterministic cross-host
	// merge surface). Only effective-noise runs produce them.
	Moments bool `json:"moments,omitempty"`
}

// wireObservable is one weighted Pauli string (a Hamiltonian term). An
// omitted coeff means 1; an explicit 0 is rejected (the Go surface cannot
// represent "weight exactly zero" — drop the term instead).
type wireObservable struct {
	Name   string   `json:"name,omitempty"`
	Coeff  *float64 `json:"coeff,omitempty"`
	Paulis string   `json:"paulis"` // e.g. "XZY", one letter per qubit
	Qubits []int    `json:"qubits"`
}

func (w *wireReadouts) toSpec() (core.ReadoutSpec, error) {
	if w == nil {
		return core.ReadoutSpec{}, nil
	}
	spec := core.ReadoutSpec{
		Statevector: w.Statevector, Shots: w.Shots, Seed: w.Seed,
		Marginals: w.Marginals, Trajectories: w.Trajectories,
		TrajOffset: w.TrajOffset, TrajTotal: w.TrajTotal,
		Moments: w.Moments,
	}
	obs, err := toObservables(w.Observables)
	if err != nil {
		return spec, fmt.Errorf("readouts: %w", err)
	}
	spec.Observables = obs
	return spec, nil
}

// toObservables converts wire observables, rejecting explicit zero
// coefficients (an omitted coeff means 1).
func toObservables(wobs []wireObservable) ([]core.Observable, error) {
	var out []core.Observable
	for i, ob := range wobs {
		coeff := 0.0 // core zero value = unweighted (1)
		if ob.Coeff != nil {
			if *ob.Coeff == 0 {
				return nil, fmt.Errorf("observable %d has coeff 0, which always contributes nothing — drop the term (or omit coeff for weight 1)", i)
			}
			coeff = *ob.Coeff
		}
		out = append(out, core.Observable{
			Name: ob.Name, Coeff: coeff, Paulis: ob.Paulis, Qubits: ob.Qubits,
		})
	}
	return out, nil
}

// wireNoise is the JSON noise-model spec for the noisy kinds:
//
//	"noise": {
//	  "rules": [
//	    {"channel": "depolarizing", "p": 0.01},
//	    {"channel": "amplitude_damping", "p": 0.002, "gates": ["cx"]},
//	    {"channel": "bit_flip", "p": 0.01, "qubits": [0, 1]}
//	  ],
//	  "readout": {"p01": 0.01, "p10": 0.02}
//	}
//
// Channel probabilities, readout probabilities and rule qubits are bounds-
// checked here (and again by the service), so a bad model is a 400 at
// submit, mirroring the qubits/shots validation.
type wireNoise struct {
	Rules   []wireNoiseRule `json:"rules,omitempty"`
	Readout *wireReadout    `json:"readout,omitempty"`
}

// wireNoiseRule is one channel attachment.
type wireNoiseRule struct {
	Channel string   `json:"channel"`          // depolarizing, bit_flip, phase_flip, amplitude_damping, phase_damping, depolarizing2
	P       float64  `json:"p"`                // error probability / damping rate in [0,1]
	Gates   []string `json:"gates,omitempty"`  // restrict to these gate names
	Qubits  []int    `json:"qubits,omitempty"` // restrict to these qubits
}

// wireReadout is the classical measurement-error spec.
type wireReadout struct {
	P01 float64 `json:"p01"` // P(read 1 | true 0)
	P10 float64 `json:"p10"` // P(read 0 | true 1)
}

// toModel validates the wire spec and builds the noise model.
func (w *wireNoise) toModel() (*noise.Model, error) {
	if w == nil {
		return nil, nil
	}
	m := &noise.Model{}
	for i, r := range w.Rules {
		if r.P < 0 || r.P > 1 || math.IsNaN(r.P) {
			return nil, fmt.Errorf("noise rule %d: p=%g out of [0,1]", i, r.P)
		}
		ch, err := noise.NewChannel(r.Channel, r.P)
		if err != nil {
			return nil, fmt.Errorf("noise rule %d: %w", i, err)
		}
		m.AddRule(noise.Rule{Channel: ch, Gates: r.Gates, Qubits: r.Qubits})
	}
	if w.Readout != nil {
		for _, p := range []float64{w.Readout.P01, w.Readout.P10} {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return nil, fmt.Errorf("noise readout: probability %g out of [0,1]", p)
			}
		}
		m.WithReadout(w.Readout.P01, w.Readout.P10)
	}
	return m, nil
}

// wireOptions mirrors the semantically relevant core.Options fields.
type wireOptions struct {
	Backend       string `json:"backend,omitempty"` // "flat", "hier", "dist", "baseline", "dm" ("" = by rank count)
	Strategy      string `json:"strategy,omitempty"`
	Lm            int    `json:"lm,omitempty"`
	Ranks         int    `json:"ranks,omitempty"`
	SecondLevelLm int    `json:"second_level_lm,omitempty"`
	Workers       int    `json:"workers,omitempty"`
	Fuse          string `json:"fuse,omitempty"` // "auto" (default), "on", "off"
	MaxFuseQubits int    `json:"max_fuse_qubits,omitempty"`
	Seed          int64  `json:"seed,omitempty"`
}

func (o wireOptions) toCore() (core.Options, error) {
	out := core.Options{
		Backend:  o.Backend,
		Strategy: o.Strategy, Lm: o.Lm, Ranks: o.Ranks,
		SecondLevelLm: o.SecondLevelLm, Workers: o.Workers,
		MaxFuseQubits: o.MaxFuseQubits, Seed: o.Seed,
	}
	switch o.Fuse {
	case "", "auto":
		out.Fuse = core.FuseAuto
	case "on":
		out.Fuse = core.FuseOn
	case "off":
		out.Fuse = core.FuseOff
	default:
		return out, fmt.Errorf("unknown fuse policy %q (want auto, on or off)", o.Fuse)
	}
	return out, nil
}

func (w wireRequest) toRequest() (Request, error) {
	var req Request
	switch {
	case w.Circuit.QASM != "" && w.Circuit.Family != "":
		return req, errors.New("circuit: give either qasm or family, not both")
	case w.Circuit.QASM != "":
		c, err := qasm.ParseToCircuit(w.Circuit.QASM)
		if err != nil {
			return req, err
		}
		req.Circuit = c
	case w.Circuit.Family != "":
		c, err := circuit.Named(w.Circuit.Family, w.Circuit.Qubits)
		if err != nil {
			return req, err
		}
		req.Circuit = c
	default:
		return req, errors.New("circuit: missing (give qasm or family+qubits)")
	}
	opts, err := w.Options.toCore()
	if err != nil {
		return req, err
	}
	model, err := w.Noise.toModel()
	if err != nil {
		return req, err
	}
	spec, err := w.Readouts.toSpec()
	if err != nil {
		return req, err
	}
	req.Kind = Kind(w.Kind)
	req.Shots = w.Shots
	req.Seed = w.Seed
	req.Qubits = w.Qubits
	req.Readouts = spec
	req.Params = w.Params
	if w.Sweep != nil {
		req.Sweep = &SweepSpec{Bindings: w.Sweep.Bindings, Grid: w.Sweep.Grid, Zip: w.Sweep.Zip}
	}
	if w.Optimize != nil {
		obs, err := toObservables(w.Optimize.Observables)
		if err != nil {
			return req, fmt.Errorf("optimize: %w", err)
		}
		req.Optimize = &core.OptimizeSpec{
			Observables: obs, Method: w.Optimize.Method, Init: w.Optimize.Init,
			MaxIters: w.Optimize.MaxIters, Seed: w.Optimize.Seed,
			A: w.Optimize.A, C: w.Optimize.C, Tol: w.Optimize.Tol,
			Trajectories: w.Optimize.Trajectories,
		}
	}
	req.Noise = model
	req.Trajectories = w.Trajectories
	req.Options = opts
	req.Timeout = time.Duration(w.TimeoutMS) * time.Millisecond
	return req, nil
}

// wireJob is the poll/cancel response body. Backend (the executing engine)
// is populated for kind-"run" jobs only: deprecated-kind job bodies stay
// byte-compatible with the v1 surface (the engine for those is still
// visible in the /v1/stats backends counters and the Go JobInfo).
type wireJob struct {
	ID        string      `json:"id"`
	Kind      string      `json:"kind"`
	Status    string      `json:"status"`
	Backend   string      `json:"backend,omitempty"`
	Error     string      `json:"error,omitempty"`
	Submitted time.Time   `json:"submitted"`
	Started   *time.Time  `json:"started,omitempty"`
	Finished  *time.Time  `json:"finished,omitempty"`
	Result    *wireResult `json:"result,omitempty"`
}

// wireResult is the result body; only the kind's fields are populated.
// The backend/marginals/observables fields are part of the v2 (kind "run")
// surface and stay absent on deprecated-kind responses, keeping those
// byte-compatible with the v1 wire format.
type wireResult struct {
	Kind          string         `json:"kind"`
	NumQubits     int            `json:"num_qubits"`
	CacheHit      bool           `json:"cache_hit"`
	Parts         int            `json:"parts"`
	ElapsedMS     float64        `json:"elapsed_ms"`
	WaitedMS      float64        `json:"waited_ms"`
	Backend       string         `json:"backend,omitempty"`
	Samples       []int          `json:"samples,omitempty"`
	Counts        map[string]int `json:"counts,omitempty"`
	Expectation   *float64       `json:"expectation,omitempty"`
	StdErr        *float64       `json:"stderr,omitempty"`
	Trajectories  int            `json:"trajectories,omitempty"`
	Probabilities []float64      `json:"probabilities,omitempty"`
	Marginals     [][]float64    `json:"marginals,omitempty"`
	Observables   []wireObsValue `json:"observables,omitempty"`
	Amplitudes    [][2]float64   `json:"amplitudes,omitempty"`
	// Sweep and Optimize are the v3 payloads (kinds "sweep"/"optimize").
	Sweep    *wireSweepResult    `json:"sweep,omitempty"`
	Optimize *wireOptimizeResult `json:"optimize,omitempty"`
	// Moments is the optional kind-"run" merge surface ("readouts":
	// {"moments": true} on an effective-noise ensemble): per-chunk partial
	// sums behind the mean ± stderr readouts, in chunk order.
	Moments *wireMoments `json:"moments,omitempty"`
}

// wireMoments carries the per-chunk partial sums a cluster coordinator
// folds with the canonical chunked reduction to reproduce single-node
// statistics bit-for-bit. Floats survive the JSON round trip exactly
// (encoding/json emits the shortest representation that parses back to
// the same float64).
type wireMoments struct {
	ChunkSize int               `json:"chunk_size"`
	Chunks    []wireMomentChunk `json:"chunks"`
}

// wireMomentChunk is one chunk's partials: [sum, sum-of-squares] per
// observable (readout-spec order) and per-entry probability sums per
// marginal.
type wireMomentChunk struct {
	Chunk int          `json:"chunk"`
	Count int          `json:"count"`
	Obs   [][2]float64 `json:"obs,omitempty"`
	Marg  [][]float64  `json:"marg,omitempty"`
}

// wireSweepResult is the kind-"sweep" payload: the compile-amortization
// ledger plus one readout set per grid point, in request order.
type wireSweepResult struct {
	Compiles      int              `json:"compiles"`
	TouchedBlocks int              `json:"touched_blocks"`
	SharedBlocks  int              `json:"shared_blocks"`
	Trajectories  int              `json:"trajectories,omitempty"`
	Points        []wireSweepPoint `json:"points"`
}

// wireSweepPoint is one evaluated grid point.
type wireSweepPoint struct {
	Params      map[string]float64 `json:"params"`
	Samples     []int              `json:"samples,omitempty"`
	Counts      map[string]int     `json:"counts,omitempty"`
	Marginals   [][]float64        `json:"marginals,omitempty"`
	Observables []wireObsValue     `json:"observables,omitempty"`
	Amplitudes  [][2]float64       `json:"amplitudes,omitempty"`
}

// wireOptimizeResult is the kind-"optimize" payload: the best binding and
// its objective, plus the per-iteration trace.
type wireOptimizeResult struct {
	Method       string             `json:"method"`
	Best         map[string]float64 `json:"best"`
	BestValue    float64            `json:"best_value"`
	Evaluations  int                `json:"evaluations"`
	Compiles     int                `json:"compiles"`
	Converged    bool               `json:"converged"`
	Trajectories int                `json:"trajectories,omitempty"`
	Trace        []wireOptIter      `json:"trace,omitempty"`
}

// wireOptIter is one optimization trace entry.
type wireOptIter struct {
	Iter   int                `json:"iter"`
	Params map[string]float64 `json:"params"`
	Value  float64            `json:"value"`
}

// wireObsValue is one evaluated observable.
type wireObsValue struct {
	Name   string  `json:"name,omitempty"`
	Value  float64 `json:"value"`
	StdErr float64 `json:"stderr,omitempty"`
}

func toWireJob(info JobInfo) wireJob {
	out := wireJob{
		ID: info.ID, Kind: string(info.Kind), Status: string(info.Status),
		Error: info.Err, Submitted: info.Submitted,
	}
	if info.Kind == KindRun || info.Kind.Parameterized() {
		out.Backend = info.Backend
	}
	if !info.Started.IsZero() {
		t := info.Started
		out.Started = &t
	}
	if !info.Finished.IsZero() {
		t := info.Finished
		out.Finished = &t
	}
	if info.Result != nil {
		out.Result = toWireResult(info.Result)
	}
	return out
}

func toWireResult(r *Result) *wireResult {
	out := &wireResult{
		Kind: string(r.Kind), NumQubits: r.NumQubits, CacheHit: r.CacheHit,
		Parts:     r.Parts,
		ElapsedMS: float64(r.Elapsed) / float64(time.Millisecond),
		WaitedMS:  float64(r.Waited) / float64(time.Millisecond),
	}
	switch r.Kind {
	case KindRun:
		out.Backend = r.Backend
		out.Trajectories = r.Trajectories
		out.Samples = r.Samples
		if r.Counts != nil {
			out.Counts = make(map[string]int, len(r.Counts))
			for basis, n := range r.Counts {
				out.Counts[bitstring(basis, r.NumQubits)] = n
			}
		}
		out.Marginals = r.Marginals
		for _, ov := range r.Observables {
			out.Observables = append(out.Observables, wireObsValue{Name: ov.Name, Value: ov.Value, StdErr: ov.StdErr})
		}
		if r.Amplitudes != nil {
			out.Amplitudes = make([][2]float64, len(r.Amplitudes))
			for i, a := range r.Amplitudes {
				out.Amplitudes[i] = [2]float64{real(a), imag(a)}
			}
		}
		if len(r.Moments) > 0 {
			wm := &wireMoments{ChunkSize: noise.MomentChunk,
				Chunks: make([]wireMomentChunk, 0, len(r.Moments))}
			for _, m := range r.Moments {
				wm.Chunks = append(wm.Chunks, wireMomentChunk{
					Chunk: m.Chunk, Count: m.Count, Obs: m.Obs, Marg: m.Marg,
				})
			}
			out.Moments = wm
		}
	case KindSweep:
		out.Backend = r.Backend
		out.Trajectories = r.Trajectories
		if r.Sweep != nil {
			ws := &wireSweepResult{
				Compiles: r.Sweep.Compiles, TouchedBlocks: r.Sweep.TouchedBlocks,
				SharedBlocks: r.Sweep.SharedBlocks, Trajectories: r.Sweep.Trajectories,
				Points: make([]wireSweepPoint, 0, len(r.Sweep.Points)),
			}
			for _, p := range r.Sweep.Points {
				ws.Points = append(ws.Points, toWireSweepPoint(p, r.NumQubits))
			}
			out.Sweep = ws
		}
	case KindOptimize:
		out.Backend = r.Backend
		out.Trajectories = r.Trajectories
		if r.Optimize != nil {
			wo := &wireOptimizeResult{
				Method: r.Optimize.Method, Best: r.Optimize.Best, BestValue: r.Optimize.BestValue,
				Evaluations: r.Optimize.Evaluations, Compiles: r.Optimize.Compiles,
				Converged: r.Optimize.Converged, Trajectories: r.Optimize.Trajectories,
			}
			for _, it := range r.Optimize.Trace {
				wo.Trace = append(wo.Trace, wireOptIter{Iter: it.Iter, Params: it.Params, Value: it.Value})
			}
			out.Optimize = wo
		}
	case KindSample, KindNoisySample:
		out.Samples = r.Samples
		out.Counts = make(map[string]int, len(r.Counts))
		for basis, n := range r.Counts {
			out.Counts[bitstring(basis, r.NumQubits)] = n
		}
		out.Trajectories = r.Trajectories
	case KindExpectation, KindNoisyExpectation:
		e := r.Expectation
		out.Expectation = &e
		if r.Kind == KindNoisyExpectation {
			se := r.StdErr
			out.StdErr = &se
			out.Trajectories = r.Trajectories
		}
	case KindProbabilities:
		out.Probabilities = r.Probabilities
	case KindStatevector:
		out.Amplitudes = make([][2]float64, len(r.Amplitudes))
		for i, a := range r.Amplitudes {
			out.Amplitudes[i] = [2]float64{real(a), imag(a)}
		}
	}
	return out
}

// toWireSweepPoint renders one grid point's read-outs (bitstring count
// keys and [re, im] amplitudes, matching the kind-"run" conventions).
func toWireSweepPoint(p core.SweepPoint, n int) wireSweepPoint {
	out := wireSweepPoint{Params: p.Binding}
	ro := p.Readouts
	if ro == nil {
		return out
	}
	out.Samples = ro.Samples
	if ro.Counts != nil {
		out.Counts = make(map[string]int, len(ro.Counts))
		for basis, c := range ro.Counts {
			out.Counts[bitstring(basis, n)] = c
		}
	}
	out.Marginals = ro.Marginals
	for _, ov := range ro.Observables {
		out.Observables = append(out.Observables, wireObsValue{Name: ov.Name, Value: ov.Value, StdErr: ov.StdErr})
	}
	if ro.Amplitudes != nil {
		out.Amplitudes = make([][2]float64, len(ro.Amplitudes))
		for i, a := range ro.Amplitudes {
			out.Amplitudes[i] = [2]float64{real(a), imag(a)}
		}
	}
	return out
}

// bitstring renders a basis index with qubit n−1 leftmost (the usual ket
// convention; qubit 0 is the least-significant bit of the index).
func bitstring(basis, n int) string {
	if n <= 0 {
		return strconv.Itoa(basis)
	}
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		b[n-1-i] = byte('0' + (basis>>uint(i))&1)
	}
	return string(b)
}

func handleSubmit(s *Service, w http.ResponseWriter, r *http.Request) {
	var wr wireRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := wr.toRequest()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// When the handler is mounted without obs.InstrumentHTTP (embedded
	// use, tests), honor the propagation headers directly so a cluster
	// coordinator's X-Request-ID / X-Parent-Span still reach the job.
	ctx := r.Context()
	if obs.RequestID(ctx) == "" {
		if rid := r.Header.Get("X-Request-ID"); rid != "" {
			ctx = obs.WithRequestID(ctx, rid)
		}
	}
	if obs.ParentSpan(ctx) == "" {
		if span := r.Header.Get(obs.ParentSpanHeader); span != "" {
			ctx = obs.WithParentSpan(ctx, span)
		}
	}
	id, err := s.SubmitContext(ctx, req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Admission control, not failure: tell the client when to come
		// back. The cluster coordinator parses this when dispatching
		// sub-jobs and backs the worker off for that long.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "status": string(StatusQueued)})
}

func handleJob(s *Service, w http.ResponseWriter, r *http.Request) {
	info, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, toWireJob(info))
}

// handleResult long-polls: it waits up to ?wait (default 30s, capped at
// 5m) for the job to finish. A job still running at the deadline yields
// 202 with the snapshot, so clients can re-arm the poll without treating
// it as an error.
func handleResult(s *Service, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wait := 30 * time.Second
	if raw := r.URL.Query().Get("wait"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait %q: %w", raw, err))
			return
		}
		wait = min(max(d, 0), 5*time.Minute)
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	res, werr := s.Wait(ctx, id)
	if errors.Is(werr, ErrNotFound) {
		writeError(w, http.StatusNotFound, werr)
		return
	}
	info, jerr := s.Job(id)
	switch {
	case jerr == nil:
		code := http.StatusOK
		if !info.Status.Terminal() {
			code = http.StatusAccepted // still running: client re-arms the poll
		}
		writeJSON(w, code, toWireJob(info))
	case werr == nil:
		// Retention evicted the job between Wait and Job — serve the
		// result Wait already handed us rather than 404ing a success.
		writeJSON(w, http.StatusOK, wireJob{
			ID: id, Kind: string(res.Kind), Status: string(StatusDone),
			Result: toWireResult(res),
		})
	case ctx.Err() != nil:
		// Our long-poll timer expired and the job is gone: truly unknown.
		writeError(w, http.StatusNotFound, ErrNotFound)
	default:
		// Evicted terminal failure/cancel: synthesize the snapshot.
		status := StatusFailed
		if errors.Is(werr, context.Canceled) || errors.Is(werr, context.DeadlineExceeded) {
			status = StatusCanceled
		}
		writeJSON(w, http.StatusOK, wireJob{ID: id, Status: string(status), Error: werr.Error()})
	}
}

// wireTrace is the GET /v1/jobs/{id}/trace body: the job's sequential
// stage spans. For terminal jobs the stage durations sum to wall_ms (the
// spans tile the submitted→finished window); live jobs include the open
// stage measured to now.
type wireTrace struct {
	ID         string      `json:"id"`
	Kind       string      `json:"kind"`
	Status     string      `json:"status"`
	RequestID  string      `json:"request_id,omitempty"`
	ParentSpan string      `json:"parent_span,omitempty"`
	Backend    string      `json:"backend,omitempty"`
	WallMS     float64     `json:"wall_ms"`
	Stages     []wireStage `json:"stages"`
}

// wireStage is one stage span: its offset from submit and its duration.
type wireStage struct {
	Stage      string  `json:"stage"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
}

func handleTrace(s *Service, w http.ResponseWriter, r *http.Request) {
	info, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	wall := time.Since(info.Submitted)
	if !info.Finished.IsZero() {
		wall = info.Finished.Sub(info.Submitted)
	}
	out := wireTrace{
		ID: info.ID, Kind: string(info.Kind), Status: string(info.Status),
		RequestID: info.RequestID, ParentSpan: info.ParentSpan, Backend: info.Backend,
		WallMS: durationMS(wall),
		Stages: make([]wireStage, 0, len(info.Trace)),
	}
	for _, sp := range info.Trace {
		out.Stages = append(out.Stages, wireStage{
			Stage: sp.Name, StartMS: durationMS(sp.Start), DurationMS: durationMS(sp.Dur),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// wireProfile is the GET /v1/jobs/{id}/profile body: the job's kernel-level
// execution profile nested under its stage trace. window_ms sums the engine
// stages (simulate + trajectories) — the wall time the kernels could have
// been attributed to — and kernel_ms sums the attributed kernel rows.
// unattributed_ms = window_ms − kernel_ms is the engine time spent outside
// instrumented kernels (fusion compile, state allocation, scheduling); it
// goes NEGATIVE when trajectory workers > 1, because concurrent
// trajectories' kernel seconds sum while the stage clock does not.
type wireProfile struct {
	ID             string            `json:"id"`
	Kind           string            `json:"kind"`
	Status         string            `json:"status"`
	RequestID      string            `json:"request_id,omitempty"`
	ParentSpan     string            `json:"parent_span,omitempty"`
	Backend        string            `json:"backend,omitempty"`
	WallMS         float64           `json:"wall_ms"`
	WindowMS       float64           `json:"window_ms"`
	KernelMS       float64           `json:"kernel_ms"`
	UnattributedMS float64           `json:"unattributed_ms"`
	Stages         []wireStage       `json:"stages"`
	Kernels        []prof.KernelStat `json:"kernels"`
}

func handleProfile(s *Service, w http.ResponseWriter, r *http.Request) {
	info, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	wall := time.Since(info.Submitted)
	if !info.Finished.IsZero() {
		wall = info.Finished.Sub(info.Submitted)
	}
	out := wireProfile{
		ID: info.ID, Kind: string(info.Kind), Status: string(info.Status),
		RequestID: info.RequestID, ParentSpan: info.ParentSpan, Backend: info.Backend,
		WallMS:  durationMS(wall),
		Stages:  make([]wireStage, 0, len(info.Trace)),
		Kernels: info.Profile,
	}
	if out.Kernels == nil {
		out.Kernels = []prof.KernelStat{} // render [] rather than null
	}
	for _, sp := range info.Trace {
		out.Stages = append(out.Stages, wireStage{
			Stage: sp.Name, StartMS: durationMS(sp.Start), DurationMS: durationMS(sp.Dur),
		})
		if sp.Name == stageSimulate || sp.Name == stageTrajectories {
			out.WindowMS += durationMS(sp.Dur)
		}
	}
	for _, ks := range info.Profile {
		out.KernelMS += ks.Seconds * 1e3
	}
	out.UnattributedMS = out.WindowMS - out.KernelMS
	writeJSON(w, http.StatusOK, out)
}

func durationMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func handleCancel(s *Service, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	info, err := s.Job(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, toWireJob(info))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
