package service

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"hisvsim/internal/circuit"
	"hisvsim/internal/core"
	"hisvsim/internal/dm"
	"hisvsim/internal/noise"
)

// TestDMNoisyJobExactDeterministicCached is the service-level acceptance
// criterion for the exact engine: a noisy "dm" job performs exactly ONE
// simulation and ZERO trajectories, its observable values are independent
// of the sampling seed, and a repeat job — any seed — hits the ρ cache.
func TestDMNoisyJobExactDeterministicCached(t *testing.T) {
	s := newTest(t, Config{Workers: 2})
	c := circuit.MustNamed("ising", 6)
	req := Request{
		Circuit: c, Kind: KindRun,
		Noise: noise.Global(noise.AmplitudeDamping(0.03)),
		Readouts: core.ReadoutSpec{
			Shots: 300, Seed: 7,
			Marginals: [][]int{{0, 1}},
			Observables: []core.Observable{
				{Name: "z0", Paulis: "Z", Qubits: []int{0}},
				{Name: "xy", Paulis: "XY", Qubits: []int{1, 2}},
			},
		},
		Options: core.Options{Backend: "dm"},
	}
	a, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Backend != "dm" {
		t.Fatalf("backend = %q, want dm", a.Backend)
	}
	if a.Trajectories != 0 {
		t.Fatalf("Trajectories = %d, want 0 (exact evolution has no ensemble)", a.Trajectories)
	}
	total := 0
	for _, n := range a.Counts {
		total += n
	}
	if total != 300 {
		t.Fatalf("counts sum to %d, want 300", total)
	}
	if len(a.Samples) != 300 {
		t.Fatalf("dm run returned %d per-shot samples, want 300", len(a.Samples))
	}
	for _, ov := range a.Observables {
		if ov.StdErr != 0 {
			t.Fatalf("observable %s has StdErr %g, want 0 (exact)", ov.Name, ov.StdErr)
		}
	}
	st := s.Stats()
	if st.Simulations != 1 || st.Trajectories != 0 {
		t.Fatalf("stats after one dm job: simulations=%d trajectories=%d, want 1/0",
			st.Simulations, st.Trajectories)
	}

	// A different sampling seed: the evolved ρ is reused (cache hit, still
	// one simulation) and the observable values are bit-identical — exact
	// read-outs are seed-independent.
	req2 := req
	req2.Readouts.Seed = 99
	b, err := s.Do(context.Background(), req2)
	if err != nil {
		t.Fatal(err)
	}
	if !b.CacheHit {
		t.Fatal("repeat dm job with a new seed missed the ρ cache")
	}
	for k := range a.Observables {
		if a.Observables[k].Value != b.Observables[k].Value {
			t.Fatalf("observable %s changed with the sampling seed: %g vs %g",
				a.Observables[k].Name, a.Observables[k].Value, b.Observables[k].Value)
		}
	}
	for i := range a.Marginals[0] {
		if a.Marginals[0][i] != b.Marginals[0][i] {
			t.Fatal("marginals changed with the sampling seed")
		}
	}
	if st := s.Stats(); st.Simulations != 1 {
		t.Fatalf("simulations = %d after a cached repeat, want 1", st.Simulations)
	}

	// The exact values agree with a trajectory ensemble on the flat engine
	// within 3× its standard error.
	treq := req
	treq.Options.Backend = "flat"
	treq.Readouts.Trajectories = 800
	tr, err := s.Do(context.Background(), treq)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Trajectories != 800 {
		t.Fatalf("trajectory run reported %d trajectories", tr.Trajectories)
	}
	for k := range a.Observables {
		exact, mean, se := a.Observables[k].Value, tr.Observables[k].Value, tr.Observables[k].StdErr
		if math.Abs(mean-exact) > 3*se+1e-9 {
			t.Errorf("observable %s: ensemble %g ± %g vs exact %g (|Δ| > 3σ)",
				a.Observables[k].Name, mean, se, exact)
		}
	}
}

// TestDMLegacyNoisyKindsServedExactly: the deprecated noisy kinds run on
// the exact engine too — counts still sum, expectation is exact (no
// stderr), and no trajectories execute.
func TestDMLegacyNoisyKindsServedExactly(t *testing.T) {
	s := newTest(t, Config{Workers: 1})
	c := circuit.MustNamed("ising", 5)
	model := noise.Global(noise.Depolarizing(0.02))
	sam, err := s.Do(context.Background(), Request{
		Circuit: c, Kind: KindNoisySample, Shots: 200, Seed: 3,
		Noise: model, Options: core.Options{Backend: "dm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range sam.Counts {
		total += n
	}
	if total != 200 || sam.Trajectories != 0 {
		t.Fatalf("dm noisy_sample: %d shots, %d trajectories (want 200, 0)", total, sam.Trajectories)
	}
	exp, err := s.Do(context.Background(), Request{
		Circuit: c, Kind: KindNoisyExpectation, Qubits: []int{0, 1},
		Noise: model, Options: core.Options{Backend: "dm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if exp.StdErr != 0 {
		t.Fatalf("dm noisy_expectation stderr = %g, want 0", exp.StdErr)
	}
	if st := s.Stats(); st.Trajectories != 0 {
		t.Fatalf("legacy kinds on dm ran %d trajectories", st.Trajectories)
	}
}

// TestCapabilityEnforcementAtSubmit: requests a backend cannot serve fail
// at Submit — noisy jobs on engines with no noisy path, registers over the
// dm qubit cap, statevector read-outs of ρ — instead of at worker time.
func TestCapabilityEnforcementAtSubmit(t *testing.T) {
	s := newTest(t, Config{Workers: 1})
	small := circuit.MustNamed("ising", 5)
	model := noise.Global(noise.Depolarizing(0.01))
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"noisy on baseline", Request{
			Circuit: small, Kind: KindRun, Noise: model,
			Readouts: core.ReadoutSpec{Shots: 10},
			Options:  core.Options{Backend: "baseline"},
		}, "no noisy path"},
		{"noisy legacy kind on dist", Request{
			Circuit: small, Kind: KindNoisySample, Shots: 10, Noise: model,
			Options: core.Options{Backend: "dist", Ranks: 2},
		}, "no noisy path"},
		{"dm over the qubit cap", Request{
			Circuit: circuit.MustNamed("cat_state", dm.MaxQubits+1), Kind: KindRun,
			Readouts: core.ReadoutSpec{Shots: 10},
			Options:  core.Options{Backend: "dm"},
		}, "at most"},
		{"statevector on dm", Request{
			Circuit: small, Kind: KindRun,
			Readouts: core.ReadoutSpec{Statevector: true},
			Options:  core.Options{Backend: "dm"},
		}, "statevector"},
		{"legacy statevector kind on dm", Request{
			Circuit: small, Kind: KindStatevector,
			Options: core.Options{Backend: "dm"},
		}, "statevector"},
		{"dm multi-rank", Request{
			Circuit: small, Kind: KindRun,
			Readouts: core.ReadoutSpec{Shots: 10},
			Options:  core.Options{Backend: "dm", Ranks: 4},
		}, "single-node"},
	}
	for _, tc := range cases {
		if _, err := s.Submit(tc.req); err == nil {
			t.Errorf("%s: Submit accepted the request", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if st := s.Stats(); st.Submitted != 0 {
		t.Fatalf("%d rejected requests were counted as submitted", st.Submitted)
	}
}

// TestHTTPDMNoisyRunAndCapability400s: the dm engine over the wire — a
// noisy "run" job with the correlated two-qubit channel succeeds with
// trajectories 0, capability mismatches are 400s at submit, and
// /v1/backends surfaces the noise capability and qubit cap.
func TestHTTPDMNoisyRunAndCapability400s(t *testing.T) {
	s, srv := newHTTPTest(t)
	resp, body := postJSON(t, srv.URL+"/v1/jobs", `{
		"circuit": {"family": "ising", "qubits": 6},
		"kind": "run",
		"readouts": {"shots": 100, "seed": 7,
			"observables": [{"name": "zz01", "paulis": "ZZ", "qubits": [0, 1]}]},
		"noise": {"rules": [{"channel": "depolarizing2", "p": 0.02, "gates": ["rzz"]},
		                    {"channel": "amplitude_damping", "p": 0.01}],
		          "readout": {"p01": 0.01, "p10": 0.01}},
		"options": {"backend": "dm"}
	}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("dm submit status %d: %v", resp.StatusCode, body)
	}
	id := body["id"].(string)
	resp, body = getJSON(t, srv.URL+"/v1/jobs/"+id+"/result?wait=30s")
	if resp.StatusCode != http.StatusOK || body["status"] != "done" {
		t.Fatalf("dm result: %d %v", resp.StatusCode, body)
	}
	result := body["result"].(map[string]any)
	if result["backend"] != "dm" {
		t.Fatalf("result backend = %v, want dm", result["backend"])
	}
	if tr, ok := result["trajectories"]; ok && tr.(float64) != 0 {
		t.Fatalf("dm job reported %v trajectories", tr)
	}
	obs := result["observables"].([]any)
	if len(obs) != 1 {
		t.Fatalf("observables: %v", obs)
	}
	if se, ok := obs[0].(map[string]any)["stderr"]; ok && se.(float64) != 0 {
		t.Fatalf("exact observable carries stderr %v", se)
	}

	// Capability mismatches are 400s.
	for name, reqBody := range map[string]string{
		"noisy on baseline": `{
			"circuit": {"family": "ising", "qubits": 6},
			"kind": "noisy_sample", "shots": 10,
			"noise": {"rules": [{"channel": "depolarizing", "p": 0.01}]},
			"options": {"backend": "baseline"}
		}`,
		"dm over cap": `{
			"circuit": {"family": "cat_state", "qubits": 14},
			"kind": "run", "readouts": {"shots": 10},
			"options": {"backend": "dm"}
		}`,
		"statevector on dm": `{
			"circuit": {"family": "ising", "qubits": 6},
			"kind": "run", "readouts": {"statevector": true},
			"options": {"backend": "dm"}
		}`,
	} {
		resp, body := postJSON(t, srv.URL+"/v1/jobs", reqBody)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400): %v", name, resp.StatusCode, body)
		}
	}

	// The registry listing carries the noise capability and the dm cap.
	hr, err := http.Get(srv.URL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var infos []struct {
		Name         string `json:"name"`
		Capabilities struct {
			Noise     string `json:"noise"`
			MaxQubits int    `json:"max_qubits"`
		} `json:"capabilities"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	found := map[string]string{}
	for _, info := range infos {
		found[info.Name] = info.Capabilities.Noise
		if info.Name == "dm" && info.Capabilities.MaxQubits != dm.MaxQubits {
			t.Errorf("dm max_qubits = %d, want %d", info.Capabilities.MaxQubits, dm.MaxQubits)
		}
	}
	for name, want := range map[string]string{"dm": "exact", "flat": "trajectory", "hier": "trajectory", "baseline": "", "dist": ""} {
		if got := found[name]; got != want {
			t.Errorf("/v1/backends %s noise = %q, want %q", name, got, want)
		}
	}
	_ = s
}
