package service

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hisvsim/internal/circuit"
	"hisvsim/internal/core"
	"hisvsim/internal/fuse"
	"hisvsim/internal/noise"
)

// This file is the service half of the v3 template surface: binding-grid
// expansion (SweepSpec), the template-fingerprint-keyed compile cache that
// makes "M bindings = 1 fusion compile" hold ACROSS jobs as well as within
// one, and the executors for KindSweep, KindOptimize and bound KindRun.

// SweepSpec names a sweep job's binding grid. Exactly one of Bindings or
// Grid must be set.
type SweepSpec struct {
	// Bindings is the explicit point list, evaluated in order.
	Bindings []map[string]float64
	// Grid gives per-symbol value lists. By default the points are the
	// cartesian product in sorted symbol order (last symbol fastest); with
	// Zip the columns must have equal length L and yield L points
	// (column i of every symbol forms point i).
	Grid map[string][]float64
	Zip  bool
}

// Expand resolves the spec to its explicit binding list, rejecting
// malformed grids (both/neither form set, zip length mismatch, products
// over limit) with errors that name the offending symbols. Exported so a
// cluster coordinator can expand a grid once and split the points into
// contiguous sub-ranges.
func (sp *SweepSpec) Expand(limit int) ([]map[string]float64, error) {
	if len(sp.Bindings) > 0 && len(sp.Grid) > 0 {
		return nil, fmt.Errorf("sweep: set Bindings or Grid, not both")
	}
	if len(sp.Bindings) > 0 {
		return sp.Bindings, nil
	}
	if len(sp.Grid) == 0 {
		return nil, fmt.Errorf("sweep: empty binding grid (set Bindings or Grid)")
	}
	syms := make([]string, 0, len(sp.Grid))
	for s := range sp.Grid {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	for _, s := range syms {
		if len(sp.Grid[s]) == 0 {
			return nil, fmt.Errorf("sweep: symbol %q has no grid values", s)
		}
		for _, v := range sp.Grid[s] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("sweep: non-finite grid value %v for symbol %q", v, s)
			}
		}
	}
	if sp.Zip {
		want := len(sp.Grid[syms[0]])
		for _, s := range syms[1:] {
			if len(sp.Grid[s]) != want {
				return nil, fmt.Errorf("sweep: grid-size mismatch: symbol %q has %d values, %q has %d",
					syms[0], want, s, len(sp.Grid[s]))
			}
		}
		if want > limit {
			return nil, fmt.Errorf("sweep: grid has %d points, limit %d", want, limit)
		}
		out := make([]map[string]float64, want)
		for i := range out {
			env := make(map[string]float64, len(syms))
			for _, s := range syms {
				env[s] = sp.Grid[s][i]
			}
			out[i] = env
		}
		return out, nil
	}
	total := 1
	for _, s := range syms {
		if total > limit/len(sp.Grid[s]) {
			return nil, fmt.Errorf("sweep: cartesian grid exceeds %d points", limit)
		}
		total *= len(sp.Grid[s])
	}
	out := make([]map[string]float64, 0, total)
	idx := make([]int, len(syms))
	for {
		env := make(map[string]float64, len(syms))
		for i, s := range syms {
			env[s] = sp.Grid[s][idx[i]]
		}
		out = append(out, env)
		// Odometer increment, last symbol fastest.
		i := len(syms) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(sp.Grid[syms[i]]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out, nil
		}
	}
}

// validateOptimize checks a KindOptimize request at submit: known method,
// a well-formed objective, a complete-and-known Init, and bounded work —
// all the failures a worker could hit become 400s naming the problem.
func (s *Service) validateOptimize(req Request) error {
	spec := *req.Optimize
	if spec.Method != "" && spec.Method != core.MethodSPSA && spec.Method != core.MethodNelderMead {
		return fmt.Errorf("service: unknown optimizer %q (have %q, %q)", spec.Method, core.MethodSPSA, core.MethodNelderMead)
	}
	if len(spec.Observables) == 0 {
		return fmt.Errorf("service: optimize needs at least one observable (the objective is their weighted sum)")
	}
	roSpec := core.ReadoutSpec{Observables: spec.Observables}
	if err := roSpec.Validate(req.Circuit.NumQubits); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	syms := req.Circuit.Symbols()
	for k, v := range spec.Init {
		known := false
		for _, s := range syms {
			if s == k {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("service: init binds unknown symbol %q", k)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("service: non-finite init value %v for symbol %q", v, k)
		}
	}
	if spec.MaxIters > s.cfg.MaxOptimizeIters {
		return fmt.Errorf("service: %d iterations exceeds limit %d", spec.MaxIters, s.cfg.MaxOptimizeIters)
	}
	if spec.Trajectories < 0 {
		return fmt.Errorf("service: negative trajectory count %d", spec.Trajectories)
	}
	if spec.Trajectories > s.cfg.MaxTrajectories {
		return fmt.Errorf("service: %d trajectories exceeds limit %d", spec.Trajectories, s.cfg.MaxTrajectories)
	}
	return nil
}

// templateEntry wraps a compiled fuse.Template for the plan LRU.
type templateEntry struct {
	tpl *fuse.Template
}

// templateCost estimates a template's resident bytes: the fused payloads
// plus the shared kernel index tables (roughly one int per amplitude
// touched, approximated by the payload size again).
func templateCost(t *fuse.Template) int64 {
	var b int64 = 1024
	for i := range t.Blocks {
		b += int64(len(t.Blocks[i].Diag)) * 16
		b += int64(len(t.Blocks[i].Matrix.Data)) * 16
		b += int64(len(t.Blocks[i].Gates)) * 256
	}
	return 2 * b
}

// templateFor returns the compiled template for the circuit's TEMPLATE
// fingerprint (structure + symbol names, not binding values), compiling on
// miss. Templates live beside trajectory plans in the dedicated plan LRU:
// they are small, hot, and must survive bursts of giant state entries.
// Every real compile bumps Stats.TemplateCompiles — the counter the sweep
// acceptance gate watches.
func (s *Service) templateFor(c *circuit.Circuit, o core.Options) (*fuse.Template, bool, error) {
	key := fmt.Sprintf("tpl|%s|mf=%d", c.Fingerprint(), o.MaxFuseQubits)
	s.mu.Lock()
	if v, ok := s.planCache.Get(key); ok {
		s.mu.Unlock()
		s.m.cacheHits.With(cachePlan).Inc()
		return v.(*templateEntry).tpl, true, nil
	}
	s.mu.Unlock()
	s.m.cacheMisses.With(cachePlan).Inc()
	s.m.templateCompiles.Inc()
	tpl, err := fuse.CompileTemplate(c, fuse.Options{MaxQubits: o.MaxFuseQubits})
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	if s.planCache.Put(key, &templateEntry{tpl: tpl}, templateCost(tpl)) {
		s.m.cachePut(cachePlan, templateCost(tpl))
	}
	s.mu.Unlock()
	return tpl, false, nil
}

// templateEntryFor returns the cached bound state for (template, binding):
// the template compiles once per fingerprint, the state once per binding
// digest, and repeats of the same bound run cost sampling only — the same
// economics entryFor gives concrete circuits.
func (s *Service) templateEntryFor(j *job, env map[string]float64) (*cacheEntry, bool, error) {
	key := fmt.Sprintf("tplrun|%s|%s|mf=%d w=%d",
		j.req.Circuit.Fingerprint(), circuit.BindingDigest(env), j.req.Options.MaxFuseQubits, j.req.Options.Workers)
	v, hit, err := s.cachedCompute(j, key, func() (costed, error) {
		j.trace.Begin(stageCompile)
		tpl, _, err := s.templateFor(j.req.Circuit, j.req.Options)
		if err != nil {
			return nil, err
		}
		s.m.simulations.Inc()
		j.trace.Begin(stageSimulate)
		st, err := tpl.Run(env, j.req.Options.Workers)
		if err != nil {
			return nil, err
		}
		return &cacheEntry{state: st}, nil
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*cacheEntry), hit, nil
}

// executeParamRun serves KindRun with a bound parameterized circuit on the
// flat engine: the shared template is specialized for the request's Params
// and the result is indistinguishable from running the bound concrete
// circuit.
func (s *Service) executeParamRun(j *job, spec core.ReadoutSpec) (*Result, error) {
	start := time.Now()
	s.setBackend(j, j.idealBackend)
	entry, hit, err := s.templateEntryFor(j, j.req.Params)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Kind: j.req.Kind, Backend: j.idealBackend, NumQubits: entry.state.N,
		CacheHit: hit,
		Waited:   j.started.Sub(j.submitted),
	}
	j.trace.Begin(stageSample)
	if spec.Shots > 0 {
		legacyProject(res, core.EvaluateState(entry.state, entry.getSampler(), spec))
	} else {
		legacyProject(res, core.EvaluateState(entry.state, nil, spec))
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// executeSweep evaluates a binding grid against one compiled template.
// Ideal sweeps replay the fused template per point; effective-noise sweeps
// re-bind one cached trajectory plan and run a full seeded ensemble per
// point. Result.Sweep.Compiles counts the fusion compiles THIS job caused
// (0 when the template was already cached), which with a cold cache is
// exactly 1 for any grid size.
func (s *Service) executeSweep(j *job) (*Result, error) {
	start := time.Now()
	req := j.req
	spec := req.Readouts
	bindings := req.Sweep.Bindings
	res := &Result{
		Kind: KindSweep, NumQubits: req.Circuit.NumQubits,
		Waited: j.started.Sub(j.submitted),
	}
	rep := &core.SweepReport{Points: make([]core.SweepPoint, 0, len(bindings))}

	if !req.Noise.IsZero() {
		// Trajectory-ensemble sweep: widen across the shared token pool
		// exactly like executeNoisy, then run one seeded ensemble per point
		// over the shared compiled plan.
		width := 1
		for width < s.cfg.Workers {
			select {
			case <-s.trajTokens:
				width++
				continue
			default:
			}
			break
		}
		defer func() {
			for i := 1; i < width; i++ {
				s.trajTokens <- struct{}{}
			}
		}()
		run := spec.NoisyRunConfig(width)
		j.trace.Begin(stageCompile)
		plan, hit, err := s.noisePlanFor(j)
		if err != nil {
			return nil, err
		}
		if !hit {
			rep.Compiles++
		}
		res.CacheHit = hit
		if plan.NoiseFree() {
			// Zero-effect model: ideal template runs with readout error
			// applied at sampling, mirroring the concrete-circuit fast path.
			tpl, thit, err := s.templateFor(req.Circuit, req.Options)
			if err != nil {
				return nil, err
			}
			if !thit {
				rep.Compiles++
			}
			s.setBackend(j, j.idealBackend)
			res.Backend = j.idealBackend
			rep.TouchedBlocks = tpl.TouchedBlocks()
			rep.SharedBlocks = len(tpl.Blocks) - tpl.TouchedBlocks()
			j.trace.Begin(stageExecute)
			for i, env := range bindings {
				if err := j.ctx.Err(); err != nil {
					return nil, err
				}
				st, err := tpl.Run(env, width)
				if err != nil {
					return nil, fmt.Errorf("binding %d: %w", i, err)
				}
				ens, err := noise.RunEnsembleFromState(j.ctx, st, plan.Readout(), run)
				if err != nil {
					return nil, err
				}
				rep.Trajectories = ens.Trajectories
				rep.Points = append(rep.Points, core.SweepPoint{Binding: env, Readouts: core.ReadoutsFromEnsemble(ens, spec)})
			}
		} else {
			s.setBackend(j, BackendTrajectory)
			res.Backend = BackendTrajectory
			j.trace.Begin(stageExecute)
			for i, env := range bindings {
				if err := j.ctx.Err(); err != nil {
					return nil, err
				}
				sp, err := plan.Specialize(env)
				if err != nil {
					return nil, fmt.Errorf("binding %d: %w", i, err)
				}
				ens, err := noise.RunEnsemble(j.ctx, sp, run)
				if err != nil {
					return nil, err
				}
				rep.Trajectories = ens.Trajectories
				s.m.trajectories.Add(int64(ens.Trajectories))
				rep.Points = append(rep.Points, core.SweepPoint{Binding: env, Readouts: core.ReadoutsFromEnsemble(ens, spec)})
			}
		}
		rep.Elapsed = time.Since(start)
		res.Sweep = rep
		res.Trajectories = rep.Trajectories
		res.Elapsed = time.Since(start)
		return res, nil
	}

	s.setBackend(j, j.idealBackend)
	res.Backend = j.idealBackend
	j.trace.Begin(stageCompile)
	tpl, hit, err := s.templateFor(req.Circuit, req.Options)
	if err != nil {
		return nil, err
	}
	if !hit {
		rep.Compiles++
	}
	res.CacheHit = hit
	rep.TouchedBlocks = tpl.TouchedBlocks()
	rep.SharedBlocks = len(tpl.Blocks) - tpl.TouchedBlocks()
	j.trace.Begin(stageExecute)
	for i, env := range bindings {
		if err := j.ctx.Err(); err != nil {
			return nil, err
		}
		st, err := tpl.Run(env, req.Options.Workers)
		if err != nil {
			return nil, fmt.Errorf("binding %d: %w", i, err)
		}
		rep.Points = append(rep.Points, core.SweepPoint{Binding: env, Readouts: core.EvaluateState(st, nil, spec)})
	}
	rep.Elapsed = time.Since(start)
	res.Sweep = rep
	res.Elapsed = time.Since(start)
	return res, nil
}

// executeOptimize runs the server-side variational loop. The loop owns its
// template (compiled once inside core.OptimizeContext — counted here so
// the stats ledger stays truthful); its trajectory work is credited like
// any ensemble's.
func (s *Service) executeOptimize(j *job) (*Result, error) {
	start := time.Now()
	req := j.req
	backendName := j.idealBackend
	if !req.Noise.IsZero() {
		backendName = BackendTrajectory
	}
	s.setBackend(j, backendName)
	opts := req.Options
	opts.Noise = req.Noise
	s.m.templateCompiles.Inc()
	rep, err := core.OptimizeContext(j.ctx, req.Circuit, opts, *req.Optimize)
	if err != nil {
		return nil, err
	}
	if rep.Trajectories > 0 {
		s.m.trajectories.Add(int64(rep.Trajectories) * int64(rep.Evaluations))
	}
	return &Result{
		Kind: KindOptimize, Backend: backendName, NumQubits: req.Circuit.NumQubits,
		Optimize:     rep,
		Trajectories: rep.Trajectories,
		Waited:       j.started.Sub(j.submitted),
		Elapsed:      time.Since(start),
	}, nil
}
