package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"hisvsim/internal/circuit"
	"hisvsim/internal/core"
	"hisvsim/internal/noise"
	"hisvsim/internal/obs"
	"hisvsim/internal/prof"
)

// TestKernelProfileTilesSimulate is the profiler's acceptance check: on a
// single-worker ideal job the per-kernel seconds must tile the simulate
// stage within the documented 5%. The flat backend with Workers=1 makes
// the construction near-exact — every amplitude sweep inside the stage is
// bracketed by a kernel timer, and nothing runs concurrently — so the
// only unattributed time is state allocation and gate-loop bookkeeping.
// One retry absorbs scheduler flakes on loaded CI boxes.
func TestKernelProfileTilesSimulate(t *testing.T) {
	c := circuit.MustNamed("qft", 18)
	try := func() (kernel, window time.Duration, stats []prof.KernelStat, err error) {
		s := New(Config{Workers: 1})
		defer s.Close()
		id, err := s.Submit(Request{Circuit: c, Kind: KindRun,
			Readouts: core.ReadoutSpec{Shots: 16},
			Options:  core.Options{Backend: "flat", Workers: 1}})
		if err != nil {
			return 0, 0, nil, err
		}
		if _, err := s.Wait(context.Background(), id); err != nil {
			return 0, 0, nil, err
		}
		info, err := s.Job(id)
		if err != nil {
			return 0, 0, nil, err
		}
		for _, sp := range info.Trace {
			if sp.Name == stageSimulate || sp.Name == stageTrajectories {
				window += sp.Dur
			}
		}
		for _, ks := range info.Profile {
			kernel += time.Duration(ks.Seconds * float64(time.Second))
		}
		return kernel, window, info.Profile, nil
	}
	var kernel, window time.Duration
	var stats []prof.KernelStat
	for attempt := 0; ; attempt++ {
		var err error
		kernel, window, stats, err = try()
		if err != nil {
			t.Fatal(err)
		}
		diff := window - kernel
		if diff < 0 {
			diff = -diff
		}
		if diff <= window/20 {
			break
		}
		if attempt >= 1 {
			t.Fatalf("kernel seconds %v vs simulate stage %v: diff %v > 5%% (profile %+v)",
				kernel, window, diff, stats)
		}
		t.Logf("attempt %d: kernel %v vs window %v outside 5%%, retrying", attempt, kernel, window)
	}
	if len(stats) == 0 {
		t.Fatal("finished cold job has an empty kernel profile")
	}
	for _, ks := range stats {
		switch ks.Kernel {
		case "dense", "diagonal", "controlled", "kraus", "superop":
		default:
			t.Errorf("unknown kernel class %q in profile", ks.Kernel)
		}
		if ks.Calls <= 0 || ks.Seconds < 0 || ks.Amps <= 0 {
			t.Errorf("degenerate profile row %+v", ks)
		}
		if ks.Width < 1 || ks.Width > prof.MaxWidth {
			t.Errorf("profile row width %d out of range: %+v", ks.Width, ks)
		}
	}
}

// TestProfileEndpoint exercises GET /v1/jobs/{id}/profile over HTTP: the
// body nests the kernel rows under the stage trace, the derived window /
// kernel / unattributed milliseconds are mutually consistent, and the
// aggregate kernel + build-info series appear in the same scrape.
func TestProfileEndpoint(t *testing.T) {
	s := newTest(t, Config{Workers: 1})
	h := obs.InstrumentHTTP(s.Metrics(), "hisvsim_", nil, NewHandler(s))

	body := `{"circuit":{"family":"qft","qubits":10},"kind":"run","readouts":{"shots":20},"options":{"strategy":"dagp"}}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body)))
	if rec.Code != 202 {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), sub.ID); err != nil {
		t.Fatal(err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/"+sub.ID+"/profile", nil))
	if rec.Code != 200 {
		t.Fatalf("profile: %d %s", rec.Code, rec.Body.String())
	}
	var p struct {
		ID             string            `json:"id"`
		Status         string            `json:"status"`
		WallMS         float64           `json:"wall_ms"`
		WindowMS       float64           `json:"window_ms"`
		KernelMS       float64           `json:"kernel_ms"`
		UnattributedMS float64           `json:"unattributed_ms"`
		Stages         []json.RawMessage `json:"stages"`
		Kernels        []prof.KernelStat `json:"kernels"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.ID != sub.ID || p.Status != "done" {
		t.Errorf("profile header = %q/%q, want %q/done", p.ID, p.Status, sub.ID)
	}
	if len(p.Stages) == 0 || len(p.Kernels) == 0 {
		t.Fatalf("profile missing stages (%d) or kernels (%d): %s",
			len(p.Stages), len(p.Kernels), rec.Body.String())
	}
	if p.WindowMS <= 0 || p.KernelMS <= 0 || p.WallMS < p.WindowMS {
		t.Errorf("profile timings inconsistent: wall %g, window %g, kernel %g",
			p.WallMS, p.WindowMS, p.KernelMS)
	}
	if got := p.WindowMS - p.KernelMS; got-p.UnattributedMS > 1e-9 || p.UnattributedMS-got > 1e-9 {
		t.Errorf("unattributed_ms = %g, want window-kernel = %g", p.UnattributedMS, got)
	}

	// A cache-hit replay of the same circuit runs no kernels: its profile
	// must report an empty (but present, []) kernel list.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body)))
	if rec.Code != 202 {
		t.Fatalf("resubmit: %d %s", rec.Code, rec.Body.String())
	}
	var sub2 struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sub2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), sub2.ID); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/"+sub2.ID+"/profile", nil))
	if rec.Code != 200 {
		t.Fatalf("hit profile: %d %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"kernels":[]`) {
		t.Errorf("cache-hit profile should carry \"kernels\":[]: %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	out := rec.Body.String()
	for _, want := range []string{
		`hisvsim_kernel_seconds_total{kernel="`,
		`hisvsim_kernel_bytes_total{kernel="`,
		`hisvsim_build_info{version="` + Version + `"`,
		"hisvsim_go_heap_alloc_bytes",
		"hisvsim_go_goroutines",
		"hisvsim_go_gc_pause_seconds_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, grepLines(out, "hisvsim_kernel"))
		}
	}
}

// TestReadyzDrain pins the liveness/readiness split: /readyz answers 200
// until drain begins, 503 after, while /healthz stays 200 throughout (so
// orchestrators stop routing without killing the still-draining process).
func TestReadyzDrain(t *testing.T) {
	s := newTest(t, Config{Workers: 1})
	h := NewHandler(s)

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, `"ready":true`) {
		t.Fatalf("/readyz before drain: %d %s", code, body)
	}
	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, `"ready":false`) {
		t.Errorf("/readyz during drain: %d %s, want 503 not-ready", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz during drain: %d, want 200 (liveness is not readiness)", code)
	}
}

// TestCloseReclaimsGoroutines asserts the worker pool, trajectory workers
// and waiter plumbing all exit on Close: after running ideal and noisy
// jobs through a multi-worker service, the goroutine count settles back
// to its pre-service baseline.
func TestCloseReclaimsGoroutines(t *testing.T) {
	// Let goroutines from earlier tests in the package finish first.
	settle := func(target int) int {
		n := runtime.NumGoroutine()
		for i := 0; i < 100 && n > target; i++ {
			time.Sleep(10 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		return n
	}
	before := settle(0)

	s := New(Config{Workers: 4})
	c := circuit.MustNamed("ising", 8)
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		req := Request{Circuit: c, Kind: KindRun,
			Readouts: core.ReadoutSpec{Shots: 50, Seed: int64(i)}}
		if i%2 == 1 {
			req.Noise = noise.Global(noise.Depolarizing(0.02))
			req.Readouts.Trajectories = 8
		}
		id, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, err := s.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	if got := runtime.NumGoroutine(); got <= before {
		t.Logf("running service shows %d goroutines vs baseline %d (pool may be idle)", got, before)
	}
	s.Close()

	// +2 of slack tolerates runtime-internal goroutines (GC workers,
	// timer scavenger) that start lazily and never exit.
	after := settle(before + 2)
	if after > before+2 {
		t.Errorf("goroutines after Close = %d, baseline was %d: worker or waiter leak", after, before)
	}
}
