package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hisvsim/internal/circuit"
	"hisvsim/internal/core"
	"hisvsim/internal/obs"
)

// TestJobTraceTiles verifies the tracer end to end: a finished job's
// stage spans start with queue_wait, include an execution stage, and sum
// to the job's wall time (the tiling invariant the /trace acceptance
// check leans on; 5% is the documented tolerance, the construction is
// exact).
func TestJobTraceTiles(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	c := circuit.MustNamed("cat_state", 6)
	id, err := s.Submit(Request{Circuit: c, Kind: KindSample, Shots: 100, Options: core.Options{Strategy: "dagp"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	info, err := s.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Trace) < 2 {
		t.Fatalf("trace has %d spans, want at least queue_wait + an execution stage: %v", len(info.Trace), info.Trace)
	}
	if info.Trace[0].Name != stageQueueWait {
		t.Errorf("first stage = %q, want %q", info.Trace[0].Name, stageQueueWait)
	}
	var sum time.Duration
	seen := map[string]bool{}
	for _, sp := range info.Trace {
		if sp.Dur < 0 {
			t.Errorf("stage %q has negative duration %v", sp.Name, sp.Dur)
		}
		sum += sp.Dur
		seen[sp.Name] = true
	}
	if !seen[stageSimulate] {
		t.Errorf("cold job trace %v has no %q stage", info.Trace, stageSimulate)
	}
	if !seen[stageSample] {
		t.Errorf("job trace %v has no %q stage", info.Trace, stageSample)
	}
	wall := info.Finished.Sub(info.Submitted)
	diff := sum - wall
	if diff < 0 {
		diff = -diff
	}
	if diff > wall/20 {
		t.Errorf("stage durations sum to %v, wall is %v (diff %v > 5%%)", sum, wall, diff)
	}
	if info.Result == nil || len(info.Result.Stages) != len(info.Trace) {
		t.Errorf("Result.Stages not attached: %+v", info.Result)
	}
	if info.RequestID == "" {
		t.Error("job has no request ID")
	}
}

// TestStatsFromRegistry pins the Stats() rebase: the JSON-visible
// aggregates must equal the labeled registry series summed back together,
// with the same semantics the ad-hoc counters had.
func TestStatsFromRegistry(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	c := circuit.MustNamed("cat_state", 5)
	opts := core.Options{Strategy: "dagp"}
	// Two sample jobs (one miss + one hit) through a deprecated shim kind,
	// and one v2 run job sharing the same cache entry.
	for i := 0; i < 2; i++ {
		if _, err := s.Do(context.Background(), Request{Circuit: c, Kind: KindSample, Shots: 10, Seed: int64(i), Options: opts}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Do(context.Background(), Request{Circuit: c, Kind: KindRun,
		Readouts: core.ReadoutSpec{Shots: 10}, Options: opts}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Submitted != 3 || st.Completed != 3 || st.Failed != 0 || st.Canceled != 0 {
		t.Errorf("job counts = %d/%d/%d/%d, want 3/3/0/0", st.Submitted, st.Completed, st.Failed, st.Canceled)
	}
	if st.Simulations != 1 {
		t.Errorf("simulations = %d, want 1 (two jobs share the cache entry)", st.Simulations)
	}
	if st.CacheHits != 2 || st.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 2/1", st.CacheHits, st.CacheMisses)
	}
	if st.ShimHits != 2 {
		t.Errorf("shim hits = %d, want 2 (the two deprecated-kind submits)", st.ShimHits)
	}
	if st.Backends["hier"] != 3 {
		t.Errorf("backends = %v, want hier:3", st.Backends)
	}

	// The exposition must carry the same numbers as labeled series.
	var sb strings.Builder
	if err := s.Metrics().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`hisvsim_jobs_submitted_total{kind="sample"} 2`,
		`hisvsim_jobs_submitted_total{kind="run"} 1`,
		`hisvsim_jobs_finished_total{kind="sample",status="done"} 2`,
		`hisvsim_cache_hits_total{cache="state"} 2`,
		`hisvsim_cache_misses_total{cache="state"} 1`,
		`hisvsim_shim_hits_total{kind="sample"} 2`,
		`hisvsim_backend_jobs_total{backend="hier"} 3`,
		`hisvsim_simulations_total 1`,
		`hisvsim_queue_depth 0`,
		`hisvsim_workers 2`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("metrics missing %q", line)
		}
	}
	// Stage histograms observed at least one queue_wait per job.
	if !strings.Contains(out, `hisvsim_stage_duration_seconds_count{stage="queue_wait",kind="sample",backend="hier"} 2`) {
		t.Errorf("metrics missing sample queue_wait stage count:\n%s", grepLines(out, "stage_duration_seconds_count"))
	}
}

// grepLines returns the exposition lines containing substr (test failure
// context without dumping the whole scrape).
func grepLines(out, substr string) string {
	var b strings.Builder
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, substr) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestMetricsAndTraceEndpoints exercises the HTTP surface: GET /metrics
// serves the Prometheus content type, and GET /v1/jobs/{id}/trace returns
// stages that sum to the reported wall time. The submit flows through
// obs.InstrumentHTTP so the caller's X-Request-ID reaches the job.
func TestMetricsAndTraceEndpoints(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	h := obs.InstrumentHTTP(s.Metrics(), "hisvsim_", nil, NewHandler(s))

	body := `{"circuit":{"family":"cat_state","qubits":5},"kind":"run","readouts":{"shots":50},"options":{"strategy":"dagp"}}`
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
	req.Header.Set("X-Request-ID", "rid-test-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 202 {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Request-ID"); got != "rid-test-42" {
		t.Errorf("X-Request-ID echoed as %q, want the incoming ID", got)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), sub.ID); err != nil {
		t.Fatal(err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/"+sub.ID+"/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("trace: %d %s", rec.Code, rec.Body.String())
	}
	var tr struct {
		ID        string  `json:"id"`
		Status    string  `json:"status"`
		RequestID string  `json:"request_id"`
		WallMS    float64 `json:"wall_ms"`
		Stages    []struct {
			Stage      string  `json:"stage"`
			StartMS    float64 `json:"start_ms"`
			DurationMS float64 `json:"duration_ms"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.RequestID != "rid-test-42" {
		t.Errorf("trace request_id = %q, want the submit's X-Request-ID", tr.RequestID)
	}
	if len(tr.Stages) == 0 || tr.Stages[0].Stage != stageQueueWait {
		t.Fatalf("trace stages = %+v, want queue_wait first", tr.Stages)
	}
	var sum float64
	for _, sp := range tr.Stages {
		sum += sp.DurationMS
	}
	if diff := sum - tr.WallMS; diff > tr.WallMS/20 || diff < -tr.WallMS/20 {
		t.Errorf("stage ms sum %g vs wall %g: outside 5%%", sum, tr.WallMS)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		`hisvsim_jobs_submitted_total{kind="run"} 1`,
		`hisvsim_http_requests_total{route="POST /v1/jobs",code="202"} 1`,
		"hisvsim_http_request_duration_seconds_bucket",
		"hisvsim_workers_busy 0",
		"hisvsim_cache_resident_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestCacheGaugesTrackResidency pins the byte/entry gauges against the
// LRU's own ledger under churn: a small budget forces evictions, and the
// state+rho gauges must still sum to exactly the cache's Size()/Len().
func TestCacheGaugesTrackResidency(t *testing.T) {
	// A 14-qubit state entry costs ~394 KiB ((16+8)·2^14 + 1 KiB), so a
	// 1 MiB budget holds two entries and the third insert evicts.
	s := New(Config{Workers: 1, CacheBytes: 1 << 20})
	defer s.Close()
	for _, fam := range []string{"qft", "bv", "cat_state"} {
		c := circuit.MustNamed(fam, 14)
		if _, err := s.Do(context.Background(), Request{Circuit: c, Kind: KindSample, Shots: 4, Options: core.Options{Strategy: "dagp"}}); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	wantBytes, wantLen := s.cache.Size(), s.cache.Len()
	s.mu.Unlock()
	gotBytes := s.m.cacheBytes.With(cacheState).Value() + s.m.cacheBytes.With(cacheRho).Value()
	gotLen := s.m.cacheEntries.With(cacheState).Value() + s.m.cacheEntries.With(cacheRho).Value()
	if int64(gotBytes) != wantBytes {
		t.Errorf("resident-bytes gauge = %g, cache says %d", gotBytes, wantBytes)
	}
	if int(gotLen) != wantLen {
		t.Errorf("entries gauge = %g, cache says %d", gotLen, wantLen)
	}
	if ev := s.m.cacheEvictions.With(cacheState).Value(); ev == 0 {
		t.Error("expected at least one state-cache eviction under the 1 MiB budget")
	}
}

// TestStatsJSONShape guards the /v1/stats byte-compatibility promise: the
// registry rebase must not change the serialized field set.
func TestStatsJSONShape(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	b, err := json.Marshal(s.Stats())
	if err != nil {
		t.Fatal(err)
	}
	want := `{"submitted":0,"completed":0,"failed":0,"canceled":0,"simulations":0,` +
		`"trajectories":0,"cache_hits":0,"cache_misses":0,"template_compiles":0,` +
		`"shim_hits":0,"cache_entries":0,"cache_bytes":0,"plan_cache_entries":0,` +
		`"plan_cache_bytes":0,"queue_length":0,"workers":1}`
	if string(b) != want {
		t.Errorf("stats JSON drifted:\n got %s\nwant %s", b, want)
	}
}

// TestTraceNotInResultJSON guards the v1 wire format: the stage trace is
// served only by /v1/jobs/{id}/trace, never inlined into result bodies.
func TestTraceNotInResultJSON(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	c := circuit.MustNamed("cat_state", 4)
	id, err := s.Submit(Request{Circuit: c, Kind: KindSample, Shots: 5, Options: core.Options{Strategy: "dagp"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	info, err := s.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(toWireJob(info))
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"stages", "trace", "request_id"} {
		if strings.Contains(string(b), fmt.Sprintf("%q", field)) {
			t.Errorf("job JSON leaks %q: %s", field, b)
		}
	}
}
