package service

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestHTTPQueueFullRetryAfter: admission-control 429s carry a
// Retry-After header so cluster coordinators (and polite clients) know
// when to come back instead of hammering the queue.
func TestHTTPQueueFullRetryAfter(t *testing.T) {
	// Cache disabled so repeat submissions re-simulate instead of
	// draining the queue instantly.
	s := New(Config{Workers: 1, QueueDepth: 1, CacheBytes: -1})
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() { srv.Close(); s.Close() })

	// Saturate the single worker and the one queue slot with slow jobs.
	blocker := `{
		"circuit": {"family": "qft", "qubits": 16},
		"kind": "statevector",
		"options": {"strategy": "dagp", "lm": 8}
	}`
	var sawFull bool
	for i := 0; i < 8 && !sawFull; i++ {
		resp, body := postJSON(t, srv.URL+"/v1/jobs", blocker)
		switch resp.StatusCode {
		case http.StatusAccepted:
			continue
		case http.StatusTooManyRequests:
			sawFull = true
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Fatalf("429 without Retry-After header: %v", body)
			}
		default:
			t.Fatalf("submit %d: status %d: %v", i, resp.StatusCode, body)
		}
	}
	if !sawFull {
		t.Fatal("queue never filled; backpressure path untested")
	}
}

// TestHTTPMomentsWireBlock: sub-range ensemble requests asking for
// moments get the raw per-chunk partial sums on the wire — the payload a
// coordinator folds into the merged mean ± stderr.
func TestHTTPMomentsWireBlock(t *testing.T) {
	_, srv := newHTTPTest(t)
	resp, body := postJSON(t, srv.URL+"/v1/jobs", `{
		"circuit": {"family": "ising", "qubits": 4},
		"kind": "run",
		"noise": {"rules": [{"channel": "depolarizing", "p": 0.02}]},
		"readouts": {
			"seed": 3, "trajectories": 64, "traj_offset": 32, "traj_total": 128,
			"moments": true,
			"observables": [{"paulis": "ZZ", "qubits": [0, 1]}]
		}
	}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, body)
	}
	id := body["id"].(string)
	resp, job := getJSON(t, srv.URL+"/v1/jobs/"+id+"/result?wait=30s")
	if resp.StatusCode != http.StatusOK || job["status"] != "done" {
		t.Fatalf("job ended status=%d %v err=%v", resp.StatusCode, job["status"], job["error"])
	}
	result := job["result"].(map[string]any)
	if got := result["trajectories"]; got != float64(64) {
		t.Fatalf("sub-range ran %v trajectories, want 64", got)
	}
	moments, ok := result["moments"].(map[string]any)
	if !ok {
		t.Fatalf("result has no moments block: %v", result)
	}
	if cs := moments["chunk_size"]; cs != float64(32) {
		t.Fatalf("chunk_size = %v, want 32", cs)
	}
	chunks, ok := moments["chunks"].([]any)
	if !ok || len(chunks) != 2 {
		t.Fatalf("64 trajectories should serialize as 2 chunks, got %v", moments["chunks"])
	}
	first := chunks[0].(map[string]any)
	// Chunks are globally indexed: offset 32 starts at chunk 1.
	if first["chunk"] != float64(1) || first["count"] != float64(32) {
		t.Fatalf("first chunk header = %v, want chunk 1 count 32", first)
	}
	obs, ok := first["obs"].([]any)
	if !ok || len(obs) != 1 {
		t.Fatalf("chunk carries %v observable sums, want 1", first["obs"])
	}
}

// TestHTTPSweepRejectsTrajRange: sweeps are split by binding ranges, not
// trajectory ranges — requests mixing the two are rejected at submit.
func TestHTTPSweepRejectsTrajRange(t *testing.T) {
	_, srv := newHTTPTest(t)
	resp, body := postJSON(t, srv.URL+"/v1/jobs", `{
		"circuit": {"family": "qft", "qubits": 4},
		"kind": "sweep",
		"noise": {"rules": [{"channel": "depolarizing", "p": 0.01}]},
		"readouts": {"trajectories": 32, "traj_offset": 32, "traj_total": 64},
		"sweep": {"grid": {"theta": [0.1, 0.2]}}
	}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sweep with traj_offset got %d, want 400: %v", resp.StatusCode, body)
	}
}
