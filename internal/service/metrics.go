package service

import (
	"strings"
	"sync"

	"hisvsim/internal/obs"
	"hisvsim/internal/prof"
)

// Version identifies the service build in hisvsim_build_info and log lines.
// It tracks the repo's PR sequence rather than a release tag.
const Version = "0.9.0"

// This file is the service's metrics surface: every counter the old
// ad-hoc Stats bookkeeping tracked now lives in one obs.Registry (the
// single source of truth — Stats() is a read-only projection of it), plus
// the telemetry the scale-out work needs: per-stage latency histograms
// labeled by job kind and backend, queue depth, worker utilization, and
// per-cache hit/miss/eviction/residency series for all three
// content-addressed caches.

// Cache label values. The plan/state LRU holds both simulated states
// ("state") and evolved density matrices ("rho", keyed dm|…); compiled
// trajectory plans and fused templates share the dedicated plan LRU
// ("plan").
const (
	cacheState = "state"
	cachePlan  = "plan"
	cacheRho   = "rho"
)

// Stage names, in the order a fully instrumented job passes through them.
// Every job's spans tile submitted→finished, so per-stage histogram sums
// are also a worker-utilization ledger.
const (
	stageQueueWait    = "queue_wait"   // submitted → picked up by a worker
	stageCompile      = "compile"      // trajectory-plan / template fusion compile
	stageSpecialize   = "specialize"   // re-binding a compiled template's touched blocks
	stageExecute      = "execute"      // cache lookup + (on miss) the stages below
	stageSimulate     = "simulate"     // ideal simulation inside core (cache miss)
	stageTrajectories = "trajectories" // trajectory-ensemble sweep (noise engine)
	stageSample       = "sample"       // readout derivation: sampling, marginals, observables
)

// serviceMetrics bundles the service's instruments. Hot-path children
// (per-kind, per-cache) are resolved once here, not per job.
type serviceMetrics struct {
	reg *obs.Registry

	jobsSubmitted *obs.CounterVec   // {kind}
	jobsFinished  *obs.CounterVec   // {kind, status}
	stageSeconds  *obs.HistogramVec // {stage, kind, backend}

	workersBusy      *obs.Gauge
	simulations      *obs.Counter
	trajectories     *obs.Counter
	templateCompiles *obs.Counter
	shimHits         *obs.CounterVec // {kind}
	backendJobs      *obs.CounterVec // {backend}

	cacheHits      *obs.CounterVec // {cache}
	cacheMisses    *obs.CounterVec // {cache}
	cacheEvictions *obs.CounterVec // {cache}
	cacheBytes     *obs.GaugeVec   // {cache}
	cacheEntries   *obs.GaugeVec   // {cache}

	kernelSeconds *obs.FloatCounterVec // {kernel, width}
	kernelBytes   *obs.CounterVec      // {kernel, width}

	// stageTimers caches resolved stage-histogram children per (stage, kind,
	// backend), so the per-job flush in finish() touches no registry locks on
	// the steady-state path. The obs lookup itself is allocation-free; this
	// cache removes the per-label trie walk as well.
	stageMu     sync.RWMutex
	stageTimers map[stageKey]*obs.Histogram
}

// stageKey addresses one cached stage-duration histogram child.
type stageKey struct{ stage, kind, backend string }

// stageObserve records one stage duration through the handle cache.
func (m *serviceMetrics) stageObserve(stage, kind, backend string, seconds float64) {
	k := stageKey{stage, kind, backend}
	m.stageMu.RLock()
	h := m.stageTimers[k]
	m.stageMu.RUnlock()
	if h == nil {
		h = m.stageSeconds.With(stage, kind, backend)
		m.stageMu.Lock()
		m.stageTimers[k] = h
		m.stageMu.Unlock()
	}
	h.Observe(seconds)
}

// flushProfile folds one finished job's kernel profile into the aggregate
// per-kernel registry series.
func (m *serviceMetrics) flushProfile(stats []prof.KernelStat) {
	for _, ks := range stats {
		w := prof.WidthLabel(ks.Width)
		m.kernelSeconds.With(ks.Kernel, w).Add(ks.Seconds)
		m.kernelBytes.With(ks.Kernel, w).Add(ks.Bytes)
	}
}

func newServiceMetrics(reg *obs.Registry) *serviceMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &serviceMetrics{reg: reg, stageTimers: map[stageKey]*obs.Histogram{}}
	obs.RegisterBuildInfo(reg, Version)
	obs.RegisterRuntimeMetrics(reg)
	m.jobsSubmitted = reg.CounterVec("hisvsim_jobs_submitted_total",
		"Accepted job submissions by request kind.", "kind")
	m.jobsFinished = reg.CounterVec("hisvsim_jobs_finished_total",
		"Terminal jobs by request kind and final status (done, failed, canceled).", "kind", "status")
	m.stageSeconds = reg.HistogramVec("hisvsim_stage_duration_seconds",
		"Per-job stage latency by stage, request kind and executing backend. Stages tile the submitted-to-finished window.",
		obs.DurationBuckets(), "stage", "kind", "backend")
	m.workersBusy = reg.Gauge("hisvsim_workers_busy",
		"Worker-pool slots currently executing a job.")
	m.simulations = reg.Counter("hisvsim_simulations_total",
		"Actual simulations executed (cache misses that ran an engine).")
	m.trajectories = reg.Counter("hisvsim_trajectories_total",
		"Stochastic trajectories executed across all noisy ensembles.")
	m.templateCompiles = reg.Counter("hisvsim_template_compiles_total",
		"Parameterized-template fusion compiles (the sweep amortization ledger).")
	m.shimHits = reg.CounterVec("hisvsim_shim_hits_total",
		"Submissions through the deprecated v1 kinds, by kind.", "kind")
	m.backendJobs = reg.CounterVec("hisvsim_backend_jobs_total",
		"Executed jobs per engine (registry names plus \"trajectory\").", "backend")
	m.cacheHits = reg.CounterVec("hisvsim_cache_hits_total",
		"Content-addressed cache hits by cache (state, plan, rho).", "cache")
	m.cacheMisses = reg.CounterVec("hisvsim_cache_misses_total",
		"Content-addressed cache misses by cache (state, plan, rho).", "cache")
	m.cacheEvictions = reg.CounterVec("hisvsim_cache_evictions_total",
		"LRU evictions by cache (state, plan, rho).", "cache")
	m.cacheBytes = reg.GaugeVec("hisvsim_cache_resident_bytes",
		"Resident bytes per cache (state, plan, rho).", "cache")
	m.cacheEntries = reg.GaugeVec("hisvsim_cache_entries",
		"Resident entries per cache (state, plan, rho).", "cache")
	m.kernelSeconds = reg.FloatCounterVec("hisvsim_kernel_seconds_total",
		"Kernel-attributed execution seconds by kernel class (dense, diagonal, controlled, kraus, superop) and block width in qubits.",
		"kernel", "width")
	m.kernelBytes = reg.CounterVec("hisvsim_kernel_bytes_total",
		"Estimated amplitude bytes moved per kernel class and block width (the per-job profile's traffic model, aggregated).",
		"kernel", "width")
	return m
}

// attach wires the service-shaped callback gauges and the LRU eviction
// hooks. Called once from New, after the caches exist.
func (m *serviceMetrics) attach(s *Service) {
	m.reg.GaugeFunc("hisvsim_queue_depth",
		"Jobs queued but not yet picked up by a worker.",
		func() float64 { return float64(len(s.queue)) })
	m.reg.Gauge("hisvsim_workers", "Configured worker-pool size.").Set(float64(s.cfg.Workers))
	// Evictions fire from inside lru.Put under s.mu; the hooks only touch
	// atomics, so no lock-order risk. Replacing an existing key counts as
	// an eviction of the old value (single-flighted misses make genuine
	// replacement rare).
	s.cache.Evicted = func(key string, _ any, cost int64) {
		name := mainCacheName(key)
		m.cacheEvictions.With(name).Inc()
		m.cacheBytes.With(name).Add(float64(-cost))
		m.cacheEntries.With(name).Add(-1)
	}
	s.planCache.Evicted = func(_ string, _ any, cost int64) {
		m.cacheEvictions.With(cachePlan).Inc()
		m.cacheBytes.With(cachePlan).Add(float64(-cost))
		m.cacheEntries.With(cachePlan).Add(-1)
	}
}

// cachePut records a successful insertion's residency.
func (m *serviceMetrics) cachePut(name string, cost int64) {
	m.cacheBytes.With(name).Add(float64(cost))
	m.cacheEntries.With(name).Add(1)
}

// mainCacheName maps a plan/state-cache key onto its logical cache label:
// density matrices are keyed dm|…, everything else is a simulated state.
func mainCacheName(key string) string {
	if strings.HasPrefix(key, "dm|") {
		return cacheRho
	}
	return cacheState
}
