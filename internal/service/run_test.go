package service

import (
	"context"
	"math"
	"testing"

	"hisvsim/internal/circuit"
	"hisvsim/internal/core"
	"hisvsim/internal/noise"
)

// TestRunKindOneSimulationManyReadouts is the acceptance criterion: one
// KindRun request with shots + ≥2 Pauli observables + marginals performs
// exactly ONE simulation, asserted via the service `simulations` stat.
func TestRunKindOneSimulationManyReadouts(t *testing.T) {
	s := newTest(t, Config{Workers: 2})
	c := circuit.MustNamed("ising", 8)
	res, err := s.Do(context.Background(), Request{
		Circuit: c, Kind: KindRun,
		Readouts: core.ReadoutSpec{
			Shots: 500, Seed: 7,
			Marginals: [][]int{{0, 1}, {4}},
			Observables: []core.Observable{
				{Name: "zz01", Coeff: -1, Paulis: "ZZ", Qubits: []int{0, 1}},
				{Name: "x2", Coeff: 0.5, Paulis: "X", Qubits: []int{2}},
				{Name: "y3", Paulis: "Y", Qubits: []int{3}},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Simulations != 1 {
		t.Fatalf("simulations = %d, want exactly 1 for a multi-readout request", st.Simulations)
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != 500 {
		t.Errorf("counts sum to %d, want 500", total)
	}
	if len(res.Marginals) != 2 || len(res.Marginals[0]) != 4 || len(res.Marginals[1]) != 2 {
		t.Errorf("marginals shape wrong: %v", res.Marginals)
	}
	if len(res.Observables) != 3 || res.Observables[0].Name != "zz01" {
		t.Fatalf("observables: %+v", res.Observables)
	}
	if res.Backend != "hier" {
		t.Errorf("backend = %q, want hier (default single-node)", res.Backend)
	}

	// The read-outs agree with the individually-computed legacy kinds
	// (which must ALSO not re-simulate: same circuit, same cache entry).
	exp, err := s.Do(context.Background(), Request{Circuit: c, Kind: KindExpectation, Qubits: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Observables[0].Value, -exp.Expectation; math.Abs(got-want) > 1e-12 {
		t.Errorf("zz01 = %v, legacy expectation (negated) = %v", got, want)
	}
	prob, err := s.Do(context.Background(), Request{Circuit: c, Kind: KindProbabilities, Qubits: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range prob.Probabilities {
		if math.Abs(prob.Probabilities[i]-res.Marginals[0][i]) > 1e-12 {
			t.Errorf("marginal[0][%d] differs from legacy probabilities", i)
		}
	}
	sam, err := s.Do(context.Background(), Request{Circuit: c, Kind: KindSample, Shots: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(sam.Samples) != len(res.Samples) {
		t.Fatalf("legacy sample drew %d, run drew %d", len(sam.Samples), len(res.Samples))
	}
	for i := range sam.Samples {
		if sam.Samples[i] != res.Samples[i] {
			t.Fatalf("sample %d: legacy %d, run %d (same seed must draw identically)", i, sam.Samples[i], res.Samples[i])
		}
	}
	if st := s.Stats(); st.Simulations != 1 {
		t.Fatalf("legacy shims re-simulated: %d simulations", st.Simulations)
	}
}

// TestRunKindNoisyMultiReadout: one noisy KindRun aggregates counts,
// marginals and observables over one trajectory ensemble.
func TestRunKindNoisyMultiReadout(t *testing.T) {
	s := newTest(t, Config{Workers: 2})
	c := circuit.MustNamed("ising", 6)
	model := noise.Global(noise.Depolarizing(0.02))
	res, err := s.Do(context.Background(), Request{
		Circuit: c, Kind: KindRun, Noise: model,
		Readouts: core.ReadoutSpec{
			Shots: 300, Seed: 9, Trajectories: 24,
			Marginals: [][]int{{0}},
			Observables: []core.Observable{
				{Name: "z0", Paulis: "Z", Qubits: []int{0}},
				{Name: "x1", Paulis: "X", Qubits: []int{1}},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != BackendTrajectory {
		t.Errorf("backend = %q, want %q", res.Backend, BackendTrajectory)
	}
	if res.Trajectories != 24 {
		t.Errorf("trajectories = %d, want 24", res.Trajectories)
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != 300 {
		t.Errorf("noisy counts sum to %d, want 300", total)
	}
	if len(res.Observables) != 2 {
		t.Fatalf("observables: %+v", res.Observables)
	}
	sum := 0.0
	for _, p := range res.Marginals[0] {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("trajectory-mean marginal sums to %v", sum)
	}
	if st := s.Stats(); st.Simulations != 0 {
		t.Errorf("noisy ensemble ran %d ideal simulations", st.Simulations)
	}
	// The marginal mean and the Z observable describe the same qubit:
	// ⟨Z0⟩ = p(0) − p(1).
	if got, want := res.Observables[0].Value, res.Marginals[0][0]-res.Marginals[0][1]; math.Abs(got-want) > 1e-9 {
		t.Errorf("⟨Z0⟩ = %v but marginal gives %v", got, want)
	}
}

// TestBackendSelectionPerRequest: explicit backends execute and are keyed
// separately in the cache and stats.
func TestBackendSelectionPerRequest(t *testing.T) {
	s := newTest(t, Config{Workers: 2})
	c := circuit.MustNamed("qft", 6)
	spec := core.ReadoutSpec{Observables: []core.Observable{{Paulis: "XY", Qubits: []int{0, 3}}}}
	var vals []float64
	for _, b := range []string{"flat", "hier", "baseline"} {
		res, err := s.Do(context.Background(), Request{
			Circuit: c, Kind: KindRun, Readouts: spec,
			Options: core.Options{Backend: b},
		})
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if res.Backend != b {
			t.Errorf("backend = %q, want %q", res.Backend, b)
		}
		vals = append(vals, res.Observables[0].Value)
	}
	for i := 1; i < len(vals); i++ {
		if math.Abs(vals[i]-vals[0]) > 1e-9 {
			t.Errorf("backend %d disagrees: %v vs %v", i, vals[i], vals[0])
		}
	}
	st := s.Stats()
	if st.Simulations != 3 {
		t.Errorf("3 distinct backends should be 3 cache misses, got %d simulations", st.Simulations)
	}
	for _, b := range []string{"flat", "hier", "baseline"} {
		if st.Backends[b] != 1 {
			t.Errorf("stats.Backends[%q] = %d, want 1", b, st.Backends[b])
		}
	}

	// Unknown backends are rejected at submit.
	if _, err := s.Submit(Request{Circuit: c, Kind: KindRun, Readouts: spec,
		Options: core.Options{Backend: "warp-drive"}}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestJobInfoReportsBackend: the snapshot carries the executing engine.
func TestJobInfoReportsBackend(t *testing.T) {
	s := newTest(t, Config{Workers: 1})
	c := circuit.MustNamed("bv", 5)
	id, err := s.Submit(Request{Circuit: c, Kind: KindStatevector, Options: core.Options{Backend: "flat"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	info, err := s.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Backend != "flat" {
		t.Errorf("JobInfo.Backend = %q, want flat", info.Backend)
	}
	if info.Result.Backend != "flat" {
		t.Errorf("Result.Backend = %q, want flat", info.Result.Backend)
	}
}

// TestPlanCacheSurvivesStateCachePressure is the eviction satellite: a
// tiny state-cache budget thrashed by big statevector entries must not
// evict compiled trajectory plans, which live in their own LRU.
func TestPlanCacheSurvivesStateCachePressure(t *testing.T) {
	// State cache fits ~one 10-qubit entry; plan cache default (16 MiB).
	s := newTest(t, Config{Workers: 1, CacheBytes: 40 << 10})
	model := noise.Global(noise.Depolarizing(0.01))
	noisy := circuit.MustNamed("ising", 6)

	// Compile (and cache) the trajectory plan.
	if _, err := s.Do(context.Background(), Request{
		Circuit: noisy, Kind: KindNoisySample, Noise: model, Shots: 50, Trajectories: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.PlanCacheEntries != 1 {
		t.Fatalf("plan cache entries = %d, want 1", st.PlanCacheEntries)
	}

	// Thrash the state cache with statevector jobs of distinct circuits.
	for _, fam := range []string{"qft", "bv", "cat_state", "grover"} {
		if _, err := s.Do(context.Background(), Request{
			Circuit: circuit.MustNamed(fam, 10), Kind: KindStatevector,
		}); err != nil {
			t.Fatal(err)
		}
	}

	st := s.Stats()
	if st.PlanCacheEntries != 1 {
		t.Fatalf("state-cache pressure evicted the trajectory plan (entries = %d)", st.PlanCacheEntries)
	}
	misses := st.CacheMisses
	if _, err := s.Do(context.Background(), Request{
		Circuit: noisy, Kind: KindNoisySample, Noise: model, Shots: 50, Trajectories: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().CacheMisses; got != misses {
		t.Errorf("repeat noisy job missed the plan cache (misses %d → %d)", misses, got)
	}
}

// TestRunKindValidation covers the new submit-time rejections.
func TestRunKindValidation(t *testing.T) {
	s := newTest(t, Config{Workers: 1, MaxShots: 100, MaxTrajectories: 50})
	c := circuit.MustNamed("bv", 5)
	model := noise.Global(noise.Depolarizing(0.01))
	obs := []core.Observable{{Paulis: "X", Qubits: []int{0}}}
	bad := []Request{
		{Circuit: c, Kind: KindRun}, // empty spec
		{Circuit: c, Kind: KindRun, Readouts: core.ReadoutSpec{Shots: 101}},
		{Circuit: c, Kind: KindRun, Noise: model,
			Readouts: core.ReadoutSpec{Observables: obs, Trajectories: 51}},
		{Circuit: c, Kind: KindRun, Noise: model, Readouts: core.ReadoutSpec{Statevector: true}},
		{Circuit: c, Kind: KindRun,
			Readouts: core.ReadoutSpec{Observables: []core.Observable{{Paulis: "XX", Qubits: []int{0, 0}}}}},
		{Circuit: c, Kind: KindSample, Shots: 10,
			Readouts: core.ReadoutSpec{Shots: 5}}, // spec on a legacy kind
		{Circuit: c, Kind: KindRun, Shots: 10, // legacy field on the v2 kind
			Readouts: core.ReadoutSpec{Observables: obs}},
		{Circuit: c, Kind: KindRun, Readouts: core.ReadoutSpec{Observables: obs},
			Options: core.Options{Backend: "flat", Ranks: 4}}, // capability mismatch
	}
	for i, req := range bad {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
	// A valid KindRun under the caps still works.
	if _, err := s.Do(context.Background(), Request{
		Circuit: c, Kind: KindRun,
		Readouts: core.ReadoutSpec{Shots: 100, Observables: obs},
	}); err != nil {
		t.Errorf("valid KindRun rejected: %v", err)
	}
}

// TestLegacyNoisyShimBitCompatible: the deprecated noisy kinds, now shims
// over the unified path, must reproduce their pre-v2 outputs exactly —
// same seeds, same counts, same expectation arithmetic.
func TestLegacyNoisyShimBitCompatible(t *testing.T) {
	s := newTest(t, Config{Workers: 2})
	c := circuit.MustNamed("ising", 6)
	model := noise.Global(noise.PhaseFlip(0.03))

	// The legacy kind and an equivalent KindRun must agree bit-for-bit:
	// both replay the same per-trajectory RNG streams.
	exp, err := s.Do(context.Background(), Request{
		Circuit: c, Kind: KindNoisyExpectation, Noise: model,
		Qubits: []int{0, 2}, Trajectories: 16, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := s.Do(context.Background(), Request{
		Circuit: c, Kind: KindRun, Noise: model,
		Readouts: core.ReadoutSpec{
			Observables:  []core.Observable{{Paulis: "ZZ", Qubits: []int{0, 2}}},
			Trajectories: 16, Seed: 5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Expectation != run.Observables[0].Value {
		t.Errorf("legacy %v != run %v (must be bit-identical)", exp.Expectation, run.Observables[0].Value)
	}
	if exp.StdErr != run.Observables[0].StdErr {
		t.Errorf("stderr: legacy %v != run %v", exp.StdErr, run.Observables[0].StdErr)
	}
}
