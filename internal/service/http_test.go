package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hisvsim/internal/circuit"
	"hisvsim/internal/qasm"
)

func newHTTPTest(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 2})
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() { srv.Close(); s.Close() })
	return s, srv
}

func postJSON(t *testing.T, url string, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("bad JSON body: %v", err)
	}
	return m
}

func TestHTTPSubmitPollResult(t *testing.T) {
	_, srv := newHTTPTest(t)
	resp, body := postJSON(t, srv.URL+"/v1/jobs", `{
		"circuit": {"family": "qft", "qubits": 8},
		"kind": "sample", "shots": 64, "seed": 5,
		"options": {"strategy": "dagp", "lm": 5}
	}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", body)
	}

	// Long-poll the result.
	resp, body = getJSON(t, srv.URL+"/v1/jobs/"+id+"/result?wait=30s")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %v", resp.StatusCode, body)
	}
	if body["status"] != "done" {
		t.Fatalf("status = %v", body["status"])
	}
	result := body["result"].(map[string]any)
	counts := result["counts"].(map[string]any)
	total := 0.0
	for bits, n := range counts {
		if len(bits) != 8 || strings.Trim(bits, "01") != "" {
			t.Fatalf("counts key %q is not an 8-bit string", bits)
		}
		total += n.(float64)
	}
	if total != 64 {
		t.Fatalf("counts sum to %v", total)
	}

	// Plain poll agrees.
	resp, body = getJSON(t, srv.URL+"/v1/jobs/"+id)
	if resp.StatusCode != http.StatusOK || body["status"] != "done" {
		t.Fatalf("poll: %d %v", resp.StatusCode, body)
	}
}

func TestHTTPQASMCircuitAndExpectation(t *testing.T) {
	_, srv := newHTTPTest(t)
	src := qasm.Write(circuit.MustNamed("bv", 6))
	payload, _ := json.Marshal(map[string]any{
		"circuit": map[string]string{"qasm": src},
		"kind":    "expectation",
		"qubits":  []int{0, 1},
	})
	resp, body := postJSON(t, srv.URL+"/v1/jobs", string(payload))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, body)
	}
	id := body["id"].(string)
	resp, body = getJSON(t, srv.URL+"/v1/jobs/"+id+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %v", resp.StatusCode, body)
	}
	result := body["result"].(map[string]any)
	if _, ok := result["expectation"].(float64); !ok {
		t.Fatalf("no expectation in %v", result)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, srv := newHTTPTest(t)
	cases := []string{
		`{not json`,
		`{"kind": "sample"}`, // no circuit
		`{"circuit": {"family": "nope", "qubits": 4}, "kind": "sample"}`,                // bad family
		`{"circuit": {"family": "bv", "qubits": 4}, "kind": "destroy"}`,                 // bad kind
		`{"circuit": {"qasm": "bogus", "family": "bv", "qubits": 4}, "kind": "sample"}`, // both sources
		`{"circuit": {"family": "bv", "qubits": 4}, "kind": "sample", "unknown": true}`, // unknown field
		`{"circuit": {"family": "bv", "qubits": 4}, "kind": "sample",
		  "options": {"fuse": "sometimes"}}`, // bad fuse policy
	}
	for _, body := range cases {
		resp, got := postJSON(t, srv.URL+"/v1/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %.40q: status %d (%v), want 400", body, resp.StatusCode, got)
		}
	}
	if resp, _ := getJSON(t, srv.URL+"/v1/jobs/j424242"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job poll: %d, want 404", resp.StatusCode)
	}
	if resp, _ := getJSON(t, srv.URL+"/v1/jobs/j424242/result"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job result: %d, want 404", resp.StatusCode)
	}
}

func TestHTTPCancelAndStats(t *testing.T) {
	_, srv := newHTTPTest(t)
	// A heavy job to cancel plus a quick one to completion.
	_, body := postJSON(t, srv.URL+"/v1/jobs", `{
		"circuit": {"family": "qft", "qubits": 16},
		"kind": "statevector", "options": {"strategy": "dagp", "lm": 10}
	}`)
	heavy := body["id"].(string)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+heavy, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}

	_, body = postJSON(t, srv.URL+"/v1/jobs", `{
		"circuit": {"family": "bv", "qubits": 6}, "kind": "probabilities", "qubits": [0, 5]
	}`)
	quick := body["id"].(string)
	resp, body = getJSON(t, srv.URL+"/v1/jobs/"+quick+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quick result: %d %v", resp.StatusCode, body)
	}
	probs := body["result"].(map[string]any)["probabilities"].([]any)
	if len(probs) != 4 {
		t.Fatalf("marginal over 2 qubits has %d entries", len(probs))
	}

	resp, stats := getJSON(t, srv.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	if stats["submitted"].(float64) < 2 {
		t.Fatalf("stats = %v", stats)
	}
	if resp, ok := getJSON(t, srv.URL+"/healthz"); resp.StatusCode != http.StatusOK || ok["ok"] != true {
		t.Fatalf("healthz: %d %v", resp.StatusCode, ok)
	}
}

func TestHTTPStatevectorRoundTrip(t *testing.T) {
	_, srv := newHTTPTest(t)
	_, body := postJSON(t, srv.URL+"/v1/jobs", `{
		"circuit": {"family": "cat_state", "qubits": 3}, "kind": "statevector"
	}`)
	id := body["id"].(string)
	resp, body := getJSON(t, srv.URL+"/v1/jobs/"+id+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %v", resp.StatusCode, body)
	}
	amps := body["result"].(map[string]any)["amplitudes"].([]any)
	if len(amps) != 8 {
		t.Fatalf("cat_state(3) has %d amplitudes", len(amps))
	}
	// |000⟩ and |111⟩ at 1/√2 each.
	a0 := amps[0].([]any)[0].(float64)
	a7 := amps[7].([]any)[0].(float64)
	const invRoot2 = 0.7071067811865476
	if fmt.Sprintf("%.6f", a0) != fmt.Sprintf("%.6f", invRoot2) ||
		fmt.Sprintf("%.6f", a7) != fmt.Sprintf("%.6f", invRoot2) {
		t.Fatalf("cat amplitudes %v / %v", a0, a7)
	}
}

func TestHTTPNoisySampleEndToEnd(t *testing.T) {
	_, srv := newHTTPTest(t)
	resp, body := postJSON(t, srv.URL+"/v1/jobs", `{
		"circuit": {"family": "ising", "qubits": 6},
		"kind": "noisy_sample", "shots": 200, "seed": 9, "trajectories": 10,
		"noise": {
			"rules": [
				{"channel": "depolarizing", "p": 0.02},
				{"channel": "amplitude_damping", "p": 0.01, "gates": ["cx", "rzz"]}
			],
			"readout": {"p01": 0.01, "p10": 0.02}
		},
		"options": {"strategy": "dagp"}
	}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, body)
	}
	id := body["id"].(string)
	resp, body = getJSON(t, srv.URL+"/v1/jobs/"+id+"/result?wait=30s")
	if resp.StatusCode != http.StatusOK || body["status"] != "done" {
		t.Fatalf("result: %d %v", resp.StatusCode, body)
	}
	result := body["result"].(map[string]any)
	if result["trajectories"].(float64) != 10 {
		t.Fatalf("trajectories = %v", result["trajectories"])
	}
	total := 0.0
	for bits, n := range result["counts"].(map[string]any) {
		if len(bits) != 6 || strings.Trim(bits, "01") != "" {
			t.Fatalf("counts key %q is not a 6-bit string", bits)
		}
		total += n.(float64)
	}
	if total != 200 {
		t.Fatalf("counts sum to %v, want 200", total)
	}
}

func TestHTTPNoisyExpectationEndToEnd(t *testing.T) {
	_, srv := newHTTPTest(t)
	resp, body := postJSON(t, srv.URL+"/v1/jobs", `{
		"circuit": {"family": "qft", "qubits": 6},
		"kind": "noisy_expectation", "qubits": [0, 2], "trajectories": 16,
		"noise": {"rules": [{"channel": "phase_damping", "p": 0.05}]}
	}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, body)
	}
	id := body["id"].(string)
	resp, body = getJSON(t, srv.URL+"/v1/jobs/"+id+"/result?wait=30s")
	if resp.StatusCode != http.StatusOK || body["status"] != "done" {
		t.Fatalf("result: %d %v", resp.StatusCode, body)
	}
	result := body["result"].(map[string]any)
	if _, ok := result["expectation"].(float64); !ok {
		t.Fatalf("no expectation in %v", result)
	}
	if se, ok := result["stderr"].(float64); !ok || se < 0 {
		t.Fatalf("bad stderr in %v", result)
	}
}

func TestHTTPNoisyValidation(t *testing.T) {
	// Out-of-bounds noise probabilities and trajectory counts must be 400s
	// at the HTTP layer, mirroring the qubits/shots validation.
	_, srv := newHTTPTest(t)
	circuitStanza := `"circuit": {"family": "bv", "qubits": 5}`
	cases := []string{
		`{` + circuitStanza + `, "kind": "noisy_sample",
		  "noise": {"rules": [{"channel": "depolarizing", "p": 1.5}]}}`, // p > 1
		`{` + circuitStanza + `, "kind": "noisy_sample",
		  "noise": {"rules": [{"channel": "depolarizing", "p": -0.1}]}}`, // p < 0
		`{` + circuitStanza + `, "kind": "noisy_sample",
		  "noise": {"rules": [{"channel": "warp", "p": 0.1}]}}`, // unknown channel
		`{` + circuitStanza + `, "kind": "noisy_sample",
		  "noise": {"readout": {"p01": 2, "p10": 0}}}`, // readout out of bounds
		`{` + circuitStanza + `, "kind": "noisy_sample", "trajectories": 1000000,
		  "noise": {"rules": [{"channel": "bit_flip", "p": 0.1}]}}`, // over trajectory cap
		`{` + circuitStanza + `, "kind": "noisy_sample", "trajectories": -5,
		  "noise": {"rules": [{"channel": "bit_flip", "p": 0.1}]}}`, // negative trajectories
		`{` + circuitStanza + `, "kind": "noisy_expectation", "qubits": [7],
		  "noise": {"rules": [{"channel": "bit_flip", "p": 0.1}]}}`, // qubit out of range
		`{` + circuitStanza + `, "kind": "sample",
		  "noise": {"rules": [{"channel": "bit_flip", "p": 0.1}]}}`, // noise on ideal kind
		`{` + circuitStanza + `, "kind": "noisy_sample",
		  "noise": {"rules": [{"channel": "bit_flip", "p": 0.1, "qubits": [9]}]}}`, // rule qubit out of range
	}
	for _, body := range cases {
		resp, got := postJSON(t, srv.URL+"/v1/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %.60q: status %d (%v), want 400", body, resp.StatusCode, got)
		}
	}
}
