package lru

import "testing"

func TestBasicGetPut(t *testing.T) {
	c := New(100)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1, 10)
	c.Put("b", 2, 20)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("a = %v, %v", v, ok)
	}
	if c.Len() != 2 || c.Size() != 30 {
		t.Fatalf("len=%d size=%d", c.Len(), c.Size())
	}
}

func TestEvictsColdEnd(t *testing.T) {
	c := New(30)
	c.Put("a", "a", 10)
	c.Put("b", "b", 10)
	c.Put("c", "c", 10)
	c.Get("a") // warm a; b is now coldest
	c.Put("d", "d", 10)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
}

func TestEvictsMultipleToFit(t *testing.T) {
	evicted := []string{}
	c := New(30)
	c.Evicted = func(k string, _ any, _ int64) { evicted = append(evicted, k) }
	c.Put("a", nil, 10)
	c.Put("b", nil, 10)
	c.Put("c", nil, 10)
	c.Put("big", nil, 25)
	if c.Len() != 1 || c.Size() != 25 {
		t.Fatalf("len=%d size=%d after big insert", c.Len(), c.Size())
	}
	if len(evicted) != 3 {
		t.Fatalf("evicted %v", evicted)
	}
}

func TestOversizedEntryNotStored(t *testing.T) {
	c := New(10)
	c.Put("small", nil, 5)
	c.Put("huge", nil, 11)
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized entry stored")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("oversized insert wiped existing entries")
	}
}

func TestReplaceUpdatesCost(t *testing.T) {
	c := New(30)
	c.Put("a", 1, 10)
	c.Put("a", 2, 25)
	if c.Len() != 1 || c.Size() != 25 {
		t.Fatalf("len=%d size=%d", c.Len(), c.Size())
	}
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("a = %v", v)
	}
	// Replacing with an oversized cost drops the key entirely.
	c.Put("a", 3, 100)
	if _, ok := c.Get("a"); ok {
		t.Fatal("oversized replacement kept stale entry")
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := New(0)
	c.Put("a", 1, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-capacity cache stored an entry")
	}
	c.Put("free", 1, 0) // even zero-cost entries are rejected at zero capacity
	if c.Len() != 0 {
		t.Fatalf("len = %d, want 0", c.Len())
	}
	c.Remove("a") // no-op, must not panic
}
