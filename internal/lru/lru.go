// Package lru provides a byte-budgeted least-recently-used map. It is the
// storage policy behind the service layer's plan/state cache: entries carry
// an explicit cost (a state vector is 16·2^n bytes, a plan a few hundred),
// and inserting past the budget evicts from the cold end until the new
// entry fits.
//
// The cache is not safe for concurrent use; callers hold their own lock
// (the service serializes cache access under its job mutex).
package lru

import "container/list"

// Cache is a string-keyed LRU with a total-cost capacity.
type Cache struct {
	capacity int64
	size     int64
	ll       *list.List // front = most recent
	items    map[string]*list.Element
	// Evicted, when non-nil, observes each eviction (for tests/metrics).
	Evicted func(key string, value any, cost int64)
}

type entry struct {
	key   string
	value any
	cost  int64
}

// New returns a cache that holds at most capacity total cost. A capacity
// ≤ 0 disables storage: Put becomes a no-op and Get always misses.
func New(capacity int64) *Cache {
	return &Cache{capacity: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the value for key and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Put inserts or replaces key, reporting whether the entry was stored. An
// entry whose cost alone exceeds the capacity is not stored (and an
// existing entry under that key is dropped), so one oversized value can
// never wipe the whole cache; the false return lets callers keeping
// residency gauges skip the phantom insertion.
func (c *Cache) Put(key string, value any, cost int64) bool {
	if cost < 0 {
		cost = 0
	}
	if el, ok := c.items[key]; ok {
		c.removeElement(el)
	}
	if c.capacity <= 0 || cost > c.capacity {
		return false
	}
	for c.size+cost > c.capacity {
		c.removeElement(c.ll.Back())
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, value: value, cost: cost})
	c.size += cost
	return true
}

// Remove drops key if present.
func (c *Cache) Remove(key string) {
	if el, ok := c.items[key]; ok {
		c.removeElement(el)
	}
}

func (c *Cache) removeElement(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.size -= e.cost
	if c.Evicted != nil {
		c.Evicted(e.key, e.value, e.cost)
	}
}

// Len returns the number of stored entries.
func (c *Cache) Len() int { return c.ll.Len() }

// Size returns the summed cost of stored entries.
func (c *Cache) Size() int64 { return c.size }

// Capacity returns the configured budget.
func (c *Cache) Capacity() int64 { return c.capacity }
