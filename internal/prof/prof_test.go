package prof

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Record(Dense, 3, time.Millisecond, 8, 256, 2) // must not panic
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil recorder snapshot = %v, want nil", got)
	}
	if got := r.Seconds(); got != 0 {
		t.Fatalf("nil recorder seconds = %v, want 0", got)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context recorder = %v, want nil", got)
	}
	if got := FromContext(nil); got != nil { //nolint:staticcheck // nil-safety is the contract
		t.Fatalf("nil context recorder = %v, want nil", got)
	}
	ctx := WithRecorder(context.Background(), nil)
	if got := FromContext(ctx); got != nil {
		t.Fatalf("nil-recorder context carries %v, want nil", got)
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	r := NewRecorder()
	r.Record(Dense, 5, 10*time.Millisecond, 1<<20, 32<<20, 4)
	r.Record(Dense, 5, 10*time.Millisecond, 1<<20, 32<<20, 4)
	r.Record(Diagonal, 2, 5*time.Millisecond, 1<<20, 32<<20, 0)
	r.Record(Super, 99, time.Millisecond, 16, 512, 0) // clamps to MaxWidth

	stats := r.Snapshot()
	if len(stats) != 3 {
		t.Fatalf("snapshot has %d rows, want 3: %+v", len(stats), stats)
	}
	d := stats[0]
	if d.Kernel != "dense" || d.Width != 5 || d.Calls != 2 {
		t.Fatalf("dense row = %+v", d)
	}
	if d.Amps != 2<<20 || d.Bytes != 64<<20 || d.Allocs != 8 {
		t.Fatalf("dense totals = %+v", d)
	}
	if d.Seconds < 0.0199 || d.Seconds > 0.0201 {
		t.Fatalf("dense seconds = %v, want 0.02", d.Seconds)
	}
	wantGBps := float64(64<<20) / d.Seconds / 1e9
	if d.GBps != wantGBps {
		t.Fatalf("dense GB/s = %v, want %v", d.GBps, wantGBps)
	}
	if stats[1].Kernel != "diagonal" || stats[1].Width != 2 {
		t.Fatalf("row 1 = %+v", stats[1])
	}
	if stats[2].Kernel != "superop" || stats[2].Width != MaxWidth {
		t.Fatalf("clamped row = %+v", stats[2])
	}
	if got, want := r.Seconds(), 0.026; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("total seconds = %v, want %v", got, want)
	}
}

func TestContextRoundTrip(t *testing.T) {
	r := NewRecorder()
	ctx := WithRecorder(context.Background(), r)
	if got := FromContext(ctx); got != r {
		t.Fatalf("FromContext = %p, want %p", got, r)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(Kraus, 1, time.Microsecond, 2, 64, 0)
			}
		}()
	}
	wg.Wait()
	stats := r.Snapshot()
	if len(stats) != 1 || stats[0].Calls != goroutines*per {
		t.Fatalf("concurrent snapshot = %+v, want %d calls", stats, goroutines*per)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Dense: "dense", Diagonal: "diagonal", Controlled: "controlled",
		Kraus: "kraus", Super: "superop", numKinds: "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if WidthLabel(-1) != "0" || WidthLabel(3) != "3" || WidthLabel(MaxWidth+5) != "32" {
		t.Fatalf("WidthLabel clamping broken: %q %q %q", WidthLabel(-1), WidthLabel(3), WidthLabel(MaxWidth+5))
	}
}

// BenchmarkRecord pins the hot-path cost: one clock-free Record must stay
// allocation-free after the lazy bucket table exists.
func BenchmarkRecord(b *testing.B) {
	r := NewRecorder()
	r.Record(Dense, 4, time.Microsecond, 16, 512, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(Dense, 4, time.Microsecond, 16, 512, 0)
	}
}
