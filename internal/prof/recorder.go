package prof

import (
	"context"
	"sync/atomic"
	"time"
)

// cell is one (kind, width) accumulator. All fields are atomics so kernel
// goroutines record without locks.
type cell struct {
	nanos  atomic.Int64
	calls  atomic.Int64
	amps   atomic.Int64
	bytes  atomic.Int64
	allocs atomic.Int64
}

// buckets is the full accumulator table, ~6.5 KiB. It is allocated lazily
// (first Record) so a recorder attached to a job that never executes a
// kernel — a cache hit — costs one pointer word.
type buckets [int(numKinds) * (MaxWidth + 1)]cell

// Recorder accumulates kernel statistics for one job. The zero value is
// ready to use; a nil receiver is inert on every method.
type Recorder struct {
	b atomic.Pointer[buckets]
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// table returns the bucket array, allocating it on first use.
func (r *Recorder) table() *buckets {
	if b := r.b.Load(); b != nil {
		return b
	}
	nb := new(buckets)
	if r.b.CompareAndSwap(nil, nb) {
		return nb
	}
	return r.b.Load()
}

// Record attributes one kernel invocation: its wall time, the amplitudes
// it touched, the bytes it moved (the kernel's own traffic model) and the
// scratch allocations it performed. Width clamps into [0, MaxWidth].
func (r *Recorder) Record(k Kind, width int, d time.Duration, amps, bytes, allocs int64) {
	if r == nil {
		return
	}
	if width < 0 {
		width = 0
	}
	if width > MaxWidth {
		width = MaxWidth
	}
	c := &r.table()[int(k)*(MaxWidth+1)+width]
	c.nanos.Add(int64(d))
	c.calls.Add(1)
	c.amps.Add(amps)
	c.bytes.Add(bytes)
	c.allocs.Add(allocs)
}

// KernelStat is one populated (kernel class, width) aggregate.
type KernelStat struct {
	Kernel  string  `json:"kernel"`
	Width   int     `json:"width"`
	Calls   int64   `json:"calls"`
	Amps    int64   `json:"amps"`
	Bytes   int64   `json:"bytes"`
	Allocs  int64   `json:"allocs"`
	Seconds float64 `json:"seconds"`
	// GBps is the effective memory bandwidth: Bytes / Seconds. It is the
	// calibration number the kernel-overhaul work needs — a dense sweep far
	// below the machine's bandwidth is compute- or latency-bound.
	GBps float64 `json:"gbps"`
}

// Snapshot returns the populated aggregates ordered by kind then width.
// Nil-safe; concurrent Records during the snapshot land in either view.
func (r *Recorder) Snapshot() []KernelStat {
	if r == nil {
		return nil
	}
	b := r.b.Load()
	if b == nil {
		return nil
	}
	var out []KernelStat
	for k := Kind(0); k < numKinds; k++ {
		for w := 0; w <= MaxWidth; w++ {
			c := &b[int(k)*(MaxWidth+1)+w]
			calls := c.calls.Load()
			if calls == 0 {
				continue
			}
			secs := float64(c.nanos.Load()) / 1e9
			st := KernelStat{
				Kernel: k.String(), Width: w, Calls: calls,
				Amps: c.amps.Load(), Bytes: c.bytes.Load(),
				Allocs: c.allocs.Load(), Seconds: secs,
			}
			if secs > 0 {
				st.GBps = float64(st.Bytes) / secs / 1e9
			}
			out = append(out, st)
		}
	}
	return out
}

// Seconds returns the total attributed kernel time — the number the
// profile's tiling check compares against the simulate-stage window.
func (r *Recorder) Seconds() float64 {
	if r == nil {
		return 0
	}
	b := r.b.Load()
	if b == nil {
		return 0
	}
	var nanos int64
	for i := range b {
		nanos += b[i].nanos.Load()
	}
	return float64(nanos) / 1e9
}

type ctxKey struct{}

// WithRecorder returns a context carrying r (unchanged for nil r).
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the context's recorder, or nil. Nil contexts are
// safe.
func FromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}
