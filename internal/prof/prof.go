// Package prof is the kernel-level execution profiler beneath the obs
// stage tracer: a per-job Recorder that attributes wall time, amplitudes
// touched, bytes moved and scratch allocations to each kernel class
// (dense, diagonal, controlled, kraus, superop) at each block width. The
// recorder rides the context from service submit down through the sv
// kernels; executors that hold a *sv.State set State.Prof once and every
// kernel call self-reports. A nil *Recorder is inert — every method is
// nil-safe and the kernels guard their clock reads on it — so library
// callers (benchmarks, tests, the CLI) pay nothing.
//
// The package is a leaf (stdlib only) so internal/sv can import it
// without cycles. Aggregation is lock-free: buckets are a fixed
// [kind][width] array of atomic cells, lazily allocated on the first
// Record so jobs that never reach a kernel (cache hits) cost one pointer.
package prof

import "strconv"

// Kind classifies a kernel invocation.
type Kind uint8

const (
	// Dense is a gather–multiply–scatter sweep with a 2^k×2^k unitary
	// (fused blocks, plain k-target gates, swap).
	Dense Kind = iota
	// Diagonal is an in-place phase sweep (2^k diagonal, no gather).
	Diagonal
	// Controlled is a dense sweep with structural control bits (including
	// the density-matrix engine's bra-side conjugate applications).
	Controlled
	// Kraus covers the noise layer's raw-matrix entry points: Kraus
	// applications, norm-probability reductions and renormalization.
	Kraus
	// Super is a density-matrix superoperator sweep over vec(ρ) (width is
	// the full ket+bra target count, 2k for a k-qubit channel).
	Super

	numKinds
)

// String returns the kernel-class label used in metrics and profile JSON.
func (k Kind) String() string {
	switch k {
	case Dense:
		return "dense"
	case Diagonal:
		return "diagonal"
	case Controlled:
		return "controlled"
	case Kraus:
		return "kraus"
	case Super:
		return "superop"
	}
	return "unknown"
}

// MaxWidth is the widest per-class bucket tracked exactly; wider kernels
// (vec(ρ) superoperators can reach 2·13 qubits) clamp into the last
// bucket. Bounds the bucket array at numKinds·(MaxWidth+1) cells.
const MaxWidth = 32

// WidthLabel returns the metric label value for a (clamped) width without
// allocating — the strings are interned at init.
func WidthLabel(w int) string {
	if w < 0 {
		w = 0
	}
	if w > MaxWidth {
		w = MaxWidth
	}
	return widthLabels[w]
}

var widthLabels = func() [MaxWidth + 1]string {
	var out [MaxWidth + 1]string
	for i := range out {
		out[i] = strconv.Itoa(i)
	}
	return out
}()
