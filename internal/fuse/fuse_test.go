package fuse

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"hisvsim/internal/circuit"
	"hisvsim/internal/gate"
	"hisvsim/internal/sv"
)

// randomState returns a normalized random state for differential tests.
func randomState(n int, seed int64) *sv.State {
	rng := rand.New(rand.NewSource(seed))
	st := sv.NewState(n)
	norm := 0.0
	for i := range st.Amps {
		st.Amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(st.Amps[i])*real(st.Amps[i]) + imag(st.Amps[i])*imag(st.Amps[i])
	}
	norm = math.Sqrt(norm)
	for i := range st.Amps {
		st.Amps[i] /= complex(norm, 0)
	}
	return st
}

// applyBoth runs the gate list unfused and as fused blocks on the same
// random input state and checks element-wise agreement.
func applyBoth(t *testing.T, n int, gates []gate.Gate, opts Options, seed int64) []Block {
	t.Helper()
	want := randomState(n, seed)
	got := want.Clone()
	if err := want.ApplyGates(gates); err != nil {
		t.Fatal(err)
	}
	blocks, err := Fuse(gates, opts)
	if err != nil {
		t.Fatal(err)
	}
	if GateCount(blocks) != len(gates) {
		t.Fatalf("blocks cover %d gates, want %d", GateCount(blocks), len(gates))
	}
	if err := Apply(got, blocks); err != nil {
		t.Fatal(err)
	}
	if !got.EqualTol(want, 1e-9) {
		t.Fatalf("fused state diverges from unfused (max err %v)", maxErr(got, want))
	}
	return blocks
}

func maxErr(a, b *sv.State) float64 {
	m := 0.0
	for i := range a.Amps {
		if d := cmplx.Abs(a.Amps[i] - b.Amps[i]); d > m {
			m = d
		}
	}
	return m
}

func TestFuseMatchesUnfusedOnFamilies(t *testing.T) {
	for _, fam := range circuit.Families() {
		c, err := circuit.Named(fam, 8)
		if err != nil {
			t.Fatal(err)
		}
		blocks := applyBoth(t, c.NumQubits, c.Gates, Options{}, 7)
		if len(blocks) >= c.NumGates() && c.NumGates() > 20 {
			t.Errorf("%s: fusion produced %d blocks for %d gates (no coalescing)",
				fam, len(blocks), c.NumGates())
		}
	}
}

func TestFuseDiagonalRunsStayDiagonal(t *testing.T) {
	var gs []gate.Gate
	for i := 0; i < 8; i++ {
		gs = append(gs, gate.RZ(0.1*float64(i+1), i%4))
		if i%2 == 0 {
			gs = append(gs, gate.CP(0.3, i%4, (i+1)%4))
		}
	}
	blocks := applyBoth(t, 4, gs, Options{}, 3)
	if len(blocks) != 1 || blocks[0].Kind != Diagonal {
		t.Fatalf("pure-diagonal sequence fused into %d blocks (kind %v), want 1 Diagonal",
			len(blocks), blocks[0].Kind)
	}
}

func TestFuseRespectsSupportCap(t *testing.T) {
	c := circuit.QFT(9)
	for _, cap := range []int{2, 3, 5} {
		blocks, err := Fuse(c.Gates, Options{MaxQubits: cap, MaxDiagQubits: cap})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			if b.Kind != Single && len(b.Qubits) > cap {
				t.Fatalf("cap %d: block support %v", cap, b.Qubits)
			}
		}
	}
}

func TestFuseOversizedGatePassesThrough(t *testing.T) {
	gs := []gate.Gate{
		gate.H(0),
		gate.MCX([]int{0, 1, 2, 3, 4, 5}, 6), // arity 7 > both caps
		gate.H(6),
	}
	blocks, err := Fuse(gs, Options{MaxQubits: 3, MaxDiagQubits: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range blocks {
		if len(b.Gates) == 1 && b.Gates[0].Name == "mcx" {
			if b.Kind != Single {
				t.Fatalf("oversized gate got kind %v", b.Kind)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("oversized mcx not emitted as passthrough")
	}
	applyBoth(t, 7, gs, Options{MaxQubits: 3, MaxDiagQubits: 3}, 5)
}

func TestFuseSingleBlockPreservesGateOrderWithinSupport(t *testing.T) {
	// h then x on the same qubit do not commute: X·H ≠ H·X. The fused
	// matrix must equal the product in application order.
	gs := []gate.Gate{gate.H(0), gate.X(0), gate.RY(0.4, 1)}
	applyBoth(t, 2, gs, Options{}, 11)
}

func TestFuseDenseBlockUnitary(t *testing.T) {
	gs := []gate.Gate{gate.CX(0, 1), gate.RZ(0.7, 1), gate.CX(0, 1)}
	blocks, err := Fuse(gs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("zz phase gadget fused into %d blocks, want 1", len(blocks))
	}
	b := blocks[0]
	if b.Kind != Dense {
		t.Fatalf("kind = %v, want Dense", b.Kind)
	}
	if !b.Matrix.IsUnitary(1e-12) {
		t.Fatal("fused matrix not unitary")
	}
}

func TestFuseEmptyAndInvalid(t *testing.T) {
	blocks, err := Fuse(nil, Options{})
	if err != nil || len(blocks) != 0 {
		t.Fatalf("empty fuse: %v, %d blocks", err, len(blocks))
	}
	if _, err := Fuse([]gate.Gate{{Name: "nope", Qubits: []int{0}}}, Options{}); err == nil {
		t.Fatal("invalid gate accepted")
	}
}

func TestFuseReorderOffStillCorrect(t *testing.T) {
	c := circuit.QAOA(7, 2, 5)
	applyBoth(t, 7, c.Gates, Options{NoReorder: true}, 13)
}

func TestFuseReducesSweepsOnDeepCircuits(t *testing.T) {
	// The bound is 2/3 rather than 1/2: single-qubit field layers (e.g.
	// ising's RX sweeps) deliberately stay per-gate — their specialized
	// kernels beat a grown dense block — so the reduction comes from the
	// diagonal layers collapsing into runs.
	for _, fam := range []string{"qft", "ising", "qpe"} {
		c, err := circuit.Named(fam, 10)
		if err != nil {
			t.Fatal(err)
		}
		blocks, err := Fuse(c.Gates, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s := Sweeps(blocks); s*3 > c.NumGates()*2 {
			t.Errorf("%s: %d sweeps for %d gates, want ≤ 2/3", fam, s, c.NumGates())
		}
	}
}

func TestQuickFuseEqualsUnfused(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := circuit.Random(6, 50, seed)
		applyBoth(t, 6, c.Gates, Options{}, seed+100)
		applyBoth(t, 6, c.Gates, Options{MaxQubits: 3}, seed+200)
	}
}
