package fuse

import (
	"fmt"

	"hisvsim/internal/circuit"
	"hisvsim/internal/gate"
	"hisvsim/internal/sv"
)

// This file compiles parameterized circuits once and re-binds them cheaply.
// The key invariant making that sound: fusion structure is angle-independent.
// Diagonality (gate.IsDiagonal) and the fusion cost model consult only gate
// names and qubit supports, never Params — so a plan built at the template's
// placeholder angles has exactly the right block boundaries, supports, and
// kernel index tables for every binding. Only the numeric payloads (dense
// matrices, diagonal tables, Single gates) of symbol-touched blocks need
// re-materializing per binding; everything else is shared read-only.

// Parametric reports whether any source gate of the block carries a
// symbolic parameter (i.e. its Matrix/Diag depend on the binding).
func (b *Block) Parametric() bool {
	for _, g := range b.Gates {
		if g.Parametric() {
			return true
		}
	}
	return false
}

// Specialize returns a concrete copy of the block for one binding: source
// gates bound, and the dense matrix or diagonal rebuilt from the bound
// angles. Blocks with no symbolic gates are returned unchanged (sharing
// their read-only payloads).
func (b *Block) Specialize(env map[string]float64) (Block, error) {
	if !b.Parametric() {
		return *b, nil
	}
	gs := make([]gate.Gate, len(b.Gates))
	for i, g := range b.Gates {
		bg, err := g.Bind(env)
		if err != nil {
			return Block{}, fmt.Errorf("fuse: %w", err)
		}
		gs[i] = bg
	}
	out := Block{Kind: b.Kind, Qubits: b.Qubits, Gates: gs}
	switch b.Kind {
	case Diagonal:
		out.Diag = buildDiagonal(b.Qubits, gs)
	case Dense:
		out.Matrix = buildMatrix(b.Qubits, gs)
	}
	return out, nil
}

// Template is a parameterized circuit compiled once: fused blocks built at
// placeholder angles, shared kernel plans, and the indices of the blocks a
// binding actually has to rebuild. Specialize produces per-binding block
// lists in O(touched blocks) instead of re-running fusion.
type Template struct {
	N       int             // qubit count
	Blocks  []Block         // compiled at placeholder angles; Gates keep their symbolic Args
	Plans   []*sv.FusedPlan // read-only kernel index tables, shared by every binding
	Symbols []string        // sorted symbols the circuit references
	touched []int           // indices into Blocks of parametric blocks
}

// CompileTemplate fuses a (possibly parameterized) circuit into a reusable
// template. Concrete circuits compile too — they just have nothing to
// re-specialize, so Specialize degenerates to returning the shared blocks.
func CompileTemplate(c *circuit.Circuit, opts Options) (*Template, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("fuse: %w", err)
	}
	blocks, err := Fuse(c.Gates, opts)
	if err != nil {
		return nil, err
	}
	t := &Template{
		N:       c.NumQubits,
		Blocks:  blocks,
		Plans:   Plan(blocks, c.NumQubits),
		Symbols: c.Symbols(),
	}
	for i := range blocks {
		if blocks[i].Parametric() {
			t.touched = append(t.touched, i)
		}
	}
	return t, nil
}

// TouchedBlocks returns how many blocks a binding rebuilds (the rest are
// shared); it is the template's per-binding specialization cost in blocks.
func (t *Template) TouchedBlocks() int { return len(t.touched) }

// Specialize returns the concrete block list for one binding: a fresh slice
// whose symbol-touched entries are rebuilt for env and whose remaining
// entries alias the template's read-only blocks. The result pairs with the
// template's shared Plans for ApplyPlanned. Callers on different bindings
// may specialize concurrently: the template itself is never mutated.
func (t *Template) Specialize(env map[string]float64) ([]Block, error) {
	if len(t.touched) == 0 {
		return t.Blocks, nil
	}
	blocks := append([]Block(nil), t.Blocks...)
	for _, i := range t.touched {
		b, err := t.Blocks[i].Specialize(env)
		if err != nil {
			return nil, err
		}
		blocks[i] = b
	}
	return blocks, nil
}

// Run specializes the template for env and applies it to a fresh |0…0⟩
// state with the given worker bound, returning the final state.
func (t *Template) Run(env map[string]float64, workers int) (*sv.State, error) {
	blocks, err := t.Specialize(env)
	if err != nil {
		return nil, err
	}
	st := sv.NewState(t.N)
	if workers > 0 {
		st.Workers = workers
	}
	if err := ApplyPlanned(st, blocks, t.Plans); err != nil {
		return nil, err
	}
	return st, nil
}
