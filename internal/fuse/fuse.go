// Package fuse implements gate fusion: coalescing runs of consecutive gates
// whose combined qubit support stays small into single dense 2^k×2^k
// unitaries (or single 2^k diagonals for phase-only runs), so that deep
// circuits sweep the state vector once per block instead of once per gate.
// The paper positions such gate-level batching as orthogonal to partitioning
// (§II-C); here it multiplies with it: every executor fuses within the
// partition-bounded working sets it already has in cache.
//
// Fusion is greedy over the gate sequence with two guards:
//
//   - a support cap (MaxQubits for dense blocks, MaxDiagQubits for diagonal
//     runs, which cost one multiply per amplitude regardless of k), and
//   - a per-amplitude cost model that only extends a dense block when the
//     grown 2^k matrix kernel is estimated to beat applying the incoming
//     gate in its own sweep (charging sweepOverhead per extra pass to model
//     memory traffic).
//
// A block of one gate stays a passthrough so the simulator's dedicated
// fast paths (diagonal sweep, swap, 2×2 kernel) keep applying.
package fuse

import (
	"fmt"
	"sort"

	"hisvsim/internal/circuit"
	"hisvsim/internal/gate"
	"hisvsim/internal/sv"
)

// Kind discriminates how a block is executed.
type Kind int

const (
	// Single is a passthrough block: one gate applied via State.ApplyGate.
	Single Kind = iota
	// Dense is a fused 2^k×2^k unitary over Qubits.
	Dense
	// Diagonal is a fused 2^k diagonal over Qubits.
	Diagonal
)

// Block is one fused execution unit.
type Block struct {
	Kind   Kind
	Qubits []int        // sorted support (Dense and Diagonal kinds)
	Matrix gate.Matrix  // Dense: the fused unitary, little-endian over Qubits
	Diag   []complex128 // Diagonal: the fused diagonal over Qubits
	Gates  []gate.Gate  // the source gates, in application order
}

// Options configures fusion. Zero values select the defaults.
type Options struct {
	// MaxQubits caps the support of dense fused blocks (default 5). When
	// set explicitly it also caps diagonal runs unless MaxDiagQubits says
	// otherwise, so one knob bounds every fused table.
	MaxQubits int
	// MaxDiagQubits caps the support of fused diagonal runs (default 10
	// when MaxQubits is defaulted too, else MaxQubits); diagonal
	// application costs one multiply per amplitude regardless of k, so the
	// cap only bounds the 2^k diagonal table.
	MaxDiagQubits int
	// NoReorder disables the diagonal-grouping pre-pass (commuting diagonal
	// gates left past disjoint gates to lengthen diagonal runs).
	NoReorder bool
}

// DefaultMaxQubits is the dense fused-block support cap.
const DefaultMaxQubits = 5

// DefaultMaxDiagQubits is the diagonal-run support cap.
const DefaultMaxDiagQubits = 10

func (o Options) withDefaults() Options {
	if o.MaxDiagQubits <= 0 {
		// An explicit dense cap bounds diagonal tables too (the documented
		// MaxFuseQubits contract); only the full defaults split 5/10.
		if o.MaxQubits > 0 {
			o.MaxDiagQubits = o.MaxQubits
		} else {
			o.MaxDiagQubits = DefaultMaxDiagQubits
		}
	}
	if o.MaxQubits <= 0 {
		o.MaxQubits = DefaultMaxQubits
	}
	return o
}

// sweepOverhead is the per-amplitude cost charged for every extra full-state
// sweep a separate gate application would take (models memory traffic: each
// sweep reads and writes the whole vector). Calibrated conservatively — on
// cache-resident states a sweep costs about as much as one table-lookup
// pass, so dense blocks only grow when their supports substantially overlap
// (same-qubit singles, same-pair two-qubit runs); over-eager dense merging
// trades cheap specialized kernels for 2^k matrix rows and loses.
const sweepOverhead = 1.0

// gateCost estimates the per-amplitude cost of applying g unfused,
// including its sweep overhead.
func gateCost(g gate.Gate) float64 {
	if gate.IsDiagonal(g) {
		return 1 + sweepOverhead
	}
	if g.Name == "swap" && g.Ctrl == 0 {
		return 1 + sweepOverhead
	}
	t := len(g.Targets())
	if t <= 1 {
		return 2 + sweepOverhead
	}
	return float64(int(1)<<uint(t)) + 2 + sweepOverhead
}

// denseCost is the per-amplitude cost of one fused dense sweep on k qubits
// (2^k multiply-adds plus gather/scatter), excluding the shared sweep
// overhead, which both sides of every comparison pay exactly once.
func denseCost(k int) float64 { return float64(int(1)<<uint(k)) + 2 }

// Fuse coalesces the gate sequence into fused blocks. The concatenation of
// all blocks' unitaries equals the sequence's unitary exactly; only
// commuting reorderings (diagonal grouping) are applied unless NoReorder.
func Fuse(gates []gate.Gate, opts Options) ([]Block, error) {
	opts = opts.withDefaults()
	for i, g := range gates {
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("fuse: gate %d: %w", i, err)
		}
	}
	if !opts.NoReorder {
		gates = circuit.GroupDiagonalGates(gates)
	}

	var blocks []Block
	var run []gate.Gate
	var support []int
	allDiag := false

	// curCost is the per-amplitude cost of the running block's current
	// representation (diagonal sweep, dense kernel, or single passthrough).
	curCost := func() float64 {
		if allDiag {
			return 1
		}
		if len(run) == 1 {
			return gateCost(run[0]) - sweepOverhead
		}
		return denseCost(len(support))
	}
	flush := func() {
		if len(run) == 0 {
			return
		}
		blocks = append(blocks, materialize(run, support, allDiag))
		run, support = nil, nil
	}

	for _, g := range gates {
		qs := g.SortedQubits()
		d := gate.IsDiagonal(g)
		if len(run) == 0 {
			run, support, allDiag = []gate.Gate{g}, qs, d
			continue
		}
		u := unionSorted(support, qs)
		noGrowth := len(u) == len(support) && !allDiag && len(u) <= opts.MaxQubits
		switch {
		case allDiag && d && len(u) <= opts.MaxDiagQubits:
			// Diagonal runs extend freely: cost stays one multiply/amp.
			run, support = append(run, g), u
		case noGrowth:
			// The gate fits inside a dense block's existing support: the
			// kernel size is unchanged, so absorbing it saves g's whole sweep
			// for free (e.g. the cx·rz·cx phase gadget collapses to one
			// 2-qubit block).
			run = append(run, g)
		case len(u) <= opts.MaxQubits && denseCost(len(u)) <= curCost()+gateCost(g):
			run, support = append(run, g), u
			allDiag = allDiag && d
		default:
			flush()
			run, support, allDiag = []gate.Gate{g}, qs, d
		}
	}
	flush()
	return blocks, nil
}

// materialize builds the executable form of one block.
func materialize(run []gate.Gate, support []int, allDiag bool) Block {
	gs := append([]gate.Gate(nil), run...)
	qs := append([]int(nil), support...)
	if len(gs) == 1 {
		return Block{Kind: Single, Qubits: qs, Gates: gs}
	}
	if allDiag {
		return Block{Kind: Diagonal, Qubits: qs, Diag: buildDiagonal(qs, gs), Gates: gs}
	}
	return Block{Kind: Dense, Qubits: qs, Matrix: buildMatrix(qs, gs), Gates: gs}
}

// buildDiagonal multiplies the gates' full diagonals (controls pin entries
// to 1) over the block support.
func buildDiagonal(qs []int, gates []gate.Gate) []complex128 {
	pos := positionOf(qs)
	d := make([]complex128, 1<<uint(len(qs)))
	for i := range d {
		d[i] = 1
	}
	for _, g := range gates {
		m := g.BaseMatrix()
		base := make([]complex128, m.Dim())
		for i := range base {
			base[i] = m.At(i, i)
		}
		cmask := 0
		for _, c := range g.Controls() {
			cmask |= 1 << uint(pos[c])
		}
		tpos := make([]int, 0, len(g.Targets()))
		for _, t := range g.Targets() {
			tpos = append(tpos, pos[t])
		}
		for idx := range d {
			if idx&cmask != cmask {
				continue
			}
			sub := 0
			for j, tp := range tpos {
				if idx>>uint(tp)&1 == 1 {
					sub |= 1 << uint(j)
				}
			}
			d[idx] *= base[sub]
		}
	}
	return d
}

// buildMatrix multiplies the gates' embedded full unitaries over the block
// support (later gates multiply from the left: they apply after).
func buildMatrix(qs []int, gates []gate.Gate) gate.Matrix {
	k := len(qs)
	pos := positionOf(qs)
	u := gate.Identity(k)
	for _, g := range gates {
		full := g.FullMatrix()
		j := full.K
		ext := full
		if j < k {
			ext = gate.Identity(k - j).Kron(full)
		}
		// Old bit i of ext is the gate's i-th listed qubit (controls first);
		// route it to that qubit's position in the block support, and park
		// the identity bits on the unused positions.
		perm := make([]int, k)
		used := make([]bool, k)
		for i, q := range g.Qubits {
			perm[i] = pos[q]
			used[pos[q]] = true
		}
		next := 0
		for i := j; i < k; i++ {
			for used[next] {
				next++
			}
			perm[i] = next
			used[next] = true
		}
		u = ext.Permuted(perm).Mul(u)
	}
	return u
}

// Plan precomputes the per-block kernel index tables for applying blocks to
// n-qubit states (nil entries for passthrough blocks). Executors that sweep
// the same blocks many times build the plan once and use ApplyPlanned; the
// result is read-only and safe to share across goroutines.
func Plan(blocks []Block, n int) []*sv.FusedPlan {
	plans := make([]*sv.FusedPlan, len(blocks))
	for i := range blocks {
		if blocks[i].Kind != Single {
			plans[i] = sv.PrepareFused(n, blocks[i].Qubits)
		}
	}
	return plans
}

// Apply executes the blocks against the state in order.
func Apply(st *sv.State, blocks []Block) error {
	return ApplyPlanned(st, blocks, nil)
}

// ApplyPlanned is Apply with kernel plans from Plan (nil plans fall back to
// per-call table construction).
func ApplyPlanned(st *sv.State, blocks []Block, plans []*sv.FusedPlan) error {
	for i := range blocks {
		b := &blocks[i]
		var p *sv.FusedPlan
		if plans != nil {
			p = plans[i]
		}
		if p == nil && b.Kind != Single {
			p = sv.PrepareFused(st.N, b.Qubits)
		}
		switch b.Kind {
		case Single:
			if err := st.ApplyGate(b.Gates[0]); err != nil {
				return err
			}
		case Diagonal:
			st.ApplyFusedDiagonalPlan(p, b.Diag)
		case Dense:
			st.ApplyFusedPlan(p, b.Matrix)
		default:
			return fmt.Errorf("fuse: unknown block kind %d", b.Kind)
		}
	}
	return nil
}

// GateCount returns the number of source gates across all blocks.
func GateCount(blocks []Block) int {
	n := 0
	for _, b := range blocks {
		n += len(b.Gates)
	}
	return n
}

// Sweeps returns the number of state-vector sweeps the blocks take (one per
// block), the quantity fusion minimizes.
func Sweeps(blocks []Block) int { return len(blocks) }

func positionOf(qs []int) map[int]int {
	pos := make(map[int]int, len(qs))
	for i, q := range qs {
		pos[q] = i
	}
	return pos
}

func unionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	for _, q := range b {
		i := sort.SearchInts(out, q)
		if i < len(out) && out[i] == q {
			continue
		}
		out = append(out, 0)
		copy(out[i+1:], out[i:])
		out[i] = q
	}
	return out
}
