package hier

import (
	"math"
	"testing"
	"testing/quick"

	"hisvsim/internal/circuit"
	"hisvsim/internal/dag"
	"hisvsim/internal/partition"
	"hisvsim/internal/partition/dagp"
	"hisvsim/internal/sv"
)

func flat(t *testing.T, c *circuit.Circuit) *sv.State {
	t.Helper()
	s, err := sv.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The central correctness invariant of the paper: hierarchical part-based
// execution computes exactly the same state as flat simulation, for every
// strategy and limit.
func TestHierMatchesFlatAllStrategies(t *testing.T) {
	circuits := []*circuit.Circuit{
		circuit.CatState(8),
		circuit.BV(8, -1),
		circuit.QAOA(8, 2, 5),
		circuit.CC(8),
		circuit.Ising(8, 2),
		circuit.QFT(8),
		circuit.QNN(8, 2, 5),
		circuit.Grover(5, 2),
		circuit.QPE(7, 0.3, 16),
		circuit.Adder(3),
	}
	strategies := []partition.Strategy{
		partition.Nat{},
		partition.DFS{Trials: 5, Seed: 2},
		dagp.Partitioner{},
	}
	for _, c := range circuits {
		want := flat(t, c)
		for _, s := range strategies {
			for _, lm := range []int{4, 5, c.NumQubits} {
				if lm < maxArity(c) {
					continue
				}
				got, m, err := Run(c, lm, s, Options{})
				if err != nil {
					t.Fatalf("%s/%s/Lm=%d: %v", c.Name, s.Name(), lm, err)
				}
				if f := got.Fidelity(want); math.Abs(f-1) > 1e-8 {
					t.Errorf("%s/%s/Lm=%d: fidelity = %v", c.Name, s.Name(), lm, f)
				}
				if m.Parts < 1 {
					t.Errorf("%s/%s/Lm=%d: no parts", c.Name, s.Name(), lm)
				}
			}
		}
	}
}

func maxArity(c *circuit.Circuit) int {
	m := 0
	for _, g := range c.Gates {
		if g.Arity() > m {
			m = g.Arity()
		}
	}
	return m
}

func TestMultiLevelMatchesFlat(t *testing.T) {
	for _, c := range []*circuit.Circuit{
		circuit.QFT(9),
		circuit.QAOA(9, 2, 5),
		circuit.Grover(5, 2),
	} {
		want := flat(t, c)
		got, m, err := Run(c, 6, dagp.Partitioner{}, Options{SecondLevelLm: 3})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if f := got.Fidelity(want); math.Abs(f-1) > 1e-8 {
			t.Errorf("%s: multi-level fidelity = %v", c.Name, f)
		}
		anySub := false
		for _, ps := range m.PerPart {
			if ps.SubParts > 1 {
				anySub = true
			}
		}
		if !anySub {
			t.Errorf("%s: second level never split", c.Name)
		}
	}
}

func TestMultiLevelWithDagPSecondLevel(t *testing.T) {
	c := circuit.QFT(8)
	want := flat(t, c)
	got, _, err := Run(c, 6, dagp.Partitioner{}, Options{
		SecondLevelLm: 3, SecondLevel: dagp.Partitioner{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f := got.Fidelity(want); math.Abs(f-1) > 1e-8 {
		t.Errorf("fidelity = %v", f)
	}
}

func TestMetricsAccounting(t *testing.T) {
	c := circuit.BV(8, -1)
	_, m, err := Run(c, 4, partition.Nat{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PerPart) != m.Parts {
		t.Fatalf("per-part stats %d vs parts %d", len(m.PerPart), m.Parts)
	}
	var bytes int64
	gates := 0
	for _, ps := range m.PerPart {
		// sweeps = 2^(n - w)
		if want := int64(1) << uint(c.NumQubits-ps.Qubits); ps.Sweeps != want {
			t.Errorf("part %d sweeps = %d, want %d", ps.Index, ps.Sweeps, want)
		}
		if ps.BytesMoved != 2*16*int64(1)<<uint(c.NumQubits) {
			t.Errorf("part %d bytes = %d", ps.Index, ps.BytesMoved)
		}
		bytes += ps.BytesMoved
		gates += ps.Gates
	}
	if bytes != m.BytesMoved {
		t.Error("bytes totals disagree")
	}
	if gates != c.NumGates() {
		t.Errorf("parts cover %d gates, circuit has %d", gates, c.NumGates())
	}
	if m.InnerOps < int64(c.NumGates()) {
		t.Errorf("inner ops %d < gate count", m.InnerOps)
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	outer := make([]complex128, 1<<6)
	for i := range outer {
		outer[i] = complex(float64(i), -float64(i))
	}
	orig := append([]complex128(nil), outer...)
	qubits := []int{1, 3, 4}
	inner := make([]complex128, 1<<3)
	// For every free assignment: gather then scatter must be the identity.
	for f := 0; f < 1<<3; f++ {
		base := f
		for _, q := range qubits {
			base = insertBit(base, q)
		}
		Gather(outer, qubits, base, inner)
		Scatter(outer, qubits, base, inner)
	}
	for i := range outer {
		if outer[i] != orig[i] {
			t.Fatalf("round trip changed amp %d", i)
		}
	}
}

func TestGatherCoversDisjointExhaustive(t *testing.T) {
	// The 2^(n-w) gathered blocks must tile the outer vector exactly once.
	n, qubits := 6, []int{0, 2, 5}
	seen := make([]int, 1<<uint(n))
	inner := make([]complex128, 1<<uint(len(qubits)))
	for f := 0; f < 1<<uint(n-len(qubits)); f++ {
		base := f
		for _, q := range qubits {
			base = insertBit(base, q)
		}
		for s := range inner {
			seen[base|spread(s, qubits)]++
		}
	}
	for i, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("outer index %d visited %d times", i, cnt)
		}
	}
}

func TestExecutePlanRejectsSmallState(t *testing.T) {
	c := circuit.BV(6, -1)
	pl, err := (partition.Nat{}).Partition(dag.FromCircuit(c), 3)
	if err != nil {
		t.Fatal(err)
	}
	st := sv.NewState(4)
	if _, err := ExecutePlan(pl, st, Options{}); err == nil {
		t.Fatal("undersized state accepted")
	}
}

func TestQuickHierEqualsFlat(t *testing.T) {
	f := func(seed int64, lmRaw uint8) bool {
		c := circuit.Random(7, 40, seed)
		lm := int(lmRaw%4) + 3
		want, err := sv.Run(c)
		if err != nil {
			return false
		}
		got, _, err := Run(c, lm, dagp.Partitioner{Opts: dagp.Options{Seed: seed}}, Options{})
		if err != nil {
			return false
		}
		return math.Abs(got.Fidelity(want)-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
