package hier

import (
	"math"
	"math/rand"
	"testing"

	"hisvsim/internal/circuit"
	"hisvsim/internal/dag"
	"hisvsim/internal/partition/dagp"
	"hisvsim/internal/sv"
)

// ExecutePlan must be correct on an arbitrary prepared state, not only on
// |0…0⟩ — the executor is a pure unitary applicator.
func TestExecutePlanOnPreparedState(t *testing.T) {
	n := 8
	rng := rand.New(rand.NewSource(4))
	prep := sv.NewState(n)
	norm := 0.0
	for i := range prep.Amps {
		prep.Amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(prep.Amps[i])*real(prep.Amps[i]) + imag(prep.Amps[i])*imag(prep.Amps[i])
	}
	norm = math.Sqrt(norm)
	for i := range prep.Amps {
		prep.Amps[i] /= complex(norm, 0)
	}

	c := circuit.QFT(n)
	want := prep.Clone()
	if err := want.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}

	pl, err := dagp.Partitioner{}.Partition(dag.FromCircuit(c), 5)
	if err != nil {
		t.Fatal(err)
	}
	got := prep.Clone()
	if _, err := ExecutePlan(pl, got, Options{SecondLevelLm: 3}); err != nil {
		t.Fatal(err)
	}
	if f := got.Fidelity(want); math.Abs(f-1) > 1e-8 {
		t.Fatalf("prepared-state fidelity = %v", f)
	}
}

// A state wider than the circuit: the plan acts on the low qubits and the
// high (spectator) qubits must be untouched.
func TestExecutePlanOnWiderState(t *testing.T) {
	c := circuit.QFT(5)
	pl, err := dagp.Partitioner{}.Partition(dag.FromCircuit(c), 3)
	if err != nil {
		t.Fatal(err)
	}
	st := sv.NewState(7)
	// Put the spectator qubits in |11⟩ by moving the amplitude.
	st.Amps[0] = 0
	st.Amps[0b1100000] = 1
	if _, err := ExecutePlan(pl, st, Options{}); err != nil {
		t.Fatal(err)
	}
	// All probability must remain in the spectator-=11 subspace.
	p := 0.0
	for i := 0; i < st.Dim(); i++ {
		if i>>5 == 0b11 {
			p += st.BasisProbability(i)
		}
	}
	if math.Abs(p-1) > 1e-9 {
		t.Fatalf("spectator qubits disturbed: subspace probability %v", p)
	}
}
