// Package hier implements the paper's hierarchical part-based execution
// model (§III-B/C, Algorithm 1): for each part of an acyclic partitioning,
// the amplitudes addressed by the part's qubits are gathered from the outer
// state vector into a small inner state vector, all of the part's gates are
// applied to the inner vector, and the results are scattered back. With a
// second-level limit set, each part is recursively partitioned so the
// innermost vectors stay cache-resident (the paper's multi-level HiSVSIM).
package hier

import (
	"fmt"

	"hisvsim/internal/circuit"
	"hisvsim/internal/dag"
	"hisvsim/internal/gate"
	"hisvsim/internal/partition"
	"hisvsim/internal/sv"
)

// Options configures hierarchical execution.
type Options struct {
	// SecondLevelLm, when > 0, re-partitions each part's gates with this
	// tighter working-set limit and executes them through a second
	// gather/execute/scatter level (multi-level HiSVSIM). The second level
	// uses the same strategy kind as the plan when possible.
	SecondLevelLm int
	// SecondLevel is the partitioner used for the second level; nil selects
	// partition.Nat{} (cheap, and inner circuits are small).
	SecondLevel partition.Strategy
	// Workers bounds kernel parallelism (0 = GOMAXPROCS).
	Workers int
}

// PartStats records the execution footprint of one part.
type PartStats struct {
	Index      int
	Gates      int
	Qubits     int
	Sweeps     int64 // gather/scatter iterations = 2^(n-w)
	BytesMoved int64 // gather + scatter traffic over the outer vector
	SubParts   int   // second-level part count (1 when single-level)
}

// Metrics aggregates execution statistics.
type Metrics struct {
	Parts      int
	BytesMoved int64
	Sweeps     int64
	InnerOps   int64
	PerPart    []PartStats
}

// ExecutePlan runs every part of the plan against the given outer state.
// The state must span the plan's circuit.
func ExecutePlan(pl *partition.Plan, outer *sv.State, opts Options) (*Metrics, error) {
	if pl.Circuit.NumQubits > outer.N {
		return nil, fmt.Errorf("hier: circuit needs %d qubits, state has %d", pl.Circuit.NumQubits, outer.N)
	}
	m := &Metrics{Parts: pl.NumParts()}
	for _, part := range pl.Parts {
		ps, err := executePart(pl.Circuit, part, outer, opts)
		if err != nil {
			return nil, fmt.Errorf("hier: part %d: %w", part.Index, err)
		}
		m.PerPart = append(m.PerPart, ps)
		m.BytesMoved += ps.BytesMoved
		m.Sweeps += ps.Sweeps
	}
	m.InnerOps = outer.Ops
	return m, nil
}

// Run partitions the circuit with the strategy and executes it from |0…0⟩.
func Run(c *circuit.Circuit, lm int, s partition.Strategy, opts Options) (*sv.State, *Metrics, error) {
	pl, err := s.Partition(dag.FromCircuit(c), lm)
	if err != nil {
		return nil, nil, err
	}
	outer := sv.NewState(c.NumQubits)
	outer.Workers = opts.Workers
	m, err := ExecutePlan(pl, outer, opts)
	if err != nil {
		return nil, nil, err
	}
	return outer, m, nil
}

// executePart performs the Gather-Execute-Scatter cycle of Algorithm 1 for
// one part.
func executePart(c *circuit.Circuit, part partition.Part, outer *sv.State, opts Options) (PartStats, error) {
	w := part.WorkingSetSize()
	n := outer.N
	ps := PartStats{Index: part.Index, Gates: len(part.GateIndices), Qubits: w, SubParts: 1}
	if w == 0 {
		return ps, nil
	}

	// Remap the part's gates onto inner qubit slots 0..w-1 (the paper's
	// consistent-layout rule: ascending global qubit -> ascending slot).
	slot := make(map[int]int, w)
	for j, q := range part.Qubits {
		slot[q] = j
	}
	gates := make([]gate.Gate, 0, len(part.GateIndices))
	for _, gi := range part.GateIndices {
		gates = append(gates, c.Gates[gi].Remap(func(q int) int { return slot[q] }))
	}

	// Optional second level: partition the remapped sub-circuit.
	var subPlan *partition.Plan
	if opts.SecondLevelLm > 0 && opts.SecondLevelLm < w {
		sub := circuit.New(fmt.Sprintf("%s_part%d", c.Name, part.Index), w)
		sub.Gates = gates
		strat := opts.SecondLevel
		if strat == nil {
			strat = partition.Nat{}
		}
		pl2, err := strat.Partition(dag.FromCircuit(sub), opts.SecondLevelLm)
		if err != nil {
			return ps, fmt.Errorf("second-level partition: %w", err)
		}
		subPlan = pl2
		ps.SubParts = pl2.NumParts()
	}

	inner := sv.NewState(w)
	inner.Workers = 1 // inner vectors are small; parallelism is outer-level
	dimInner := inner.Dim()

	free := n - w
	sweeps := int64(1) << uint(free)
	ps.Sweeps = sweeps
	ps.BytesMoved = 2 * int64(outer.Dim()) * 16

	for f := int64(0); f < sweeps; f++ {
		base := int(f)
		for _, q := range part.Qubits { // ascending: insert zeros at part qubits
			base = insertBit(base, q)
		}
		// Gather.
		for s := 0; s < dimInner; s++ {
			inner.Amps[s] = outer.Amps[base|spread(s, part.Qubits)]
		}
		// Execute.
		if subPlan != nil {
			if _, err := ExecutePlan(subPlan, inner, Options{Workers: 1}); err != nil {
				return ps, err
			}
		} else {
			if err := inner.ApplyGates(gates); err != nil {
				return ps, err
			}
		}
		// Scatter.
		for s := 0; s < dimInner; s++ {
			outer.Amps[base|spread(s, part.Qubits)] = inner.Amps[s]
		}
	}
	outer.Ops += inner.Ops
	return ps, nil
}

// insertBit returns f with a zero bit inserted at position p.
func insertBit(f, p int) int {
	low := f & ((1 << uint(p)) - 1)
	return ((f &^ ((1 << uint(p)) - 1)) << 1) | low
}

// spread distributes the bits of s onto the (ascending) qubit positions.
func spread(s int, qubits []int) int {
	out := 0
	for j, q := range qubits {
		if s>>uint(j)&1 == 1 {
			out |= 1 << uint(q)
		}
	}
	return out
}

// Gather extracts the 2^w inner amplitudes for a given free-bit assignment;
// exported for reuse by the distributed executor and tests.
func Gather(outer []complex128, qubits []int, base int, inner []complex128) {
	for s := range inner {
		inner[s] = outer[base|spread(s, qubits)]
	}
}

// Scatter writes inner amplitudes back to their outer positions.
func Scatter(outer []complex128, qubits []int, base int, inner []complex128) {
	for s := range inner {
		outer[base|spread(s, qubits)] = inner[s]
	}
}
