// Package hier implements the paper's hierarchical part-based execution
// model (§III-B/C, Algorithm 1): for each part of an acyclic partitioning,
// the amplitudes addressed by the part's qubits are gathered from the outer
// state vector into a small inner state vector, all of the part's gates are
// applied to the inner vector, and the results are scattered back. With a
// second-level limit set, each part is recursively partitioned so the
// innermost vectors stay cache-resident (the paper's multi-level HiSVSIM).
//
// With Options.Fuse set, each part's gates are additionally coalesced into
// dense/diagonal fused blocks (see internal/fuse) once per part, so every
// gather/execute/scatter cycle sweeps the inner vector once per block
// instead of once per gate. Independent sweeps of one part are executed in
// parallel across Workers goroutines (they touch disjoint slices of the
// outer vector), and a part whose working set spans the whole register is
// applied directly to the outer state through the parallel kernels.
package hier

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"hisvsim/internal/circuit"
	"hisvsim/internal/dag"
	"hisvsim/internal/fuse"
	"hisvsim/internal/gate"
	"hisvsim/internal/partition"
	"hisvsim/internal/prof"
	"hisvsim/internal/sv"
)

// Options configures hierarchical execution.
type Options struct {
	// Ctx, when non-nil, is polled at part boundaries: a cancelled or
	// timed-out context aborts the run with the context's error. Carried in
	// Options (rather than a parameter) so the existing ExecutePlan/Run call
	// surface stays stable.
	Ctx context.Context
	// SecondLevelLm, when > 0, re-partitions each part's gates with this
	// tighter working-set limit and executes them through a second
	// gather/execute/scatter level (multi-level HiSVSIM). The second level
	// uses the same strategy kind as the plan when possible.
	SecondLevelLm int
	// SecondLevel is the partitioner used for the second level; nil selects
	// partition.Nat{} (cheap, and inner circuits are small).
	SecondLevel partition.Strategy
	// Workers bounds kernel and sweep parallelism (0 = GOMAXPROCS).
	Workers int
	// Fuse enables gate fusion within each part (and each second-level
	// sub-part).
	Fuse bool
	// MaxFuseQubits caps fused-block support (0 = fuse default).
	MaxFuseQubits int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// PartStats records the execution footprint of one part.
type PartStats struct {
	Index      int
	Gates      int
	Qubits     int
	Sweeps     int64 // gather/scatter iterations = 2^(n-w)
	BytesMoved int64 // gather + scatter traffic over the outer vector
	SubParts   int   // second-level part count (1 when single-level)
	Blocks     int   // fused blocks per sweep (0 when fusion off or multi-level)
}

// Metrics aggregates execution statistics.
type Metrics struct {
	Parts      int
	BytesMoved int64
	Sweeps     int64
	InnerOps   int64
	PerPart    []PartStats
}

// ExecutePlan runs every part of the plan against the given outer state.
// The state must span the plan's circuit.
func ExecutePlan(pl *partition.Plan, outer *sv.State, opts Options) (*Metrics, error) {
	if pl.Circuit.NumQubits > outer.N {
		return nil, fmt.Errorf("hier: circuit needs %d qubits, state has %d", pl.Circuit.NumQubits, outer.N)
	}
	m := &Metrics{Parts: pl.NumParts()}
	for _, part := range pl.Parts {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		pp, err := preparePart(pl.Circuit, part, opts)
		if err != nil {
			return nil, fmt.Errorf("hier: part %d: %w", part.Index, err)
		}
		ps, err := executePart(pp, outer, opts)
		if err != nil {
			return nil, fmt.Errorf("hier: part %d: %w", part.Index, err)
		}
		m.PerPart = append(m.PerPart, ps)
		m.BytesMoved += ps.BytesMoved
		m.Sweeps += ps.Sweeps
	}
	m.InnerOps = outer.Ops
	return m, nil
}

// Run partitions the circuit with the strategy and executes it from |0…0⟩.
func Run(c *circuit.Circuit, lm int, s partition.Strategy, opts Options) (*sv.State, *Metrics, error) {
	pl, err := s.Partition(dag.FromCircuit(c), lm)
	if err != nil {
		return nil, nil, err
	}
	outer := sv.NewState(c.NumQubits)
	outer.Workers = opts.Workers
	outer.Prof = prof.FromContext(opts.Ctx)
	m, err := ExecutePlan(pl, outer, opts)
	if err != nil {
		return nil, nil, err
	}
	return outer, m, nil
}

// prepared is one part's precomputed execution recipe: gates remapped onto
// inner slots, fused blocks (fusion on, single level), or the prepared
// second-level sub-parts. Preparing once per part keeps fusion and
// second-level partitioning out of the 2^(n-w) sweep loop.
type prepared struct {
	part   partition.Part
	gates  []gate.Gate     // remapped onto slots 0..w-1
	offs   []int           // offs[s] = spread(s, part.Qubits), gather/scatter table
	blocks []fuse.Block    // fused form (nil when fusion off or multi-level)
	plans  []*sv.FusedPlan // per-block kernel tables for w-qubit inner states
	sub    []prepared      // second-level prepared parts
}

// preparePart remaps the part's gates onto inner slots and precomputes the
// fused blocks or the second-level plan.
func preparePart(c *circuit.Circuit, part partition.Part, opts Options) (prepared, error) {
	w := part.WorkingSetSize()
	pp := prepared{part: part}
	if w < c.NumQubits {
		// Parts that span their whole circuit never gather/scatter (they
		// apply directly), so the offset table would be pure waste there.
		pp.offs = make([]int, 1<<uint(w))
		for s := range pp.offs {
			pp.offs[s] = spread(s, part.Qubits)
		}
	}

	// Remap the part's gates onto inner qubit slots 0..w-1 (the paper's
	// consistent-layout rule: ascending global qubit -> ascending slot).
	slot := make(map[int]int, w)
	for j, q := range part.Qubits {
		slot[q] = j
	}
	gates := make([]gate.Gate, 0, len(part.GateIndices))
	for _, gi := range part.GateIndices {
		gates = append(gates, c.Gates[gi].Remap(func(q int) int { return slot[q] }))
	}
	pp.gates = gates

	if opts.SecondLevelLm > 0 && opts.SecondLevelLm < w {
		sub := circuit.New(fmt.Sprintf("%s_part%d", c.Name, part.Index), w)
		sub.Gates = gates
		strat := opts.SecondLevel
		if strat == nil {
			strat = partition.Nat{}
		}
		pl2, err := strat.Partition(dag.FromCircuit(sub), opts.SecondLevelLm)
		if err != nil {
			return pp, fmt.Errorf("second-level partition: %w", err)
		}
		subOpts := opts
		subOpts.SecondLevelLm = 0
		for _, p2 := range pl2.Parts {
			sp, err := preparePart(sub, p2, subOpts)
			if err != nil {
				return pp, err
			}
			pp.sub = append(pp.sub, sp)
		}
		return pp, nil
	}
	if opts.Fuse {
		blocks, err := fuse.Fuse(gates, fuse.Options{MaxQubits: opts.MaxFuseQubits})
		if err != nil {
			return pp, err
		}
		pp.blocks = blocks
		pp.plans = fuse.Plan(blocks, w)
	}
	return pp, nil
}

// applyPrepared runs one prepared part's compute against an inner state
// whose qubits are the part's slots. workers bounds sub-part sweep
// parallelism: 1 inside a per-sweep inner vector (parallelism is already
// sweep-level there), the full worker count when inner is the outer state.
func applyPrepared(pp *prepared, inner *sv.State, workers int) error {
	if pp.sub != nil {
		for i := range pp.sub {
			if err := executeSweeps(&pp.sub[i], inner, workers); err != nil {
				return err
			}
		}
		return nil
	}
	if pp.blocks != nil {
		return fuse.ApplyPlanned(inner, pp.blocks, pp.plans)
	}
	return inner.ApplyGates(pp.gates)
}

// executePart performs the Gather-Execute-Scatter cycle of Algorithm 1 for
// one prepared part.
func executePart(pp prepared, outer *sv.State, opts Options) (PartStats, error) {
	part := pp.part
	w := part.WorkingSetSize()
	n := outer.N
	ps := PartStats{Index: part.Index, Gates: len(part.GateIndices), Qubits: w,
		SubParts: 1, Blocks: len(pp.blocks)}
	if pp.sub != nil {
		ps.SubParts = len(pp.sub)
	}
	if w == 0 {
		return ps, nil
	}
	ps.Sweeps = int64(1) << uint(n-w)

	if w == n {
		// The part spans the whole register: apply directly to the outer
		// state through the parallel kernels — no gather/scatter copies, so
		// no bytes are charged.
		if err := applyPrepared(&pp, outer, opts.workers()); err != nil {
			return ps, err
		}
		return ps, nil
	}
	ps.BytesMoved = 2 * int64(outer.Dim()) * 16
	if err := executeSweeps(&pp, outer, opts.workers()); err != nil {
		return ps, err
	}
	return ps, nil
}

// executeSweeps runs the 2^(n-w) gather/execute/scatter iterations of one
// prepared part against the outer state, splitting independent sweeps
// (disjoint outer slices) across workers goroutines.
func executeSweeps(pp *prepared, outer *sv.State, workers int) error {
	part := pp.part
	w := part.WorkingSetSize()
	sweeps := 1 << uint(outer.N-w)
	offs := pp.offs
	if offs == nil { // defensive: preparePart builds it for every swept part
		offs = make([]int, 1<<uint(w))
		for s := range offs {
			offs[s] = spread(s, part.Qubits)
		}
	}

	runRange := func(lo, hi int) (int64, error) {
		inner := sv.NewState(w)
		inner.Workers = 1 // inner vectors are small; parallelism is sweep-level
		inner.Prof = outer.Prof
		dimInner := inner.Dim()
		for f := lo; f < hi; f++ {
			base := f
			for _, q := range part.Qubits { // ascending: insert zeros at part qubits
				base = insertBit(base, q)
			}
			for s := 0; s < dimInner; s++ {
				inner.Amps[s] = outer.Amps[base|offs[s]]
			}
			if err := applyPrepared(pp, inner, 1); err != nil {
				return inner.Ops, err
			}
			for s := 0; s < dimInner; s++ {
				outer.Amps[base|offs[s]] = inner.Amps[s]
			}
		}
		return inner.Ops, nil
	}

	if workers <= 1 || sweeps < 2*workers {
		ops, err := runRange(0, sweeps)
		outer.Ops += ops
		return err
	}
	if workers > sweeps {
		workers = sweeps
	}
	chunk := (sweeps + workers - 1) / workers
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for lo := 0; lo < sweeps; lo += chunk {
		hi := lo + chunk
		if hi > sweeps {
			hi = sweeps
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ops, err := runRange(lo, hi)
			mu.Lock()
			outer.Ops += ops
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	return firstErr
}

// insertBit returns f with a zero bit inserted at position p.
func insertBit(f, p int) int {
	low := f & ((1 << uint(p)) - 1)
	return ((f &^ ((1 << uint(p)) - 1)) << 1) | low
}

// spread distributes the bits of s onto the (ascending) qubit positions.
func spread(s int, qubits []int) int {
	out := 0
	for j, q := range qubits {
		if s>>uint(j)&1 == 1 {
			out |= 1 << uint(q)
		}
	}
	return out
}

// Gather extracts the 2^w inner amplitudes for a given free-bit assignment;
// exported for reuse by the distributed executor and tests.
func Gather(outer []complex128, qubits []int, base int, inner []complex128) {
	for s := range inner {
		inner[s] = outer[base|spread(s, qubits)]
	}
}

// Scatter writes inner amplitudes back to their outer positions.
func Scatter(outer []complex128, qubits []int, base int, inner []complex128) {
	for s := range inner {
		outer[base|spread(s, qubits)] = inner[s]
	}
}
