package sv

import (
	"fmt"

	"hisvsim/internal/gate"
	"hisvsim/internal/prof"
)

// This file holds the fused-block kernels: applying one dense 2^k×2^k
// unitary (or one 2^k diagonal) produced by gate fusion to k target qubits
// in a single sweep over the state vector. Compared with applyK, the index
// arithmetic is precomputed once per call: stride masks expand a free index
// into a base amplitude index in k+1 shift/mask operations, and a 2^k
// scatter-offset table addresses the fused working set.

// strideMasks returns the k+1 masks that expand a free index f (counting
// over the n−k non-target bits) into an amplitude index with zero bits at
// the sorted target positions: expand(f) = Σ_i (f & masks[i]) << i.
func strideMasks(n int, sorted []int) []uint64 {
	k := len(sorted)
	masks := make([]uint64, k+1)
	lo := 0
	for i := 0; i <= k; i++ {
		hi := n - k // bits of f live in [0, n-k)
		if i < k {
			hi = sorted[i] - i
		}
		if hi < lo {
			hi = lo
		}
		masks[i] = (uint64(1)<<uint(hi) - 1) &^ (uint64(1)<<uint(lo) - 1)
		lo = hi
	}
	return masks
}

// expandIndex applies the stride masks to a free index.
func expandIndex(f int, masks []uint64) int {
	uf := uint64(f)
	var base uint64
	for i, m := range masks {
		base |= (uf & m) << uint(i)
	}
	return int(base)
}

// scatterOffsets returns the 2^k offsets addressed by every assignment of
// the target bits: offs[s] = Σ_j bit_j(s) << sorted[j].
func scatterOffsets(sorted []int) []int {
	k := len(sorted)
	offs := make([]int, 1<<uint(k))
	for s := range offs {
		o := 0
		for j := 0; j < k; j++ {
			if s>>uint(j)&1 == 1 {
				o |= 1 << uint(sorted[j])
			}
		}
		offs[s] = o
	}
	return offs
}

// FusedPlan caches the index tables the fused kernels need for one (state
// size, target set): the stride masks and the 2^k scatter-offset table.
// Executors that sweep the same block 2^(n-w) times build the plan once
// (PrepareFused) instead of recomputing the tables every call.
type FusedPlan struct {
	N      int   // state size the plan was built for
	Qubits []int // sorted target qubits
	masks  []uint64
	offs   []int
}

// PrepareFused validates the target set (strictly ascending, in range for
// an n-qubit state) and precomputes the kernel index tables.
func PrepareFused(n int, qubits []int) *FusedPlan {
	for i, q := range qubits {
		if q < 0 || q >= n {
			panic(fmt.Sprintf("sv: fused qubit %d out of range [0,%d)", q, n))
		}
		if i > 0 && qubits[i-1] >= q {
			panic(fmt.Sprintf("sv: fused qubits %v not strictly ascending", qubits))
		}
	}
	return &FusedPlan{N: n, Qubits: qubits,
		masks: strideMasks(n, qubits), offs: scatterOffsets(qubits)}
}

func (s *State) checkPlan(p *FusedPlan) {
	if p.N != s.N {
		panic(fmt.Sprintf("sv: fused plan for %d qubits applied to %d-qubit state", p.N, s.N))
	}
}

// ApplyFused applies a dense 2^k×2^k unitary to the k sorted target qubits
// (little-endian: qubits[0] is the least-significant bit of the matrix
// index). The sweep parallelizes over the free indices via parallelFor.
func (s *State) ApplyFused(qubits []int, m gate.Matrix) {
	s.ApplyFusedPlan(PrepareFused(s.N, qubits), m)
}

// ApplyFusedPlan is ApplyFused with the index tables precomputed.
func (s *State) ApplyFusedPlan(p *FusedPlan, m gate.Matrix) {
	k := len(p.Qubits)
	if m.K != k {
		panic(fmt.Sprintf("sv: fused matrix on %d qubits applied to %d targets", m.K, k))
	}
	s.checkPlan(p)
	if k == 0 {
		return
	}
	s.Ops++
	dim := 1 << uint(k)
	masks := p.masks
	offs := p.offs
	free := 1 << uint(s.N-k)
	t0 := s.profStart()
	s.parallelFor(free, func(lo, hi int) {
		amps := s.Amps
		sub := make([]complex128, dim)
		res := make([]complex128, dim)
		for f := lo; f < hi; f++ {
			base := expandIndex(f, masks)
			for si := 0; si < dim; si++ {
				sub[si] = amps[base|offs[si]]
			}
			for r := 0; r < dim; r++ {
				row := m.Data[r*dim : (r+1)*dim]
				var acc complex128
				for ci := 0; ci < dim; ci++ {
					acc += row[ci] * sub[ci]
				}
				res[r] = acc
			}
			for si := 0; si < dim; si++ {
				amps[base|offs[si]] = res[si]
			}
		}
	})
	s.profRecord(prof.Dense, k, t0, int64(len(s.Amps)),
		int64(len(s.Amps))*bytesPerAmpRW, 2*s.sweepChunks(free))
}

// ApplyFusedDiagonal multiplies the amplitudes addressed by the k sorted
// target qubits by the 2^k diagonal d (one in-place sweep, no gather).
func (s *State) ApplyFusedDiagonal(qubits []int, d []complex128) {
	s.ApplyFusedDiagonalPlan(PrepareFused(s.N, qubits), d)
}

// ApplyFusedDiagonalPlan is ApplyFusedDiagonal with the index tables
// precomputed.
func (s *State) ApplyFusedDiagonalPlan(p *FusedPlan, d []complex128) {
	k := len(p.Qubits)
	if len(d) != 1<<uint(k) {
		panic(fmt.Sprintf("sv: fused diagonal has %d entries for %d qubits", len(d), k))
	}
	s.checkPlan(p)
	if k == 0 {
		return
	}
	s.Ops++
	dim := 1 << uint(k)
	masks := p.masks
	offs := p.offs
	free := 1 << uint(s.N-k)
	t0 := s.profStart()
	s.parallelFor(free, func(lo, hi int) {
		amps := s.Amps
		for f := lo; f < hi; f++ {
			base := expandIndex(f, masks)
			for si := 0; si < dim; si++ {
				amps[base|offs[si]] *= d[si]
			}
		}
	})
	s.profRecord(prof.Diagonal, k, t0, int64(len(s.Amps)),
		int64(len(s.Amps))*bytesPerAmpRW, 0)
}
