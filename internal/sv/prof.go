package sv

import (
	"time"

	"hisvsim/internal/prof"
)

// This file holds the kernel-profiling guards. Every public kernel entry
// point brackets its sweep with profStart/profRecord; with s.Prof nil
// (the default) both are branch-only — no clock reads, no atomics — so
// unprofiled callers pay nothing measurable.
//
// Traffic model: a full dense or diagonal sweep reads and writes every
// amplitude once (32 bytes per complex128 round trip); norm reductions
// read only (16 bytes). These are the asymptotic per-sweep numbers — the
// effective GB/s derived from them is exactly what reveals cache locality
// and latency stalls to the kernel-overhaul work. Scratch allocations are
// self-reported from the known per-chunk buffers (gather/scatter kernels
// allocate two 2^k slices per parallel chunk).

const (
	// bytesPerAmpRW is one read-modify-write of a complex128.
	bytesPerAmpRW = 32
	// bytesPerAmpRead is one read of a complex128 (norm reductions).
	bytesPerAmpRead = 16
)

// profStart returns the kernel start time when profiling is enabled, and
// the zero Time otherwise.
func (s *State) profStart() time.Time {
	if s.Prof == nil {
		return time.Time{}
	}
	return time.Now()
}

// profRecord attributes one finished kernel invocation.
func (s *State) profRecord(k prof.Kind, width int, t0 time.Time, amps, bytes, allocs int64) {
	if s.Prof == nil {
		return
	}
	s.Prof.Record(k, width, time.Since(t0), amps, bytes, allocs)
}

// SweepChunks reports how many chunks (and hence per-chunk scratch
// allocations) a parallel sweep over n items splits into under the state's
// worker bound. Engines that suppress the inner kernel recording and
// re-attribute at their own layer (the dm superoperator path) use it to
// reproduce the kernels' scratch-allocation estimate.
func (s *State) SweepChunks(n int) int64 { return s.sweepChunks(n) }

// sweepChunks mirrors parallelFor's chunking: how many chunks (and hence
// per-chunk scratch allocations) a sweep over n items produces.
func (s *State) sweepChunks(n int) int64 {
	w := s.workers()
	if w <= 1 || n < parallelThreshold {
		return 1
	}
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	return int64((n + chunk - 1) / chunk)
}
