package sv

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"hisvsim/internal/circuit"
	"hisvsim/internal/gate"
)

const eps = 1e-9

// naiveApply is an independent dense reference: embeds the gate's FullMatrix
// explicitly. Quadratic, for cross-checking kernels only.
func naiveApply(s *State, g gate.Gate) *State {
	m := g.FullMatrix()
	k := g.Arity()
	qs := g.Qubits
	out := s.Clone()
	var mask int
	for _, q := range qs {
		mask |= 1 << uint(q)
	}
	for base := 0; base < s.Dim(); base++ {
		if base&mask != 0 {
			continue
		}
		dim := 1 << uint(k)
		sub := make([]complex128, dim)
		for i := 0; i < dim; i++ {
			idx := base
			for j := 0; j < k; j++ {
				if i>>uint(j)&1 == 1 {
					idx |= 1 << uint(qs[j])
				}
			}
			sub[i] = s.Amps[idx]
		}
		res := m.ApplyVec(sub)
		for i := 0; i < dim; i++ {
			idx := base
			for j := 0; j < k; j++ {
				if i>>uint(j)&1 == 1 {
					idx |= 1 << uint(qs[j])
				}
			}
			out.Amps[idx] = res[i]
		}
	}
	return out
}

func randomState(n int, seed int64) *State {
	rng := rand.New(rand.NewSource(seed))
	s := NewState(n)
	norm := 0.0
	for i := range s.Amps {
		s.Amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(s.Amps[i])*real(s.Amps[i]) + imag(s.Amps[i])*imag(s.Amps[i])
	}
	norm = math.Sqrt(norm)
	for i := range s.Amps {
		s.Amps[i] /= complex(norm, 0)
	}
	return s
}

func TestNewState(t *testing.T) {
	s := NewState(3)
	if s.Dim() != 8 || s.Amps[0] != 1 {
		t.Fatal("bad initial state")
	}
	if math.Abs(s.Norm()-1) > eps {
		t.Fatal("norm != 1")
	}
}

func TestNewStateBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewState(-1)
}

func TestNewStateRaw(t *testing.T) {
	s := NewStateRaw(make([]complex128, 8))
	if s.N != 3 {
		t.Fatalf("N = %d", s.N)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-power-of-two")
		}
	}()
	NewStateRaw(make([]complex128, 6))
}

func TestKernelsMatchNaive(t *testing.T) {
	th, ph, la := 0.83, -0.31, 1.94
	gates := []gate.Gate{
		gate.H(0), gate.X(2), gate.Y(1), gate.Z(3), gate.S(0), gate.T(2),
		gate.SX(1), gate.RX(th, 0), gate.RY(th, 3), gate.RZ(th, 1),
		gate.P(la, 2), gate.U2(ph, la, 0), gate.U3(th, ph, la, 3),
		gate.CX(0, 2), gate.CX(3, 1), gate.CY(1, 3), gate.CZ(0, 3),
		gate.CH(2, 0), gate.CP(la, 1, 2), gate.CRX(th, 0, 1),
		gate.CRY(th, 2, 3), gate.CRZ(th, 3, 0), gate.CU3(th, ph, la, 1, 0),
		gate.SWAP(0, 3), gate.SWAP(2, 1), gate.RZZ(th, 1, 3),
		gate.CCX(0, 1, 3), gate.CCX(3, 2, 0), gate.CSWAP(1, 0, 2),
		gate.MCX([]int{0, 1, 2}, 3), gate.MCZ([]int{3, 1}, 0),
		gate.MCP(la, []int{2, 0}, 1),
	}
	for _, g := range gates {
		s := randomState(4, 42)
		want := naiveApply(s, g)
		if err := s.ApplyGate(g); err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		if !s.EqualTol(want, 1e-9) {
			t.Errorf("%s: kernel disagrees with naive reference", g)
		}
	}
}

func TestKernelsParallelPathMatchesSerial(t *testing.T) {
	// Exceed parallelThreshold so the goroutine sweep runs.
	n := 15
	c := circuit.Random(n, 40, 7)
	serial, err := func() (*State, error) {
		s := NewState(n)
		s.Workers = 1
		return s, s.ApplyCircuit(c)
	}()
	if err != nil {
		t.Fatal(err)
	}
	par := NewState(n)
	par.Workers = 4
	if err := par.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}
	if !par.EqualTol(serial, 1e-9) {
		t.Fatal("parallel sweep diverged from serial")
	}
}

func TestApplyGateRejectsOutOfRange(t *testing.T) {
	s := NewState(2)
	if err := s.ApplyGate(gate.H(2)); err == nil {
		t.Fatal("out-of-range gate accepted")
	}
	if err := s.ApplyGate(gate.CX(0, 0)); err == nil {
		t.Fatal("duplicate-qubit gate accepted")
	}
}

func TestBellAndGHZ(t *testing.T) {
	s, err := Run(circuit.CatState(3))
	if err != nil {
		t.Fatal(err)
	}
	inv := 1 / math.Sqrt2
	for i, a := range s.Amps {
		want := complex128(0)
		if i == 0 || i == 7 {
			want = complex(inv, 0)
		}
		if cmplx.Abs(a-want) > eps {
			t.Fatalf("GHZ amp[%d] = %v", i, a)
		}
	}
}

func TestNormPreservedOnBenchmarks(t *testing.T) {
	for _, spec := range circuit.Benchmarks(8) {
		c := spec.Build()
		if c.NumQubits > 14 {
			continue
		}
		s, err := Run(c)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if math.Abs(s.Norm()-1) > 1e-8 {
			t.Errorf("%s: norm = %v", spec.Name, s.Norm())
		}
	}
}

func TestBVRecoversSecret(t *testing.T) {
	n := 8
	secret := int64(0b0110101)
	s, err := Run(circuit.BV(n, secret))
	if err != nil {
		t.Fatal(err)
	}
	// Data qubits should measure exactly the secret; ancilla is in |-⟩.
	for q := 0; q < n-1; q++ {
		want := float64(secret >> uint(q) & 1)
		if p := s.Probability(q); math.Abs(p-want) > 1e-9 {
			t.Fatalf("qubit %d probability = %v, want %v", q, p, want)
		}
	}
}

func TestQFTOnBasisState(t *testing.T) {
	// QFT|x⟩ has all amplitudes of magnitude 2^{-n/2} with phases
	// e^{2πi·x·k/2^n} (up to the bit-reversal convention handled by the
	// final swaps).
	n := 5
	x := 11
	s := NewState(n)
	for q := 0; q < n; q++ {
		if x>>uint(q)&1 == 1 {
			if err := s.ApplyGate(gate.X(q)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.ApplyCircuit(circuit.QFT(n)); err != nil {
		t.Fatal(err)
	}
	dim := 1 << uint(n)
	mag := 1 / math.Sqrt(float64(dim))
	for k := 0; k < dim; k++ {
		phase := 2 * math.Pi * float64(x) * float64(k) / float64(dim)
		want := complex(mag*math.Cos(phase), mag*math.Sin(phase))
		if cmplx.Abs(s.Amps[k]-want) > 1e-9 {
			t.Fatalf("QFT amp[%d] = %v, want %v", k, s.Amps[k], want)
		}
	}
}

func TestQFTInverseQFTIsIdentity(t *testing.T) {
	n := 6
	s := randomState(n, 3)
	orig := s.Clone()
	if err := s.ApplyCircuit(circuit.QFT(n)); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyCircuit(circuit.InverseQFT(n)); err != nil {
		t.Fatal(err)
	}
	if !s.EqualTol(orig, 1e-8) {
		t.Fatal("QFT ∘ IQFT != identity")
	}
}

func TestGroverAmplifiesMarkedState(t *testing.T) {
	d := 5
	c := circuit.Grover(d, 2)
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// Marked state: all data qubits 1, ancillas 0.
	marked := (1 << uint(d)) - 1
	pMarked := 0.0
	for i := range s.Amps {
		if i&((1<<uint(d))-1) == marked {
			pMarked += s.BasisProbability(i)
		}
	}
	uniform := 1.0 / float64(int(1)<<uint(d))
	if pMarked < 5*uniform {
		t.Fatalf("Grover p(marked) = %v, uniform = %v", pMarked, uniform)
	}
}

func TestAdderAddsCorrectly(t *testing.T) {
	m := 3
	c := circuit.Adder(m)
	for _, tc := range []struct{ a, b int }{{0, 0}, {1, 1}, {3, 5}, {7, 7}, {5, 2}} {
		s := NewState(c.NumQubits)
		// Load a and b into the interleaved registers.
		for i := 0; i < m; i++ {
			if tc.a>>uint(i)&1 == 1 {
				if err := s.ApplyGate(gate.X(1 + 2*i)); err != nil {
					t.Fatal(err)
				}
			}
			if tc.b>>uint(i)&1 == 1 {
				if err := s.ApplyGate(gate.X(2 + 2*i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := s.ApplyCircuit(c); err != nil {
			t.Fatal(err)
		}
		got := s.MostLikely()
		sum := tc.a + tc.b
		for i := 0; i < m; i++ {
			if got>>(uint(2*i)+2)&1 != sum>>uint(i)&1 {
				t.Fatalf("a=%d b=%d: b[%d] wrong in basis %b", tc.a, tc.b, i, got)
			}
		}
		carry := sum >> uint(m) & 1
		if got>>uint(2*m+1)&1 != carry {
			t.Fatalf("a=%d b=%d: carry wrong in basis %b", tc.a, tc.b, got)
		}
	}
}

func TestQPEEstimatesPhase(t *testing.T) {
	tq := 6
	phi := 0.25 // exactly representable: peak must be sharp
	c := circuit.QPE(tq, phi, 1<<tq)
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	got := s.MostLikely()
	counting := got & ((1 << uint(tq)) - 1)
	// The inverse-QFT convention in this construction reports the phase in
	// the counting register; accept the exact value or its bit-reversal.
	want := int(phi * float64(int(1)<<uint(tq)))
	rev := 0
	for i := 0; i < tq; i++ {
		if want>>uint(i)&1 == 1 {
			rev |= 1 << uint(tq-1-i)
		}
	}
	if counting != want && counting != rev {
		t.Fatalf("QPE counting register = %d, want %d (or reversed %d)", counting, want, rev)
	}
	if p := s.BasisProbability(got); p < 0.9 {
		t.Fatalf("QPE peak probability = %v", p)
	}
}

func TestDecomposedCircuitsMatchNative(t *testing.T) {
	for _, c := range []*circuit.Circuit{
		circuit.Grover(4, 1),
		circuit.Ising(5, 2),
		circuit.QFT(5),
	} {
		native, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Run(c.Decomposed())
		if err != nil {
			t.Fatal(err)
		}
		if f := native.Fidelity(dec); math.Abs(f-1) > 1e-8 {
			t.Errorf("%s: decomposed fidelity = %v", c.Name, f)
		}
	}
}

func TestProbabilityAndMostLikely(t *testing.T) {
	s := NewState(2)
	if err := s.ApplyGate(gate.X(1)); err != nil {
		t.Fatal(err)
	}
	if p := s.Probability(1); math.Abs(p-1) > eps {
		t.Fatalf("P(q1=1) = %v", p)
	}
	if p := s.Probability(0); p > eps {
		t.Fatalf("P(q0=1) = %v", p)
	}
	if s.MostLikely() != 2 {
		t.Fatalf("MostLikely = %d", s.MostLikely())
	}
}

func TestInnerProductAndFidelity(t *testing.T) {
	a := NewState(3)
	b := NewState(3)
	if math.Abs(a.Fidelity(b)-1) > eps {
		t.Fatal("identical states fidelity != 1")
	}
	if err := b.ApplyGate(gate.X(0)); err != nil {
		t.Fatal(err)
	}
	if a.Fidelity(b) > eps {
		t.Fatal("orthogonal states fidelity != 0")
	}
}

func TestQuickNormPreservation(t *testing.T) {
	f := func(seed int64) bool {
		c := circuit.Random(6, 30, seed)
		s, err := Run(c)
		if err != nil {
			return false
		}
		return math.Abs(s.Norm()-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnitarityViaRandomStates(t *testing.T) {
	// Applying any catalog gate must preserve inner products.
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		gates := []gate.Gate{
			gate.H(rng.Intn(4)), gate.RX(rng.Float64(), rng.Intn(4)),
			gate.CP(rng.Float64(), 0, 3), gate.CCX(1, 3, 0), gate.SWAP(2, 0),
		}
		g := gates[int(pick)%len(gates)]
		a := randomState(4, seed)
		b := randomState(4, seed+1)
		ipBefore := a.InnerProduct(b)
		if a.ApplyGate(g) != nil || b.ApplyGate(g) != nil {
			return false
		}
		return cmplx.Abs(a.InnerProduct(b)-ipBefore) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOpsCounter(t *testing.T) {
	s := NewState(2)
	_ = s.ApplyGate(gate.H(0))
	_ = s.ApplyGate(gate.CX(0, 1))
	if s.Ops != 2 {
		t.Fatalf("Ops = %d", s.Ops)
	}
}
