package sv

import (
	"math"
	"math/rand"
	"testing"

	"hisvsim/internal/circuit"
	"hisvsim/internal/gate"
)

func TestSampleDeterministicState(t *testing.T) {
	s := NewState(3)
	_ = s.ApplyGate(gate.X(1))
	rng := rand.New(rand.NewSource(1))
	for _, x := range s.Sample(50, rng) {
		if x != 2 {
			t.Fatalf("sampled %d from |010⟩", x)
		}
	}
}

func TestSampleBellDistribution(t *testing.T) {
	s := NewState(2)
	_ = s.ApplyGate(gate.H(0))
	_ = s.ApplyGate(gate.CX(0, 1))
	rng := rand.New(rand.NewSource(7))
	counts := s.Counts(4000, rng)
	if counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("impossible outcomes sampled: %v", counts)
	}
	frac := float64(counts[0]) / 4000
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("P(00) sampled as %v", frac)
	}
}

func TestMarginal(t *testing.T) {
	s := NewState(3)
	_ = s.ApplyGate(gate.H(0))
	_ = s.ApplyGate(gate.X(2))
	m := s.Marginal([]int{0})
	if math.Abs(m[0]-0.5) > 1e-12 || math.Abs(m[1]-0.5) > 1e-12 {
		t.Fatalf("marginal(q0) = %v", m)
	}
	m = s.Marginal([]int{2, 0})
	// q2=1 always; q0 uniform. Index bit0 = q2, bit1 = q0.
	if math.Abs(m[0b01]-0.5) > 1e-12 || math.Abs(m[0b11]-0.5) > 1e-12 {
		t.Fatalf("marginal(q2,q0) = %v", m)
	}
	total := 0.0
	for _, p := range m {
		total += p
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("marginal not normalized: %v", total)
	}
}

func TestMarginalPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewState(2).Marginal([]int{5})
}

func TestExpectationZ(t *testing.T) {
	s := NewState(2)
	if e := s.ExpectationZ(0); math.Abs(e-1) > 1e-12 {
		t.Fatalf("⟨Z⟩|0⟩ = %v", e)
	}
	_ = s.ApplyGate(gate.X(0))
	if e := s.ExpectationZ(0); math.Abs(e+1) > 1e-12 {
		t.Fatalf("⟨Z⟩|1⟩ = %v", e)
	}
	_ = s.ApplyGate(gate.H(1))
	if e := s.ExpectationZ(1); math.Abs(e) > 1e-12 {
		t.Fatalf("⟨Z⟩|+⟩ = %v", e)
	}
}

func TestExpectationZZBell(t *testing.T) {
	s := NewState(2)
	_ = s.ApplyGate(gate.H(0))
	_ = s.ApplyGate(gate.CX(0, 1))
	if e := s.ExpectationZZ(0, 1); math.Abs(e-1) > 1e-12 {
		t.Fatalf("⟨ZZ⟩ Bell = %v", e)
	}
	if e := s.ExpectationZ(0); math.Abs(e) > 1e-12 {
		t.Fatalf("⟨Z⟩ Bell = %v", e)
	}
}

func TestExpectationPauliZString(t *testing.T) {
	s := NewState(3)
	_ = s.ApplyGate(gate.X(0))
	_ = s.ApplyGate(gate.X(2))
	// Z0 Z2 on |101⟩: (−1)·(−1) = +1; Z0 Z1 = −1.
	if e := s.ExpectationPauliZString([]int{0, 2}); math.Abs(e-1) > 1e-12 {
		t.Fatalf("⟨Z0Z2⟩ = %v", e)
	}
	if e := s.ExpectationPauliZString([]int{0, 1}); math.Abs(e+1) > 1e-12 {
		t.Fatalf("⟨Z0Z1⟩ = %v", e)
	}
	// Consistency with the pairwise form.
	c := circuit.Random(4, 30, 5)
	st, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if d := st.ExpectationPauliZString([]int{1, 3}) - st.ExpectationZZ(1, 3); math.Abs(d) > 1e-12 {
		t.Fatalf("ZZ forms disagree by %v", d)
	}
}

func TestMarginalEmpty(t *testing.T) {
	s := NewState(3)
	_ = s.ApplyGate(gate.H(0))
	_ = s.ApplyGate(gate.CX(0, 2))
	m := s.Marginal(nil)
	if len(m) != 1 || math.Abs(m[0]-1) > 1e-12 {
		t.Fatalf("empty marginal = %v, want [1]", m)
	}
}

func TestExpectationPauliZStringRepeatedQubits(t *testing.T) {
	s := NewState(3)
	_ = s.ApplyGate(gate.X(0))
	_ = s.ApplyGate(gate.H(1))
	// Z0 Z0 = I: expectation 1 on any state.
	if e := s.ExpectationPauliZString([]int{0, 0}); math.Abs(e-1) > 1e-12 {
		t.Fatalf("⟨Z0Z0⟩ = %v, want 1", e)
	}
	// Z0 Z0 Z2 = Z2: |q2=0⟩ gives +1.
	if e := s.ExpectationPauliZString([]int{0, 0, 2}); math.Abs(e-1) > 1e-12 {
		t.Fatalf("⟨Z0Z0Z2⟩ = %v, want ⟨Z2⟩ = 1", e)
	}
	// Z0 Z2 Z0 Z2 = I even with interleaved repeats.
	if e := s.ExpectationPauliZString([]int{0, 2, 0, 2}); math.Abs(e-1) > 1e-12 {
		t.Fatalf("⟨Z0Z2Z0Z2⟩ = %v, want 1", e)
	}
	// Odd repetition count reduces to a single Z.
	got := s.ExpectationPauliZString([]int{0, 0, 0})
	want := s.ExpectationZ(0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("⟨Z0³⟩ = %v, want ⟨Z0⟩ = %v", got, want)
	}
	// Empty string is the identity.
	if e := s.ExpectationPauliZString(nil); math.Abs(e-1) > 1e-12 {
		t.Fatalf("⟨I⟩ = %v, want 1", e)
	}
}

func TestSampleSeededDeterminism(t *testing.T) {
	c := circuit.Random(6, 40, 11)
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	a := s.Sample(200, rand.New(rand.NewSource(42)))
	b := s.Sample(200, rand.New(rand.NewSource(42)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded Sample diverged at shot %d: %d vs %d", i, a[i], b[i])
		}
	}
	ca := s.Counts(500, rand.New(rand.NewSource(9)))
	cb := s.Counts(500, rand.New(rand.NewSource(9)))
	if len(ca) != len(cb) {
		t.Fatalf("seeded Counts histograms differ: %v vs %v", ca, cb)
	}
	for k, v := range ca {
		if cb[k] != v {
			t.Fatalf("seeded Counts differ at basis %d: %d vs %d", k, v, cb[k])
		}
	}
	if other := s.Sample(200, rand.New(rand.NewSource(43)))[0]; other == a[0] && a[0] == a[1] && a[1] == a[2] {
		// Not an error by itself — but a concentrated state makes this vacuous;
		// the random circuit above should spread mass across many outcomes.
		t.Logf("note: different seeds produced identical leading shots")
	}
}

func TestSamplerMatchesStateSample(t *testing.T) {
	c := circuit.Random(7, 60, 3)
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSampler(s)
	if sp.NumQubits() != 7 {
		t.Fatalf("sampler width %d", sp.NumQubits())
	}
	direct := s.Sample(300, rand.New(rand.NewSource(5)))
	reused := sp.Sample(300, rand.New(rand.NewSource(5)))
	for i := range direct {
		if direct[i] != reused[i] {
			t.Fatalf("sampler diverged from State.Sample at shot %d", i)
		}
	}
	// The sampler is a snapshot: mutating the state afterwards must not
	// change what it draws.
	_ = s.ApplyGate(gate.X(0))
	after := sp.Sample(300, rand.New(rand.NewSource(5)))
	for i := range reused {
		if after[i] != reused[i] {
			t.Fatalf("sampler aliased the mutated state at shot %d", i)
		}
	}
}

func TestNormalize(t *testing.T) {
	s := NewState(2)
	for i := range s.Amps {
		s.Amps[i] = 2
	}
	pre := s.Normalize()
	if math.Abs(pre-4) > 1e-12 {
		t.Fatalf("pre-norm = %v", pre)
	}
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Fatalf("post-norm = %v", s.Norm())
	}
	// Zero state: no-op.
	z := &State{N: 1, Amps: make([]complex128, 2)}
	if z.Normalize() != 0 {
		t.Fatal("zero state normalized")
	}
}

func TestOptimizePreservesState(t *testing.T) {
	// Cross-module property: circuit.Optimize must preserve the simulated
	// state exactly, including on circuits with injected redundancy.
	for seed := int64(0); seed < 8; seed++ {
		c := circuit.Random(6, 50, seed)
		c.Append(gate.H(2), gate.H(2), gate.RZ(0.9, 0), gate.RZ(-0.9, 0),
			gate.CX(1, 3), gate.CX(1, 3))
		opt := circuit.Optimize(c)
		a, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		if f := a.Fidelity(b); math.Abs(f-1) > 1e-8 {
			t.Fatalf("seed %d: optimize changed the state, fidelity %v", seed, f)
		}
	}
}
