package sv

import (
	"fmt"
	"strings"

	"hisvsim/internal/gate"
)

// This file generalizes the Z-only ExpectationPauliZString to arbitrary
// Pauli strings (Hamiltonian terms). The kernel is the fused form of the
// textbook basis-change recipe — rotate every X qubit by H and every Y
// qubit by H·S† so the string becomes Z-only, then measure — folded into a
// single non-mutating sweep: conjugating P = ∏σ through the basis change
// analytically gives
//
//	⟨ψ|P|ψ⟩ = i^{#Y} · Σ_i (−1)^{popcount(i & (maskY|maskZ))} · ψ*_{i⊕(maskX|maskY)} · ψ_i
//
// because X|b⟩ = |¬b⟩, Y|b⟩ = i(−1)^b|¬b⟩ and Z|b⟩ = (−1)^b|b⟩. One pass,
// no scratch state, safe on states shared read-only (the service cache).
// BasisChangeGates exposes the unfused rotation for differential tests.

// PauliString is one weighted Pauli operator ∏ σ_{Ops[k]} on Qubits[k]
// (a Hamiltonian term). Ops holds one letter per listed qubit: 'I', 'X',
// 'Y' or 'Z' (lower case accepted).
type PauliString struct {
	// Coeff scales the expectation value; 0 is treated as 1 so that the
	// zero value of the field means "unweighted".
	Coeff float64
	// Ops spells the operator, e.g. "XZY"; Qubits lists the qubit each
	// letter acts on (same length).
	Ops    string
	Qubits []int
}

// Coefficient returns Coeff with the 0-means-1 default applied.
func (p PauliString) Coefficient() float64 {
	if p.Coeff == 0 {
		return 1
	}
	return p.Coeff
}

// Validate checks the string against an n-qubit register: matching
// lengths, known letters, in-range qubits. A qubit may repeat only when
// every occurrence is 'Z' (Z² = I, the legacy Z-string XOR semantics);
// repeats under X or Y would silently collapse to phases, so they are
// rejected.
func (p PauliString) Validate(n int) error {
	if len(p.Ops) != len(p.Qubits) {
		return fmt.Errorf("sv: pauli string %q has %d ops for %d qubits", p.Ops, len(p.Ops), len(p.Qubits))
	}
	seen := map[int]byte{}
	for k, q := range p.Qubits {
		if q < 0 || q >= n {
			return fmt.Errorf("sv: pauli qubit %d out of range [0,%d)", q, n)
		}
		op := upperPauli(p.Ops[k])
		switch op {
		case 'I', 'X', 'Y', 'Z':
		default:
			return fmt.Errorf("sv: unknown pauli %q in %q (want I, X, Y or Z)", string(p.Ops[k]), p.Ops)
		}
		if prev, ok := seen[q]; ok && (prev != 'Z' || op != 'Z') {
			return fmt.Errorf("sv: qubit %d repeats in pauli string %q (only Z repeats cancel)", q, p.Ops)
		}
		seen[q] = op
	}
	return nil
}

// String renders e.g. "-0.5·X0 Z2".
func (p PauliString) String() string {
	var b strings.Builder
	c := p.Coefficient()
	if c != 1 {
		fmt.Fprintf(&b, "%g·", c)
	}
	if len(p.Qubits) == 0 {
		b.WriteString("I")
	}
	for k, q := range p.Qubits {
		if k > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%c%d", upperPauli(p.Ops[k]), q)
	}
	return b.String()
}

func upperPauli(c byte) byte {
	if 'a' <= c && c <= 'z' {
		return c - 'a' + 'A'
	}
	return c
}

// Masks folds the string into the bit-mask kernel form — flip (X and Y
// qubits), sign (Y and Z qubits, Z repeats XOR-canceling) and the Y count
// fixing the i^{numY} phase — panicking on malformed input (unknown
// letters, or a qubit repeated under anything but Z — the XOR folding would
// silently compute a different operator). Both the state-vector expectation
// kernel and the density-matrix Tr(ρP) sweep consume this form.
func (p PauliString) Masks() (flip, sign, numY int) {
	var touched, zOnly int
	for k, q := range p.Qubits {
		bit := 1 << uint(q)
		op := upperPauli(p.Ops[k])
		if touched&bit != 0 && (zOnly&bit == 0 || op != 'Z') {
			panic(fmt.Sprintf("sv: qubit %d repeats in pauli string %q (only Z repeats cancel)", q, p.Ops))
		}
		touched |= bit
		switch op {
		case 'I':
		case 'X':
			flip |= bit
		case 'Y':
			flip |= bit
			sign |= bit
			numY++
		case 'Z':
			sign ^= bit
			zOnly |= bit
		default:
			panic(fmt.Sprintf("sv: unknown pauli %q in %q (want I, X, Y or Z)", string(p.Ops[k]), p.Ops))
		}
	}
	return flip, sign, numY
}

// BasisChangeGates returns the unfused basis-change form of the string:
// the rotation gates that map it to a Z-only string (H for X, S†·H for Y)
// and the qubits that Z-string acts on afterwards. Applying the gates to a
// state and measuring ExpectationPauliZString over the returned qubits
// equals ExpectationPauli on the original state — the differential
// reference for the fused kernel.
func (p PauliString) BasisChangeGates() ([]gate.Gate, []int) {
	var gs []gate.Gate
	var zq []int
	for k, q := range p.Qubits {
		switch upperPauli(p.Ops[k]) {
		case 'X':
			gs = append(gs, gate.H(q))
			zq = append(zq, q)
		case 'Y':
			gs = append(gs, gate.Sdg(q), gate.H(q))
			zq = append(zq, q)
		case 'Z':
			zq = append(zq, q)
		}
	}
	return gs, zq
}

// ExpectationPauli returns ⟨∏ σ⟩ for the unweighted string (ops letter k
// acting on qubits[k]); see ExpectationPauliString for the weighted form.
// It panics on malformed strings, like the other kernels; callers taking
// untrusted input validate with PauliString.Validate first.
func (s *State) ExpectationPauli(ops string, qubits []int) float64 {
	return s.ExpectationPauliString(PauliString{Ops: ops, Qubits: qubits})
}

// ExpectationPauliString returns Coeff·⟨∏ σ⟩ without mutating or copying
// the state. Z-only strings delegate to ExpectationPauliZString, keeping
// them bit-identical with the legacy Z-string read-out.
func (s *State) ExpectationPauliString(p PauliString) float64 {
	if len(p.Ops) != len(p.Qubits) {
		panic(fmt.Sprintf("sv: pauli string %q has %d ops for %d qubits", p.Ops, len(p.Ops), len(p.Qubits)))
	}
	for _, q := range p.Qubits {
		if q < 0 || q >= s.N {
			panic(fmt.Sprintf("sv: pauli qubit %d out of range [0,%d)", q, s.N))
		}
	}
	flip, sign, numY := p.Masks()
	if flip == 0 {
		// Z/I only: the established XOR-mask kernel (bit-identical with the
		// legacy read-out path).
		var zq []int
		for k, q := range p.Qubits {
			if upperPauli(p.Ops[k]) == 'Z' {
				zq = append(zq, q)
			}
		}
		return p.Coefficient() * s.ExpectationPauliZString(zq)
	}
	// Each index pairs with its flip partner j = i⊕flip, and the two terms
	// are Hermitian conjugates up to the sign relation s(j) = (−1)^{numY}
	// s(i): their sum collapses to 2·Re (numY even) or ±2·Im (numY odd) of
	// one term. Sweeping only i < j halves the work; the global i^{numY}
	// phase folds into the ±2 factor, and the imaginary part (pure rounding
	// noise for a Hermitian P) is never materialized.
	useIm := numY%2 == 1
	acc := 0.0
	for i, a := range s.Amps {
		j := i ^ flip
		if j < i {
			continue
		}
		b := s.Amps[j]
		// conj(b) · a
		v := real(b)*real(a) + imag(b)*imag(a)
		if useIm {
			v = real(b)*imag(a) - imag(b)*real(a)
		}
		if parity(i & sign) {
			acc -= v
		} else {
			acc += v
		}
	}
	factor := 2.0
	if m := numY % 4; m == 1 || m == 2 {
		factor = -2
	}
	return p.Coefficient() * factor * acc
}
