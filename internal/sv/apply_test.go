package sv

import (
	"math"
	"testing"

	"hisvsim/internal/gate"
)

// randomState is shared with sv_test.go.

func TestApplyMatrix1NonUnitary(t *testing.T) {
	// Amplitude-damping K1 = [[0, √γ], [0, 0]] maps |1⟩ → √γ|0⟩.
	g := 0.36
	k1 := gate.NewMatrix(1)
	k1.Set(0, 1, complex(math.Sqrt(g), 0))
	s := NewState(1)
	s.Amps[0], s.Amps[1] = 0, 1 // |1⟩
	s.ApplyMatrix1(0, k1)
	if math.Abs(real(s.Amps[0])-math.Sqrt(g)) > 1e-12 || s.Amps[1] != 0 {
		t.Fatalf("K1|1⟩ = %v, want (√γ, 0)", s.Amps)
	}
}

func TestKraus1Norm2MatchesApply(t *testing.T) {
	// ‖Kψ‖² computed in place must equal the norm² after actually applying K.
	g := 0.25
	k0 := gate.NewMatrix(1)
	k0.Set(0, 0, 1)
	k0.Set(1, 1, complex(math.Sqrt(1-g), 0))
	for _, q := range []int{0, 2, 4} {
		s := randomState(5, int64(q)+1)
		want := func() float64 {
			c := s.Clone()
			c.ApplyMatrix1(q, k0)
			n := c.Norm()
			return n * n
		}()
		got := s.Kraus1Norm2(q, k0)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("qubit %d: Kraus1Norm2 = %.15f, applied norm² = %.15f", q, got, want)
		}
	}
	// Unitary operators have branch probability 1.
	s := randomState(4, 9)
	if p := s.Kraus1Norm2(1, gate.PauliMatrix(gate.PauliY)); math.Abs(p-1) > 1e-12 {
		t.Fatalf("unitary branch probability %.15f, want 1", p)
	}
}

func TestKraus1Norm2Parallel(t *testing.T) {
	// The chunked parallel reduction must agree with the serial path.
	s := randomState(16, 3)
	g := 0.1
	k := gate.NewMatrix(1)
	k.Set(0, 0, 1)
	k.Set(1, 1, complex(math.Sqrt(1-g), 0))
	s.Workers = 1
	serial := s.Kraus1Norm2(7, k)
	s.Workers = 4
	parallel := s.Kraus1Norm2(7, k)
	if math.Abs(serial-parallel) > 1e-12 {
		t.Fatalf("serial %.15f vs parallel %.15f", serial, parallel)
	}
}

func TestScaleRenormalizes(t *testing.T) {
	s := randomState(6, 11)
	s.Scale(complex(0.5, 0))
	if math.Abs(s.Norm()-0.5) > 1e-12 {
		t.Fatalf("norm after Scale(0.5) = %g", s.Norm())
	}
	s.Scale(complex(2, 0))
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Fatalf("norm after rescale = %g", s.Norm())
	}
}

func TestApplyMatrix1MatchesGate(t *testing.T) {
	// For unitary matrices ApplyMatrix1 must agree with the named-gate path.
	s1 := randomState(3, 21)
	s2 := s1.Clone()
	if err := s1.ApplyGate(gate.H(1)); err != nil {
		t.Fatal(err)
	}
	s2.ApplyMatrix1(1, gate.H(1).BaseMatrix())
	if !s1.EqualTol(s2, 1e-12) {
		t.Fatal("ApplyMatrix1 disagrees with ApplyGate for H")
	}
}
