package sv

import (
	"math"
	"testing"
)

// pauliCases is a spread of X/Y/Z(/I) mixes over an 8-qubit register.
var pauliCases = []PauliString{
	{Ops: "Z", Qubits: []int{0}},
	{Ops: "X", Qubits: []int{3}},
	{Ops: "Y", Qubits: []int{5}},
	{Ops: "XX", Qubits: []int{0, 1}},
	{Ops: "XY", Qubits: []int{2, 6}},
	{Ops: "YY", Qubits: []int{1, 4}},
	{Ops: "ZX", Qubits: []int{7, 0}},
	{Ops: "XYZ", Qubits: []int{0, 3, 5}},
	{Ops: "YXZI", Qubits: []int{6, 2, 1, 4}},
	{Coeff: -0.75, Ops: "XZYX", Qubits: []int{1, 2, 3, 4}},
	{Ops: "ZZ", Qubits: []int{2, 2}}, // legacy Z repeat: cancels to identity
}

// TestExpectationPauliMatchesBasisChange checks the fused kernel against
// the unfused reference: apply the basis-change gates to a clone, then
// measure the resulting Z string.
func TestExpectationPauliMatchesBasisChange(t *testing.T) {
	st := randomState(8, 42)
	for _, p := range pauliCases {
		got := st.ExpectationPauliString(p)

		ref := st.Clone()
		gs, zq := p.BasisChangeGates()
		if err := ref.ApplyGates(gs); err != nil {
			t.Fatalf("%v: basis change: %v", p, err)
		}
		want := p.Coefficient() * ref.ExpectationPauliZString(zq)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%v: kernel %.12f, basis-change reference %.12f", p, got, want)
		}
	}
}

// TestExpectationPauliZOnlyDelegates pins the Z-only path to the legacy
// kernel bit-for-bit (the service shims rely on this).
func TestExpectationPauliZOnlyDelegates(t *testing.T) {
	st := randomState(7, 7)
	for _, qs := range [][]int{{0}, {1, 4}, {2, 2, 5}, {}} {
		ops := make([]byte, len(qs))
		for i := range ops {
			ops[i] = 'Z'
		}
		if got, want := st.ExpectationPauli(string(ops), qs), st.ExpectationPauliZString(qs); got != want {
			t.Errorf("qubits %v: ExpectationPauli %v != ZString %v", qs, got, want)
		}
	}
}

// TestExpectationPauliKnownStates checks hand-computable eigenstates.
func TestExpectationPauliKnownStates(t *testing.T) {
	// |+⟩ on qubit 0 of 2: ⟨X0⟩ = 1, ⟨Y0⟩ = 0, ⟨Z0⟩ = 0.
	plus := NewState(2)
	plus.Amps[0] = complex(1/math.Sqrt2, 0)
	plus.Amps[1] = complex(1/math.Sqrt2, 0)
	// |+i⟩ on qubit 1 of 2: ⟨Y1⟩ = 1.
	yplus := NewState(2)
	yplus.Amps[0] = complex(1/math.Sqrt2, 0)
	yplus.Amps[2] = complex(0, 1/math.Sqrt2)
	checks := []struct {
		st   *State
		p    PauliString
		want float64
	}{
		{plus, PauliString{Ops: "X", Qubits: []int{0}}, 1},
		{plus, PauliString{Ops: "Y", Qubits: []int{0}}, 0},
		{plus, PauliString{Ops: "Z", Qubits: []int{0}}, 0},
		{plus, PauliString{Coeff: 2.5, Ops: "X", Qubits: []int{0}}, 2.5},
		{yplus, PauliString{Ops: "Y", Qubits: []int{1}}, 1},
		{yplus, PauliString{Ops: "Z", Qubits: []int{0}}, 1},
	}
	for _, c := range checks {
		if got := c.st.ExpectationPauliString(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v: got %.12f, want %.12f", c.p, got, c.want)
		}
	}
}

func TestPauliStringValidate(t *testing.T) {
	bad := []PauliString{
		{Ops: "XZ", Qubits: []int{0}},         // length mismatch
		{Ops: "Q", Qubits: []int{0}},          // unknown letter
		{Ops: "X", Qubits: []int{9}},          // out of range
		{Ops: "XX", Qubits: []int{1, 1}},      // X repeat
		{Ops: "ZY", Qubits: []int{2, 2}},      // mixed repeat
		{Ops: "X", Qubits: []int{-1}},         // negative qubit
		{Ops: "ZZZ", Qubits: []int{0, 1, -2}}, // negative qubit later
	}
	for _, p := range bad {
		if err := p.Validate(4); err == nil {
			t.Errorf("%v: validated but should not", p)
		}
	}
	good := []PauliString{
		{Ops: "xyz", Qubits: []int{0, 1, 2}}, // lower case accepted
		{Ops: "ZZ", Qubits: []int{3, 3}},     // Z repeat cancels
		{Ops: "", Qubits: nil},               // identity
		{Ops: "I", Qubits: []int{1}},
	}
	for _, p := range good {
		if err := p.Validate(4); err != nil {
			t.Errorf("%v: unexpected error %v", p, err)
		}
	}
}

// TestExpectationPauliPanicsOnMalformed pins the kernel's documented
// panic contract: malformed strings must never silently compute a
// different operator.
func TestExpectationPauliPanicsOnMalformed(t *testing.T) {
	st := randomState(3, 1)
	for _, p := range []PauliString{
		{Ops: "XX", Qubits: []int{1, 1}}, // X repeat would XOR-cancel the flip
		{Ops: "ZY", Qubits: []int{2, 2}},
		{Ops: "W", Qubits: []int{0}}, // unknown letter
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: kernel did not panic", p)
				}
			}()
			st.ExpectationPauliString(p)
		}()
	}
}
