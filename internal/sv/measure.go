package sv

import (
	"fmt"
	"math"
	"math/rand"
)

// Sample draws n basis-state samples from the state's Born distribution
// using the given RNG. It builds a one-shot Sampler (single CDF pass, then
// O(log N) per draw); callers sampling the same state repeatedly should hold
// a NewSampler and reuse it.
func (s *State) Sample(n int, rng *rand.Rand) []int {
	return NewSampler(s).Sample(n, rng)
}

// Counts samples n shots and returns a basis-index histogram.
func (s *State) Counts(n int, rng *rand.Rand) map[int]int {
	out := map[int]int{}
	for _, x := range s.Sample(n, rng) {
		out[x]++
	}
	return out
}

// Marginal returns the probability distribution over the given qubits
// (traced over the rest), indexed by the little-endian value of the listed
// qubits (qubits[0] = bit 0 of the result index). An empty qubit list
// traces out everything: the result is the one-element distribution {1}.
func (s *State) Marginal(qubits []int) []float64 {
	for _, q := range qubits {
		if q < 0 || q >= s.N {
			panic(fmt.Sprintf("sv: marginal qubit %d out of range", q))
		}
	}
	out := make([]float64, 1<<uint(len(qubits)))
	for i, a := range s.Amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p == 0 {
			continue
		}
		idx := 0
		for j, q := range qubits {
			if i>>uint(q)&1 == 1 {
				idx |= 1 << uint(j)
			}
		}
		out[idx] += p
	}
	return out
}

// ExpectationZ returns ⟨Z_q⟩ = P(q=0) − P(q=1).
func (s *State) ExpectationZ(q int) float64 {
	return 1 - 2*s.Probability(q)
}

// ExpectationZZ returns ⟨Z_a Z_b⟩.
func (s *State) ExpectationZZ(a, b int) float64 {
	if a < 0 || a >= s.N || b < 0 || b >= s.N {
		panic("sv: qubit out of range")
	}
	e := 0.0
	ba, bb := 1<<uint(a), 1<<uint(b)
	for i, amp := range s.Amps {
		p := real(amp)*real(amp) + imag(amp)*imag(amp)
		sign := 1.0
		if (i&ba != 0) != (i&bb != 0) {
			sign = -1
		}
		e += sign * p
	}
	return e
}

// ExpectationPauliZString returns ⟨∏ Z_q⟩ for the listed qubits. A qubit
// listed an even number of times cancels (Z² = I), so e.g. {0,0} is the
// identity and {0,0,1} equals {1}.
func (s *State) ExpectationPauliZString(qubits []int) float64 {
	var mask int
	for _, q := range qubits {
		if q < 0 || q >= s.N {
			panic("sv: qubit out of range")
		}
		mask ^= 1 << uint(q)
	}
	e := 0.0
	for i, amp := range s.Amps {
		p := real(amp)*real(amp) + imag(amp)*imag(amp)
		if parity(i & mask) {
			e -= p
		} else {
			e += p
		}
	}
	return e
}

func parity(x int) bool {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n%2 == 1
}

// Normalize rescales the amplitudes to unit norm (useful after numerical
// drift in long circuits); returns the pre-normalization norm.
func (s *State) Normalize() float64 {
	n := s.Norm()
	if n == 0 || math.Abs(n-1) < 1e-15 {
		return n
	}
	inv := complex(1/n, 0)
	for i := range s.Amps {
		s.Amps[i] *= inv
	}
	return n
}
