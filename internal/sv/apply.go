package sv

import (
	"fmt"
	"sync"

	"hisvsim/internal/gate"
)

// This file holds the raw-matrix entry points the noise layer needs: applying
// an arbitrary (not necessarily unitary) operator to one qubit, computing the
// squared norm such an application would produce without mutating the state,
// and rescaling amplitudes. Together they implement exact norm-weighted Kraus
// selection: p_i = ‖K_i ψ‖², apply the chosen K_i, then scale by 1/√p_i.

// ApplyMatrix1 applies an arbitrary 2×2 matrix to qubit t. Unlike ApplyGate
// it does not require a named gate and does not assume unitarity, so the
// state's norm may change (Kraus operators, projectors).
func (s *State) ApplyMatrix1(t int, m gate.Matrix) {
	if t < 0 || t >= s.N {
		panic(fmt.Sprintf("sv: qubit %d out of range [0,%d)", t, s.N))
	}
	if m.K != 1 {
		panic(fmt.Sprintf("sv: ApplyMatrix1 got a %d-qubit matrix", m.K))
	}
	s.Ops++
	s.apply1(t, 0, m)
}

// Kraus1Norm2 returns ‖Kψ‖² for the 2×2 operator K on qubit t without
// mutating the state — the branch probability of selecting K in a
// trajectory unraveling (1 for unitary K on a normalized state).
func (s *State) Kraus1Norm2(t int, m gate.Matrix) float64 {
	if t < 0 || t >= s.N {
		panic(fmt.Sprintf("sv: qubit %d out of range [0,%d)", t, s.N))
	}
	if m.K != 1 {
		panic(fmt.Sprintf("sv: Kraus1Norm2 got a %d-qubit matrix", m.K))
	}
	m00, m01, m10, m11 := m.At(0, 0), m.At(0, 1), m.At(1, 0), m.At(1, 1)
	tbit := 1 << uint(t)
	half := len(s.Amps) >> 1
	abs2 := func(c complex128) float64 { return real(c)*real(c) + imag(c)*imag(c) }
	sumRange := func(lo, hi int) float64 {
		p := 0.0
		for f := lo; f < hi; f++ {
			i0 := insertBit(f, t)
			a0, a1 := s.Amps[i0], s.Amps[i0|tbit]
			p += abs2(m00*a0+m01*a1) + abs2(m10*a0+m11*a1)
		}
		return p
	}
	// Small states dominate trajectory workloads: serial below the same
	// threshold the sweep kernels use. The parallel reduction owns its
	// chunking (it must map chunks to partial slots, which parallelFor's
	// callback contract does not expose).
	w := s.workers()
	if w <= 1 || half < parallelThreshold {
		return sumRange(0, half)
	}
	if w > half {
		w = half
	}
	chunk := (half + w - 1) / w
	partial := make([]float64, (half+chunk-1)/chunk)
	var wg sync.WaitGroup
	for i, lo := 0, 0; lo < half; i, lo = i+1, lo+chunk {
		hi := min(lo+chunk, half)
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			partial[i] = sumRange(lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
	// Fixed chunk-ordered reduction: bit-identical for a given worker count.
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return total
}

// Scale multiplies every amplitude by c (used to renormalize after a Kraus
// application: c = 1/√p).
func (s *State) Scale(c complex128) {
	s.parallelFor(len(s.Amps), func(lo, hi int) {
		amps := s.Amps
		for i := lo; i < hi; i++ {
			amps[i] *= c
		}
	})
}
