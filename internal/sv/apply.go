package sv

import (
	"fmt"
	"sync"

	"hisvsim/internal/gate"
	"hisvsim/internal/prof"
)

// This file holds the raw-matrix entry points the noise layer needs: applying
// an arbitrary (not necessarily unitary) operator to one or more qubits,
// computing the squared norm such an application would produce without
// mutating the state, and rescaling amplitudes. Together they implement exact
// norm-weighted Kraus selection: p_i = ‖K_i ψ‖², apply the chosen K_i, then
// scale by 1/√p_i. The 1-qubit forms keep their dedicated kernels (the hot
// path of single-qubit channels); ApplyMatrixK/KrausKNorm2 generalize both to
// k qubits for correlated multi-qubit channels and the density-matrix engine.

// ApplyMatrix1 applies an arbitrary 2×2 matrix to qubit t. Unlike ApplyGate
// it does not require a named gate and does not assume unitarity, so the
// state's norm may change (Kraus operators, projectors).
func (s *State) ApplyMatrix1(t int, m gate.Matrix) {
	if t < 0 || t >= s.N {
		panic(fmt.Sprintf("sv: qubit %d out of range [0,%d)", t, s.N))
	}
	if m.K != 1 {
		panic(fmt.Sprintf("sv: ApplyMatrix1 got a %d-qubit matrix", m.K))
	}
	s.Ops++
	t0 := s.profStart()
	s.apply1(t, 0, m)
	s.profRecord(prof.Kraus, 1, t0, int64(len(s.Amps)), int64(len(s.Amps))*bytesPerAmpRW, 0)
}

// Kraus1Norm2 returns ‖Kψ‖² for the 2×2 operator K on qubit t without
// mutating the state — the branch probability of selecting K in a
// trajectory unraveling (1 for unitary K on a normalized state).
func (s *State) Kraus1Norm2(t int, m gate.Matrix) float64 {
	if t < 0 || t >= s.N {
		panic(fmt.Sprintf("sv: qubit %d out of range [0,%d)", t, s.N))
	}
	if m.K != 1 {
		panic(fmt.Sprintf("sv: Kraus1Norm2 got a %d-qubit matrix", m.K))
	}
	t0 := s.profStart()
	m00, m01, m10, m11 := m.At(0, 0), m.At(0, 1), m.At(1, 0), m.At(1, 1)
	tbit := 1 << uint(t)
	half := len(s.Amps) >> 1
	abs2 := func(c complex128) float64 { return real(c)*real(c) + imag(c)*imag(c) }
	sumRange := func(lo, hi int) float64 {
		p := 0.0
		for f := lo; f < hi; f++ {
			i0 := insertBit(f, t)
			a0, a1 := s.Amps[i0], s.Amps[i0|tbit]
			p += abs2(m00*a0+m01*a1) + abs2(m10*a0+m11*a1)
		}
		return p
	}
	// Small states dominate trajectory workloads: serial below the same
	// threshold the sweep kernels use. The parallel reduction owns its
	// chunking (it must map chunks to partial slots, which parallelFor's
	// callback contract does not expose).
	w := s.workers()
	if w <= 1 || half < parallelThreshold {
		p := sumRange(0, half)
		s.profRecord(prof.Kraus, 1, t0, int64(len(s.Amps)), int64(len(s.Amps))*bytesPerAmpRead, 0)
		return p
	}
	if w > half {
		w = half
	}
	chunk := (half + w - 1) / w
	partial := make([]float64, (half+chunk-1)/chunk)
	var wg sync.WaitGroup
	for i, lo := 0, 0; lo < half; i, lo = i+1, lo+chunk {
		hi := min(lo+chunk, half)
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			partial[i] = sumRange(lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
	// Fixed chunk-ordered reduction: bit-identical for a given worker count.
	total := 0.0
	for _, p := range partial {
		total += p
	}
	s.profRecord(prof.Kraus, 1, t0, int64(len(s.Amps)), int64(len(s.Amps))*bytesPerAmpRead, 1)
	return total
}

// checkTargets validates a k-qubit raw-matrix application: matching matrix
// arity, in-range and pairwise-distinct targets.
func (s *State) checkTargets(name string, targets []int, m gate.Matrix) {
	if m.K != len(targets) {
		panic(fmt.Sprintf("sv: %s got a %d-qubit matrix for %d targets", name, m.K, len(targets)))
	}
	var mask int
	for _, t := range targets {
		if t < 0 || t >= s.N {
			panic(fmt.Sprintf("sv: qubit %d out of range [0,%d)", t, s.N))
		}
		if mask&(1<<uint(t)) != 0 {
			panic(fmt.Sprintf("sv: %s target qubit %d repeats", name, t))
		}
		mask |= 1 << uint(t)
	}
}

// ApplyMatrixK applies an arbitrary 2^k×2^k matrix to the listed target
// qubits (targets[j] is bit j of the matrix index, little-endian; the
// targets need not be sorted). Like ApplyMatrix1 it assumes nothing about
// unitarity, so Kraus operators and superoperators apply through it.
func (s *State) ApplyMatrixK(targets []int, m gate.Matrix) {
	s.checkTargets("ApplyMatrixK", targets, m)
	s.Ops++
	t0 := s.profStart()
	if m.K == 1 {
		s.apply1(targets[0], 0, m)
		s.profRecord(prof.Kraus, 1, t0, int64(len(s.Amps)), int64(len(s.Amps))*bytesPerAmpRW, 0)
		return
	}
	s.applyK(targets, 0, m)
	s.profRecord(prof.Kraus, len(targets), t0, int64(len(s.Amps)),
		int64(len(s.Amps))*bytesPerAmpRW, 2*s.sweepChunks(1<<uint(s.N-len(targets))))
}

// ApplyControlledMatrixK is ApplyMatrixK with structural control qubits:
// the matrix acts on the targets only where every listed control bit is 1
// (controls are never materialized into a bigger matrix, exactly like
// ApplyGate). The density-matrix engine uses it to apply the conjugated
// base matrix of a controlled gate on the bra index bits.
func (s *State) ApplyControlledMatrixK(targets, controls []int, m gate.Matrix) {
	s.checkTargets("ApplyControlledMatrixK", targets, m)
	var ctrlMask int
	for _, c := range controls {
		if c < 0 || c >= s.N {
			panic(fmt.Sprintf("sv: control qubit %d out of range [0,%d)", c, s.N))
		}
		ctrlMask |= 1 << uint(c)
	}
	for _, t := range targets {
		if ctrlMask&(1<<uint(t)) != 0 {
			panic(fmt.Sprintf("sv: qubit %d is both control and target", t))
		}
	}
	s.Ops++
	t0 := s.profStart()
	if m.K == 1 {
		s.apply1(targets[0], ctrlMask, m)
		s.profRecord(prof.Controlled, 1, t0, int64(len(s.Amps)), int64(len(s.Amps))*bytesPerAmpRW, 0)
		return
	}
	s.applyK(targets, ctrlMask, m)
	s.profRecord(prof.Controlled, len(targets), t0, int64(len(s.Amps)),
		int64(len(s.Amps))*bytesPerAmpRW, 2*s.sweepChunks(1<<uint(s.N-len(targets)-len(controls))))
}

// KrausKNorm2 returns ‖Kψ‖² for the 2^k×2^k operator K on the listed target
// qubits without mutating the state — the branch probability of selecting K
// in a k-qubit trajectory unraveling. It is the k-qubit form of Kraus1Norm2
// (which keeps its dedicated 2×2 kernel for the single-qubit hot path).
func (s *State) KrausKNorm2(targets []int, m gate.Matrix) float64 {
	s.checkTargets("KrausKNorm2", targets, m)
	if m.K == 1 {
		return s.Kraus1Norm2(targets[0], m)
	}
	t0 := s.profStart()
	k := len(targets)
	fixed := append([]int(nil), targets...)
	sortInts(fixed)
	free := s.N - k
	tbits := make([]int, k)
	for j, t := range targets {
		tbits[j] = 1 << uint(t)
	}
	dim := 1 << uint(k)
	sumRange := func(lo, hi int) float64 {
		sub := make([]complex128, dim)
		p := 0.0
		for f := lo; f < hi; f++ {
			base := f
			for _, q := range fixed {
				base = insertBit(base, q)
			}
			for sIdx := 0; sIdx < dim; sIdx++ {
				idx := base
				for j := 0; j < k; j++ {
					if sIdx>>uint(j)&1 == 1 {
						idx |= tbits[j]
					}
				}
				sub[sIdx] = s.Amps[idx]
			}
			for r := 0; r < dim; r++ {
				var acc complex128
				row := m.Data[r*dim : (r+1)*dim]
				for c := 0; c < dim; c++ {
					acc += row[c] * sub[c]
				}
				p += real(acc)*real(acc) + imag(acc)*imag(acc)
			}
		}
		return p
	}
	n := 1 << uint(free)
	w := s.workers()
	if w <= 1 || n < parallelThreshold {
		p := sumRange(0, n)
		s.profRecord(prof.Kraus, k, t0, int64(len(s.Amps)), int64(len(s.Amps))*bytesPerAmpRead, 1)
		return p
	}
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	partial := make([]float64, (n+chunk-1)/chunk)
	var wg sync.WaitGroup
	for i, lo := 0, 0; lo < n; i, lo = i+1, lo+chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			partial[i] = sumRange(lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
	total := 0.0
	for _, p := range partial {
		total += p
	}
	s.profRecord(prof.Kraus, k, t0, int64(len(s.Amps)), int64(len(s.Amps))*bytesPerAmpRead,
		1+s.sweepChunks(n))
	return total
}

// Scale multiplies every amplitude by c (used to renormalize after a Kraus
// application: c = 1/√p).
func (s *State) Scale(c complex128) {
	t0 := s.profStart()
	s.parallelFor(len(s.Amps), func(lo, hi int) {
		amps := s.Amps
		for i := lo; i < hi; i++ {
			amps[i] *= c
		}
	})
	s.profRecord(prof.Kraus, 0, t0, int64(len(s.Amps)), int64(len(s.Amps))*bytesPerAmpRW, 0)
}
