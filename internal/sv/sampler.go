package sv

import (
	"math/rand"
	"sort"
)

// Sampler draws basis-state samples from a snapshot of a state's Born
// distribution. The cumulative distribution is built once at construction
// (one O(2^n) pass, no copy of the amplitudes) and every subsequent draw is
// O(log 2^n), so a cached state can serve many independent shot requests at
// sampling cost only. A Sampler is immutable after construction: concurrent
// Sample/Counts calls with distinct RNGs are safe.
type Sampler struct {
	n     int
	cdf   []float64
	total float64
}

// NewSampler snapshots the state's distribution. Later mutation of the
// state does not affect the sampler (the CDF is derived, not aliased).
func NewSampler(s *State) *Sampler {
	cdf := make([]float64, len(s.Amps))
	acc := 0.0
	for i, a := range s.Amps {
		acc += real(a)*real(a) + imag(a)*imag(a)
		cdf[i] = acc
	}
	return &Sampler{n: s.N, cdf: cdf, total: acc}
}

// NewSamplerFromProbs builds a sampler over an explicit probability vector
// of length 2^n (not necessarily normalized — draws scale by the total,
// exactly like NewSampler's Born weights). The density-matrix engine feeds
// it diag(ρ), so both engines share one inverse-CDF draw and a given seed
// produces the same shot stream for the same distribution.
func NewSamplerFromProbs(n int, probs []float64) *Sampler {
	cdf := make([]float64, len(probs))
	acc := 0.0
	for i, p := range probs {
		if p > 0 {
			acc += p
		}
		cdf[i] = acc
	}
	return &Sampler{n: n, cdf: cdf, total: acc}
}

// NumQubits returns the register width the sampler was built over.
func (sp *Sampler) NumQubits() int { return sp.n }

// Sample draws n basis-state indices using the given RNG (inverse-CDF).
func (sp *Sampler) Sample(n int, rng *rand.Rand) []int {
	out := make([]int, n)
	for k := 0; k < n; k++ {
		u := rng.Float64() * sp.total
		out[k] = sort.SearchFloat64s(sp.cdf, u)
		if out[k] >= len(sp.cdf) {
			out[k] = len(sp.cdf) - 1
		}
	}
	return out
}

// Counts draws n shots and returns a basis-index histogram.
func (sp *Sampler) Counts(n int, rng *rand.Rand) map[int]int {
	out := map[int]int{}
	for _, x := range sp.Sample(n, rng) {
		out[x]++
	}
	return out
}
