// Package sv implements the dense state-vector simulator kernels: applying
// arbitrary (controlled) k-qubit unitaries to a 2^n complex amplitude
// vector, with diagonal-gate fast paths and goroutine-parallel sweeps (the
// repo's stand-in for the paper's OpenMP threading).
package sv

import (
	"fmt"
	"math"
	"math/cmplx"
	"runtime"
	"sync"

	"hisvsim/internal/circuit"
	"hisvsim/internal/gate"
	"hisvsim/internal/prof"
)

// State is an n-qubit pure state: 2^n complex128 amplitudes, little-endian
// (bit q of the index is the computational-basis value of qubit q).
type State struct {
	N    int
	Amps []complex128
	// Workers sets the parallel sweep width; 0 selects GOMAXPROCS.
	Workers int
	// Ops counts applied gates (for benchmarks/metrics).
	Ops int64
	// Prof, when non-nil, receives per-kernel execution statistics (time,
	// amplitudes touched, bytes moved, scratch allocations). Executors set
	// it from the job context; nil (the default) keeps every kernel free
	// of clock reads.
	Prof *prof.Recorder
}

// NewState returns |0…0⟩ on n qubits.
func NewState(n int) *State {
	if n < 0 || n > 62 {
		panic(fmt.Sprintf("sv: unsupported qubit count %d", n))
	}
	s := &State{N: n, Amps: make([]complex128, 1<<uint(n))}
	s.Amps[0] = 1
	return s
}

// NewStateRaw wraps existing amplitudes (length must be a power of two).
func NewStateRaw(amps []complex128) *State {
	n := 0
	for 1<<uint(n) < len(amps) {
		n++
	}
	if 1<<uint(n) != len(amps) {
		panic("sv: amplitude length is not a power of two")
	}
	return &State{N: n, Amps: amps}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	out := &State{N: s.N, Amps: make([]complex128, len(s.Amps)), Workers: s.Workers, Prof: s.Prof}
	copy(out.Amps, s.Amps)
	return out
}

// Dim returns 2^N.
func (s *State) Dim() int { return len(s.Amps) }

// Norm returns the 2-norm of the amplitude vector (1 for valid states).
func (s *State) Norm() float64 {
	sum := 0.0
	for _, a := range s.Amps {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// InnerProduct returns ⟨s|o⟩.
func (s *State) InnerProduct(o *State) complex128 {
	if s.N != o.N {
		panic("sv: inner product dimension mismatch")
	}
	var sum complex128
	for i, a := range s.Amps {
		sum += cmplx.Conj(a) * o.Amps[i]
	}
	return sum
}

// Fidelity returns |⟨s|o⟩|².
func (s *State) Fidelity(o *State) float64 {
	ip := s.InnerProduct(o)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// EqualTol reports element-wise equality within eps.
func (s *State) EqualTol(o *State, eps float64) bool {
	if s.N != o.N {
		return false
	}
	for i := range s.Amps {
		if cmplx.Abs(s.Amps[i]-o.Amps[i]) > eps {
			return false
		}
	}
	return true
}

// Probability returns the probability of measuring qubit q as 1.
func (s *State) Probability(q int) float64 {
	if q < 0 || q >= s.N {
		panic(fmt.Sprintf("sv: qubit %d out of range", q))
	}
	bit := 1 << uint(q)
	p := 0.0
	for i, a := range s.Amps {
		if i&bit != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// BasisProbability returns |amp[idx]|².
func (s *State) BasisProbability(idx int) float64 {
	a := s.Amps[idx]
	return real(a)*real(a) + imag(a)*imag(a)
}

// MostLikely returns the basis index with the highest probability.
func (s *State) MostLikely() int {
	best, bp := 0, -1.0
	for i := range s.Amps {
		if p := s.BasisProbability(i); p > bp {
			best, bp = i, p
		}
	}
	return best
}

// workers resolves the parallel width.
func (s *State) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelThreshold is the minimum sweep size that spawns goroutines.
const parallelThreshold = 1 << 14

// parallelFor runs f over [0, n) in contiguous chunks.
func (s *State) parallelFor(n int, f func(lo, hi int)) {
	w := s.workers()
	if w <= 1 || n < parallelThreshold {
		f(0, n)
		return
	}
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ApplyCircuit applies every gate of the circuit in order.
func (s *State) ApplyCircuit(c *circuit.Circuit) error {
	if c.NumQubits > s.N {
		return fmt.Errorf("sv: circuit needs %d qubits, state has %d", c.NumQubits, s.N)
	}
	for _, g := range c.Gates {
		if err := s.ApplyGate(g); err != nil {
			return err
		}
	}
	return nil
}

// ApplyGates applies a gate slice in order.
func (s *State) ApplyGates(gs []gate.Gate) error {
	for _, g := range gs {
		if err := s.ApplyGate(g); err != nil {
			return err
		}
	}
	return nil
}

// Run simulates a circuit from |0…0⟩ and returns the final state.
func Run(c *circuit.Circuit) (*State, error) {
	s := NewState(c.NumQubits)
	if err := s.ApplyCircuit(c); err != nil {
		return nil, err
	}
	return s, nil
}
