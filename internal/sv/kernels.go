package sv

import (
	"fmt"

	"hisvsim/internal/gate"
	"hisvsim/internal/prof"
)

// ApplyGate applies one (possibly controlled) gate to the state, selecting
// the fastest kernel: diagonal phase sweep, dedicated 1-/2-target paths, or
// the general k-target gather/scatter kernel. Control qubits are handled
// structurally (never materialized into a bigger matrix).
func (s *State) ApplyGate(g gate.Gate) error {
	for _, q := range g.Qubits {
		if q < 0 || q >= s.N {
			return fmt.Errorf("sv: gate %s qubit %d out of range [0,%d)", g.Name, q, s.N)
		}
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("sv: %w", err)
	}
	s.Ops++

	var ctrlMask int
	for _, c := range g.Controls() {
		ctrlMask |= 1 << uint(c)
	}
	targets := g.Targets()

	n := int64(len(s.Amps))
	if d, ok := diagonalOf(g); ok {
		t0 := s.profStart()
		s.applyDiagonal(targets, ctrlMask, d)
		s.profRecord(prof.Diagonal, len(targets), t0, n, n*bytesPerAmpRW, 0)
		return nil
	}
	if g.Name == "swap" && ctrlMask == 0 {
		t0 := s.profStart()
		s.applySwap(targets[0], targets[1])
		// A swap exchanges the two mixed-bit quarters: half the amplitudes move.
		s.profRecord(prof.Dense, 2, t0, n/2, n/2*bytesPerAmpRW, 0)
		return nil
	}
	kind := prof.Dense
	if ctrlMask != 0 {
		kind = prof.Controlled
	}
	m := g.BaseMatrix()
	t0 := s.profStart()
	switch len(targets) {
	case 1:
		s.apply1(targets[0], ctrlMask, m)
		s.profRecord(kind, 1, t0, n, n*bytesPerAmpRW, 0)
	default:
		s.applyK(targets, ctrlMask, m)
		if s.Prof != nil {
			var ctrls int
			for b := 0; b < s.N; b++ {
				if ctrlMask>>uint(b)&1 == 1 {
					ctrls++
				}
			}
			s.profRecord(kind, len(targets), t0, n, n*bytesPerAmpRW,
				2*s.sweepChunks(1<<uint(s.N-len(targets)-ctrls)))
		}
	}
	return nil
}

// applySwap exchanges the amplitudes of |…1_a…0_b…⟩ and |…0_a…1_b…⟩ — no
// arithmetic needed, so it avoids the general gather/scatter kernel.
func (s *State) applySwap(a, b int) {
	abit, bbit := 1<<uint(a), 1<<uint(b)
	diff := abit | bbit
	quarter := len(s.Amps) >> 2
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	s.parallelFor(quarter, func(from, to int) {
		amps := s.Amps
		for f := from; f < to; f++ {
			// Insert 0 at both swap positions, then set bit a.
			i := insertBit(insertBit(f, lo), hi) | abit
			j := i ^ diff
			amps[i], amps[j] = amps[j], amps[i]
		}
	})
}

// diagonalOf returns the 2^k diagonal of the gate's base matrix when the
// gate is phase-only (z, s, sdg, t, tdg, rz, p/u1, rzz and their controlled
// forms), enabling the in-place phase sweep.
func diagonalOf(g gate.Gate) ([]complex128, bool) {
	if !gate.IsDiagonal(g) {
		return nil, false
	}
	m := g.BaseMatrix()
	n := m.Dim()
	d := make([]complex128, n)
	for i := 0; i < n; i++ {
		d[i] = m.At(i, i)
	}
	return d, true
}

// applyDiagonal multiplies each amplitude whose control bits are all set by
// the diagonal entry selected by its target bits.
func (s *State) applyDiagonal(targets []int, ctrlMask int, d []complex128) {
	// Fast path: single target, no controls.
	if len(targets) == 1 && ctrlMask == 0 {
		bit := 1 << uint(targets[0])
		d0, d1 := d[0], d[1]
		s.parallelFor(len(s.Amps), func(lo, hi int) {
			amps := s.Amps
			for i := lo; i < hi; i++ {
				if i&bit == 0 {
					amps[i] *= d0
				} else {
					amps[i] *= d1
				}
			}
		})
		return
	}
	s.parallelFor(len(s.Amps), func(lo, hi int) {
		amps := s.Amps
		for i := lo; i < hi; i++ {
			if i&ctrlMask != ctrlMask {
				continue
			}
			sub := 0
			for j, t := range targets {
				if i>>uint(t)&1 == 1 {
					sub |= 1 << uint(j)
				}
			}
			amps[i] *= d[sub]
		}
	})
}

// insertBit returns f with a zero bit inserted at position p.
func insertBit(f, p int) int {
	low := f & ((1 << uint(p)) - 1)
	return ((f &^ ((1 << uint(p)) - 1)) << 1) | low
}

// apply1 applies a 2x2 unitary to one target with an optional control mask.
func (s *State) apply1(t, ctrlMask int, m gate.Matrix) {
	m00, m01, m10, m11 := m.At(0, 0), m.At(0, 1), m.At(1, 0), m.At(1, 1)
	tbit := 1 << uint(t)
	if ctrlMask == 0 {
		half := len(s.Amps) >> 1
		s.parallelFor(half, func(lo, hi int) {
			amps := s.Amps
			for f := lo; f < hi; f++ {
				i0 := insertBit(f, t)
				i1 := i0 | tbit
				a0, a1 := amps[i0], amps[i1]
				amps[i0] = m00*a0 + m01*a1
				amps[i1] = m10*a0 + m11*a1
			}
		})
		return
	}
	// Controlled: sweep pairs, act only when controls are set. (The control
	// bits are disjoint from the target bit by gate validation.)
	half := len(s.Amps) >> 1
	s.parallelFor(half, func(lo, hi int) {
		amps := s.Amps
		for f := lo; f < hi; f++ {
			i0 := insertBit(f, t)
			if i0&ctrlMask != ctrlMask {
				continue
			}
			i1 := i0 | tbit
			a0, a1 := amps[i0], amps[i1]
			amps[i0] = m00*a0 + m01*a1
			amps[i1] = m10*a0 + m11*a1
		}
	})
}

// applyK is the general kernel: it gathers the 2^k amplitudes addressed by
// the target bits for every assignment of the remaining bits (with control
// bits pinned to 1), multiplies by the base matrix, and scatters back.
func (s *State) applyK(targets []int, ctrlMask int, m gate.Matrix) {
	k := len(targets)
	nFixed := k
	fixed := append([]int(nil), targets...)
	for b := 0; b < s.N; b++ {
		if ctrlMask>>uint(b)&1 == 1 {
			fixed = append(fixed, b)
			nFixed++
		}
	}
	sortInts(fixed)
	freeBits := s.N - nFixed
	tbits := make([]int, k)
	for j, t := range targets {
		tbits[j] = 1 << uint(t)
	}
	dim := 1 << uint(k)
	s.parallelFor(1<<uint(freeBits), func(lo, hi int) {
		amps := s.Amps
		sub := make([]complex128, dim)
		res := make([]complex128, dim)
		for f := lo; f < hi; f++ {
			base := f
			for _, p := range fixed {
				base = insertBit(base, p)
			}
			base |= ctrlMask
			for sIdx := 0; sIdx < dim; sIdx++ {
				idx := base
				for j := 0; j < k; j++ {
					if sIdx>>uint(j)&1 == 1 {
						idx |= tbits[j]
					}
				}
				sub[sIdx] = amps[idx]
			}
			for r := 0; r < dim; r++ {
				var acc complex128
				row := m.Data[r*dim : (r+1)*dim]
				for cIdx := 0; cIdx < dim; cIdx++ {
					acc += row[cIdx] * sub[cIdx]
				}
				res[r] = acc
			}
			for sIdx := 0; sIdx < dim; sIdx++ {
				idx := base
				for j := 0; j < k; j++ {
					if sIdx>>uint(j)&1 == 1 {
						idx |= tbits[j]
					}
				}
				amps[idx] = res[sIdx]
			}
		}
	})
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
