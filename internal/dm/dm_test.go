package dm

import (
	"context"
	"math"
	"testing"

	"hisvsim/internal/circuit"
	"hisvsim/internal/gate"
	"hisvsim/internal/noise"
	"hisvsim/internal/sv"
)

// testCircuit builds a small non-trivial circuit mixing single-qubit
// rotations, entanglers and diagonals so every kernel path (dense, diagonal,
// controlled, swap) is exercised.
func testCircuit(t *testing.T, n int) *circuit.Circuit {
	t.Helper()
	c := circuit.New("dm-test", n)
	for q := 0; q < n; q++ {
		c.Append(gate.H(q))
	}
	for q := 0; q+1 < n; q++ {
		c.Append(gate.CX(q, q+1))
	}
	c.Append(gate.RZ(0.37, 0))
	c.Append(gate.RX(0.81, 1))
	c.Append(gate.CP(0.55, 0, n-1))
	if n >= 3 {
		c.Append(gate.SWAP(1, 2))
		c.Append(gate.RY(1.1, 2))
	}
	c.Append(gate.T(n - 1))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestZeroNoiseMatchesFlat is the zero-noise differential bound of the
// ROADMAP item: ρ evolved without noise must equal |ψ⟩⟨ψ| from the flat
// reference sweep element-wise, fused and unfused.
func TestZeroNoiseMatchesFlat(t *testing.T) {
	for _, fused := range []bool{false, true} {
		for _, fam := range []string{"qft", "ising", "grover"} {
			c, err := circuit.Named(fam, 5)
			if err != nil {
				t.Fatal(err)
			}
			want, err := sv.Run(c)
			if err != nil {
				t.Fatal(err)
			}
			d, _, err := Run(context.Background(), c, nil, Options{Fuse: fused})
			if err != nil {
				t.Fatalf("%s fused=%t: %v", fam, fused, err)
			}
			if diff := d.MaxAbsDiffPure(want); diff > 1e-9 {
				t.Errorf("%s fused=%t: max |ρ − ψψ†| = %g", fam, fused, diff)
			}
			if f := d.FidelityWithState(want); math.Abs(f-1) > 1e-9 {
				t.Errorf("%s fused=%t: fidelity %g", fam, fused, f)
			}
			if tr := d.Trace(); math.Abs(tr-1) > 1e-9 {
				t.Errorf("%s fused=%t: trace %g", fam, fused, tr)
			}
		}
	}
}

// TestFromStateAndReadouts checks the pure-state constructor and the exact
// read-out kernels against the sv equivalents on a random-ish state.
func TestFromStateAndReadouts(t *testing.T) {
	c := testCircuit(t, 4)
	st, err := sv.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []sv.PauliString{
		{Ops: "Z", Qubits: []int{0}},
		{Ops: "ZZ", Qubits: []int{0, 2}},
		{Ops: "XY", Qubits: []int{1, 3}, Coeff: -0.5},
		{Ops: "YXZ", Qubits: []int{0, 1, 2}},
		{Ops: "X", Qubits: []int{3}, Coeff: 2},
	} {
		want := st.ExpectationPauliString(p)
		got := d.ExpectationPauliString(p)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("⟨%s⟩: dm %g vs sv %g", p.String(), got, want)
		}
	}
	wantM := st.Marginal([]int{1, 3})
	gotM := d.Marginal([]int{1, 3})
	for i := range wantM {
		if math.Abs(gotM[i]-wantM[i]) > 1e-10 {
			t.Errorf("marginal[%d]: dm %g vs sv %g", i, gotM[i], wantM[i])
		}
	}
	if p := d.Purity(); math.Abs(p-1) > 1e-9 {
		t.Errorf("pure state purity %g", p)
	}
}

// TestFromStateNoZeroOverlap regresses the stale-seed bug: New seeds ρ at
// |0…0⟩⟨0…0|, and FromState must clear that amplitude even when ψ has zero
// overlap with |0…0⟩ (whose zero column the fill loop skips).
func TestFromStateNoZeroOverlap(t *testing.T) {
	st := sv.NewState(2)
	if err := st.ApplyGate(gate.X(0)); err != nil { // |01⟩: amp[0] = 0
		t.Fatal(err)
	}
	d, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if tr := d.Trace(); math.Abs(tr-1) > 1e-12 {
		t.Fatalf("trace = %g, want 1", tr)
	}
	if v := d.At(0, 0); v != 0 {
		t.Fatalf("ρ₀₀ = %v, want 0", v)
	}
	if p := d.Probabilities()[1]; math.Abs(p-1) > 1e-12 {
		t.Fatalf("P(|01⟩) = %g, want 1", p)
	}
}

// TestChannelsReduceAnalytic spot-checks exact channel action against closed
// forms: k depolarizing applications scale ⟨Z⟩ by (1 − 4p/3)^k; amplitude
// damping on |1⟩ leaves P(1) = 1 − γ; phase damping kills coherence by
// √(1−γ) per application.
func TestChannelsReduceAnalytic(t *testing.T) {
	// Depolarizing decay of ⟨Z⟩ on |0⟩ under k = 3 insertions (id gates).
	p := 0.12
	c := circuit.New("decay", 1)
	for i := 0; i < 3; i++ {
		c.Append(gate.ID(0))
	}
	d, _, err := Run(context.Background(), c, noise.Global(noise.Depolarizing(p)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(1-4*p/3, 3)
	got := d.ExpectationPauliString(sv.PauliString{Ops: "Z", Qubits: []int{0}})
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("⟨Z⟩ after 3 depolarizing = %g, want %g", got, want)
	}

	// Amplitude damping after X: P(1) = 1 − γ, exactly.
	gamma := 0.3
	c2 := circuit.New("damp", 1)
	c2.Append(gate.X(0))
	d2, _, err := Run(context.Background(), c2, noise.Global(noise.AmplitudeDamping(gamma)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Probabilities()[1]; math.Abs(got-(1-gamma)) > 1e-12 {
		t.Errorf("P(1) after amplitude damping = %g, want %g", got, 1-gamma)
	}

	// Phase damping after H: ⟨X⟩ = √(1−γ), exactly.
	c3 := circuit.New("dephase", 1)
	c3.Append(gate.H(0))
	d3, _, err := Run(context.Background(), c3, noise.Global(noise.PhaseDamping(gamma)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := d3.ExpectationPauliString(sv.PauliString{Ops: "X", Qubits: []int{0}}); math.Abs(got-math.Sqrt(1-gamma)) > 1e-12 {
		t.Errorf("⟨X⟩ after phase damping = %g, want %g", got, math.Sqrt(1-gamma))
	}
}

// TestCorrelatedDepolarizing2Exact checks the 2-qubit channel's exact
// action: on a Bell pair, one correlated depolarizing application scales
// ⟨ZZ⟩ by 1 − (16/15)·p... verified against the superoperator definition by
// direct density-matrix algebra: ⟨P⟩ → (1 − p − p/15·(−1)) ⟨P⟩ for each
// non-identity Pauli P commutation pattern; for ZZ the 15 error terms split
// 3 commuting-with-sign... the closed form is ⟨ZZ⟩ → (1 − 16p/15)·... — we
// avoid deriving it by hand and instead assert the channel (a) preserves
// trace, (b) is genuinely correlated (differs from two independent 1-qubit
// depolarizings), and (c) drives ⟨ZZ⟩ toward 0.
func TestCorrelatedDepolarizing2Exact(t *testing.T) {
	p := 0.3
	bell := circuit.New("bell", 2)
	bell.Append(gate.H(0))
	bell.Append(gate.CX(0, 1))

	corr := noise.OnGates(noise.CorrelatedDepolarizing2(p), "cx")
	d, _, err := Run(context.Background(), bell, corr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr := d.Trace(); math.Abs(tr-1) > 1e-12 {
		t.Errorf("trace after correlated channel = %g", tr)
	}
	zz := sv.PauliString{Ops: "ZZ", Qubits: []int{0, 1}}
	got := d.ExpectationPauliString(zz)
	// Under the uniform 2-qubit depolarizing, every non-identity Pauli
	// expectation scales by exactly 1 − 16p/15 (8 of the 15 errors
	// anticommute with any fixed non-identity P, each flipping the sign:
	// 1−p + (p/15)·(15−2·8) = 1 − 16p/15).
	want := 1 - 16*p/15
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("⟨ZZ⟩ after correlated depolarizing = %g, want %g", got, want)
	}
	// Independent per-qubit depolarizing with the same p differs: the
	// channel is genuinely correlated.
	indep := noise.OnGates(noise.Depolarizing(p), "cx")
	di, _, err := Run(context.Background(), bell, indep, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(di.ExpectationPauliString(zz)-got) < 1e-6 {
		t.Errorf("correlated and independent channels agree (⟨ZZ⟩ = %g) — not correlated?", got)
	}
}

// TestReadoutErrorExact checks the classical readout map applied to the
// diagonal: after X, reading 0 happens with exactly P10.
func TestReadoutErrorExact(t *testing.T) {
	c := circuit.New("ro", 2)
	c.Append(gate.X(0))
	m := (&noise.Model{}).WithReadout(0.05, 0.2)
	d, plan, err := Run(context.Background(), c, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	probs := d.ReadoutProbabilities(plan.Readout())
	// True state is |01⟩ (qubit 0 = 1, qubit 1 = 0). Bit 0 reads 0 with
	// P10 = 0.2; bit 1 reads 1 with P01 = 0.05.
	want := map[int]float64{
		0b01: 0.8 * 0.95,
		0b00: 0.2 * 0.95,
		0b11: 0.8 * 0.05,
		0b10: 0.2 * 0.05,
	}
	for idx, w := range want {
		if math.Abs(probs[idx]-w) > 1e-12 {
			t.Errorf("P(read %02b) = %g, want %g", idx, probs[idx], w)
		}
	}
	// Sampling is deterministic in the seed and sums to the shot count.
	a := d.SampleCounts(500, 7, plan.Readout())
	b := d.SampleCounts(500, 7, plan.Readout())
	total := 0
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("seeded sampling not deterministic: %v vs %v", a, b)
		}
		total += v
	}
	if total != 500 {
		t.Fatalf("counts sum to %d, want 500", total)
	}
}

// TestTrajectoryVsExactAllChannels is the headline differential test: for
// every built-in channel — including the 2-qubit correlated depolarizing,
// and both trajectory unravelings (Pauli fast path and forced norm-weighted
// Kraus selection) where they exist — the trajectory-ensemble mean of every
// observable agrees with the exact DM expectation within 3× its standard
// error. This is the trajectory-vs-exact cross-check the ROADMAP called
// for, far sharper than the analytic decay spot checks.
func TestTrajectoryVsExactAllChannels(t *testing.T) {
	n := 4
	c := testCircuit(t, n)
	obs := []sv.PauliString{
		{Ops: "Z", Qubits: []int{0}},
		{Ops: "ZZ", Qubits: []int{1, 2}},
		{Ops: "X", Qubits: []int{1}},
		{Ops: "XY", Qubits: []int{0, 3}},
	}
	cases := []struct {
		name  string
		model *noise.Model
	}{
		{"depolarizing", noise.Global(noise.Depolarizing(0.02))},
		{"bit_flip", noise.Global(noise.BitFlip(0.03))},
		{"phase_flip", noise.Global(noise.PhaseFlip(0.03))},
		{"amplitude_damping", noise.Global(noise.AmplitudeDamping(0.04))},
		{"phase_damping", noise.Global(noise.PhaseDamping(0.04))},
		{"depolarizing2", noise.OnGates(noise.CorrelatedDepolarizing2(0.05), "cx")},
		{"mixed", noise.OnGates(noise.CorrelatedDepolarizing2(0.04), "cx").
			AddRule(noise.Rule{Channel: noise.AmplitudeDamping(0.02)})},
	}
	ctx := context.Background()
	for _, tc := range cases {
		d, _, err := Run(ctx, c, tc.model, Options{Fuse: true})
		if err != nil {
			t.Fatalf("%s: dm run: %v", tc.name, err)
		}
		for _, force := range []bool{false, true} {
			plan, err := noise.Compile(c, tc.model, noise.CompileOptions{Fuse: true, ForceKraus: force})
			if err != nil {
				t.Fatalf("%s force=%t: %v", tc.name, force, err)
			}
			ens, err := noise.RunEnsemble(ctx, plan, noise.RunConfig{
				Trajectories: 1500, Seed: 11, Workers: 4, Observables: obs,
			})
			if err != nil {
				t.Fatalf("%s force=%t: %v", tc.name, force, err)
			}
			for k, ob := range obs {
				exact := d.ExpectationPauliString(ob)
				mean, se := ens.Observables[k].Mean, ens.Observables[k].StdErr
				tol := 3*se + 1e-9 // exact agreement has se = 0
				if math.Abs(mean-exact) > tol {
					t.Errorf("%s force=%t ⟨%s⟩: ensemble %g ± %g vs exact %g (|Δ| > 3σ)",
						tc.name, force, ob.String(), mean, se, exact)
				}
			}
		}
	}
}

// TestQubitCap rejects registers over MaxQubits with a clear error.
func TestQubitCap(t *testing.T) {
	if _, err := New(MaxQubits + 1); err == nil {
		t.Fatal("New accepted a register over the cap")
	}
	c, err := circuit.Named("cat_state", MaxQubits+1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(context.Background(), c, nil, Options{}); err == nil {
		t.Fatal("Run accepted a register over the cap")
	}
}
