// Package dm is the exact density-matrix simulation engine: small registers
// (≤ MaxQubits qubits) evolve as a full 2^n×2^n density matrix ρ, so noise
// channels apply exactly — ρ → Σ_i K_i ρ K_i† in one deterministic pass —
// instead of being unraveled into a stochastic trajectory ensemble. It is
// the differential oracle for the trajectory engine (trajectory means
// converge to the DM expectations as 1/√T) and the production answer for
// small noisy circuits where one exact evolution beats thousands of
// trajectories.
//
// Representation. ρ is stored vectorized in the flat little-endian layout
// the sv kernels use: vec(ρ) is a 2n-qubit state vector whose index packs
// the row (ket) index r into bits [0,n) and the column (bra) index c into
// bits [n,2n), i.e. ρ_{rc} = vec[r | c<<n]. Under that packing every
// superoperator is an ordinary (non-unitary) matrix application on vec:
//
//	UρU†        =  (conj(U) on bra bits) ∘ (U on ket bits)
//	Σ K_i ρ K_i† =  one 2k-qubit matrix Σ_i conj(K_i) ⊗ K_i over the
//	                channel's ket+bra bit pairs
//
// so the engine reuses the sv sweep kernels (including the fused dense and
// diagonal block paths) unchanged — no dedicated ρ kernels to maintain.
//
// Read-outs come straight from ρ: probabilities and marginals from the
// diagonal, observables as Tr(ρP) in one sweep, seeded shots from the
// (optionally readout-error-adjusted) diagonal distribution. Classical
// readout error is applied exactly — a per-qubit stochastic map on the
// probability vector — rather than by flipping sampled bits.
package dm

import (
	"context"
	"fmt"
	"math/cmplx"
	"math/rand"
	"time"

	"hisvsim/internal/circuit"
	"hisvsim/internal/fuse"
	"hisvsim/internal/gate"
	"hisvsim/internal/noise"
	"hisvsim/internal/prof"
	"hisvsim/internal/sv"
)

// MaxQubits is the engine's register cap: ρ over n qubits costs 16·4^n
// bytes (n = 13 ⇒ 1 GiB), so wider registers belong to the trajectory
// engine. The service layer turns this into a 400 at submit.
const MaxQubits = 13

// Density is an n-qubit density matrix ρ, stored vectorized (see the
// package comment). Construct with New or FromState.
type Density struct {
	// N is the register width (ρ is 2^N × 2^N).
	N int
	// vec is vec(ρ) as a 2N-qubit sv state: ket bits low, bra bits high.
	vec *sv.State
}

// New returns ρ = |0…0⟩⟨0…0| on n qubits.
func New(n int) (*Density, error) {
	if n < 1 || n > MaxQubits {
		return nil, fmt.Errorf("dm: unsupported qubit count %d (the density-matrix engine holds 1..%d qubits)", n, MaxQubits)
	}
	return &Density{N: n, vec: sv.NewState(2 * n)}, nil
}

// FromState returns the pure density matrix |ψ⟩⟨ψ|.
func FromState(st *sv.State) (*Density, error) {
	d, err := New(st.N)
	if err != nil {
		return nil, err
	}
	// New seeds ρ = |0…0⟩⟨0…0|; clear that amplitude so a ψ with no overlap
	// on |0…0⟩ (whose column loop skips the zero column) cannot keep it.
	d.vec.Amps[0] = 0
	dim := 1 << uint(st.N)
	for c := 0; c < dim; c++ {
		cc := cmplx.Conj(st.Amps[c])
		if cc == 0 {
			continue
		}
		base := c << uint(st.N)
		for r := 0; r < dim; r++ {
			d.vec.Amps[base|r] = st.Amps[r] * cc
		}
	}
	return d, nil
}

// SetWorkers bounds the parallel sweep width of the underlying kernels
// (0 = GOMAXPROCS).
func (d *Density) SetWorkers(w int) { d.vec.Workers = w }

// Dim returns 2^N.
func (d *Density) Dim() int { return 1 << uint(d.N) }

// At returns ρ_{rc}.
func (d *Density) At(r, c int) complex128 { return d.vec.Amps[r|c<<uint(d.N)] }

// MemoryBytes returns the resident size of ρ.
func (d *Density) MemoryBytes() int64 { return int64(len(d.vec.Amps)) * 16 }

// Trace returns Re Tr(ρ) (1 for a valid state up to rounding).
func (d *Density) Trace() float64 {
	t := 0.0
	for i := 0; i < d.Dim(); i++ {
		t += real(d.At(i, i))
	}
	return t
}

// Purity returns Tr(ρ²) = Σ |ρ_{rc}|²: 1 for pure states, 1/2^n for the
// maximally mixed state — the standard "how noisy did it get" diagnostic.
func (d *Density) Purity() float64 {
	p := 0.0
	for _, a := range d.vec.Amps {
		p += real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// shift returns the qubit list moved onto the bra index bits.
func (d *Density) shift(qs []int) []int {
	out := make([]int, len(qs))
	for i, q := range qs {
		out[i] = q + d.N
	}
	return out
}

// ApplyGate applies the (possibly controlled) gate as ρ → UρU†: the ket
// side through the ordinary gate kernels (diagonal/swap fast paths intact),
// the bra side as the conjugated base matrix with structural controls.
func (d *Density) ApplyGate(g gate.Gate) error {
	for _, q := range g.Qubits {
		if q < 0 || q >= d.N {
			return fmt.Errorf("dm: gate %s qubit %d out of range [0,%d)", g.Name, q, d.N)
		}
	}
	if err := d.vec.ApplyGate(g); err != nil {
		return err
	}
	d.vec.ApplyControlledMatrixK(d.shift(g.Targets()), d.shift(g.Controls()), g.BaseMatrix().Conj())
	return nil
}

// suppressProf detaches the kernel recorder from the underlying vec so a
// multi-sweep ρ update can be re-attributed as ONE logical kernel at the dm
// layer (otherwise the two UρU† sides would show up as unrelated sv kernels
// with the wrong class). It returns the recorder (nil when profiling is off)
// and the start time (zero when off — no clock reads on the unprofiled path).
func (d *Density) suppressProf() (*prof.Recorder, time.Time) {
	rec := d.vec.Prof
	if rec == nil {
		return nil, time.Time{}
	}
	d.vec.Prof = nil
	return rec, time.Now()
}

// resumeProf records the finished ρ update and re-attaches the recorder.
func (d *Density) resumeProf(rec *prof.Recorder, k prof.Kind, width int, t0 time.Time, amps, bytes, allocs int64) {
	if rec == nil {
		return
	}
	rec.Record(k, width, time.Since(t0), amps, bytes, allocs)
	d.vec.Prof = rec
}

// ApplyMatrix applies ρ → MρM† for an arbitrary matrix over the listed
// qubits (little-endian over the list, like the sv kernels).
func (d *Density) ApplyMatrix(qubits []int, m gate.Matrix) {
	rec, t0 := d.suppressProf()
	d.vec.ApplyMatrixK(qubits, m)
	d.vec.ApplyMatrixK(d.shift(qubits), m.Conj())
	n := int64(len(d.vec.Amps))
	k := len(qubits)
	d.resumeProf(rec, prof.Dense, k, t0, 2*n, 2*n*32, 4*d.vec.SweepChunks(len(d.vec.Amps)>>uint(k)))
}

// ApplyDiagonal applies ρ → DρD† for a diagonal operator over the listed
// qubits (one multiply per side per element — the fused diagonal path).
func (d *Density) ApplyDiagonal(qubits []int, diag []complex128) {
	rec, t0 := d.suppressProf()
	conj := make([]complex128, len(diag))
	for i, v := range diag {
		conj[i] = cmplx.Conj(v)
	}
	d.vec.ApplyFusedDiagonal(qubits, diag)
	d.vec.ApplyFusedDiagonal(d.shift(qubits), conj)
	n := int64(len(d.vec.Amps))
	d.resumeProf(rec, prof.Diagonal, len(qubits), t0, 2*n, 2*n*32, 1)
}

// Superoperator returns the vectorized form of the channel: the 2k-qubit
// matrix Σ_i conj(K_i) ⊗ K_i whose low k index bits address the ket side
// and high k bits the bra side — exactly the bit layout ApplyKrausK feeds.
func Superoperator(ks gate.Kraus) gate.Matrix {
	k := ks.NumQubits()
	s := gate.NewMatrix(2 * k)
	for _, op := range ks {
		t := op.Conj().Kron(op)
		for i := range s.Data {
			s.Data[i] += t.Data[i]
		}
	}
	return s
}

// ApplyKrausK applies the k-qubit channel ρ → Σ_i K_i ρ K_i† exactly, as
// one superoperator sweep over the channel's ket and bra bit pairs.
func (d *Density) ApplyKrausK(qubits []int, ks gate.Kraus) error {
	if len(qubits) != ks.NumQubits() {
		return fmt.Errorf("dm: %d-qubit Kraus set on %d qubits %v", ks.NumQubits(), len(qubits), qubits)
	}
	d.applySuper(qubits, Superoperator(ks))
	return nil
}

// applySuper applies a prebuilt superoperator over the channel qubits.
func (d *Density) applySuper(qubits []int, super gate.Matrix) {
	targets := make([]int, 0, 2*len(qubits))
	targets = append(targets, qubits...)
	targets = append(targets, d.shift(qubits)...)
	rec, t0 := d.suppressProf()
	d.vec.ApplyMatrixK(targets, super)
	n := int64(len(d.vec.Amps))
	d.resumeProf(rec, prof.Super, 2*len(qubits), t0, n, n*32, 2*d.vec.SweepChunks(len(d.vec.Amps)>>uint(2*len(qubits))))
}

// Options configures Run.
type Options struct {
	// Fuse coalesces noise-free gate runs into dense/diagonal blocks
	// before evolution (the same compiler the trajectory engine uses).
	Fuse bool
	// MaxFuseQubits caps fused-block support (0 = fuse defaults).
	MaxFuseQubits int
	// Workers bounds kernel parallelism (0 = GOMAXPROCS).
	Workers int
}

// Run compiles the circuit plus noise model (nil = ideal) into a plan and
// evolves ρ from |0…0⟩⟨0…0| through it, returning the final density matrix
// and the compiled plan (whose Readout the sampling layer consumes).
func Run(ctx context.Context, c *circuit.Circuit, m *noise.Model, opts Options) (*Density, *noise.Plan, error) {
	plan, err := noise.Compile(c, m, noise.CompileOptions{Fuse: opts.Fuse, MaxFuseQubits: opts.MaxFuseQubits})
	if err != nil {
		return nil, nil, err
	}
	d, err := Evolve(ctx, plan, opts.Workers)
	if err != nil {
		return nil, nil, err
	}
	return d, plan, nil
}

// Evolve replays a compiled plan deterministically on a fresh ρ: gate runs
// apply as UρU† (fused blocks included), channel insertions as exact
// superoperators. The context is honored at step boundaries. One Evolve is
// the DM engine's whole "simulation" — there is no ensemble.
func Evolve(ctx context.Context, plan *noise.Plan, workers int) (*Density, error) {
	d, err := New(plan.NumQubits())
	if err != nil {
		return nil, err
	}
	d.vec.Workers = workers
	d.vec.Prof = prof.FromContext(ctx)
	// Channels repeat across insertion sites; build each superoperator once.
	supers := map[*noise.Channel]gate.Matrix{}
	err = plan.VisitSteps(func(s noise.Step) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch {
		case s.Channel != nil:
			super, ok := supers[s.Channel]
			if !ok {
				super = Superoperator(s.Channel.Kraus)
				supers[s.Channel] = super
			}
			if len(s.Qubits) != s.Channel.NumQubits() {
				return fmt.Errorf("dm: %d-qubit channel %s at a %d-qubit site", s.Channel.NumQubits(), s.Channel.Name, len(s.Qubits))
			}
			d.applySuper(s.Qubits, super)
			return nil
		case s.Blocks != nil:
			return d.applyBlocks(s.Blocks)
		default:
			for _, g := range s.Gates {
				if err := d.ApplyGate(g); err != nil {
					return err
				}
			}
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// applyBlocks replays one fused gate run on both sides of ρ.
func (d *Density) applyBlocks(blocks []fuse.Block) error {
	for _, b := range blocks {
		switch b.Kind {
		case fuse.Dense:
			d.ApplyMatrix(b.Qubits, b.Matrix)
		case fuse.Diagonal:
			d.ApplyDiagonal(b.Qubits, b.Diag)
		default: // fuse.Single passthrough
			if err := d.ApplyGate(b.Gates[0]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Probabilities returns the computational-basis distribution diag(ρ),
// clamping the tiny negative rounding residue exact evolution can leave.
func (d *Density) Probabilities() []float64 {
	out := make([]float64, d.Dim())
	for i := range out {
		if p := real(d.At(i, i)); p > 0 {
			out[i] = p
		}
	}
	return out
}

// ReadoutProbabilities returns the basis distribution with the classical
// readout error applied exactly: each qubit's bit passes through the
// stochastic map [[1−p01, p10], [p01, 1−p10]]. A nil (or zero) readout
// returns Probabilities unchanged.
func (d *Density) ReadoutProbabilities(ro *noise.Readout) []float64 {
	probs := d.Probabilities()
	if ro == nil || ro.IsZero() {
		return probs
	}
	for b := 0; b < d.N; b++ {
		bit := 1 << uint(b)
		for i := range probs {
			if i&bit != 0 {
				continue
			}
			p0, p1 := probs[i], probs[i|bit]
			probs[i] = (1-ro.P01)*p0 + ro.P10*p1
			probs[i|bit] = ro.P01*p0 + (1-ro.P10)*p1
		}
	}
	return probs
}

// Marginal returns the distribution over the listed qubits (little-endian
// over the list), traced over the rest — the DM analog of sv.Marginal.
func (d *Density) Marginal(qubits []int) []float64 {
	for _, q := range qubits {
		if q < 0 || q >= d.N {
			panic(fmt.Sprintf("dm: marginal qubit %d out of range", q))
		}
	}
	out := make([]float64, 1<<uint(len(qubits)))
	for i := 0; i < d.Dim(); i++ {
		p := real(d.At(i, i))
		if p <= 0 {
			continue
		}
		idx := 0
		for j, q := range qubits {
			if i>>uint(q)&1 == 1 {
				idx |= 1 << uint(j)
			}
		}
		out[idx] += p
	}
	return out
}

// ExpectationPauliString returns Coeff·Tr(ρ ∏σ) exactly, in one sweep:
// with the string folded to (flip, sign, numY) masks (P|r⟩ =
// i^{numY}(−1)^{popcount(r&sign)}|r⊕flip⟩, the sv kernel's convention),
//
//	Tr(ρP) = i^{numY} Σ_r (−1)^{popcount(r & sign)} ρ_{r, r⊕flip}.
//
// It panics on malformed strings like the sv kernel; untrusted input goes
// through PauliString.Validate first.
func (d *Density) ExpectationPauliString(p sv.PauliString) float64 {
	for _, q := range p.Qubits {
		if q < 0 || q >= d.N {
			panic(fmt.Sprintf("dm: pauli qubit %d out of range [0,%d)", q, d.N))
		}
	}
	flip, sign, numY := p.Masks()
	var re, im float64
	for r := 0; r < d.Dim(); r++ {
		v := d.vec.Amps[r|(r^flip)<<uint(d.N)]
		if parity(r & sign) {
			re -= real(v)
			im -= imag(v)
		} else {
			re += real(v)
			im += imag(v)
		}
	}
	// Re(i^{numY} · (re + i·im)); the imaginary part of Tr(ρP) is rounding
	// noise for Hermitian ρ and is never materialized.
	var val float64
	switch numY % 4 {
	case 0:
		val = re
	case 1:
		val = -im
	case 2:
		val = -re
	default:
		val = im
	}
	return p.Coefficient() * val
}

// FidelityWithState returns ⟨ψ|ρ|ψ⟩ — 1 iff ρ = |ψ⟩⟨ψ| (the zero-noise
// cross-check against the state-vector backends).
func (d *Density) FidelityWithState(st *sv.State) float64 {
	if st.N != d.N {
		panic("dm: fidelity dimension mismatch")
	}
	var acc complex128
	for c := 0; c < d.Dim(); c++ {
		if st.Amps[c] == 0 {
			continue
		}
		var row complex128
		base := c << uint(d.N)
		for r := 0; r < d.Dim(); r++ {
			row += cmplx.Conj(st.Amps[r]) * d.vec.Amps[base|r]
		}
		acc += row * st.Amps[c]
	}
	return real(acc)
}

// MaxAbsDiffPure returns max_{r,c} |ρ_{rc} − ψ_r ψ*_c| — the element-wise
// distance to the pure state's outer product (the ≤ 1e-9 differential
// bound for zero-noise runs).
func (d *Density) MaxAbsDiffPure(st *sv.State) float64 {
	if st.N != d.N {
		panic("dm: diff dimension mismatch")
	}
	worst := 0.0
	for c := 0; c < d.Dim(); c++ {
		cc := cmplx.Conj(st.Amps[c])
		base := c << uint(d.N)
		for r := 0; r < d.Dim(); r++ {
			if v := cmplx.Abs(d.vec.Amps[base|r] - st.Amps[r]*cc); v > worst {
				worst = v
			}
		}
	}
	return worst
}

// Sample draws seeded shots from the (readout-error-adjusted) basis
// distribution, returning the per-shot basis indices: deterministic in
// (ρ, shots, seed, readout), independent of workers — the DM engine's
// replacement for per-trajectory sampling. It shares the sv.Sampler
// inverse-CDF draw, so the same seed over the same distribution yields the
// same shot stream as the state-vector engines.
func (d *Density) Sample(shots int, seed int64, ro *noise.Readout) []int {
	if shots <= 0 {
		return nil
	}
	sampler := sv.NewSamplerFromProbs(d.N, d.ReadoutProbabilities(ro))
	return sampler.Sample(shots, rand.New(rand.NewSource(seed)))
}

// SampleCounts is Sample's histogram form.
func (d *Density) SampleCounts(shots int, seed int64, ro *noise.Readout) map[int]int {
	samples := d.Sample(shots, seed, ro)
	if samples == nil {
		return nil
	}
	counts := make(map[int]int)
	for _, x := range samples {
		counts[x]++
	}
	return counts
}

func parity(x int) bool {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n%2 == 1
}
