package mpi

import (
	"fmt"
	"testing"
)

func TestBcastAllSizes(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 7, 8} {
		for root := 0; root < size; root++ {
			_, err := Run(size, CostModel{}, func(c *Comm) error {
				var data []complex128
				if c.Rank() == root {
					data = []complex128{complex(float64(root), 0), 42}
				}
				got := c.Bcast(root, 11, data)
				if len(got) != 2 || real(got[0]) != float64(root) || got[1] != 42 {
					return fmt.Errorf("size=%d root=%d rank=%d got %v", size, root, c.Rank(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestBcastInvalidRootPanics(t *testing.T) {
	_, err := Run(2, CostModel{}, func(c *Comm) error {
		c.Bcast(5, 0, nil)
		return nil
	})
	if err == nil {
		t.Fatal("invalid root accepted")
	}
}

func TestReduceSum(t *testing.T) {
	const n = 4
	_, err := Run(n, CostModel{}, func(c *Comm) error {
		data := []complex128{complex(float64(c.Rank()), 0), 1}
		got := c.ReduceSum(0, 3, data)
		if c.Rank() != 0 {
			if got != nil {
				return fmt.Errorf("non-root got %v", got)
			}
			return nil
		}
		if real(got[0]) != 0+1+2+3 || real(got[1]) != n {
			return fmt.Errorf("root got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	const n = 4
	_, err := Run(n, CostModel{}, func(c *Comm) error {
		got := c.AllreduceSum(5, []complex128{complex(float64(c.Rank()+1), 0)})
		if real(got[0]) != 1+2+3+4 {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxFloat(t *testing.T) {
	const n = 5
	_, err := Run(n, CostModel{}, func(c *Comm) error {
		got := c.AllreduceMaxFloat(9, -float64(c.Rank()))
		if got != 0 {
			return fmt.Errorf("rank %d max = %v", c.Rank(), got)
		}
		got = c.AllreduceMaxFloat(11, float64(c.Rank()*c.Rank()))
		if got != float64((n-1)*(n-1)) {
			return fmt.Errorf("rank %d max = %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
