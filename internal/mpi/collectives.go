package mpi

import "fmt"

// Bcast distributes root's buffer to every rank and returns it (a copy on
// every rank, including root). Implemented as a binomial tree rooted at 0
// after rotating ranks, matching the message count of real MPI broadcasts.
func (c *Comm) Bcast(root, tag int, data []complex128) []complex128 {
	size := c.world.size
	if root < 0 || root >= size {
		panic(fmt.Sprintf("mpi: bcast from invalid root %d", root))
	}
	if size == 1 {
		return append([]complex128(nil), data...)
	}
	// Virtual rank: rotate so the root is 0.
	vr := (c.rank - root + size) % size
	var buf []complex128
	if vr == 0 {
		buf = append([]complex128(nil), data...)
	} else {
		// Receive from the parent: clear the lowest set bit.
		parent := (vr&(vr-1) + root) % size
		buf = c.Recv(parent, tag)
	}
	// Send to children: set each bit above the lowest set bit while the
	// child id stays in range.
	for bit := 1; bit < size; bit <<= 1 {
		if vr&(bit-1) == 0 && vr&bit == 0 {
			child := vr | bit
			if child < size {
				c.Send((child+root)%size, tag, buf)
			}
		}
	}
	return buf
}

// ReduceSum element-wise sums every rank's buffer at root (returned only on
// root; nil elsewhere). All buffers must share one length.
func (c *Comm) ReduceSum(root, tag int, data []complex128) []complex128 {
	out := c.Gather(root, tag, data)
	if c.rank != root {
		return nil
	}
	sum := make([]complex128, len(data))
	for _, buf := range out {
		if len(buf) != len(sum) {
			panic("mpi: ReduceSum length mismatch")
		}
		for i, v := range buf {
			sum[i] += v
		}
	}
	return sum
}

// AllreduceSum returns the element-wise sum of every rank's buffer on every
// rank (reduce at 0, then broadcast).
func (c *Comm) AllreduceSum(tag int, data []complex128) []complex128 {
	sum := c.ReduceSum(0, tag, data)
	if c.rank != 0 {
		sum = nil
	}
	if c.rank == 0 {
		return c.Bcast(0, tag+1, sum)
	}
	return c.Bcast(0, tag+1, nil)
}

// AllreduceMaxFloat returns the maximum of each rank's scalar on every rank.
func (c *Comm) AllreduceMaxFloat(tag int, x float64) float64 {
	vals := c.Gather(0, tag, []complex128{complex(x, 0)})
	if c.rank == 0 {
		m := real(vals[0][0])
		for _, v := range vals[1:] {
			if real(v[0]) > m {
				m = real(v[0])
			}
		}
		c.Bcast(0, tag+1, []complex128{complex(m, 0)})
		return m
	}
	out := c.Bcast(0, tag+1, nil)
	return real(out[0])
}
