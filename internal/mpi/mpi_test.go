package mpi

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

func TestRunBasicSendRecv(t *testing.T) {
	stats, err := Run(2, CostModel{}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []complex128{1, 2, 3})
		} else {
			got := c.Recv(0, 7)
			if len(got) != 3 || got[2] != 3 {
				return fmt.Errorf("got %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].MsgsSent != 1 || stats[0].BytesSent != 48 {
		t.Fatalf("sender stats %+v", stats[0])
	}
	if stats[1].MsgsRecv != 1 || stats[1].BytesRecv != 48 {
		t.Fatalf("receiver stats %+v", stats[1])
	}
}

func TestSendCopiesData(t *testing.T) {
	_, err := Run(2, CostModel{}, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []complex128{1}
			c.Send(1, 0, buf)
			buf[0] = 99 // must not affect the receiver
		} else {
			if got := c.Recv(0, 0); got[0] != 1 {
				return fmt.Errorf("received mutated buffer: %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvOutOfOrderTags(t *testing.T) {
	_, err := Run(2, CostModel{}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []complex128{1})
			c.Send(1, 2, []complex128{2})
		} else {
			// Receive in reverse tag order.
			if got := c.Recv(0, 2); got[0] != 2 {
				return fmt.Errorf("tag 2 got %v", got)
			}
			if got := c.Recv(0, 1); got[0] != 1 {
				return fmt.Errorf("tag 1 got %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchange(t *testing.T) {
	_, err := Run(4, CostModel{}, func(c *Comm) error {
		peer := c.Rank() ^ 1
		got := c.Exchange(peer, 5, []complex128{complex(float64(c.Rank()), 0)})
		if real(got[0]) != float64(peer) {
			return fmt.Errorf("rank %d exchange got %v", c.Rank(), got)
		}
		// Self-exchange is a copy.
		self := c.Exchange(c.Rank(), 6, []complex128{42})
		if self[0] != 42 {
			return fmt.Errorf("self exchange got %v", self)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallv(t *testing.T) {
	const n = 4
	_, err := Run(n, CostModel{}, func(c *Comm) error {
		bufs := make([][]complex128, n)
		for dst := 0; dst < n; dst++ {
			bufs[dst] = []complex128{complex(float64(c.Rank()*10+dst), 0)}
		}
		out := c.Alltoallv(3, bufs)
		for src := 0; src < n; src++ {
			want := float64(src*10 + c.Rank())
			if real(out[src][0]) != want {
				return fmt.Errorf("rank %d from %d: got %v want %v", c.Rank(), src, out[src], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvVariableSizes(t *testing.T) {
	const n = 3
	_, err := Run(n, CostModel{}, func(c *Comm) error {
		bufs := make([][]complex128, n)
		for dst := 0; dst < n; dst++ {
			bufs[dst] = make([]complex128, c.Rank()+1) // size depends on src
		}
		out := c.Alltoallv(0, bufs)
		for src := 0; src < n; src++ {
			if len(out[src]) != src+1 {
				return fmt.Errorf("from %d: len %d", src, len(out[src]))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	const n = 4
	_, err := Run(n, CostModel{}, func(c *Comm) error {
		out := c.Gather(0, 9, []complex128{complex(float64(c.Rank()), 0)})
		if c.Rank() == 0 {
			for r := 0; r < n; r++ {
				if real(out[r][0]) != float64(r) {
					return fmt.Errorf("gather[%d] = %v", r, out[r])
				}
			}
		} else if out != nil {
			return fmt.Errorf("non-root got data")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	const n = 8
	var before, after int64
	_, err := Run(n, CostModel{}, func(c *Comm) error {
		atomic.AddInt64(&before, 1)
		c.Barrier()
		if atomic.LoadInt64(&before) != n {
			return fmt.Errorf("rank %d passed barrier early", c.Rank())
		}
		atomic.AddInt64(&after, 1)
		c.Barrier()
		if atomic.LoadInt64(&after) != n {
			return fmt.Errorf("rank %d passed second barrier early", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCostModelAccounting(t *testing.T) {
	model := CostModel{Latency: 1e-6, Bandwidth: 1e9}
	stats, err := Run(2, model, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]complex128, 1000)) // 16 kB
		} else {
			c.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1e-6 + 16000.0/1e9
	if math.Abs(stats[0].CommSeconds-want) > 1e-12 {
		t.Fatalf("sender comm time = %v, want %v", stats[0].CommSeconds, want)
	}
	if math.Abs(stats[1].CommSeconds-want) > 1e-12 {
		t.Fatalf("receiver comm time = %v, want %v", stats[1].CommSeconds, want)
	}
}

func TestCostModelZeroBandwidth(t *testing.T) {
	m := CostModel{Latency: 2e-6}
	if m.Time(1000) != 2e-6 {
		t.Fatal("zero bandwidth should cost latency only")
	}
}

func TestHDR100(t *testing.T) {
	m := HDR100()
	if m.Latency <= 0 || m.Bandwidth <= 0 {
		t.Fatal("HDR100 model not positive")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	_, err := Run(2, CostModel{}, func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	_, err := Run(2, CostModel{}, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestStatsHelpers(t *testing.T) {
	stats := []Stats{{CommSeconds: 1, BytesSent: 10}, {CommSeconds: 3, BytesSent: 30}}
	if MaxCommSeconds(stats) != 3 {
		t.Fatal("max wrong")
	}
	if AvgCommSeconds(stats) != 2 {
		t.Fatal("avg wrong")
	}
	if TotalBytes(stats) != 40 {
		t.Fatal("total wrong")
	}
	if AvgCommSeconds(nil) != 0 {
		t.Fatal("empty avg")
	}
}

func TestInvalidRanksPanic(t *testing.T) {
	_, err := Run(1, CostModel{}, func(c *Comm) error {
		c.Send(5, 0, nil)
		return nil
	})
	if err == nil {
		t.Fatal("invalid destination accepted")
	}
}
