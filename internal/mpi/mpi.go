// Package mpi is the repo's stand-in for the paper's MPI layer: an
// in-process message-passing runtime whose ranks are goroutines. It provides
// the collectives the simulators need (point-to-point send/recv, pairwise
// exchange, all-to-all-v, barrier, gather) and — because the object of study
// is communication volume — it meters every transfer per rank and converts
// it to modeled wall-clock time with a latency+bandwidth (α–β) cost model
// calibrated to the paper's InfiniBand HDR-100 interconnect.
package mpi

import (
	"fmt"
	"sync"
	"time"
)

// CostModel is the α–β communication model: a message of b bytes costs
// Latency + b/Bandwidth seconds on both endpoints.
type CostModel struct {
	Latency   float64 // seconds per message
	Bandwidth float64 // bytes per second
}

// HDR100 approximates one InfiniBand HDR-100 link as used on Frontera:
// ~1.5 µs MPI latency, ~12 GB/s effective bandwidth.
func HDR100() CostModel {
	return CostModel{Latency: 1.5e-6, Bandwidth: 12e9}
}

// Time returns the modeled seconds for one message of b bytes.
func (m CostModel) Time(b int64) float64 {
	if m.Bandwidth <= 0 {
		return m.Latency
	}
	return m.Latency + float64(b)/m.Bandwidth
}

// Stats accumulates one rank's communication and compute footprint.
type Stats struct {
	Rank           int
	MsgsSent       int64
	MsgsRecv       int64
	BytesSent      int64
	BytesRecv      int64
	CommSeconds    float64 // modeled (α–β) communication time
	ComputeSeconds float64 // measured local compute time
}

type message struct {
	tag  int
	data []complex128
}

// World is one communicator spanning Size ranks.
type World struct {
	size   int
	model  CostModel
	mail   []chan message // mail[src*size+dst]
	stats  []Stats
	realOf []int // physical node of each rank; co-located transfers are free

	barrierMu   sync.Mutex
	barrierCond *sync.Cond
	barrierCnt  int
	barrierGen  int
}

// NewWorld creates a communicator for size ranks.
func NewWorld(size int, model CostModel) *World {
	if size < 1 {
		panic("mpi: world size must be >= 1")
	}
	realOf := make([]int, size)
	for i := range realOf {
		realOf[i] = i
	}
	w := &World{size: size, model: model, realOf: realOf,
		mail:  make([]chan message, size*size),
		stats: make([]Stats, size),
	}
	for i := range w.mail {
		// Generous buffering: a rank sends at most a handful of in-flight
		// messages per peer in the protocols used here.
		w.mail[i] = make(chan message, 4+size)
	}
	for r := range w.stats {
		w.stats[r].Rank = r
	}
	w.barrierCond = sync.NewCond(&w.barrierMu)
	return w
}

// Run executes fn on every rank concurrently and returns per-rank stats.
// The first error (if any) is returned after all ranks finish.
func Run(size int, model CostModel, fn func(c *Comm) error) ([]Stats, error) {
	return RunMapped(size, nil, model, fn)
}

// RunMapped is Run with a virtual-rank mapping (the paper's footnote-2
// relaxation): realOf[v] names the physical node hosting virtual rank v.
// Transfers between co-located virtual ranks are intra-node copies and are
// metered as zero communication. realOf == nil means one rank per node.
func RunMapped(size int, realOf []int, model CostModel, fn func(c *Comm) error) ([]Stats, error) {
	w := NewWorld(size, model)
	if realOf != nil {
		if len(realOf) != size {
			return nil, fmt.Errorf("mpi: realOf has %d entries for %d ranks", len(realOf), size)
		}
		copy(w.realOf, realOf)
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = fn(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return w.stats, err
		}
	}
	return w.stats, nil
}

// Comm is one rank's handle on the world.
type Comm struct {
	world   *World
	rank    int
	pending []message // out-of-order buffer per peer is folded into one list
	pendSrc []int
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.world.size }

// Stats returns a snapshot of this rank's accounting.
func (c *Comm) Stats() Stats { return c.world.stats[c.rank] }

func (c *Comm) chanTo(dst int) chan message   { return c.world.mail[c.rank*c.world.size+dst] }
func (c *Comm) chanFrom(src int) chan message { return c.world.mail[src*c.world.size+c.rank] }

// Send transmits data (copied) to dst with a tag. Never blocks indefinitely
// under the collectives' usage patterns; panics on a full mailbox, which
// indicates a protocol bug.
func (c *Comm) Send(dst, tag int, data []complex128) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	buf := append([]complex128(nil), data...)
	if c.world.realOf[c.rank] != c.world.realOf[dst] {
		b := int64(len(buf)) * 16
		st := &c.world.stats[c.rank]
		st.MsgsSent++
		st.BytesSent += b
		st.CommSeconds += c.world.model.Time(b)
	}
	select {
	case c.chanTo(dst) <- message{tag: tag, data: buf}:
	case <-time.After(30 * time.Second):
		panic(fmt.Sprintf("mpi: rank %d send to %d tag %d stalled (mailbox full)", c.rank, dst, tag))
	}
}

// Recv receives the next message from src with the given tag, buffering any
// other tags that arrive first.
func (c *Comm) Recv(src, tag int) []complex128 {
	if src < 0 || src >= c.world.size {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d", src))
	}
	// Check the out-of-order buffer first.
	for i, m := range c.pending {
		if c.pendSrc[i] == src && m.tag == tag {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			c.pendSrc = append(c.pendSrc[:i], c.pendSrc[i+1:]...)
			c.account(src, m)
			return m.data
		}
	}
	for {
		select {
		case m := <-c.chanFrom(src):
			if m.tag == tag {
				c.account(src, m)
				return m.data
			}
			c.pending = append(c.pending, m)
			c.pendSrc = append(c.pendSrc, src)
		case <-time.After(30 * time.Second):
			panic(fmt.Sprintf("mpi: rank %d recv from %d tag %d timed out", c.rank, src, tag))
		}
	}
}

func (c *Comm) account(src int, m message) {
	if c.world.realOf[src] == c.world.realOf[c.rank] {
		return // intra-node copy
	}
	b := int64(len(m.data)) * 16
	st := &c.world.stats[c.rank]
	st.MsgsRecv++
	st.BytesRecv += b
	st.CommSeconds += c.world.model.Time(b)
}

// Exchange swaps buffers with a peer rank (pairwise sendrecv).
func (c *Comm) Exchange(peer, tag int, data []complex128) []complex128 {
	if peer == c.rank {
		return append([]complex128(nil), data...)
	}
	// Lower rank sends first; the generous mailbox buffering makes the
	// ordering irrelevant for progress, but determinism helps debugging.
	c.Send(peer, tag, data)
	return c.Recv(peer, tag)
}

// Alltoallv sends bufs[dst] to every destination and returns the buffers
// received from every source (out[src]). bufs[rank] is passed through
// locally without cost.
func (c *Comm) Alltoallv(tag int, bufs [][]complex128) [][]complex128 {
	size := c.world.size
	if len(bufs) != size {
		panic(fmt.Sprintf("mpi: Alltoallv wants %d buffers, got %d", size, len(bufs)))
	}
	out := make([][]complex128, size)
	for dst := 0; dst < size; dst++ {
		if dst == c.rank {
			out[dst] = append([]complex128(nil), bufs[dst]...)
			continue
		}
		c.Send(dst, tag, bufs[dst])
	}
	for src := 0; src < size; src++ {
		if src == c.rank {
			continue
		}
		out[src] = c.Recv(src, tag)
	}
	return out
}

// Gather collects every rank's buffer at root (returned only on root,
// indexed by rank; nil elsewhere).
func (c *Comm) Gather(root, tag int, data []complex128) [][]complex128 {
	if c.rank != root {
		c.Send(root, tag, data)
		return nil
	}
	out := make([][]complex128, c.world.size)
	out[root] = append([]complex128(nil), data...)
	for src := 0; src < c.world.size; src++ {
		if src == root {
			continue
		}
		out[src] = c.Recv(src, tag)
	}
	return out
}

// Barrier blocks until every rank arrives.
func (c *Comm) Barrier() {
	w := c.world
	w.barrierMu.Lock()
	gen := w.barrierGen
	w.barrierCnt++
	if w.barrierCnt == w.size {
		w.barrierCnt = 0
		w.barrierGen++
		w.barrierCond.Broadcast()
	} else {
		for gen == w.barrierGen {
			w.barrierCond.Wait()
		}
	}
	w.barrierMu.Unlock()
}

// RecordCompute adds measured local compute seconds to this rank's stats.
func (c *Comm) RecordCompute(seconds float64) {
	c.world.stats[c.rank].ComputeSeconds += seconds
}

// MaxCommSeconds returns the slowest rank's modeled communication time.
func MaxCommSeconds(stats []Stats) float64 {
	m := 0.0
	for _, s := range stats {
		if s.CommSeconds > m {
			m = s.CommSeconds
		}
	}
	return m
}

// AvgCommSeconds returns the mean modeled communication time across ranks
// (the metric the paper's Fig. 7 reports).
func AvgCommSeconds(stats []Stats) float64 {
	if len(stats) == 0 {
		return 0
	}
	t := 0.0
	for _, s := range stats {
		t += s.CommSeconds
	}
	return t / float64(len(stats))
}

// TotalBytes returns the total bytes sent across all ranks.
func TotalBytes(stats []Stats) int64 {
	var b int64
	for _, s := range stats {
		b += s.BytesSent
	}
	return b
}
