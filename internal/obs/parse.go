package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format parsing — the inverse of Registry.WriteText. The
// coordinator's /metrics/federate endpoint scrapes every live worker's
// /metrics, parses the exposition back into families and samples with
// ParseText, stamps a worker label on each sample and re-exposes the lot
// with WriteFamilies. Round-tripping WriteText → ParseText → WriteFamilies
// is byte-identical (pinned by TestParseTextRoundTrip).

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition line: a metric name (for histograms this is the
// _bucket/_sum/_count series name, not the family name), its labels in
// wire order, and the value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label returns the value of the named label, or "".
func (s *Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// WithLabel returns a copy of the sample with the given label appended
// (or replaced, if a label of that name is already present).
func (s *Sample) WithLabel(name, value string) Sample {
	out := Sample{Name: s.Name, Value: s.Value, Labels: make([]Label, 0, len(s.Labels)+1)}
	replaced := false
	for _, l := range s.Labels {
		if l.Name == name {
			l.Value = value
			replaced = true
		}
		out.Labels = append(out.Labels, l)
	}
	if !replaced {
		out.Labels = append(out.Labels, Label{Name: name, Value: value})
	}
	return out
}

// MetricFamily is one named metric as parsed off the wire: HELP/TYPE
// metadata plus every sample line that belongs to it (histogram families
// keep their raw _bucket/_sum/_count samples).
type MetricFamily struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, summary, untyped
	Samples []Sample
}

// ParseText parses Prometheus text exposition format (version 0.0.4) into
// metric families, in first-seen order. It understands # HELP / # TYPE
// comment lines (other comments are skipped), labeled samples with the
// standard \\ \" \n escapes, +Inf/-Inf/NaN values, and optional trailing
// timestamps (parsed and discarded). Histogram and summary series
// (name_bucket, name_sum, name_count, quantiles) are attached to their
// base family when a # TYPE line declared one; otherwise each sample name
// becomes its own untyped family.
func ParseText(r io.Reader) ([]*MetricFamily, error) {
	byName := map[string]*MetricFamily{}
	var fams []*MetricFamily
	getFam := func(name string) *MetricFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &MetricFamily{Name: name}
		byName[name] = f
		fams = append(fams, f)
		return f
	}
	// famFor maps a sample name to its family, peeling histogram/summary
	// suffixes when (and only when) the base family was declared with a
	// matching # TYPE.
	famFor := func(sample string) *MetricFamily {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(sample, suf)
			if !ok {
				continue
			}
			if f, ok := byName[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
				return f
			}
		}
		return getFam(sample)
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			fields := strings.SplitN(trimmed, " ", 4)
			if len(fields) < 3 {
				continue // free-form comment
			}
			switch fields[1] {
			case "HELP":
				f := getFam(fields[2])
				if len(fields) == 4 {
					f.Help = unescapeHelp(fields[3])
				}
			case "TYPE":
				f := getFam(fields[2])
				if len(fields) == 4 {
					f.Type = fields[3]
				}
			}
			continue
		}
		s, err := parseSampleLine(trimmed)
		if err != nil {
			return nil, fmt.Errorf("obs: parse metrics line %d: %w", lineNo, err)
		}
		f := famFor(s.Name)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: parse metrics: %w", err)
	}
	return fams, nil
}

// parseSampleLine parses one `name{labels} value [timestamp]` line.
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && isNameByte(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("invalid metric name in %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels, rest = labels, tail
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("missing value in %q", line)
	}
	// Optional trailing timestamp (milliseconds) after the value.
	valStr := rest
	if j := strings.IndexAny(rest, " \t"); j >= 0 {
		valStr = rest[:j]
		ts := strings.TrimSpace(rest[j:])
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return s, fmt.Errorf("trailing garbage %q in %q", ts, line)
		}
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("invalid value %q in %q", valStr, line)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `{k="v",…}` at the start of rest, returning the
// labels and the remainder of the line.
func parseLabels(rest string) ([]Label, string, error) {
	var labels []Label
	i := 1 // past '{'
	for {
		for i < len(rest) && (rest[i] == ' ' || rest[i] == ',') {
			i++
		}
		if i < len(rest) && rest[i] == '}' {
			return labels, rest[i+1:], nil
		}
		start := i
		for i < len(rest) && isNameByte(rest[i], i == start) {
			i++
		}
		if i == start || i >= len(rest) || rest[i] != '=' {
			return nil, "", fmt.Errorf("invalid label name at %q", rest[start:])
		}
		name := rest[start:i]
		i++ // past '='
		if i >= len(rest) || rest[i] != '"' {
			return nil, "", fmt.Errorf("label %s: missing opening quote", name)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(rest) {
				return nil, "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := rest[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch rest[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: unknown escape \\%c", name, rest[i+1])
				}
				i += 2
				continue
			}
			b.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Name: name, Value: b.String()})
	}
}

// parseValue parses a sample value, including the spelled-out specials.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// isNameByte reports whether c may appear in a metric/label name
// ([a-zA-Z_:][a-zA-Z0-9_:]*; label names exclude ':' but accepting it is
// harmless on parse).
func isNameByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// unescapeHelp undoes escapeHelp: \\n and \\\\ only.
func unescapeHelp(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// WriteFamilies renders parsed (possibly re-labeled) families back into
// text exposition format: HELP/TYPE comments followed by each sample in
// order. The inverse of ParseText.
func WriteFamilies(w io.Writer, fams []*MetricFamily) error {
	var b strings.Builder
	for _, f := range fams {
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		if f.Type != "" {
			fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		}
		for _, s := range f.Samples {
			b.WriteString(s.Name)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Name)
					b.WriteString(`="`)
					b.WriteString(escapeLabel(l.Value))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.Value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SortFamilies orders families by name in place — scraped expositions are
// already sorted per worker, but a federated merge interleaves sources.
func SortFamilies(fams []*MetricFamily) {
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
}
