package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one completed (or in-progress) stage of a traced job: its name,
// its offset from the trace start, and its duration.
type Span struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// Trace is a sequential per-job stage tracer: at any moment at most one
// stage is open, Begin closes the current stage and opens the next at the
// same instant, and Finish closes the last one. Because the stages tile
// the trace window with no gaps or overlaps, the span durations sum to
// exactly the traced wall time — the invariant the /v1/jobs/{id}/trace
// acceptance check leans on.
//
// All methods are safe for concurrent use and no-ops on a nil *Trace, so
// instrumented code paths (core, the trajectory engine) can Begin stages
// unconditionally via TraceFromContext.
type Trace struct {
	mu       sync.Mutex
	t0       time.Time
	spans    []Span
	cur      string
	curStart time.Time
	done     bool
}

// NewTrace starts a trace whose window opens at start (zero = now).
func NewTrace(start time.Time) *Trace {
	if start.IsZero() {
		start = time.Now()
	}
	return &Trace{t0: start}
}

// Begin closes the current stage (if any) and opens name, both at now.
func (t *Trace) Begin(name string) { t.BeginAt(name, time.Now()) }

// BeginAt is Begin at an explicit instant — the service uses it to open
// the queue_wait stage at exactly the submit timestamp the trace window
// starts at, so the spans tile the full submitted→finished window.
func (t *Trace) BeginAt(name string, now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.endLocked(now)
	t.cur = name
	t.curStart = now
}

// Finish closes the current stage; further Begins are ignored.
func (t *Trace) Finish() { t.FinishAt(time.Now()) }

// FinishAt is Finish at an explicit instant (the job's finished
// timestamp, so the last span ends exactly where the wall clock stops).
func (t *Trace) FinishAt(now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.endLocked(now)
	t.done = true
}

// maxTraceSpans bounds a trace's stored spans. A job that flips stages
// thousands of times (a big sweep's per-point ensembles) folds the
// overflow into its trailing span instead of growing without bound;
// tiling is preserved because the folded span absorbs the extra time.
const maxTraceSpans = 512

func (t *Trace) endLocked(now time.Time) {
	if t.cur == "" {
		return
	}
	if n := len(t.spans); n > 0 {
		last := &t.spans[n-1]
		if last.Name == t.cur || n >= maxTraceSpans {
			// Coalesce: contiguous same-name stages merge into one span, and
			// past the cap everything folds into the trailing span.
			last.Dur = now.Sub(t.t0) - last.Start
			t.cur = ""
			return
		}
	}
	t.spans = append(t.spans, Span{Name: t.cur, Start: t.curStart.Sub(t.t0), Dur: now.Sub(t.curStart)})
	t.cur = ""
}

// Spans returns a copy of the recorded spans. While the trace is live the
// open stage is included with its duration measured to now, so snapshots
// of running jobs show where time is going.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]Span(nil), t.spans...)
	if t.cur != "" {
		out = append(out, Span{Name: t.cur, Start: t.curStart.Sub(t.t0), Dur: time.Since(t.curStart)})
	}
	return out
}

// Start returns the trace window's opening instant.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.t0
}

type traceCtxKey struct{}

// ContextWithTrace attaches the trace to the context so lower layers
// (core.SimulateContext, the trajectory engine) can mark their stages.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFromContext returns the attached trace, or nil (on which every
// Trace method is a safe no-op).
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}
