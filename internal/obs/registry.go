// Package obs is the observability layer: a dependency-free metrics
// registry (counters, gauges, histograms with atomic hot paths and
// Prometheus text-format exposition), a lightweight per-job stage tracer,
// request-ID plumbing through context.Context, and slog helpers. The
// service, the caches and the HTTP daemon all report through one Registry,
// which a single GET /metrics handler exposes.
//
// Hot-path discipline: once a caller holds a *Counter, *Gauge or
// *Histogram (resolve labeled children ONCE with Vec.With, outside the
// loop), Add/Inc/Set/Observe are single atomic operations and never
// allocate — see BenchmarkCounterInc / BenchmarkHistogramObserve and the
// allocation guard in registry_test.go.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric type names as they appear on # TYPE lines. typFloatCounter is an
// internal shape (float-valued monotone series, e.g. attributed kernel
// seconds) that renders as a plain Prometheus counter.
const (
	typeCounter     = "counter"
	typeGauge       = "gauge"
	typeHistogram   = "histogram"
	typFloatCounter = "floatcounter"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use. Registration
// is get-or-create: asking twice for the same (name, type, labels) returns
// the same family; re-registering a name with a different shape panics
// (programmer error, like a duplicate flag).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is one named metric with a fixed label schema and its children
// (one per label-value combination; unlabeled metrics have a single child
// under the empty key).
type family struct {
	name   string
	help   string
	typ    string
	labels []string
	bounds []float64      // histogram bucket upper bounds, ascending
	fn     func() float64 // callback gauge (no children)

	mu       sync.Mutex
	children map[string]*child
	// root is the hot-path lookup trie: one level per label, keyed by that
	// label's value. Resolving a child walks len(labels) map lookups on
	// strings the caller already holds — no joined-key allocation, unlike
	// the children map (which only exposition iterates).
	root lookupNode
}

// lookupNode is one trie level of a family's child lookup.
type lookupNode struct {
	leaf *child
	next map[string]*lookupNode
}

// child is one label-value combination's storage. Counters use count;
// gauges store float64 bits in bits; histograms use buckets (per-bound,
// non-cumulative) plus bits as the observation sum. The typed wrapper is
// built once at child creation and handed out by every Vec.With, so the
// hot-path lookup is allocation-free even without caller-side caching.
type child struct {
	labelVals []string
	count     atomic.Int64
	bits      atomic.Uint64
	buckets   []atomic.Int64 // len(bounds)+1; last is the +Inf overflow

	counter  *Counter
	fcounter *FloatCounter
	gauge    *Gauge
	hist     *Histogram
}

// childKey joins label values with an unprintable separator.
func childKey(vals []string) string { return strings.Join(vals, "\x00") }

func (f *family) child(vals ...string) *child {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := &f.root
	for _, v := range vals {
		nx, ok := n.next[v]
		if !ok {
			if n.next == nil {
				n.next = map[string]*lookupNode{}
			}
			nx = &lookupNode{}
			n.next[v] = nx
		}
		n = nx
	}
	c := n.leaf
	if c == nil {
		c = &child{labelVals: append([]string(nil), vals...)}
		switch f.typ {
		case typeHistogram:
			c.buckets = make([]atomic.Int64, len(f.bounds)+1)
			c.hist = &Histogram{bounds: f.bounds, c: c}
		case typeCounter:
			c.counter = &Counter{c: c}
		case typFloatCounter:
			c.fcounter = &FloatCounter{c: c}
		case typeGauge:
			c.gauge = &Gauge{c: c}
		}
		f.children[childKey(vals)] = c
		n.leaf = c
	}
	return c
}

// family returns the named family, creating it on first use and panicking
// on a shape mismatch with an earlier registration.
func (r *Registry) family(name, help, typ string, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s%v (was %s%v)", name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: map[string]*child{},
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing count.
type Counter struct{ c *child }

// Inc adds 1.
func (c *Counter) Inc() { c.c.count.Add(1) }

// Add adds n (n must be ≥ 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(n int64) { c.c.count.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.c.count.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.c.bits.Store(math.Float64bits(v)) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.c.bits.Load()) }

// FloatCounter is a monotonically increasing float64 total (e.g. seconds
// of attributed kernel time). It renders as a Prometheus counter.
type FloatCounter struct{ c *child }

// Add adds v (must be ≥ 0 for Prometheus semantics; not enforced).
// Allocation-free: one CAS loop.
func (c *FloatCounter) Add(v float64) {
	for {
		old := c.c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.c.bits.Load()) }

// Histogram counts observations into fixed buckets and tracks their sum.
type Histogram struct {
	bounds []float64
	c      *child
}

// Observe records one value. Allocation-free: one bucket increment, one
// count increment, one CAS-loop sum update.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.c.buckets[i].Add(1)
	h.c.count.Add(1)
	for {
		old := h.c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.c.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.c.bits.Load()) }

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the child for the given label values (created on first
// use). The wrapper is cached on the child, so repeated With calls are
// allocation-free; still resolve once outside tight loops to skip the
// map lookup.
func (v *CounterVec) With(vals ...string) *Counter { return v.f.child(vals...).counter }

// Each calls fn for every populated child, in unspecified order.
func (v *CounterVec) Each(fn func(labels []string, value int64)) {
	v.f.mu.Lock()
	children := make([]*child, 0, len(v.f.children))
	for _, c := range v.f.children {
		children = append(children, c)
	}
	v.f.mu.Unlock()
	for _, c := range children {
		fn(c.labelVals, c.count.Load())
	}
}

// FloatCounterVec is a float-counter family with labels.
type FloatCounterVec struct{ f *family }

// With returns the cached child wrapper for the given label values.
func (v *FloatCounterVec) With(vals ...string) *FloatCounter { return v.f.child(vals...).fcounter }

// Each calls fn for every populated child, in unspecified order.
func (v *FloatCounterVec) Each(fn func(labels []string, value float64)) {
	v.f.mu.Lock()
	children := make([]*child, 0, len(v.f.children))
	for _, c := range v.f.children {
		children = append(children, c)
	}
	v.f.mu.Unlock()
	for _, c := range children {
		fn(c.labelVals, math.Float64frombits(c.bits.Load()))
	}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the cached child wrapper for the given label values.
func (v *GaugeVec) With(vals ...string) *Gauge { return v.f.child(vals...).gauge }

// Each calls fn for every populated child, in unspecified order.
func (v *GaugeVec) Each(fn func(labels []string, value float64)) {
	v.f.mu.Lock()
	children := make([]*child, 0, len(v.f.children))
	for _, c := range v.f.children {
		children = append(children, c)
	}
	v.f.mu.Unlock()
	for _, c := range children {
		fn(c.labelVals, math.Float64frombits(c.bits.Load()))
	}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the cached child wrapper for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram {
	return v.f.child(vals...).hist
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, typeCounter, nil, nil).child().counter
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, typeCounter, labels, nil)}
}

// FloatCounterVec registers (or returns) a labeled float-counter family.
func (r *Registry) FloatCounterVec(name, help string, labels ...string) *FloatCounterVec {
	return &FloatCounterVec{f: r.family(name, help, typFloatCounter, labels, nil)}
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, typeGauge, nil, nil).child().gauge
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, typeGauge, labels, nil)}
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time (e.g. a queue length or a cache size under the owner's lock).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, typeGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// Histogram registers (or returns) an unlabeled histogram with the given
// ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, typeHistogram, nil, buckets).child().hist
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, typeHistogram, labels, buckets)}
}

// DurationBuckets is the default latency bucket ladder in seconds: 100 µs
// to 60 s, roughly 1-2.5-5 per decade — wide enough for cache-hit sampling
// jobs and multi-second cold simulations alike.
func DurationBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4): families sorted by name, children sorted by label
// values, HELP/TYPE comment lines, histogram cumulative buckets with _sum
// and _count series.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		typ := f.typ
		if typ == typFloatCounter {
			typ = typeCounter // internal shape; standard counter on the wire
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, typ)
		f.mu.Lock()
		if f.fn != nil {
			fn := f.fn
			f.mu.Unlock()
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(fn()))
			continue
		}
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]*child, 0, len(keys))
		for _, k := range keys {
			children = append(children, f.children[k])
		}
		f.mu.Unlock()
		for _, c := range children {
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(f.labels, c.labelVals, "", 0), c.count.Load())
			case typFloatCounter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, c.labelVals, "", 0),
					formatFloat(math.Float64frombits(c.bits.Load())))
			case typeGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, c.labelVals, "", 0),
					formatFloat(math.Float64frombits(c.bits.Load())))
			case typeHistogram:
				var cum int64
				for i := range f.bounds {
					cum += c.buckets[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						labelString(f.labels, c.labelVals, "le", f.bounds[i]), cum)
				}
				cum += c.buckets[len(f.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, c.labelVals, "le", math.Inf(1)), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(f.labels, c.labelVals, "", 0),
					formatFloat(math.Float64frombits(c.bits.Load())))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(f.labels, c.labelVals, "", 0), cum)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry over HTTP with the Prometheus text content
// type — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// labelString renders {k="v",…}, optionally appending an le label (for
// histogram buckets). Empty label sets with no le render as "".
func labelString(names, vals []string, leName string, le float64) string {
	if len(names) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if leName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		b.WriteString(formatFloat(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double-quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
