package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestParseTextRoundTrip pins the inverse property the federation endpoint
// relies on: WriteText → ParseText → WriteFamilies reproduces the original
// exposition byte for byte, across counters, gauges, float counters,
// labeled vecs, histograms and escaped label values.
func TestParseTextRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_jobs_total", "Jobs.").Add(42)
	reg.Gauge("t_queue_depth", "Depth.").Set(3)
	reg.CounterVec("t_hits_total", "Hits.", "cache", "kind").With("plan", `we"ird\va1ue`).Add(7)
	reg.CounterVec("t_hits_total", "Hits.", "cache", "kind").With("state", "line1\nline2").Add(9)
	reg.FloatCounterVec("t_seconds_total", "Seconds.", "kernel").With("dense").Add(1.25)
	reg.GaugeFunc("t_func_gauge", "Callback.", func() float64 { return 2.5 })
	h := reg.HistogramVec("t_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1}, "route")
	h.With("GET /v1/jobs").Observe(0.005)
	h.With("GET /v1/jobs").Observe(0.05)
	h.With("GET /v1/jobs").Observe(5)

	var orig bytes.Buffer
	if err := reg.WriteText(&orig); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var rt bytes.Buffer
	if err := WriteFamilies(&rt, fams); err != nil {
		t.Fatal(err)
	}
	if rt.String() != orig.String() {
		t.Fatalf("round trip is not byte-identical\n--- original ---\n%s\n--- round-trip ---\n%s", orig.String(), rt.String())
	}
}

func TestParseTextSemantics(t *testing.T) {
	in := `# HELP demo_total A demo\ncounter with \\ escapes.
# TYPE demo_total counter
demo_total{worker="http://w1",q="a\"b\\c\nd"} 12 1700000000000
# TYPE demo_hist histogram
demo_hist_bucket{le="0.1"} 1
demo_hist_bucket{le="+Inf"} 2
demo_hist_sum 1.5
demo_hist_count 2
demo_gauge NaN
`
	fams, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*MetricFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	c := byName["demo_total"]
	if c == nil || c.Type != "counter" {
		t.Fatalf("demo_total family missing or untyped: %+v", c)
	}
	if want := "A demo\ncounter with \\ escapes."; c.Help != want {
		t.Fatalf("help = %q, want %q", c.Help, want)
	}
	if len(c.Samples) != 1 || c.Samples[0].Value != 12 {
		t.Fatalf("demo_total samples = %+v", c.Samples)
	}
	if got := c.Samples[0].Label("q"); got != "a\"b\\c\nd" {
		t.Fatalf("escaped label = %q", got)
	}
	hist := byName["demo_hist"]
	if hist == nil || len(hist.Samples) != 4 {
		t.Fatalf("histogram series not attached to base family: %+v", hist)
	}
	if hist.Samples[1].Name != "demo_hist_bucket" || !math.IsInf(mustLabelFloat(t, hist.Samples[1], "le"), 1) {
		t.Fatalf("+Inf bucket mangled: %+v", hist.Samples[1])
	}
	g := byName["demo_gauge"]
	if g == nil || len(g.Samples) != 1 || !math.IsNaN(g.Samples[0].Value) {
		t.Fatalf("NaN gauge mangled: %+v", g)
	}
}

func mustLabelFloat(t *testing.T, s Sample, name string) float64 {
	t.Helper()
	v, err := parseValue(s.Label(name))
	if err != nil {
		t.Fatalf("label %s=%q: %v", name, s.Label(name), err)
	}
	return v
}

func TestParseTextErrors(t *testing.T) {
	for _, in := range []string{
		"demo_total\n",                      // missing value
		`demo_total{x="unterminated`,        // unterminated label value
		`demo_total{x="bad\q"} 1`,           // unknown escape
		"demo_total 1 notatimestamp\n",      // garbage after value
		"demo_total{x=\"ok\"} notanumber\n", // bad value
	} {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("ParseText(%q) accepted malformed input", in)
		}
	}
}

func TestSampleWithLabel(t *testing.T) {
	s := Sample{Name: "x", Labels: []Label{{Name: "a", Value: "1"}}, Value: 2}
	out := s.WithLabel("worker", "http://w1")
	if out.Label("worker") != "http://w1" || out.Label("a") != "1" {
		t.Fatalf("WithLabel append: %+v", out)
	}
	out2 := out.WithLabel("worker", "http://w2")
	if out2.Label("worker") != "http://w2" || len(out2.Labels) != 2 {
		t.Fatalf("WithLabel replace: %+v", out2)
	}
	if s.Label("worker") != "" {
		t.Fatal("WithLabel mutated the receiver")
	}
}

func TestNodeTree(t *testing.T) {
	root := &Node{Name: "job", DurationMS: 100, Children: []*Node{
		{Name: "plan", DurationMS: 10},
		{Name: "fanout", DurationMS: 80, Children: []*Node{
			{Name: "sub0", DurationMS: 80, Children: []*Node{
				{Name: "attempt0", Status: "ok", DurationMS: 78, Children: []*Node{
					{Name: "queue_wait", DurationMS: 8},
					{Name: "trajectories", DurationMS: 70},
				}},
			}},
		}},
		{Name: "merge", DurationMS: 10},
	}}
	if got := root.Depth(); got != 5 {
		t.Fatalf("Depth = %d, want 5", got)
	}
	if err := root.TileError(); err != 0 {
		t.Fatalf("root TileError = %v, want 0", err)
	}
	attempt := root.Children[1].Children[0].Children[0]
	if err := attempt.TileError(); err != 0 {
		t.Fatalf("attempt TileError = %v, want 0", err)
	}
	attempt.Children[0].DurationMS = 4 // open a 4ms gap in a 78ms window
	if err := attempt.TileError(); math.Abs(err-4.0/78) > 1e-12 {
		t.Fatalf("attempt TileError = %v, want %v", err, 4.0/78)
	}
	var names []string
	root.Walk(func(n *Node) { names = append(names, n.Name) })
	if len(names) != 8 || names[0] != "job" || names[4] != "attempt0" {
		t.Fatalf("Walk order: %v", names)
	}
}

func TestParentSpanContext(t *testing.T) {
	ctx := WithParentSpan(t.Context(), "c-1/s0/a0")
	if got := ParentSpan(ctx); got != "c-1/s0/a0" {
		t.Fatalf("ParentSpan = %q", got)
	}
	if got := ParentSpan(t.Context()); got != "" {
		t.Fatalf("empty context ParentSpan = %q", got)
	}
}
