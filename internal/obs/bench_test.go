package obs

import (
	"io"
	"testing"
)

// The obs benchmarks are the hot-path overhead ledger: `make obs-bench`
// records them (with -benchmem) so a future change that adds an
// allocation or a lock to Counter.Inc/Histogram.Observe shows up as a
// regression instead of silently taxing every job.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "bench", DurationBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

// BenchmarkVecWith measures the labeled-child resolution path (a map
// lookup under a mutex) — cheap, but not free: hot loops should resolve
// once and hold the child.
func BenchmarkVecWith(b *testing.B) {
	vec := NewRegistry().CounterVec("bench_total", "bench", "kind", "backend")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec.With("run", "flat").Inc()
	}
}

func BenchmarkWriteText(b *testing.B) {
	reg := NewRegistry()
	vec := reg.CounterVec("bench_total", "bench", "kind")
	for _, k := range []string{"a", "b", "c", "d"} {
		vec.With(k).Add(7)
	}
	h := reg.HistogramVec("bench_seconds", "bench", DurationBuckets(), "stage")
	for _, st := range []string{"queue_wait", "execute", "sample"} {
		h.With(st).Observe(0.01)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
