package obs

import (
	"runtime"
	"strconv"
)

// RegisterBuildInfo exposes the standard build-info gauge: a constant-1
// series whose labels carry the server version, the Go toolchain and
// GOMAXPROCS, so dashboards can break every other series down by build.
func RegisterBuildInfo(r *Registry, version string) {
	r.GaugeVec("hisvsim_build_info",
		"Constant 1; labels identify the build (server version, Go toolchain, GOMAXPROCS).",
		"version", "go", "gomaxprocs").
		With(version, runtime.Version(), strconv.Itoa(runtime.GOMAXPROCS(0))).Set(1)
}

// RegisterRuntimeMetrics exposes the Go runtime gauges the profiling work
// reads next to the kernel counters: live heap bytes, goroutine count and
// cumulative GC pause time. Values are read at scrape time; ReadMemStats
// briefly stops the world, which is fine at scrape cadence.
func RegisterRuntimeMetrics(r *Registry) {
	r.GaugeFunc("hisvsim_go_heap_alloc_bytes",
		"Bytes of live heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.GaugeFunc("hisvsim_go_goroutines",
		"Current goroutine count.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("hisvsim_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time in seconds.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
}
