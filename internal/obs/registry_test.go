package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentIncrements hammers every instrument type from many
// goroutines; under `go test -race` this is the data-race guard for the
// atomic hot paths.
func TestConcurrentIncrements(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "counter")
	g := reg.Gauge("g", "gauge")
	h := reg.Histogram("h_seconds", "histogram", []float64{0.001, 0.01, 0.1})
	vec := reg.CounterVec("v_total", "labeled counter", "kind")

	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kind := []string{"a", "b", "c"}[i%3]
			child := vec.With(kind)
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%200) / 1000)
				child.Inc()
				// Exercise the child-resolution path concurrently too.
				vec.With(kind).Add(0)
			}
		}(i)
	}
	// Concurrent scrapes must not race with writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := reg.WriteText(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	const total = goroutines * perG
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge = %g, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	var vecSum int64
	vec.Each(func(_ []string, v int64) { vecSum += v })
	if vecSum != total {
		t.Errorf("vec sum = %d, want %d", vecSum, total)
	}
}

// TestHistogramBucketBoundaries pins the ≤ semantics: a value exactly on a
// bucket's upper bound lands in that bucket, just above it lands in the
// next, and everything past the last bound goes to +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latencies", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.0, 1.0001, 2.0, 5.0, 5.0001, 100} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Cumulative counts: ≤1 → {0.5, 1.0} = 2; ≤2 → +{1.0001, 2.0} = 4;
	// ≤5 → +{5.0} = 5; +Inf → +{5.0001, 100} = 7.
	for _, line := range []string{
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="2"} 4`,
		`lat_seconds_bucket{le="5"} 5`,
		`lat_seconds_bucket{le="+Inf"} 7`,
		`lat_seconds_count 7`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
	wantSum := 0.5 + 1.0 + 1.0001 + 2.0 + 5.0 + 5.0001 + 100
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("Sum = %g, want %g", h.Sum(), wantSum)
	}
}

// TestTextFormatGolden pins the full exposition output: HELP/TYPE lines,
// name-sorted families, label-sorted children, label-value escaping, and
// histogram bucket/sum/count series.
func TestTextFormatGolden(t *testing.T) {
	reg := NewRegistry()
	jobs := reg.CounterVec("app_jobs_total", "Jobs by kind.", "kind", "status")
	jobs.With("run", "done").Add(3)
	jobs.With("run", "failed").Inc()
	jobs.With(`we"ird\kind`+"\n", "done").Inc()
	reg.Gauge("app_queue_depth", "Queued jobs.").Set(2.5)
	h := reg.Histogram("app_wait_seconds", "Queue wait.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(1)
	reg.GaugeFunc("app_workers", "Worker pool size.", func() float64 { return 4 })

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_jobs_total Jobs by kind.
# TYPE app_jobs_total counter
app_jobs_total{kind="run",status="done"} 3
app_jobs_total{kind="run",status="failed"} 1
app_jobs_total{kind="we\"ird\\kind\n",status="done"} 1
# HELP app_queue_depth Queued jobs.
# TYPE app_queue_depth gauge
app_queue_depth 2.5
# HELP app_wait_seconds Queue wait.
# TYPE app_wait_seconds histogram
app_wait_seconds_bucket{le="0.01"} 1
app_wait_seconds_bucket{le="0.1"} 2
app_wait_seconds_bucket{le="+Inf"} 3
app_wait_seconds_sum 1.055
app_wait_seconds_count 3
# HELP app_workers Worker pool size.
# TYPE app_workers gauge
app_workers 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGetOrCreate verifies re-registration returns the same storage and a
// shape mismatch panics.
func TestGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x")
	b := reg.Counter("x_total", "x")
	a.Inc()
	if b.Value() != 1 {
		t.Errorf("re-registered counter did not share storage")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("type mismatch did not panic")
		}
	}()
	reg.Gauge("x_total", "now a gauge")
}

// TestObserveAllocFree is the hot-path guard: once the instrument is
// resolved, counter adds and histogram observes must not allocate.
func TestObserveAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a_total", "a")
	g := reg.Gauge("b", "b")
	h := reg.HistogramVec("c_seconds", "c", DurationBuckets(), "stage").With("execute")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(0.0042)
	}); n != 0 {
		t.Errorf("hot-path observe allocates %v times per op, want 0", n)
	}
}
