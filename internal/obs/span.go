package obs

import (
	"context"
	"math"
)

// Parent-span plumbing: when the cluster coordinator fans a job out, every
// sub-job submission carries the coordinator-side attempt span ID in an
// X-Parent-Span header (next to the propagated X-Request-ID). The worker
// threads it through context onto the job record, its log lines and its
// trace/profile bodies, so a stitched cluster trace can pin each worker
// trace under the exact coordinator attempt that produced it.

// ParentSpanHeader is the HTTP header carrying the submitting side's span
// ID on fan-out requests.
const ParentSpanHeader = "X-Parent-Span"

type spanCtxKey struct{}

// WithParentSpan attaches a parent span ID to the context.
func WithParentSpan(ctx context.Context, span string) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, span)
}

// ParentSpan returns the context's parent span ID, or "".
func ParentSpan(ctx context.Context) string {
	span, _ := ctx.Value(spanCtxKey{}).(string)
	return span
}

// Node is one span in a stitched cross-process trace tree: the coordinator
// job at the root, its plan/fanout/merge stages below, sub-job attempts
// below the fan-out, and each successful attempt's worker stages at the
// leaves. StartMS is relative to the node's parent window (worker clocks
// are not comparable to the coordinator's, so offsets only make sense one
// level at a time); DurationMS is the node's own wall time.
type Node struct {
	Name       string  `json:"name"`
	SpanID     string  `json:"span,omitempty"`
	Status     string  `json:"status,omitempty"` // ok | lost | failed ("" = structural)
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
	Children   []*Node `json:"children,omitempty"`
}

// Depth returns the number of levels in the subtree rooted at n (a leaf
// has depth 1).
func (n *Node) Depth() int {
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// SumChildrenMS returns the summed duration of n's direct children.
func (n *Node) SumChildrenMS() float64 {
	var sum float64
	for _, c := range n.Children {
		sum += c.DurationMS
	}
	return sum
}

// TileError reports how well n's direct children tile its own window: the
// relative mismatch |sum(children) − duration| / duration. Zero means the
// children partition the parent exactly; it is only meaningful for nodes
// whose children are sequential (stage lists), not for concurrent fan-out
// children. A node with no children or no wall time reports 0.
func (n *Node) TileError() float64 {
	if len(n.Children) == 0 || n.DurationMS <= 0 {
		return 0
	}
	return math.Abs(n.SumChildrenMS()-n.DurationMS) / n.DurationMS
}

// Walk calls fn for every node in the subtree in depth-first pre-order.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}
