package obs

import (
	"context"
	"testing"
	"time"
)

// TestTraceTiles verifies the tracer's core invariant: sequential stages
// tile the window, so span durations sum to exactly finish−start.
func TestTraceTiles(t *testing.T) {
	t0 := time.Now()
	tr := NewTrace(t0)
	tr.BeginAt("queue_wait", t0)
	tr.BeginAt("execute", t0.Add(10*time.Millisecond))
	tr.BeginAt("sample", t0.Add(30*time.Millisecond))
	tr.FinishAt(t0.Add(35 * time.Millisecond))

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %v", len(spans), spans)
	}
	wantNames := []string{"queue_wait", "execute", "sample"}
	wantDurs := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 5 * time.Millisecond}
	var sum time.Duration
	for i, sp := range spans {
		if sp.Name != wantNames[i] {
			t.Errorf("span %d name = %q, want %q", i, sp.Name, wantNames[i])
		}
		if sp.Dur != wantDurs[i] {
			t.Errorf("span %d dur = %v, want %v", i, sp.Dur, wantDurs[i])
		}
		sum += sp.Dur
	}
	if want := 35 * time.Millisecond; sum != want {
		t.Errorf("span sum = %v, want the full wall %v", sum, want)
	}
	if spans[1].Start != 10*time.Millisecond {
		t.Errorf("execute start = %v, want 10ms", spans[1].Start)
	}

	// Finished traces ignore further stages.
	tr.Begin("late")
	if got := len(tr.Spans()); got != 3 {
		t.Errorf("Begin after Finish grew the trace to %d spans", got)
	}
}

// TestTraceOpenSpanSnapshot verifies a live trace's snapshot includes the
// currently open stage.
func TestTraceOpenSpanSnapshot(t *testing.T) {
	tr := NewTrace(time.Now())
	tr.Begin("execute")
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "execute" {
		t.Fatalf("open span not snapshotted: %v", spans)
	}
	if spans[0].Dur < 0 {
		t.Errorf("open span has negative duration %v", spans[0].Dur)
	}
}

// TestNilTrace verifies every method is a no-op on nil, so instrumented
// code can call through TraceFromContext unconditionally.
func TestNilTrace(t *testing.T) {
	var tr *Trace
	tr.Begin("x")
	tr.Finish()
	if tr.Spans() != nil {
		t.Error("nil trace returned spans")
	}
	if got := TraceFromContext(context.Background()); got != nil {
		t.Errorf("empty context returned trace %v", got)
	}
}

// TestTraceContext round-trips a trace through a context.
func TestTraceContext(t *testing.T) {
	tr := NewTrace(time.Now())
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFromContext(ctx); got != tr {
		t.Errorf("context round-trip lost the trace")
	}
	TraceFromContext(ctx).Begin("inner")
	if spans := tr.Spans(); len(spans) != 1 || spans[0].Name != "inner" {
		t.Errorf("stage via context not recorded: %v", spans)
	}
}

// TestRequestID checks uniqueness and context plumbing.
func TestRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b || a == "" {
		t.Errorf("request IDs not unique: %q, %q", a, b)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestID(ctx); got != a {
		t.Errorf("RequestID = %q, want %q", got, a)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Errorf("empty context RequestID = %q, want \"\"", got)
	}
}
