package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// Request-ID plumbing: every submit (HTTP or Go API) gets a correlation ID
// that flows through context.Context into structured log lines, the job
// record, and the X-Request-ID response header.

type ridCtxKey struct{}

// WithRequestID attaches a request ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridCtxKey{}, id)
}

// RequestID returns the context's request ID, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridCtxKey{}).(string)
	return id
}

var (
	ridCounter atomic.Int64
	ridPrefix  = fmt.Sprintf("%08x", uint32(time.Now().UnixNano())) //nolint:gochecknoglobals — per-process token
)

// NewRequestID returns a process-unique request ID: a per-process token
// plus a monotonic counter (cheap, collision-free within a process,
// distinguishable across restarts).
func NewRequestID() string {
	return fmt.Sprintf("r%s-%06d", ridPrefix, ridCounter.Add(1))
}

// ParseLevel maps a -log-level flag value onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds a structured logger writing to w at the given level,
// as logfmt-style text or JSON. The returned logger injects the context's
// request ID (see WithRequestID) as a request_id attribute on every line
// logged with a context-carrying method, so one grep follows a request
// through submit, execution and completion.
func NewLogger(w io.Writer, level slog.Level, json bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(&ctxHandler{Handler: h})
}

// NewLoggerFromFlags is NewLogger on stderr with a flag-shaped level
// string — the daemon's -log-level / -log-json entry point.
func NewLoggerFromFlags(level string, json bool) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	return NewLogger(os.Stderr, lv, json), nil
}

// Nop returns a logger that discards everything — the default for embedded
// services whose owner did not wire logging.
func Nop() *slog.Logger { return slog.New(slog.DiscardHandler) }

// ctxHandler decorates records with the context's request ID and, on
// fan-out sub-jobs, the coordinator attempt span that submitted them.
type ctxHandler struct{ slog.Handler }

func (h *ctxHandler) Handle(ctx context.Context, rec slog.Record) error {
	if id := RequestID(ctx); id != "" {
		rec.AddAttrs(slog.String("request_id", id))
	}
	if span := ParentSpan(ctx); span != "" {
		rec.AddAttrs(slog.String("parent_span", span))
	}
	return h.Handler.Handle(ctx, rec)
}

func (h *ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &ctxHandler{Handler: h.Handler.WithAttrs(attrs)}
}

func (h *ctxHandler) WithGroup(name string) slog.Handler {
	return &ctxHandler{Handler: h.Handler.WithGroup(name)}
}
