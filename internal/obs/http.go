package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// InstrumentHTTP wraps an HTTP handler with the daemon-level telemetry:
//
//   - http_in_flight (gauge): requests currently being served;
//   - http_requests_total{route,code} (counter): completed requests by
//     matched mux pattern and status code;
//   - http_request_duration_seconds{route} (histogram): per-route latency;
//   - a request ID per request (honoring an incoming X-Request-ID header,
//     minting one otherwise) attached to the request context and echoed
//     in the X-Request-ID response header;
//   - an incoming X-Parent-Span header (set by a cluster coordinator on
//     fan-out sub-job submissions) attached to the request context, so
//     worker-side logs and job records correlate with the coordinator
//     attempt span that produced them;
//   - one structured access-log line per request with the request ID.
//
// The metric names are prefixed with prefix (e.g. "hisvsim_"). The route
// label is the mux pattern that matched (r.Pattern, e.g.
// "POST /v1/jobs"), not the raw path, so per-job URLs cannot explode the
// label cardinality; unmatched requests are labeled "unmatched". A nil
// logger disables access logging.
func InstrumentHTTP(reg *Registry, prefix string, logger *slog.Logger, next http.Handler) http.Handler {
	if logger == nil {
		logger = Nop()
	}
	inFlight := reg.Gauge(prefix+"http_in_flight", "HTTP requests currently being served.")
	requests := reg.CounterVec(prefix+"http_requests_total", "Completed HTTP requests by route pattern and status code.", "route", "code")
	latency := reg.HistogramVec(prefix+"http_request_duration_seconds", "HTTP request latency by route pattern.", DurationBuckets(), "route")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = NewRequestID()
		}
		ctx := WithRequestID(r.Context(), id)
		if span := r.Header.Get(ParentSpanHeader); span != "" {
			ctx = WithParentSpan(ctx, span)
		}
		r = r.WithContext(ctx)
		w.Header().Set("X-Request-ID", id)

		inFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		inFlight.Add(-1)

		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		elapsed := time.Since(start)
		requests.With(route, strconv.Itoa(code)).Inc()
		latency.With(route).Observe(elapsed.Seconds())
		logger.LogAttrs(ctx, slog.LevelInfo, "http",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", code),
			slog.Duration("elapsed", elapsed),
		)
	})
}

// statusWriter captures the status code written by the wrapped handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards http.Flusher so long-poll handlers keep streaming.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
