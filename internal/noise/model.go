package noise

import (
	"encoding/binary"
	"fmt"
	"math"

	"hisvsim/internal/gate"
)

// Rule attaches one channel to a class of gate applications. A single-qubit
// channel is applied independently to each qubit the matched gate touches
// (restricted to the rule's qubit set when given). A k-qubit channel (k > 1,
// e.g. CorrelatedDepolarizing2) is applied once to the matched gate's k
// touched qubits as a whole; the trajectory/DM compiler rejects a matched
// gate whose arity differs from k, so a mis-scoped rule fails loudly instead
// of silently skipping sites.
type Rule struct {
	// Channel is the channel to insert (NumQubits() fixes its arity).
	Channel Channel
	// Gates restricts the rule to the named gates (e.g. ["cx", "h"]);
	// empty matches every gate.
	Gates []string
	// Qubits restricts the insertion to these qubits; empty means every
	// qubit the matched gate touches.
	Qubits []int
}

// matchesGate reports whether the rule applies after gates named name.
func (r Rule) matchesGate(name string) bool {
	if len(r.Gates) == 0 {
		return true
	}
	for _, g := range r.Gates {
		if g == name {
			return true
		}
	}
	return false
}

// matchesQubit reports whether the rule covers qubit q.
func (r Rule) matchesQubit(q int) bool {
	if len(r.Qubits) == 0 {
		return true
	}
	for _, rq := range r.Qubits {
		if rq == q {
			return true
		}
	}
	return false
}

// Readout is the classical measurement-error model applied to sampled
// bitstrings: each measured bit flips 0→1 with probability P01 and 1→0 with
// probability P10, independently per qubit and shot.
type Readout struct {
	P01 float64 // P(read 1 | true 0)
	P10 float64 // P(read 0 | true 1)
}

// IsZero reports whether the readout error never flips a bit.
func (r Readout) IsZero() bool { return r.P01 == 0 && r.P10 == 0 }

// Validate checks the flip probabilities.
func (r Readout) Validate() error {
	for _, p := range []float64{r.P01, r.P10} {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("noise: readout probability %g out of [0,1]", p)
		}
	}
	return nil
}

// Model is a full noise description: channel-insertion rules plus an
// optional readout error. The zero value is the ideal (noise-free) model.
type Model struct {
	Rules   []Rule
	Readout *Readout
}

// NewModel builds a model from rules.
func NewModel(rules ...Rule) *Model { return &Model{Rules: rules} }

// Global is the common case: one channel applied after every gate on every
// touched qubit.
func Global(ch Channel) *Model { return NewModel(Rule{Channel: ch}) }

// OnGates restricts a channel to the named gate classes (e.g. two-qubit
// entanglers: OnGates(Depolarizing(0.01), "cx", "cz")).
func OnGates(ch Channel, gates ...string) *Model {
	return NewModel(Rule{Channel: ch, Gates: gates})
}

// WithReadout returns the model with the readout error attached.
func (m *Model) WithReadout(p01, p10 float64) *Model {
	m.Readout = &Readout{P01: p01, P10: p10}
	return m
}

// AddRule appends a rule and returns the model for chaining.
func (m *Model) AddRule(r Rule) *Model {
	m.Rules = append(m.Rules, r)
	return m
}

// IsZero reports whether the model has no effect at all: every channel is
// the identity and there is no (effective) readout error. Simulate accepts
// zero models; SimulateNoisy with one reduces to ideal simulation.
func (m *Model) IsZero() bool {
	if m == nil {
		return true
	}
	for _, r := range m.Rules {
		if !r.Channel.IsZero() {
			return false
		}
	}
	return m.Readout == nil || m.Readout.IsZero()
}

// Validate checks every rule's channel, qubit references, and the readout
// probabilities. numQubits bounds the rule qubit sets when > 0.
func (m *Model) Validate(numQubits int) error {
	if m == nil {
		return nil
	}
	for i, r := range m.Rules {
		if err := r.Channel.Validate(); err != nil {
			return fmt.Errorf("noise: rule %d: %w", i, err)
		}
		for _, q := range r.Qubits {
			if q < 0 || (numQubits > 0 && q >= numQubits) {
				return fmt.Errorf("noise: rule %d: qubit %d out of range [0,%d)", i, q, numQubits)
			}
		}
	}
	if m.Readout != nil {
		if err := m.Readout.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Hash returns a stable binary digest input of the model's semantics, for
// folding into circuit fingerprints (Circuit.FingerprintWith): two models
// hash equally iff they insert the same channels at the same matching sites
// with the same readout error. Kraus matrices are encoded exactly (bit-level
// float64), so numerically different parameters never collide. A nil or
// zero-effect model returns nil, making its fingerprint exactly the ideal
// circuit's — ideal and zero-noise requests share one cache entry.
func (m *Model) Hash() []byte {
	if m.IsZero() {
		return nil
	}
	var out []byte
	writeInt := func(x int64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		out = append(out, buf[:]...)
	}
	writeFloat := func(f float64) { writeInt(int64(math.Float64bits(f))) }
	writeMatrix := func(mat gate.Matrix) {
		writeInt(int64(mat.K))
		for _, c := range mat.Data {
			writeFloat(real(c))
			writeFloat(imag(c))
		}
	}
	out = append(out, []byte("noise-v1")...)
	writeInt(int64(len(m.Rules)))
	for _, r := range m.Rules {
		writeInt(int64(len(r.Channel.Name)))
		out = append(out, []byte(r.Channel.Name)...)
		writeInt(int64(len(r.Channel.Kraus)))
		for _, k := range r.Channel.Kraus {
			writeMatrix(k)
		}
		// Length-prefixed so 1- and k-qubit Pauli vectors can never alias
		// (0 keeps "no fast path" distinct from any real vector).
		writeInt(int64(len(r.Channel.Pauli)))
		for _, p := range r.Channel.Pauli {
			writeFloat(p)
		}
		writeInt(int64(len(r.Gates)))
		for _, g := range r.Gates {
			writeInt(int64(len(g)))
			out = append(out, []byte(g)...)
		}
		writeInt(int64(len(r.Qubits)))
		for _, q := range r.Qubits {
			writeInt(int64(q))
		}
	}
	if m.Readout != nil && !m.Readout.IsZero() {
		writeInt(1)
		writeFloat(m.Readout.P01)
		writeFloat(m.Readout.P10)
	} else {
		writeInt(0)
	}
	return out
}

// effectiveReadout returns the readout error or nil when absent/zero.
func (m *Model) effectiveReadout() *Readout {
	if m == nil || m.Readout == nil || m.Readout.IsZero() {
		return nil
	}
	ro := *m.Readout
	return &ro
}
