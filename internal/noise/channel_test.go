package noise

import (
	"math"
	"testing"
)

func TestChannelConstructorsAreCPTP(t *testing.T) {
	params := []float64{0, 0.001, 0.1, 0.5, 1}
	for _, name := range ChannelNames() {
		for _, p := range params {
			ch, err := NewChannel(name, p)
			if err != nil {
				t.Fatalf("%s(%g): %v", name, p, err)
			}
			if err := ch.Validate(); err != nil {
				t.Fatalf("%s(%g): %v", name, p, err)
			}
			if got := ch.IsZero(); got != (p == 0) {
				t.Fatalf("%s(%g): IsZero = %v", name, p, got)
			}
		}
	}
}

func TestPauliProbabilitiesSumToOne(t *testing.T) {
	for _, ch := range []Channel{
		Depolarizing(0.3), BitFlip(0.2), PhaseFlip(0.15), PhaseDamping(0.4),
	} {
		if ch.Pauli == nil {
			t.Fatalf("%s: no Pauli unraveling", ch.Name)
		}
		sum := 0.0
		for _, p := range ch.Pauli {
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("%s: Pauli probabilities sum to %g", ch.Name, sum)
		}
	}
	if AmplitudeDamping(0.3).Pauli != nil {
		t.Fatal("amplitude damping (non-unital) must not have a Pauli unraveling")
	}
}

func TestChannelValidateRejectsBadParams(t *testing.T) {
	for _, name := range ChannelNames() {
		for _, p := range []float64{-0.1, 1.5, math.NaN()} {
			ch, err := NewChannel(name, p)
			if err != nil {
				t.Fatalf("%s: constructor rejected %g (validation should)", name, p)
			}
			if err := ch.Validate(); err == nil {
				t.Fatalf("%s(%g) validated", name, p)
			}
		}
	}
	if _, err := NewChannel("bogus", 0.1); err == nil {
		t.Fatal("unknown channel name accepted")
	}
	var zero Channel
	if err := zero.Validate(); err == nil {
		t.Fatal("zero-value channel validated")
	}
}

func TestPhaseDampingEqualsPhaseFlip(t *testing.T) {
	// Phase damping γ is the dephasing channel with flip probability
	// (1 − √(1−γ))/2; the Pauli unravelings must agree exactly.
	gamma := 0.36
	p := (1 - math.Sqrt(1-gamma)) / 2
	pd, pf := PhaseDamping(gamma), PhaseFlip(p)
	for i := range pd.Pauli {
		if math.Abs(pd.Pauli[i]-pf.Pauli[i]) > 1e-12 {
			t.Fatalf("Pauli[%d]: phase damping %g vs phase flip %g", i, pd.Pauli[i], pf.Pauli[i])
		}
	}
}
