package noise

import (
	"bytes"
	"testing"

	"hisvsim/internal/gate"
)

func TestRuleMatching(t *testing.T) {
	m := NewModel(
		Rule{Channel: Depolarizing(0.1), Gates: []string{"cx"}},
		Rule{Channel: BitFlip(0.2), Qubits: []int{1}},
	)
	// cx on {0, 1}: rule 0 hits both qubits, rule 1 hits qubit 1.
	ins, err := insertionsFor(m, gate.CX(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 3 {
		t.Fatalf("cx insertions = %d, want 3", len(ins))
	}
	if len(ins[0].qubits) != 1 || ins[0].qubits[0] != 0 || ins[1].qubits[0] != 1 || ins[0].ch.Name != "depolarizing" {
		t.Fatalf("unexpected insertion order: %+v", ins)
	}
	if ins[2].ch.Name != "bit_flip" || ins[2].qubits[0] != 1 {
		t.Fatalf("rule 2 insertion: %s on q%v", ins[2].ch.Name, ins[2].qubits)
	}
	// h on {2}: neither rule matches.
	if got, err := insertionsFor(m, gate.H(2)); err != nil || len(got) != 0 {
		t.Fatalf("h insertions = %d (err %v), want 0", len(got), err)
	}
	// Zero-probability channels are elided.
	if got, err := insertionsFor(Global(Depolarizing(0)), gate.H(0)); err != nil || len(got) != 0 {
		t.Fatalf("zero-p insertions = %d (err %v), want 0", len(got), err)
	}
	// A 2-qubit channel inserts once over the pair — and a matched gate of
	// the wrong arity is a compile error, not a silent skip.
	corr := OnGates(CorrelatedDepolarizing2(0.05), "cx")
	ins, err = insertionsFor(corr, gate.CX(3, 1))
	if err != nil || len(ins) != 1 {
		t.Fatalf("correlated insertions = %d (err %v), want 1", len(ins), err)
	}
	if got := ins[0].qubits; len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("correlated insertion qubits = %v, want [1 3]", got)
	}
	if _, err := insertionsFor(Global(CorrelatedDepolarizing2(0.05)), gate.H(0)); err == nil {
		t.Fatal("2-qubit channel on a 1-qubit gate compiled silently")
	}
}

func TestModelIsZero(t *testing.T) {
	if !(&Model{}).IsZero() || !(*Model)(nil).IsZero() {
		t.Fatal("empty/nil model not zero")
	}
	if !Global(Depolarizing(0)).IsZero() {
		t.Fatal("zero-probability model not zero")
	}
	if Global(Depolarizing(0.1)).IsZero() {
		t.Fatal("noisy model reported zero")
	}
	if (&Model{Readout: &Readout{P01: 0.1}}).IsZero() {
		t.Fatal("readout-only model reported zero")
	}
	if !(&Model{Readout: &Readout{}}).IsZero() {
		t.Fatal("zero readout model not zero")
	}
}

func TestModelValidate(t *testing.T) {
	if err := Global(Depolarizing(0.1)).Validate(4); err != nil {
		t.Fatal(err)
	}
	if err := Global(Depolarizing(1.5)).Validate(4); err == nil {
		t.Fatal("out-of-range probability validated")
	}
	bad := NewModel(Rule{Channel: BitFlip(0.1), Qubits: []int{7}})
	if err := bad.Validate(4); err == nil {
		t.Fatal("out-of-range rule qubit validated")
	}
	ro := Global(BitFlip(0.1)).WithReadout(0.1, 1.2)
	if err := ro.Validate(4); err == nil {
		t.Fatal("out-of-range readout validated")
	}
}

func TestModelHash(t *testing.T) {
	a := Global(Depolarizing(0.01))
	if !bytes.Equal(a.Hash(), Global(Depolarizing(0.01)).Hash()) {
		t.Fatal("identical models hash differently")
	}
	perturbations := []*Model{
		Global(Depolarizing(0.02)),                                    // parameter
		Global(BitFlip(0.01)),                                         // channel kind
		OnGates(Depolarizing(0.01), "cx"),                             // gate filter
		NewModel(Rule{Channel: Depolarizing(0.01), Qubits: []int{0}}), // qubit filter
		Global(Depolarizing(0.01)).WithReadout(0.01, 0),               // readout
	}
	for i, b := range perturbations {
		if bytes.Equal(a.Hash(), b.Hash()) {
			t.Fatalf("perturbation %d did not change the hash", i)
		}
	}
	// Zero models hash to nil so they share the ideal cache entry.
	if Global(Depolarizing(0)).Hash() != nil {
		t.Fatal("zero model hash not nil")
	}
	if (*Model)(nil).Hash() != nil {
		t.Fatal("nil model hash not nil")
	}
}
