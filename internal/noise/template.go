package noise

import (
	"fmt"

	"hisvsim/internal/fuse"
	"hisvsim/internal/gate"
)

// Trajectory plans compiled from a parameterized circuit specialize the
// same way ideal fused templates do: channel insertion points depend only
// on gate names and qubits, so the step structure, fused-block boundaries
// and kernel plans of the placeholder compile are correct for every
// binding — only the numeric payloads of symbol-touched gate runs need
// rebinding. That makes noisy sweeps one Compile plus cheap Specialize
// calls per grid point, exactly mirroring fuse.Template.

// Parametric reports whether any gate run of the plan carries a symbolic
// parameter (channel steps never do).
func (p *Plan) Parametric() bool {
	for i := range p.steps {
		s := &p.steps[i]
		for bi := range s.blocks {
			if s.blocks[bi].Parametric() {
				return true
			}
		}
		for _, g := range s.gates {
			if g.Parametric() {
				return true
			}
		}
	}
	return false
}

// Specialize returns a concrete plan for one binding: a shallow copy whose
// symbol-touched gate runs are rebuilt (fused blocks re-materialized, plain
// gate runs re-bound) and whose untouched steps — including every channel
// insertion and all kernel index tables — alias the template plan
// read-only. Concrete plans are returned unchanged. The receiver is never
// mutated, so one template plan serves concurrent specializations.
func (p *Plan) Specialize(env map[string]float64) (*Plan, error) {
	if !p.Parametric() {
		return p, nil
	}
	out := *p
	out.steps = append([]step(nil), p.steps...)
	for i := range out.steps {
		s := &out.steps[i]
		switch {
		case s.blocks != nil:
			touched := false
			for bi := range s.blocks {
				if s.blocks[bi].Parametric() {
					touched = true
					break
				}
			}
			if !touched {
				continue
			}
			blocks := append([]fuse.Block(nil), s.blocks...)
			for bi := range blocks {
				if !blocks[bi].Parametric() {
					continue
				}
				b, err := blocks[bi].Specialize(env)
				if err != nil {
					return nil, fmt.Errorf("noise: %w", err)
				}
				blocks[bi] = b
			}
			s.blocks = blocks // plans stay shared: supports are unchanged
		case s.gates != nil:
			touched := false
			for _, g := range s.gates {
				if g.Parametric() {
					touched = true
					break
				}
			}
			if !touched {
				continue
			}
			gs := make([]gate.Gate, len(s.gates))
			for gi, g := range s.gates {
				bg, err := g.Bind(env)
				if err != nil {
					return nil, fmt.Errorf("noise: %w", err)
				}
				gs[gi] = bg
			}
			s.gates = gs
		}
	}
	return &out, nil
}
