package noise

import (
	"context"
	"testing"

	"hisvsim/internal/circuit"
	"hisvsim/internal/gate"
	"hisvsim/internal/sv"
)

// splitTestPlan compiles a small noisy circuit with every read-out kind
// the ensemble layer aggregates.
func splitTestPlan(t *testing.T) *Plan {
	t.Helper()
	c := circuit.New("split", 3)
	c.Append(gate.H(0), gate.CX(0, 1), gate.CX(1, 2), gate.T(0), gate.H(2))
	model := Global(Depolarizing(0.1)).WithReadout(0.02, 0.03)
	plan, err := Compile(c, model, CompileOptions{Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func splitTestConfig(offset, n, total int) RunConfig {
	return RunConfig{
		Trajectories: n, Offset: offset, Total: total,
		Seed: 42, Workers: 3, Shots: 2048,
		Qubits:      []int{0, 1},
		Observables: []sv.PauliString{{Ops: "ZZ", Qubits: []int{0, 1}}, {Coeff: 0.5, Ops: "X", Qubits: []int{2}}},
		Marginals:   [][]int{{0, 2}},
	}
}

// TestEnsembleSplitMergeBitIdentical is the cluster fan-out contract at
// the noise layer: chunk-aligned sub-range runs merged with
// MergeEnsembles reproduce the full single run bit-for-bit — counts,
// executed shots, mean ± stderr for the Z-string and every observable,
// and marginal distributions.
func TestEnsembleSplitMergeBitIdentical(t *testing.T) {
	plan := splitTestPlan(t)
	const total = 512
	full, err := RunEnsemble(context.Background(), plan, splitTestConfig(0, total, 0))
	if err != nil {
		t.Fatal(err)
	}

	// Three unequal chunk-aligned ranges, as a 3-worker split would make.
	bounds := []int{0, 160, 352, total}
	var parts []*Ensemble
	for i := 0; i+1 < len(bounds); i++ {
		p, err := RunEnsemble(context.Background(), plan,
			splitTestConfig(bounds[i], bounds[i+1]-bounds[i], total))
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	merged, err := MergeEnsembles(parts)
	if err != nil {
		t.Fatal(err)
	}

	if merged.Trajectories != full.Trajectories || merged.Shots != full.Shots {
		t.Fatalf("merged %d trajectories / %d shots, full %d / %d",
			merged.Trajectories, merged.Shots, full.Trajectories, full.Shots)
	}
	if !sameCounts(merged.Counts, full.Counts) {
		t.Fatal("merged counts differ from the full run")
	}
	if merged.Expectation != full.Expectation || merged.StdErr != full.StdErr {
		t.Fatalf("merged expectation %v±%v, full %v±%v",
			merged.Expectation, merged.StdErr, full.Expectation, full.StdErr)
	}
	if len(merged.Observables) != len(full.Observables) {
		t.Fatalf("merged %d observables, full %d", len(merged.Observables), len(full.Observables))
	}
	for k := range full.Observables {
		if merged.Observables[k] != full.Observables[k] {
			t.Fatalf("observable %d: merged %+v, full %+v", k, merged.Observables[k], full.Observables[k])
		}
	}
	if len(merged.Marginals) != len(full.Marginals) {
		t.Fatal("marginal count mismatch")
	}
	for m := range full.Marginals {
		for i := range full.Marginals[m] {
			if merged.Marginals[m][i] != full.Marginals[m][i] {
				t.Fatalf("marginal %d entry %d: merged %v, full %v",
					m, i, merged.Marginals[m][i], full.Marginals[m][i])
			}
		}
	}
	// The moment chunks themselves must agree: the sub-ranges computed
	// exactly the partial sums the full run did.
	if len(merged.Moments) != len(full.Moments) {
		t.Fatalf("merged %d moment chunks, full %d", len(merged.Moments), len(full.Moments))
	}
	for i := range full.Moments {
		if merged.Moments[i].Chunk != full.Moments[i].Chunk || merged.Moments[i].Count != full.Moments[i].Count {
			t.Fatalf("moment chunk %d header mismatch", i)
		}
		for k := range full.Moments[i].Obs {
			if merged.Moments[i].Obs[k] != full.Moments[i].Obs[k] {
				t.Fatalf("moment chunk %d obs %d mismatch", i, k)
			}
		}
	}
}

// TestEnsembleSubRangeValidation pins the sub-range error cases: offsets
// off the chunk grid, ranges past the total, and merges of out-of-order
// or incompatible parts are all rejected.
func TestEnsembleSubRangeValidation(t *testing.T) {
	plan := splitTestPlan(t)
	ctx := context.Background()
	if _, err := RunEnsemble(ctx, plan, RunConfig{Trajectories: 32, Offset: 7, Total: 64, Seed: 1}); err == nil {
		t.Fatal("unaligned offset accepted")
	}
	if _, err := RunEnsemble(ctx, plan, RunConfig{Trajectories: 64, Offset: 32, Total: 64, Seed: 1}); err == nil {
		t.Fatal("range past total accepted")
	}
	a, err := RunEnsemble(ctx, plan, RunConfig{Trajectories: 32, Offset: 0, Total: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEnsemble(ctx, plan, RunConfig{Trajectories: 32, Offset: 32, Total: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeEnsembles([]*Ensemble{b, a}); err == nil {
		t.Fatal("out-of-order merge accepted")
	}
	if _, err := MergeEnsembles(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := MergeEnsembles([]*Ensemble{a, b}); err != nil {
		t.Fatalf("in-order merge rejected: %v", err)
	}
}
