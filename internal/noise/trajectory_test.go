package noise

import (
	"context"
	"math"
	"testing"

	"hisvsim/internal/circuit"
	"hisvsim/internal/gate"
)

// idChain returns a circuit of k identity gates on qubit 0 of an n-qubit
// register — k noise anchors that do nothing ideally.
func idChain(n, k int) *circuit.Circuit {
	c := circuit.New("idchain", n)
	for i := 0; i < k; i++ {
		c.Append(gate.ID(0))
	}
	return c
}

func TestCompileStructure(t *testing.T) {
	c := circuit.New("mix", 3)
	c.Append(gate.H(0), gate.H(1), gate.CX(0, 1), gate.H(2), gate.T(2))

	// Noise only on cx: the h/h run before it fuses, the h/t run after too.
	plan, err := Compile(c, OnGates(Depolarizing(0.05), "cx"), CompileOptions{Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Locations() != 2 { // cx touches 2 qubits
		t.Fatalf("locations = %d, want 2", plan.Locations())
	}
	if plan.NoiseFree() {
		t.Fatal("plan with insertions reported noise-free")
	}
	if plan.NumQubits() != 3 {
		t.Fatalf("NumQubits = %d", plan.NumQubits())
	}
	if plan.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes not positive")
	}

	// A zero-probability model compiles to the ideal plan.
	zero, err := Compile(c, Global(AmplitudeDamping(0)), CompileOptions{Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if !zero.NoiseFree() || zero.Locations() != 0 {
		t.Fatal("zero-probability model left insertions in the plan")
	}

	// Invalid models are rejected at compile time.
	if _, err := Compile(c, Global(Depolarizing(2)), CompileOptions{}); err == nil {
		t.Fatal("invalid model compiled")
	}
}

func TestTrajectoryPreservesNorm(t *testing.T) {
	c := circuit.New("norm", 4)
	c.Append(gate.H(0), gate.CX(0, 1), gate.CX(1, 2), gate.RX(0.7, 3))
	model := NewModel(
		Rule{Channel: Depolarizing(0.2)},
		Rule{Channel: AmplitudeDamping(0.3)},
	)
	plan, err := Compile(c, model, CompileOptions{Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		st, stats, err := plan.RunTrajectory(trajRNG(seed, 0))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(st.Norm()-1) > 1e-9 {
			t.Fatalf("seed %d: trajectory norm %g", seed, st.Norm())
		}
		if stats.Locations != int64(plan.Locations()) {
			t.Fatalf("seed %d: %d draws for %d locations", seed, stats.Locations, plan.Locations())
		}
	}
}

func TestEnsembleSeededDeterminism(t *testing.T) {
	c := circuit.New("det", 3)
	c.Append(gate.H(0), gate.CX(0, 1), gate.CX(1, 2), gate.T(0), gate.H(2))
	model := Global(Depolarizing(0.1)).WithReadout(0.02, 0.03)
	plan, err := Compile(c, model, CompileOptions{Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Ensemble {
		e, err := RunEnsemble(context.Background(), plan, RunConfig{
			Trajectories: 40, Seed: 99, Workers: workers, Shots: 400, Qubits: []int{0, 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b, c4 := run(1), run(1), run(4)
	if !sameCounts(a.Counts, b.Counts) {
		t.Fatal("same seed produced different counts")
	}
	if !sameCounts(a.Counts, c4.Counts) {
		t.Fatal("worker count changed the counts")
	}
	if a.Expectation != c4.Expectation || a.StdErr != c4.StdErr {
		t.Fatal("worker count changed the expectation reduction")
	}
	total := 0
	for _, n := range a.Counts {
		total += n
	}
	if total != 400 {
		t.Fatalf("counts sum to %d, want 400", total)
	}
	// A different seed must (overwhelmingly) give different counts.
	d, err := RunEnsemble(context.Background(), plan, RunConfig{
		Trajectories: 40, Seed: 100, Workers: 1, Shots: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sameCounts(a.Counts, d.Counts) {
		t.Fatal("different seeds produced identical counts")
	}
}

func sameCounts(a, b map[int]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestDepolarizingZDecay checks the analytic single-qubit depolarizing decay
// ⟨Z⟩ = (1 − 4p/3)^k on |0⟩ through the Pauli fast path, and the same value
// through forced norm-weighted Kraus selection. Deterministic via fixed seed;
// the 6σ bound gives a ~1e-9 false-failure probability over reseeding.
func TestDepolarizingZDecay(t *testing.T) {
	const (
		p    = 0.1
		k    = 10
		traj = 4000
	)
	want := math.Pow(1-4*p/3, k)
	c := idChain(1, k)
	for _, force := range []bool{false, true} {
		plan, err := Compile(c, Global(Depolarizing(p)), CompileOptions{Fuse: true, ForceKraus: force})
		if err != nil {
			t.Fatal(err)
		}
		ens, err := RunEnsemble(context.Background(), plan, RunConfig{
			Trajectories: traj, Seed: 7, Qubits: []int{0},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ens.HasExpectation {
			t.Fatal("no expectation computed")
		}
		tol := 6 * ens.StdErr
		if tol < 1e-6 {
			t.Fatalf("suspicious stderr %g", ens.StdErr)
		}
		if math.Abs(ens.Expectation-want) > tol {
			t.Fatalf("forceKraus=%v: ⟨Z⟩ = %.4f ± %.4f, analytic %.4f (off by > 6σ)",
				force, ens.Expectation, ens.StdErr, want)
		}
		if force && ens.Stats.PauliApplied != 0 {
			t.Fatal("ForceKraus still used the Pauli path")
		}
		if !force && ens.Stats.KrausApplied != 0 {
			t.Fatal("Pauli channel used the Kraus path")
		}
	}
}

// TestAmplitudeDampingDecay checks the non-unital channel: k damping steps
// on |1⟩ leave P(1) = (1−γ)^k, so ⟨Z⟩ = 2(1−γ)^k... with the sign convention
// ⟨Z⟩ = P(0) − P(1) = 1 − 2(1−γ)^k.
func TestAmplitudeDampingDecay(t *testing.T) {
	const (
		gamma = 0.15
		k     = 8
		traj  = 3000
	)
	want := 1 - 2*math.Pow(1-gamma, k)
	c := circuit.New("ad", 1)
	c.Append(gate.X(0)) // prepare |1⟩ (noise attaches to id gates only)
	for i := 0; i < k; i++ {
		c.Append(gate.ID(0))
	}
	plan, err := Compile(c, OnGates(AmplitudeDamping(gamma), "id"), CompileOptions{Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	ens, err := RunEnsemble(context.Background(), plan, RunConfig{
		Trajectories: traj, Seed: 13, Qubits: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ens.Stats.KrausApplied != int64(traj*k) {
		t.Fatalf("KrausApplied = %d, want %d", ens.Stats.KrausApplied, traj*k)
	}
	if math.Abs(ens.Expectation-want) > 6*ens.StdErr+1e-9 {
		t.Fatalf("⟨Z⟩ = %.4f ± %.4f, analytic %.4f (off by > 6σ)",
			ens.Expectation, ens.StdErr, want)
	}
}

// TestReadoutErrorBias checks the classical flip model: sampling |0⟩ with
// P01 = 0.25 must read 1 about a quarter of the time.
func TestReadoutErrorBias(t *testing.T) {
	c := idChain(1, 1)
	model := NewModel().WithReadout(0.25, 0)
	model.Rules = []Rule{{Channel: BitFlip(0)}} // structurally present, zero p
	plan, err := Compile(c, model, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.NoiseFree() {
		t.Fatal("zero-p rules should leave the plan noise-free")
	}
	if plan.Readout() == nil {
		t.Fatal("readout dropped from the plan")
	}
	const shots = 20000
	ens, err := RunEnsemble(context.Background(), plan, RunConfig{
		Trajectories: 8, Seed: 3, Shots: shots,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := float64(ens.Counts[1]) / shots
	// Binomial stderr ≈ √(0.25·0.75/20000) ≈ 0.003; 6σ ≈ 0.018.
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("P(read 1) = %.4f, want 0.25 ± 0.02", got)
	}
}

// TestPhaseDampingUnravelingsAgree runs the same phase-damping model through
// the Pauli fast path and the forced-Kraus path: the per-trajectory branches
// differ, but both estimate the same channel, so the ⟨Z⟩ of a superposition
// circuit must agree within combined error bars. (⟨X⟩-basis decay would be
// the sharper probe, but the Z-string kernel is what the engine exposes.)
func TestPhaseDampingUnravelingsAgree(t *testing.T) {
	c := circuit.New("pd", 1)
	c.Append(gate.H(0))
	for i := 0; i < 6; i++ {
		c.Append(gate.ID(0))
	}
	c.Append(gate.H(0)) // H·(dephasing)·H: Z-decay becomes visible in ⟨Z⟩
	model := OnGates(PhaseDamping(0.2), "id")
	run := func(force bool) *Ensemble {
		plan, err := Compile(c, model, CompileOptions{Fuse: true, ForceKraus: force})
		if err != nil {
			t.Fatal(err)
		}
		ens, err := RunEnsemble(context.Background(), plan, RunConfig{
			Trajectories: 3000, Seed: 21, Qubits: []int{0},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ens
	}
	pauli, kraus := run(false), run(true)
	// Analytic: after 6 dephasing steps the coherence scales by (1−γ)^(6/2)
	// = √(1−γ)^6, and the final H maps it to ⟨Z⟩.
	want := math.Pow(math.Sqrt(1-0.2), 6)
	for _, e := range []*Ensemble{pauli, kraus} {
		if math.Abs(e.Expectation-want) > 6*e.StdErr+1e-9 {
			t.Fatalf("⟨Z⟩ = %.4f ± %.4f, analytic %.4f", e.Expectation, e.StdErr, want)
		}
	}
	tol := 6 * math.Hypot(pauli.StdErr, kraus.StdErr)
	if math.Abs(pauli.Expectation-kraus.Expectation) > tol {
		t.Fatalf("unravelings disagree: Pauli %.4f ± %.4f vs Kraus %.4f ± %.4f",
			pauli.Expectation, pauli.StdErr, kraus.Expectation, kraus.StdErr)
	}
}

// TestEnsembleCancellation: a canceled context aborts the run.
func TestEnsembleCancellation(t *testing.T) {
	plan, err := Compile(idChain(2, 4), Global(Depolarizing(0.1)), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunEnsemble(ctx, plan, RunConfig{Trajectories: 64}); err == nil {
		t.Fatal("canceled ensemble returned no error")
	}
}
