package noise

import (
	"fmt"
	"math"
	"math/rand"

	"hisvsim/internal/circuit"
	"hisvsim/internal/fuse"
	"hisvsim/internal/gate"
	"hisvsim/internal/prof"
	"hisvsim/internal/sv"
)

// CompileOptions configures trajectory-plan compilation.
type CompileOptions struct {
	// Fuse coalesces maximal noise-free gate runs into fused blocks
	// (internal/fuse); channel insertions bound the runs, so a model that
	// only decorates e.g. cx gates still fuses the single-qubit stretches
	// between them. Default off; executors pass their own policy.
	Fuse bool
	// MaxFuseQubits caps fused-block support (0 = fuse defaults).
	MaxFuseQubits int
	// ForceKraus disables the Pauli fast path: every channel runs through
	// exact norm-weighted Kraus selection. The two unravelings agree in
	// distribution; this knob exists for differential tests and the
	// fast-path benchmark.
	ForceKraus bool
}

// step is one unit of a compiled trajectory plan: either a fused gate run
// (blocks non-nil) or a single channel insertion (ch non-nil).
type step struct {
	blocks []fuse.Block
	plans  []*sv.FusedPlan
	gates  []gate.Gate // unfused fallback when CompileOptions.Fuse is off

	ch     *Channel
	qubits []int // the channel's target qubits (len = ch.NumQubits())
}

// Plan is a compiled noisy circuit: the gate sequence pre-fused between
// channel-insertion points, ready to be replayed across many trajectories.
// A Plan is immutable after Compile and safe for concurrent RunTrajectory
// calls (the executors share the fused kernels and matrices read-only).
type Plan struct {
	n          int
	steps      []step
	locations  int // channel-insertion count per trajectory
	blocks     int // fused blocks per trajectory
	gateCount  int
	readout    *Readout
	forceKraus bool
}

// NumQubits returns the register width the plan executes on.
func (p *Plan) NumQubits() int { return p.n }

// Locations returns the channel insertions per trajectory.
func (p *Plan) Locations() int { return p.locations }

// Blocks returns the fused execution blocks per trajectory.
func (p *Plan) Blocks() int { return p.blocks }

// NoiseFree reports whether the plan has no channel insertions at all —
// every trajectory would produce the ideal state, so callers should run the
// ideal executors once instead (core.SimulateNoisy does exactly that,
// keeping zero-noise runs bit-for-bit identical to ideal simulation).
func (p *Plan) NoiseFree() bool { return p.locations == 0 }

// Readout returns the effective readout error (nil when absent).
func (p *Plan) Readout() *Readout { return p.readout }

// MemoryBytes estimates the plan's resident size (fused matrices, diagonal
// and index tables, Kraus operators) for cache budgeting.
func (p *Plan) MemoryBytes() int64 {
	var b int64 = 256
	for _, st := range p.steps {
		for _, blk := range st.blocks {
			b += int64(len(blk.Matrix.Data))*16 + int64(len(blk.Diag))*16
			b += int64(len(blk.Gates)) * 64
		}
		for _, fp := range st.plans {
			if fp != nil {
				b += int64(1) << uint(len(fp.Qubits)+3) // scatter-offset table
			}
		}
		b += int64(len(st.gates)) * 64
		if st.ch != nil {
			for _, k := range st.ch.Kraus {
				b += int64(len(k.Data)) * 16
			}
		}
	}
	return b
}

// Compile lowers a circuit plus noise model into a trajectory plan: walk the
// gates in order, collect the channel insertions each gate triggers, and
// fuse every maximal insertion-free gate run into dense/diagonal blocks.
// Zero-probability channels are elided, so a structurally noisy model with
// p = 0 compiles to exactly the ideal plan.
func Compile(c *circuit.Circuit, m *Model, opts CompileOptions) (*Plan, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(c.NumQubits); err != nil {
		return nil, err
	}
	p := &Plan{n: c.NumQubits, gateCount: c.NumGates(), forceKraus: opts.ForceKraus}
	if m != nil {
		p.readout = m.effectiveReadout()
	}

	var run []gate.Gate
	flush := func() error {
		if len(run) == 0 {
			return nil
		}
		st := step{}
		if opts.Fuse {
			blocks, err := fuse.Fuse(run, fuse.Options{MaxQubits: opts.MaxFuseQubits})
			if err != nil {
				return err
			}
			st.blocks = blocks
			st.plans = fuse.Plan(blocks, c.NumQubits)
			p.blocks += len(blocks)
		} else {
			st.gates = run
			p.blocks += len(run)
		}
		p.steps = append(p.steps, st)
		run = nil
		return nil
	}

	for gi, g := range c.Gates {
		run = append(run, g)
		insertions, err := insertionsFor(m, g)
		if err != nil {
			return nil, fmt.Errorf("noise: gate %d (%s): %w", gi, g.Name, err)
		}
		if len(insertions) == 0 {
			continue
		}
		if err := flush(); err != nil {
			return nil, err
		}
		p.steps = append(p.steps, insertions...)
		p.locations += len(insertions)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return p, nil
}

// insertionsFor returns the channel-insertion steps gate g triggers under
// the model, in rule order then ascending qubit order. Single-qubit
// channels insert once per matched touched qubit; a k-qubit channel inserts
// once over the gate's k touched qubits (every one matching the rule's
// qubit set) and errors on an arity mismatch — a correlated channel scoped
// to the wrong gate class must fail at compile time, not silently thin out
// the noise model.
func insertionsFor(m *Model, g gate.Gate) ([]step, error) {
	if m == nil {
		return nil, nil
	}
	var out []step
	for ri := range m.Rules {
		r := &m.Rules[ri]
		if r.Channel.IsZero() || !r.matchesGate(g.Name) {
			continue
		}
		qs := g.SortedQubits()
		if k := r.Channel.NumQubits(); k > 1 {
			if len(qs) != k {
				return nil, fmt.Errorf("%d-qubit channel %s matched a %d-qubit gate (restrict the rule's Gates to %d-qubit classes)",
					k, r.Channel.Name, len(qs), k)
			}
			all := true
			for _, q := range qs {
				if !r.matchesQubit(q) {
					all = false
					break
				}
			}
			if all {
				out = append(out, step{ch: &r.Channel, qubits: qs})
			}
			continue
		}
		for _, q := range qs {
			if r.matchesQubit(q) {
				out = append(out, step{ch: &r.Channel, qubits: []int{q}})
			}
		}
	}
	return out, nil
}

// Step is the exported read-only view of one compiled plan unit, for
// alternative evolution engines that replay a plan without unraveling it
// stochastically (the density-matrix backend walks these and applies
// Channel.Kraus exactly as a superoperator). Exactly one of the gate-run
// fields (Gates or Blocks) or the channel pair (Channel + Qubits) is set.
type Step struct {
	// Gates is an unfused gate run (plans compiled with Fuse off).
	Gates []gate.Gate
	// Blocks is a fused gate run (plans compiled with Fuse on).
	Blocks []fuse.Block
	// Channel is a channel insertion over Qubits (len = channel arity,
	// ascending).
	Channel *Channel
	Qubits  []int
}

// VisitSteps walks the plan's steps in execution order, stopping at the
// first error. The callback must treat the step's slices as read-only: they
// alias the immutable plan shared across trajectories.
func (p *Plan) VisitSteps(f func(Step) error) error {
	for i := range p.steps {
		s := &p.steps[i]
		if err := f(Step{Gates: s.gates, Blocks: s.blocks, Channel: s.ch, Qubits: s.qubits}); err != nil {
			return err
		}
	}
	return nil
}

// TrajStats counts the stochastic work of one (or many, summed) trajectories.
type TrajStats struct {
	// Locations is the number of channel draws.
	Locations int64
	// PauliApplied counts non-identity Pauli injections (fast path).
	PauliApplied int64
	// KrausApplied counts norm-weighted Kraus applications (general path).
	KrausApplied int64
}

func (a *TrajStats) add(b TrajStats) {
	a.Locations += b.Locations
	a.PauliApplied += b.PauliApplied
	a.KrausApplied += b.KrausApplied
}

// RunTrajectory executes one stochastic trajectory from |0…0⟩: gate blocks
// replay the fused plan, channel steps draw one branch each from rng.
// Exactly one rng draw is consumed per channel location (plus the draws the
// sampling layer makes afterwards), so a trajectory's randomness is fully
// determined by its RNG seed.
func (p *Plan) RunTrajectory(rng *rand.Rand) (*sv.State, TrajStats, error) {
	return p.runTrajectory(rng, nil)
}

// runTrajectory is RunTrajectory with an optional kernel recorder attached
// to the trajectory state (the ensemble runner threads the job's recorder
// through here; kernel times from concurrent trajectories sum, so they can
// exceed the stage's wall time when trajectory workers > 1).
func (p *Plan) runTrajectory(rng *rand.Rand, rec *prof.Recorder) (*sv.State, TrajStats, error) {
	st := sv.NewState(p.n)
	st.Workers = 1 // parallelism is trajectory-level (RunEnsemble)
	st.Prof = rec
	var stats TrajStats
	for i := range p.steps {
		s := &p.steps[i]
		switch {
		case s.ch != nil:
			stats.Locations++
			if err := p.applyChannel(st, s.ch, s.qubits, rng, &stats); err != nil {
				return nil, stats, err
			}
		case s.blocks != nil:
			if err := fuse.ApplyPlanned(st, s.blocks, s.plans); err != nil {
				return nil, stats, err
			}
		default:
			if err := st.ApplyGates(s.gates); err != nil {
				return nil, stats, err
			}
		}
	}
	return st, stats, nil
}

// applyPauliK applies the k-factor Pauli product idx (gate.PauliMatrixK
// numbering: factor j on qubits[j]) through the single-qubit kernel — a
// product of Paulis never needs the dense 2^k kernel.
func applyPauliK(st *sv.State, qubits []int, idx int) {
	for j, q := range qubits {
		if p := (idx >> uint(2*j)) & 3; p != gate.PauliI {
			st.ApplyMatrix1(q, gate.PauliMatrix(p))
		}
	}
}

// applyChannel draws one branch of the channel and applies it to the listed
// qubits (len = channel arity).
func (p *Plan) applyChannel(st *sv.State, ch *Channel, qubits []int, rng *rand.Rand, stats *TrajStats) error {
	u := rng.Float64()
	if ch.Pauli != nil && !p.forceKraus {
		// Pauli fast path: fixed probabilities, unitary insertions, no
		// renormalization. The identity branch applies nothing.
		acc := 0.0
		for i, prob := range ch.Pauli {
			acc += prob
			if u < acc || i == len(ch.Pauli)-1 {
				if i != 0 {
					stats.PauliApplied++
					applyPauliK(st, qubits, i)
				}
				return nil
			}
		}
		return nil
	}
	// Exact norm-weighted selection: p_i = ‖K_i ψ‖². The last operator is
	// selected by elimination (probabilities sum to 1), but its norm is
	// still measured for the exact renormalization factor.
	last := len(ch.Kraus) - 1
	chosen := last
	var pc float64
	acc := 0.0
	for i := 0; i < last; i++ {
		pi := st.KrausKNorm2(qubits, ch.Kraus[i])
		if u < acc+pi {
			chosen, pc = i, pi
			break
		}
		acc += pi
	}
	if chosen == last {
		pc = st.KrausKNorm2(qubits, ch.Kraus[last])
	}
	if pc <= 0 {
		// A zero-probability branch can only be reached through floating-
		// point rounding of the accumulated probabilities; applying it would
		// annihilate the state. Fall back to the likeliest branch.
		for i, k := range ch.Kraus {
			if pi := st.KrausKNorm2(qubits, k); pi > pc {
				chosen, pc = i, pi
			}
		}
		if pc <= 0 {
			return fmt.Errorf("noise: channel %s on qubits %v has no positive-probability branch", ch.Name, qubits)
		}
	}
	stats.KrausApplied++
	st.ApplyMatrixK(qubits, ch.Kraus[chosen])
	st.Scale(complex(1/math.Sqrt(pc), 0))
	return nil
}
