// Package noise is the NISQ-style noisy-simulation subsystem: single-qubit
// quantum channels (depolarizing, bit/phase flip, amplitude/phase damping)
// plus classical readout error, a noise model attaching channels to gate
// applications per gate class / per qubit / globally, and a trajectory
// engine that unravels the channels into stochastic insertions over the
// dense state-vector kernels.
//
// Two unravelings are used, chosen per channel:
//
//   - Pauli fast path (unital mixtures of Paulis): the insertion is drawn
//     from fixed probabilities {p_I, p_X, p_Y, p_Z}; the identity branch —
//     by far the likeliest at realistic error rates — costs one RNG draw and
//     touches no amplitudes.
//
//   - Exact norm-weighted Kraus selection (general channels, e.g. the
//     non-unital amplitude damping): branch i is chosen with probability
//     p_i = ‖K_i ψ‖², the chosen operator is applied through the raw-matrix
//     kernel, and the state is renormalized by 1/√p_i.
//
// Averaged over trajectories both reproduce the channel exactly; each
// trajectory stays a pure state, so the 2^n state-vector machinery (fusion,
// samplers, expectation kernels) is reused unchanged. Trajectories are
// embarrassingly parallel: Compile builds one fused plan, RunEnsemble reuses
// it across every trajectory with per-trajectory seeded RNGs.
package noise

import (
	"fmt"
	"math"

	"hisvsim/internal/gate"
)

// Channel is one k-qubit quantum channel in Kraus form, optionally carrying
// a Pauli-mixture unraveling for the trajectory fast path. k = 1 for the
// classic single-qubit channels; k > 1 expresses correlated multi-qubit
// noise (CorrelatedDepolarizing2). Construct with the named constructors;
// the zero value is invalid.
type Channel struct {
	// Name identifies the channel kind ("depolarizing", "bit_flip",
	// "phase_flip", "amplitude_damping", "phase_damping", "depolarizing2").
	Name string
	// Params are the constructor parameters (probability or damping rate).
	Params []float64
	// Kraus is the canonical operator-sum representation (ΣK†K = I) over
	// NumQubits() qubits.
	Kraus gate.Kraus
	// Pauli, when non-nil, is an equivalent mixture-of-Paulis unraveling of
	// length 4^k — index i selects the Pauli product gate.PauliMatrixK(k, i)
	// with probability Pauli[i] — enabling the cheap injection path.
	// Unravelings are not unique: per-trajectory branches differ from the
	// Kraus path, but the trajectory-averaged channel is identical.
	Pauli []float64

	zero bool // the identity channel (p = 0): elided at compile time
}

// NumQubits returns the qubit count the channel acts on (the arity its
// insertion sites must match).
func (c Channel) NumQubits() int { return c.Kraus.NumQubits() }

// ChannelNames lists the channel constructors the wire formats accept.
func ChannelNames() []string {
	return []string{"depolarizing", "bit_flip", "phase_flip", "amplitude_damping", "phase_damping", "depolarizing2"}
}

// NewChannel builds a channel by wire name. p is the error probability
// (depolarizing, bit_flip, phase_flip, depolarizing2) or damping rate γ
// (amplitude_damping, phase_damping).
func NewChannel(name string, p float64) (Channel, error) {
	switch name {
	case "depolarizing":
		return Depolarizing(p), nil
	case "bit_flip":
		return BitFlip(p), nil
	case "phase_flip":
		return PhaseFlip(p), nil
	case "amplitude_damping":
		return AmplitudeDamping(p), nil
	case "phase_damping":
		return PhaseDamping(p), nil
	case "depolarizing2":
		return CorrelatedDepolarizing2(p), nil
	default:
		return Channel{}, fmt.Errorf("noise: unknown channel %q (want one of %v)", name, ChannelNames())
	}
}

// pauliChannel assembles a k-qubit mixture-of-Paulis channel: Kraus
// operators √p_i · PauliMatrixK(k, i) plus the fast-path probability vector
// (length 4^k, index 0 the identity).
func pauliChannel(name string, params []float64, k int, probs []float64) Channel {
	var ks gate.Kraus
	zero := true
	for i, p := range probs {
		if i > 0 && p != 0 {
			zero = false
		}
		if p <= 0 {
			continue
		}
		ks = append(ks, gate.PauliMatrixK(k, i).Scale(complex(math.Sqrt(p), 0)))
	}
	if len(ks) == 0 {
		// All-zero probabilities (invalid input): keep an identity operator
		// so Validate can report the parameter error instead of panicking.
		ks = gate.Kraus{gate.Identity(k)}
	}
	return Channel{
		Name: name, Params: params, Kraus: ks,
		Pauli: append([]float64(nil), probs...),
		zero:  zero,
	}
}

// Depolarizing returns the depolarizing channel with total error probability
// p: with probability p/3 each of X, Y, Z is applied. A single application
// scales ⟨X⟩, ⟨Y⟩, ⟨Z⟩ by (1 − 4p/3).
func Depolarizing(p float64) Channel {
	return pauliChannel("depolarizing", []float64{p}, 1, []float64{1 - p, p / 3, p / 3, p / 3})
}

// BitFlip returns the bit-flip channel: X with probability p.
func BitFlip(p float64) Channel {
	return pauliChannel("bit_flip", []float64{p}, 1, []float64{1 - p, p, 0, 0})
}

// PhaseFlip returns the phase-flip (dephasing) channel: Z with probability p.
func PhaseFlip(p float64) Channel {
	return pauliChannel("phase_flip", []float64{p}, 1, []float64{1 - p, 0, 0, p})
}

// CorrelatedDepolarizing2 returns the two-qubit correlated depolarizing
// channel with total error probability p: with probability p/15 each of the
// 15 non-identity two-qubit Pauli products (X⊗I, …, Z⊗Z) is applied to the
// pair as a whole — the standard NISQ model for entangler-gate noise, and
// genuinely correlated: it is not a product of single-qubit channels.
// Attach it after two-qubit gate classes (OnGates / Rule.Gates); the
// compiler rejects sites whose gate arity does not match.
func CorrelatedDepolarizing2(p float64) Channel {
	probs := make([]float64, 16)
	probs[0] = 1 - p
	for i := 1; i < 16; i++ {
		probs[i] = p / 15
	}
	return pauliChannel("depolarizing2", []float64{p}, 2, probs)
}

// AmplitudeDamping returns the amplitude-damping channel with rate γ
// (T1 relaxation toward |0⟩): K0 = diag(1, √(1−γ)), K1 = √γ |0⟩⟨1|. The
// channel is non-unital, so trajectories use exact norm-weighted Kraus
// selection — there is no Pauli unraveling.
func AmplitudeDamping(gamma float64) Channel {
	k0 := gate.NewMatrix(1)
	k0.Set(0, 0, 1)
	k0.Set(1, 1, complex(math.Sqrt(1-gamma), 0))
	ch := Channel{
		Name: "amplitude_damping", Params: []float64{gamma},
		Kraus: gate.Kraus{k0}, zero: gamma == 0,
	}
	if gamma > 0 {
		k1 := gate.NewMatrix(1)
		k1.Set(0, 1, complex(math.Sqrt(gamma), 0))
		ch.Kraus = append(ch.Kraus, k1)
	}
	return ch
}

// PhaseDamping returns the phase-damping channel with rate γ (pure T2
// dephasing). It is unitally equivalent to PhaseFlip((1 − √(1−γ))/2), and
// that Pauli unraveling drives the fast path; the canonical Kraus form
// {diag(1, √(1−γ)), √γ |1⟩⟨1|} is kept for ForceKraus runs and validation.
func PhaseDamping(gamma float64) Channel {
	k0 := gate.NewMatrix(1)
	k0.Set(0, 0, 1)
	k0.Set(1, 1, complex(math.Sqrt(1-gamma), 0))
	ch := Channel{
		Name: "phase_damping", Params: []float64{gamma},
		Kraus: gate.Kraus{k0}, zero: gamma == 0,
	}
	if gamma > 0 {
		k1 := gate.NewMatrix(1)
		k1.Set(1, 1, complex(math.Sqrt(gamma), 0))
		ch.Kraus = append(ch.Kraus, k1)
	}
	if !math.IsNaN(gamma) && gamma >= 0 && gamma <= 1 {
		p := (1 - math.Sqrt(1-gamma)) / 2
		ch.Pauli = []float64{1 - p, 0, 0, p}
	}
	return ch
}

// IsZero reports whether the channel is the identity map (zero probability /
// rate); the compiler elides such insertions entirely, which is what makes
// zero-noise runs bit-for-bit identical to ideal simulation.
func (c Channel) IsZero() bool { return c.zero }

// Validate checks the constructor parameter range and the Kraus
// completeness relation.
func (c Channel) Validate() error {
	if c.Name == "" || len(c.Kraus) == 0 {
		return fmt.Errorf("noise: uninitialized channel (use the constructors)")
	}
	for _, p := range c.Params {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("noise: %s parameter %g out of [0,1]", c.Name, p)
		}
	}
	if err := c.Kraus.Validate(1e-9); err != nil {
		return fmt.Errorf("noise: %s: %w", c.Name, err)
	}
	if c.Pauli != nil {
		if want := 1 << uint(2*c.NumQubits()); len(c.Pauli) != want {
			return fmt.Errorf("noise: %s Pauli vector has %d entries, want 4^%d = %d",
				c.Name, len(c.Pauli), c.NumQubits(), want)
		}
		sum := 0.0
		for i, p := range c.Pauli {
			if math.IsNaN(p) || p < 0 || p > 1 {
				return fmt.Errorf("noise: %s Pauli probability %d is %g", c.Name, i, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("noise: %s Pauli probabilities sum to %g", c.Name, sum)
		}
	}
	return nil
}
