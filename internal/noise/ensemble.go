package noise

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"hisvsim/internal/obs"
	"hisvsim/internal/prof"
	"hisvsim/internal/sv"
)

// MomentChunk is the canonical reduction granule of an ensemble: readout
// values are folded into per-chunk partial sums over fixed windows of
// MomentChunk consecutive trajectories (by GLOBAL index), and the final
// mean ± stderr is a left fold over those chunks in index order. Because
// the fold shape depends only on the global trajectory indices — never on
// worker count or on how a cluster split the range — any chunk-aligned
// partition of [0, Total) reproduces the single-node statistics bit for
// bit when its parts' moments are concatenated and folded by the same
// code (AggregateMoments).
const MomentChunk = 32

// RunConfig configures a trajectory ensemble.
type RunConfig struct {
	// Trajectories is the ensemble size (default 256). When Offset/Total
	// mark this run as a sub-range, it is the size of the LOCAL range.
	Trajectories int
	// Offset and Total place this run inside a larger logical ensemble:
	// the run executes global trajectories [Offset, Offset+Trajectories)
	// of a Total-trajectory ensemble. Per-trajectory RNGs and the shot
	// split are derived from the GLOBAL index, so a set of sub-range runs
	// covering [0, Total) reproduces exactly the per-trajectory streams of
	// one full run — the cluster coordinator's fan-out contract. Offset
	// must be a multiple of MomentChunk (so chunk partials never straddle
	// a split point); Total = 0 means "not a sub-range" (the run IS the
	// whole ensemble). Shots is interpreted against Total.
	Offset int
	Total  int
	// Seed derives every per-trajectory RNG; a fixed (plan, config) pair
	// reproduces the ensemble exactly, independent of Workers.
	Seed int64
	// Workers bounds trajectory-level parallelism (0 = GOMAXPROCS). The
	// service layer passes its worker-pool width so trajectory batches fan
	// out across the same bounded pool the job queue uses.
	Workers int
	// Shots, when > 0, draws this many basis-state samples in total,
	// distributed across trajectories (readout error applied per shot).
	Shots int
	// Qubits, when non-nil, also estimates ⟨∏ Z_q⟩ over the listed qubits:
	// the trajectory mean with its standard error (the legacy Z-string
	// read-out; Observables is the general form).
	Qubits []int
	// Observables, when non-empty, estimates each weighted Pauli string
	// (Coeff·⟨∏ σ⟩) as a trajectory mean with standard error. Measuring
	// draws nothing from the trajectory RNGs, so adding observables never
	// perturbs the sampled counts.
	Observables []sv.PauliString
	// Marginals, when non-empty, estimates each listed marginal probability
	// distribution (little-endian over the listed qubits) as a trajectory
	// mean.
	Marginals [][]int
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Trajectories <= 0 {
		c.Trajectories = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Total <= 0 {
		c.Total = c.Offset + c.Trajectories
	}
	return c
}

// validateRange rejects malformed sub-range placements (called after
// withDefaults, so Total is resolved).
func (c RunConfig) validateRange() error {
	if c.Offset < 0 {
		return fmt.Errorf("noise: negative trajectory offset %d", c.Offset)
	}
	if c.Offset%MomentChunk != 0 {
		return fmt.Errorf("noise: trajectory offset %d is not a multiple of the moment chunk %d", c.Offset, MomentChunk)
	}
	if c.Offset+c.Trajectories > c.Total {
		return fmt.Errorf("noise: trajectory range [%d,%d) exceeds ensemble total %d", c.Offset, c.Offset+c.Trajectories, c.Total)
	}
	return nil
}

// Moment is one chunk's partial sums: the contribution of global
// trajectories [Chunk·MomentChunk, Chunk·MomentChunk+Count) to the
// ensemble statistics, each folded sequentially in trajectory order.
// Moments are the unit of deterministic cross-node aggregation: the
// coordinator concatenates sub-range moments in chunk order and reduces
// them with the same AggregateMoments fold the single-node path uses.
type Moment struct {
	// Chunk is the global chunk index (global trajectory index / MomentChunk).
	Chunk int
	// Count is how many trajectories contributed (MomentChunk except for a
	// tail chunk).
	Count int
	// Exp is the [sum, sum of squares] of the legacy Z-string expectation
	// (RunConfig.Qubits); zero unless that readout was requested.
	Exp [2]float64
	// Obs is one [sum, sum of squares] per RunConfig.Observables entry.
	Obs [][2]float64
	// Marg is one per-entry probability sum vector per RunConfig.Marginals
	// entry.
	Marg [][]float64
}

// Ensemble is the aggregated result of a trajectory run.
type Ensemble struct {
	// Trajectories is the number of trajectories executed (the LOCAL range
	// size for sub-range runs).
	Trajectories int
	// Shots is the total sample count behind Counts: the executed share of
	// RunConfig.Shots (equal to it for full runs; sub-range runs execute
	// only their global trajectories' split).
	Shots int
	// Counts is the basis-index histogram across all trajectories, with
	// readout error applied (nil unless Shots > 0).
	Counts map[int]int
	// Expectation and StdErr are the trajectory mean of ⟨∏ Z_q⟩ and its
	// standard error (sample stddev / √T); valid iff HasExpectation.
	Expectation    float64
	StdErr         float64
	HasExpectation bool
	// Observables holds one trajectory-mean ± stderr per requested
	// RunConfig.Observables entry, in request order.
	Observables []ObservableStat
	// Marginals holds one trajectory-mean probability distribution per
	// requested RunConfig.Marginals entry, in request order.
	Marginals [][]float64
	// Moments are the per-chunk partial sums behind Expectation/Observables/
	// Marginals (noisy path only; the noise-free fast path computes exact
	// values and carries none). They let MergeEnsembles — or a cluster
	// coordinator working from wire data — reproduce the full-ensemble
	// statistics bit for bit from sub-range runs.
	Moments []Moment
	// Stats sums the stochastic work across trajectories.
	Stats TrajStats
	// NoiseFree reports the ensemble came from the ideal-state fast path
	// (zero effective channels): one simulation served every trajectory.
	NoiseFree bool
	// Elapsed is the ensemble wall time.
	Elapsed time.Duration
}

// ObservableStat is one observable's ensemble estimate.
type ObservableStat struct {
	// Mean is the trajectory mean of Coeff·⟨∏ σ⟩; StdErr its standard
	// error (0 on the noise-free fast path, where the value is exact).
	Mean   float64
	StdErr float64
}

// mix64 is SplitMix64: decorrelates the per-trajectory seeds derived from
// (Seed, trajectory index) so adjacent trajectories don't see adjacent
// rand.Source streams.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// trajRNG returns trajectory t's private RNG.
func trajRNG(seed int64, t int) *rand.Rand {
	return rand.New(rand.NewSource(int64(mix64(uint64(seed) ^ mix64(uint64(t)+1)))))
}

// shotsFor splits cfg.Shots across trajectories: the first Shots%T
// trajectories take one extra shot.
func shotsFor(shots, trajectories, t int) int {
	base := shots / trajectories
	if t < shots%trajectories {
		base++
	}
	return base
}

// applyReadout flips each measured bit of sample x per the readout error.
// The draw pattern depends only on (x, ro), so a fixed RNG stream yields a
// fixed flipped sample.
func applyReadout(x, n int, ro *Readout, rng *rand.Rand) int {
	for b := 0; b < n; b++ {
		if x>>uint(b)&1 == 0 {
			if ro.P01 > 0 && rng.Float64() < ro.P01 {
				x |= 1 << uint(b)
			}
		} else {
			if ro.P10 > 0 && rng.Float64() < ro.P10 {
				x &^= 1 << uint(b)
			}
		}
	}
	return x
}

// validateReadouts rejects malformed observables/marginals up front with
// an error, instead of letting the state kernels panic inside a trajectory
// goroutine (the service validates its own requests; this guards direct
// library callers of the ensemble API).
func (c RunConfig) validateReadouts(n int) error {
	for k, ob := range c.Observables {
		if err := ob.Validate(n); err != nil {
			return fmt.Errorf("noise: observable %d: %w", k, err)
		}
	}
	for k, qs := range c.Marginals {
		for _, q := range qs {
			if q < 0 || q >= n {
				return fmt.Errorf("noise: marginal %d: qubit %d out of range [0,%d)", k, q, n)
			}
		}
	}
	return nil
}

// RunEnsemble executes cfg.Trajectories stochastic trajectories of the plan
// in parallel and aggregates counts and/or expectation values. Counts are
// identical for a fixed (plan, Seed, Trajectories, Shots) regardless of
// Workers; the expectation is reduced in trajectory order, so it too is
// bit-stable across worker counts.
func RunEnsemble(ctx context.Context, p *Plan, cfg RunConfig) (*Ensemble, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validateRange(); err != nil {
		return nil, err
	}
	if err := cfg.validateReadouts(p.n); err != nil {
		return nil, err
	}
	return runTrajectories(ctx, cfg, p)
}

// RunEnsembleFromState is the noise-free fast path: every trajectory shares
// one already-simulated ideal state, so the trajectory loop only samples
// (with readout error, through one shared CDF) and measures. core's
// SimulateNoisy routes zero-noise ensembles here, keeping them bit-for-bit
// identical to ideal simulation while still honoring the trajectory-split
// sampling and per-trajectory seeded RNGs of the noisy path.
func RunEnsembleFromState(ctx context.Context, st *sv.State, ro *Readout, cfg RunConfig) (*Ensemble, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validateRange(); err != nil {
		return nil, err
	}
	if err := cfg.validateReadouts(st.N); err != nil {
		return nil, err
	}
	start := time.Now()
	T := cfg.Trajectories
	ens := &Ensemble{Trajectories: T, NoiseFree: true}
	if cfg.Shots > 0 {
		sampler := sv.NewSampler(st) // one CDF pass serves every trajectory
		ens.Counts = make(map[int]int)
		for t := 0; t < T; t++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Seeds and the shot split key on the GLOBAL trajectory index,
			// so a sub-range run draws exactly the samples its trajectories
			// would have drawn inside the full ensemble.
			g := cfg.Offset + t
			shots := shotsFor(cfg.Shots, cfg.Total, g)
			if shots == 0 {
				continue
			}
			ens.Shots += shots
			rng := trajRNG(cfg.Seed, g)
			for _, x := range sampler.Sample(shots, rng) {
				if ro != nil {
					x = applyReadout(x, st.N, ro, rng)
				}
				ens.Counts[x]++
			}
		}
	}
	if cfg.Qubits != nil {
		// Every trajectory is the same pure state: the mean is exact and the
		// trajectory spread is identically zero.
		ens.HasExpectation = true
		ens.Expectation = st.ExpectationPauliZString(cfg.Qubits)
		ens.StdErr = 0
	}
	if len(cfg.Observables) > 0 {
		// Same exactness argument: one shared pure state, zero spread.
		ens.Observables = make([]ObservableStat, len(cfg.Observables))
		for k, ob := range cfg.Observables {
			ens.Observables[k] = ObservableStat{Mean: st.ExpectationPauliString(ob)}
		}
	}
	if len(cfg.Marginals) > 0 {
		ens.Marginals = make([][]float64, len(cfg.Marginals))
		for k, qs := range cfg.Marginals {
			ens.Marginals[k] = st.Marginal(qs)
		}
	}
	ens.Elapsed = time.Since(start)
	return ens, nil
}

// trajResult is one trajectory's contribution, merged in trajectory order.
type trajResult struct {
	counts map[int]int
	exp    float64
	obs    []float64
	marg   [][]float64
	stats  TrajStats
}

// runTrajectories drives the ensemble: trajectories are chunked across
// workers, each with a seed-derived private RNG, and merged deterministically.
func runTrajectories(ctx context.Context, cfg RunConfig, p *Plan) (*Ensemble, error) {
	// Mark the trajectories stage on a context-carried trace (no-op
	// without one); consecutive ensembles in a sweep coalesce into one span.
	obs.TraceFromContext(ctx).Begin("trajectories")
	start := time.Now()
	rec := prof.FromContext(ctx)
	ro := p.Readout()
	T := cfg.Trajectories
	wantExp := cfg.Qubits != nil
	results := make([]trajResult, T)
	errs := make([]error, T)

	workers := cfg.Workers
	if workers > T {
		workers = T
	}
	chunk := (T + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < T; lo += chunk {
		hi := lo + chunk
		if hi > T {
			hi = T
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for t := lo; t < hi; t++ {
				if err := ctx.Err(); err != nil {
					errs[t] = err
					return
				}
				// Global index: sub-range runs replay exactly the RNG streams
				// and shot split their trajectories have in the full ensemble.
				g := cfg.Offset + t
				rng := trajRNG(cfg.Seed, g)
				st, stats, err := p.runTrajectory(rng, rec)
				if err != nil {
					errs[t] = err
					return
				}
				r := trajResult{stats: stats}
				if shots := shotsFor(cfg.Shots, cfg.Total, g); shots > 0 {
					samples := st.Sample(shots, rng)
					r.counts = make(map[int]int, len(samples))
					for _, x := range samples {
						if ro != nil {
							x = applyReadout(x, p.n, ro, rng)
						}
						r.counts[x]++
					}
				}
				if wantExp {
					r.exp = st.ExpectationPauliZString(cfg.Qubits)
				}
				if len(cfg.Observables) > 0 {
					r.obs = make([]float64, len(cfg.Observables))
					for k, ob := range cfg.Observables {
						r.obs[k] = st.ExpectationPauliString(ob)
					}
				}
				if len(cfg.Marginals) > 0 {
					r.marg = make([][]float64, len(cfg.Marginals))
					for k, qs := range cfg.Marginals {
						r.marg[k] = st.Marginal(qs)
					}
				}
				results[t] = r
			}
		}(lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Fold the per-trajectory readouts into canonical chunk moments,
	// walking the local range in order (which IS global order: the offset
	// is chunk-aligned, so chunk boundaries land inside the range). The
	// integer payloads (counts, stats) merge exactly by addition and need
	// no chunking.
	ens := &Ensemble{Trajectories: T}
	if cfg.Shots > 0 {
		ens.Counts = make(map[int]int)
	}
	numObs := len(cfg.Observables)
	var cur *Moment
	for t := range results {
		r := &results[t]
		ens.Stats.add(r.stats)
		for x, c := range r.counts {
			ens.Counts[x] += c
			ens.Shots += c
		}
		g := cfg.Offset + t
		if cur == nil || g/MomentChunk != cur.Chunk {
			m := Moment{Chunk: g / MomentChunk}
			if numObs > 0 {
				m.Obs = make([][2]float64, numObs)
			}
			if len(cfg.Marginals) > 0 {
				m.Marg = make([][]float64, len(cfg.Marginals))
				for k, qs := range cfg.Marginals {
					m.Marg[k] = make([]float64, 1<<uint(len(qs)))
				}
			}
			ens.Moments = append(ens.Moments, m)
			cur = &ens.Moments[len(ens.Moments)-1]
		}
		cur.Count++
		if wantExp {
			cur.Exp[0] += r.exp
			cur.Exp[1] += r.exp * r.exp
		}
		for k, v := range r.obs {
			cur.Obs[k][0] += v
			cur.Obs[k][1] += v * v
		}
		for k, dist := range r.marg {
			mk := cur.Marg[k]
			for i, p := range dist {
				mk[i] += p
			}
		}
	}
	agg := AggregateMoments(ens.Moments)
	if wantExp {
		ens.HasExpectation = true
		ens.Expectation = agg.Expectation.Mean
		ens.StdErr = agg.Expectation.StdErr
	}
	ens.Observables = agg.Observables
	ens.Marginals = agg.Marginals
	ens.Elapsed = time.Since(start)
	return ens, nil
}

// MomentStats is the readout statistics AggregateMoments reduces from a
// chunk-moment list.
type MomentStats struct {
	// Trajectories is the summed chunk Count.
	Trajectories int
	// Expectation is the legacy Z-string mean ± stderr (meaningful only
	// when that readout was tracked by the run).
	Expectation ObservableStat
	// Observables and Marginals follow the request order the moments were
	// built with.
	Observables []ObservableStat
	Marginals   [][]float64
}

// AggregateMoments folds chunk moments in list order into trajectory-mean
// statistics. This is THE canonical reduction: runTrajectories finalizes
// every ensemble through it, and MergeEnsembles — or a cluster coordinator
// working from wire moments — re-runs it over concatenated sub-range
// moments. One shared fold is exactly what makes a split ensemble
// bit-identical to its single-node run.
func AggregateMoments(ms []Moment) MomentStats {
	var out MomentStats
	if len(ms) == 0 {
		return out
	}
	numObs := len(ms[0].Obs)
	var expSum, expSq float64
	obsSum := make([]float64, numObs)
	obsSq := make([]float64, numObs)
	margSum := make([][]float64, len(ms[0].Marg))
	for k, m := range ms[0].Marg {
		margSum[k] = make([]float64, len(m))
	}
	for _, m := range ms {
		out.Trajectories += m.Count
		expSum += m.Exp[0]
		expSq += m.Exp[1]
		for k := range m.Obs {
			obsSum[k] += m.Obs[k][0]
			obsSq[k] += m.Obs[k][1]
		}
		for k, dist := range m.Marg {
			for i, p := range dist {
				margSum[k][i] += p
			}
		}
	}
	T := out.Trajectories
	out.Expectation = meanStdErr(expSum, expSq, T)
	if numObs > 0 {
		out.Observables = make([]ObservableStat, numObs)
		for k := range out.Observables {
			out.Observables[k] = meanStdErr(obsSum[k], obsSq[k], T)
		}
	}
	if len(margSum) > 0 {
		out.Marginals = margSum
		for k := range out.Marginals {
			for i := range out.Marginals[k] {
				out.Marginals[k][i] /= float64(T)
			}
		}
	}
	return out
}

// meanStdErr finalizes one accumulated (sum, sum of squares) pair: the
// trajectory mean, and the standard error of that mean (sample stddev/√T).
func meanStdErr(sum, sumsq float64, T int) ObservableStat {
	if T <= 0 {
		return ObservableStat{}
	}
	mean := sum / float64(T)
	st := ObservableStat{Mean: mean}
	if T > 1 {
		variance := (sumsq - float64(T)*mean*mean) / float64(T-1)
		if variance < 0 {
			variance = 0 // rounding of identical values
		}
		st.StdErr = math.Sqrt(variance / float64(T))
	}
	return st
}

// MergeEnsembles combines contiguous sub-range ensembles — produced with
// the same (plan, seed, shots, readouts) against one logical ensemble,
// passed in ascending offset order and together covering [0, Total) — into
// the ensemble a single full-range run would have produced. Counts and
// stats merge exactly (integer sums); mean ± stderr statistics re-reduce
// from the concatenated chunk moments via AggregateMoments, making them
// bit-identical to the single-node values. Noise-free parts (the fast path
// carries exact readouts and no moments) merge by summing counts and
// copying the exact values from the first part.
func MergeEnsembles(parts []*Ensemble) (*Ensemble, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("noise: merge of zero ensembles")
	}
	out := &Ensemble{NoiseFree: parts[0].NoiseFree}
	lastChunk := -1
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("noise: merge part %d is nil", i)
		}
		if p.NoiseFree != out.NoiseFree {
			return nil, fmt.Errorf("noise: merge mixes noise-free and noisy parts")
		}
		out.Trajectories += p.Trajectories
		out.Shots += p.Shots
		out.Stats.add(p.Stats)
		if p.Counts != nil {
			if out.Counts == nil {
				out.Counts = make(map[int]int, len(p.Counts))
			}
			for x, c := range p.Counts {
				out.Counts[x] += c
			}
		}
		if p.Elapsed > out.Elapsed {
			out.Elapsed = p.Elapsed // parts run concurrently: wall ≈ slowest part
		}
		for _, m := range p.Moments {
			if m.Chunk <= lastChunk {
				return nil, fmt.Errorf("noise: merge parts out of order (chunk %d after %d — pass sub-ranges in ascending offset order)", m.Chunk, lastChunk)
			}
			lastChunk = m.Chunk
		}
		out.Moments = append(out.Moments, p.Moments...)
	}
	first := parts[0]
	if out.NoiseFree {
		// Every part evaluated the same ideal state, so the exact readouts
		// are identical across parts; only the sampled counts differ.
		out.HasExpectation = first.HasExpectation
		out.Expectation = first.Expectation
		out.StdErr = first.StdErr
		out.Observables = first.Observables
		out.Marginals = first.Marginals
		return out, nil
	}
	agg := AggregateMoments(out.Moments)
	if agg.Trajectories != out.Trajectories {
		return nil, fmt.Errorf("noise: merged moments cover %d trajectories, parts report %d", agg.Trajectories, out.Trajectories)
	}
	out.HasExpectation = first.HasExpectation
	if out.HasExpectation {
		out.Expectation = agg.Expectation.Mean
		out.StdErr = agg.Expectation.StdErr
	}
	out.Observables = agg.Observables
	out.Marginals = agg.Marginals
	return out, nil
}

// String summarizes the ensemble for logs and CLI output.
func (e *Ensemble) String() string {
	s := fmt.Sprintf("%d trajectories", e.Trajectories)
	if e.NoiseFree {
		s += " (noise-free fast path)"
	}
	if e.Shots > 0 {
		s += fmt.Sprintf(", %d shots over %d outcomes", e.Shots, len(e.Counts))
	}
	if e.HasExpectation {
		s += fmt.Sprintf(", ⟨Z…⟩ = %.6f ± %.6f", e.Expectation, e.StdErr)
	}
	return s
}
