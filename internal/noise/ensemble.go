package noise

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"hisvsim/internal/obs"
	"hisvsim/internal/prof"
	"hisvsim/internal/sv"
)

// RunConfig configures a trajectory ensemble.
type RunConfig struct {
	// Trajectories is the ensemble size (default 256).
	Trajectories int
	// Seed derives every per-trajectory RNG; a fixed (plan, config) pair
	// reproduces the ensemble exactly, independent of Workers.
	Seed int64
	// Workers bounds trajectory-level parallelism (0 = GOMAXPROCS). The
	// service layer passes its worker-pool width so trajectory batches fan
	// out across the same bounded pool the job queue uses.
	Workers int
	// Shots, when > 0, draws this many basis-state samples in total,
	// distributed across trajectories (readout error applied per shot).
	Shots int
	// Qubits, when non-nil, also estimates ⟨∏ Z_q⟩ over the listed qubits:
	// the trajectory mean with its standard error (the legacy Z-string
	// read-out; Observables is the general form).
	Qubits []int
	// Observables, when non-empty, estimates each weighted Pauli string
	// (Coeff·⟨∏ σ⟩) as a trajectory mean with standard error. Measuring
	// draws nothing from the trajectory RNGs, so adding observables never
	// perturbs the sampled counts.
	Observables []sv.PauliString
	// Marginals, when non-empty, estimates each listed marginal probability
	// distribution (little-endian over the listed qubits) as a trajectory
	// mean.
	Marginals [][]int
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Trajectories <= 0 {
		c.Trajectories = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Ensemble is the aggregated result of a trajectory run.
type Ensemble struct {
	// Trajectories is the number of trajectories executed.
	Trajectories int
	// Shots is the total sample count behind Counts.
	Shots int
	// Counts is the basis-index histogram across all trajectories, with
	// readout error applied (nil unless Shots > 0).
	Counts map[int]int
	// Expectation and StdErr are the trajectory mean of ⟨∏ Z_q⟩ and its
	// standard error (sample stddev / √T); valid iff HasExpectation.
	Expectation    float64
	StdErr         float64
	HasExpectation bool
	// Observables holds one trajectory-mean ± stderr per requested
	// RunConfig.Observables entry, in request order.
	Observables []ObservableStat
	// Marginals holds one trajectory-mean probability distribution per
	// requested RunConfig.Marginals entry, in request order.
	Marginals [][]float64
	// Stats sums the stochastic work across trajectories.
	Stats TrajStats
	// NoiseFree reports the ensemble came from the ideal-state fast path
	// (zero effective channels): one simulation served every trajectory.
	NoiseFree bool
	// Elapsed is the ensemble wall time.
	Elapsed time.Duration
}

// ObservableStat is one observable's ensemble estimate.
type ObservableStat struct {
	// Mean is the trajectory mean of Coeff·⟨∏ σ⟩; StdErr its standard
	// error (0 on the noise-free fast path, where the value is exact).
	Mean   float64
	StdErr float64
}

// mix64 is SplitMix64: decorrelates the per-trajectory seeds derived from
// (Seed, trajectory index) so adjacent trajectories don't see adjacent
// rand.Source streams.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// trajRNG returns trajectory t's private RNG.
func trajRNG(seed int64, t int) *rand.Rand {
	return rand.New(rand.NewSource(int64(mix64(uint64(seed) ^ mix64(uint64(t)+1)))))
}

// shotsFor splits cfg.Shots across trajectories: the first Shots%T
// trajectories take one extra shot.
func shotsFor(shots, trajectories, t int) int {
	base := shots / trajectories
	if t < shots%trajectories {
		base++
	}
	return base
}

// applyReadout flips each measured bit of sample x per the readout error.
// The draw pattern depends only on (x, ro), so a fixed RNG stream yields a
// fixed flipped sample.
func applyReadout(x, n int, ro *Readout, rng *rand.Rand) int {
	for b := 0; b < n; b++ {
		if x>>uint(b)&1 == 0 {
			if ro.P01 > 0 && rng.Float64() < ro.P01 {
				x |= 1 << uint(b)
			}
		} else {
			if ro.P10 > 0 && rng.Float64() < ro.P10 {
				x &^= 1 << uint(b)
			}
		}
	}
	return x
}

// validateReadouts rejects malformed observables/marginals up front with
// an error, instead of letting the state kernels panic inside a trajectory
// goroutine (the service validates its own requests; this guards direct
// library callers of the ensemble API).
func (c RunConfig) validateReadouts(n int) error {
	for k, ob := range c.Observables {
		if err := ob.Validate(n); err != nil {
			return fmt.Errorf("noise: observable %d: %w", k, err)
		}
	}
	for k, qs := range c.Marginals {
		for _, q := range qs {
			if q < 0 || q >= n {
				return fmt.Errorf("noise: marginal %d: qubit %d out of range [0,%d)", k, q, n)
			}
		}
	}
	return nil
}

// RunEnsemble executes cfg.Trajectories stochastic trajectories of the plan
// in parallel and aggregates counts and/or expectation values. Counts are
// identical for a fixed (plan, Seed, Trajectories, Shots) regardless of
// Workers; the expectation is reduced in trajectory order, so it too is
// bit-stable across worker counts.
func RunEnsemble(ctx context.Context, p *Plan, cfg RunConfig) (*Ensemble, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validateReadouts(p.n); err != nil {
		return nil, err
	}
	return runTrajectories(ctx, cfg, p)
}

// RunEnsembleFromState is the noise-free fast path: every trajectory shares
// one already-simulated ideal state, so the trajectory loop only samples
// (with readout error, through one shared CDF) and measures. core's
// SimulateNoisy routes zero-noise ensembles here, keeping them bit-for-bit
// identical to ideal simulation while still honoring the trajectory-split
// sampling and per-trajectory seeded RNGs of the noisy path.
func RunEnsembleFromState(ctx context.Context, st *sv.State, ro *Readout, cfg RunConfig) (*Ensemble, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validateReadouts(st.N); err != nil {
		return nil, err
	}
	start := time.Now()
	T := cfg.Trajectories
	ens := &Ensemble{Trajectories: T, Shots: cfg.Shots, NoiseFree: true}
	if cfg.Shots > 0 {
		sampler := sv.NewSampler(st) // one CDF pass serves every trajectory
		ens.Counts = make(map[int]int)
		for t := 0; t < T; t++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			shots := shotsFor(cfg.Shots, T, t)
			if shots == 0 {
				continue
			}
			rng := trajRNG(cfg.Seed, t)
			for _, x := range sampler.Sample(shots, rng) {
				if ro != nil {
					x = applyReadout(x, st.N, ro, rng)
				}
				ens.Counts[x]++
			}
		}
	}
	if cfg.Qubits != nil {
		// Every trajectory is the same pure state: the mean is exact and the
		// trajectory spread is identically zero.
		ens.HasExpectation = true
		ens.Expectation = st.ExpectationPauliZString(cfg.Qubits)
		ens.StdErr = 0
	}
	if len(cfg.Observables) > 0 {
		// Same exactness argument: one shared pure state, zero spread.
		ens.Observables = make([]ObservableStat, len(cfg.Observables))
		for k, ob := range cfg.Observables {
			ens.Observables[k] = ObservableStat{Mean: st.ExpectationPauliString(ob)}
		}
	}
	if len(cfg.Marginals) > 0 {
		ens.Marginals = make([][]float64, len(cfg.Marginals))
		for k, qs := range cfg.Marginals {
			ens.Marginals[k] = st.Marginal(qs)
		}
	}
	ens.Elapsed = time.Since(start)
	return ens, nil
}

// trajResult is one trajectory's contribution, merged in trajectory order.
type trajResult struct {
	counts map[int]int
	exp    float64
	obs    []float64
	marg   [][]float64
	stats  TrajStats
}

// runTrajectories drives the ensemble: trajectories are chunked across
// workers, each with a seed-derived private RNG, and merged deterministically.
func runTrajectories(ctx context.Context, cfg RunConfig, p *Plan) (*Ensemble, error) {
	// Mark the trajectories stage on a context-carried trace (no-op
	// without one); consecutive ensembles in a sweep coalesce into one span.
	obs.TraceFromContext(ctx).Begin("trajectories")
	start := time.Now()
	rec := prof.FromContext(ctx)
	ro := p.Readout()
	T := cfg.Trajectories
	wantExp := cfg.Qubits != nil
	results := make([]trajResult, T)
	errs := make([]error, T)

	workers := cfg.Workers
	if workers > T {
		workers = T
	}
	chunk := (T + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < T; lo += chunk {
		hi := lo + chunk
		if hi > T {
			hi = T
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for t := lo; t < hi; t++ {
				if err := ctx.Err(); err != nil {
					errs[t] = err
					return
				}
				rng := trajRNG(cfg.Seed, t)
				st, stats, err := p.runTrajectory(rng, rec)
				if err != nil {
					errs[t] = err
					return
				}
				r := trajResult{stats: stats}
				if shots := shotsFor(cfg.Shots, T, t); shots > 0 {
					samples := st.Sample(shots, rng)
					r.counts = make(map[int]int, len(samples))
					for _, x := range samples {
						if ro != nil {
							x = applyReadout(x, p.n, ro, rng)
						}
						r.counts[x]++
					}
				}
				if wantExp {
					r.exp = st.ExpectationPauliZString(cfg.Qubits)
				}
				if len(cfg.Observables) > 0 {
					r.obs = make([]float64, len(cfg.Observables))
					for k, ob := range cfg.Observables {
						r.obs[k] = st.ExpectationPauliString(ob)
					}
				}
				if len(cfg.Marginals) > 0 {
					r.marg = make([][]float64, len(cfg.Marginals))
					for k, qs := range cfg.Marginals {
						r.marg[k] = st.Marginal(qs)
					}
				}
				results[t] = r
			}
		}(lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	ens := &Ensemble{Trajectories: T, Shots: cfg.Shots}
	if cfg.Shots > 0 {
		ens.Counts = make(map[int]int)
	}
	var sum, sumsq float64
	obsSum := make([]float64, len(cfg.Observables))
	obsSumSq := make([]float64, len(cfg.Observables))
	if len(cfg.Marginals) > 0 {
		ens.Marginals = make([][]float64, len(cfg.Marginals))
		for k, qs := range cfg.Marginals {
			ens.Marginals[k] = make([]float64, 1<<uint(len(qs)))
		}
	}
	for t := range results {
		r := &results[t]
		ens.Stats.add(r.stats)
		for x, c := range r.counts {
			ens.Counts[x] += c
		}
		sum += r.exp
		sumsq += r.exp * r.exp
		for k, v := range r.obs {
			obsSum[k] += v
			obsSumSq[k] += v * v
		}
		for k, dist := range r.marg {
			for i, p := range dist {
				ens.Marginals[k][i] += p
			}
		}
	}
	if wantExp {
		ens.HasExpectation = true
		mean := sum / float64(T)
		ens.Expectation = mean
		if T > 1 {
			// Sample variance of the per-trajectory expectations; the mean's
			// standard error is its square root over √T.
			variance := (sumsq - float64(T)*mean*mean) / float64(T-1)
			if variance < 0 {
				variance = 0 // rounding of identical values
			}
			ens.StdErr = math.Sqrt(variance / float64(T))
		}
	}
	if len(cfg.Observables) > 0 {
		ens.Observables = make([]ObservableStat, len(cfg.Observables))
		for k := range cfg.Observables {
			mean := obsSum[k] / float64(T)
			st := ObservableStat{Mean: mean}
			if T > 1 {
				variance := (obsSumSq[k] - float64(T)*mean*mean) / float64(T-1)
				if variance < 0 {
					variance = 0
				}
				st.StdErr = math.Sqrt(variance / float64(T))
			}
			ens.Observables[k] = st
		}
	}
	for k := range ens.Marginals {
		for i := range ens.Marginals[k] {
			ens.Marginals[k][i] /= float64(T)
		}
	}
	ens.Elapsed = time.Since(start)
	return ens, nil
}

// String summarizes the ensemble for logs and CLI output.
func (e *Ensemble) String() string {
	s := fmt.Sprintf("%d trajectories", e.Trajectories)
	if e.NoiseFree {
		s += " (noise-free fast path)"
	}
	if e.Shots > 0 {
		s += fmt.Sprintf(", %d shots over %d outcomes", e.Shots, len(e.Counts))
	}
	if e.HasExpectation {
		s += fmt.Sprintf(", ⟨Z…⟩ = %.6f ± %.6f", e.Expectation, e.StdErr)
	}
	return s
}
