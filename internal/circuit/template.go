package circuit

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"

	"hisvsim/internal/gate"
)

// This file is the circuit-level half of parameterized templates: a circuit
// whose gates carry symbolic Args is a template, Bind turns it into a
// concrete circuit for one symbol environment, and BindingDigest gives each
// environment a stable content address so (template fingerprint, binding
// digest) pairs key caches the way plain fingerprints key concrete runs.

// Parametric reports whether any gate carries a symbolic parameter.
func (c *Circuit) Parametric() bool {
	for _, g := range c.Gates {
		if g.Parametric() {
			return true
		}
	}
	return false
}

// Symbols returns the sorted set of symbol names the circuit references.
// It is empty (not nil) for a concrete circuit.
func (c *Circuit) Symbols() []string {
	set := map[string]struct{}{}
	for _, g := range c.Gates {
		g.CollectSymbols(set)
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// CheckBinding validates env against the template without building anything:
// every circuit symbol must be bound, every env key must name a circuit
// symbol, and every value must be finite. Errors name the offending symbol
// so the service layer can surface them as submit-time 400s.
func (c *Circuit) CheckBinding(env map[string]float64) error {
	syms := c.Symbols()
	known := make(map[string]struct{}, len(syms))
	for _, s := range syms {
		known[s] = struct{}{}
		if _, ok := env[s]; !ok {
			return fmt.Errorf("circuit %s: unbound symbol %q", c.Name, s)
		}
	}
	// Deterministic error choice: report the lexicographically first
	// offending key, not map-iteration order.
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, ok := known[k]; !ok {
			return fmt.Errorf("circuit %s: unknown symbol %q", c.Name, k)
		}
		if v := env[k]; math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("circuit %s: non-finite value %v for symbol %q", c.Name, v, k)
		}
	}
	return nil
}

// Bind resolves every symbolic parameter against env and returns a fully
// concrete circuit (no gate keeps an Args overlay). Unbound symbols and
// non-finite values fail with the symbol named. Extra env keys are
// tolerated here — CheckBinding is the strict gate for request validation.
func (c *Circuit) Bind(env map[string]float64) (*Circuit, error) {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits, Gates: make([]gate.Gate, len(c.Gates))}
	for i, g := range c.Gates {
		bg, err := g.Bind(env)
		if err != nil {
			return nil, fmt.Errorf("circuit %s gate %d: %w", c.Name, i, err)
		}
		out.Gates[i] = bg
	}
	return out, nil
}

// BindingDigest returns a stable content hash of a symbol environment:
// SHA-256 over the sorted (name, exact float bits) pairs, length-prefixed
// like the circuit fingerprint encoding. Two environments agree iff they
// bind the same symbols to bit-identical values. Combined with the template
// fingerprint it addresses one grid point of a sweep.
func BindingDigest(env map[string]float64) string {
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	var buf [8]byte
	writeInt := func(x int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	writeInt(int64(len(keys)))
	for _, k := range keys {
		writeInt(int64(len(k)))
		h.Write([]byte(k))
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(env[k]))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
