// Package circuit defines the circuit intermediate representation used by
// HiSVSIM (an ordered list of gates over n qubits) and parameterized
// generators for the 13 QASMBench-derived benchmark families evaluated in
// the paper (Table I).
package circuit

import (
	"fmt"
	"sort"

	"hisvsim/internal/gate"
)

// Circuit is an ordered sequence of gates applied to NumQubits qubits.
// Gate order is execution order.
type Circuit struct {
	Name      string
	NumQubits int
	Gates     []gate.Gate
}

// New returns an empty circuit on n qubits.
func New(name string, n int) *Circuit {
	return &Circuit{Name: name, NumQubits: n}
}

// Append adds gates to the end of the circuit.
func (c *Circuit) Append(gs ...gate.Gate) {
	c.Gates = append(c.Gates, gs...)
}

// Validate checks that every gate is well formed and within qubit range.
func (c *Circuit) Validate() error {
	if c.NumQubits <= 0 {
		return fmt.Errorf("circuit %s: non-positive qubit count %d", c.Name, c.NumQubits)
	}
	for i, g := range c.Gates {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("circuit %s gate %d: %w", c.Name, i, err)
		}
		for _, q := range g.Qubits {
			if q >= c.NumQubits {
				return fmt.Errorf("circuit %s gate %d (%s): qubit %d out of range [0,%d)",
					c.Name, i, g.Name, q, c.NumQubits)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits, Gates: make([]gate.Gate, len(c.Gates))}
	for i, g := range c.Gates {
		out.Gates[i] = g.Remap(func(q int) int { return q })
	}
	return out
}

// NumGates returns the number of gates.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// GateCounts returns a histogram of gate names.
func (c *Circuit) GateCounts() map[string]int {
	m := map[string]int{}
	for _, g := range c.Gates {
		m[g.Name]++
	}
	return m
}

// MultiQubitGates returns the number of gates touching 2+ qubits.
func (c *Circuit) MultiQubitGates() int {
	n := 0
	for _, g := range c.Gates {
		if g.Arity() > 1 {
			n++
		}
	}
	return n
}

// QubitsUsed returns the sorted set of qubits touched by at least one gate.
func (c *Circuit) QubitsUsed() []int {
	seen := map[int]bool{}
	for _, g := range c.Gates {
		for _, q := range g.Qubits {
			seen[q] = true
		}
	}
	out := make([]int, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// Depth returns the circuit depth: the length of the longest chain of gates
// where consecutive gates share a qubit (standard as-soon-as-possible
// layering).
func (c *Circuit) Depth() int {
	level := make([]int, c.NumQubits)
	depth := 0
	for _, g := range c.Gates {
		l := 0
		for _, q := range g.Qubits {
			if level[q] > l {
				l = level[q]
			}
		}
		l++
		for _, q := range g.Qubits {
			level[q] = l
		}
		if l > depth {
			depth = l
		}
	}
	return depth
}

// MemoryBytes returns the state-vector memory footprint 2^n × 16 bytes.
func (c *Circuit) MemoryBytes() int64 {
	return int64(16) << uint(c.NumQubits)
}

// Decomposed returns a copy of the circuit with every gate lowered to the
// {single-qubit, cx} basis via gate.Decompose.
func (c *Circuit) Decomposed() *Circuit {
	out := New(c.Name+"_dec", c.NumQubits)
	out.Gates = gate.DecomposeAll(c.Gates)
	return out
}

// Reversed returns the adjoint circuit structure (gates in reverse order;
// note parameters are NOT conjugated — this is the structural reverse used
// by partitioning experiments, not the inverse unitary).
func (c *Circuit) Reversed() *Circuit {
	out := New(c.Name+"_rev", c.NumQubits)
	out.Gates = make([]gate.Gate, len(c.Gates))
	for i, g := range c.Gates {
		out.Gates[len(c.Gates)-1-i] = g
	}
	return out
}

// String summarizes the circuit.
func (c *Circuit) String() string {
	return fmt.Sprintf("%s: %d qubits, %d gates, depth %d", c.Name, c.NumQubits, c.NumGates(), c.Depth())
}
