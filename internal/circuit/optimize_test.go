package circuit

import (
	"math"
	"testing"

	"hisvsim/internal/gate"
)

func TestCancelInversesAdjacent(t *testing.T) {
	c := New("t", 2)
	c.Append(gate.H(0), gate.H(0), gate.X(1))
	out := CancelInverses(c)
	if out.NumGates() != 1 || out.Gates[0].Name != "x" {
		t.Fatalf("gates = %v", out.Gates)
	}
}

func TestCancelInversesCX(t *testing.T) {
	c := New("t", 2)
	c.Append(gate.CX(0, 1), gate.CX(0, 1))
	if out := CancelInverses(c); out.NumGates() != 0 {
		t.Fatalf("CX pair not cancelled: %v", out.Gates)
	}
	// Reversed control/target must NOT cancel.
	c2 := New("t", 2)
	c2.Append(gate.CX(0, 1), gate.CX(1, 0))
	if out := CancelInverses(c2); out.NumGates() != 2 {
		t.Fatal("CX(0,1)/CX(1,0) wrongly cancelled")
	}
}

func TestCancelInversesSymmetricGates(t *testing.T) {
	c := New("t", 2)
	c.Append(gate.SWAP(0, 1), gate.SWAP(1, 0))
	if out := CancelInverses(c); out.NumGates() != 0 {
		t.Fatal("symmetric SWAP pair not cancelled")
	}
	c2 := New("t", 2)
	c2.Append(gate.CZ(0, 1), gate.CZ(1, 0))
	if out := CancelInverses(c2); out.NumGates() != 0 {
		t.Fatal("symmetric CZ pair not cancelled")
	}
}

func TestCancelInversesSTPairs(t *testing.T) {
	c := New("t", 1)
	c.Append(gate.S(0), gate.Sdg(0), gate.T(0), gate.Tdg(0))
	if out := CancelInverses(c); out.NumGates() != 0 {
		t.Fatalf("S/Sdg T/Tdg not cancelled: %v", out.Gates)
	}
}

func TestCancelInversesOppositeRotations(t *testing.T) {
	c := New("t", 1)
	c.Append(gate.RZ(0.7, 0), gate.RZ(-0.7, 0))
	if out := CancelInverses(c); out.NumGates() != 0 {
		t.Fatal("opposite rotations not cancelled")
	}
}

func TestCancelInversesBlockedByInterveningGate(t *testing.T) {
	c := New("t", 2)
	c.Append(gate.H(0), gate.CX(0, 1), gate.H(0))
	if out := CancelInverses(c); out.NumGates() != 3 {
		t.Fatal("H pair cancelled across a dependent CX")
	}
	// But a gate on a *different* qubit does not block.
	c2 := New("t", 2)
	c2.Append(gate.H(0), gate.X(1), gate.H(0))
	if out := CancelInverses(c2); out.NumGates() != 1 {
		t.Fatalf("H pair not cancelled across independent gate: %v", out.Gates)
	}
}

func TestCancelInversesCascades(t *testing.T) {
	// X H H X: inner pair cancels, exposing the outer pair.
	c := New("t", 1)
	c.Append(gate.X(0), gate.H(0), gate.H(0), gate.X(0))
	if out := CancelInverses(c); out.NumGates() != 0 {
		t.Fatalf("cascade not fully cancelled: %v", out.Gates)
	}
}

func TestFuseRotations(t *testing.T) {
	c := New("t", 1)
	c.Append(gate.RZ(0.25, 0), gate.RZ(0.5, 0), gate.RZ(0.25, 0))
	out := FuseRotations(c)
	if out.NumGates() != 1 {
		t.Fatalf("gates = %v", out.Gates)
	}
	if math.Abs(out.Gates[0].Params[0]-1.0) > 1e-12 {
		t.Fatalf("fused angle = %v", out.Gates[0].Params[0])
	}
}

func TestFuseRotationsDropsIdentity(t *testing.T) {
	c := New("t", 1)
	c.Append(gate.RX(1.5, 0), gate.RX(-1.5, 0))
	if out := FuseRotations(c); out.NumGates() != 0 {
		t.Fatalf("zero-angle rotation kept: %v", out.Gates)
	}
}

func TestFuseRotationsCP(t *testing.T) {
	c := New("t", 2)
	c.Append(gate.CP(0.3, 0, 1), gate.CP(0.4, 0, 1))
	out := FuseRotations(c)
	if out.NumGates() != 1 || math.Abs(out.Gates[0].Params[0]-0.7) > 1e-12 {
		t.Fatalf("cp fusion wrong: %v", out.Gates)
	}
	// Different qubit order must not fuse.
	c2 := New("t", 2)
	c2.Append(gate.CP(0.3, 0, 1), gate.CP(0.4, 1, 0))
	if out := FuseRotations(c2); out.NumGates() != 2 {
		t.Fatal("cp with swapped roles wrongly fused")
	}
}

func TestOptimizeFixedPointAndCorrectness(t *testing.T) {
	// Random circuits plus hand-placed redundancy must simulate identically
	// after optimization. Correctness is validated in internal/sv tests via
	// matrices; here we check structure and idempotence.
	c := Random(5, 60, 9)
	c.Append(gate.H(0), gate.H(0), gate.RZ(0.4, 1), gate.RZ(-0.4, 1))
	opt := Optimize(c)
	if opt.NumGates() >= c.NumGates() {
		t.Fatalf("optimize did not shrink: %d -> %d", c.NumGates(), opt.NumGates())
	}
	again := Optimize(opt)
	if again.NumGates() != opt.NumGates() {
		t.Fatal("optimize not idempotent")
	}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizePreservesCleanCircuit(t *testing.T) {
	c := QFT(6)
	opt := Optimize(c)
	if opt.NumGates() != c.NumGates() {
		t.Fatalf("QFT shrank from %d to %d — nothing there is redundant", c.NumGates(), opt.NumGates())
	}
}
