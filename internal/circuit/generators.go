package circuit

import (
	"fmt"
	"math"
	"math/rand"

	"hisvsim/internal/gate"
)

// The generators below produce the 13 benchmark families of Table I at a
// configurable qubit count. The paper runs them at 30–37 qubits (16 GB–2 TB
// state vectors); this reproduction runs the same topologies at laptop scale.
// Gate-per-qubit ratios track the QASMBench originals.

// CatState builds the coherent-superposition (GHZ) circuit: H on qubit 0
// followed by a CX chain.
func CatState(n int) *Circuit {
	c := New("cat_state", n)
	c.Append(gate.H(0))
	for i := 0; i+1 < n; i++ {
		c.Append(gate.CX(i, i+1))
	}
	return c
}

// BV builds the Bernstein–Vazirani circuit on n qubits (n−1 data qubits plus
// one oracle ancilla). secret selects the hidden bit-string; bit i of secret
// marks data qubit i. If secret < 0, the alternating string 1010… is used.
func BV(n int, secret int64) *Circuit {
	c := New("bv", n)
	anc := n - 1
	if secret < 0 {
		secret = 0
		for i := 0; i < anc; i += 2 {
			secret |= 1 << uint(i)
		}
	}
	c.Append(gate.X(anc), gate.H(anc))
	for i := 0; i < anc; i++ {
		c.Append(gate.H(i))
	}
	for i := 0; i < anc; i++ {
		if secret>>uint(i)&1 == 1 {
			c.Append(gate.CX(i, anc))
		}
	}
	for i := 0; i < anc; i++ {
		c.Append(gate.H(i))
	}
	return c
}

// QAOA builds a p-layer QAOA MaxCut ansatz over a connected pseudo-random
// 3-regular-ish graph on n vertices (ring plus seeded random chords).
func QAOA(n, p int, seed int64) *Circuit {
	c := New("qaoa", n)
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	for i := 0; i < n/2; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	for i := 0; i < n; i++ {
		c.Append(gate.H(i))
	}
	for layer := 0; layer < p; layer++ {
		gamma := 0.4 + 0.1*float64(layer)
		beta := 0.7 - 0.05*float64(layer)
		for _, e := range edges {
			c.Append(gate.CX(e[0], e[1]), gate.RZ(2*gamma, e[1]), gate.CX(e[0], e[1]))
		}
		for i := 0; i < n; i++ {
			c.Append(gate.RX(2*beta, i))
		}
	}
	return c
}

// QAOAAnsatz builds the parameterized QAOA template on a ring of n qubits:
// per layer l, ZZ cost rotations rz(2·gamma<l>) across every ring edge and
// an rx(2·beta<l>) mixer on every qubit, with gamma<l>/beta<l> left as
// bindable symbols. It is the template counterpart of QAOA (which draws
// concrete angles): one compile serves a whole angle grid. Deliberately not
// registered in Families() — Named callers expect concrete circuits.
func QAOAAnsatz(n, layers int) *Circuit {
	c := New("qaoa_ansatz", n)
	for i := 0; i < n; i++ {
		c.Append(gate.H(i))
	}
	for layer := 0; layer < layers; layer++ {
		gamma := fmt.Sprintf("gamma%d", layer)
		beta := fmt.Sprintf("beta%d", layer)
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			rz := gate.RZ(0, j).WithArgs(gate.Affine(2, gamma, 0))
			c.Append(gate.CX(i, j), rz, gate.CX(i, j))
		}
		for i := 0; i < n; i++ {
			c.Append(gate.RX(0, i).WithArgs(gate.Affine(2, beta, 0)))
		}
	}
	return c
}

// CC builds the counterfeit-coin-finding circuit: n−1 coin qubits and one
// balance ancilla; a superposed weighing is encoded by CX fans into the
// ancilla with Hadamard pre/post rotations.
func CC(n int) *Circuit {
	c := New("cc", n)
	anc := n - 1
	for i := 0; i < anc; i++ {
		c.Append(gate.H(i))
	}
	for i := 0; i < anc; i++ {
		c.Append(gate.CX(i, anc))
	}
	c.Append(gate.H(anc))
	// Mark one coin (the counterfeit) and re-interfere.
	c.Append(gate.Z(anc / 2))
	for i := 0; i < anc; i++ {
		c.Append(gate.H(i))
	}
	return c
}

// Ising builds a first-order Trotterization of the transverse-field Ising
// model on an n-site chain with the given number of time steps: per step a
// layer of ZZ couplings along the chain and a layer of RX field rotations.
func Ising(n, steps int) *Circuit {
	c := New("ising", n)
	for i := 0; i < n; i++ {
		c.Append(gate.H(i))
	}
	for s := 0; s < steps; s++ {
		jt := 0.3
		ht := 0.8
		for i := 0; i+1 < n; i++ {
			c.Append(gate.RZZ(2*jt, i, i+1))
		}
		for i := 0; i < n; i++ {
			c.Append(gate.RX(2*ht, i))
		}
	}
	return c
}

// QFT builds the exact quantum Fourier transform on n qubits: the usual
// H + controlled-phase ladder followed by the bit-reversal swap network.
func QFT(n int) *Circuit {
	c := New("qft", n)
	for i := n - 1; i >= 0; i-- {
		c.Append(gate.H(i))
		for j := i - 1; j >= 0; j-- {
			c.Append(gate.CP(math.Pi/float64(int(1)<<uint(i-j)), j, i))
		}
	}
	for i := 0; i < n/2; i++ {
		c.Append(gate.SWAP(i, n-1-i))
	}
	return c
}

// InverseQFT builds the adjoint of QFT (used by QPE).
func InverseQFT(n int) *Circuit {
	c := New("iqft", n)
	for i := 0; i < n/2; i++ {
		c.Append(gate.SWAP(i, n-1-i))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			c.Append(gate.CP(-math.Pi/float64(int(1)<<uint(i-j)), j, i))
		}
		c.Append(gate.H(i))
	}
	return c
}

// QNN builds a layered hardware-efficient "quantum neural network" ansatz:
// per layer RY rotations on every qubit and a ring of CX entanglers,
// finishing with a layer of Hadamards.
func QNN(n, layers int, seed int64) *Circuit {
	c := New("qnn", n)
	rng := rand.New(rand.NewSource(seed))
	for l := 0; l < layers; l++ {
		for i := 0; i < n; i++ {
			c.Append(gate.RY(rng.Float64()*math.Pi, i))
		}
		for i := 0; i < n; i++ {
			c.Append(gate.CX(i, (i+1)%n))
		}
	}
	for i := 0; i < n; i++ {
		c.Append(gate.H(i))
	}
	return c
}

// Grover builds iters Grover iterations over d data qubits with a V-chain of
// d−2 Toffoli ancillas (total d + max(d−2, 0) qubits, arity ≤ 3 throughout).
// The oracle marks the all-ones data state.
func Grover(d, iters int) *Circuit {
	anc := d - 2
	if anc < 0 {
		anc = 0
	}
	c := New("grover", d+anc)
	for i := 0; i < d; i++ {
		c.Append(gate.H(i))
	}
	// mczVChain applies a Z controlled on data qubits [0,d) to target d−1
	// using ancillas; emitted as CCX chain + CZ + uncompute.
	mczVChain := func() {
		if d == 1 {
			c.Append(gate.Z(0))
			return
		}
		if d == 2 {
			c.Append(gate.CZ(0, 1))
			return
		}
		a0 := d // first ancilla index
		c.Append(gate.CCX(0, 1, a0))
		for i := 2; i < d-1; i++ {
			c.Append(gate.CCX(i, a0+i-2, a0+i-1))
		}
		c.Append(gate.CZ(a0+d-3, d-1))
		for i := d - 2; i >= 2; i-- {
			c.Append(gate.CCX(i, a0+i-2, a0+i-1))
		}
		c.Append(gate.CCX(0, 1, a0))
	}
	for it := 0; it < iters; it++ {
		// Oracle: phase-flip |11…1⟩.
		mczVChain()
		// Diffusion: H X (mcz) X H on data.
		for i := 0; i < d; i++ {
			c.Append(gate.H(i), gate.X(i))
		}
		mczVChain()
		for i := 0; i < d; i++ {
			c.Append(gate.X(i), gate.H(i))
		}
	}
	return c
}

// QPE builds quantum phase estimation with t counting qubits and one
// eigenstate qubit (total t+1). The unitary is the phase gate P(2πφ); its
// powers are emitted as `reps`-fold repeated controlled applications (capped)
// to retain the deep-circuit structure of the QASMBench original.
func QPE(t int, phi float64, maxReps int) *Circuit {
	c := New("qpe", t+1)
	eig := t
	c.Append(gate.X(eig))
	for i := 0; i < t; i++ {
		c.Append(gate.H(i))
	}
	for i := 0; i < t; i++ {
		reps := 1 << uint(i)
		if reps <= maxReps {
			for r := 0; r < reps; r++ {
				c.Append(gate.CP(2*math.Pi*phi, i, eig))
			}
		} else {
			// Fold the power into the angle to bound gate count.
			c.Append(gate.CP(2*math.Pi*phi*float64(reps), i, eig))
		}
	}
	iq := InverseQFT(t)
	c.Append(iq.Gates...)
	return c
}

// Adder builds the Cuccaro ripple-carry adder computing b ← a + b over
// m-bit registers: qubit layout [cin, a0,b0, a1,b1, …, a_{m-1},b_{m-1}, cout],
// total 2m+2 qubits, using the standard MAJ/UMA blocks.
func Adder(m int) *Circuit {
	n := 2*m + 2
	c := New("adder", n)
	a := func(i int) int { return 1 + 2*i }
	b := func(i int) int { return 2 + 2*i }
	cin := 0
	cout := n - 1
	maj := func(x, y, z int) {
		c.Append(gate.CX(z, y), gate.CX(z, x), gate.CCX(x, y, z))
	}
	uma := func(x, y, z int) {
		c.Append(gate.CCX(x, y, z), gate.CX(z, x), gate.CX(x, y))
	}
	maj(cin, b(0), a(0))
	for i := 1; i < m; i++ {
		maj(a(i-1), b(i), a(i))
	}
	c.Append(gate.CX(a(m-1), cout))
	for i := m - 1; i >= 1; i-- {
		uma(a(i-1), b(i), a(i))
	}
	uma(cin, b(0), a(0))
	return c
}

// Random builds a seeded random circuit: a mix of 1-qubit rotations and CX
// gates, useful for property tests.
func Random(n, gates int, seed int64) *Circuit {
	c := New("random", n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < gates; i++ {
		switch rng.Intn(5) {
		case 0:
			c.Append(gate.H(rng.Intn(n)))
		case 1:
			c.Append(gate.RX(rng.Float64()*math.Pi, rng.Intn(n)))
		case 2:
			c.Append(gate.RZ(rng.Float64()*math.Pi, rng.Intn(n)))
		case 3:
			if n >= 2 {
				u := rng.Intn(n)
				v := rng.Intn(n - 1)
				if v >= u {
					v++
				}
				c.Append(gate.CX(u, v))
			}
		case 4:
			if n >= 2 {
				u := rng.Intn(n)
				v := rng.Intn(n - 1)
				if v >= u {
					v++
				}
				c.Append(gate.CP(rng.Float64()*math.Pi, u, v))
			}
		}
	}
	return c
}

// Spec names one benchmark configuration of Table I.
type Spec struct {
	Name   string // table row name, e.g. "bv35"
	Family string // generator family, e.g. "bv"
	Qubits int    // repro-scale qubit count
	Build  func() *Circuit
}

// Benchmarks returns the 13-row benchmark suite of Table I at the given
// base scale: rows that the paper runs at 30–31 qubits use n = base, the
// larger rows (bv35, ising35, cc36, adder37) use proportionally larger
// counts, preserving the "bigger circuits gain more" axis.
func Benchmarks(base int) []Spec {
	if base < 6 {
		panic("circuit: benchmark base scale must be ≥ 6")
	}
	big := base + 4
	groverData := base/2 + 1
	adderBitsBig := big / 2
	specs := []Spec{
		{"cat_state", "cat_state", base, func() *Circuit { return CatState(base) }},
		{"bv", "bv", base, func() *Circuit { return BV(base, -1) }},
		{"qaoa", "qaoa", base, func() *Circuit { return QAOA(base, 2, 11) }},
		{"cc", "cc", base, func() *Circuit { return CC(base) }},
		{"ising", "ising", base, func() *Circuit { return Ising(base, 3) }},
		{"qft", "qft", base, func() *Circuit { return QFT(base) }},
		{"qnn", "qnn", base + 1, func() *Circuit { return QNN(base+1, 2, 13) }},
		{"grover", "grover", groverData + groverData - 2, func() *Circuit { return Grover(groverData, 2) }},
		{"qpe", "qpe", base + 1, func() *Circuit { return QPE(base, 1.0/7.0, 32) }},
		{"bv" + fmt.Sprint(big), "bv", big, func() *Circuit { return BV(big, -1) }},
		{"ising" + fmt.Sprint(big), "ising", big, func() *Circuit { return Ising(big, 3) }},
		{"cc" + fmt.Sprint(big+1), "cc", big + 1, func() *Circuit { return CC(big + 1) }},
		{"adder" + fmt.Sprint(2*adderBitsBig+2), "adder", 2*adderBitsBig + 2, func() *Circuit { return Adder(adderBitsBig) }},
	}
	return specs
}

// Named builds one benchmark circuit by family name at the given qubit count
// (approximate for families whose size is structurally constrained).
func Named(family string, n int) (*Circuit, error) {
	switch family {
	case "cat_state":
		return CatState(n), nil
	case "bv":
		return BV(n, -1), nil
	case "qaoa":
		return QAOA(n, 2, 11), nil
	case "cc":
		return CC(n), nil
	case "ising":
		return Ising(n, 3), nil
	case "qft":
		return QFT(n), nil
	case "qnn":
		return QNN(n, 2, 13), nil
	case "grover":
		d := n/2 + 1
		return Grover(d, 2), nil
	case "qpe":
		return QPE(n-1, 1.0/7.0, 32), nil
	case "adder":
		m := (n - 2) / 2
		if m < 1 {
			return nil, fmt.Errorf("circuit: adder needs ≥ 4 qubits, got %d", n)
		}
		return Adder(m), nil
	case "random":
		return Random(n, 8*n, 17), nil
	default:
		return nil, fmt.Errorf("circuit: unknown family %q", family)
	}
}

// MustNamed is Named, panicking on error (for examples and tests).
func MustNamed(family string, n int) *Circuit {
	c, err := Named(family, n)
	if err != nil {
		panic(err)
	}
	return c
}

// Families lists the generator family names accepted by Named.
func Families() []string {
	return []string{"cat_state", "bv", "qaoa", "cc", "ising", "qft", "qnn", "grover", "qpe", "adder", "random"}
}
