package circuit

import (
	"testing"

	"hisvsim/internal/gate"
)

func TestNewAndAppend(t *testing.T) {
	c := New("t", 3)
	c.Append(gate.H(0), gate.CX(0, 1))
	if c.NumGates() != 2 {
		t.Fatalf("NumGates = %d", c.NumGates())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateOutOfRange(t *testing.T) {
	c := New("t", 2)
	c.Append(gate.CX(0, 2))
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-range gate validated")
	}
	bad := New("t", 0)
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-qubit circuit validated")
	}
}

func TestClone(t *testing.T) {
	c := New("t", 2)
	c.Append(gate.RX(0.5, 0))
	d := c.Clone()
	d.Gates[0].Qubits[0] = 1
	d.Gates[0].Params[0] = 9
	if c.Gates[0].Qubits[0] != 0 || c.Gates[0].Params[0] != 0.5 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestGateCountsAndMultiQubit(t *testing.T) {
	c := New("t", 3)
	c.Append(gate.H(0), gate.H(1), gate.CX(0, 1), gate.CCX(0, 1, 2))
	counts := c.GateCounts()
	if counts["h"] != 2 || counts["cx"] != 1 || counts["ccx"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if c.MultiQubitGates() != 2 {
		t.Fatalf("MultiQubitGates = %d", c.MultiQubitGates())
	}
}

func TestQubitsUsed(t *testing.T) {
	c := New("t", 5)
	c.Append(gate.H(4), gate.CX(1, 4))
	got := c.QubitsUsed()
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("QubitsUsed = %v", got)
	}
}

func TestDepth(t *testing.T) {
	c := New("t", 2)
	if c.Depth() != 0 {
		t.Fatalf("empty depth = %d", c.Depth())
	}
	c.Append(gate.H(0), gate.H(1)) // parallel layer
	if c.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", c.Depth())
	}
	c.Append(gate.CX(0, 1))
	if c.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", c.Depth())
	}
	c.Append(gate.H(0))
	if c.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", c.Depth())
	}
}

func TestMemoryBytes(t *testing.T) {
	c := New("t", 30)
	if c.MemoryBytes() != int64(16)<<30 {
		t.Fatalf("MemoryBytes = %d", c.MemoryBytes())
	}
}

func TestReversed(t *testing.T) {
	c := New("t", 2)
	c.Append(gate.H(0), gate.X(1), gate.CX(0, 1))
	r := c.Reversed()
	if r.Gates[0].Name != "cx" || r.Gates[2].Name != "h" {
		t.Fatalf("Reversed order wrong: %v", r.Gates)
	}
	if c.Gates[0].Name != "h" {
		t.Fatal("Reversed mutated original")
	}
}

func TestDecomposed(t *testing.T) {
	c := New("t", 3)
	c.Append(gate.CCX(0, 1, 2))
	d := c.Decomposed()
	if d.NumGates() <= 1 {
		t.Fatal("CCX did not decompose")
	}
	for _, g := range d.Gates {
		if g.Arity() > 2 {
			t.Fatalf("decomposed gate %s has arity %d", g.Name, g.Arity())
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsValidateAndSize(t *testing.T) {
	cases := []struct {
		c        *Circuit
		wantQ    int
		minGates int
	}{
		{CatState(8), 8, 8},
		{BV(8, -1), 8, 8 + 2},
		{QAOA(8, 2, 1), 8, 8 + 2*(8*3)},
		{CC(8), 8, 7*2 + 7},
		{Ising(8, 3), 8, 8 + 3*(7+8)},
		{QFT(8), 8, 8*9/2 + 4},
		{QNN(8, 2, 1), 8, 2*16 + 8},
		{Grover(5, 2), 5 + 3, 5},
		{QPE(6, 0.25, 8), 7, 6 + 6},
		{Adder(4), 10, 6*4 + 1},
		{Random(6, 40, 3), 6, 30},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(); err != nil {
			t.Errorf("%s: %v", tc.c.Name, err)
			continue
		}
		if tc.c.NumQubits != tc.wantQ {
			t.Errorf("%s: qubits = %d, want %d", tc.c.Name, tc.c.NumQubits, tc.wantQ)
		}
		if tc.c.NumGates() < tc.minGates {
			t.Errorf("%s: gates = %d, want ≥ %d", tc.c.Name, tc.c.NumGates(), tc.minGates)
		}
	}
}

func TestBVSecretEncoding(t *testing.T) {
	c := BV(6, 0b10101)
	cx := 0
	for _, g := range c.Gates {
		if g.Name == "cx" {
			cx++
		}
	}
	if cx != 3 {
		t.Fatalf("BV cx count = %d, want 3 (popcount of secret)", cx)
	}
}

func TestQFTGateCountExact(t *testing.T) {
	n := 7
	c := QFT(n)
	want := n + n*(n-1)/2 + n/2 // H's + CP ladder + swaps
	if c.NumGates() != want {
		t.Fatalf("QFT(%d) gates = %d, want %d", n, c.NumGates(), want)
	}
}

func TestGroverUsesBoundedArity(t *testing.T) {
	c := Grover(6, 1)
	for _, g := range c.Gates {
		if g.Arity() > 3 {
			t.Fatalf("grover gate %s arity %d", g.Name, g.Arity())
		}
	}
}

func TestGroverTinySizes(t *testing.T) {
	for d := 1; d <= 3; d++ {
		c := Grover(d, 1)
		if err := c.Validate(); err != nil {
			t.Errorf("Grover(%d,1): %v", d, err)
		}
	}
}

func TestQPEGateCapFoldsAngles(t *testing.T) {
	capped := QPE(10, 0.3, 4)
	uncapped := QPE(10, 0.3, 1<<10)
	if capped.NumGates() >= uncapped.NumGates() {
		t.Fatal("maxReps cap did not reduce gate count")
	}
	if err := capped.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBenchmarksSuite(t *testing.T) {
	specs := Benchmarks(12)
	if len(specs) != 13 {
		t.Fatalf("suite size = %d, want 13", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate spec name %s", s.Name)
		}
		seen[s.Name] = true
		c := s.Build()
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if c.NumQubits != s.Qubits {
			t.Errorf("%s: built %d qubits, spec says %d", s.Name, c.NumQubits, s.Qubits)
		}
	}
}

func TestBenchmarksPanicsOnTinyScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Benchmarks(3)
}

func TestNamedFamilies(t *testing.T) {
	for _, f := range Families() {
		c, err := Named(f, 10)
		if err != nil {
			t.Errorf("Named(%s): %v", f, err)
			continue
		}
		if err := c.Validate(); err != nil {
			t.Errorf("Named(%s): %v", f, err)
		}
	}
	if _, err := Named("bogus", 10); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := Named("adder", 3); err == nil {
		t.Error("tiny adder accepted")
	}
}
