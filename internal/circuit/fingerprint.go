package circuit

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint returns a stable content hash of the circuit's semantics: the
// qubit count and the ordered gate list (name, control count, qubit
// operands, exact parameter bits). Two circuits share a fingerprint iff
// they apply the same gates to the same qubits in the same order — the
// circuit Name is deliberately excluded, so a "qft" built twice hashes
// identically. Equal unitaries with different gate lists hash differently
// (e.g. a circuit and its QASM round-trip when the writer lowers non-qelib1
// gates). The hash is SHA-256 over a length-prefixed binary encoding, so it
// is stable across processes and releases and usable as a content address
// (the service layer keys its plan/state cache on it).
func (c *Circuit) Fingerprint() string {
	return c.FingerprintWith(nil)
}

// FingerprintWith is Fingerprint extended by an extra domain payload folded
// into the hash after the gate list: two calls agree iff both the circuit
// semantics and the extra bytes agree. The service layer uses it to key
// cached simulations on circuit + noise model (the noise model contributes
// its own stable binary encoding). A nil or empty extra yields exactly
// Fingerprint(). A non-empty extra is length-prefixed before hashing, and
// the gate encoding is self-delimiting (gate count upfront), so an extra
// payload can never alias a longer gate list.
func (c *Circuit) FingerprintWith(extra []byte) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(x int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	writeInt(int64(c.NumQubits))
	writeInt(int64(len(c.Gates)))
	for _, g := range c.Gates {
		// Length-prefix the name (and every list) so field boundaries can
		// never alias: ("rx", q1) and ("r", x-ish bytes) hash differently.
		writeInt(int64(len(g.Name)))
		h.Write([]byte(g.Name))
		writeInt(int64(g.Ctrl))
		writeInt(int64(len(g.Qubits)))
		for _, q := range g.Qubits {
			writeInt(int64(q))
		}
		if g.Args == nil {
			writeInt(int64(len(g.Params)))
			for _, p := range g.Params {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
				h.Write(buf[:])
			}
		} else {
			// Symbolic overlay: a negative length marker (impossible for a
			// concrete param list) keeps every pre-existing concrete hash
			// byte-identical while making templates hash on structure +
			// symbol names + affine coefficients instead of placeholder
			// angles. This IS the template fingerprint: all bindings of one
			// template share it, and the binding digest (BindingDigest)
			// carries the per-point identity separately.
			writeInt(int64(-len(g.Args) - 1))
			for _, a := range g.Args {
				if !a.Symbolic() {
					writeInt(0)
					binary.LittleEndian.PutUint64(buf[:], math.Float64bits(a.Value))
					h.Write(buf[:])
					continue
				}
				writeInt(1)
				writeInt(int64(len(a.Symbol)))
				h.Write([]byte(a.Symbol))
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(a.Scale))
				h.Write(buf[:])
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(a.Offset))
				h.Write(buf[:])
			}
		}
	}
	if len(extra) > 0 {
		writeInt(int64(len(extra)))
		h.Write(extra)
	}
	return hex.EncodeToString(h.Sum(nil))
}
