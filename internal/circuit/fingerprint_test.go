package circuit

import (
	"math"
	"testing"

	"hisvsim/internal/gate"
)

func TestFingerprintStableAcrossRebuilds(t *testing.T) {
	for _, fam := range Families() {
		a, err := Named(fam, 8)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Named(fam, 8)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("%s: fingerprint differs across identical builds", fam)
		}
		if got := len(a.Fingerprint()); got != 64 {
			t.Fatalf("%s: fingerprint length %d, want 64 hex chars", fam, got)
		}
	}
}

func TestFingerprintIgnoresName(t *testing.T) {
	a := New("alpha", 3)
	b := New("beta", 3)
	for _, c := range []*Circuit{a, b} {
		c.Append(gate.H(0), gate.CX(0, 1), gate.RZ(0.25, 2))
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint should ignore the circuit name")
	}
}

// TestFingerprintCollisions checks that every semantic field perturbs the
// hash: qubit count, gate order, operands, operand order, control count,
// parameters (down to the sign bit), and gate name — including boundary
// aliasing between the name and the qubit list.
func TestFingerprintCollisions(t *testing.T) {
	base := func() *Circuit {
		c := New("c", 4)
		c.Append(gate.H(0), gate.CX(1, 2), gate.RZ(0.5, 3))
		return c
	}
	variants := map[string]*Circuit{}
	variants["base"] = base()

	widened := base()
	widened.NumQubits = 5
	variants["more qubits"] = widened

	reordered := New("c", 4)
	reordered.Append(gate.CX(1, 2), gate.H(0), gate.RZ(0.5, 3))
	variants["gate order"] = reordered

	otherQubit := New("c", 4)
	otherQubit.Append(gate.H(1), gate.CX(1, 2), gate.RZ(0.5, 3))
	variants["operand"] = otherQubit

	swapped := New("c", 4)
	swapped.Append(gate.H(0), gate.CX(2, 1), gate.RZ(0.5, 3))
	variants["operand order"] = swapped

	uncontrolled := base()
	uncontrolled.Gates[1].Ctrl = 0
	variants["control count"] = uncontrolled

	param := New("c", 4)
	param.Append(gate.H(0), gate.CX(1, 2), gate.RZ(0.5000001, 3))
	variants["param value"] = param

	negZero := New("c", 4)
	negZero.Append(gate.H(0), gate.CX(1, 2), gate.RZ(0, 3))
	posZero := New("c", 4)
	posZero.Append(gate.H(0), gate.CX(1, 2), gate.RZ(0, 3))
	negZero.Gates[2].Params[0] = math.Copysign(0, -1) // distinct IEEE-754 bit pattern from +0
	variants["param -0"] = negZero
	variants["param +0"] = posZero

	renamed := base()
	renamed.Gates[0].Name = "x"
	variants["gate name"] = renamed

	trailing := base()
	trailing.Append(gate.X(0))
	variants["extra gate"] = trailing

	seen := map[string]string{}
	for label, c := range variants {
		fp := c.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision between %q and %q", prev, label)
		}
		seen[fp] = label
	}
}

func TestFingerprintNameListAliasing(t *testing.T) {
	// A gate whose name ends in bytes that could masquerade as the start of
	// the qubit list must still hash differently from the honest encoding.
	a := New("c", 2)
	a.Append(gate.Gate{Name: "u1", Qubits: []int{0}, Params: []float64{0.5}})
	b := New("c", 2)
	b.Append(gate.Gate{Name: "u", Qubits: []int{0}, Params: []float64{0.5}})
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("name/operand boundary aliasing")
	}
}

func TestFingerprintWith(t *testing.T) {
	c := New("fp", 3)
	c.Append(gate.H(0), gate.CX(0, 1))

	// Nil and empty extras are exactly the base fingerprint.
	if c.FingerprintWith(nil) != c.Fingerprint() {
		t.Fatal("FingerprintWith(nil) differs from Fingerprint()")
	}
	if c.FingerprintWith([]byte{}) != c.Fingerprint() {
		t.Fatal("FingerprintWith(empty) differs from Fingerprint()")
	}

	// A non-empty extra changes the hash, deterministically.
	a := c.FingerprintWith([]byte("noise-v1"))
	if a == c.Fingerprint() {
		t.Fatal("extra payload did not perturb the fingerprint")
	}
	if a != c.FingerprintWith([]byte("noise-v1")) {
		t.Fatal("FingerprintWith not deterministic")
	}
	if a == c.FingerprintWith([]byte("noise-v2")) {
		t.Fatal("different extras collide")
	}

	// The extra never leaks into the circuit identity: two circuits with
	// different gates stay distinct under the same extra.
	d := New("fp2", 3)
	d.Append(gate.H(0), gate.CX(1, 0))
	if c.FingerprintWith([]byte("x")) == d.FingerprintWith([]byte("x")) {
		t.Fatal("distinct circuits collide under a shared extra")
	}
}
