package circuit

import (
	"math"

	"hisvsim/internal/gate"
)

// The paper positions HiSVSIM's partitioning as orthogonal to gate-level
// optimizations such as fusion (§II-C); this file provides those
// complementary passes so plans can be built on an already-optimized
// circuit.

// CancelInverses removes adjacent gate pairs that multiply to the identity
// (X·X, H·H, CX·CX, S·Sdg, T·Tdg, SWAP·SWAP, CZ·CZ, CCX·CCX …) when the
// two gates are consecutive on every qubit they touch. The pass iterates to
// a fixed point and preserves the circuit's unitary exactly.
func CancelInverses(c *Circuit) *Circuit {
	gates := append([]gate.Gate(nil), c.Gates...)
	for {
		removed := false
		last := make([]int, c.NumQubits) // index of previous surviving gate per qubit
		for q := range last {
			last[q] = -1
		}
		alive := make([]bool, len(gates))
		for i := range alive {
			alive[i] = true
		}
		for i, g := range gates {
			// Find the unique previous gate across all touched qubits.
			prev := -2
			uniform := true
			for _, q := range g.Qubits {
				if prev == -2 {
					prev = last[q]
				} else if last[q] != prev {
					uniform = false
				}
			}
			if uniform && prev >= 0 && alive[prev] && inverses(gates[prev], g) {
				alive[prev] = false
				alive[i] = false
				removed = true
				// Rewind the qubits to the gate before prev: recompute below.
			}
			if alive[i] {
				for _, q := range g.Qubits {
					last[q] = i
				}
			} else {
				// Recompute last[] for the touched qubits from scratch; a
				// simple full rebuild keeps the pass obviously correct.
				for q := range last {
					last[q] = -1
				}
				for j := 0; j <= i; j++ {
					if alive[j] {
						for _, qq := range gates[j].Qubits {
							last[qq] = j
						}
					}
				}
			}
		}
		if !removed {
			break
		}
		var next []gate.Gate
		for i, g := range gates {
			if alive[i] {
				next = append(next, g)
			}
		}
		gates = next
	}
	out := New(c.Name+"_opt", c.NumQubits)
	out.Gates = gates
	return out
}

// inverses reports whether b undoes a exactly (a·b = identity as applied,
// i.e. b∘a = I in circuit order).
func inverses(a, b gate.Gate) bool {
	if len(a.Qubits) != len(b.Qubits) {
		return false
	}
	sameQubits := true
	for i := range a.Qubits {
		if a.Qubits[i] != b.Qubits[i] {
			sameQubits = false
		}
	}
	if !sameQubits {
		// SWAP/CZ/RZZ are symmetric in their qubits.
		if symmetric(a.Name) && len(a.Qubits) == 2 &&
			a.Qubits[0] == b.Qubits[1] && a.Qubits[1] == b.Qubits[0] {
			sameQubits = a.Name == b.Name
		}
		if !sameQubits {
			return false
		}
	}
	selfInv := map[string]bool{
		"x": true, "y": true, "z": true, "h": true, "cx": true, "cy": true,
		"cz": true, "swap": true, "ccx": true, "cswap": true, "mcx": true,
		"mcz": true, "id": true,
	}
	if a.Name == b.Name && selfInv[a.Name] {
		return true
	}
	pairs := map[[2]string]bool{
		{"s", "sdg"}: true, {"sdg", "s"}: true,
		{"t", "tdg"}: true, {"tdg", "t"}: true,
	}
	if pairs[[2]string{a.Name, b.Name}] {
		return true
	}
	// Opposite-angle rotations cancel. Symbolic gates never do: their
	// Params are placeholders, and cancellation must hold for every binding.
	rot := map[string]bool{"rx": true, "ry": true, "rz": true, "p": true, "u1": true,
		"cp": true, "crx": true, "cry": true, "crz": true, "rzz": true, "mcp": true}
	if a.Name == b.Name && rot[a.Name] && len(a.Params) == 1 && len(b.Params) == 1 &&
		!a.Parametric() && !b.Parametric() &&
		math.Abs(a.Params[0]+b.Params[0]) < 1e-15 {
		return true
	}
	return false
}

func symmetric(name string) bool {
	return name == "swap" || name == "cz" || name == "rzz"
}

// FuseRotations merges runs of same-axis rotations on the same qubit(s)
// into a single rotation with the summed angle (rz·rz, rx·rx, ry·ry, p·p,
// cp·cp, rzz·rzz), dropping the result entirely when the summed angle is 0.
func FuseRotations(c *Circuit) *Circuit {
	fusable := map[string]bool{"rx": true, "ry": true, "rz": true, "p": true,
		"u1": true, "cp": true, "crz": true, "rzz": true}
	var out []gate.Gate
	last := make([]int, c.NumQubits) // index into out of previous gate per qubit
	for q := range last {
		last[q] = -1
	}
	for _, g := range c.Gates {
		// Symbolic rotations carry placeholder Params; merging them would
		// bake the placeholder into the sum, so they are left untouched.
		if fusable[g.Name] && len(g.Params) == 1 && !g.Parametric() {
			prev := -2
			uniform := true
			for _, q := range g.Qubits {
				if prev == -2 {
					prev = last[q]
				} else if last[q] != prev {
					uniform = false
				}
			}
			if uniform && prev >= 0 && out[prev].Name == g.Name && !out[prev].Parametric() && sameQubitOrder(out[prev], g) {
				out[prev].Params = []float64{out[prev].Params[0] + g.Params[0]}
				if math.Abs(math.Mod(out[prev].Params[0], 4*math.Pi)) < 1e-15 {
					// Identity rotation: drop it and rebuild last[].
					out = append(out[:prev], out[prev+1:]...)
					for q := range last {
						last[q] = -1
					}
					for j, og := range out {
						for _, qq := range og.Qubits {
							last[qq] = j
						}
					}
				}
				continue
			}
		}
		out = append(out, g.Remap(func(q int) int { return q }))
		for _, q := range g.Qubits {
			last[q] = len(out) - 1
		}
	}
	res := New(c.Name+"_fused", c.NumQubits)
	res.Gates = out
	return res
}

func sameQubitOrder(a, b gate.Gate) bool {
	if len(a.Qubits) != len(b.Qubits) {
		return false
	}
	for i := range a.Qubits {
		if a.Qubits[i] != b.Qubits[i] {
			return false
		}
	}
	return true
}

// GroupDiagonalGates reorders a gate sequence so that diagonal gates join
// earlier diagonal runs: a diagonal gate moves left past disjoint
// non-diagonal gates (which it commutes with) only when it ends up adjacent
// to another diagonal gate. Moves that would merely scatter a diagonal into
// unrelated layers are skipped — a contiguous diagonal layer (e.g. the ZZ
// couplings of an Ising step) must stay contiguous. Runs lengthen without
// changing the circuit's unitary, which lets the gate-fusion engine coalesce
// them into fewer phase sweeps.
func GroupDiagonalGates(gs []gate.Gate) []gate.Gate {
	out := append([]gate.Gate(nil), gs...)
	for i := 1; i < len(out); i++ {
		if !gate.IsDiagonal(out[i]) {
			continue
		}
		j := i
		for j > 0 && !gate.IsDiagonal(out[j-1]) && gate.Disjoint(out[j-1], out[i]) {
			j--
		}
		if j < i && j > 0 && gate.IsDiagonal(out[j-1]) {
			g := out[i]
			copy(out[j+1:i+1], out[j:i])
			out[j] = g
		}
	}
	return out
}

// Optimize runs CancelInverses and FuseRotations to a joint fixed point.
func Optimize(c *Circuit) *Circuit {
	prev := c
	for i := 0; i < 16; i++ { // bounded; each round strictly shrinks or stops
		next := FuseRotations(CancelInverses(prev))
		if next.NumGates() == prev.NumGates() {
			next.Name = c.Name + "_opt"
			return next
		}
		prev = next
	}
	prev.Name = c.Name + "_opt"
	return prev
}
