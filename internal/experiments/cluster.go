// Cluster-layer scale-out benchmark: one large noisy ensemble fanned out
// across 1/2/3 in-process workers (wall time per fleet size), routed
// jobs/sec through the coordinator, and the cache-hit routing rate under
// a skewed repeat-heavy circuit mix. This is the evaluation artifact
// behind BENCH_cluster.json (cmd/benchtables -only cluster).

package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"hisvsim/internal/bench"
	"hisvsim/internal/cluster"
	"hisvsim/internal/service"
)

// ClusterConfig scales the cluster benchmark.
type ClusterConfig struct {
	// Fleets are the worker counts swept (default 1,2,3).
	Fleets []int
	// Qubits sizes the ensemble circuit (default 10).
	Qubits int
	// Trajectories is the fanned-out ensemble size (default 512).
	Trajectories int
	// RoutedJobs is the skewed-mix job count per fleet (default 48).
	RoutedJobs int
	// WorkerPool is the per-worker local pool size (default 2).
	WorkerPool int
}

// WithDefaults fills the zero values.
func (c ClusterConfig) WithDefaults() ClusterConfig {
	if len(c.Fleets) == 0 {
		c.Fleets = []int{1, 2, 3}
	}
	if c.Qubits == 0 {
		c.Qubits = 10
	}
	if c.Trajectories == 0 {
		c.Trajectories = 512
	}
	if c.RoutedJobs == 0 {
		c.RoutedJobs = 48
	}
	if c.WorkerPool == 0 {
		c.WorkerPool = 2
	}
	return c
}

// ClusterFleetRow is one fleet-size measurement.
type ClusterFleetRow struct {
	Workers        int     `json:"workers"`
	EnsembleMS     float64 `json:"ensemble_ms"`      // one split ensemble, submit → merged result
	SubJobs        int     `json:"subjobs"`          // fan-out width the coordinator chose
	RoutedJobs     int     `json:"routed_jobs"`      // skewed-mix batch size
	JobsPerSec     float64 `json:"jobs_per_sec"`     // routed batch drain rate
	CacheHits      int     `json:"cache_hits"`       // repeat submissions answered from a worker cache
	RoutingHitRate float64 `json:"routing_hit_rate"` // CacheHits / (RoutedJobs - distinct circuits)
}

// ClusterReport is the full benchmark output (the BENCH_cluster.json
// schema).
type ClusterReport struct {
	Qubits       int               `json:"qubits"`
	Trajectories int               `json:"trajectories"`
	Fleets       []ClusterFleetRow `json:"fleets"`
}

// clusterMix is the skewed routed workload: a repeat-heavy circuit mix
// (one hot circuit dominating, a tail of cooler ones) where sticky
// fingerprint routing should answer every repeat from a warm worker
// cache. Index i deterministically picks a family so runs compare.
func clusterMix(i, qubits int) (family string, q int) {
	switch {
	case i%8 < 5: // 62.5%: the hot circuit
		return "qft", qubits
	case i%8 < 7: // 25%: warm
		return "bv", qubits
	default: // 12.5%: cool
		return "ising", qubits
	}
}

// ClusterBench measures the coordinator end to end against in-process
// worker fleets. Per fleet size it times one fanned-out noisy ensemble
// (submit → merged result), then drains a skewed routed batch for
// jobs/sec and the cache-hit routing rate. Ensembles split identically
// regardless of fleet size, so the per-fleet wall times compare the
// fan-out itself.
func ClusterBench(cfg ClusterConfig) (*ClusterReport, error) {
	cfg = cfg.WithDefaults()
	rep := &ClusterReport{Qubits: cfg.Qubits, Trajectories: cfg.Trajectories}

	ensembleBody := fmt.Sprintf(`{
		"circuit": {"family": "ising", "qubits": %d},
		"kind": "run",
		"noise": {"rules": [{"channel": "depolarizing", "p": 0.01}]},
		"readouts": {"shots": 1024, "seed": 7, "trajectories": %d,
		             "observables": [{"paulis": "ZZ", "qubits": [0, 1]}]}
	}`, cfg.Qubits, cfg.Trajectories)

	for _, n := range cfg.Fleets {
		row, err := clusterFleetBench(cfg, n, ensembleBody)
		if err != nil {
			return nil, fmt.Errorf("cluster bench @ %d workers: %w", n, err)
		}
		rep.Fleets = append(rep.Fleets, *row)
	}
	return rep, nil
}

func clusterFleetBench(cfg ClusterConfig, n int, ensembleBody string) (*ClusterFleetRow, error) {
	var workers []*httptest.Server
	var svcs []*service.Service
	defer func() {
		for _, w := range workers {
			w.Close()
		}
		for _, s := range svcs {
			s.Close()
		}
	}()
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		s := service.New(service.Config{Workers: cfg.WorkerPool})
		srv := httptest.NewServer(service.NewHandler(s))
		svcs = append(svcs, s)
		workers = append(workers, srv)
		urls = append(urls, srv.URL)
	}
	coord, err := cluster.New(cluster.Config{
		Workers:           urls,
		SplitTrajectories: 64,
		MaxSubJobs:        8,
		PollWait:          10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	csrv := httptest.NewServer(cluster.NewHandler(coord))
	defer csrv.Close()

	row := &ClusterFleetRow{Workers: n, RoutedJobs: cfg.RoutedJobs}

	// One fanned-out ensemble, timed submit → merged result.
	start := time.Now()
	res, err := clusterRun(csrv.URL, ensembleBody)
	if err != nil {
		return nil, err
	}
	row.EnsembleMS = time.Since(start).Seconds() * 1e3
	if got, want := res["trajectories"], float64(cfg.Trajectories); got != want {
		return nil, fmt.Errorf("merged %v trajectories, want %v", got, want)
	}
	row.SubJobs = clusterSubJobs(csrv.URL, res["__id"].(string))

	// Skewed routed batch: drain rate and cache-hit routing rate.
	distinct := map[string]bool{}
	start = time.Now()
	for i := 0; i < cfg.RoutedJobs; i++ {
		family, q := clusterMix(i, cfg.Qubits)
		distinct[family] = true
		body := fmt.Sprintf(`{
			"circuit": {"family": %q, "qubits": %d},
			"kind": "run",
			"readouts": {"shots": 128, "seed": %d}
		}`, family, q, i)
		res, err := clusterRun(csrv.URL, body)
		if err != nil {
			return nil, fmt.Errorf("routed job %d (%s-%d): %w", i, family, q, err)
		}
		if res["cache_hit"] == true {
			row.CacheHits++
		}
	}
	elapsed := time.Since(start)
	row.JobsPerSec = safeDiv(float64(cfg.RoutedJobs), elapsed.Seconds())
	// Every repeat of an already-seen circuit should be a hit: sticky
	// routing keeps each fingerprint on one worker whose caches are warm.
	row.RoutingHitRate = safeDiv(float64(row.CacheHits), float64(cfg.RoutedJobs-len(distinct)))
	return row, nil
}

// clusterRun submits one job to the coordinator and long-polls the merged
// result, returning the decoded result object with the job id tucked
// under "__id".
func clusterRun(base, body string) (map[string]any, error) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return nil, err
	}
	acc, err := clusterDecode(resp)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("submit: status %d: %v", resp.StatusCode, acc["error"])
	}
	id, _ := acc["id"].(string)
	deadline := time.Now().Add(5 * time.Minute)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/result?wait=10s", base, id))
		if err != nil {
			return nil, err
		}
		job, err := clusterDecode(resp)
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			if job["status"] != "done" {
				return nil, fmt.Errorf("job %s %v: %v", id, job["status"], job["error"])
			}
			res, ok := job["result"].(map[string]any)
			if !ok {
				return nil, fmt.Errorf("job %s: done without result", id)
			}
			res["__id"] = id
			return res, nil
		case http.StatusAccepted:
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("job %s: still running after 5m", id)
			}
		default:
			return nil, fmt.Errorf("job %s: poll status %d: %v", id, resp.StatusCode, job["error"])
		}
	}
}

// clusterSubJobs reads a job's fan-out width from its trace.
func clusterSubJobs(base, id string) int {
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/trace", base, id))
	if err != nil {
		return 0
	}
	trace, err := clusterDecode(resp)
	if err != nil {
		return 0
	}
	subs, _ := trace["subjobs"].([]any)
	return len(subs)
}

func clusterDecode(resp *http.Response) (map[string]any, error) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("bad JSON body: %w", err)
	}
	return m, nil
}

// Table renders the report as the benchtables ASCII table.
func (r *ClusterReport) Table() *bench.Table {
	t := bench.NewTable(fmt.Sprintf("Cluster: ising-%d × %d trajectories, skewed routed mix",
		r.Qubits, r.Trajectories),
		"workers", "ensemble ms", "subjobs", "jobs/sec", "hit rate")
	for _, f := range r.Fleets {
		t.AddRow(f.Workers, f.EnsembleMS, f.SubJobs, f.JobsPerSec, f.RoutingHitRate)
	}
	return t
}

// Caveat flags runs where the host cannot show scale-out wall-clock wins.
func (r *ClusterReport) Caveat() string {
	if bench.HostMachine().NumCPU <= 2 {
		return "note: ≤2 CPUs — in-process fleets share cores, so multi-worker wall times measure overhead, not scale-out"
	}
	return ""
}

// Normalize flattens the report into the comparable BENCH schema. The
// in-process fleets share the host's cores, so cross-fleet speedups are
// informational (Better "") — the gated rows are per-fleet wall times,
// drain rates, the deterministic fan-out width and the routing hit rate
// (exactly 1.0 whenever sticky routing works).
func (r *ClusterReport) Normalize() (*bench.Report, error) {
	rep, err := bench.NewReport("cluster", r)
	if err != nil {
		return nil, err
	}
	p := fmt.Sprintf("ising-%dx%d/", r.Qubits, r.Trajectories)
	var base float64
	for _, f := range r.Fleets {
		w := fmt.Sprintf("@%dw", f.Workers)
		rep.Add(p+"ensemble_ms"+w, f.EnsembleMS, "ms", bench.BetterLower, tolTime)
		rep.Add(p+"subjobs"+w, float64(f.SubJobs), "count", bench.BetterExact, 0)
		rep.Add(p+"jobs_per_sec"+w, f.JobsPerSec, "jobs/s", bench.BetterHigher, tolTime)
		rep.Add(p+"routing_hit_rate"+w, f.RoutingHitRate, "ratio", bench.BetterExact, 0)
		if f.Workers == 1 {
			base = f.EnsembleMS
		} else if base > 0 {
			rep.Add(p+"ensemble_speedup"+w, safeDiv(base, f.EnsembleMS), "x", "", 0)
		}
	}
	return rep, nil
}

// JSON renders the normalized report as indented JSON (the
// BENCH_cluster.json payload; the original report rides under "detail").
func (r *ClusterReport) JSON() ([]byte, error) {
	rep, err := r.Normalize()
	if err != nil {
		return nil, err
	}
	return rep.JSON()
}
