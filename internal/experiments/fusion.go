// Fusion benchmark: fused vs. unfused wall-clock execution of the deep
// circuit families where per-gate sweep overhead dominates. This is the
// evaluation artifact behind BENCH_fusion.json (cmd/benchtables -fusion).

package experiments

import (
	"fmt"
	"sort"
	"time"

	"hisvsim/internal/bench"
	"hisvsim/internal/circuit"
	"hisvsim/internal/core"
)

// FusionConfig scales the fusion benchmark.
type FusionConfig struct {
	// Families benchmarked (default qft, ising, random).
	Families []string
	// Qubits are the register sizes (default 16, 18, 20).
	Qubits []int
	// Reps is the repetition count per point; the fastest rep is kept
	// (default 3).
	Reps int
	// Strategy is the partitioner (default "dagp").
	Strategy string
	// Seed drives the partitioner and the random family.
	Seed int64
	// Workers bounds kernel parallelism (0 = GOMAXPROCS).
	Workers int
}

// WithDefaults fills the zero values.
func (c FusionConfig) WithDefaults() FusionConfig {
	if len(c.Families) == 0 {
		c.Families = []string{"qft", "ising", "random"}
	}
	if len(c.Qubits) == 0 {
		c.Qubits = []int{16, 18, 20}
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	if c.Strategy == "" {
		c.Strategy = "dagp"
	}
	return c
}

// FusionRow is one (circuit, qubits) fused-vs-unfused measurement.
type FusionRow struct {
	Circuit   string  `json:"circuit"`
	Qubits    int     `json:"qubits"`
	Gates     int     `json:"gates"`
	Parts     int     `json:"parts"`
	Blocks    int     `json:"blocks"` // fused blocks across parts (sweeps per cycle)
	UnfusedMS float64 `json:"unfused_ms"`
	FusedMS   float64 `json:"fused_ms"`
	Speedup   float64 `json:"speedup"`
}

// FusionReport is the full benchmark output (the BENCH_fusion.json schema).
type FusionReport struct {
	Strategy      string             `json:"strategy"`
	Reps          int                `json:"reps"`
	Rows          []FusionRow        `json:"rows"`
	MedianSpeedup map[string]float64 `json:"median_speedup"` // per family
}

// FusionBench measures fused vs. unfused execution wall-clock across the
// configured families and sizes. Both runs share the partitioning strategy;
// only Options.Fuse differs, so the delta isolates the fusion engine.
func FusionBench(cfg FusionConfig) (*FusionReport, error) {
	cfg = cfg.WithDefaults()
	rep := &FusionReport{Strategy: cfg.Strategy, Reps: cfg.Reps,
		MedianSpeedup: map[string]float64{}}
	perFamily := map[string][]float64{}
	for _, fam := range cfg.Families {
		for _, n := range cfg.Qubits {
			c, err := circuit.Named(fam, n)
			if err != nil {
				return nil, fmt.Errorf("fusion bench %s/%d: %w", fam, n, err)
			}
			base := core.Options{Strategy: cfg.Strategy, Seed: cfg.Seed, Workers: cfg.Workers}
			off := base
			off.Fuse = core.FuseOff
			on := base
			on.Fuse = core.FuseOn
			row := FusionRow{Circuit: fam, Qubits: n, Gates: c.NumGates()}
			unfused, _, err := timeRun(c, off, cfg.Reps)
			if err != nil {
				return nil, fmt.Errorf("fusion bench %s/%d unfused: %w", fam, n, err)
			}
			fused, res, err := timeRun(c, on, cfg.Reps)
			if err != nil {
				return nil, fmt.Errorf("fusion bench %s/%d fused: %w", fam, n, err)
			}
			row.UnfusedMS = unfused.Seconds() * 1e3
			row.FusedMS = fused.Seconds() * 1e3
			row.Speedup = safeDiv(unfused.Seconds(), fused.Seconds())
			row.Parts = res.Plan.NumParts()
			if res.Hier != nil {
				for _, ps := range res.Hier.PerPart {
					row.Blocks += ps.Blocks
				}
			}
			rep.Rows = append(rep.Rows, row)
			perFamily[fam] = append(perFamily[fam], row.Speedup)
		}
	}
	for fam, xs := range perFamily {
		rep.MedianSpeedup[fam] = median(xs)
	}
	return rep, nil
}

// timeRun executes the circuit reps times and returns the fastest execution
// wall-clock together with the last result.
func timeRun(c *circuit.Circuit, opts core.Options, reps int) (time.Duration, *core.Result, error) {
	var best time.Duration
	var last *core.Result
	for i := 0; i < reps; i++ {
		res, err := core.Simulate(c, opts)
		if err != nil {
			return 0, nil, err
		}
		if i == 0 || res.Elapsed < best {
			best = res.Elapsed
		}
		last = res
	}
	return best, last, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// Table renders the report as the benchtables ASCII table.
func (r *FusionReport) Table() *bench.Table {
	t := bench.NewTable("Fusion: fused vs. unfused execution ("+r.Strategy+", best of reps)",
		"circuit", "qubits", "gates", "parts", "blocks", "unfused ms", "fused ms", "speedup")
	for _, row := range r.Rows {
		t.AddRow(row.Circuit, row.Qubits, row.Gates, row.Parts, row.Blocks,
			row.UnfusedMS, row.FusedMS, row.Speedup)
	}
	for _, fam := range bench.SortedKeys(r.MedianSpeedup) {
		t.AddRow(fam+" median", "", "", "", "", "", "", r.MedianSpeedup[fam])
	}
	return t
}

// Normalize flattens the report into the comparable BENCH schema. Metric
// names embed the (circuit, qubits) point so narrow runs compare only
// what they measured; gate/part/block counts are deterministic under the
// fixed strategy and seed, so they gate exactly.
func (r *FusionReport) Normalize() (*bench.Report, error) {
	rep, err := bench.NewReport("fusion", r)
	if err != nil {
		return nil, err
	}
	for _, row := range r.Rows {
		p := fmt.Sprintf("%s-%d/", row.Circuit, row.Qubits)
		rep.Add(p+"unfused_ms", row.UnfusedMS, "ms", bench.BetterLower, tolTime)
		rep.Add(p+"fused_ms", row.FusedMS, "ms", bench.BetterLower, tolTime)
		rep.Add(p+"speedup", row.Speedup, "x", bench.BetterHigher, tolRatio)
		rep.Add(p+"gates", float64(row.Gates), "count", bench.BetterExact, 0)
		rep.Add(p+"parts", float64(row.Parts), "count", bench.BetterExact, 0)
		rep.Add(p+"blocks", float64(row.Blocks), "count", bench.BetterExact, 0)
	}
	for _, fam := range bench.SortedKeys(r.MedianSpeedup) {
		rep.Add("median_speedup/"+fam, r.MedianSpeedup[fam], "x", bench.BetterHigher, tolRatio)
	}
	return rep, nil
}

// JSON renders the normalized report as indented JSON (the
// BENCH_fusion.json payload; the original report rides under "detail").
func (r *FusionReport) JSON() ([]byte, error) {
	rep, err := r.Normalize()
	if err != nil {
		return nil, err
	}
	return rep.JSON()
}
