// Parameter-sweep amortization benchmark: one compiled template specialized
// across M bindings versus M per-point pipelines (bind + full fusion compile
// + kernel planning + run) on the same engine. This is the evaluation
// artifact behind BENCH_sweep.json (cmd/benchtables -only sweep): it
// isolates what the v3 template surface amortizes — fusion structure
// analysis, untouched-block materialization, and kernel index tables — from
// the per-point apply cost, which both paths pay identically. The compile
// share shrinks as the register grows (apply is Θ(2^n), compile is not), so
// the defaults sit where the split is visible.

package experiments

import (
	"fmt"
	"time"

	"hisvsim/internal/bench"
	"hisvsim/internal/circuit"
	"hisvsim/internal/core"
	"hisvsim/internal/fuse"
)

// SweepConfig scales the sweep benchmark.
type SweepConfig struct {
	// Qubits sizes the QAOA ansatz register (default 16).
	Qubits int
	// Layers is the ansatz depth — 2 symbols per layer (default 2).
	Layers int
	// Points is the binding-grid size M (default 50, the acceptance floor).
	Points int
	// Reps repeats both timings, keeping the fastest (default 3).
	Reps int
}

// WithDefaults fills the zero values.
func (c SweepConfig) WithDefaults() SweepConfig {
	if c.Qubits == 0 {
		c.Qubits = 12
	}
	if c.Layers == 0 {
		c.Layers = 4
	}
	if c.Points == 0 {
		c.Points = 50
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	return c
}

// SweepReport is the full benchmark output (the BENCH_sweep.json schema).
type SweepReport struct {
	Circuit string `json:"circuit"`
	Qubits  int    `json:"qubits"`
	Layers  int    `json:"layers"`
	Symbols int    `json:"symbols"`
	Points  int    `json:"points"`

	// Template path: one compile, per-point block specialization.
	TemplateMS      float64 `json:"template_ms"`
	TemplateCompile int     `json:"template_compiles"`
	CompileMS       float64 `json:"compile_ms"` // the one template compile
	TouchedBlocks   int     `json:"touched_blocks"`
	SharedBlocks    int     `json:"shared_blocks"`

	// Concrete path: bind + full fusion compile + plan + run, per point,
	// on the same engine.
	ConcreteMS      float64 `json:"concrete_ms"`
	ConcreteCompile int     `json:"concrete_compiles"`

	// Speedup is ConcreteMS / TemplateMS for the whole grid.
	Speedup float64 `json:"speedup"`
	// PerPointTemplateMS / PerPointConcreteMS are the amortized costs.
	PerPointTemplateMS float64 `json:"per_point_template_ms"`
	PerPointConcreteMS float64 `json:"per_point_concrete_ms"`
}

// SweepBench times a Points-binding sweep of a parameterized QAOA ansatz
// both ways: through the template engine (Sweep — one compile, shared
// untouched blocks) and as Points independent per-point pipelines, each
// paying bind + fusion compile + kernel planning before the identical
// fused run. Both paths compute the same ring-ZZ observables, and the
// fastest of Reps repetitions is kept per path.
func SweepBench(cfg SweepConfig) (*SweepReport, error) {
	cfg = cfg.WithDefaults()
	c := circuit.QAOAAnsatz(cfg.Qubits, cfg.Layers)
	syms := c.Symbols()

	var obs []core.Observable
	for i := 0; i < cfg.Qubits; i++ {
		obs = append(obs, core.Observable{
			Coeff: 1, Paulis: "ZZ", Qubits: []int{i, (i + 1) % cfg.Qubits},
		})
	}
	spec := core.ReadoutSpec{Observables: obs}

	bindings := make([]map[string]float64, cfg.Points)
	for i := range bindings {
		env := make(map[string]float64, len(syms))
		for j, s := range syms {
			env[s] = 0.05*float64(i+1) + 0.13*float64(j)
		}
		bindings[i] = env
	}

	rep := &SweepReport{
		Circuit: c.Name, Qubits: cfg.Qubits, Layers: cfg.Layers,
		Symbols: len(syms), Points: cfg.Points,
		TemplateCompile: 1, ConcreteCompile: cfg.Points,
	}

	for r := 0; r < cfg.Reps; r++ {
		start := time.Now()
		sw, err := core.Sweep(c, core.Options{}, spec, bindings)
		if err != nil {
			return nil, fmt.Errorf("sweep bench: %w", err)
		}
		if ms := time.Since(start).Seconds() * 1e3; r == 0 || ms < rep.TemplateMS {
			rep.TemplateMS = ms
		}
		if sw.Compiles != 1 {
			return nil, fmt.Errorf("sweep bench: template path compiled %d times", sw.Compiles)
		}
		rep.TouchedBlocks, rep.SharedBlocks = sw.TouchedBlocks, sw.SharedBlocks

		start = time.Now()
		if _, err := fuse.CompileTemplate(c, fuse.Options{}); err != nil {
			return nil, fmt.Errorf("sweep bench: %w", err)
		}
		if ms := time.Since(start).Seconds() * 1e3; r == 0 || ms < rep.CompileMS {
			rep.CompileMS = ms
		}
	}

	for r := 0; r < cfg.Reps; r++ {
		start := time.Now()
		for _, env := range bindings {
			bound, err := c.Bind(env)
			if err != nil {
				return nil, fmt.Errorf("sweep bench: %w", err)
			}
			tb, err := fuse.CompileTemplate(bound, fuse.Options{})
			if err != nil {
				return nil, fmt.Errorf("sweep bench: %w", err)
			}
			st, err := tb.Run(nil, 0)
			if err != nil {
				return nil, fmt.Errorf("sweep bench: %w", err)
			}
			core.EvaluateState(st, nil, spec)
		}
		if ms := time.Since(start).Seconds() * 1e3; r == 0 || ms < rep.ConcreteMS {
			rep.ConcreteMS = ms
		}
	}

	rep.Speedup = safeDiv(rep.ConcreteMS, rep.TemplateMS)
	rep.PerPointTemplateMS = rep.TemplateMS / float64(cfg.Points)
	rep.PerPointConcreteMS = rep.ConcreteMS / float64(cfg.Points)
	return rep, nil
}

// Table renders the report as the benchtables ASCII table.
func (r *SweepReport) Table() *bench.Table {
	t := bench.NewTable(fmt.Sprintf("Sweep: %s (%d qubits, %d symbols), %d bindings",
		r.Circuit, r.Qubits, r.Symbols, r.Points),
		"metric", "value")
	t.AddRow("template sweep ms (1 compile)", r.TemplateMS)
	t.AddRow("per-point recompile ms", r.ConcreteMS)
	t.AddRow("speedup", r.Speedup)
	t.AddRow("one compile ms", r.CompileMS)
	t.AddRow("per-point template ms", r.PerPointTemplateMS)
	t.AddRow("per-point concrete ms", r.PerPointConcreteMS)
	t.AddRow("symbol-touched blocks", r.TouchedBlocks)
	t.AddRow("shared blocks", r.SharedBlocks)
	return t
}

// Normalize flattens the report into the comparable BENCH schema. Every
// metric name embeds the full configuration — register, depth AND grid
// size — because the whole point of the sweep is amortization: per-point
// costs and speedups shift with the binding count, so runs at different
// grid sizes must not gate against each other.
func (r *SweepReport) Normalize() (*bench.Report, error) {
	rep, err := bench.NewReport("sweep", r)
	if err != nil {
		return nil, err
	}
	p := fmt.Sprintf("%s-%dx%d/p%d/", r.Circuit, r.Qubits, r.Layers, r.Points)
	rep.Add(p+"template_ms", r.TemplateMS, "ms", bench.BetterLower, tolTime)
	rep.Add(p+"concrete_ms", r.ConcreteMS, "ms", bench.BetterLower, tolTime)
	rep.Add(p+"compile_ms", r.CompileMS, "ms", bench.BetterLower, tolTime)
	rep.Add(p+"speedup", r.Speedup, "x", bench.BetterHigher, tolRatio)
	rep.Add(p+"per_point_template_ms", r.PerPointTemplateMS, "ms", bench.BetterLower, tolTime)
	rep.Add(p+"per_point_concrete_ms", r.PerPointConcreteMS, "ms", bench.BetterLower, tolTime)
	rep.Add(p+"symbols", float64(r.Symbols), "count", bench.BetterExact, 0)
	rep.Add(p+"touched_blocks", float64(r.TouchedBlocks), "count", bench.BetterExact, 0)
	rep.Add(p+"shared_blocks", float64(r.SharedBlocks), "count", bench.BetterExact, 0)
	return rep, nil
}

// JSON renders the normalized report as indented JSON (the
// BENCH_sweep.json payload; the original report rides under "detail").
func (r *SweepReport) JSON() ([]byte, error) {
	rep, err := r.Normalize()
	if err != nil {
		return nil, err
	}
	return rep.JSON()
}
